package affidavit

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/obs"
	"affidavit/internal/search"
	"affidavit/internal/session"
	"affidavit/internal/spill"
	"affidavit/internal/table"
	"affidavit/internal/trace"
)

// Explainer is the long-lived front door of the package: one fully-resolved
// configuration shared by every explanation it runs, built once from
// functional options and validated eagerly. Unlike the legacy Options
// struct — whose zero values were ambiguous (Alpha 0 silently meant 0.5,
// Theta 0 silently meant 0.1) — every With option sets exactly the value it
// names, so α = 0 and θ = 0 are expressible.
//
//	ex, err := affidavit.New(
//	    affidavit.WithAlpha(0.3),
//	    affidavit.WithWorkers(8),
//	    affidavit.WithObserver(metrics),
//	)
//	res, err := ex.Explain(ctx, src, tgt)
//
// Explainers are immutable after New and safe for concurrent use; every
// run copies the configuration. Sessions created via Session share the
// Explainer's configuration and observer.
type Explainer struct {
	so      search.Options
	metas   []metafunc.Meta
	obs     Observer
	budget  int64 // WithMemBudget; 0 = unlimited
	tracing bool  // WithTracing; record a per-run Trace into Result.Trace
}

// Option configures an Explainer. Options apply in order; later options
// override earlier ones. Validation happens once, in New.
type Option func(*Explainer)

// New builds an Explainer from the paper's default configuration (Hid
// start, β = 2, ϱ = 5, α = 0.5, θ = 0.1, ρ = 0.95, sequential engine) with
// the given options applied, and validates the result eagerly — a
// misconfigured Explainer fails here, not on its first explanation.
func New(opts ...Option) (*Explainer, error) {
	e := &Explainer{so: search.DefaultOptions(), metas: metafunc.DefaultMetas()}
	for _, opt := range opts {
		opt(e)
	}
	if e.budget < 0 {
		return nil, fmt.Errorf("affidavit: memory budget must be ≥ 0, got %d", e.budget)
	}
	if e.budget > 0 {
		// One manager for the Explainer's lifetime: its temp file backs the
		// cold column chunks of every snapshot this Explainer ingests, and
		// every run it executes spills against the same budget.
		e.so.Spill = spill.NewManager(e.budget, "")
	}
	if err := e.so.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// WithAlpha sets the MDL cost parameter α ∈ [0,1] (Definition 3.10). Unlike
// the legacy Options struct, an explicit 0 is honoured: the cost then
// weighs only function complexity.
func WithAlpha(alpha float64) Option { return func(e *Explainer) { e.so.Alpha = alpha } }

// WithBeta sets the search branching factor β ≥ 1.
func WithBeta(beta int) Option { return func(e *Explainer) { e.so.Beta = beta } }

// WithQueueWidth sets the bounded-queue width ϱ ≥ 1.
func WithQueueWidth(width int) Option { return func(e *Explainer) { e.so.QueueWidth = width } }

// WithStart selects the start-state strategy (StartID, StartOverlap,
// StartEmpty).
func WithStart(s Start) Option { return func(e *Explainer) { e.so.Start = s } }

// WithOverlapConfig applies the paper's fast greedy Hs configuration
// (overlap start, β = 1, ϱ = 1) — the functional-option form of the legacy
// OverlapOptions preset. Compose further options after it to adjust.
func WithOverlapConfig() Option {
	return func(e *Explainer) {
		e.so.Start = search.StartOverlap
		e.so.Beta = 1
		e.so.QueueWidth = 1
	}
}

// WithMaxBlockSize sets the overlap-matching block threshold used by
// StartOverlap.
func WithMaxBlockSize(n int) Option { return func(e *Explainer) { e.so.MaxBlockSize = n } }

// WithTheta sets θ ∈ [0,1], the estimated fraction of records showing a
// transformation's effect. An explicit 0 is honoured and means minimal
// sampling (the induction sample falls to its floor and overlap ranking
// samples nothing) — the legacy Options struct could not express it.
func WithTheta(theta float64) Option { return func(e *Explainer) { e.so.Induce.Theta = theta } }

// WithRho sets the sampling confidence level ρ ∈ [0,1].
func WithRho(rho float64) Option { return func(e *Explainer) { e.so.Induce.Rho = rho } }

// WithSeed sets the seed driving all sampling; equal seeds give equal
// explanations.
func WithSeed(seed int64) Option { return func(e *Explainer) { e.so.Seed = seed } }

// WithMaxExpansions caps search-state expansions; 0 = unlimited.
func WithMaxExpansions(n int) Option { return func(e *Explainer) { e.so.MaxExpansions = n } }

// WithWorkers bounds how many search probes run concurrently (0 or 1 =
// sequential engine). For any fixed seed the parallel and sequential
// engines return identical explanations.
func WithWorkers(n int) Option { return func(e *Explainer) { e.so.Workers = n } }

// WithWarmGuard arms the warm-start quality guard used by session warm
// paths; 0 disables it (see Options.WarmGuard).
func WithWarmGuard(g float64) Option { return func(e *Explainer) { e.so.WarmGuard = g } }

// WithMemBudget runs every explanation under an approximate memory budget
// of n bytes (0 = unlimited): streamed snapshots page cold column chunks
// to a temp file once the budget's table share fills, blocking refinements
// whose group tables would exceed their share group through disk
// partitions, and the end-state conversion streams its multiset matching
// partition by partition. Explanations are byte-identical to the
// unbudgeted run for equal seeds — the budget trades disk I/O for peak
// memory, which is what lets the paper's full 500k-row Figure 5 instance
// run on small machines. Spill activity is observable: Stats carries the
// run's spilled bytes/partitions, and observers receive per-stage
// EventSpill events (metrics: affidavit_spill_bytes_total,
// affidavit_spill_partitions_total).
func WithMemBudget(n int64) Option { return func(e *Explainer) { e.budget = n } }

// ParseMemBudget parses a human-readable byte size for WithMemBudget: a
// plain integer (bytes) or an integer with a KB/MB/GB (decimal) or
// KiB/MiB/GiB (binary) suffix, e.g. "256MiB". "" and "0" mean no budget.
func ParseMemBudget(s string) (int64, error) { return spill.ParseSize(s) }

// WithExtraMetas extends the built-in meta-function library with
// domain-specific families.
func WithExtraMetas(metas ...Meta) Option {
	return func(e *Explainer) { e.metas = append(e.metas, metas...) }
}

// WithObserver attaches a pipeline observer (progress, metrics). Events
// within one run arrive in deterministic order for a fixed seed;
// concurrent runs interleave, so shared observers must be safe for
// concurrent use. A nil observer is the default no-op and costs nothing on
// the hot path; Observers(...) compositions normalise to that same nil,
// so WithObserver(Observers(nil, nil)) is equally free.
func WithObserver(o Observer) Option { return func(e *Explainer) { e.obs = Observers(o) } }

// WithTracing records a structured per-run trace into Result.Trace: stage
// spans with wall times (ingest source/target, search, finalize, convert),
// the warm/cold/escalated start decision, a bounded poll cost-curve
// sample, and spill totals. Each run gets its own recorder attached
// through the Observers fan-out, so concurrent runs trace independently
// and any WithObserver observer keeps receiving every event. Wall-clock
// values are captured out-of-band in the recorder — the event stream and
// Result.JSON stay byte-identical with tracing on or off. Batch runs
// (ExplainBatch) are not traced: their pairs interleave on one context.
func WithTracing() Option { return func(e *Explainer) { e.tracing = true } }

// FromOptions applies a legacy Options struct with its historical
// zero-value semantics (zero fields fall back to defaults) — the bridge
// for callers migrating to functional options one step at a time.
func FromOptions(o Options) Option {
	return func(e *Explainer) {
		e.so = o.toSearch()
		e.metas = append(metafunc.DefaultMetas(), o.ExtraMetas...)
	}
}

// Fingerprint digests every result-affecting engine option — α, β, the
// queue width ϱ, the start strategy, the overlap block threshold, the
// induction configuration (θ, ρ and its caps), the sampling seed and the
// expansion cap — plus the installed meta-function families, into a
// 16-hex-character identity. Two Explainers with equal fingerprints
// produce byte-identical explanations for identical inputs; byte-neutral
// knobs (workers, memory budget, observers, tracing, warm-only guards)
// are deliberately excluded. affidavitd folds the fingerprint into the
// job content address, so a configuration change stops serving results
// computed under the old flags.
func (e *Explainer) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "alpha=%g beta=%d width=%d start=%d maxblock=%d theta=%g conf=%g mingen=%d maxranked=%d maxsrc=%d seed=%d maxexp=%d",
		e.so.Alpha, e.so.Beta, e.so.QueueWidth, e.so.Start, e.so.MaxBlockSize,
		e.so.Induce.Theta, e.so.Induce.Rho, e.so.Induce.MinGenerated,
		e.so.Induce.MaxRanked, e.so.Induce.MaxSourceValuesPerBlock,
		e.so.Seed, e.so.MaxExpansions)
	for _, m := range e.metas {
		fmt.Fprintf(h, " meta=%s", m.Name())
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// searchOptions returns the per-run search configuration, wiring the
// observer in.
func (e *Explainer) searchOptions() search.Options {
	so := e.so
	if e.obs != nil {
		so.OnEvent = e.obs.Observe
	}
	return so
}

// traceRun attaches a fresh per-run trace recorder to ctx when tracing is
// enabled, so every emission point serving this run — ingest drains and
// the search loop alike — feeds it alongside the configured observer.
func (e *Explainer) traceRun(ctx context.Context) (context.Context, *trace.Recorder) {
	if !e.tracing {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rec := trace.NewRecorder(trace.NewID())
	return obs.ContextWithSink(ctx, rec.Observe), rec
}

// runSink is the ingest-path event sink for one call: the configured
// observer chained with any per-run sink the context carries.
func (e *Explainer) runSink(ctx context.Context) obs.Sink {
	var base obs.Sink
	if e.obs != nil {
		base = e.obs.Observe
	}
	return obs.Chain(base, obs.FromContext(ctx))
}

// Explain explains the difference between two in-memory snapshots sharing
// a schema. An interrupted ctx is not an error — the result carries the
// best explanation found so far with Stats.Cancelled set (see the legacy
// ExplainContext for details).
func (e *Explainer) Explain(ctx context.Context, source, target *Table) (*Result, error) {
	ctx, rec := e.traceRun(ctx)
	inst, err := delta.NewInstance(source, target, e.metas)
	if err != nil {
		return nil, err
	}
	res, err := e.explainInstance(ctx, inst)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		res.Trace = rec.Trace()
	}
	return res, nil
}

// ExplainSources streams two snapshots out of their Sources — interning
// every record into a shared per-attribute dictionary set the moment it
// arrives, so neither snapshot is ever materialised as a [][]string — and
// explains the resulting pair. Explanations are byte-identical to the
// buffered Explain path on the same data; only the ingest memory profile
// differs. The observer (if any) sees ingest-progress events per chunk.
func (e *Explainer) ExplainSources(ctx context.Context, source, target Source) (*Result, error) {
	ctx, rec := e.traceRun(ctx)
	// Open both sources and compare schemas BEFORE draining either: a
	// mismatched pair (wrong file, renamed column) fails after two header
	// reads, not after interning gigabytes.
	srcSchema, err := source.Open()
	if err != nil {
		source.Close()
		target.Close()
		return nil, err
	}
	tgtSchema, err := target.Open()
	if err != nil {
		source.Close()
		target.Close()
		return nil, err
	}
	if !srcSchema.Equal(tgtSchema) {
		source.Close()
		target.Close()
		return nil, fmt.Errorf("affidavit: source and target schemas differ: %v vs %v",
			srcSchema.Attrs(), tgtSchema.Attrs())
	}
	shared := make([]*table.Dict, srcSchema.Len())
	for a := range shared {
		shared[a] = table.NewDict()
	}
	ingest := &spill.Stats{}
	src, err := e.drainSourceAcc(ctx, source, srcSchema, shared, "source", ingest)
	if err != nil {
		target.Close()
		return nil, err
	}
	tgt, err := e.drainSourceAcc(ctx, target, tgtSchema, shared, "target", ingest)
	if err != nil {
		return nil, err
	}
	inst, err := delta.NewInstanceWithDicts(src, tgt, e.metas, shared)
	if err != nil {
		return nil, err
	}
	res, err := e.explainInstance(ctx, inst)
	if err != nil {
		return nil, err
	}
	// Stats covers every stage this call performed — for a streamed pair
	// that includes the ingest spill of the two snapshots it drained, so
	// the one common spill scenario (wide low-distinct data that only
	// spills chunks) doesn't read as "spilled 0 bytes".
	res.Stats.SpilledBytes += ingest.Bytes()
	res.Stats.SpillPartitions += ingest.Partitions()
	if rec != nil {
		res.Trace = rec.Trace()
	}
	return res, nil
}

// ExplainFiles is ExplainSources over two CSV files (header row = schema),
// streamed — the drop-in upgrade for the legacy ExplainCSV that never
// buffers either file.
func (e *Explainer) ExplainFiles(ctx context.Context, sourcePath, targetPath string) (*Result, error) {
	return e.ExplainSources(ctx, CSVFileSource(sourcePath), CSVFileSource(targetPath))
}

// ReadSource drains a Source into an interned columnar Table — the
// streaming replacement for ReadCSV when the snapshot will be explained
// later (servers, queues). The observer (if any) sees ingest events
// labelled "source".
func (e *Explainer) ReadSource(ctx context.Context, src Source) (*Table, error) {
	return e.readSource(ctx, src, "source")
}

// ReadSourceNamed is ReadSource with a caller-chosen snapshot label for
// the observer's ingest events ("source", "target", …), so multi-snapshot
// ingest paths report per-role volumes.
func (e *Explainer) ReadSourceNamed(ctx context.Context, src Source, label string) (*Table, error) {
	return e.readSource(ctx, src, label)
}

// ingestChunk is how many records are interned between context checks and
// ingest-progress events.
const ingestChunk = 8192

// readSource opens src and drains it into a columnar table with fresh
// dictionaries.
func (e *Explainer) readSource(ctx context.Context, src Source, role string) (*Table, error) {
	schema, err := src.Open()
	if err != nil {
		src.Close()
		return nil, err
	}
	return e.drainSource(ctx, src, schema, nil, role)
}

// drainSource interns every remaining record of an already-opened source
// into a columnar table. dicts, when non-nil, is the positional dictionary
// set shared across the snapshots of one pair, so both intern into one
// code space.
func (e *Explainer) drainSource(ctx context.Context, src Source, schema *Schema, dicts []*table.Dict, role string) (*Table, error) {
	return e.drainSourceAcc(ctx, src, schema, dicts, role, nil)
}

// drainSourceAcc is drainSource with an optional accumulator the
// snapshot's ingest-spill volume is added to (for callers that fold it
// into a run's Stats).
func (e *Explainer) drainSourceAcc(ctx context.Context, src Source, schema *Schema, dicts []*table.Dict, role string, acc *spill.Stats) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b, err := table.NewBuilder(schema, dicts)
	if err != nil {
		src.Close()
		return nil, err
	}
	var spillSt *spill.Stats
	if e.so.Spill.Active() {
		spillSt = &spill.Stats{}
		b = b.WithSpill(e.so.Spill, spillSt)
	}
	sink := e.runSink(ctx)
	emit := func(complete bool) {
		if sink != nil {
			sink(Event{Kind: obs.KindIngest, Snapshot: role, Records: b.Len(), Complete: complete})
		}
	}
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			src.Close()
			return nil, err
		}
		if err := b.Append(rec); err != nil {
			src.Close()
			return nil, fmt.Errorf("affidavit: ingesting %s record %d: %w", role, b.Len()+1, err)
		}
		if b.Len()%ingestChunk == 0 {
			emit(false)
			if err := ctx.Err(); err != nil {
				src.Close()
				return nil, err
			}
		}
	}
	if err := src.Close(); err != nil {
		return nil, fmt.Errorf("affidavit: closing %s: %w", role, err)
	}
	emit(true)
	if spillSt.Bytes() > 0 {
		acc.Note(spillSt.Bytes(), int(spillSt.Partitions()))
		if sink != nil {
			sink(Event{
				Kind:       obs.KindSpill,
				Component:  "ingest",
				Snapshot:   role,
				SpillBytes: spillSt.Bytes(),
				SpillParts: spillSt.Partitions(),
			})
		}
	}
	return b.Table(), nil
}

// explainInstance runs the search on a prepared instance, chaining any
// per-run context sink after the configured observer.
func (e *Explainer) explainInstance(ctx context.Context, inst *delta.Instance) (*Result, error) {
	so := e.searchOptions()
	so.OnEvent = obs.Chain(so.OnEvent, obs.FromContext(ctx))
	res, err := search.Run(ctx, inst, so)
	if err != nil {
		return nil, err
	}
	cm := delta.CostModel{Alpha: so.Alpha}
	return &Result{
		Explanation: res.Explanation,
		Cost:        res.Cost,
		TrivialCost: cm.Cost(delta.Trivial(inst)),
		Stats:       res.Stats,
		alpha:       so.Alpha,
	}, nil
}

// Session creates a long-lived session sharing the Explainer's
// configuration and observer. initial, when non-nil, is the chain baseline
// (see NewSession).
func (e *Explainer) Session(initial *Table) *Session {
	so := e.searchOptions()
	return &Session{
		inner:   session.New(initial, so, e.metas),
		alpha:   so.Alpha,
		workers: so.Workers,
		tracing: e.tracing,
	}
}
