package affidavit_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"affidavit"
	"affidavit/internal/datasets"
	"affidavit/internal/gen"
)

// equivRows caps dataset sizes so the three-way ingest sweep stays fast
// (mirrors the parallel-equivalence sweep's budget).
func equivRows(spec datasets.Spec) int {
	rows := spec.Rows
	if rows > 300 {
		rows = 300
	}
	if spec.DataAttrs > 40 && rows > 100 {
		rows = 100
	}
	return rows
}

// jsonlOf renders a table as JSON Lines, keys in schema order (the first
// record's key order becomes the JSONL schema).
func jsonlOf(t *testing.T, tab *affidavit.Table) string {
	t.Helper()
	var sb strings.Builder
	attrs := tab.Schema().Attrs()
	for i := 0; i < tab.Len(); i++ {
		rec := tab.Record(i)
		sb.WriteByte('{')
		for a, name := range attrs {
			if a > 0 {
				sb.WriteByte(',')
			}
			k, err := json.Marshal(name)
			if err != nil {
				t.Fatal(err)
			}
			v, err := json.Marshal(rec[a])
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(k)
			sb.WriteByte(':')
			sb.Write(v)
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func csvBytes(t *testing.T, tab *affidavit.Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSourceEquivalenceRegistry: on every registry dataset, streaming the
// snapshot pair through CSVSource and JSONLSource must produce
// byte-identical explanations (report and JSON encoding) to the buffered
// ReadCSV + Explain path.
func TestSourceEquivalenceRegistry(t *testing.T) {
	for _, spec := range datasets.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tab, err := spec.BuildRows(equivRows(spec), 7)
			if err != nil {
				t.Fatal(err)
			}
			p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			srcCSV := csvBytes(t, p.Inst.Source)
			tgtCSV := csvBytes(t, p.Inst.Target)

			// Buffered reference path.
			src, err := affidavit.ReadCSV(strings.NewReader(srcCSV))
			if err != nil {
				t.Fatal(err)
			}
			tgt, err := affidavit.ReadCSV(strings.NewReader(tgtCSV))
			if err != nil {
				t.Fatal(err)
			}
			opts := affidavit.DefaultOptions()
			opts.Seed = 7
			ref, err := affidavit.Explain(src, tgt, opts)
			if err != nil {
				t.Fatal(err)
			}
			refReport, refJSON := ref.Report(), mustJSON(t, ref)

			ex, err := affidavit.New(affidavit.WithSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			fromCSV, err := ex.ExplainSources(ctx,
				affidavit.NewCSVSource(strings.NewReader(srcCSV)),
				affidavit.NewCSVSource(strings.NewReader(tgtCSV)))
			if err != nil {
				t.Fatal(err)
			}
			if got := fromCSV.Report(); got != refReport {
				t.Errorf("CSVSource report differs from buffered path")
			}
			if got := mustJSON(t, fromCSV); got != refJSON {
				t.Errorf("CSVSource JSON differs from buffered path")
			}

			fromJSONL, err := ex.ExplainSources(ctx,
				affidavit.NewJSONLSource(strings.NewReader(jsonlOf(t, p.Inst.Source))),
				affidavit.NewJSONLSource(strings.NewReader(jsonlOf(t, p.Inst.Target))))
			if err != nil {
				t.Fatal(err)
			}
			if got := fromJSONL.Report(); got != refReport {
				t.Errorf("JSONLSource report differs from buffered path")
			}
			if got := mustJSON(t, fromJSONL); got != refJSON {
				t.Errorf("JSONLSource JSON differs from buffered path")
			}
		})
	}
}

func mustJSON(t *testing.T, r *affidavit.Result) string {
	t.Helper()
	b, err := r.JSON("t")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRowsAndTableSource: the iterator-backed sources feed the same
// pipeline.
func TestRowsAndTableSource(t *testing.T) {
	src, tgt := figure1Tables(t)
	opts := affidavit.DefaultOptions()
	opts.Seed = 1
	ref, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := affidavit.New(affidavit.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.ExplainSources(context.Background(),
		affidavit.TableSource(src), affidavit.TableSource(tgt))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report() != ref.Report() {
		t.Error("TableSource report differs from buffered path")
	}

	// A bare RowsSource with an explicit iterator.
	i := 0
	rows := affidavit.NewRowsSource(src.Schema(), func() (affidavit.Record, error) {
		if i >= src.Len() {
			return nil, io.EOF
		}
		r := src.Record(i)
		i++
		return r, nil
	})
	res2, err := ex.ExplainSources(context.Background(), rows, affidavit.TableSource(tgt))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report() != ref.Report() {
		t.Error("RowsSource report differs from buffered path")
	}
}

// TestSourceErrors: malformed inputs fail with useful errors instead of
// being silently coerced.
func TestSourceErrors(t *testing.T) {
	ex, err := affidavit.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		src  affidavit.Source
		want string
	}{
		{"empty csv", affidavit.NewCSVSource(strings.NewReader("")), "no header"},
		{"ragged csv", affidavit.NewCSVSource(strings.NewReader("a,b\n1,2,3\n")), "fields"},
		{"empty jsonl", affidavit.NewJSONLSource(strings.NewReader("\n\n")), "no records"},
		{"nested jsonl", affidavit.NewJSONLSource(strings.NewReader(`{"a":{"x":1}}` + "\n")), "nested"},
		{"bad jsonl", affidavit.NewJSONLSource(strings.NewReader("not json\n")), "line 1"},
		{"unknown key", affidavit.NewJSONLSource(strings.NewReader("{\"a\":\"1\"}\n{\"b\":\"2\"}\n")), "not in schema"},
		{"missing file", affidavit.CSVFileSource("/definitely/not/here.csv"), "no such file"},
	}
	for _, c := range cases {
		if _, err := ex.ReadSource(ctx, c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}

	// Schema mismatch across the pair.
	_, err = ex.ExplainSources(ctx,
		affidavit.NewCSVSource(strings.NewReader("a,b\n1,2\n")),
		affidavit.NewCSVSource(strings.NewReader("a,c\n1,2\n")))
	if err == nil || !strings.Contains(err.Error(), "schemas differ") {
		t.Errorf("schema mismatch: err = %v", err)
	}
}

// TestJSONLErrorDeterminism: when a line carries several out-of-schema
// keys, the error always names the lexicographically-smallest one. The
// mapiter analyzer flagged the original map-order iteration in
// jsonlSource.record — with eight bad keys the reported key would vary
// between runs; this pins the sorted-key fix.
func TestJSONLErrorDeterminism(t *testing.T) {
	ex, err := affidavit.New()
	if err != nil {
		t.Fatal(err)
	}
	const doc = `{"a":"1"}` + "\n" +
		`{"z8":"1","z5":"1","z2":"1","z7":"1","z1":"1","z4":"1","z6":"1","z3":"1"}` + "\n"
	for i := 0; i < 25; i++ {
		_, err := ex.ReadSource(context.Background(), affidavit.NewJSONLSource(strings.NewReader(doc)))
		if err == nil {
			t.Fatal("out-of-schema keys accepted")
		}
		if !strings.Contains(err.Error(), `key "z1"`) {
			t.Fatalf("run %d: err = %v, want the smallest key z1", i, err)
		}
	}
}

// TestJSONLValueSpelling: numbers keep their literal spelling, bools and
// nulls map stably — the cells must round-trip exactly like CSV cells.
func TestJSONLValueSpelling(t *testing.T) {
	ex, err := affidavit.New()
	if err != nil {
		t.Fatal(err)
	}
	jsonl := `{"n":1.50,"b":true,"s":"x","z":null}` + "\n" + `{"n":-0.07,"b":false,"s":"","z":"v"}` + "\n"
	tab, err := ex.ReadSource(context.Background(), affidavit.NewJSONLSource(strings.NewReader(jsonl)))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(tab.Schema().Attrs()); got != "[n b s z]" {
		t.Fatalf("schema = %s, want document key order [n b s z]", got)
	}
	want := [][]string{{"1.50", "true", "x", ""}, {"-0.07", "false", "", "v"}}
	for i, w := range want {
		for a, v := range w {
			if tab.Value(i, a) != v {
				t.Errorf("cell %d,%d = %q, want %q", i, a, tab.Value(i, a), v)
			}
		}
	}
}
