package affidavit_test

import (
	"context"
	"io"
	"strings"
	"testing"

	"affidavit"
	"affidavit/internal/datasets"
	"affidavit/internal/gen"
)

// recorder collects events; safe for this package's single-run tests
// because one run emits from one goroutine.
type recorder struct {
	events []affidavit.Event
}

func (r *recorder) Observe(ev affidavit.Event) { r.events = append(r.events, ev) }

// runWithObserver explains one generated pair with the given worker count
// and returns the observed event stream.
func runWithObserver(t *testing.T, workers int) []affidavit.Event {
	t.Helper()
	spec, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := spec.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	srcCSV := csvBytes(t, p.Inst.Source)
	tgtCSV := csvBytes(t, p.Inst.Target)
	rec := &recorder{}
	ex, err := affidavit.New(
		affidavit.WithSeed(11),
		affidavit.WithWorkers(workers),
		affidavit.WithObserver(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ExplainSources(context.Background(),
		affidavit.NewCSVSource(strings.NewReader(srcCSV)),
		affidavit.NewCSVSource(strings.NewReader(tgtCSV))); err != nil {
		t.Fatal(err)
	}
	return rec.events
}

// TestObserverDeterminism: for a fixed seed the event stream is identical
// across repeated runs AND across worker counts — the parallel engine
// reports through the polling goroutine exactly like the sequential one.
// Run under -race this also proves emission never races with probe
// workers.
func TestObserverDeterminism(t *testing.T) {
	seq := runWithObserver(t, 1)
	again := runWithObserver(t, 1)
	par := runWithObserver(t, 4)

	assertSameEvents(t, "repeat", seq, again)
	assertSameEvents(t, "workers", seq, par)

	// Sanity on the stream shape: ingest for both snapshots, one start,
	// ≥ 1 poll, one convert, one done — in pipeline order.
	var kinds []affidavit.EventKind
	for _, ev := range seq {
		if len(kinds) == 0 || kinds[len(kinds)-1] != ev.Kind {
			kinds = append(kinds, ev.Kind)
		}
	}
	want := []affidavit.EventKind{
		affidavit.EventIngest, affidavit.EventSearchStart, affidavit.EventPoll,
		affidavit.EventConvert, affidavit.EventDone,
	}
	if len(kinds) != len(want) {
		t.Fatalf("event phases = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event phases = %v, want %v", kinds, want)
		}
	}
	if seq[0].Snapshot != "source" || !seq[0].Complete {
		t.Errorf("first event = %+v, want completed source ingest", seq[0])
	}
	last := seq[len(seq)-1]
	if last.Kind != affidavit.EventDone || last.Polls == 0 || last.Cost == 0 {
		t.Errorf("last event = %+v, want populated done event", last)
	}
}

func assertSameEvents(t *testing.T, label string, a, b []affidavit.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d events vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: event %d differs: %+v vs %+v", label, i, a[i], b[i])
			return
		}
	}
}

// TestIngestChunkEvents: snapshots larger than the ingest chunk emit
// cumulative progress events before the completion event.
func TestIngestChunkEvents(t *testing.T) {
	const n = 20000
	schema, err := affidavit.NewSchema("id", "v")
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	src := affidavit.NewRowsSource(schema, func() (affidavit.Record, error) {
		if i >= n {
			return nil, io.EOF
		}
		i++
		return affidavit.Record{string(rune('a' + i%26)), "x"}, nil
	})
	rec := &recorder{}
	ex, err := affidavit.New(affidavit.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ex.ReadSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != n {
		t.Fatalf("ingested %d records, want %d", tab.Len(), n)
	}
	var counts []int
	for _, ev := range rec.events {
		if ev.Kind != affidavit.EventIngest {
			t.Fatalf("unexpected event %+v", ev)
		}
		counts = append(counts, ev.Records)
	}
	if len(counts) != 3 || counts[0] != 8192 || counts[1] != 16384 || counts[2] != n {
		t.Errorf("progress counts = %v, want [8192 16384 %d]", counts, n)
	}
	if !rec.events[len(rec.events)-1].Complete {
		t.Error("final ingest event not marked complete")
	}
}

// TestMetricsObserver: the Prometheus rendering carries the run's
// counters.
func TestMetricsObserver(t *testing.T) {
	src, tgt := figure1Tables(t)
	m := affidavit.NewMetricsObserver()
	ex, err := affidavit.New(affidavit.WithSeed(1), affidavit.WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.ExplainSources(context.Background(),
		affidavit.TableSource(src), affidavit.TableSource(tgt))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`affidavit_ingested_records_total{snapshot="source"} 17`,
		`affidavit_ingested_records_total{snapshot="target"} 16`,
		`affidavit_runs_started_total{mode="cold"} 1`,
		"affidavit_runs_completed_total 1",
		"affidavit_runs_cancelled_total 0",
		"affidavit_conversions_total 1",
		"# TYPE affidavit_search_polls_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
	if res.Stats.Polls == 0 {
		t.Error("no polls recorded")
	}
}

// TestMetricsObserverHistograms: ObserveTrace feeds the duration
// histograms, rendered with cumulative buckets, sum and count; incomplete
// and nil traces are ignored.
func TestMetricsObserverHistograms(t *testing.T) {
	m := affidavit.NewMetricsObserver()
	m.ObserveTrace(nil)
	m.ObserveTrace(&affidavit.Trace{DurationMS: 1000}) // not Complete: ignored
	m.ObserveTrace(&affidavit.Trace{
		Complete:   true,
		DurationMS: 120, // 0.12s → first bucket le="0.25"
		Spans: []affidavit.TraceSpan{
			{Stage: "ingest:source", DurationMS: 30},
			{Stage: "ingest:target", DurationMS: 10}, // 0.04s → le="0.05"
			{Stage: "search", DurationMS: 80},
		},
	})
	m.ObserveTrace(&affidavit.Trace{Complete: true, DurationMS: 90000}) // 90s → only +Inf
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE affidavit_run_duration_seconds histogram",
		`affidavit_run_duration_seconds_bucket{le="0.1"} 0`,
		`affidavit_run_duration_seconds_bucket{le="0.25"} 1`,
		`affidavit_run_duration_seconds_bucket{le="60"} 1`,
		`affidavit_run_duration_seconds_bucket{le="+Inf"} 2`,
		"affidavit_run_duration_seconds_sum 90.12",
		"affidavit_run_duration_seconds_count 2",
		`affidavit_ingest_duration_seconds_bucket{le="0.025"} 0`,
		`affidavit_ingest_duration_seconds_bucket{le="0.05"} 1`,
		`affidavit_ingest_duration_seconds_bucket{le="+Inf"} 1`,
		"affidavit_ingest_duration_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestObserversFanout: the composition helper forwards to every observer
// in order, skips nils, and unwraps the single-observer case.
func TestObserversFanout(t *testing.T) {
	var got []string
	a := affidavit.ObserverFunc(func(ev affidavit.Event) { got = append(got, "a:"+ev.Kind.String()) })
	b := affidavit.ObserverFunc(func(ev affidavit.Event) { got = append(got, "b:"+ev.Kind.String()) })
	fan := affidavit.Observers(nil, a, nil, b)
	fan.Observe(affidavit.Event{Kind: affidavit.EventDone})
	if len(got) != 2 || got[0] != "a:done" || got[1] != "b:done" {
		t.Errorf("fanout order = %v", got)
	}
	if affidavit.Observers() != nil {
		t.Error("empty composition should be nil")
	}
	if one := affidavit.Observers(nil, a); one == nil {
		t.Error("single composition lost the observer")
	}
}
