package affidavit_test

import (
	"fmt"
	"testing"

	"affidavit"
	"affidavit/internal/datasets"
	"affidavit/internal/gen"
)

// sessionChain builds a warm-startable snapshot chain over a registry
// dataset.
func sessionChain(t testing.TB, name string, steps int) *gen.ChainProblem {
	t.Helper()
	ds, err := datasets.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(31)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := gen.MakeChain(tab, gen.ChainConfig{Steps: steps, Eta: 0.1, Tau: 0.5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func assertSameResults(t *testing.T, label string, a, b *affidavit.Result) {
	t.Helper()
	if a.Cost != b.Cost {
		t.Errorf("%s: cost %v vs %v", label, a.Cost, b.Cost)
	}
	if a.TrivialCost != b.TrivialCost {
		t.Errorf("%s: trivial cost %v vs %v", label, a.TrivialCost, b.TrivialCost)
	}
	if ak, bk := a.Explanation.Funcs.Key(), b.Explanation.Funcs.Key(); ak != bk {
		t.Errorf("%s: function tuples differ:\n  %s\n  %s", label, ak, bk)
	}
	if fmt.Sprint(a.Explanation.CoreSrc) != fmt.Sprint(b.Explanation.CoreSrc) ||
		fmt.Sprint(a.Explanation.CoreTgt) != fmt.Sprint(b.Explanation.CoreTgt) ||
		fmt.Sprint(a.Explanation.Deleted) != fmt.Sprint(b.Explanation.Deleted) ||
		fmt.Sprint(a.Explanation.Inserted) != fmt.Sprint(b.Explanation.Inserted) {
		t.Errorf("%s: alignments differ", label)
	}
}

// TestSessionChain is the public acceptance contract: a warm-start chain
// run over ≥ 3 successive snapshots of a registry dataset produces the same
// final explanations as independent cold Explain runs while polling
// strictly fewer search states, and the whole chain is reproducible.
func TestSessionChain(t *testing.T) {
	ch := sessionChain(t, "bridges", 3)
	opts := affidavit.DefaultOptions()
	opts.Seed = 31
	s := affidavit.NewSession(ch.Snapshots[0], opts)
	for i := 1; i < len(ch.Snapshots); i++ {
		warm, err := s.ExplainNext(ch.Snapshots[i])
		if err != nil {
			t.Fatal(err)
		}
		cold, err := affidavit.Explain(ch.Snapshots[i-1], ch.Snapshots[i], opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("step %d", i), warm, cold)
		if i > 1 && warm.Stats.Polls >= cold.Stats.Polls {
			t.Errorf("step %d: warm polls %d not strictly below cold polls %d",
				i, warm.Stats.Polls, cold.Stats.Polls)
		}
		// Reports on session results must render like cold ones.
		if warm.Report() != cold.Report() {
			t.Errorf("step %d: reports differ", i)
		}
		if warm.SQL("t") != cold.SQL("t") {
			t.Errorf("step %d: SQL differs", i)
		}
	}
	if s.Runs() != 3 {
		t.Errorf("session counted %d runs, want 3", s.Runs())
	}
	if attrs, values := s.PoolStats(); attrs == 0 || values == 0 {
		t.Errorf("pool stats empty: %d attrs, %d values", attrs, values)
	}
}

// TestSessionExplainBatch: the public batch API equals per-pair cold runs.
func TestSessionExplainBatch(t *testing.T) {
	ch := sessionChain(t, "echo", 2)
	opts := affidavit.DefaultOptions()
	opts.Seed = 31
	opts.Workers = 4
	s := affidavit.NewSession(nil, opts)
	pairs := []affidavit.Pair{
		{Source: ch.Snapshots[0], Target: ch.Snapshots[1]},
		{Source: ch.Snapshots[1], Target: ch.Snapshots[2]},
		{Source: ch.Snapshots[0], Target: ch.Snapshots[2]},
	}
	results, err := s.ExplainBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		cold, err := affidavit.Explain(p.Source, p.Target, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("pair %d", i), results[i], cold)
	}
}
