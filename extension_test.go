package affidavit_test

import (
	"context"
	"strings"
	"testing"

	"affidavit"
	"affidavit/internal/fixture"
)

// reverseFunc is a custom transformation: x ↦ reverse(x), ψ = 0.
type reverseFunc struct{}

func (reverseFunc) Apply(x string) string {
	b := []byte(x)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}
func (reverseFunc) Params() int    { return 0 }
func (reverseFunc) Key() string    { return "x-reverse" }
func (reverseFunc) String() string { return "x ↦ reverse(x)" }

// reverseMeta induces reverseFunc from examples showing a reversal.
type reverseMeta struct{}

func (reverseMeta) Name() string { return "reverse" }

func (reverseMeta) Induce(in, out string) []affidavit.Func {
	if in == out {
		return nil
	}
	if (reverseFunc{}).Apply(in) == out {
		return []affidavit.Func{reverseFunc{}}
	}
	return nil
}

// TestExtraMetas exercises the paper's extension point ("administrators …
// customize Affidavit by adding further meta functions via implementation
// of a small … interface"): a column transformed by string reversal is
// inexplicable by the built-in library (it degrades to a value mapping),
// but with the custom meta the search learns the ψ=0 reversal.
func TestExtraMetas(t *testing.T) {
	schema, err := affidavit.NewSchema("code", "group")
	if err != nil {
		t.Fatal(err)
	}
	var srcRows, tgtRows []affidavit.Record
	codes := []string{"alpha", "bravo", "charlie", "delta", "echo1",
		"fox", "golf", "hotel", "india", "julia", "kilo1", "lima2"}
	groups := []string{"g1", "g2", "g3"}
	for i, c := range codes {
		srcRows = append(srcRows, affidavit.Record{c, groups[i%3]})
		tgtRows = append(tgtRows, affidavit.Record{(reverseFunc{}).Apply(c), groups[i%3]})
	}
	src, err := affidavit.NewTable(schema, srcRows)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := affidavit.NewTable(schema, tgtRows)
	if err != nil {
		t.Fatal(err)
	}

	// Without the custom meta the best explanation pays for a mapping.
	plain := affidavit.DefaultOptions()
	plain.Seed = 4
	resPlain, err := affidavit.Explain(src, tgt, plain)
	if err != nil {
		t.Fatal(err)
	}

	custom := plain
	custom.ExtraMetas = []affidavit.Meta{reverseMeta{}}
	resCustom, err := affidavit.Explain(src, tgt, custom)
	if err != nil {
		t.Fatal(err)
	}
	if resCustom.Cost >= resPlain.Cost {
		t.Errorf("custom meta did not help: %v vs %v", resCustom.Cost, resPlain.Cost)
	}
	if resCustom.Cost != 0 {
		t.Errorf("reversal explains everything at cost 0, got %v\n%s",
			resCustom.Cost, resCustom.Report())
	}
	if !strings.Contains(resCustom.Report(), "reverse") {
		t.Error("report does not mention the custom function")
	}
}

// TestExplainRenamed drives the future-work schema-matching pipeline
// through the public API on the Figure 1 instance with opaque, shuffled
// target attribute names.
func TestExplainRenamed(t *testing.T) {
	s, _ := affidavit.NewSchema("ID1", "ID2", "Date", "Type", "Val", "Unit", "Org")
	src, err := affidavit.NewTable(s, fixture.SourceRows())
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{fixture.Unit, fixture.Org, fixture.ID1, fixture.Date,
		fixture.Type, fixture.ID2, fixture.Val}
	renamed, _ := affidavit.NewSchema("a", "b", "c", "d", "e", "f", "g")
	var rows []affidavit.Record
	for _, r := range fixture.TargetRows() {
		rows = append(rows, r.Project(perm))
	}
	tgt, err := affidavit.NewTable(renamed, rows)
	if err != nil {
		t.Fatal(err)
	}
	opts := affidavit.DefaultOptions()
	opts.Seed = 1
	res, match, err := affidavit.ExplainRenamed(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if match.ByName {
		t.Error("opaque names matched by name?")
	}
	if res.Cost != fixture.ReferenceCost {
		t.Errorf("cost through renamed pipeline = %v, want %d", res.Cost, fixture.ReferenceCost)
	}
	// Mismatched arity propagates an error.
	tiny, _ := affidavit.NewSchema("only")
	tt, _ := affidavit.NewTable(tiny, []affidavit.Record{{"x"}})
	if _, _, err := affidavit.ExplainRenamed(src, tt, opts); err == nil {
		t.Error("arity mismatch accepted")
	}
}

// TestExplainRenamedContext: the renamed-schema pipeline honours
// cancellation like every other entry point (the ctxflow analyzer's
// contract — cooperative: an interrupted run returns the partial result
// with Stats.Cancelled set), and the context variant agrees with the
// plain one.
func TestExplainRenamedContext(t *testing.T) {
	s, _ := affidavit.NewSchema("ID1", "ID2", "Date", "Type", "Val", "Unit", "Org")
	src, err := affidavit.NewTable(s, fixture.SourceRows())
	if err != nil {
		t.Fatal(err)
	}
	renamed, _ := affidavit.NewSchema("a", "b", "c", "d", "e", "f", "g")
	tgt, err := affidavit.NewTable(renamed, fixture.TargetRows())
	if err != nil {
		t.Fatal(err)
	}
	opts := affidavit.DefaultOptions()
	opts.Seed = 1

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	interrupted, _, err := affidavit.ExplainRenamedContext(ctx, src, tgt, opts)
	if err != nil {
		t.Fatalf("cancelled context: err = %v, want partial result", err)
	}
	if !interrupted.Stats.Cancelled {
		t.Error("cancelled context: Stats.Cancelled not set — ctx did not reach the search")
	}

	res, _, err := affidavit.ExplainRenamedContext(context.Background(), src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := affidavit.ExplainRenamed(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != ref.Cost || res.Report() != ref.Report() {
		t.Error("context variant diverges from ExplainRenamed")
	}
}
