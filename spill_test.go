package affidavit_test

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"affidavit"
	"affidavit/internal/datasets"
	"affidavit/internal/gen"
)

// spillRows caps dataset sizes so the full-registry sweep stays fast under
// the race detector while still spilling at the test budget.
func spillRows(spec datasets.Spec) int {
	rows := spec.Rows
	if rows > 600 {
		rows = 600
	}
	if spec.DataAttrs > 40 && rows > 150 {
		rows = 150
	}
	return rows
}

// spillTestBudget is small enough that every dataset's search both groups
// blocking refinements externally (any refined attribute with more than a
// few dozen distinct values busts the share) and streams the end-state
// matching through disk partitions.
const spillTestBudget = 8 << 10

// explanationBytes encodes everything seed-determined about a result —
// explanation, SQL, costs — while zeroing the stats, whose spill counters
// legitimately differ between budgeted and unbudgeted runs.
func explanationBytes(t *testing.T, res *affidavit.Result) []byte {
	t.Helper()
	jr := res.JSONResult("spill_equivalence")
	jr.Stats = affidavit.JSONStats{}
	b, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// spillComponents is a concurrency-safe recorder of EventSpill components.
type spillComponents struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (c *spillComponents) Observe(ev affidavit.Event) {
	if ev.Kind != affidavit.EventSpill {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = make(map[string]bool)
	}
	c.seen[ev.Component] = true
}

// TestSpillEquivalence is the out-of-core acceptance check: on every
// registry dataset, an artificially tiny memory budget forces spilling in
// both blocking's grouping pass and delta.Build's multiset matching, and
// the resulting explanation bytes equal the unbudgeted run's — for the
// sequential and the parallel engine. Run under -race in CI, this also
// exercises concurrent refinements over one spill manager.
func TestSpillEquivalence(t *testing.T) {
	for _, spec := range datasets.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tab, err := spec.BuildRows(spillRows(spec), 7)
			if err != nil {
				t.Fatal(err)
			}
			p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				plain, err := affidavit.New(affidavit.WithSeed(3), affidavit.WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				comps := &spillComponents{}
				budgeted, err := affidavit.New(
					affidavit.WithSeed(3),
					affidavit.WithWorkers(workers),
					affidavit.WithMemBudget(spillTestBudget),
					affidavit.WithObserver(comps),
				)
				if err != nil {
					t.Fatal(err)
				}
				want, err := plain.Explain(context.Background(), p.Inst.Source, p.Inst.Target)
				if err != nil {
					t.Fatal(err)
				}
				got, err := budgeted.Explain(context.Background(), p.Inst.Source, p.Inst.Target)
				if err != nil {
					t.Fatal(err)
				}
				if want.Stats.SpilledBytes != 0 {
					t.Fatalf("workers=%d: unbudgeted run reports spilling", workers)
				}
				if got.Stats.SpilledBytes == 0 || got.Stats.SpillPartitions == 0 {
					t.Fatalf("workers=%d: budgeted run did not spill (bytes=%d parts=%d)",
						workers, got.Stats.SpilledBytes, got.Stats.SpillPartitions)
				}
				if !comps.seen["blocking"] || !comps.seen["convert"] {
					t.Fatalf("workers=%d: spill components %v, want blocking and convert", workers, comps.seen)
				}
				wb, gb := explanationBytes(t, want), explanationBytes(t, got)
				if string(wb) != string(gb) {
					t.Errorf("workers=%d: budgeted explanation differs from in-memory one\nwant %s\ngot  %s",
						workers, wb, gb)
				}
			}
		})
	}
}

// TestSpillSlabInteraction pins the spill × pooled-slab boundary: with a
// budget, blocking refinements take the eager spill-accounted path, while
// unbudgeted runs count surpluses through process-global pooled scratch
// (blocking's countPool) and defer materialisation. Interleaving budgeted
// and unbudgeted explains in one process therefore hands each mode slabs
// the other mode dirtied — if any pooled state survived a run, or the lazy
// path diverged from the eager one, the explanation bytes would drift from
// the reference. Runs on a shape-diverse registry subset, both engines;
// the full-registry single-pass sweep is TestSpillEquivalence.
func TestSpillSlabInteraction(t *testing.T) {
	for _, name := range []string{"bridges", "ncvoter-1k", "horse", "flight-1k"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := datasets.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := spec.BuildRows(spillRows(spec), 17)
			if err != nil {
				t.Fatal(err)
			}
			p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 17})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				explain := func(budget int64) *affidavit.Result {
					opts := []affidavit.Option{affidavit.WithSeed(9), affidavit.WithWorkers(workers)}
					if budget > 0 {
						opts = append(opts, affidavit.WithMemBudget(budget))
					}
					ex, err := affidavit.New(opts...)
					if err != nil {
						t.Fatal(err)
					}
					res, err := ex.Explain(context.Background(), p.Inst.Source, p.Inst.Target)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				ref := explanationBytes(t, explain(0))
				// Alternate modes twice so each run inherits scratch the
				// opposite mode left in the pools.
				for round, budget := range []int64{spillTestBudget, 0, spillTestBudget, 0} {
					res := explain(budget)
					if budget > 0 && res.Stats.SpilledBytes == 0 {
						t.Fatalf("workers=%d round %d: budgeted run did not spill", workers, round)
					}
					if got := explanationBytes(t, res); string(got) != string(ref) {
						t.Errorf("workers=%d round %d (budget=%d): explanation drifted from reference\nwant %s\ngot  %s",
							workers, round, budget, ref, got)
					}
				}
			}
		})
	}
}

// eventRecorder captures a full event stream (unlike spillComponents,
// which only records components).
type eventRecorder struct {
	mu     sync.Mutex
	events []affidavit.Event
}

func (r *eventRecorder) Observe(ev affidavit.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// TestSpillEventDeterminism: under a budget the event stream — spill
// events included — is identical across repeated runs and across worker
// counts: spill totals aggregate per run and emit from the polling
// goroutine, so the determinism contract survives going out of core.
func TestSpillEventDeterminism(t *testing.T) {
	spec, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := spec.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []affidavit.Event {
		rec := &eventRecorder{}
		ex, err := affidavit.New(
			affidavit.WithSeed(11),
			affidavit.WithWorkers(workers),
			affidavit.WithMemBudget(spillTestBudget),
			affidavit.WithObserver(rec),
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Explain(context.Background(), p.Inst.Source, p.Inst.Target); err != nil {
			t.Fatal(err)
		}
		return rec.events
	}
	want := run(1)
	spills := 0
	for _, ev := range want {
		if ev.Kind == affidavit.EventSpill {
			spills++
		}
	}
	if spills == 0 {
		t.Fatal("budgeted stream has no spill events")
	}
	for _, workers := range []int{1, 4} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events vs %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: event %d differs: %+v vs %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSpillEquivalenceStreamedIngest covers the third spill stage: under a
// tiny budget a streamed snapshot pages cold column chunks to disk during
// ingest, and the explanation still matches the unbudgeted streamed run.
func TestSpillEquivalenceStreamedIngest(t *testing.T) {
	spec, err := datasets.Get("flight-500k")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := spec.BuildRows(4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pair := func(ex *affidavit.Explainer) (*affidavit.Result, error) {
		return ex.ExplainSources(context.Background(),
			affidavit.TableSource(p.Inst.Source), affidavit.TableSource(p.Inst.Target))
	}
	plain, err := affidavit.New(affidavit.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	comps := &spillComponents{}
	budgeted, err := affidavit.New(affidavit.WithSeed(3),
		affidavit.WithMemBudget(16<<10), affidavit.WithObserver(comps))
	if err != nil {
		t.Fatal(err)
	}
	want, err := pair(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pair(budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if !comps.seen["ingest"] {
		t.Fatalf("spill components %v, want ingest", comps.seen)
	}
	if got.Stats.SpilledBytes == 0 {
		t.Fatal("streamed budgeted run's Stats does not include ingest spill")
	}
	wb, gb := explanationBytes(t, want), explanationBytes(t, got)
	if string(wb) != string(gb) {
		t.Errorf("budgeted streamed explanation differs from unbudgeted one")
	}
}
