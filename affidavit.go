// Package affidavit explains differences between two unaligned snapshots of
// the same database table, reproducing the EDBT 2020 paper "Explaining
// Differences Between Unaligned Table Snapshots" (Fink, Meilicke,
// Stuckenschmidt).
//
// Given a source and a target snapshot under the same schema — with no
// record alignment and possibly rewritten primary keys — Explain searches
// for the minimum-description-length explanation: per-attribute
// transformation functions (identity, casing, constants, numeric
// addition/scaling, masking, trimming, affixing, prefix/suffix replacement,
// value mappings) plus a set of deleted and inserted records, such that the
// surviving "core" of the source maps bijectively onto the target.
//
// Quickstart:
//
//	ex, _ := affidavit.New(affidavit.WithWorkers(8))
//	res, err := ex.ExplainFiles(ctx, "before.csv", "after.csv")
//	if err != nil { ... }
//	fmt.Println(res.Report())          // what changed, as functions
//	fmt.Println(res.SQL("my_table"))   // executable migration script
//	out := res.Transform(unseenRecord) // generalises to unseen records
//
// The Explainer is the package's front door: construct one from functional
// options (WithAlpha, WithWorkers, WithObserver, …), then reuse it for
// explanations, streamed Sources, and Sessions. The flat Options struct and
// the Explain/ExplainCSV entry points below predate it and remain as thin
// compatibility shims with their historical zero-value semantics.
package affidavit

import (
	"context"
	"fmt"
	"io"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/report"
	"affidavit/internal/schemamatch"
	"affidavit/internal/search"
	"affidavit/internal/table"
)

// Table is a snapshot: a schema plus records. Construct with NewTable or
// the CSV readers.
type Table = table.Table

// Record is one value tuple.
type Record = table.Record

// Schema is an ordered attribute tuple.
type Schema = table.Schema

// Explanation is a valid explanation E = (S^{E−}, T^{E+}, F^E) with its
// core alignment.
type Explanation = delta.Explanation

// Stats reports how much work a run performed.
type Stats = search.Stats

// Start selects the search's start-state strategy.
type Start = search.StartStrategy

// Func is an instantiated attribute transformation function. Custom
// implementations must be total (identity outside their domain) and
// deterministic; Params is the function's description length ψ.
type Func = metafunc.Func

// Meta is a family of transformation functions learnable from a single
// input–output example. Domain experts extend Affidavit by implementing
// this interface and passing instances via Options.ExtraMetas — the Go
// rendition of the paper's "small Java interface" extension point.
type Meta = metafunc.Meta

// Start strategies (Section 4.2 of the paper).
const (
	// StartOverlap bootstraps from overlap-score record matching (Hs).
	StartOverlap = search.StartOverlap
	// StartID assumes one attribute at a time unchanged (Hid, default).
	StartID = search.StartID
	// StartEmpty starts from the all-undecided state (H∅).
	StartEmpty = search.StartEmpty
)

// Options configures the legacy Explain entry points. Zero value fields
// fall back to the defaults of DefaultOptions — which makes explicit
// Alpha = 0 or Theta = 0 inexpressible here; the Explainer's functional
// options (WithAlpha, WithTheta, …) do not share that wart. New code
// should construct an Explainer; Options remains supported and maps onto
// it via FromOptions.
type Options struct {
	// Alpha weighs unexplained records against function complexity in the
	// MDL cost 2α·L(T+) + 2(1−α)·L(F). Default 0.5.
	Alpha float64
	// Beta is the search branching factor β. Default 2.
	Beta int
	// QueueWidth is the bounded-queue width ϱ. Default 5.
	QueueWidth int
	// Start is the start-state strategy. Default StartID.
	Start Start
	// MaxBlockSize bounds overlap matching for StartOverlap. Default 100000.
	MaxBlockSize int
	// Theta is the estimated fraction of records showing a transformation's
	// effect (drives sampling sizes). Default 0.1.
	Theta float64
	// Rho is the sampling confidence level. Default 0.95.
	Rho float64
	// Seed drives all sampling; equal seeds give equal explanations.
	Seed int64
	// MaxExpansions caps search-state expansions; 0 = unlimited.
	MaxExpansions int
	// Workers bounds how many search probes run concurrently. 0 or 1 runs
	// sequentially; for any fixed Seed the parallel and sequential engines
	// return identical explanations. Workers > 1 also shards the end-state
	// conversion's multiset matching, with byte-identical output.
	Workers int
	// WarmGuard arms the warm-start quality guard used by session warm
	// paths (ExplainNext/ExplainWarm): when the previous explanation,
	// re-validated against the new pair, costs more than WarmGuard × the
	// previous run's compression ratio, the run escalates to a cold search
	// instead of anchoring on the stale structure (Stats.WarmEscalated
	// reports it). 0 disables the guard.
	WarmGuard float64
	// ExtraMetas extends the built-in meta-function library with
	// domain-specific families (see Meta).
	ExtraMetas []Meta
}

// DefaultOptions returns the paper's robust Hid configuration
// (β=2, ϱ=5, α=0.5, θ=0.1, ρ=0.95).
func DefaultOptions() Options {
	return fromSearch(search.DefaultOptions())
}

// OverlapOptions returns the paper's fast greedy Hs configuration
// (overlap start, β=1, ϱ=1).
func OverlapOptions() Options {
	return fromSearch(search.OverlapOptions())
}

func fromSearch(o search.Options) Options {
	return Options{
		Alpha:        o.Alpha,
		Beta:         o.Beta,
		QueueWidth:   o.QueueWidth,
		Start:        o.Start,
		MaxBlockSize: o.MaxBlockSize,
		Theta:        o.Induce.Theta,
		Rho:          o.Induce.Rho,
	}
}

func (o Options) toSearch() search.Options {
	so := search.DefaultOptions()
	if o.Alpha > 0 {
		so.Alpha = o.Alpha
	}
	if o.Beta > 0 {
		so.Beta = o.Beta
	}
	if o.QueueWidth > 0 {
		so.QueueWidth = o.QueueWidth
	}
	so.Start = o.Start
	if o.MaxBlockSize > 0 {
		so.MaxBlockSize = o.MaxBlockSize
	}
	if o.Theta > 0 {
		so.Induce.Theta = o.Theta
	}
	if o.Rho > 0 {
		so.Induce.Rho = o.Rho
	}
	so.Seed = o.Seed
	so.MaxExpansions = o.MaxExpansions
	so.Workers = o.Workers
	so.WarmGuard = o.WarmGuard
	return so
}

// Result is a finished explanation run.
type Result struct {
	// Explanation holds the learned functions, core alignment, deletions
	// and insertions.
	Explanation *Explanation
	// Cost is the explanation's MDL cost under the configured α.
	Cost float64
	// TrivialCost is the cost of explaining everything as delete+insert;
	// Cost/TrivialCost measures how much structure was found.
	TrivialCost float64
	// Stats reports search effort.
	Stats Stats
	// Trace is the run's structured trace — stage spans with wall times,
	// poll trajectory, spill totals — recorded when the Explainer was
	// built WithTracing; nil otherwise. Wall-clock values live only here,
	// so tracing never perturbs the deterministic outputs.
	Trace *Trace

	alpha float64
}

// Explain runs Affidavit on two snapshots sharing a schema. It is
// ExplainContext under context.Background().
func Explain(source, target *Table, opts Options) (*Result, error) {
	return ExplainContext(context.Background(), source, target, opts)
}

// ExplainContext is Explain under ctx: the search, its blocking
// refinements and the end-state conversion all observe cancellation and
// deadlines cooperatively. An interrupted run is not an error — it returns
// the best explanation found so far (always valid) with Stats.Cancelled
// set, so callers on a deadline keep the partial work and can distinguish
// complete from interrupted results.
//
// ExplainContext is a compatibility shim over the Explainer front-end:
// it behaves exactly like New(FromOptions(opts)) followed by Explain,
// minus the eager validation (configuration errors surface here, from the
// run, as they always did).
func ExplainContext(ctx context.Context, source, target *Table, opts Options) (*Result, error) {
	e := &Explainer{
		so:    opts.toSearch(),
		metas: append(metafunc.DefaultMetas(), opts.ExtraMetas...),
	}
	return e.Explain(ctx, source, target)
}

// ExplainCSV reads two CSV files (header row = schema) and explains their
// differences.
func ExplainCSV(sourcePath, targetPath string, opts Options) (*Result, error) {
	return ExplainCSVContext(context.Background(), sourcePath, targetPath, opts)
}

// ExplainCSVContext is ExplainCSV under ctx (see ExplainContext).
func ExplainCSVContext(ctx context.Context, sourcePath, targetPath string, opts Options) (*Result, error) {
	src, err := table.ReadCSVFile(sourcePath)
	if err != nil {
		return nil, fmt.Errorf("affidavit: reading source: %w", err)
	}
	tgt, err := table.ReadCSVFile(targetPath)
	if err != nil {
		return nil, fmt.Errorf("affidavit: reading target: %w", err)
	}
	return ExplainContext(ctx, src, tgt, opts)
}

// Report renders the explanation as a human-readable text report.
func (r *Result) Report() string {
	return report.Text(r.Explanation, delta.CostModel{Alpha: r.alpha})
}

// Diff renders up to limit aligned records as before/after views
// (limit ≤ 0 renders all).
func (r *Result) Diff(limit int) string {
	return report.Diff(r.Explanation, limit)
}

// SQL renders an executable migration script for the named table: one
// generalising UPDATE per transformed attribute plus per-record DELETEs and
// INSERTs for the noise.
func (r *Result) SQL(tableName string) string {
	return report.SQL(r.Explanation, tableName)
}

// Transform applies the learned attribute functions to a record — including
// records that were not part of either snapshot, which is what makes an
// explanation more useful than a diff.
func (r *Result) Transform(rec Record) Record {
	return r.Explanation.Funcs.Apply(rec)
}

// SchemaMatch is an alignment of renamed/reordered target attributes to
// source attributes.
type SchemaMatch = schemamatch.Match

// ExplainRenamed explains snapshots whose target schema was renamed or
// reordered (the paper's future-work problem variant): attributes are first
// matched by value-distribution similarity, the target is rewritten into
// the source schema, and the ordinary search runs on the aligned pair.
// ExplainRenamed is ExplainRenamedContext under context.Background().
func ExplainRenamed(source, target *Table, opts Options) (*Result, *SchemaMatch, error) {
	return ExplainRenamedContext(context.Background(), source, target, opts)
}

// ExplainRenamedContext is ExplainRenamed under ctx (see ExplainContext):
// the schema match runs to completion, then the aligned search honours
// cancellation and deadlines.
func ExplainRenamedContext(ctx context.Context, source, target *Table, opts Options) (*Result, *SchemaMatch, error) {
	m, err := schemamatch.Attributes(source, target)
	if err != nil {
		return nil, nil, err
	}
	aligned, err := m.AlignTarget(source, target)
	if err != nil {
		return nil, nil, err
	}
	res, err := ExplainContext(ctx, source, aligned, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, m, nil
}

// NewSchema builds a schema from attribute names.
func NewSchema(attrs ...string) (*Schema, error) { return table.NewSchema(attrs...) }

// NewTable builds a table from a schema and rows.
func NewTable(s *Schema, rows []Record) (*Table, error) { return table.FromRows(s, rows) }

// ReadCSV parses a snapshot from CSV (first row = header).
func ReadCSV(r io.Reader) (*Table, error) { return table.ReadCSV(r) }

// ReadCSVFile parses a snapshot from a CSV file.
func ReadCSVFile(path string) (*Table, error) { return table.ReadCSVFile(path) }
