package affidavit

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Source yields one snapshot's records incrementally, so an Explainer can
// intern them into the columnar backend chunk-by-chunk — a streamed
// snapshot never exists in memory as a [][]string. Implementations are
// single-use: Open prepares iteration and returns the schema, Next returns
// records until io.EOF, Close releases resources (and must be safe to call
// even after an error).
//
// Built-in sources cover the common transports — NewCSVSource /
// CSVFileSource (RFC 4180, header row = schema), NewJSONLSource (one JSON
// object per line), and NewRowsSource (any record iterator, e.g. a
// database/sql result set). Anything else just implements the three
// methods.
type Source interface {
	// Open prepares iteration and returns the snapshot's schema.
	Open() (*Schema, error)
	// Next returns the next record, or io.EOF when the snapshot is
	// exhausted. Returned records are owned by the caller.
	Next() (Record, error)
	// Close releases underlying resources.
	Close() error
}

// csvSource streams records out of CSV: the header row becomes the schema,
// every subsequent row one record, read row-at-a-time off the underlying
// reader.
type csvSource struct {
	open   func() (io.Reader, io.Closer, error)
	cr     *csv.Reader
	closer io.Closer
	schema *Schema
	row    int
}

// NewCSVSource returns a streaming Source over CSV content (first row =
// header). The reader is consumed incrementally; it is never buffered
// whole.
func NewCSVSource(r io.Reader) Source {
	return &csvSource{open: func() (io.Reader, io.Closer, error) { return r, nil, nil }}
}

// CSVFileSource returns a streaming Source over the CSV file at path. The
// file is opened lazily by Open and closed by Close.
func CSVFileSource(path string) Source {
	return &csvSource{open: func() (io.Reader, io.Closer, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return f, f, nil
	}}
}

func (s *csvSource) Open() (*Schema, error) {
	r, closer, err := s.open()
	if err != nil {
		return nil, err
	}
	s.closer = closer
	s.cr = csv.NewReader(r)
	s.cr.FieldsPerRecord = -1 // validate ourselves for a better message
	s.cr.ReuseRecord = true   // rows are copied into the intern layer anyway
	header, err := s.cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("affidavit: csv has no header row")
	}
	if err != nil {
		return nil, fmt.Errorf("affidavit: reading csv header: %w", err)
	}
	s.schema, err = NewSchema(header...)
	if err != nil {
		return nil, err
	}
	s.row = 1
	return s.schema, nil
}

func (s *csvSource) Next() (Record, error) {
	row, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("affidavit: reading csv: %w", err)
	}
	s.row++
	if len(row) != s.schema.Len() {
		return nil, fmt.Errorf("affidavit: csv row %d has %d fields, header has %d",
			s.row, len(row), s.schema.Len())
	}
	return Record(row).Clone(), nil
}

func (s *csvSource) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// jsonlSource streams records out of JSON Lines: one object per line, the
// schema derived from the first object's keys in document order (so the
// producer's column order is preserved, like a CSV header). Later objects
// may omit keys (empty string) but must not introduce new ones. Values may
// be strings, numbers (kept in their literal spelling), bools, or null
// (empty string).
type jsonlSource struct {
	r       io.Reader
	sc      *bufio.Scanner
	schema  *Schema
	pending Record // first record, decoded while deriving the schema
	line    int
	keybuf  []string // reused per record for sorted-key iteration
}

// NewJSONLSource returns a streaming Source over JSON Lines content.
func NewJSONLSource(r io.Reader) Source {
	return &jsonlSource{r: r}
}

func (s *jsonlSource) Open() (*Schema, error) {
	s.sc = bufio.NewScanner(s.r)
	s.sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	first, raw, err := s.nextObject()
	if err == io.EOF {
		return nil, fmt.Errorf("affidavit: jsonl has no records")
	}
	if err != nil {
		return nil, err
	}
	attrs, err := orderedKeys(raw)
	if err != nil {
		return nil, fmt.Errorf("affidavit: jsonl line %d: %w", s.line, err)
	}
	s.schema, err = NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	s.pending, err = s.record(first)
	if err != nil {
		return nil, err
	}
	return s.schema, nil
}

// orderedKeys extracts an object's keys in document order, so the first
// record's key order becomes the schema order (values must be scalars).
func orderedKeys(line []byte) ([]string, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("record is not a JSON object")
	}
	var keys []string
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		keys = append(keys, tok.(string))
		val, err := dec.Token()
		if err != nil {
			return nil, err
		}
		if _, nested := val.(json.Delim); nested {
			return nil, fmt.Errorf("key %q: nested values are not snapshot cells", keys[len(keys)-1])
		}
	}
	return keys, nil
}

// nextObject scans to the next non-blank line and decodes it, returning
// both the decoded object and the raw line (for ordered-key extraction).
func (s *jsonlSource) nextObject() (map[string]json.RawMessage, []byte, error) {
	for s.sc.Scan() {
		s.line++
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(line, &obj); err != nil {
			return nil, nil, fmt.Errorf("affidavit: jsonl line %d: %w", s.line, err)
		}
		return obj, line, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("affidavit: reading jsonl: %w", err)
	}
	return nil, nil, io.EOF
}

// record flattens one decoded object onto the schema. Keys are visited in
// sorted order so that when several keys are invalid, the error always
// names the same one — map-order iteration would make failure messages
// (and therefore logs and test goldens) vary between runs.
func (s *jsonlSource) record(obj map[string]json.RawMessage) (Record, error) {
	keys := s.keybuf[:0]
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.keybuf = keys

	rec := make(Record, s.schema.Len())
	for _, k := range keys {
		a := s.schema.Index(k)
		if a < 0 {
			return nil, fmt.Errorf("affidavit: jsonl line %d: key %q not in schema %v",
				s.line, k, s.schema.Attrs())
		}
		v, err := scalarString(obj[k])
		if err != nil {
			return nil, fmt.Errorf("affidavit: jsonl line %d, key %q: %w", s.line, k, err)
		}
		rec[a] = v
	}
	return rec, nil
}

// scalarString renders a JSON scalar as its snapshot value: strings
// verbatim, numbers in their literal spelling (no float round-trip), bools
// as true/false, null as the empty string.
func scalarString(raw json.RawMessage) (string, error) {
	b := bytes.TrimSpace(raw)
	if len(b) == 0 {
		return "", fmt.Errorf("empty value")
	}
	switch b[0] {
	case '"':
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return "", err
		}
		return s, nil
	case '{', '[':
		return "", fmt.Errorf("nested values are not snapshot cells")
	}
	if string(b) == "null" {
		return "", nil
	}
	// Numbers and booleans keep their literal spelling.
	return string(b), nil
}

func (s *jsonlSource) Next() (Record, error) {
	if s.pending != nil {
		rec := s.pending
		s.pending = nil
		return rec, nil
	}
	obj, _, err := s.nextObject()
	if err != nil {
		return nil, err
	}
	return s.record(obj)
}

func (s *jsonlSource) Close() error { return nil }

// rowsSource adapts any record iterator — a database/sql result set, a
// generator, a channel drain — to the Source interface.
type rowsSource struct {
	schema *Schema
	next   func() (Record, error)
}

// NewRowsSource returns a Source over an explicit schema and a record
// iterator. next must return io.EOF when exhausted; returned records must
// match the schema's width (validated during ingest).
func NewRowsSource(schema *Schema, next func() (Record, error)) Source {
	return &rowsSource{schema: schema, next: next}
}

func (s *rowsSource) Open() (*Schema, error) {
	if s.schema == nil {
		return nil, fmt.Errorf("affidavit: rows source needs a schema")
	}
	return s.schema, nil
}

func (s *rowsSource) Next() (Record, error) { return s.next() }

func (s *rowsSource) Close() error { return nil }

// TableSource adapts an in-memory Table to the Source interface, so
// already-materialised snapshots can flow through the same ingest path.
func TableSource(t *Table) Source {
	i := 0
	return NewRowsSource(t.Schema(), func() (Record, error) {
		if i >= t.Len() {
			return nil, io.EOF
		}
		r := t.Record(i)
		i++
		return r, nil
	})
}
