// Allocation-regression tests: the raw-speed pass drove the hot-path
// allocation counts down by replacing per-call maps, packed string keys and
// throwaway scratch with pooled slabs and open-addressing tables. These
// tests pin the two headline workloads — the warm session chain
// (BenchmarkChain/warm) and the scale-20 Figure 5 cold search — under
// explicit allocs-per-run ceilings so a future change that quietly
// reintroduces per-record or per-state allocations fails CI instead of
// only moving a benchmark number.
//
// The ceilings carry ~30% headroom over the measured counts (see the
// baselines recorded in BENCH_8.json), so ordinary drift — a few extra
// allocations per poll, a new trace field — passes, while regressing to the
// pre-pass shape (3-5x the ceiling) cannot.
package affidavit_test

import (
	"context"
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/search"
	"affidavit/internal/session"
)

// TestAllocRegressionWarmChain mirrors BenchmarkChain/warm: one session
// explains a 4-step ncvoter chain with a shared dictionary pool and
// warm-started searches.
func TestAllocRegressionWarmChain(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression runs full searches; skipped in -short")
	}
	ds, err := datasets.Get("ncvoter-1k")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(41)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := gen.MakeChain(tab, gen.ChainConfig{Steps: 4, Eta: 0.1, Tau: 0.5, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Seed = 41
	allocs := testing.AllocsPerRun(1, func() {
		sess := session.New(ch.Snapshots[0], opts, nil)
		for s := 1; s < len(ch.Snapshots); s++ {
			if _, err := sess.ExplainNext(context.Background(), ch.Snapshots[s]); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Measured 369k allocs/run after the raw-speed pass (down from ~1.7M
	// in the BENCH_5 era).
	const ceiling = 480_000
	t.Logf("warm chain: %.0f allocs/run (ceiling %d)", allocs, ceiling)
	if allocs > ceiling {
		t.Errorf("warm chain allocates %.0f per run, over the %d ceiling — a hot path regressed to per-record allocation", allocs, ceiling)
	}
}

// TestAllocRegressionScale20 mirrors BenchmarkFigure5Rows/scale20/seq: a
// cold sequential search over the 20%-scaled flight instance.
func TestAllocRegressionScale20(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression runs full searches; skipped in -short")
	}
	ds, err := datasets.Get("flight-500k")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.BuildRows(20000, 38)
	if err != nil {
		t.Fatal(err)
	}
	base, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := base.Scale(0.20, 20)
	if err != nil {
		t.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Seed = 1
	opts.Workers = 1
	var inst *delta.Instance = p.Inst
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := search.Run(context.Background(), inst, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 711k allocs/run after the raw-speed pass (down from ~2.85M
	// in the BENCH_5 era).
	const ceiling = 950_000
	t.Logf("scale20 cold: %.0f allocs/run (ceiling %d)", allocs, ceiling)
	if allocs > ceiling {
		t.Errorf("scale20 cold search allocates %.0f per run, over the %d ceiling — a hot path regressed to per-record allocation", allocs, ceiling)
	}
}
