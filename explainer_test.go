package affidavit_test

import (
	"context"
	"strings"
	"testing"

	"affidavit"
)

// sameResult asserts two runs produced byte-identical explanations and the
// same deterministic statistics.
func sameResult(t *testing.T, a, b *affidavit.Result) {
	t.Helper()
	if a.Report() != b.Report() {
		t.Errorf("reports differ:\n%s\nvs\n%s", a.Report(), b.Report())
	}
	if a.Cost != b.Cost || a.TrivialCost != b.TrivialCost {
		t.Errorf("costs differ: %v/%v vs %v/%v", a.Cost, a.TrivialCost, b.Cost, b.TrivialCost)
	}
	as, bs := a.Stats, b.Stats
	as.Duration, bs.Duration = 0, 0
	if as != bs {
		t.Errorf("stats differ: %+v vs %+v", as, bs)
	}
}

// TestLegacyOptionsMapIdentically is the regression for the Options →
// Explainer bridge: the legacy Options{Alpha: 0.5} path (every other field
// zero, relying on the historical zero-value fallbacks — including the
// wart that a zero Start means StartOverlap, not the DefaultOptions
// StartID) must produce the same run as the functional-option construction
// of what it historically meant — and as FromOptions.
func TestLegacyOptionsMapIdentically(t *testing.T) {
	src, tgt := figure1Tables(t)
	ctx := context.Background()

	legacy, err := affidavit.Explain(src, tgt, affidavit.Options{Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The explicit spelling of the historical mapping: defaults for β, ϱ,
	// θ, ρ — but Start is the zero strategy, StartOverlap.
	ex, err := affidavit.New(
		affidavit.WithAlpha(0.5),
		affidavit.WithStart(affidavit.StartOverlap),
		affidavit.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	modern, err := ex.Explain(ctx, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, legacy, modern)

	bridged, err := affidavit.New(affidavit.FromOptions(affidavit.Options{Alpha: 0.5, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	viaBridge, err := bridged.Explain(ctx, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, legacy, viaBridge)

	// The zero Options value maps to the full default configuration.
	zero, err := affidavit.Explain(src, tgt, affidavit.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, legacy, zero)
}

// TestExplicitZerosRepresentable: WithAlpha(0) and WithTheta(0) must mean
// zero — the legacy struct silently swapped both for their defaults.
func TestExplicitZerosRepresentable(t *testing.T) {
	src, tgt := figure1Tables(t)
	ctx := context.Background()

	// Legacy wart, documented: Alpha 0 falls back to 0.5.
	legacyZero, err := affidavit.Explain(src, tgt, affidavit.Options{Alpha: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if legacyZero.TrivialCost == 0 {
		t.Fatal("legacy Alpha:0 unexpectedly ran at α=0")
	}

	// Functional options: α = 0 is real. The trivial explanation costs
	// 2α·|A|·|T|, so it must be exactly 0.
	ex, err := affidavit.New(affidavit.WithAlpha(0), affidavit.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := ex.Explain(ctx, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if zero.TrivialCost != 0 {
		t.Errorf("TrivialCost = %v under α=0, want 0", zero.TrivialCost)
	}
	if err := zero.Explanation.Validate(); err != nil {
		t.Error(err)
	}

	// θ = 0 is honoured: the run completes with minimal sampling and stays
	// valid. (The legacy Theta:0 maps to 0.1, asserted by equality with the
	// default run.)
	exTheta, err := affidavit.New(affidavit.WithTheta(0), affidavit.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	thetaZero, err := exTheta.Explain(ctx, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := thetaZero.Explanation.Validate(); err != nil {
		t.Error(err)
	}
	legacyTheta, err := affidavit.Explain(src, tgt, affidavit.Options{Theta: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defaults, err := affidavit.Explain(src, tgt, affidavit.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, legacyTheta, defaults)
}

// TestNewValidatesEagerly: a misconfigured Explainer fails at New, not on
// its first run.
func TestNewValidatesEagerly(t *testing.T) {
	cases := []struct {
		name string
		opt  affidavit.Option
		want string
	}{
		{"alpha", affidavit.WithAlpha(1.5), "Alpha"},
		{"beta", affidavit.WithBeta(0), "Beta"},
		{"queue", affidavit.WithQueueWidth(0), "QueueWidth"},
		{"theta", affidavit.WithTheta(1.5), "Theta"},
		{"rho", affidavit.WithRho(-0.1), "Rho"},
		{"workers", affidavit.WithWorkers(-1), "Workers"},
		{"warmguard", affidavit.WithWarmGuard(-1), "WarmGuard"},
	}
	for _, c := range cases {
		if _, err := affidavit.New(c.opt); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %s", c.name, err, c.want)
		}
	}
	if _, err := affidavit.New(); err != nil {
		t.Errorf("default construction failed: %v", err)
	}
}

// TestWithOverlapConfig mirrors the legacy OverlapOptions preset.
func TestWithOverlapConfig(t *testing.T) {
	src, tgt := figure1Tables(t)
	opts := affidavit.OverlapOptions()
	opts.Seed = 1
	legacy, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := affidavit.New(affidavit.WithOverlapConfig(), affidavit.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	modern, err := ex.Explain(context.Background(), src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, legacy, modern)
}

// TestExplainerSessionMatchesLegacy: sessions created from an Explainer
// behave like legacy NewSession ones.
func TestExplainerSessionMatchesLegacy(t *testing.T) {
	src, tgt := figure1Tables(t)
	opts := affidavit.DefaultOptions()
	opts.Seed = 1
	legacySess := affidavit.NewSession(src, opts)
	legacy, err := legacySess.ExplainNext(tgt)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := affidavit.New(affidavit.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	sess := ex.Session(src)
	modern, err := sess.ExplainNext(tgt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, legacy, modern)
}

// TestLegacyBoundaryThetaStillRuns: θ = 1 and ρ = 1 are degenerate but
// defined and predate validation — the shims must keep accepting them.
func TestLegacyBoundaryThetaStillRuns(t *testing.T) {
	src, tgt := figure1Tables(t)
	res, err := affidavit.Explain(src, tgt, affidavit.Options{Theta: 1, Rho: 1, Seed: 1})
	if err != nil {
		t.Fatalf("legacy Theta=1/Rho=1 rejected: %v", err)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Error(err)
	}
}
