package affidavit_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"affidavit"
	"affidavit/internal/fixture"
)

func figure1Tables(t *testing.T) (*affidavit.Table, *affidavit.Table) {
	t.Helper()
	s, err := affidavit.NewSchema("ID1", "ID2", "Date", "Type", "Val", "Unit", "Org")
	if err != nil {
		t.Fatal(err)
	}
	src, err := affidavit.NewTable(s, fixture.SourceRows())
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := affidavit.NewTable(s, fixture.TargetRows())
	if err != nil {
		t.Fatal(err)
	}
	return src, tgt
}

func TestExplainRunningExample(t *testing.T) {
	src, tgt := figure1Tables(t)
	opts := affidavit.DefaultOptions()
	opts.Seed = 1
	res, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != fixture.ReferenceCost {
		t.Errorf("cost = %v, want %d", res.Cost, fixture.ReferenceCost)
	}
	if res.TrivialCost != fixture.TrivialCost {
		t.Errorf("trivial cost = %v, want %d", res.TrivialCost, fixture.TrivialCost)
	}
	if res.Explanation.CoreSize() != 13 {
		t.Errorf("core = %d, want 13", res.Explanation.CoreSize())
	}
	if !strings.Contains(res.Report(), "x ↦ x / 1000") {
		t.Error("report missing learned division")
	}
	if !strings.Contains(res.SQL("t"), "UPDATE") {
		t.Error("SQL export empty")
	}
	if !strings.Contains(res.Diff(1), "↦") {
		t.Error("diff view empty")
	}
}

// TestTransformGeneralises: the learned explanation must transform an
// unseen record — the paper's "additional full system conversions can be
// avoided" benefit.
func TestTransformGeneralises(t *testing.T) {
	src, tgt := figure1Tables(t)
	opts := affidavit.DefaultOptions()
	opts.Seed = 1
	res, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	unseen := affidavit.Record{"S99", "0099", "20190101", "G", "123000", "USD", "NEWCO"}
	got := res.Transform(unseen)
	// Val ÷ 1000, Unit constant; unseen keys pass through the mappings.
	if got[4] != "123" {
		t.Errorf("Val = %q, want 123", got[4])
	}
	if got[5] != "k $" {
		t.Errorf("Unit = %q, want k $", got[5])
	}
	if got[3] != "G" || got[6] != "NEWCO" {
		t.Error("identity attributes altered")
	}
}

func TestExplainCSVRoundTrip(t *testing.T) {
	src, tgt := figure1Tables(t)
	dir := t.TempDir()
	sp := filepath.Join(dir, "source.csv")
	tp := filepath.Join(dir, "target.csv")
	writeCSV(t, sp, src)
	writeCSV(t, tp, tgt)
	opts := affidavit.DefaultOptions()
	opts.Seed = 1
	res, err := affidavit.ExplainCSV(sp, tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != fixture.ReferenceCost {
		t.Errorf("cost via CSV = %v, want %d", res.Cost, fixture.ReferenceCost)
	}
	if _, err := affidavit.ExplainCSV("/missing.csv", tp, opts); err == nil {
		t.Error("missing source accepted")
	}
	if _, err := affidavit.ExplainCSV(sp, "/missing.csv", opts); err == nil {
		t.Error("missing target accepted")
	}
}

func writeCSV(t *testing.T, path string, tab *affidavit.Table) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tab.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

func TestOptionDefaultsFill(t *testing.T) {
	// Zero options must behave like DefaultOptions (not crash on β=0).
	src, tgt := figure1Tables(t)
	res, err := affidavit.Explain(src, tgt, affidavit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > fixture.TrivialCost {
		t.Errorf("zero-options run produced cost %v above trivial", res.Cost)
	}
}

func TestOverlapOptionsShape(t *testing.T) {
	o := affidavit.OverlapOptions()
	if o.Start != affidavit.StartOverlap || o.Beta != 1 || o.QueueWidth != 1 {
		t.Errorf("OverlapOptions = %+v", o)
	}
	d := affidavit.DefaultOptions()
	if d.Start != affidavit.StartID || d.Beta != 2 || d.QueueWidth != 5 {
		t.Errorf("DefaultOptions = %+v", d)
	}
	if d.Theta != 0.1 || d.Rho != 0.95 || d.Alpha != 0.5 {
		t.Errorf("statistical defaults wrong: %+v", d)
	}
}

func TestExplainSchemaMismatch(t *testing.T) {
	s1, _ := affidavit.NewSchema("a")
	s2, _ := affidavit.NewSchema("b")
	t1, _ := affidavit.NewTable(s1, []affidavit.Record{{"x"}})
	t2, _ := affidavit.NewTable(s2, []affidavit.Record{{"x"}})
	if _, err := affidavit.Explain(t1, t2, affidavit.DefaultOptions()); err == nil {
		t.Error("schema mismatch accepted")
	}
}
