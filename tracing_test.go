package affidavit_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"affidavit"
	"affidavit/internal/datasets"
	"affidavit/internal/gen"
)

// explainTraced runs one seeded explanation, optionally traced, and
// returns the result plus the raw event stream the configured observer
// saw.
func explainTraced(t *testing.T, seed int64, tracing bool) (*affidavit.Result, []affidavit.Event) {
	t.Helper()
	rec := &recorder{}
	opts := []affidavit.Option{
		affidavit.WithSeed(seed),
		affidavit.WithObserver(rec),
	}
	if tracing {
		opts = append(opts, affidavit.WithTracing())
	}
	ex, err := affidavit.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := figure1Tables(t)
	res, err := ex.ExplainSources(context.Background(),
		affidavit.TableSource(src), affidavit.TableSource(tgt))
	if err != nil {
		t.Fatal(err)
	}
	return res, rec.events
}

// TestTracingByteIdentical: turning tracing on changes nothing the
// determinism contract covers — Result.JSON and the raw event stream are
// byte-identical to an untraced run; only Result.Trace appears.
func TestTracingByteIdentical(t *testing.T) {
	plain, plainEvents := explainTraced(t, 7, false)
	traced, tracedEvents := explainTraced(t, 7, true)

	if plain.Trace != nil {
		t.Error("untraced run carries a trace")
	}
	if traced.Trace == nil || !traced.Trace.Complete {
		t.Fatalf("traced run's trace = %+v, want a complete trace", traced.Trace)
	}
	pj, err := plain.JSON("t")
	if err != nil {
		t.Fatal(err)
	}
	tj, err := traced.JSON("t")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, tj) {
		t.Error("Result.JSON differs between traced and untraced runs")
	}
	assertSameEvents(t, "tracing", plainEvents, tracedEvents)
	// The trace agrees with the stream it folded.
	if traced.Trace.Polls.Polls != traced.Stats.Polls {
		t.Errorf("trace polls %d, stats polls %d", traced.Trace.Polls.Polls, traced.Stats.Polls)
	}
	if traced.Trace.Cost != traced.Cost {
		t.Errorf("trace cost %v, result cost %v", traced.Trace.Cost, traced.Cost)
	}
}

// TestTracingConcurrentRuns: two explanations interleaving on one traced
// Explainer produce two complete traces that never cross — each run's
// recorder rides its own context, so concurrent event streams cannot
// bleed into each other's trace. Run under -race this also proves the
// recorder path is race-clean.
func TestTracingConcurrentRuns(t *testing.T) {
	ex, err := affidavit.New(affidavit.WithSeed(3), affidavit.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	// Two different problem instances, so the two runs have different
	// poll counts — crossed traces would disagree with their results.
	mkPair := func(seed int64) (*affidavit.Table, *affidavit.Table) {
		p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return p.Inst.Source, p.Inst.Target
	}
	results := make([]*affidavit.Result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, tgt := mkPair(int64(11 + i))
			res, err := ex.ExplainSources(context.Background(),
				affidavit.TableSource(src), affidavit.TableSource(tgt))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatal("a run failed")
		}
		tr := res.Trace
		if tr == nil || !tr.Complete {
			t.Fatalf("run %d: trace = %+v, want complete", i, tr)
		}
		// Each trace must describe exactly its own run.
		if tr.Polls.Polls != res.Stats.Polls {
			t.Errorf("run %d: trace polls %d, stats polls %d — traces crossed",
				i, tr.Polls.Polls, res.Stats.Polls)
		}
		if tr.Cost != res.Cost {
			t.Errorf("run %d: trace cost %v, result cost %v", i, tr.Cost, res.Cost)
		}
		for _, stage := range []string{"ingest:source", "ingest:target", "search"} {
			if tr.SpanFor(stage) == nil {
				t.Errorf("run %d: trace missing span %q", i, stage)
			}
		}
	}
	if results[0].Trace.ID == results[1].Trace.ID {
		t.Error("both runs share one trace ID")
	}
}

// TestWithObserverNil: a nil observer is a no-op, not a panic — callers
// can pass conditionally-built observers straight through.
func TestWithObserverNil(t *testing.T) {
	ex, err := affidavit.New(affidavit.WithSeed(1), affidavit.WithObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := figure1Tables(t)
	res, err := ex.ExplainSources(context.Background(),
		affidavit.TableSource(src), affidavit.TableSource(tgt))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Errorf("cost %v, want a real explanation", res.Cost)
	}
}
