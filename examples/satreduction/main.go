// Satreduction demonstrates the paper's NP-hardness construction (Theorem
// 3.12, Figure 2): a 3-SAT formula is reduced to an Explain-Table-Delta
// instance whose optimal explanation reveals whether the formula is
// satisfiable — the formula has a model exactly when no source record needs
// to be deleted, and the model can be read off the optimal attribute
// functions (id ⇒ true, negation ⇒ false).
//
// Run with: go run ./examples/satreduction
package main

import (
	"fmt"
	"log"

	"affidavit/internal/satreduce"
)

func main() {
	// The Figure 2 example: c = (v1 ∨ v2 ∨ v3) ∧ (¬v1 ∨ v4) ∧ ¬v3.
	c := satreduce.Example()
	fmt.Println("formula: (v1 ∨ v2 ∨ v3) ∧ (¬v1 ∨ v4) ∧ ¬v3")

	inst, err := satreduce.Reduce(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced instance: %d source records (one per clause), %d target records (one per clause model), %d attributes\n",
		inst.Source.Len(), inst.Target.Len(), inst.NumAttrs())
	fmt.Println("\nsource records:")
	for i := 0; i < inst.Source.Len(); i++ {
		fmt.Printf("  %v\n", inst.Source.Record(i))
	}

	sol, err := satreduce.Solve(c, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal explanation: cost %g, deleted sources %d, unexplained targets %d\n",
		sol.Cost, len(sol.Explanation.Deleted), len(sol.Explanation.Inserted))
	fmt.Printf("satisfiable: %v\n", sol.Satisfiable)
	if sol.Satisfiable {
		fmt.Print("model extracted from the attribute functions: ")
		for v, val := range sol.Model {
			fmt.Printf("v%d=%v ", v+1, val)
		}
		fmt.Println()
		fmt.Printf("model checks out: %v\n", c.Check(sol.Model))
	}

	// Contrast with an unsatisfiable formula.
	unsat := satreduce.CNF{
		NumVars: 1,
		Clauses: []satreduce.Clause{{{Var: 1}}, {{Var: 1, Neg: true}}},
	}
	us, err := satreduce.Solve(unsat, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(v1) ∧ (¬v1): satisfiable = %v — every explanation must delete a clause record (deleted = %d)\n",
		us.Satisfiable, len(us.Explanation.Deleted))
}
