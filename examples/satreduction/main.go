// Satreduction demonstrates the paper's NP-hardness construction (Theorem
// 3.12, Figure 2): a 3-SAT formula is reduced to an Explain-Table-Delta
// instance whose optimal explanation reveals whether the formula is
// satisfiable — the formula has a model exactly when no source record needs
// to be deleted, and the model can be read off the optimal attribute
// functions (id ⇒ true, negation ⇒ false).
//
// Run with: go run ./examples/satreduction
package main

import (
	"context"
	"fmt"
	"log"

	"affidavit"
	"affidavit/internal/satreduce"
)

func main() {
	// The Figure 2 example: c = (v1 ∨ v2 ∨ v3) ∧ (¬v1 ∨ v4) ∧ ¬v3.
	c := satreduce.Example()
	fmt.Println("formula: (v1 ∨ v2 ∨ v3) ∧ (¬v1 ∨ v4) ∧ ¬v3")

	inst, err := satreduce.Reduce(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced instance: %d source records (one per clause), %d target records (one per clause model), %d attributes\n",
		inst.Source.Len(), inst.Target.Len(), inst.NumAttrs())
	fmt.Println("\nsource records:")
	for i := 0; i < inst.Source.Len(); i++ {
		fmt.Printf("  %v\n", inst.Source.Record(i))
	}

	sol, err := satreduce.Solve(c, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal explanation: cost %g, deleted sources %d, unexplained targets %d\n",
		sol.Cost, len(sol.Explanation.Deleted), len(sol.Explanation.Inserted))
	fmt.Printf("satisfiable: %v\n", sol.Satisfiable)
	if sol.Satisfiable {
		fmt.Print("model extracted from the attribute functions: ")
		for v, val := range sol.Model {
			fmt.Printf("v%d=%v ", v+1, val)
		}
		fmt.Println()
		fmt.Printf("model checks out: %v\n", c.Check(sol.Model))
	}

	// Contrast with an unsatisfiable formula.
	unsat := satreduce.CNF{
		NumVars: 1,
		Clauses: []satreduce.Clause{{{Var: 1}}, {{Var: 1, Neg: true}}},
	}
	us, err := satreduce.Solve(unsat, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(v1) ∧ (¬v1): satisfiable = %v — every explanation must delete a clause record (deleted = %d)\n",
		us.Satisfiable, len(us.Explanation.Deleted))

	// The reduction is an ordinary problem instance, so the public search
	// can attack it too. The bounded best-first heuristic is NOT guaranteed
	// to reach the exact optimum on these adversarial instances — that gap
	// is Theorem 3.12's point: deciding deletion-freeness (= satisfiability)
	// is NP-hard, so a polynomial heuristic must sometimes fall short.
	ex, err := affidavit.New(affidavit.WithAlpha(0.5), affidavit.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	res, err := ex.Explain(context.Background(), inst.Source, inst.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheuristic search on the same instance: cost %g, deleted %d (exact optimum deleted %d)\n",
		res.Cost, len(res.Explanation.Deleted), len(sol.Explanation.Deleted))
}
