// Chain demonstrates snapshot-chain sessions: a nightly feed keeps
// re-applying the same systematic rewrite to a table (here: a price shift
// plus a status recoding) while records churn. A Session explains each
// consecutive pair incrementally — snapshot n against n+1 — reusing one
// shared dictionary pool and warm-starting every search with the previous
// run's explanation, so later runs confirm the recurring pattern in a
// couple of queue polls instead of re-discovering it.
//
// Run with: go run ./examples/chain
package main

import (
	"fmt"
	"log"

	"affidavit"
)

func main() {
	schema, err := affidavit.NewSchema("sku", "price_cents", "status")
	if err != nil {
		log.Fatal(err)
	}
	// Build a 4-snapshot chain: every night prices rise by 250 cents and
	// the legacy "in_stock" coding is migrated to "AVAILABLE"; one SKU is
	// retired and one — still arriving with the legacy coding from the
	// upstream system — is introduced, so the same migration recurs nightly.
	snapshots := []*affidavit.Table{mustTable(schema, [][]string{
		{"sku-001", "1099", "in_stock"},
		{"sku-002", "2499", "in_stock"},
		{"sku-003", "999", "sold_out"},
		{"sku-004", "1899", "in_stock"},
		{"sku-005", "350", "sold_out"},
		{"sku-006", "780", "in_stock"},
	})}
	next := 7
	for night := 0; night < 3; night++ {
		prev := snapshots[len(snapshots)-1]
		var rows [][]string
		for i := 1; i < prev.Len(); i++ { // drop the oldest SKU
			r := prev.Record(i)
			status := r[2]
			if status == "in_stock" {
				status = "AVAILABLE"
			}
			rows = append(rows, []string{r[0], plus250(r[1]), status})
		}
		rows = append(rows, []string{fmt.Sprintf("sku-%03d", next), "1500", "in_stock"})
		next++
		snapshots = append(snapshots, mustTable(schema, rows))
	}

	ex, err := affidavit.New(affidavit.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	session := ex.Session(snapshots[0])
	for i := 1; i < len(snapshots); i++ {
		res, err := session.ExplainNext(snapshots[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("── night %d → %d ─────────────────────────────\n", i-1, i)
		fmt.Print(res.Report())
		fmt.Printf("search effort: %d polls (start level %d)\n\n",
			res.Stats.Polls, res.Stats.StartLevel)
	}
	attrs, values := session.PoolStats()
	fmt.Printf("shared pool after %d runs: %d attribute dicts, %d interned values\n",
		session.Runs(), attrs, values)
}

func plus250(cents string) string {
	var v int
	fmt.Sscanf(cents, "%d", &v)
	return fmt.Sprintf("%d", v+250)
}

func mustTable(schema *affidavit.Schema, rows [][]string) *affidavit.Table {
	recs := make([]affidavit.Record, len(rows))
	for i, r := range rows {
		recs[i] = affidavit.Record(r)
	}
	t, err := affidavit.NewTable(schema, recs)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
