// Quickstart walks through the paper's running example (Figure 1): two
// snapshots of an ERP table whose composite primary key {ID1, ID2, Date}
// was rewritten by a software update. Affidavit aligns the records anyway,
// learns the systematic transformations, and beats the trivial
// delete-everything explanation 77 to 112.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"affidavit"
)

func main() {
	schema, err := affidavit.NewSchema("ID1", "ID2", "Date", "Type", "Val", "Unit", "Org")
	if err != nil {
		log.Fatal(err)
	}
	source, err := affidavit.NewTable(schema, []affidavit.Record{
		{"S01", "0000", "20130416", "A", "80000", "USD", "IBM"},
		{"S02", "0001", "20120128", "A", "180000", "USD", "IBM"},
		{"S03", "0002", "20130315", "A", "220000", "USD", "IBM"},
		{"S04", "0003", "20120128", "B", "3780000", "USD", "IBM"},
		{"S05", "0004", "20120731", "B", "425000", "USD", "IBM"},
		{"S06", "0005", "20120731", "C", "21000", "USD", "IBM"},
		{"S07", "0006", "20140503", "C", "422400", "USD", "IBM"},
		{"S08", "0007", "20140503", "C", "6540", "USD", "SAP"},
		{"S09", "0008", "20131021", "C", "9800", "USD", "SAP"},
		{"S10", "0009", "20121125", "C", "0", "USD", "SAP"},
		{"S11", "0010", "99991231", "D", "65", "USD", "SAP"},
		{"S12", "0011", "99991231", "D", "180000", "USD", "BASF"},
		{"S13", "0012", "99991231", "D", "220000", "USD", "BASF"},
		{"S14", "0013", "20150203", "D", "21000", "USD", "BASF"},
		{"S15", "0014", "20150213", "D", "65", "USD", "BASF"},
		{"S16", "0015", "20160807", "E", "80000", "USD", "BASF"},
		{"S17", "0016", "20161231", "E", "80000", "USD", "BASF"},
	})
	if err != nil {
		log.Fatal(err)
	}
	target, err := affidavit.NewTable(schema, []affidavit.Record{
		{"T01", "0000", "99991231", "A", "80", "k $", "IBM"},
		{"T02", "0001", "20120128", "A", "180", "k $", "IBM"},
		{"T03", "0002", "20120731", "C", "21", "k $", "IBM"},
		{"T04", "0003", "20120731", "B", "425", "k $", "IBM"},
		{"T05", "0004", "20121125", "B", "0.022", "k $", "DAB"},
		{"T06", "0005", "20130315", "A", "220", "k $", "IBM"},
		{"T07", "0006", "20130416", "A", "80", "k $", "IBM"},
		{"T08", "0007", "20131021", "C", "9.8", "k $", "SAP"},
		{"T09", "0008", "20140503", "C", "422.4", "k $", "IBM"},
		{"T10", "0009", "20140503", "C", "6.54", "k $", "SAP"},
		{"T11", "0010", "20150213", "D", "0.065", "k $", "BASF"},
		{"T12", "0011", "20161231", "E", "80", "k $", "BASF"},
		{"T13", "0012", "20180701", "D", "0.065", "k $", "SAP"},
		{"T14", "0013", "20180701", "D", "180", "k $", "BASF"},
		{"T15", "0014", "20180701", "D", "220", "k $", "BASF"},
		{"T16", "0015", "99991231", "F", "0.45", "k $", "SAP"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The Explainer is the package's front door: functional options, one
	// shared configuration for every explanation it runs.
	ex, err := affidavit.New(affidavit.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := ex.Explain(context.Background(), source, target)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Report())
	fmt.Printf("\ncost %g vs trivial %g — the paper's Section 3.1 arithmetic is 77 vs 112\n",
		res.Cost, res.TrivialCost)

	// The explanation generalises: transform a record that was in neither
	// snapshot, as a conversion script for the next migration would.
	unseen := affidavit.Record{"S99", "0099", "20191111", "E", "42000", "USD", "IBM"}
	fmt.Printf("\nunseen record %v\n   transforms to %v\n", unseen, res.Transform(unseen))

	fmt.Println("\nfirst aligned records:")
	fmt.Print(res.Diff(2))
}
