// Erpmigration simulates the paper's motivating industry scenario: a
// proprietary software update rewrote an ERP order table — reassigning the
// numeric order keys, rescaling amounts to thousands, rewriting the unit
// label and retiring the sentinel expiry date — while day-to-day business
// kept inserting and deleting orders on both sides of the migration.
//
// Affidavit reverse-engineers the conversion script from the two snapshots
// alone and then applies it to a batch of orders that arrived after the
// snapshot was taken, which is exactly the "avoid another full system
// conversion" payoff the paper's introduction promises. The learned
// explanation is also exported as SQL.
//
// Run with: go run ./examples/erpmigration
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"affidavit"
)

const (
	orders      = 400
	churnPerSat = 40 // records deleted / inserted around the migration
)

func main() {
	rng := rand.New(rand.NewSource(7))
	schema, err := affidavit.NewSchema("OrderKey", "Customer", "Product", "Amount", "Unit", "Expiry")
	if err != nil {
		log.Fatal(err)
	}

	// The pre-migration order book.
	customers := []string{"IBM", "SAP", "BASF", "DAB", "ACME"}
	products := []string{"LICENSE", "SUPPORT", "CLOUD", "TRAINING"}
	var book []affidavit.Record
	for i := 0; i < orders; i++ {
		expiry := fmt.Sprintf("20%02d%02d%02d", 20+rng.Intn(5), 1+rng.Intn(12), 1+rng.Intn(28))
		if rng.Intn(5) == 0 {
			expiry = "99991231" // the legacy "never expires" sentinel
		}
		book = append(book, affidavit.Record{
			fmt.Sprintf("%d", i),
			customers[rng.Intn(len(customers))],
			products[rng.Intn(len(products))],
			fmt.Sprintf("%d", (1+rng.Intn(999))*100),
			"USD",
			expiry,
		})
	}

	// The proprietary update: keys reassigned, amounts ÷1000, unit label
	// rewritten, sentinel expiry replaced by a concrete horizon date.
	migrate := func(r affidavit.Record, newKey int) affidavit.Record {
		out := r.Clone()
		out[0] = fmt.Sprintf("%d", newKey)
		out[3] = divideBy1000(r[3])
		out[4] = "kUSD"
		if r[5] == "99991231" {
			out[5] = "20300101"
		}
		return out
	}

	// Business churn: some orders vanish before the "after" snapshot, some
	// new ones appear only there.
	perm := rng.Perm(orders)
	core := perm[:orders-2*churnPerSat]
	deletedIdx := perm[orders-2*churnPerSat : orders-churnPerSat]
	freshIdx := perm[orders-churnPerSat:]

	var source, target []affidavit.Record
	for _, i := range append(append([]int{}, core...), deletedIdx...) {
		source = append(source, book[i])
	}
	newKeys := rng.Perm(orders)
	for n, i := range core {
		target = append(target, migrate(book[i], newKeys[n]))
	}
	for n, i := range freshIdx {
		target = append(target, migrate(book[i], newKeys[len(core)+n]))
	}
	rng.Shuffle(len(source), func(i, j int) { source[i], source[j] = source[j], source[i] })
	rng.Shuffle(len(target), func(i, j int) { target[i], target[j] = target[j], target[i] })

	src, err := affidavit.NewTable(schema, source)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := affidavit.NewTable(schema, target)
	if err != nil {
		log.Fatal(err)
	}

	ex, err := affidavit.New(affidavit.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	res, err := ex.Explain(context.Background(), src, tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Printf("\ncompression: %.0f%% of the trivial delete-everything cost\n",
		100*res.Cost/res.TrivialCost)

	// Late-arriving orders: convert them with the learned explanation
	// instead of re-running the vendor's migration.
	fmt.Println("\nconverting late-arriving orders with the learned explanation:")
	late := []affidavit.Record{
		{"9001", "ACME", "CLOUD", "128000", "USD", "99991231"},
		{"9002", "IBM", "SUPPORT", "5500", "USD", "20270315"},
	}
	for _, r := range late {
		fmt.Printf("  %v\n    → %v\n", r, res.Transform(r))
	}

	fmt.Println("\nmigration script (excerpt):")
	sql := res.SQL("orders")
	if len(sql) > 800 {
		sql = sql[:800] + "…\n"
	}
	fmt.Print(sql)
}

func divideBy1000(s string) string {
	// Exact decimal division for the simulation (values are n*100).
	var n int
	fmt.Sscanf(s, "%d", &n)
	whole := n / 1000
	frac := n % 1000
	if frac == 0 {
		return fmt.Sprintf("%d", whole)
	}
	out := fmt.Sprintf("%d.%03d", whole, frac)
	for out[len(out)-1] == '0' {
		out = out[:len(out)-1]
	}
	return out
}
