// Dedup demonstrates the data-integration use case from the paper's
// introduction: a target system was loaded from a legacy customer file
// (reformatted along the way) and then enriched with records from a second
// source. Which target records are redundant copies of the legacy file, and
// which are genuinely new?
//
// A keyed diff cannot answer this — the load assigned fresh surrogate keys.
// Affidavit aligns the redundant records by learning the reformatting
// (uppercased cities, "+49" phone prefixes, surrogate keys) and labels the
// enrichment records as insertions.
//
// Run with: go run ./examples/dedup
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"affidavit"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	schema, err := affidavit.NewSchema("CustID", "Name", "City", "Phone", "Segment")
	if err != nil {
		log.Fatal(err)
	}

	cities := []string{"Mannheim", "Berlin", "Hamburg", "Dresden", "Köln"}
	segments := []string{"retail", "wholesale", "online"}
	surname := func(i int) string {
		pool := []string{"mueller", "schmidt", "weber", "fischer", "wagner",
			"becker", "hoffmann", "koch", "richter", "klein"}
		return fmt.Sprintf("%s-%03d", pool[i%len(pool)], i/2)
	}

	// Legacy customer file (source snapshot).
	const legacy = 250
	var legacyRows []affidavit.Record
	for i := 0; i < legacy; i++ {
		legacyRows = append(legacyRows, affidavit.Record{
			fmt.Sprintf("L%04d", i),
			surname(i),
			cities[rng.Intn(len(cities))],
			fmt.Sprintf("0%d", 600000000+rng.Intn(99999999)),
			segments[rng.Intn(len(segments))],
		})
	}

	// Integration load: every legacy record was reformatted — surrogate
	// keys, uppercased city, international phone prefix.
	reformat := func(r affidavit.Record, key int) affidavit.Record {
		out := r.Clone()
		out[0] = fmt.Sprintf("C%05d", key)
		out[2] = strings.ToUpper(r[2])
		out[3] = "+49" + strings.TrimPrefix(r[3], "0")
		return out
	}
	keys := rng.Perm(legacy + 60)
	var targetRows []affidavit.Record
	for i, r := range legacyRows {
		targetRows = append(targetRows, reformat(r, keys[i]))
	}
	// Enrichment: 60 genuinely new customers from the second source,
	// already in target format.
	for i := 0; i < 60; i++ {
		targetRows = append(targetRows, affidavit.Record{
			fmt.Sprintf("C%05d", keys[legacy+i]),
			fmt.Sprintf("acquired-%03d", i),
			strings.ToUpper(cities[rng.Intn(len(cities))]),
			fmt.Sprintf("+49%d", 700000000+rng.Intn(99999999)),
			segments[rng.Intn(len(segments))],
		})
	}
	rng.Shuffle(len(targetRows), func(i, j int) {
		targetRows[i], targetRows[j] = targetRows[j], targetRows[i]
	})

	src, err := affidavit.NewTable(schema, legacyRows)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := affidavit.NewTable(schema, targetRows)
	if err != nil {
		log.Fatal(err)
	}

	ex, err := affidavit.New(affidavit.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	res, err := ex.Explain(context.Background(), src, tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	dupes := res.Explanation.CoreSize()
	fresh := len(res.Explanation.Inserted)
	fmt.Printf("\nintegration verdict: %d target records are redundant copies of the legacy file,\n", dupes)
	fmt.Printf("%d records are genuine enrichment (expected: %d and %d)\n", fresh, legacy, 60)
	if dupes == legacy && fresh == 60 {
		fmt.Println("✓ exact separation of redundant and new records")
	}
}
