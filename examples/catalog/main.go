// Catalog walks the snapshot-history catalog end to end, in process but
// over the real HTTP surface: register a table, push three successive
// snapshot versions of an orders feed, and read back the drift timeline
// and trend analytics the service derives from the explanation chain.
//
// Each push after the first becomes a job on the table's warm session —
// exactly what affidavitd does behind POST /tables/{name}/snapshots — so
// the stored chain is byte-identical to manual warm ExplainNext calls
// over the same sequence.
//
// Run with: go run ./examples/catalog
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"

	"affidavit"
	"affidavit/internal/catalog"
	"affidavit/internal/jobs"
)

// Three nightly versions of an orders table. Every night the ETL shifts
// amounts by +250 cents and migrates the legacy "open" status coding to
// "OPEN"; orders churn (one shipped order is archived, one new order
// arrives still carrying the legacy coding), so the same systematic
// rewrite recurs and the warm chain confirms it cheaply.
var snapshots = []string{
	`order,amount_cents,status
ord-001,1099,open
ord-002,2499,open
ord-003,999,shipped
ord-004,1899,open
ord-005,350,shipped
ord-006,780,open
`,
	`order,amount_cents,status
ord-002,2749,OPEN
ord-003,1249,shipped
ord-004,2149,OPEN
ord-005,600,shipped
ord-006,1030,OPEN
ord-007,1500,open
`,
	`order,amount_cents,status
ord-003,1499,shipped
ord-004,2399,OPEN
ord-005,850,shipped
ord-006,1280,OPEN
ord-007,1750,OPEN
ord-008,1500,open
`,
}

func main() {
	// The same assembly affidavitd performs at startup: one Explainer (the
	// seed pins the chain's determinism), an in-memory job store, the
	// catalog service over both, and a worker pool whose runner dispatches
	// catalog jobs back into the service.
	ex, err := affidavit.New(affidavit.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	store, err := jobs.Open(jobs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := catalog.NewService(catalog.Config{Explainer: ex, Jobs: store})
	if err != nil {
		log.Fatal(err)
	}
	pool := jobs.NewPool(store, func(ctx context.Context, rec jobs.Record, payload any) (*jobs.Outcome, error) {
		if rec.Kind != catalog.JobKind {
			return nil, fmt.Errorf("unexpected job kind %q", rec.Kind)
		}
		return svc.RunStep(ctx, rec, payload)
	}, jobs.PoolOptions{})
	pool.Start(context.Background())
	defer func() {
		pool.Close()
		if err := svc.Close(); err != nil {
			log.Fatal(err)
		}
		store.Close()
	}()

	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Register the table.
	resp, err := http.Post(ts.URL+"/tables?name=orders", "", nil)
	if err != nil {
		log.Fatal(err)
	}
	drain(resp)
	fmt.Printf("registered table %q → %s\n\n", "orders", resp.Status)

	// Push the three versions. The first seeds the chain; each later push
	// explains previous→new on the warm session and returns the stored
	// explanation bytes.
	for night, csv := range snapshots {
		resp := push(ts.URL, "orders", csv, fmt.Sprintf("nightly-etl-%d", night))
		fmt.Printf("push %d: %s  snapshot=%s\n", night, resp.Status, resp.Header.Get("X-Affidavit-Snapshot-Id"))
		if resp.StatusCode == http.StatusOK {
			var res struct {
				Explanation struct {
					Functions []struct {
						Attribute string `json:"attribute"`
						Display   string `json:"display"`
					} `json:"functions"`
				} `json:"explanation"`
			}
			decode(resp, &res)
			for _, f := range res.Explanation.Functions {
				fmt.Printf("    %-14s %s\n", f.Attribute, f.Display)
			}
		} else {
			drain(resp)
		}
	}

	// The drift timeline: snapshots with lineage, steps with summaries.
	var hist struct {
		Snapshots []struct {
			ID      string `json:"snapshot_id"`
			Parent  string `json:"parent_id"`
			Op      string `json:"op"`
			Records int    `json:"records"`
		} `json:"snapshots"`
		Steps []struct {
			SnapshotID string `json:"snapshot_id"`
			Status     string `json:"status"`
			Summary    *struct {
				Updates     int     `json:"updates"`
				Inserts     int     `json:"inserts"`
				Deletes     int     `json:"deletes"`
				Compression float64 `json:"compression"`
			} `json:"summary"`
		} `json:"steps"`
	}
	get(ts.URL+"/tables/orders/history", &hist)
	fmt.Println("\ndrift timeline (/tables/orders/history):")
	for _, s := range hist.Snapshots {
		parent := s.Parent
		if parent == "" {
			parent = "(chain root)"
		}
		fmt.Printf("  %s  ← %s  op=%s records=%d\n", s.ID, parent, s.Op, s.Records)
	}
	for _, st := range hist.Steps {
		fmt.Printf("  step → %s  %s", st.SnapshotID, st.Status)
		if st.Summary != nil {
			fmt.Printf("  (updates=%d inserts=%d deletes=%d compression=%.3f)",
				st.Summary.Updates, st.Summary.Inserts, st.Summary.Deletes, st.Summary.Compression)
		}
		fmt.Println()
	}

	// Trend analytics: attribute churn and the op mix over the chain.
	var trends struct {
		Attributes []struct {
			Attribute    string   `json:"attribute"`
			ChangedSteps int      `json:"changed_steps"`
			Updated      int      `json:"updated"`
			Kinds        []string `json:"kinds"`
		} `json:"attributes"`
		Ops struct {
			Updates int `json:"updates"`
			Inserts int `json:"inserts"`
			Deletes int `json:"deletes"`
		} `json:"ops"`
		Compression struct {
			Trajectory []float64 `json:"trajectory"`
		} `json:"compression"`
	}
	get(ts.URL+"/tables/orders/trends", &trends)
	fmt.Println("\ndrift trends (/tables/orders/trends):")
	for _, a := range trends.Attributes {
		fmt.Printf("  %-14s changed in %d steps, %d records updated, kinds=%v\n",
			a.Attribute, a.ChangedSteps, a.Updated, a.Kinds)
	}
	fmt.Printf("  op mix: %d updates, %d inserts, %d deletes\n",
		trends.Ops.Updates, trends.Ops.Inserts, trends.Ops.Deletes)
	fmt.Printf("  compression trajectory: %v\n", trends.Compression.Trajectory)
}

// push uploads one CSV snapshot as the multipart body affidavitd expects,
// tagging the lineage record with op.
func push(base, table, csv, op string) *http.Response {
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	part, err := mw.CreateFormFile("snapshot", "snapshot.csv")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := io.Copy(part, strings.NewReader(csv)); err != nil {
		log.Fatal(err)
	}
	if err := mw.WriteField("op", op); err != nil {
		log.Fatal(err)
	}
	mw.Close()
	resp, err := http.Post(base+"/tables/"+table+"/snapshots", mw.FormDataContentType(), &body)
	if err != nil {
		log.Fatal(err)
	}
	return resp
}

func get(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	decode(resp, into)
}

func decode(resp *http.Response, into any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
