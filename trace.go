package affidavit

import (
	"context"

	"affidavit/internal/obs"
	"affidavit/internal/trace"
)

// Trace is one explanation run's structured trace: per-stage wall-time
// spans (ingest source/target, search, finalize, convert), the
// warm/cold/escalated start decision, a bounded poll cost-curve sample,
// and spill totals. Traces are operational metadata recorded out-of-band:
// enabling tracing changes neither the deterministic event stream nor
// Result.JSON — wall-clock times live only here, exactly as
// Stats.Duration lives outside the deterministic JSON stats.
type Trace = trace.RunTrace

// TraceSpan is one stage's wall-time extent within a Trace.
type TraceSpan = trace.Span

// TraceRecorder is an Observer that folds one run's event stream into a
// Trace. Attach one recorder per run — interleaved runs through a single
// recorder produce crossed spans; concurrent runs each get their own (see
// WithTracing, which does exactly that).
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder for one run with a fresh random
// trace id.
func NewTraceRecorder() *TraceRecorder {
	return trace.NewRecorder(trace.NewID())
}

// NewTraceCollector returns an Observer for a sequential stream of runs
// (a chain, an eval sweep): each run's events fold into a fresh trace,
// flushed to onTrace at the run's done event — the observer behind the
// CLIs' -trace-out flag. Not for interleaved concurrent runs.
func NewTraceCollector(onTrace func(*Trace)) Observer {
	return trace.NewCollector(onTrace)
}

// ContextWithObserver attaches a per-run observer to ctx: every
// explanation (and ingest) that runs under the returned context forwards
// its events to o, in addition to the Explainer's configured observer.
// Attachments nest — an observer already on ctx keeps receiving. This is
// how a service attaches a per-request TraceRecorder across separate
// ingest (ReadSourceNamed) and explain (Session) calls without touching
// the shared Explainer. A nil o returns ctx unchanged.
func ContextWithObserver(ctx context.Context, o Observer) context.Context {
	if o == nil {
		return ctx
	}
	return obs.ContextWithSink(ctx, o.Observe)
}
