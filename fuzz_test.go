package affidavit_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"affidavit"
)

// drain reads a source to exhaustion and renders everything observable —
// schema, every record, and the terminal error — into one string, so two
// reads of the same bytes can be compared for determinism.
func drain(src affidavit.Source) string {
	var b strings.Builder
	schema, err := src.Open()
	if err != nil {
		fmt.Fprintf(&b, "open: %v", err)
		src.Close()
		return b.String()
	}
	fmt.Fprintf(&b, "schema: %v\n", schema.Attrs())
	for i := 0; ; i++ {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintf(&b, "next: %v", err)
			break
		}
		if len(rec) != schema.Len() {
			fmt.Fprintf(&b, "record %d: arity %d, schema %d", i, len(rec), schema.Len())
			break
		}
		fmt.Fprintf(&b, "%d: %q\n", i, []string(rec))
		if i > 4096 {
			b.WriteString("truncated\n")
			break
		}
	}
	if err := src.Close(); err != nil {
		fmt.Fprintf(&b, "close: %v", err)
	}
	return b.String()
}

// FuzzCSVSource: arbitrary bytes through the CSV ingest boundary must not
// panic, must yield only schema-arity records, and must read identically
// twice — streamed ingest is part of the deterministic pipeline.
func FuzzCSVSource(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n3,4\n"))
	f.Add([]byte("a,b\n1,2,3\n"))
	f.Add([]byte(`a,"b c"` + "\n" + `"x""y",2` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("héç,∆\nä,ß\n"))
	f.Add([]byte("a\n\"unterminated\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		first := drain(affidavit.NewCSVSource(bytes.NewReader(data)))
		second := drain(affidavit.NewCSVSource(bytes.NewReader(data)))
		if first != second {
			t.Errorf("two reads of the same CSV bytes diverge:\n--- first\n%s\n--- second\n%s", first, second)
		}
	})
}

// FuzzJSONLSource: arbitrary bytes through the JSONL ingest boundary must
// not panic and must read identically twice. This locks in the sorted-key
// error determinism the mapiter analyzer forced onto jsonlSource.record.
func FuzzJSONLSource(f *testing.F) {
	f.Add([]byte(`{"a":"1","b":"2"}` + "\n" + `{"b":"4","a":"3"}` + "\n"))
	f.Add([]byte(`{"a":1.50,"b":true,"c":null}` + "\n"))
	f.Add([]byte(`{"a":{"nested":1}}` + "\n"))
	f.Add([]byte(`{"z8":"1","z5":"1","z2":"1","z1":"1"}` + "\n" + `{"q":"0"}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		first := drain(affidavit.NewJSONLSource(bytes.NewReader(data)))
		second := drain(affidavit.NewJSONLSource(bytes.NewReader(data)))
		if first != second {
			t.Errorf("two reads of the same JSONL bytes diverge:\n--- first\n%s\n--- second\n%s", first, second)
		}
	})
}

// fuzzTable parses CSV fuzz bytes into a bounded table: small enough that
// an explanation run stays cheap, nil when the bytes don't describe one.
func fuzzTable(data []byte) (*affidavit.Table, bool) {
	src := affidavit.NewCSVSource(bytes.NewReader(data))
	defer src.Close()
	schema, err := src.Open()
	if err != nil || schema.Len() > 6 {
		return nil, false
	}
	var rows []affidavit.Record
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil || len(rows) >= 24 {
			return nil, false
		}
		rows = append(rows, rec)
	}
	if len(rows) == 0 {
		return nil, false
	}
	tab, err := affidavit.NewTable(schema, rows)
	if err != nil {
		return nil, false
	}
	return tab, true
}

// FuzzResultJSON: explain a pair of fuzzed snapshots and round-trip the
// result's JSON — the encoding must stay valid, decode onto JSONResult
// without loss of the deterministic fields, and re-encode byte-identically
// (Result.JSON promises a stable field order).
func FuzzResultJSON(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n"), []byte("a,b\n1,x\n2,z\n"))
	f.Add([]byte("v\n10\n20\n30\n"), []byte("v\n11\n21\n31\n"))
	f.Add([]byte("s\nfoo\nbar\n"), []byte("s\nFOO\nBAR\n"))
	f.Fuzz(func(t *testing.T, srcData, tgtData []byte) {
		src, ok := fuzzTable(srcData)
		if !ok {
			t.Skip()
		}
		tgt, ok := fuzzTable(tgtData)
		if !ok {
			t.Skip()
		}
		opts := affidavit.DefaultOptions()
		opts.Seed = 7
		opts.MaxExpansions = 50
		res, err := affidavit.Explain(src, tgt, opts)
		if err != nil {
			t.Skip() // schema mismatch etc. — not this fuzzer's concern
		}
		raw, err := res.JSON("snapshots")
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		if !json.Valid(raw) {
			t.Fatalf("Result.JSON emitted invalid JSON:\n%s", raw)
		}
		var decoded affidavit.JSONResult
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("round-trip decode: %v\n%s", err, raw)
		}
		want := res.JSONResult("snapshots")
		if decoded.Cost != want.Cost || decoded.TrivialCost != want.TrivialCost ||
			decoded.Stats != want.Stats || decoded.Table != want.Table {
			t.Errorf("round-trip lost fields:\n got %+v\nwant %+v", decoded, want)
		}
		again, err := res.JSON("snapshots")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again) {
			t.Error("two encodings of the same Result differ")
		}
	})
}
