package affidavit

import "testing"

// TestFingerprint pins the engine-option fingerprint's contract: stable
// across instances with equal options, sensitive to every
// result-affecting knob, and blind to byte-neutral ones.
func TestFingerprint(t *testing.T) {
	mk := func(opts ...Option) string {
		t.Helper()
		ex, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return ex.Fingerprint()
	}
	base := mk(WithSeed(31))
	if len(base) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex chars", base)
	}
	if again := mk(WithSeed(31)); again != base {
		t.Errorf("equal options, different fingerprints: %s vs %s", base, again)
	}
	// Result-affecting knobs must change the fingerprint.
	for name, fp := range map[string]string{
		"seed":       mk(WithSeed(32)),
		"alpha":      mk(WithSeed(31), WithAlpha(0.3)),
		"beta":       mk(WithSeed(31), WithBeta(3)),
		"width":      mk(WithSeed(31), WithQueueWidth(9)),
		"start":      mk(WithSeed(31), WithOverlapConfig()),
		"theta":      mk(WithSeed(31), WithTheta(0.2)),
		"rho":        mk(WithSeed(31), WithRho(0.9)),
		"expansions": mk(WithSeed(31), WithMaxExpansions(100)),
	} {
		if fp == base {
			t.Errorf("%s change did not move the fingerprint", name)
		}
	}
	// Byte-neutral knobs must not: the parallel engine and memory budgets
	// are pinned byte-identical to the defaults.
	for name, fp := range map[string]string{
		"workers": mk(WithSeed(31), WithWorkers(8)),
		"budget":  mk(WithSeed(31), WithMemBudget(1<<30)),
		"tracing": mk(WithSeed(31), WithTracing()),
	} {
		if fp != base {
			t.Errorf("byte-neutral knob %s moved the fingerprint", name)
		}
	}
}
