module affidavit

go 1.21
