package affidavit_test

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"affidavit"
	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/eval"
	"affidavit/internal/gen"
	"affidavit/internal/search"
)

// TestPipelineGeneratedInstances drives the full stack — dataset generator →
// workload generator → search → metrics — on several datasets and asserts
// the Table 2 quality bar at the easy setting.
func TestPipelineGeneratedInstances(t *testing.T) {
	for _, name := range []string{"iris", "bridges", "echo", "hepatitis"} {
		ds, err := datasets.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := ds.Build(31)
		if err != nil {
			t.Fatal(err)
		}
		p, err := gen.Generate(tab, gen.Config{
			Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := search.DefaultOptions()
		opts.Seed = 31
		res, err := search.Run(context.Background(), p.Inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Explanation.Validate(); err != nil {
			t.Fatalf("%s: invalid explanation: %v", name, err)
		}
		_, _, acc := eval.Metrics(p, res, delta.DefaultCosts)
		if acc < 0.95 {
			t.Errorf("%s: acc = %.2f, want ≥ 0.95", name, acc)
		}
	}
}

// TestAdversarialValues injects hostile cell content — NUL bytes, long
// runs, separator look-alikes, unicode — and requires a valid explanation
// (not necessarily a clever one).
func TestAdversarialValues(t *testing.T) {
	schema, _ := affidavit.NewSchema("a", "b", "c")
	hostile := []affidavit.Record{
		{"\x00nul", "2:x|", "ünïcode"},
		{strings.Repeat("y", 3000), "", "日本語"},
		{"a|b|c", "1:a", "\x00" + strings.Repeat("0", 50)},
		{"", "", ""},
		{"-0", "0000", "+1"},
	}
	src, err := affidavit.NewTable(schema, hostile)
	if err != nil {
		t.Fatal(err)
	}
	// Target: same rows with one column constant-rewritten and one row gone.
	var tgtRows []affidavit.Record
	for _, r := range hostile[:4] {
		nr := r.Clone()
		nr[2] = "FIXED"
		tgtRows = append(tgtRows, nr)
	}
	tgt, err := affidavit.NewTable(schema, tgtRows)
	if err != nil {
		t.Fatal(err)
	}
	opts := affidavit.DefaultOptions()
	opts.Seed = 13
	res, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Explanation.CoreSize() < 3 {
		t.Errorf("core = %d, want ≥ 3 (constant rewrite is learnable)",
			res.Explanation.CoreSize())
	}
	// Reports must render hostile content without panicking.
	_ = res.Report()
	_ = res.SQL("hostile")
	_ = res.Diff(0)
}

// TestEmptySnapshots: degenerate shapes must not crash.
func TestEmptySnapshots(t *testing.T) {
	schema, _ := affidavit.NewSchema("a")
	empty, _ := affidavit.NewTable(schema, nil)
	one, _ := affidavit.NewTable(schema, []affidavit.Record{{"x"}})

	cases := []struct {
		name     string
		src, tgt *affidavit.Table
	}{
		{"both-empty", empty, empty},
		{"empty-source", empty, one},
		{"empty-target", one, empty},
		{"single-single", one, one},
	}
	for _, c := range cases {
		opts := affidavit.DefaultOptions()
		opts.Seed = 3
		res, err := affidavit.Explain(c.src, c.tgt, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := res.Explanation.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

// TestAllDuplicateRecords: multisets with heavy duplication stress the
// bijection bookkeeping of Proposition 3.6.
func TestAllDuplicateRecords(t *testing.T) {
	schema, _ := affidavit.NewSchema("k", "v")
	var srcRows, tgtRows []affidavit.Record
	for i := 0; i < 40; i++ {
		srcRows = append(srcRows, affidavit.Record{"same", "100"})
		tgtRows = append(tgtRows, affidavit.Record{"same", "1"})
	}
	tgtRows = tgtRows[:30] // 10 fewer targets
	src, _ := affidavit.NewTable(schema, srcRows)
	tgt, _ := affidavit.NewTable(schema, tgtRows)
	opts := affidavit.DefaultOptions()
	opts.Seed = 17
	res, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Explanation.CoreSize() != 30 || len(res.Explanation.Deleted) != 10 {
		t.Errorf("core = %d deleted = %d, want 30/10",
			res.Explanation.CoreSize(), len(res.Explanation.Deleted))
	}
}

// TestQuickExplainAlwaysValid: for arbitrary small snapshots, Explain
// returns a valid explanation whose cost never exceeds the trivial one.
func TestQuickExplainAlwaysValid(t *testing.T) {
	schema, _ := affidavit.NewSchema("x", "y")
	f := func(cells [8]string, nSrc, nTgt uint8) bool {
		srcN := int(nSrc%3) + 1
		tgtN := int(nTgt%3) + 1
		var srcRows, tgtRows []affidavit.Record
		for i := 0; i < srcN; i++ {
			srcRows = append(srcRows, affidavit.Record{cells[i%8], cells[(i+1)%8]})
		}
		for i := 0; i < tgtN; i++ {
			tgtRows = append(tgtRows, affidavit.Record{cells[(i+2)%8], cells[(i+3)%8]})
		}
		src, err := affidavit.NewTable(schema, srcRows)
		if err != nil {
			return false
		}
		tgt, err := affidavit.NewTable(schema, tgtRows)
		if err != nil {
			return false
		}
		opts := affidavit.DefaultOptions()
		opts.Seed = 1
		res, err := affidavit.Explain(src, tgt, opts)
		if err != nil {
			return false
		}
		if res.Explanation.Validate() != nil {
			return false
		}
		return res.Cost <= res.TrivialCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStatsPopulated: search statistics must reflect actual work.
func TestStatsPopulated(t *testing.T) {
	schema, _ := affidavit.NewSchema("k", "v")
	var srcRows, tgtRows []affidavit.Record
	for i := 0; i < 30; i++ {
		k := string(rune('a' + i%26))
		srcRows = append(srcRows, affidavit.Record{k, "v"})
		tgtRows = append(tgtRows, affidavit.Record{k, "w"})
	}
	src, _ := affidavit.NewTable(schema, srcRows)
	tgt, _ := affidavit.NewTable(schema, tgtRows)
	res, err := affidavit.Explain(src, tgt, affidavit.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Polls == 0 || res.Stats.Enqueued == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
	if res.Stats.Duration <= 0 {
		t.Error("duration not measured")
	}
}

// TestAlphaExtremes: α=1 ignores function complexity (prefers maximal
// alignment), α→0 prefers cheap functions; both must stay valid.
func TestAlphaExtremes(t *testing.T) {
	schema, _ := affidavit.NewSchema("k", "v")
	var srcRows, tgtRows []affidavit.Record
	for i := 0; i < 20; i++ {
		k := string(rune('a'+i%10)) + string(rune('0'+i/10))
		srcRows = append(srcRows, affidavit.Record{k, "100"})
		tgtRows = append(tgtRows, affidavit.Record{k, "10"})
	}
	src, _ := affidavit.NewTable(schema, srcRows)
	tgt, _ := affidavit.NewTable(schema, tgtRows)
	for _, alpha := range []float64{0.1, 0.9, 1.0} {
		opts := affidavit.DefaultOptions()
		opts.Alpha = alpha
		opts.Seed = 2
		res, err := affidavit.Explain(src, tgt, opts)
		if err != nil {
			t.Fatalf("α=%v: %v", alpha, err)
		}
		if err := res.Explanation.Validate(); err != nil {
			t.Fatalf("α=%v: %v", alpha, err)
		}
		if alpha >= 0.9 && res.Explanation.CoreSize() != 20 {
			t.Errorf("α=%v should align everything, core = %d",
				alpha, res.Explanation.CoreSize())
		}
	}
}
