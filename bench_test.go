// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5), plus ablations over the design choices DESIGN.md calls out.
//
// The headline experiments:
//
//	BenchmarkFigure1RunningExample — the worked example I1 (cost 77 vs 112)
//	BenchmarkFigure2SATReduction   — the NP-hardness construction end to end
//	BenchmarkFigure3Blocking       — blocking refinement (Definition 4.3/4.4)
//	BenchmarkFigure4SearchTree     — the traced β=2, ϱ=3 search of Figure 4
//	BenchmarkTable1Induction       — one-example induction over the function library
//	BenchmarkTable2/...            — dataset × configuration quality grid
//	BenchmarkFigure5Rows/...       — row scalability on flight-500k (scaled)
//	BenchmarkFigure6Attrs/...      — attribute scalability
//	BenchmarkChain*                — snapshot-chain sessions: warm vs cold, pooled interning
//	BenchmarkAblation*             — queue width ϱ, branching β, start states, θ
//	BenchmarkTraceOverhead         — per-run tracing cost, on vs off
//
// Large datasets run at reduced row counts so the suite stays benchable;
// cmd/table2, cmd/rowscale and cmd/attrscale regenerate the full-size
// artifacts (see EXPERIMENTS.md).
package affidavit_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"

	"affidavit"
	"affidavit/internal/blocking"
	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/gen"
	"affidavit/internal/metafunc"
	"affidavit/internal/satreduce"
	"affidavit/internal/search"
	"affidavit/internal/session"
	"affidavit/internal/table"
)

func BenchmarkFigure1RunningExample(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts search.Options
	}{
		{"Hid", search.DefaultOptions()},
		{"Hs", search.OverlapOptions()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			inst := fixture.Instance()
			opts := cfg.opts
			opts.Seed = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := search.Run(context.Background(), inst, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Cost > fixture.TrivialCost {
					b.Fatalf("cost %v above trivial", res.Cost)
				}
			}
		})
	}
}

func BenchmarkFigure2SATReduction(b *testing.B) {
	c := satreduce.Example()
	for i := 0; i < b.N; i++ {
		sol, err := satreduce.Solve(c, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Satisfiable {
			b.Fatal("example must be satisfiable")
		}
	}
}

func BenchmarkFigure3Blocking(b *testing.B) {
	inst := fixture.Instance()
	for i := 0; i < b.N; i++ {
		r := blocking.New(inst).
			Refine(fixture.Type, metafunc.Identity{}).
			Refine(fixture.Unit, metafunc.Constant{C: "k $"}).
			Refine(fixture.Org, metafunc.Identity{})
		if r.NumBlocks() == 0 {
			b.Fatal("no blocks")
		}
	}
}

func BenchmarkFigure4SearchTree(b *testing.B) {
	inst := fixture.Instance()
	opts := search.DefaultOptions()
	opts.Beta = 2
	opts.QueueWidth = 3
	opts.Seed = 1
	for i := 0; i < b.N; i++ {
		tr := &search.TreeTracer{}
		o := opts
		o.Tracer = tr
		if _, err := search.Run(context.Background(), inst, o); err != nil {
			b.Fatal(err)
		}
		if len(tr.Polls()) == 0 {
			b.Fatal("no trace")
		}
	}
}

func BenchmarkTable1Induction(b *testing.B) {
	metas := metafunc.DefaultMetas()
	examples := [][2]string{
		{"80000", "80"}, {"sap", "SAP"}, {"USD", "k $"}, {"6540", "9.8"},
		{"99991231", "20180701"}, {"00042", "42"}, {"42", "ID-42"},
		{"100 USD", "100 EUR"}, {"same", "same"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ex := range examples {
			metafunc.InduceAll(metas, ex[0], ex[1])
		}
	}
}

// benchRows caps dataset sizes for the Table 2 benchmark grid.
func benchRows(name string, rows int) int {
	if rows > 5000 {
		return 5000
	}
	return rows
}

func BenchmarkTable2(b *testing.B) {
	setting := gen.Setting{Eta: 0.3, Tau: 0.3}
	for _, spec := range datasets.All() {
		if spec.Name == "flight-500k" {
			continue // Figure 5's dataset
		}
		for _, cfg := range []struct {
			name string
			opts search.Options
		}{
			{"Hs", search.OverlapOptions()},
			{"Hid", search.DefaultOptions()},
		} {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, cfg.name), func(b *testing.B) {
				tab, err := spec.BuildRows(benchRows(spec.Name, spec.Rows), 13)
				if err != nil {
					b.Fatal(err)
				}
				p, err := gen.Generate(tab, gen.Config{Setting: setting, Seed: 13})
				if err != nil {
					b.Fatal(err)
				}
				opts := cfg.opts
				opts.Seed = 13
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := search.Run(context.Background(), p.Inst, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFigure5Rows(b *testing.B) {
	ds, err := datasets.Get("flight-500k")
	if err != nil {
		b.Fatal(err)
	}
	const baseRows = 20000 // paper: 500000; cmd/rowscale runs full size
	tab, err := ds.BuildRows(baseRows, 38)
	if err != nil {
		b.Fatal(err)
	}
	base, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Each scale runs both engines: "seq" is the sequential baseline, "par"
	// the worker-pool engine at GOMAXPROCS workers. Equal seeds make the
	// two solve the identical search tree, so the ratio is a pure engine
	// comparison (on multi-core hosts par/seq shows the worker-pool
	// speedup; at GOMAXPROCS=1 the two coincide).
	for _, pct := range []int{20, 40, 60, 80, 100} {
		p := base
		if pct < 100 {
			var err error
			p, err = base.Scale(float64(pct)/100, int64(pct))
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, engine := range []struct {
			name    string
			workers int
		}{
			{"seq", 1},
			{"par", runtime.GOMAXPROCS(0)},
		} {
			b.Run(fmt.Sprintf("scale%d/%s", pct, engine.name), func(b *testing.B) {
				opts := search.DefaultOptions()
				opts.Seed = 1
				opts.Workers = engine.workers
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := search.Run(context.Background(), p.Inst, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFigure6Attrs(b *testing.B) {
	rows := map[string]int{"fd-red-30": 2000, "plista": 1000, "flight-1k": 1000, "uniprot": 1000}
	for _, name := range []string{"fd-red-30", "plista", "flight-1k", "uniprot"} {
		b.Run(name, func(b *testing.B) {
			ds, err := datasets.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			tab, err := ds.BuildRows(rows[name], 21)
			if err != nil {
				b.Fatal(err)
			}
			p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 21})
			if err != nil {
				b.Fatal(err)
			}
			opts := search.DefaultOptions()
			opts.Seed = 21
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := search.Run(context.Background(), p.Inst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// chainProblem builds the k-step snapshot chain shared by the chain
// benches.
func chainProblem(b *testing.B, steps int) *gen.ChainProblem {
	b.Helper()
	ds, err := datasets.Get("ncvoter-1k")
	if err != nil {
		b.Fatal(err)
	}
	tab, err := ds.Build(41)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := gen.MakeChain(tab, gen.ChainConfig{Steps: steps, Eta: 0.1, Tau: 0.5, Seed: 41})
	if err != nil {
		b.Fatal(err)
	}
	return ch
}

// BenchmarkChain measures the session subsystem on a 4-step snapshot
// chain: "cold" explains every consecutive pair independently, "warm"
// drives one session through the chain (shared dictionary pool plus
// warm-started search). The warm/cold ratio is the chain-mode payoff.
func BenchmarkChain(b *testing.B) {
	const steps = 4
	ch := chainProblem(b, steps)
	opts := search.DefaultOptions()
	opts.Seed = 41
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 1; s < len(ch.Snapshots); s++ {
				inst, err := delta.NewInstance(ch.Snapshots[s-1], ch.Snapshots[s], nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := search.Run(context.Background(), inst, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess := session.New(ch.Snapshots[0], opts, nil)
			for s := 1; s < len(ch.Snapshots); s++ {
				if _, err := sess.ExplainNext(context.Background(), ch.Snapshots[s]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkChainInterning isolates the dictionary-pool effect: interning
// every consecutive pair of the chain into fresh per-pair dictionaries
// versus one shared pool that keeps codes across pairs.
func BenchmarkChainInterning(b *testing.B) {
	const steps = 4
	ch := chainProblem(b, steps)
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 1; s < len(ch.Snapshots); s++ {
				inst, err := delta.NewInstance(ch.Snapshots[s-1], ch.Snapshots[s], nil)
				if err != nil {
					b.Fatal(err)
				}
				inst.Coded()
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool := table.NewDictPool()
			for s := 1; s < len(ch.Snapshots); s++ {
				inst, err := delta.NewInstanceWithDicts(ch.Snapshots[s-1], ch.Snapshots[s], nil,
					pool.DictsFor(ch.Snapshots[s-1].Schema()))
				if err != nil {
					b.Fatal(err)
				}
				inst.Coded()
			}
		}
	})
}

// BenchmarkBuildSharded measures the end-state conversion in isolation:
// delta.Build's greedy multiset matching, sequential versus key-sharded at
// GOMAXPROCS workers, on the Figure 5 instance with its reference function
// tuple. The sharded path is byte-identical to the sequential one (asserted
// by TestBuildShardedMatchesSequential); this bench records the speedup of
// parallelising the last single-threaded O(|S|+|T|) pass.
//
// The par4 variant pins GOMAXPROCS to 4 for its duration so the matching
// actually splits into four shards even on a single-core runner — without
// the pin, matchSharded clamps the shard count to GOMAXPROCS and par4 would
// silently degenerate to the sequential shape on one-CPU CI.
func BenchmarkBuildSharded(b *testing.B) {
	ds, err := datasets.Get("flight-500k")
	if err != nil {
		b.Fatal(err)
	}
	tab, err := ds.BuildRows(40000, 5)
	if err != nil {
		b.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	funcs := p.Reference.Funcs
	p.Inst.Coded() // intern outside the timer; both paths share the view
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := delta.Build(p.Inst, funcs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("par%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		opts := delta.BuildOptions{Workers: runtime.GOMAXPROCS(0)}
		for i := 0; i < b.N; i++ {
			if _, err := delta.BuildCtx(context.Background(), p.Inst, funcs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	if runtime.GOMAXPROCS(0) == 4 {
		return // the auto variant above already ran as par4
	}
	b.Run("par4", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
		opts := delta.BuildOptions{Workers: 4}
		for i := 0; i < b.N; i++ {
			if _, err := delta.BuildCtx(context.Background(), p.Inst, funcs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ablationProblem is a mid-sized instance shared by the ablation benches.
func ablationProblem(b *testing.B) *gen.Problem {
	b.Helper()
	ds, err := datasets.Get("ncvoter-1k")
	if err != nil {
		b.Fatal(err)
	}
	tab, err := ds.Build(99)
	if err != nil {
		b.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.5, Tau: 0.5}, Seed: 99})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkAblationQueueWidth(b *testing.B) {
	p := ablationProblem(b)
	for _, rho := range []int{1, 2, 5, 8} {
		b.Run(fmt.Sprintf("rho%d", rho), func(b *testing.B) {
			opts := search.DefaultOptions()
			opts.QueueWidth = rho
			opts.Seed = 5
			for i := 0; i < b.N; i++ {
				if _, err := search.Run(context.Background(), p.Inst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationBranching(b *testing.B) {
	p := ablationProblem(b)
	for _, beta := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("beta%d", beta), func(b *testing.B) {
			opts := search.DefaultOptions()
			opts.Beta = beta
			opts.Seed = 5
			for i := 0; i < b.N; i++ {
				if _, err := search.Run(context.Background(), p.Inst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationStart(b *testing.B) {
	p := ablationProblem(b)
	for _, start := range []search.StartStrategy{search.StartEmpty, search.StartID, search.StartOverlap} {
		b.Run(start.String(), func(b *testing.B) {
			opts := search.DefaultOptions()
			opts.Start = start
			opts.Seed = 5
			for i := 0; i < b.N; i++ {
				if _, err := search.Run(context.Background(), p.Inst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationTheta(b *testing.B) {
	p := ablationProblem(b)
	for _, theta := range []float64{0.05, 0.1, 0.3} {
		b.Run(fmt.Sprintf("theta%v", theta), func(b *testing.B) {
			opts := search.DefaultOptions()
			opts.Induce.Theta = theta
			opts.Seed = 5
			for i := 0; i < b.N; i++ {
				if _, err := search.Run(context.Background(), p.Inst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSVSourceIngest compares snapshot ingest strategies on a
// generated flight-500k slice: the buffered ReadCSV path (whole file as
// [][]string rows) against the streaming CSVSource path (records interned
// into the columnar backend as they are read). ReportAllocs makes the
// memory-profile difference visible — the streamed table retains 4-byte
// codes plus one copy of each distinct value.
func BenchmarkCSVSourceIngest(b *testing.B) {
	spec, err := datasets.Get("flight-500k")
	if err != nil {
		b.Fatal(err)
	}
	tab, err := spec.BuildRows(20000, 9)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Logf("csv bytes: %d, records: %d", len(raw), tab.Len())

	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := affidavit.ReadCSV(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		ex, err := affidavit.New()
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := ex.ReadSource(context.Background(), affidavit.NewCSVSource(bytes.NewReader(raw))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTraceOverhead pins the tracing bargain: with tracing disabled
// (the default) the per-run observer chain contributes nothing — no
// recorder, no context sink, no per-poll cost — and with tracing enabled
// the recorder's per-event fold stays cheap enough to leave on in
// production services. Compare untraced/traced ns/op in the trajectory
// artifacts.
func BenchmarkTraceOverhead(b *testing.B) {
	spec, err := datasets.Get("bridges")
	if err != nil {
		b.Fatal(err)
	}
	tab, err := spec.Build(9)
	if err != nil {
		b.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		tracing bool
	}{
		{"untraced", false},
		{"traced", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := []affidavit.Option{affidavit.WithSeed(9)}
			if mode.tracing {
				opts = append(opts, affidavit.WithTracing())
			}
			ex, err := affidavit.New(opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ex.ExplainSources(context.Background(),
					affidavit.TableSource(p.Inst.Source), affidavit.TableSource(p.Inst.Target))
				if err != nil {
					b.Fatal(err)
				}
				if mode.tracing && (res.Trace == nil || !res.Trace.Complete) {
					b.Fatal("traced run produced no complete trace")
				}
			}
		})
	}
}
