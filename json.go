package affidavit

import (
	"encoding/json"

	"affidavit/internal/delta"
	"affidavit/internal/report"
)

// JSONExplanation is the machine-readable form of an explanation:
// per-attribute function descriptors, the core alignment as index pairs,
// and the deleted/inserted record indices.
type JSONExplanation = report.JSONExplanation

// JSONFunction describes one attribute function.
type JSONFunction = report.JSONFunction

// JSONPair aligns source record index S with target record index T.
type JSONPair = report.JSONPair

// JSONStats is the deterministic subset of search statistics: wall time is
// deliberately omitted so identical inputs produce byte-identical
// encodings.
type JSONStats struct {
	Polls           int  `json:"polls"`
	StatesGenerated int  `json:"states_generated"`
	Enqueued        int  `json:"enqueued"`
	Evicted         int  `json:"evicted"`
	StartLevel      int  `json:"start_level"`
	WarmEscalated   bool `json:"warm_escalated,omitempty"`
	Cancelled       bool `json:"cancelled,omitempty"`
	// Spill totals appear only for runs under a memory budget, so
	// unbudgeted encodings are unchanged.
	SpilledBytes    int64 `json:"spilled_bytes,omitempty"`
	SpillPartitions int64 `json:"spill_partitions,omitempty"`
}

// JSONResult is the stable machine-readable encoding of a Result, shared
// by cmd/affidavit's -json output and affidavitd's /explain responses.
// Field order is fixed; all floats are finite (the compression ratio is 0
// when the trivial cost is 0, never NaN).
type JSONResult struct {
	// Table names the snapshot pair; set from the argument of Result.JSON.
	// Empty omits the field and the SQL script.
	Table       string          `json:"table,omitempty"`
	Explanation JSONExplanation `json:"explanation"`
	// SQL is the migration script for Table; omitted when Table is empty.
	SQL         string    `json:"sql,omitempty"`
	Cost        float64   `json:"cost"`
	TrivialCost float64   `json:"trivial_cost"`
	Compression float64   `json:"compression"`
	Stats       JSONStats `json:"stats"`
	// Trace is the run's structured trace. Result.JSONResult never sets it
	// — wall-clock values would break the byte-identical guarantee — so
	// plain encodings are unchanged; affidavitd inlines it on ?trace=1.
	Trace *Trace `json:"trace,omitempty"`
}

// StatsJSON projects run statistics onto their deterministic JSON subset.
func StatsJSON(s Stats) JSONStats {
	return JSONStats{
		Polls:           s.Polls,
		StatesGenerated: s.StatesGenerated,
		Enqueued:        s.Enqueued,
		Evicted:         s.Evicted,
		StartLevel:      s.StartLevel,
		WarmEscalated:   s.WarmEscalated,
		Cancelled:       s.Cancelled,
		SpilledBytes:    s.SpilledBytes,
		SpillPartitions: s.SpillPartitions,
	}
}

// JSONResult builds the stable encoding struct; table, when non-empty,
// names the pair and selects SQL emission.
func (r *Result) JSONResult(table string) JSONResult {
	compression := 0.0
	if r.TrivialCost > 0 {
		compression = r.Cost / r.TrivialCost
	}
	out := JSONResult{
		Table:       table,
		Explanation: report.ToJSON(r.Explanation, delta.CostModel{Alpha: r.alpha}),
		Cost:        r.Cost,
		TrivialCost: r.TrivialCost,
		Compression: compression,
		Stats:       StatsJSON(r.Stats),
	}
	if table != "" {
		out.SQL = r.SQL(table)
	}
	return out
}

// JSON renders the result as indented JSON with a stable field order —
// identical inputs (and seeds) produce byte-identical output. table, when
// non-empty, is included along with the SQL migration script for it.
func (r *Result) JSON(table string) ([]byte, error) {
	return json.MarshalIndent(r.JSONResult(table), "", "  ")
}
