// Command rowscale regenerates the paper's Figure 5: Hid runtimes on a
// (η=0.3, τ=0.3) problem instance of flight-500k scaled to different
// numbers of records. The expected shape is linear growth, and every run
// should reproduce the reference explanation.
//
// Usage:
//
//	rowscale -base-rows 50000            # scaled-down default
//	rowscale -base-rows 500000           # the paper's full sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"affidavit/internal/cliutil"
	"affidavit/internal/eval"
)

func main() {
	var (
		baseRows = flag.Int("base-rows", 50000, "records at factor 100% (paper: 500000)")
		factors  = flag.String("factors", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0", "comma-separated scaling factors")
	)
	cfg := cliutil.Register(flag.CommandLine, cliutil.Defaults{Seed: 1})
	diag := cliutil.RegisterDiag(flag.CommandLine)
	flag.Parse()

	var fs []float64
	for _, tok := range strings.Split(*factors, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rowscale: bad factor %q: %v\n", tok, err)
			os.Exit(2)
		}
		fs = append(fs, f)
	}
	// Ctrl-C cancels the sweep cooperatively between (and within) runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts, err := cfg.SearchOptions()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rowscale:", err)
		os.Exit(2)
	}
	diag.StartPprof()
	traceLog, err := diag.OpenTraceLog()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rowscale:", err)
		os.Exit(2)
	}
	defer traceLog.Close()
	// Every sweep point's run appends one structured trace line.
	traceLog.WireSearch(&opts)
	points, err := eval.Figure5(ctx, eval.Figure5Spec{
		BaseRows: *baseRows,
		Factors:  fs,
		Seed:     *cfg.Seed,
		Opts:     opts,
		Progress: func(p eval.ScalePoint) {
			fmt.Fprintf(os.Stderr, "done %3.0f%% (%d rows): %v\n",
				p.Factor*100, p.Rows, p.Time.Round(1e6))
		},
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "rowscale: cancelled (interrupt received) after %d point(s)\n", len(points))
		} else {
			fmt.Fprintln(os.Stderr, "rowscale:", err)
		}
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(eval.RenderFigure5(points))
}
