// Command affidavit explains the differences between two CSV snapshots of
// the same table without requiring a record alignment or stable primary
// keys.
//
// Usage:
//
//	affidavit -source before.csv -target after.csv [flags]
//
// The report lists the learned per-attribute transformation functions, the
// aligned core, and the records explained as deleted/inserted. With -sql a
// migration script is printed; with -diff N the first N aligned records are
// shown as before/after views.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"affidavit"
)

func main() {
	var (
		source   = flag.String("source", "", "source snapshot CSV (required)")
		target   = flag.String("target", "", "target snapshot CSV (required)")
		start    = flag.String("start", "hid", "start strategy: hid | hs | empty")
		alpha    = flag.Float64("alpha", 0.5, "cost parameter α in [0,1]")
		beta     = flag.Int("beta", 0, "branching factor β (0 = config default)")
		rho      = flag.Int("rho", 0, "queue width ϱ (0 = config default)")
		theta    = flag.Float64("theta", 0.1, "estimated effect fraction θ")
		conf     = flag.Float64("conf", 0.95, "sampling confidence ρ")
		maxBlock = flag.Int("max-block", 100000, "overlap-matching block threshold (hs)")
		seed     = flag.Int64("seed", 0, "random seed")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent search probes (1 = sequential engine)")
		sqlName  = flag.String("sql", "", "emit a migration script for this table name")
		diff     = flag.Int("diff", 0, "show the first N aligned records as before/after")
	)
	flag.Parse()
	if *source == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "affidavit: -source and -target are required")
		flag.Usage()
		os.Exit(2)
	}

	var opts affidavit.Options
	switch strings.ToLower(*start) {
	case "hid":
		opts = affidavit.DefaultOptions()
	case "hs":
		opts = affidavit.OverlapOptions()
	case "empty":
		opts = affidavit.DefaultOptions()
		opts.Start = affidavit.StartEmpty
	default:
		fmt.Fprintf(os.Stderr, "affidavit: unknown start strategy %q\n", *start)
		os.Exit(2)
	}
	opts.Alpha = *alpha
	if *beta > 0 {
		opts.Beta = *beta
	}
	if *rho > 0 {
		opts.QueueWidth = *rho
	}
	opts.Theta = *theta
	opts.Rho = *conf
	opts.MaxBlockSize = *maxBlock
	opts.Seed = *seed
	opts.Workers = *workers

	// Ctrl-C cancels the search cooperatively: the run stops within about
	// one poll instead of dying mid-write, and we exit non-zero below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := affidavit.ExplainCSVContext(ctx, *source, *target, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affidavit:", err)
		os.Exit(1)
	}
	if res.Stats.Cancelled {
		fmt.Fprintln(os.Stderr, "affidavit: cancelled (interrupt received); partial result discarded")
		os.Exit(1)
	}
	fmt.Print(res.Report())
	fmt.Printf("search: %d polls, %d states costed, %v\n",
		res.Stats.Polls, res.Stats.StatesGenerated, res.Stats.Duration.Round(1e6))
	fmt.Printf("compression: cost %g vs trivial %g (%.0f%%)\n",
		res.Cost, res.TrivialCost, 100*res.Cost/res.TrivialCost)
	if *diff > 0 {
		fmt.Println()
		fmt.Print(res.Diff(*diff))
	}
	if *sqlName != "" {
		fmt.Println()
		fmt.Print(res.SQL(*sqlName))
	}
}
