// Command affidavit explains the differences between two CSV snapshots of
// the same table without requiring a record alignment or stable primary
// keys.
//
// Usage:
//
//	affidavit -source before.csv -target after.csv [flags]
//
// The report lists the learned per-attribute transformation functions, the
// aligned core, and the records explained as deleted/inserted. With -sql a
// migration script is printed; with -diff N the first N aligned records are
// shown as before/after views; with -json the result is emitted in the
// same stable encoding affidavitd serves; with -progress the pipeline
// narrates ingest and search progress on stderr; with -trace-out the run's
// structured trace (per-stage wall-clock spans, the poll cost curve, spill
// totals) is appended to a JSONL file; with -pprof a net/http/pprof
// listener serves profiling data for the process lifetime.
//
// Snapshots are streamed: each CSV is interned into the columnar backend
// row by row, so memory is bounded by the distinct values, not the file
// sizes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"affidavit"
	"affidavit/internal/cliutil"
)

func main() {
	var (
		source  = flag.String("source", "", "source snapshot CSV (required)")
		target  = flag.String("target", "", "target snapshot CSV (required)")
		sqlName = flag.String("sql", "", "emit a migration script for this table name")
		diff    = flag.Int("diff", 0, "show the first N aligned records as before/after")
		asJSON  = flag.Bool("json", false, "emit the stable JSON encoding (explanation, SQL, stats) instead of the text report")
	)
	cfg := cliutil.Register(flag.CommandLine, cliutil.Defaults{})
	diag := cliutil.RegisterDiag(flag.CommandLine)
	flag.Parse()
	if *source == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "affidavit: -source and -target are required")
		flag.Usage()
		os.Exit(2)
	}
	diag.StartPprof()
	traceLog, err := diag.OpenTraceLog()
	if err != nil {
		fmt.Fprintln(os.Stderr, "affidavit:", err)
		os.Exit(2)
	}
	defer traceLog.Close()

	opts := []affidavit.Option{affidavit.WithObserver(cfg.ProgressObserver())}
	if traceLog != nil {
		opts = append(opts, affidavit.WithTracing())
	}
	ex, err := cfg.Explainer(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affidavit:", err)
		os.Exit(2)
	}

	// Ctrl-C cancels the search cooperatively: the run stops within about
	// one poll instead of dying mid-write, and we exit non-zero below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := ex.ExplainFiles(ctx, *source, *target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "affidavit:", err)
		os.Exit(1)
	}
	if res.Stats.Cancelled {
		fmt.Fprintln(os.Stderr, "affidavit: cancelled (interrupt received); partial result discarded")
		os.Exit(1)
	}
	if err := traceLog.Append(res.Trace); err != nil {
		fmt.Fprintln(os.Stderr, "affidavit: trace-out:", err)
	}
	if *asJSON {
		out, err := res.JSON(*sqlName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "affidavit:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		fmt.Println()
		return
	}
	fmt.Print(res.Report())
	fmt.Printf("search: %d polls, %d states costed, %v\n",
		res.Stats.Polls, res.Stats.StatesGenerated, res.Stats.Duration.Round(1e6))
	// Empty snapshots explain for free (cost 0 of trivial 0); guard the
	// ratio like the JSON encoding does.
	compression := 0.0
	if res.TrivialCost > 0 {
		compression = 100 * res.Cost / res.TrivialCost
	}
	fmt.Printf("compression: cost %g vs trivial %g (%.0f%%)\n",
		res.Cost, res.TrivialCost, compression)
	if *diff > 0 {
		fmt.Println()
		fmt.Print(res.Diff(*diff))
	}
	if *sqlName != "" {
		fmt.Println()
		fmt.Print(res.SQL(*sqlName))
	}
}
