package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"affidavit"
	"affidavit/internal/jobs"
)

// submitResponse mirrors the 202 Accepted body of POST /explain?async=1.
type submitResponse struct {
	JobID  string `json:"job_id"`
	State  string `json:"state"`
	Status string `json:"status"`
	Result string `json:"result"`
}

// postAsync submits an async explain and decodes the 202 body.
func postAsync(t *testing.T, srv *httptest.Server, source, target string, fields map[string]string) (*http.Response, submitResponse) {
	t.Helper()
	resp, body := postResp(t, srv, srv.URL+"/explain?async=1", source, target, fields)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d, want 202: %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("bad 202 JSON: %v: %s", err, body)
	}
	if sub.JobID == "" || sub.JobID != resp.Header.Get("X-Affidavit-Job-Id") {
		t.Fatalf("job id %q vs header %q", sub.JobID, resp.Header.Get("X-Affidavit-Job-Id"))
	}
	return resp, sub
}

// waitJob polls GET /jobs/{id} until the job is terminal.
func waitJob(t *testing.T, srv *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view jobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.State {
		case "completed", "error", "cancelled":
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAsyncJobLifecycle walks the submit → poll → fetch → cancel loop:
// 202 with a job id, /jobs/{id} reaching completed with stats and a
// result link, /jobs/{id}/result serving bytes identical to the sync
// path, deterministic /jobs listing, and sensible answers for unknown
// ids, premature result fetches and cancels of finished jobs.
func TestAsyncJobLifecycle(t *testing.T) {
	srv := testServer(t)
	ch := testChain(t, 1)
	src, tgt := csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1])

	_, sub := postAsync(t, srv, src, tgt, map[string]string{"table": "async"})
	view := waitJob(t, srv, sub.JobID)
	if view.State != "completed" {
		t.Fatalf("job ended %s (%s), want completed", view.State, view.Error)
	}
	if view.Attempts != 1 || view.Result == "" || len(view.Stats) == 0 {
		t.Errorf("completed view = %+v, want 1 attempt, result link, stats", view)
	}

	// The stored result is byte-identical to a sync explain of the same
	// pair — here served from the result store via dedupe, so no second
	// computation happens either.
	asyncBody := get(t, srv.URL+view.Result)
	code, syncBody := post(t, srv, src, tgt, map[string]string{"table": "async"})
	if code != http.StatusOK {
		t.Fatalf("sync re-submit: status %d", code)
	}
	if asyncBody != string(syncBody) {
		t.Error("async result and sync response differ")
	}

	// The listing is deterministic: submission order, one entry.
	var listing struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/jobs")), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != sub.JobID || listing.Jobs[0].DedupeHits != 1 {
		t.Errorf("listing = %+v, want the one job with a dedupe hit", listing.Jobs)
	}

	// Cancelling a finished job is a no-op answer, not an error.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+sub.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cancel completed: status %d", resp.StatusCode)
	}
	if view := waitJob(t, srv, sub.JobID); view.State != "completed" {
		t.Errorf("cancel flipped a completed job to %s", view.State)
	}

	// Unknown ids 404; a failed job reports its error and has no result.
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
	_, bad := postAsync(t, srv, "a,b\n1,2\n", "x\n9\n", nil)
	if view := waitJob(t, srv, bad.JobID); view.State != "error" || view.Error == "" {
		t.Errorf("schema-mismatch job = %+v, want a terminal error", view)
	}
	resp2, err := http.Get(srv.URL + "/jobs/" + bad.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("result of errored job: status %d, want 409", resp2.StatusCode)
	}
}

// TestAsyncDedupeEndToEnd is the acceptance race test: N concurrent
// submissions of an identical pair perform exactly one computation —
// one queued job, N−1 dedupe hits, one cold search — and every fetch
// returns byte-identical bodies.
func TestAsyncDedupeEndToEnd(t *testing.T) {
	srv := testServer(t)
	ch := testChain(t, 1)
	src, tgt := csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1])

	const n = 6
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := post(t, srv, src, tgt, map[string]string{"table": "dup"})
			if code != http.StatusOK {
				t.Errorf("request %d: status %d: %.200s", i, code, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}

	metrics := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"affidavit_jobs_submitted_total 1\n",
		fmt.Sprintf("affidavit_jobs_dedupe_hits_total %d\n", n-1),
		"affidavit_jobs_completed_total 1\n",
		`affidavit_runs_started_total{mode="cold"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics)
		}
	}
}

// TestJobRestartDurability is the durability demo: a journal holding a
// job that was running when its process died (plus the blob-stored
// uploads) is replayed by a fresh server — the job is requeued,
// re-ingested from the blobs, and its result eventually served,
// byte-identical to a plain sync explain of the same pair.
func TestJobRestartDurability(t *testing.T) {
	ch := testChain(t, 1)
	src, tgt := csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1])

	// Simulate the dead process's leftovers by hand: content-addressed
	// blobs and a journal whose last line says the job was mid-run.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeBlob := func(data string) string {
		sum := sha256.Sum256([]byte(data))
		hash := hex.EncodeToString(sum[:])
		if err := os.WriteFile(filepath.Join(dir, "blobs", hash), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return hash
	}
	srcHash, tgtHash := writeBlob(src), writeBlob(tgt)
	// The journaled address must match what the restarted server computes,
	// fingerprint included — a config change would (correctly) miss it.
	ex, err := affidavit.New(testOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	addr := jobs.Address("explain/v2", ex.Fingerprint(), "t", "json", srcHash, tgtHash)
	rec := jobs.Record{
		ID:         addr[:32],
		Addr:       addr,
		Table:      "t",
		Format:     "json",
		SourceBlob: srcHash,
		TargetBlob: tgtHash,
		State:      jobs.StateRunning,
		Attempts:   1,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustServer(t, serverConfig{options: testOptions(), jobsDir: dir})
	t.Cleanup(func() { s.Close() })
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)

	view := waitJob(t, srv, rec.ID)
	if view.State != "completed" {
		t.Fatalf("replayed job ended %s (%s), want completed", view.State, view.Error)
	}
	if view.Requeues != 1 {
		t.Errorf("requeues = %d, want 1 (orphaned mid-run)", view.Requeues)
	}
	replayed := get(t, srv.URL+"/jobs/"+rec.ID+"/result")

	// Reference: the same pair explained synchronously on a fresh
	// in-memory server.
	ref := testServer(t)
	code, want := post(t, ref, src, tgt, map[string]string{"table": "t"})
	if code != http.StatusOK {
		t.Fatalf("reference explain: status %d", code)
	}
	if replayed != string(want) {
		t.Error("replayed result differs from the sync reference")
	}

	// A re-submission of the same pair after the "restart" dedupes to
	// the journaled completed job: no new computation is queued.
	code, body := post(t, srv, src, tgt, map[string]string{"table": "t"})
	if code != http.StatusOK || string(body) != string(want) {
		t.Fatalf("post-restart re-submission: status %d, identical %v", code, string(body) == string(want))
	}
	stats := get(t, srv.URL+"/stats")
	var st statsResponse
	if err := json.Unmarshal([]byte(stats), &st); err != nil {
		t.Fatal(err)
	}
	if st.Jobs.DedupeHits != 1 || st.Jobs.Submitted != 0 {
		t.Errorf("post-restart jobs stats = %+v, want a pure dedupe hit", st.Jobs)
	}
}

// TestAsyncCancelDelivers: DELETE /jobs/{id} lands either before the
// worker claims the job (terminal cancel) or mid-run (context cancel);
// both must reach a terminal state and refuse to serve a result.
func TestAsyncCancelDelivers(t *testing.T) {
	srv := testServer(t)

	// A pair big enough that the run usually outlives the DELETE.
	var src, tgt strings.Builder
	src.WriteString("id,city,amount\n")
	tgt.WriteString("id,city,amount\n")
	cities := []string{"mannheim", "berlin", "hamburg", "dresden"}
	for i := 0; i < 1500; i++ {
		fmt.Fprintf(&src, "K%05d,%s,%d\n", i, cities[i%4], i*100)
		fmt.Fprintf(&tgt, "R%05d,%s,%d\n", i, strings.ToUpper(cities[i%4]), i*100)
	}
	_, sub := postAsync(t, srv, src.String(), tgt.String(), map[string]string{"table": "cancel"})
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+sub.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	view := waitJob(t, srv, sub.JobID)
	// The cancel races the run: "cancelled" when it landed in time,
	// "completed" when the run won. Both are terminal and consistent.
	switch view.State {
	case "cancelled":
		r, err := http.Get(srv.URL + "/jobs/" + sub.JobID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusConflict {
			t.Errorf("result of cancelled job: status %d, want 409", r.StatusCode)
		}
	case "completed":
		t.Logf("run finished before the cancel landed (legitimate race)")
	default:
		t.Errorf("job ended %s (%s), want cancelled or completed", view.State, view.Error)
	}
}
