package main

// Job-subsystem glue: the runner that executes queued jobs through the
// per-table session machinery, the /jobs API surface, and the job
// gauges/counters on /metrics and /stats.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"affidavit"
	"affidavit/internal/catalog"
	"affidavit/internal/jobs"
)

// jobPayload is the non-durable state a live submission hands the
// runner: the already-interned snapshot pair and the request's trace
// recorder. Journal-replayed jobs run without one and re-ingest from the
// blob store.
type jobPayload struct {
	src, tgt *affidavit.Table
	trace    *affidavit.TraceRecorder
}

// runJob executes one queued job: resolve the snapshot pair (payload or
// blob replay), explain it on the table's session (warm chains reuse the
// previous tuple — worker affinity keeps one table on one worker, so the
// session never sees concurrent runs), and render the durable result.
// Blob-store I/O failures are transient (retried with backoff); explain
// errors such as schema mismatches are permanent.
func (s *server) runJob(ctx context.Context, rec jobs.Record, payload any) (*jobs.Outcome, error) {
	if rec.Kind == catalog.JobKind {
		return s.runCatalogStep(ctx, rec, payload)
	}
	var src, tgt *affidavit.Table
	var trec *affidavit.TraceRecorder
	if p, ok := payload.(*jobPayload); ok && p != nil {
		src, tgt, trec = p.src, p.tgt, p.trace
	}
	if trec == nil && s.cfg.traceBuffer != 0 {
		// Replayed or retried without a live request: the run still gets
		// a trace of its own.
		trec = affidavit.NewTraceRecorder()
	}
	if trec != nil {
		trec.SetLabel(rec.Table)
		trec.SetJobID(rec.ID)
		ctx = affidavit.ContextWithObserver(ctx, trec)
	}
	if src == nil || tgt == nil {
		var err error
		if src, err = s.ingestBlob(ctx, rec.SourceBlob, "source"); err != nil {
			return nil, err
		}
		if tgt, err = s.ingestBlob(ctx, rec.TargetBlob, "target"); err != nil {
			return nil, err
		}
	}
	sess := s.session(rec.Table)
	var res *affidavit.Result
	var err error
	if rec.Warm {
		res, err = sess.ExplainWarmContext(ctx, src, tgt)
	} else {
		res, err = sess.ExplainPairContext(ctx, src, tgt)
	}
	if err != nil {
		return nil, err
	}
	out := &jobs.Outcome{}
	if trec != nil {
		tr := trec.Trace()
		out.TraceID = tr.ID
		// Cancelled and deadline-cut runs retain their trace too — a
		// truncated cost curve is exactly what a post-mortem wants.
		s.storeTrace(tr)
	}
	if stats, merr := json.Marshal(affidavit.StatsJSON(res.Stats)); merr == nil {
		out.Stats = stats
	}
	if res.Stats.Cancelled {
		out.Cancelled = true
		return out, nil
	}
	switch rec.Format {
	case "", "json":
		jr := res.JSONResult(rec.Table)
		body, merr := json.MarshalIndent(jr, "", "  ")
		if merr != nil {
			return nil, merr
		}
		out.Body = append(body, '\n')
		out.ContentType = "application/json"
	case "sql":
		out.Body = []byte(res.SQL(rec.Table))
		out.ContentType = "text/plain; charset=utf-8"
	case "text":
		out.Body = []byte(res.Report())
		out.ContentType = "text/plain; charset=utf-8"
	default:
		return nil, fmt.Errorf("unknown format %q", rec.Format)
	}
	return out, nil
}

// ingestBlob re-interns a journaled upload for a replayed job. Failures
// are transient: the blob may be on slow or briefly unavailable storage,
// and a retry with backoff is cheaper than failing a durable job.
func (s *server) ingestBlob(ctx context.Context, hash, role string) (*affidavit.Table, error) {
	data, err := s.store.Blobs().Get(hash)
	if err != nil {
		return nil, jobs.Transient(fmt.Errorf("replaying %s upload: %w", role, err))
	}
	tab, err := s.ex.ReadSourceNamed(ctx, affidavit.NewCSVSource(bytes.NewReader(data)), role)
	if err != nil {
		return nil, fmt.Errorf("re-ingesting %s upload: %w", role, err)
	}
	return tab, nil
}

// jobView is the /jobs wire shape of one job record. Fields mirror
// jobs.Record (a fixed struct, so encoding is deterministic) plus the
// result link.
type jobView struct {
	ID          string          `json:"id"`
	State       string          `json:"state"`
	Table       string          `json:"table,omitempty"`
	Format      string          `json:"format,omitempty"`
	Warm        bool            `json:"warm,omitempty"`
	Kind        string          `json:"kind,omitempty"`
	SnapshotID  string          `json:"snapshot_id,omitempty"`
	ParentID    string          `json:"parent_id,omitempty"`
	Attempts    int             `json:"attempts,omitempty"`
	Requeues    int             `json:"requeues,omitempty"`
	DedupeHits  int64           `json:"dedupe_hits,omitempty"`
	Error       string          `json:"error,omitempty"`
	Deadline    bool            `json:"deadline,omitempty"`
	TraceID     string          `json:"trace_id,omitempty"`
	ContentType string          `json:"content_type,omitempty"`
	Stats       json.RawMessage `json:"stats,omitempty"`
	Result      string          `json:"result,omitempty"`
}

func viewOf(rec jobs.Record) jobView {
	v := jobView{
		ID:          rec.ID,
		State:       string(rec.State),
		Table:       rec.Table,
		Format:      rec.Format,
		Warm:        rec.Warm,
		Kind:        rec.Kind,
		SnapshotID:  rec.SnapshotID,
		ParentID:    rec.ParentID,
		Attempts:    rec.Attempts,
		Requeues:    rec.Requeues,
		DedupeHits:  rec.DedupeHits,
		Error:       rec.Error,
		Deadline:    rec.Deadline,
		TraceID:     rec.TraceID,
		ContentType: rec.ContentType,
		Stats:       rec.Stats,
	}
	if rec.State == jobs.StateCompleted {
		v.Result = "/jobs/" + rec.ID + "/result"
	}
	return v
}

// writeIndentJSON encodes v as indented JSON.
func writeIndentJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeJobAccepted answers an async submission: 202 Accepted with the
// job id and where to poll. Joining an existing job (the dedupe hit)
// looks identical — the id is the content address either way.
func (s *server) writeJobAccepted(w http.ResponseWriter, job *jobs.Job) {
	rec := job.Record()
	if rec.TraceID != "" {
		w.Header().Set("X-Affidavit-Trace-Id", rec.TraceID)
	}
	writeIndentJSON(w, http.StatusAccepted, struct {
		JobID  string `json:"job_id"`
		State  string `json:"state"`
		Status string `json:"status"`
		Result string `json:"result"`
	}{
		JobID:  rec.ID,
		State:  string(rec.State),
		Status: "/jobs/" + rec.ID,
		Result: "/jobs/" + rec.ID + "/result",
	})
}

// writeJobOutcome renders a terminal job record as the sync /explain
// response: the stored result bytes (byte-identical across dedupe
// joiners), the 503 + partial-stats answer for deadline cuts, or the
// error text.
func (s *server) writeJobOutcome(w http.ResponseWriter, rec jobs.Record, inlineTrace bool) {
	if rec.TraceID != "" {
		w.Header().Set("X-Affidavit-Trace-Id", rec.TraceID)
	}
	switch rec.State {
	case jobs.StateCompleted:
		body, rec2, err := s.store.Result(rec.ID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// ?trace=1 inlines the run's retained trace into a JSON result;
		// plain responses serve the stored bytes untouched.
		if inlineTrace && (rec2.Format == "" || rec2.Format == "json") {
			if tr := s.traceByID(rec2.TraceID); tr != nil {
				var jr affidavit.JSONResult
				if json.Unmarshal(body, &jr) == nil {
					jr.Trace = tr
					if out, merr := json.MarshalIndent(jr, "", "  "); merr == nil {
						body = append(out, '\n')
					}
				}
			}
		}
		w.Header().Set("Content-Type", rec2.ContentType)
		w.Write(body)
	case jobs.StateError:
		if rec.Deadline {
			var st affidavit.JSONStats
			if len(rec.Stats) > 0 {
				json.Unmarshal(rec.Stats, &st)
			}
			st.Cancelled = false // the 503 body's error field already says it
			writeIndentJSON(w, http.StatusServiceUnavailable, deadlineResponse{
				Error: rec.Error,
				Table: rec.Table,
				Stats: st,
			})
			return
		}
		http.Error(w, rec.Error, http.StatusUnprocessableEntity)
	case jobs.StateCancelled:
		http.Error(w, "job "+rec.ID+" was cancelled", http.StatusConflict)
	default:
		// Unreachable: Wait only returns terminal records.
		http.Error(w, "job "+rec.ID+" is "+string(rec.State), http.StatusInternalServerError)
	}
}

// handleJobs serves GET /jobs: every job record in submission order —
// the deterministic listing the jobstore analyzer pins.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	recs := s.store.List()
	views := make([]jobView, len(recs))
	for i, rec := range recs {
		views[i] = viewOf(rec)
	}
	writeIndentJSON(w, http.StatusOK, struct {
		Jobs []jobView `json:"jobs"`
	}{views})
}

// handleJob serves one job: GET /jobs/{id} (status + stats + trace id),
// GET /jobs/{id}/result (the stored bytes), DELETE /jobs/{id} (cancel —
// a pending job terminally, a running job via its context).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "result") {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet:
		job, ok := s.store.Get(id)
		if !ok {
			http.Error(w, "no job "+id, http.StatusNotFound)
			return
		}
		rec := job.Record()
		if sub == "result" {
			if rec.State != jobs.StateCompleted {
				http.Error(w, "job "+id+" is "+string(rec.State)+", not completed", http.StatusConflict)
				return
			}
			body, rec2, err := s.store.Result(id)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("X-Affidavit-Job-Id", rec2.ID)
			if rec2.TraceID != "" {
				w.Header().Set("X-Affidavit-Trace-Id", rec2.TraceID)
			}
			w.Header().Set("Content-Type", rec2.ContentType)
			w.Write(body)
			return
		}
		w.Header().Set("X-Affidavit-Job-Id", rec.ID)
		writeIndentJSON(w, http.StatusOK, viewOf(rec))
	case http.MethodDelete:
		if sub != "" {
			http.Error(w, "DELETE targets /jobs/{id}", http.StatusMethodNotAllowed)
			return
		}
		rec, err := s.store.Cancel(id)
		if err != nil {
			http.Error(w, "no job "+id, http.StatusNotFound)
			return
		}
		w.Header().Set("X-Affidavit-Job-Id", rec.ID)
		writeIndentJSON(w, http.StatusOK, viewOf(rec))
	default:
		http.Error(w, "GET or DELETE", http.StatusMethodNotAllowed)
	}
}

// handleMetrics serves GET /metrics: the observer-fed pipeline counters
// followed by the job-subsystem gauges and counters, in fixed order.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.ServeHTTP(w, r)
	m := s.store.Metrics()
	for _, row := range []struct {
		name, typ, help string
		value           int64
	}{
		{"affidavit_jobs_queued", "gauge", "Jobs waiting in the queue.", int64(m.Queued)},
		{"affidavit_jobs_running", "gauge", "Jobs currently executing.", int64(m.Running)},
		{"affidavit_jobs_submitted_total", "counter", "Job submissions that queued a computation.", m.Submitted},
		{"affidavit_jobs_dedupe_hits_total", "counter", "Submissions served by joining an existing job.", m.DedupeHits},
		{"affidavit_jobs_completed_total", "counter", "Jobs that completed with a stored result.", m.Completed},
		{"affidavit_jobs_failed_total", "counter", "Jobs that ended in a terminal error.", m.Failed},
		{"affidavit_jobs_cancelled_total", "counter", "Jobs cancelled via DELETE /jobs/{id}.", m.Cancelled},
		{"affidavit_jobs_retried_total", "counter", "Transient failures scheduled for another attempt.", m.Retried},
		{"affidavit_jobs_requeued_total", "counter", "Runs returned to the queue by crash recovery or shutdown.", m.Requeued},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", row.name, row.help, row.name, row.typ, row.name, row.value)
	}
	s.writeCatalogMetrics(w)
}

// jobsStats is the /stats job section.
type jobsStats struct {
	Queued     int   `json:"queued"`
	Running    int   `json:"running"`
	Submitted  int64 `json:"submitted"`
	DedupeHits int64 `json:"dedupe_hits"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Cancelled  int64 `json:"cancelled"`
	Retried    int64 `json:"retried"`
	Requeued   int64 `json:"requeued"`
	// JournalError warns that the durable store degraded to
	// availability-over-durability (first latched journal write failure).
	JournalError string `json:"journal_error,omitempty"`
}

func (s *server) jobsStats() jobsStats {
	m := s.store.Metrics()
	return jobsStats{
		Queued:       m.Queued,
		Running:      m.Running,
		Submitted:    m.Submitted,
		DedupeHits:   m.DedupeHits,
		Completed:    m.Completed,
		Failed:       m.Failed,
		Cancelled:    m.Cancelled,
		Retried:      m.Retried,
		Requeued:     m.Requeued,
		JournalError: m.JournalError,
	}
}
