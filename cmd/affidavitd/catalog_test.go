package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"affidavit"
)

// registerTable POSTs /tables and returns the status code and body.
func registerTable(t *testing.T, srv *httptest.Server, name string) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(struct {
		Name string `json:"name"`
	}{name})
	resp, err := http.Post(srv.URL+"/tables", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// pushSnapshot POSTs one snapshot to /tables/{name}/snapshots and returns
// the status code, body and response headers.
func pushSnapshot(t *testing.T, srv *httptest.Server, name, csv string, fields map[string]string) (int, []byte, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("snapshot", "snapshot.csv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(fw, csv); err != nil {
		t.Fatal(err)
	}
	for k, v := range fields {
		if err := mw.WriteField(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/tables/"+name+"/snapshots", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// TestCatalogChainByteIdentity is the acceptance check: pushing N
// snapshots of a registered table yields an explanation chain
// byte-identical to N−1 manual warm ExplainNext calls on the same pair
// sequence (CI runs this under -race).
func TestCatalogChainByteIdentity(t *testing.T) {
	srv := testServer(t)
	ch := testChain(t, 3)
	csvs := make([]string, len(ch.Snapshots))
	for i, snap := range ch.Snapshots {
		csvs[i] = csvOf(t, snap)
	}

	if code, body := registerTable(t, srv, "bridges"); code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", code, body)
	}
	code, body, _ := pushSnapshot(t, srv, "bridges", csvs[0], nil)
	if code != http.StatusCreated {
		t.Fatalf("first push: status %d: %s", code, body)
	}
	var chainBodies [][]byte
	for _, csv := range csvs[1:] {
		code, body, hdr := pushSnapshot(t, srv, "bridges", csv, nil)
		if code != http.StatusOK {
			t.Fatalf("push: status %d: %s", code, body)
		}
		if hdr.Get("X-Affidavit-Snapshot-Id") == "" || hdr.Get("X-Affidavit-Job-Id") == "" {
			t.Fatal("push response missing lineage headers")
		}
		chainBodies = append(chainBodies, body)
	}

	// Reference: the same sequence as manual warm ExplainNext calls on a
	// fresh explainer with the same options.
	ex, err := affidavit.New(testOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := ex.ReadSource(ctx, affidavit.NewCSVSource(strings.NewReader(csvs[0])))
	if err != nil {
		t.Fatal(err)
	}
	sess := ex.Session(base)
	for i, csv := range csvs[1:] {
		next, err := ex.ReadSource(ctx, affidavit.NewCSVSource(strings.NewReader(csv)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.ExplainNextContext(ctx, next)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.MarshalIndent(res.JSONResult("bridges"), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if !bytes.Equal(chainBodies[i], want) {
			t.Errorf("chain step %d differs from the manual warm ExplainNext reference", i+1)
		}
	}

	// The stored chain serves the same bytes through the job result store.
	var hist struct {
		Steps []struct {
			Status string `json:"status"`
			Result string `json:"result"`
		} `json:"steps"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/tables/bridges/history")), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Steps) != len(chainBodies) {
		t.Fatalf("history has %d steps, want %d", len(hist.Steps), len(chainBodies))
	}
	for i, step := range hist.Steps {
		if step.Status != "explained" {
			t.Errorf("step %d status %q, want explained", i, step.Status)
		}
		if stored := get(t, srv.URL+step.Result); stored != string(chainBodies[i]) {
			t.Errorf("step %d stored result differs from the push response", i)
		}
	}
}

// TestCatalogEmptyAndSingle covers the degenerate chains: a freshly
// registered table (no snapshots) and a single-snapshot table must serve
// valid, empty-not-null history and trends.
func TestCatalogEmptyAndSingle(t *testing.T) {
	srv := testServer(t)
	if code, body := registerTable(t, srv, "fresh"); code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", code, body)
	}

	hist := get(t, srv.URL+"/tables/fresh/history")
	if !strings.Contains(hist, `"snapshots": []`) || !strings.Contains(hist, `"steps": []`) {
		t.Errorf("empty history should encode empty arrays, got:\n%s", hist)
	}
	trends := get(t, srv.URL+"/tables/fresh/trends")
	var tr struct {
		Snapshots   int `json:"snapshots"`
		Compression struct {
			Trajectory []float64 `json:"trajectory"`
		} `json:"compression"`
	}
	if err := json.Unmarshal([]byte(trends), &tr); err != nil {
		t.Fatalf("empty trends: %v in:\n%s", err, trends)
	}
	if tr.Snapshots != 0 || len(tr.Compression.Trajectory) != 0 {
		t.Errorf("empty trends = %s", trends)
	}

	code, body, _ := pushSnapshot(t, srv, "fresh", "id,v\na,1\nb,2\n", map[string]string{"op": "seed"})
	if code != http.StatusCreated {
		t.Fatalf("single push: status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/tables/fresh/trends")), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Snapshots != 1 || len(tr.Compression.Trajectory) != 0 {
		t.Errorf("single-snapshot trends: snapshots=%d trajectory=%v", tr.Snapshots, tr.Compression.Trajectory)
	}
	hist = get(t, srv.URL+"/tables/fresh/history")
	if !strings.Contains(hist, `"op": "seed"`) {
		t.Errorf("history should carry the op tag, got:\n%s", hist)
	}
}

// TestCatalogSchemaChangeMidChain: a pushed snapshot whose schema differs
// from its parent refuses the explanation with a clear error, and the
// chain continues from the new schema — the next compatible push is
// explained again.
func TestCatalogSchemaChangeMidChain(t *testing.T) {
	srv := testServer(t)
	if code, _ := registerTable(t, srv, "evolving"); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	pushOK := func(csv string, wantCode int) []byte {
		t.Helper()
		code, body, _ := pushSnapshot(t, srv, "evolving", csv, nil)
		if code != wantCode {
			t.Fatalf("push: status %d, want %d: %s", code, wantCode, body)
		}
		return body
	}
	pushOK("id,city\na,berlin\nb,mannheim\n", http.StatusCreated)
	pushOK("id,city\na,BERLIN\nb,MANNHEIM\n", http.StatusOK)
	// Schema change: the sync push reports the refusal.
	body := pushOK("id,city,zip\na,BERLIN,10115\nb,MANNHEIM,68159\n", http.StatusUnprocessableEntity)
	if !strings.Contains(string(body), "schema changed") || !strings.Contains(string(body), "chain continues") {
		t.Errorf("schema-change error not clear: %s", body)
	}
	// The chain continues from the new schema.
	pushOK("id,city,zip\na,BERLIN,10115\nb,MANNHEIM,68161\n", http.StatusOK)

	var hist struct {
		Steps []struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		} `json:"steps"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/tables/evolving/history")), &hist); err != nil {
		t.Fatal(err)
	}
	want := []string{"explained", "failed", "explained"}
	if len(hist.Steps) != len(want) {
		t.Fatalf("history has %d steps, want %d", len(hist.Steps), len(want))
	}
	for i, step := range hist.Steps {
		if step.Status != want[i] {
			t.Errorf("step %d status %q, want %q", i, step.Status, want[i])
		}
	}
	if !strings.Contains(hist.Steps[1].Error, "schema changed") {
		t.Errorf("failed step error = %q", hist.Steps[1].Error)
	}

	var tr struct {
		StepsFailed int `json:"steps_failed"`
		Steps       []struct {
			SchemaChange bool `json:"schema_change"`
		} `json:"steps"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/tables/evolving/trends")), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.StepsFailed != 1 || !tr.Steps[1].SchemaChange {
		t.Errorf("trends should mark the schema change: %+v", tr)
	}
}

// TestCatalogRestartByteStability: /history and /trends must serve
// byte-identical JSON before and after a restart — every field replays
// from the catalog and job journals, none re-derives from the clock.
func TestCatalogRestartByteStability(t *testing.T) {
	dir := t.TempDir()
	s := mustServer(t, serverConfig{options: testOptions(), jobsDir: dir})
	srv := httptest.NewServer(s.handler())
	ch := testChain(t, 2)

	if code, _ := registerTable(t, srv, "durable"); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	for i, snap := range ch.Snapshots {
		wantCode := http.StatusOK
		if i == 0 {
			wantCode = http.StatusCreated
		}
		code, body, _ := pushSnapshot(t, srv, "durable", csvOf(t, snap), nil)
		if code != wantCode {
			t.Fatalf("push %d: status %d: %s", i, code, body)
		}
	}
	histBefore := get(t, srv.URL+"/tables/durable/history")
	trendsBefore := get(t, srv.URL+"/tables/durable/trends")
	tablesBefore := get(t, srv.URL+"/tables")
	srv.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustServer(t, serverConfig{options: testOptions(), jobsDir: dir})
	t.Cleanup(func() { s2.Close() })
	srv2 := httptest.NewServer(s2.handler())
	t.Cleanup(srv2.Close)
	if got := get(t, srv2.URL+"/tables/durable/history"); got != histBefore {
		t.Errorf("history changed across restart:\nbefore:\n%s\nafter:\n%s", histBefore, got)
	}
	if got := get(t, srv2.URL+"/tables/durable/trends"); got != trendsBefore {
		t.Errorf("trends changed across restart:\nbefore:\n%s\nafter:\n%s", trendsBefore, got)
	}
	if got := get(t, srv2.URL+"/tables"); got != tablesBefore {
		t.Errorf("table listing changed across restart:\nbefore:\n%s\nafter:\n%s", tablesBefore, got)
	}
}

// TestCatalogAsyncPush: async=1 answers 202 with the job id; the step
// lands in the background and the history converges to explained.
func TestCatalogAsyncPush(t *testing.T) {
	srv := testServer(t)
	if code, _ := registerTable(t, srv, "async"); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	if code, body, _ := pushSnapshot(t, srv, "async", "id,v\na,1\nb,2\n", nil); code != http.StatusCreated {
		t.Fatalf("first push: status %d: %s", code, body)
	}
	code, body, hdr := pushSnapshot(t, srv, "async", "id,v\na,2\nb,3\n", map[string]string{"async": "1"})
	if code != http.StatusAccepted {
		t.Fatalf("async push: status %d: %s", code, body)
	}
	jobID := hdr.Get("X-Affidavit-Job-Id")
	if jobID == "" {
		t.Fatal("async push missing X-Affidavit-Job-Id")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var view jobView
		if err := json.Unmarshal([]byte(get(t, srv.URL+"/jobs/"+jobID)), &view); err != nil {
			t.Fatal(err)
		}
		if view.State == "completed" {
			if view.Kind != "catalog" || view.SnapshotID == "" || view.ParentID == "" {
				t.Errorf("job view missing lineage: %+v", view)
			}
			break
		}
		if view.State == "error" || view.State == "cancelled" {
			t.Fatalf("async step ended %s: %s", view.State, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("async step stuck in %s", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	hist := get(t, srv.URL+"/tables/async/history")
	if !strings.Contains(hist, `"status": "explained"`) {
		t.Errorf("async step not explained in history:\n%s", hist)
	}
}

// TestCatalogValidation: the error surface — bad names, duplicate
// registration, pushes to unknown tables, malformed pushes.
func TestCatalogValidation(t *testing.T) {
	srv := testServer(t)
	if code, _ := registerTable(t, srv, "../evil"); code != http.StatusBadRequest {
		t.Errorf("bad name: status %d, want 400", code)
	}
	if code, _ := registerTable(t, srv, "dup"); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	if code, _ := registerTable(t, srv, "dup"); code != http.StatusConflict {
		t.Errorf("duplicate registration: status %d, want 409", code)
	}
	if code, _, _ := pushSnapshot(t, srv, "ghost", "id,v\na,1\n", nil); code != http.StatusNotFound {
		t.Errorf("push to unknown table: status %d, want 404", code)
	}
	// A push without the snapshot part is a 400.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("op", "oops")
	mw.Close()
	resp, err := http.Post(srv.URL+"/tables/dup/snapshots", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing snapshot part: status %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(srv.URL + "/tables/ghost/history"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("history of unknown table: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestEngineFingerprintAddresses: the same pair submitted under different
// engine options must compute under different job identities — a config
// change stops serving results computed under old flags.
func TestEngineFingerprintAddresses(t *testing.T) {
	ch := testChain(t, 1)
	src, tgt := csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1])

	jobIDOf := func(opts ...affidavit.Option) string {
		t.Helper()
		s := mustServer(t, serverConfig{options: opts})
		t.Cleanup(func() { s.Close() })
		srv := httptest.NewServer(s.handler())
		t.Cleanup(srv.Close)
		ctype, body := multipartBody(t, src, tgt, map[string]string{"table": "t"})
		resp, err := http.Post(srv.URL+"/explain", ctype, body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explain: status %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Affidavit-Job-Id")
	}

	base := jobIDOf(affidavit.WithSeed(31))
	same := jobIDOf(affidavit.WithSeed(31))
	reseeded := jobIDOf(affidavit.WithSeed(32))
	retuned := jobIDOf(affidavit.WithSeed(31), affidavit.WithAlpha(0.3))
	if base != same {
		t.Errorf("identical configs produced different job ids: %s vs %s", base, same)
	}
	if base == reseeded {
		t.Error("seed change did not change the job identity")
	}
	if base == retuned {
		t.Error("alpha change did not change the job identity")
	}
}

// catalogMetricsSmoke asserts the affidavit_catalog_* rows appear.
func TestCatalogMetrics(t *testing.T) {
	srv := testServer(t)
	if code, _ := registerTable(t, srv, "metered"); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	if code, _, _ := pushSnapshot(t, srv, "metered", "id,v\na,1\n", nil); code != http.StatusCreated {
		t.Fatal("push failed")
	}
	metrics := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"affidavit_catalog_tables 1",
		"affidavit_catalog_snapshots 1",
		"affidavit_catalog_steps_pending 0",
		"affidavit_catalog_steps_explained 0",
		"affidavit_catalog_steps_failed 0",
		"affidavit_catalog_schema_resets_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	stats := get(t, srv.URL+"/stats")
	var st statsResponse
	if err := json.Unmarshal([]byte(stats), &st); err != nil {
		t.Fatal(err)
	}
	if st.Catalog.Tables != 1 || st.Catalog.Snapshots != 1 {
		t.Errorf("stats catalog section = %+v", st.Catalog)
	}
}
