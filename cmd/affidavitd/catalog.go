package main

// Catalog glue: the runner wrapper that executes snapshot-catalog chain
// steps with per-run tracing (including snapshot lineage ids), and the
// catalog gauges on /metrics and /stats.

import (
	"context"
	"fmt"
	"net/http"

	"affidavit"
	"affidavit/internal/jobs"
)

// runCatalogStep executes one catalog chain-step job: attach a run trace
// carrying the step's lineage (snapshot id + parent id), then hand the
// step to the catalog service — which resolves the warm session, runs
// ExplainNext, journals the step's terminal catalog state and renders the
// durable result.
func (s *server) runCatalogStep(ctx context.Context, rec jobs.Record, payload any) (*jobs.Outcome, error) {
	var trec *affidavit.TraceRecorder
	if s.cfg.traceBuffer != 0 {
		trec = affidavit.NewTraceRecorder()
		trec.SetLabel(rec.Table)
		trec.SetJobID(rec.ID)
		trec.SetLineage(rec.SnapshotID, rec.ParentID)
		ctx = affidavit.ContextWithObserver(ctx, trec)
	}
	out, err := s.catalog.RunStep(ctx, rec, payload)
	if trec != nil {
		tr := trec.Trace()
		if out != nil {
			out.TraceID = tr.ID
		}
		// Failed and cancelled steps retain their trace too.
		s.storeTrace(tr)
	}
	return out, err
}

// catalogStats is the /stats catalog section, mirroring the
// affidavit_catalog_* series on /metrics.
type catalogStats struct {
	Tables         int   `json:"tables"`
	Snapshots      int   `json:"snapshots"`
	StepsPending   int   `json:"steps_pending"`
	StepsExplained int   `json:"steps_explained"`
	StepsFailed    int   `json:"steps_failed"`
	SchemaResets   int64 `json:"schema_resets"`
	// JournalError warns that the catalog journal degraded to
	// availability-over-durability (first latched write failure).
	JournalError string `json:"journal_error,omitempty"`
}

func (s *server) catalogStats() catalogStats {
	m := s.catalog.Store().Metrics()
	return catalogStats{
		Tables:         m.Tables,
		Snapshots:      m.Snapshots,
		StepsPending:   m.StepsPending,
		StepsExplained: m.StepsExplained,
		StepsFailed:    m.StepsFailed,
		SchemaResets:   s.catalog.SchemaResets(),
		JournalError:   m.JournalError,
	}
}

// writeCatalogMetrics appends the catalog gauges to /metrics in fixed
// order.
func (s *server) writeCatalogMetrics(w http.ResponseWriter) {
	m := s.catalog.Store().Metrics()
	for _, row := range []struct {
		name, typ, help string
		value           int64
	}{
		{"affidavit_catalog_tables", "gauge", "Registered catalog tables.", int64(m.Tables)},
		{"affidavit_catalog_snapshots", "gauge", "Snapshots stored across all catalog tables.", int64(m.Snapshots)},
		{"affidavit_catalog_steps_pending", "gauge", "Chain steps queued or running.", int64(m.StepsPending)},
		{"affidavit_catalog_steps_explained", "gauge", "Chain steps with a stored explanation.", int64(m.StepsExplained)},
		{"affidavit_catalog_steps_failed", "gauge", "Chain steps that refused or failed to explain.", int64(m.StepsFailed)},
		{"affidavit_catalog_schema_resets_total", "counter", "Chain re-seeds caused by mid-chain schema changes.", s.catalog.SchemaResets()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", row.name, row.help, row.name, row.typ, row.name, row.value)
	}
}
