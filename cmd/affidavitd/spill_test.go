package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"affidavit"
)

// get fetches a URL and returns its body as a string.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// spillPair is a CSV pair big and distinct enough that an 8 KiB budget
// spills during both blocking refinement and the end-state conversion.
func spillPair() (source, target string) {
	var src, tgt strings.Builder
	src.WriteString("id,city,qty\n")
	tgt.WriteString("id,city,qty\n")
	for i := 0; i < 600; i++ {
		fmt.Fprintf(&src, "%d,city-%d,%d\n", i, i%37, i%11)
		fmt.Fprintf(&tgt, "%d,city-%d,%d\n", i+1000000, i%37, i%11+7)
	}
	return src.String(), tgt.String()
}

// TestServerSpillCounters: under -mem-budget, /stats and /metrics expose
// the out-of-core totals (spill_bytes_total / spill_partitions_total and
// the affidavit_spill_* counters).
func TestServerSpillCounters(t *testing.T) {
	srv := httptest.NewServer(mustServer(t, serverConfig{
		options: append(testOptions(), affidavit.WithMemBudget(8<<10)),
	}).handler())
	t.Cleanup(srv.Close)

	source, target := spillPair()
	code, body := post(t, srv, source, target, nil)
	if code != http.StatusOK {
		t.Fatalf("explain: status %d body %.200s", code, body)
	}
	if !strings.Contains(string(body), `"spilled_bytes"`) {
		t.Errorf("response stats lack spilled_bytes: %.300s", body)
	}

	stats := get(t, srv.URL+"/stats")
	for _, want := range []string{`"spill_bytes_total"`, `"spill_partitions_total"`} {
		if !strings.Contains(stats, want) {
			t.Errorf("/stats lacks %s: %.300s", want, stats)
		}
	}
	if strings.Contains(stats, `"spill_bytes_total": 0,`) {
		t.Errorf("/stats reports zero spill bytes after a budgeted explanation: %.300s", stats)
	}

	metrics := get(t, srv.URL+"/metrics")
	for _, want := range []string{"affidavit_spill_bytes_total", "affidavit_spill_partitions_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
	if strings.Contains(metrics, "affidavit_spill_bytes_total 0\n") {
		t.Error("/metrics reports zero spill bytes after a budgeted explanation")
	}
}

// TestMaxSnapshotMentionsMemBudget: the -max-snapshot rejection points at
// -mem-budget as the way to serve genuinely large snapshots.
func TestMaxSnapshotMentionsMemBudget(t *testing.T) {
	srv := httptest.NewServer(mustServer(t, serverConfig{
		options:          testOptions(),
		maxSnapshotBytes: 1 << 10,
	}).handler())
	t.Cleanup(srv.Close)

	huge := "v\n" + strings.Repeat("x", 4<<10) + "\n"
	code, body := post(t, srv, huge, "v\na\n", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(string(body), "-mem-budget") {
		t.Errorf("rejection does not mention -mem-budget: %.200s", body)
	}
}
