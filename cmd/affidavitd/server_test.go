package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"affidavit"
	"affidavit/internal/datasets"
	"affidavit/internal/gen"
	"affidavit/internal/table"
)

// testOptions is the shared explainer construction for server tests.
func testOptions() []affidavit.Option {
	return []affidavit.Option{affidavit.WithSeed(31)}
}

// mustServer builds a server or fails the test.
func mustServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(mustServer(t, serverConfig{options: testOptions()}).handler())
	t.Cleanup(srv.Close)
	return srv
}

func csvOf(t *testing.T, tab *table.Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// multipartBody builds an /explain upload from two CSV strings.
func multipartBody(t *testing.T, source, target string, fields map[string]string) (string, io.Reader) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for name, content := range map[string]string{"source": source, "target": target} {
		fw, err := mw.CreateFormFile(name, name+".csv")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(fw, content); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range fields {
		if err := mw.WriteField(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return mw.FormDataContentType(), &buf
}

func testChain(t *testing.T, steps int) *gen.ChainProblem {
	t.Helper()
	ds, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(31)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := gen.MakeChain(tab, gen.ChainConfig{Steps: steps, Eta: 0.1, Tau: 0.5, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func post(t *testing.T, srv *httptest.Server, source, target string, fields map[string]string) (int, []byte) {
	t.Helper()
	ctype, body := multipartBody(t, source, target, fields)
	resp, err := http.Post(srv.URL+"/explain", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestExplainEndpoint(t *testing.T) {
	srv := testServer(t)
	ch := testChain(t, 1)
	src, tgt := csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1])

	code, body := post(t, srv, src, tgt, map[string]string{"table": "bridges"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp affidavit.JSONResult
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.Table != "bridges" {
		t.Errorf("table %q", resp.Table)
	}
	if len(resp.Explanation.Functions) == 0 {
		t.Error("no functions in response")
	}
	if resp.Cost <= 0 || resp.Cost >= resp.TrivialCost {
		t.Errorf("cost %v vs trivial %v: no structure found", resp.Cost, resp.TrivialCost)
	}
	if !strings.Contains(resp.SQL, "bridges") {
		t.Error("SQL script not rendered for the table name")
	}
	if resp.Stats.Polls == 0 {
		t.Error("stats not populated")
	}
}

func TestExplainFormats(t *testing.T) {
	srv := testServer(t)
	ch := testChain(t, 1)
	src, tgt := csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1])

	code, body := post(t, srv, src, tgt, map[string]string{"table": "b", "format": "sql"})
	if code != http.StatusOK || !strings.Contains(string(body), "UPDATE") && !strings.Contains(string(body), "DELETE") && !strings.Contains(string(body), "INSERT") {
		t.Errorf("sql format: status %d body %.120s", code, body)
	}
	code, body = post(t, srv, src, tgt, map[string]string{"format": "text"})
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("text format: status %d", code)
	}
	code, body = post(t, srv, src, tgt, map[string]string{"format": "yaml"})
	if code != http.StatusBadRequest {
		t.Errorf("unknown format: status %d body %.120s", code, body)
	}
}

func TestExplainErrors(t *testing.T) {
	srv := testServer(t)
	// Missing files.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.Close()
	resp, err := http.Post(srv.URL+"/explain", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing files: status %d", resp.StatusCode)
	}
	// Mismatched schemas.
	code, _ := post(t, srv, "a,b\n1,2\n", "x\n9\n", nil)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("schema mismatch: status %d", code)
	}
	// GET not allowed.
	get, err := http.Get(srv.URL + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", get.StatusCode)
	}
}

// TestConcurrentIdenticalRequests is the service acceptance check:
// concurrent POST /explain requests are race-clean and identical inputs
// yield byte-identical reports, shared pool or not.
func TestConcurrentIdenticalRequests(t *testing.T) {
	srv := testServer(t)
	ch := testChain(t, 1)
	src, tgt := csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1])

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := post(t, srv, src, tgt, map[string]string{"table": "same"})
			if code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

// TestWarmChainViaService: successive warm uploads of the same table reuse
// the previous explanation — the service-side incremental path — and
// report the same explanation with fewer polls.
func TestWarmChainViaService(t *testing.T) {
	srv := testServer(t)
	ch := testChain(t, 3)
	var polls []int
	var costs []float64
	for i := 1; i < len(ch.Snapshots); i++ {
		code, body := post(t, srv,
			csvOf(t, ch.Snapshots[i-1]), csvOf(t, ch.Snapshots[i]),
			map[string]string{"table": "chain", "warm": "1"})
		if code != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", i, code, body)
		}
		var resp affidavit.JSONResult
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		polls = append(polls, resp.Stats.Polls)
		costs = append(costs, resp.Cost)
	}
	for i := 1; i < len(polls); i++ {
		if polls[i] >= polls[0] {
			t.Errorf("warm step %d polled %d states, cold step polled %d — no warm speedup",
				i+1, polls[i], polls[0])
		}
	}
	// /stats reflects the session.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Tables map[string]tableStats `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Tables["chain"].Runs != 3 || stats.Tables["chain"].PoolValues == 0 {
		t.Errorf("stats: %+v", stats.Tables["chain"])
	}
}

// TestExplainEmptySnapshots: header-only CSVs are valid empty tables; the
// JSON path must not emit NaN ratios.
func TestExplainEmptySnapshots(t *testing.T) {
	srv := testServer(t)
	code, body := post(t, srv, "a,b\n", "a,b\n", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp affidavit.JSONResult
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.Compression != 0 {
		t.Errorf("compression %v, want 0 for an empty pair", resp.Compression)
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

// TestExplainDeadline503: a request whose explanation budget is already
// exhausted answers 503 Service Unavailable with the partial (here: empty)
// search statistics instead of hanging or 500ing.
func TestExplainDeadline503(t *testing.T) {
	srv := httptest.NewServer(mustServer(t, serverConfig{
		options: testOptions(),
		timeout: time.Nanosecond,
	}).handler())
	t.Cleanup(srv.Close)

	ch := testChain(t, 1)
	code, body := post(t, srv, csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1]),
		map[string]string{"table": "slow"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	var resp deadlineResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad 503 JSON: %v: %s", err, body)
	}
	if resp.Error == "" || resp.Table != "slow" {
		t.Errorf("503 body: %+v", resp)
	}
}

// fakeClock hands out strictly increasing timestamps so eviction order is
// deterministic in tests.
type fakeClock struct {
	mu sync.Mutex
	at time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at = c.at.Add(time.Second)
	return c.at
}

// TestSessionTTLEviction: sessions idle past the TTL are dropped; touching
// a session refreshes its clock.
func TestSessionTTLEviction(t *testing.T) {
	clk := &fakeClock{at: time.Unix(1000, 0)}
	s := mustServer(t, serverConfig{
		options:    testOptions(),
		sessionTTL: time.Minute,
		now:        clk.now,
	})
	s.session("a")
	s.session("b")
	s.session("a") // refresh a
	if n := s.evictExpired(clk.now().Add(30 * time.Second)); n != 0 {
		t.Fatalf("evicted %d sessions before the TTL", n)
	}
	// Age everything past the TTL, then refresh only "a".
	s.session("a")
	if n := s.evictExpired(clk.now().Add(59 * time.Second)); n != 1 {
		t.Fatalf("evicted %d sessions, want 1 (only the idle one)", n)
	}
	s.mu.Lock()
	_, aAlive := s.sessions["a"]
	_, bAlive := s.sessions["b"]
	s.mu.Unlock()
	if !aAlive || bAlive {
		t.Fatalf("a alive=%v b alive=%v, want a kept and b evicted", aAlive, bAlive)
	}
	if n := s.evictExpired(clk.now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("evicted %d sessions, want the last one", n)
	}
}

// TestSessionLRUCap: the -max-sessions cap evicts the least-recently-used
// session when a new table arrives.
func TestSessionLRUCap(t *testing.T) {
	clk := &fakeClock{at: time.Unix(2000, 0)}
	s := mustServer(t, serverConfig{
		options:     testOptions(),
		maxSessions: 2,
		now:         clk.now,
	})
	s.session("a")
	s.session("b")
	s.session("a") // a is now more recently used than b
	s.session("c") // must evict b
	s.mu.Lock()
	_, aAlive := s.sessions["a"]
	_, bAlive := s.sessions["b"]
	_, cAlive := s.sessions["c"]
	n, evicted := len(s.sessions), s.evicted
	s.mu.Unlock()
	if !aAlive || bAlive || !cAlive || n != 2 || evicted != 1 {
		t.Fatalf("a=%v b=%v c=%v len=%d evicted=%d, want a,c kept with b evicted",
			aAlive, bAlive, cAlive, n, evicted)
	}
	// An evicted table simply gets a fresh session on its next upload.
	s.session("b")
	s.mu.Lock()
	n = len(s.sessions)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("len=%d after re-creating b, want cap 2", n)
	}
}

// TestStatsReportsEvictions: /stats carries the lifetime eviction counter.
func TestStatsReportsEvictions(t *testing.T) {
	clk := &fakeClock{at: time.Unix(3000, 0)}
	s := mustServer(t, serverConfig{
		options:     testOptions(),
		maxSessions: 1,
		now:         clk.now,
	})
	s.session("a")
	s.session("b")
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.SessionsEvicted != 1 {
		t.Errorf("sessions_evicted %d, want 1", stats.SessionsEvicted)
	}
	if _, ok := stats.Tables["b"]; !ok || len(stats.Tables) != 1 {
		t.Errorf("tables %v, want only b", stats.Tables)
	}
}

// TestMetricsEndpoint: /metrics serves the observer-fed Prometheus
// counters and reflects the traffic the server handled.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	ch := testChain(t, 1)
	code, body := post(t, srv, csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1]),
		map[string]string{"table": "m"})
	if code != http.StatusOK {
		t.Fatalf("explain: status %d: %s", code, body)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	text := string(out)
	for _, want := range []string{
		`affidavit_ingested_records_total{snapshot="source"} 98`,
		`affidavit_ingested_records_total{snapshot="target"} 98`,
		`affidavit_runs_started_total{mode="cold"} 1`,
		"affidavit_runs_completed_total 1",
		"affidavit_conversions_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// postResp is post, but also returns the response headers — trace tests
// need X-Affidavit-Trace-Id.
func postResp(t *testing.T, srv *httptest.Server, url, source, target string, fields map[string]string) (*http.Response, []byte) {
	t.Helper()
	ctype, body := multipartBody(t, source, target, fields)
	resp, err := http.Post(url, ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestTracesEndpoint is the tracing acceptance path: a traced /explain
// tags its response with X-Affidavit-Trace-Id, /traces/{id} then returns
// the complete structured trace for that run, and ?trace=1 inlines the
// same trace in the JSON response.
func TestTracesEndpoint(t *testing.T) {
	s := mustServer(t, serverConfig{options: testOptions(), traceBuffer: 8})
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)
	ch := testChain(t, 1)
	src, tgt := csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1])

	resp, body := postResp(t, srv, srv.URL+"/explain", src, tgt, map[string]string{"table": "traced"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Affidavit-Trace-Id")
	if id == "" {
		t.Fatal("no X-Affidavit-Trace-Id header on a traced response")
	}
	if strings.Contains(string(body), `"trace"`) {
		t.Error("plain response inlined a trace without ?trace=1")
	}

	// The index lists the run, most recent first.
	idxResp, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer idxResp.Body.Close()
	var index struct {
		Traces []traceIndexEntry `json:"traces"`
	}
	if err := json.NewDecoder(idxResp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	if len(index.Traces) != 1 || index.Traces[0].ID != id || index.Traces[0].Label != "traced" {
		t.Fatalf("index = %+v, want one entry for %s/traced", index.Traces, id)
	}

	// The full trace is complete and structured: ingest spans for both
	// snapshots, a search span, a populated poll summary.
	trResp, err := http.Get(srv.URL + "/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer trResp.Body.Close()
	var tr affidavit.Trace
	if err := json.NewDecoder(trResp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if trResp.StatusCode != http.StatusOK || tr.ID != id || !tr.Complete {
		t.Fatalf("trace fetch: status %d, trace %+v", trResp.StatusCode, tr)
	}
	for _, stage := range []string{"ingest:source", "ingest:target", "search", "convert"} {
		if tr.SpanFor(stage) == nil {
			t.Errorf("trace missing span %q (spans: %+v)", stage, tr.Spans)
		}
	}
	if tr.Polls.Polls == 0 || len(tr.Polls.Curve) == 0 {
		t.Errorf("poll summary not populated: %+v", tr.Polls)
	}
	if tr.Mode != "cold" {
		t.Errorf("mode %q, want cold", tr.Mode)
	}
	// The trace joins the job that ran it.
	if jobID := resp.Header.Get("X-Affidavit-Job-Id"); jobID == "" || tr.JobID != jobID {
		t.Errorf("trace job id %q, want header job id %q", tr.JobID, jobID)
	}

	// ?trace=1 inlines the run's trace. This re-submission of an
	// identical pair dedupes to the already-completed job, so the
	// inlined trace is the original run's — and no second run happens.
	resp2, body2 := postResp(t, srv, srv.URL+"/explain?trace=1", src, tgt, map[string]string{"table": "traced"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("trace=1 explain: status %d: %s", resp2.StatusCode, body2)
	}
	var jr affidavit.JSONResult
	if err := json.Unmarshal(body2, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Trace == nil || jr.Trace.ID != resp2.Header.Get("X-Affidavit-Trace-Id") {
		t.Fatalf("inlined trace = %+v, want the run of header %q", jr.Trace, resp2.Header.Get("X-Affidavit-Trace-Id"))
	}

	// Unknown IDs 404.
	nf, err := http.Get(srv.URL + "/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d", nf.StatusCode)
	}

	// /stats counts the retained traces.
	st, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	// One retained trace: the deduped re-submission joined the first run
	// instead of computing (and tracing) a second one.
	if stats.TracesRetained != 1 {
		t.Errorf("traces_retained %d, want 1 (dedupe joins the first run)", stats.TracesRetained)
	}
	if stats.Jobs.DedupeHits != 1 || stats.Jobs.Submitted != 1 {
		t.Errorf("jobs stats = %+v, want 1 submission + 1 dedupe hit", stats.Jobs)
	}
	if stats.GoVersion == "" || stats.StartedAt.IsZero() {
		t.Errorf("stats identity fields missing: %+v", stats)
	}
}

// TestTraceRingBound: the ring keeps only the newest -trace-buffer traces,
// index ordered most recent first.
func TestTraceRingBound(t *testing.T) {
	s := mustServer(t, serverConfig{options: testOptions(), traceBuffer: 2})
	for i := 0; i < 3; i++ {
		s.storeTrace(&affidavit.Trace{ID: fmt.Sprintf("t%d", i), Complete: true})
	}
	recent := s.recentTraces()
	if len(recent) != 2 || recent[0].ID != "t2" || recent[1].ID != "t1" {
		t.Fatalf("recent = %+v, want [t2 t1]", recent)
	}
	if s.traceByID("t0") != nil {
		t.Error("evicted trace still resolvable")
	}
}

// TestTracingDisabled: -trace-buffer 0 means no recorder, no header, and
// /traces answers 404.
func TestTracingDisabled(t *testing.T) {
	srv := testServer(t) // zero-value config: tracing off
	ch := testChain(t, 1)
	resp, body := postResp(t, srv, srv.URL+"/explain?trace=1",
		csvOf(t, ch.Snapshots[0]), csvOf(t, ch.Snapshots[1]), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Affidavit-Trace-Id"); h != "" {
		t.Errorf("unexpected trace header %q with tracing disabled", h)
	}
	if strings.Contains(string(body), `"trace"`) {
		t.Error("trace inlined with tracing disabled")
	}
	tresp, err := http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusNotFound {
		t.Errorf("/traces with tracing disabled: status %d", tresp.StatusCode)
	}
}

// TestStreamingBeyondMaxUpload: file parts stream into the interned
// backend, so an upload far larger than -max-upload explains fine — the
// cap only bounds buffered non-file values now.
func TestStreamingBeyondMaxUpload(t *testing.T) {
	srv := httptest.NewServer(mustServer(t, serverConfig{
		options:   testOptions(),
		maxUpload: 1 << 10, // 1 KiB
	}).handler())
	t.Cleanup(srv.Close)

	// ~60 KiB per snapshot, far beyond the 1 KiB cap.
	var src, tgt strings.Builder
	src.WriteString("id,city,amount\n")
	tgt.WriteString("id,city,amount\n")
	cities := []string{"mannheim", "berlin", "hamburg", "dresden"}
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&src, "K%05d,%s,%d\n", i, cities[i%4], i*100)
		fmt.Fprintf(&tgt, "R%05d,%s,%d\n", i, strings.ToUpper(cities[i%4]), i*100)
	}
	code, body := post(t, srv, src.String(), tgt.String(), map[string]string{"table": "big"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %.300s", code, body)
	}
	var resp affidavit.JSONResult
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cost >= resp.TrivialCost {
		t.Errorf("cost %v vs trivial %v: the uppercase rewrite was not learned", resp.Cost, resp.TrivialCost)
	}
	// The cap still applies to buffered value fields.
	code, body = post(t, srv, "a\n1\n", "a\n1\n", map[string]string{"table": strings.Repeat("x", 2<<10)})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "exceeds") {
		t.Errorf("oversized field: status %d body %.120s", code, body)
	}
}

// TestMaxRecordsGuard: -max-records rejects snapshots that stream past
// the cap — the memory guard replacing the removed whole-body byte cap.
func TestMaxRecordsGuard(t *testing.T) {
	srv := httptest.NewServer(mustServer(t, serverConfig{
		options:    testOptions(),
		maxRecords: 10,
	}).handler())
	t.Cleanup(srv.Close)

	var big strings.Builder
	big.WriteString("id\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&big, "r%d\n", i)
	}
	code, body := post(t, srv, big.String(), big.String(), nil)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "record limit") {
		t.Errorf("over-limit upload: status %d body %.120s", code, body)
	}
	// Under the cap still works — and so does EXACTLY the cap (a snapshot
	// of max records ends in a clean EOF, not a limit error).
	code, _ = post(t, srv, "id\nr1\nr2\n", "id\nr1\n", nil)
	if code != http.StatusOK {
		t.Errorf("under-limit upload: status %d", code)
	}
	var exact strings.Builder
	exact.WriteString("id\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&exact, "r%d\n", i)
	}
	code, body = post(t, srv, exact.String(), exact.String(), nil)
	if code != http.StatusOK {
		t.Errorf("exact-limit upload: status %d body %.120s", code, body)
	}
}

// TestMaxSnapshotBytesGuard: the byte cap catches few-records-huge-fields
// bodies that a record count cannot.
func TestMaxSnapshotBytesGuard(t *testing.T) {
	srv := httptest.NewServer(mustServer(t, serverConfig{
		options:          testOptions(),
		maxSnapshotBytes: 1 << 10, // 1 KiB
	}).handler())
	t.Cleanup(srv.Close)

	huge := "v\n" + strings.Repeat("x", 4<<10) + "\n" // one 4 KiB record
	code, body := post(t, srv, huge, "v\na\n", nil)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "byte limit") {
		t.Errorf("over-byte-limit upload: status %d body %.120s", code, body)
	}
	code, _ = post(t, srv, "v\na\n", "v\nb\n", nil)
	if code != http.StatusOK {
		t.Errorf("small upload: status %d", code)
	}
}
