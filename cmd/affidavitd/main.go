// Command affidavitd serves explanation traffic over HTTP: clients POST
// pairs of CSV snapshots and receive the learned explanation as JSON, a
// migration script, or a text report. Uploads naming the same table share
// one long-lived session — a common dictionary pool, plus warm-started
// incremental search in chain mode — so recurring traffic over the same
// domain gets cheaper as the service runs.
//
// Usage:
//
//	affidavitd -addr :8080 [search flags]
//
// Every explanation — sync or async — flows through a durable,
// content-addressed job queue: identical snapshot pairs dedupe to a
// single computation (responses are byte-identical, so the cached result
// is exact), a dropped connection no longer throws work away, and with
// -jobs-dir the queue survives restarts — jobs interrupted mid-run are
// journaled back to pending and finished by the next process.
//
// Endpoints:
//
//	POST /explain      multipart upload: files "source" and "target" (CSV,
//	                   first row = header), streamed record-by-record into
//	                   the interned columnar backend — snapshots are never
//	                   buffered whole, so uploads beyond the historical
//	                   -max-upload cap are fine; optional values "table"
//	                   (session key, default "table"), "format" (json | sql
//	                   | text), "warm" ("1" = chain mode: warm-start from
//	                   the table's previous explanation and store the new
//	                   one), "trace" ("1" = inline the run's structured
//	                   trace in the JSON response), "async" ("1" = answer
//	                   202 Accepted with the job id instead of waiting).
//	                   Every response carries X-Affidavit-Job-Id and, when
//	                   tracing is on, X-Affidavit-Trace-Id.
//	POST /tables       register a table in the snapshot-history catalog
//	                   (JSON body {"name": ...} or ?name=)
//	GET  /tables       registered tables in registration order
//	GET  /tables/{name}  one table's registration + snapshot lineage
//	POST /tables/{name}/snapshots  push the table's next snapshot
//	                   (multipart file "snapshot", CSV with header row;
//	                   optional values "op" — an operation tag journaled
//	                   into the lineage — and "async" = "1"). The first
//	                   push seeds the chain; every later push runs an
//	                   explanation of the previous→new pair on the table's
//	                   warm session through the job queue, so the stored
//	                   chain is byte-identical to manual warm ExplainNext
//	                   calls over the same sequence. Responses carry
//	                   X-Affidavit-Snapshot-Id (and X-Affidavit-Job-Id
//	                   when a step was queued).
//	GET  /tables/{name}/history  the drift timeline: snapshots with
//	                   lineage (ids, parent ids, content addresses, op
//	                   tags, timestamps) and per-step explanation
//	                   summaries; byte-stable across restarts
//	GET  /tables/{name}/trends  drift analytics over the chain: attribute
//	                   churn, update/insert/delete mix per step and in
//	                   total, compression-ratio trajectory
//	GET  /jobs         every job in submission order (deterministic)
//	GET  /jobs/{id}    one job's status, attempts, stats and trace id
//	GET  /jobs/{id}/result  the stored result bytes (byte-identical for
//	                   every submitter of the same pair)
//	DELETE /jobs/{id}  cancel: a pending job terminally, a running job
//	                   via its context
//	GET  /traces       index of recent run traces, most recent first
//	GET  /traces/{id}  one full structured trace: per-stage wall-clock
//	                   spans (ingest, search, finalize, convert), the
//	                   thinned poll cost curve, spill totals
//	GET  /stats        process start time/uptime/Go version, per-table
//	                   session counters, eviction totals
//	GET  /metrics      Prometheus-style pipeline counters (ingest volume,
//	                   cold/warm/escalated runs, polls, conversions) and
//	                   run/ingest duration histograms fed from traces
//	GET  /healthz      liveness probe
//
// With -pprof, net/http/pprof profiling handlers are additionally mounted
// under /debug/pprof/.
//
// Operating knobs:
//
//	-jobs-dir      root of the durable job state (JSONL journal, upload
//	               blobs, result store); empty = in-memory queue with the
//	               same dedupe/cancel semantics but no crash durability
//	-job-workers   queue-draining workers; jobs shard across workers by
//	               table hash, so one table's jobs run serially in
//	               submission order and warm chains stay warm (default 2)
//	-job-retry     attempts per job, first run included; only transient
//	               failures (blob-store I/O) retry, with doubling backoff
//	               (default 3)
//	-catalog-dir   root of the snapshot-history catalog journal; empty
//	               defaults to <jobs-dir>/catalog when -jobs-dir is set,
//	               else the catalog is in-memory (same chain semantics,
//	               no crash durability)
//	-timeout       per-job explanation budget; on expiry the job fails
//	               terminally and a sync waiter answers 503 with the
//	               partial search statistics
//	-max-sessions  LRU cap on retained per-table sessions
//	-session-ttl   idle sessions are evicted past this age
//	-max-upload    cap on each non-file form value, in MiB (file parts
//	               stream and are not byte-bounded)
//	-max-records   cap on each streamed snapshot's record count — the
//	               memory guard now that uploads stream (default 10M)
//	-max-snapshot  cap on each streamed snapshot's raw bytes, in MiB —
//	               catches few-records-huge-fields bodies (default 1024)
//	-mem-budget    approximate per-run memory budget (e.g. 256MiB): cold
//	               column chunks, blocking group tables and conversion key
//	               maps spill to temp files instead of growing the heap;
//	               explanations are unchanged, /stats and /metrics report
//	               the spilled volume
//	-trace-buffer  retained run traces behind /traces (default 128;
//	               0 disables per-request tracing entirely)
//	-pprof         mount net/http/pprof handlers under /debug/pprof/
//
// SIGINT/SIGTERM cancel in-flight explanations cooperatively and shut the
// listener down gracefully.
//
// Example:
//
//	curl -s -F source=@before.csv -F target=@after.csv \
//	     'localhost:8080/explain?table=accounts' | jq .explanation.functions
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"affidavit"
	"affidavit/internal/cliutil"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		warmGuard   = flag.Float64("warm-guard", 0, "warm-start quality guard factor (0 = disabled; e.g. 3 escalates to a cold search when the warm seed costs 3× the previous compression ratio)")
		maxUpload   = flag.Int64("max-upload", 1, "largest accepted non-file form value in MiB (file parts stream chunk-by-chunk and are not byte-bounded; see -max-records)")
		maxRecords  = flag.Int("max-records", 0, "largest accepted snapshot in records (0 = default 10M, negative = unlimited)")
		maxSnapshot = flag.Int64("max-snapshot", 0, "largest accepted snapshot in MiB (0 = default 1024, negative = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "concurrent /explain requests (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "per-job explanation budget (0 = unlimited; expiry answers 503 with partial stats)")
		jobsDir     = flag.String("jobs-dir", "", "durable job state root: JSONL journal, upload blobs, result store (empty = in-memory queue)")
		catalogDir  = flag.String("catalog-dir", "", "snapshot-history catalog journal root (empty = <jobs-dir>/catalog, or in-memory without -jobs-dir)")
		jobWorkers  = flag.Int("job-workers", 0, "queue-draining workers; jobs shard by table hash (0 = default 2)")
		jobRetry    = flag.Int("job-retry", 0, "attempts per job incl. the first; transient failures retry with doubling backoff (0 = default 3)")
		maxSessions = flag.Int("max-sessions", 0, "retained per-table sessions (0 = unlimited; excess evicts least-recently-used)")
		sessionTTL  = flag.Duration("session-ttl", 0, "idle session lifetime (0 = sessions never expire)")
		traceBuffer = flag.Int("trace-buffer", defaultTraceBuffer, "retained run traces behind /traces (0 = disable per-request tracing)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	)
	cfg := cliutil.Register(flag.CommandLine, cliutil.Defaults{})
	flag.Parse()

	options, err := cfg.Options(affidavit.WithWarmGuard(*warmGuard))
	if err != nil {
		fmt.Fprintln(os.Stderr, "affidavitd:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel this context; every request context derives
	// from it (BaseContext), so in-flight searches stop cooperatively.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := newServer(serverConfig{
		options:          options,
		observer:         cfg.ProgressObserver(),
		maxUpload:        *maxUpload << 20,
		maxRecords:       *maxRecords,
		maxSnapshotBytes: *maxSnapshot << 20,
		maxInflight:      *maxInflight,
		timeout:          *timeout,
		maxSessions:      *maxSessions,
		sessionTTL:       *sessionTTL,
		traceBuffer:      *traceBuffer,
		pprof:            *pprofFlag,
		jobsDir:          *jobsDir,
		jobWorkers:       *jobWorkers,
		jobRetry:         *jobRetry,
		catalogDir:       *catalogDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "affidavitd:", err)
		os.Exit(2)
	}
	if *sessionTTL > 0 {
		go srv.janitor(ctx)
	}

	hs := &http.Server{
		Addr:        *addr,
		Handler:     srv.handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "affidavitd: listening on %s (workers=%d timeout=%v max-sessions=%d session-ttl=%v)\n",
		*addr, *cfg.Workers, *timeout, *maxSessions, *sessionTTL)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "affidavitd: interrupt received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "affidavitd: shutdown:", err)
			os.Exit(1)
		}
		// Drain the job subsystem after the listener: running jobs are
		// journaled back to pending (the next process finishes them) and
		// the store closes its journal cleanly.
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "affidavitd: job store:", err)
			os.Exit(1)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "affidavitd:", err)
			os.Exit(1)
		}
	}
}
