// Command affidavitd serves explanation traffic over HTTP: clients POST
// pairs of CSV snapshots and receive the learned explanation as JSON, a
// migration script, or a text report. Uploads naming the same table share
// one long-lived session — a common dictionary pool, plus warm-started
// incremental search in chain mode — so recurring traffic over the same
// domain gets cheaper as the service runs.
//
// Usage:
//
//	affidavitd -addr :8080 [search flags]
//
// Endpoints:
//
//	POST /explain   multipart upload: files "source" and "target" (CSV,
//	                first row = header); optional values "table" (session
//	                key, default "table"), "format" (json | sql | text),
//	                "warm" ("1" = chain mode: warm-start from the table's
//	                previous explanation and store the new one)
//	GET  /stats     per-table session counters + eviction totals
//	GET  /healthz   liveness probe
//
// Operating knobs:
//
//	-timeout       per-request explanation budget; on expiry the request
//	               answers 503 with the partial search statistics
//	-max-sessions  LRU cap on retained per-table sessions
//	-session-ttl   idle sessions are evicted past this age
//
// SIGINT/SIGTERM cancel in-flight explanations cooperatively and shut the
// listener down gracefully.
//
// Example:
//
//	curl -s -F source=@before.csv -F target=@after.csv \
//	     'localhost:8080/explain?table=accounts' | jq .explanation.functions
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"affidavit"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		start       = flag.String("start", "hid", "start strategy: hid | hs | empty")
		alpha       = flag.Float64("alpha", 0.5, "cost parameter α in [0,1]")
		beta        = flag.Int("beta", 0, "branching factor β (0 = config default)")
		rho         = flag.Int("rho", 0, "queue width ϱ (0 = config default)")
		theta       = flag.Float64("theta", 0.1, "estimated effect fraction θ")
		conf        = flag.Float64("conf", 0.95, "sampling confidence ρ")
		maxBlock    = flag.Int("max-block", 100000, "overlap-matching block threshold (hs)")
		seed        = flag.Int64("seed", 0, "random seed (equal seeds give equal explanations)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent search probes per request (1 = sequential engine)")
		warmGuard   = flag.Float64("warm-guard", 0, "warm-start quality guard factor (0 = disabled; e.g. 3 escalates to a cold search when the warm seed costs 3× the previous compression ratio)")
		maxUpload   = flag.Int64("max-upload", 64, "largest accepted upload in MiB")
		maxInflight = flag.Int("max-inflight", 0, "concurrent /explain requests (0 = unlimited)")
		timeout     = flag.Duration("timeout", 0, "per-request explanation budget (0 = unlimited; expiry answers 503 with partial stats)")
		maxSessions = flag.Int("max-sessions", 0, "retained per-table sessions (0 = unlimited; excess evicts least-recently-used)")
		sessionTTL  = flag.Duration("session-ttl", 0, "idle session lifetime (0 = sessions never expire)")
	)
	flag.Parse()

	var opts affidavit.Options
	switch strings.ToLower(*start) {
	case "hid":
		opts = affidavit.DefaultOptions()
	case "hs":
		opts = affidavit.OverlapOptions()
	case "empty":
		opts = affidavit.DefaultOptions()
		opts.Start = affidavit.StartEmpty
	default:
		fmt.Fprintf(os.Stderr, "affidavitd: unknown start strategy %q\n", *start)
		os.Exit(2)
	}
	opts.Alpha = *alpha
	if *beta > 0 {
		opts.Beta = *beta
	}
	if *rho > 0 {
		opts.QueueWidth = *rho
	}
	opts.Theta = *theta
	opts.Rho = *conf
	opts.MaxBlockSize = *maxBlock
	opts.Seed = *seed
	opts.Workers = *workers
	opts.WarmGuard = *warmGuard

	// SIGINT/SIGTERM cancel this context; every request context derives
	// from it (BaseContext), so in-flight searches stop cooperatively.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := newServer(serverConfig{
		opts:        opts,
		maxUpload:   *maxUpload << 20,
		maxInflight: *maxInflight,
		timeout:     *timeout,
		maxSessions: *maxSessions,
		sessionTTL:  *sessionTTL,
	})
	if *sessionTTL > 0 {
		go srv.janitor(ctx)
	}

	hs := &http.Server{
		Addr:        *addr,
		Handler:     srv.handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "affidavitd: listening on %s (workers=%d timeout=%v max-sessions=%d session-ttl=%v)\n",
		*addr, *workers, *timeout, *maxSessions, *sessionTTL)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "affidavitd: interrupt received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "affidavitd: shutdown:", err)
			os.Exit(1)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "affidavitd:", err)
			os.Exit(1)
		}
	}
}
