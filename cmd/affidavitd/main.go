// Command affidavitd serves explanation traffic over HTTP: clients POST
// pairs of CSV snapshots and receive the learned explanation as JSON, a
// migration script, or a text report. Uploads naming the same table share
// one long-lived session — a common dictionary pool, plus warm-started
// incremental search in chain mode — so recurring traffic over the same
// domain gets cheaper as the service runs.
//
// Usage:
//
//	affidavitd -addr :8080 [search flags]
//
// Endpoints:
//
//	POST /explain   multipart upload: files "source" and "target" (CSV,
//	                first row = header); optional values "table" (session
//	                key, default "table"), "format" (json | sql | text),
//	                "warm" ("1" = chain mode: warm-start from the table's
//	                previous explanation and store the new one)
//	GET  /stats     per-table session counters
//	GET  /healthz   liveness probe
//
// Example:
//
//	curl -s -F source=@before.csv -F target=@after.csv \
//	     'localhost:8080/explain?table=accounts' | jq .explanation.functions
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"

	"affidavit"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		start       = flag.String("start", "hid", "start strategy: hid | hs | empty")
		alpha       = flag.Float64("alpha", 0.5, "cost parameter α in [0,1]")
		beta        = flag.Int("beta", 0, "branching factor β (0 = config default)")
		rho         = flag.Int("rho", 0, "queue width ϱ (0 = config default)")
		theta       = flag.Float64("theta", 0.1, "estimated effect fraction θ")
		conf        = flag.Float64("conf", 0.95, "sampling confidence ρ")
		maxBlock    = flag.Int("max-block", 100000, "overlap-matching block threshold (hs)")
		seed        = flag.Int64("seed", 0, "random seed (equal seeds give equal explanations)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent search probes per request (1 = sequential engine)")
		maxUpload   = flag.Int64("max-upload", 64, "largest accepted upload in MiB")
		maxInflight = flag.Int("max-inflight", 0, "concurrent /explain requests (0 = unlimited)")
	)
	flag.Parse()

	var opts affidavit.Options
	switch strings.ToLower(*start) {
	case "hid":
		opts = affidavit.DefaultOptions()
	case "hs":
		opts = affidavit.OverlapOptions()
	case "empty":
		opts = affidavit.DefaultOptions()
		opts.Start = affidavit.StartEmpty
	default:
		fmt.Fprintf(os.Stderr, "affidavitd: unknown start strategy %q\n", *start)
		os.Exit(2)
	}
	opts.Alpha = *alpha
	if *beta > 0 {
		opts.Beta = *beta
	}
	if *rho > 0 {
		opts.QueueWidth = *rho
	}
	opts.Theta = *theta
	opts.Rho = *conf
	opts.MaxBlockSize = *maxBlock
	opts.Seed = *seed
	opts.Workers = *workers

	srv := newServer(opts, *maxUpload<<20, *maxInflight)
	fmt.Fprintf(os.Stderr, "affidavitd: listening on %s (workers=%d)\n", *addr, *workers)
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		fmt.Fprintln(os.Stderr, "affidavitd:", err)
		os.Exit(1)
	}
}
