package main

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"

	"affidavit/internal/catalog"
	"affidavit/internal/cliutil"
)

// TestDocsAPICoverage is the docs-drift check: every flag the binary
// registers and every route the mux serves must appear in docs/api.md.
// Flags are collected from the shared cliutil registration plus the
// flag.* literals in main.go; routes from the mux.Handle* literals in
// server.go unioned with the catalog's route patterns. A new flag or
// endpoint without documentation fails CI here.
func TestDocsAPICoverage(t *testing.T) {
	raw, err := os.ReadFile("../../docs/api.md")
	if err != nil {
		t.Fatalf("docs/api.md must exist: %v", err)
	}
	doc := string(raw)

	fs := flag.NewFlagSet("affidavitd", flag.ContinueOnError)
	cliutil.Register(fs, cliutil.Defaults{})
	var flags []string
	fs.VisitAll(func(f *flag.Flag) { flags = append(flags, f.Name) })
	flags = append(flags, flagLiterals(t, "main.go")...)
	if len(flags) < 20 {
		t.Fatalf("collected only %d flags — the extraction is broken", len(flags))
	}
	for _, name := range flags {
		if !strings.Contains(doc, "`-"+name+"`") {
			t.Errorf("flag -%s is not documented in docs/api.md", name)
		}
	}

	routes := append(routeLiterals(t, "server.go"), catalog.Routes()...)
	if len(routes) < 10 {
		t.Fatalf("collected only %d routes — the extraction is broken", len(routes))
	}
	for _, route := range routes {
		if !strings.Contains(doc, route) {
			t.Errorf("route %s is not documented in docs/api.md", route)
		}
	}
}

// flagLiterals returns the names passed to flag.String/Bool/Int/... in
// the given file of this package.
func flagLiterals(t *testing.T, file string) []string {
	t.Helper()
	var names []string
	inspectCalls(t, file, func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) < 3 {
			return
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "flag" {
			return
		}
		switch sel.Sel.Name {
		case "String", "Bool", "Int", "Int64", "Float64", "Duration":
			if name, ok := stringLiteral(call.Args[0]); ok {
				names = append(names, name)
			}
		}
	})
	return names
}

// routeLiterals returns the patterns passed to mux.Handle/HandleFunc in
// the given file of this package.
func routeLiterals(t *testing.T, file string) []string {
	t.Helper()
	var routes []string
	inspectCalls(t, file, func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		if sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc" {
			return
		}
		if route, ok := stringLiteral(call.Args[0]); ok {
			routes = append(routes, route)
		}
	})
	return routes
}

func inspectCalls(t *testing.T, file string, visit func(*ast.CallExpr)) {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), file, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", file, err)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	return strings.Trim(lit.Value, `"`), true
}
