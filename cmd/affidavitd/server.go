package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"affidavit"
)

// maxFieldBytes caps each non-file multipart value (table name, format,
// warm flag). File parts are never buffered — they stream straight into
// the interned columnar backend — so this is the only per-part memory
// bound the server needs.
const maxFieldBytes = 1 << 20

// maxFormFields bounds how many non-file parts one upload may carry.
const maxFormFields = 64

// serverConfig bundles the service knobs so tests and main construct the
// server the same way.
type serverConfig struct {
	// options construct the server's Explainer — the one shared
	// configuration path for every explanation the service runs. Do not
	// include WithObserver here (newServer attaches the /metrics observer
	// last and would shadow it); pass extra observers via observer.
	options []affidavit.Option
	// observer, when non-nil, receives pipeline events alongside the
	// server's own MetricsObserver (e.g. the -progress narrator).
	observer affidavit.Observer
	// maxUpload caps each buffered non-file form value in bytes; 0 means
	// maxFieldBytes. File parts stream and are deliberately NOT bounded by
	// it: uploads larger than the historical -max-upload are explained
	// chunk-by-chunk without whole-snapshot buffering.
	maxUpload int64
	// maxRecords caps each streamed snapshot's record count; 0 means the
	// default of 10 million. Streaming removed the whole-body byte cap, so
	// this is one of the two guards against an endless (or hostile
	// high-cardinality) upload interning until OOM; set it to what the
	// deployment's memory can intern. Negative means unlimited.
	maxRecords int
	// maxSnapshotBytes caps each streamed snapshot's raw byte volume — the
	// companion guard to maxRecords, catching few-records-huge-fields
	// bodies that a record count cannot. 0 means the default of 1 GiB;
	// negative means unlimited.
	maxSnapshotBytes int64
	// maxInflight bounds concurrent /explain requests; 0 = unlimited.
	maxInflight int
	// timeout bounds each /explain request's explanation work; 0 means
	// unlimited. On expiry the request answers 503 with the partial search
	// statistics.
	timeout time.Duration
	// maxSessions caps the retained per-table sessions; 0 means unlimited.
	// Creating a session past the cap evicts the least-recently-used one.
	maxSessions int
	// sessionTTL expires sessions idle longer than this; 0 means sessions
	// never expire. Eviction frees the table's dictionary pool and warm
	// state; the next upload for that table simply starts a fresh session.
	sessionTTL time.Duration
	// now is the clock; nil means time.Now. Tests inject a fake.
	now func() time.Time
}

// server routes explanation traffic onto per-table affidavit sessions: all
// uploads naming the same table share one dictionary pool (and, in chain
// mode, one warm-start tuple), so recurring traffic over the same domain
// gets cheaper as the service runs. Sessions are bounded two ways — an LRU
// cap on their count and a TTL on their idleness — so an unbounded stream
// of distinct table names can no longer grow the dictionary pools forever.
//
// Every session derives from one Explainer, whose observer feeds the
// Prometheus-style /metrics endpoint: ingest volume, run modes
// (cold/warm/escalated), poll and conversion counters.
type server struct {
	cfg         serverConfig
	ex          *affidavit.Explainer
	metrics     *affidavit.MetricsObserver
	maxInflight chan struct{} // nil = unlimited

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	evicted  int // sessions dropped by TTL or LRU, for /stats
}

// sessionEntry is one table's session plus the bookkeeping eviction needs.
type sessionEntry struct {
	sess    *affidavit.Session
	lastUse time.Time
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.maxUpload <= 0 {
		cfg.maxUpload = maxFieldBytes
	}
	if cfg.maxRecords == 0 {
		cfg.maxRecords = 10_000_000
	}
	if cfg.maxSnapshotBytes == 0 {
		cfg.maxSnapshotBytes = 1 << 30
	}
	metrics := affidavit.NewMetricsObserver()
	ex, err := affidavit.New(append(append([]affidavit.Option{}, cfg.options...),
		affidavit.WithObserver(affidavit.Observers(metrics, cfg.observer)))...)
	if err != nil {
		return nil, err
	}
	s := &server{
		cfg:      cfg,
		ex:       ex,
		metrics:  metrics,
		sessions: make(map[string]*sessionEntry),
	}
	if cfg.maxInflight > 0 {
		s.maxInflight = make(chan struct{}, cfg.maxInflight)
	}
	return s, nil
}

// session returns the named table's session, creating it on first use and
// refreshing its last-use stamp. When the LRU cap is hit, the
// least-recently-used session is dropped to make room (ties break on the
// smaller table name, for determinism).
func (s *server) session(table string) *affidavit.Session {
	now := s.cfg.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.sessions[table]; ok {
		e.lastUse = now
		return e.sess
	}
	if s.cfg.maxSessions > 0 {
		for len(s.sessions) >= s.cfg.maxSessions {
			var victim string
			for name, e := range s.sessions {
				if victim == "" ||
					e.lastUse.Before(s.sessions[victim].lastUse) ||
					(e.lastUse.Equal(s.sessions[victim].lastUse) && name < victim) {
					victim = name
				}
			}
			delete(s.sessions, victim)
			s.evicted++
		}
	}
	e := &sessionEntry{sess: s.ex.Session(nil), lastUse: now}
	s.sessions[table] = e
	return e.sess
}

// evictExpired drops every session idle since before now−TTL and reports
// how many it removed. No-op when the TTL is unset.
func (s *server) evictExpired(now time.Time) int {
	if s.cfg.sessionTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.sessionTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name, e := range s.sessions {
		if e.lastUse.Before(cutoff) {
			delete(s.sessions, name)
			n++
		}
	}
	s.evicted += n
	return n
}

// janitor runs evictExpired periodically until ctx ends. The sweep period
// is a quarter of the TTL, clamped to [1s, 1m], so an expired session
// lingers at most ~25% past its deadline.
func (s *server) janitor(ctx context.Context) {
	every := s.cfg.sessionTTL / 4
	if every < time.Second {
		every = time.Second
	}
	if every > time.Minute {
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.evictExpired(now)
		}
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", s.metrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// deadlineResponse is the 503 body: the request ran out of budget, and
// these are the statistics of the work done before the cut.
type deadlineResponse struct {
	Error string              `json:"error"`
	Table string              `json:"table"`
	Stats affidavit.JSONStats `json:"stats"`
}

// limitRecords bounds a streamed snapshot's record count (max ≤ 0 means
// unlimited) — the daemon's backstop against uploads that would intern
// until OOM now that file parts have no byte cap.
func limitRecords(src affidavit.Source, max int) affidavit.Source {
	if max <= 0 {
		return src
	}
	return &limitedSource{Source: src, left: max}
}

type limitedSource struct {
	affidavit.Source
	left int
}

// cappedReader errors once more than max bytes flow through it — unlike
// io.LimitReader, which would silently truncate the snapshot at the cap.
// max ≤ 0 passes the reader through unbounded.
func cappedReader(r io.Reader, max int64) io.Reader {
	if max <= 0 {
		return r
	}
	return &byteCap{r: r, left: max}
}

type byteCap struct {
	r    io.Reader
	left int64
}

func (c *byteCap) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.left -= int64(n)
	if c.left < 0 {
		return n, fmt.Errorf("snapshot exceeds the byte limit (-max-snapshot); genuinely large snapshots can be served by raising it and bounding memory with -mem-budget instead")
	}
	return n, err
}

func (l *limitedSource) Next() (affidavit.Record, error) {
	rec, err := l.Source.Next()
	if err != nil {
		return nil, err
	}
	// Reject only when a real record arrives past the cap, so a snapshot
	// of exactly max records still ends in a clean EOF.
	if l.left <= 0 {
		return nil, fmt.Errorf("snapshot exceeds the record limit (-max-records)")
	}
	l.left--
	return rec, nil
}

// readUpload streams the multipart body: the "source" and "target" file
// parts are interned into the columnar backend as they arrive (never
// buffered as [][]string, and not bounded by -max-upload), other parts are
// collected as small form values. Parts may arrive in any order.
func (s *server) readUpload(ctx context.Context, r *http.Request) (src, tgt *affidavit.Table, form map[string]string, err error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parsing upload: %w", err)
	}
	form = make(map[string]string)
	for {
		part, perr := mr.NextPart()
		if perr == io.EOF {
			break
		}
		if perr != nil {
			return nil, nil, nil, fmt.Errorf("parsing upload: %w", perr)
		}
		name := part.FormName()
		switch name {
		case "source", "target":
			csvPart := affidavit.NewCSVSource(cappedReader(part, s.cfg.maxSnapshotBytes))
			tab, rerr := s.ex.ReadSourceNamed(ctx, limitRecords(csvPart, s.cfg.maxRecords), name)
			part.Close()
			if rerr != nil {
				return nil, nil, nil, fmt.Errorf("reading %q file: %w", name, rerr)
			}
			if name == "source" {
				src = tab
			} else {
				tgt = tab
			}
		default:
			// Bound both each field's size and the field count, so a body
			// of endless small parts cannot grow the form map without
			// limit.
			if len(form) >= maxFormFields {
				return nil, nil, nil, fmt.Errorf("too many form fields (limit %d)", maxFormFields)
			}
			limit := s.cfg.maxUpload
			b, rerr := io.ReadAll(io.LimitReader(part, limit+1))
			part.Close()
			if rerr != nil {
				return nil, nil, nil, fmt.Errorf("reading field %q: %w", name, rerr)
			}
			if int64(len(b)) > limit {
				return nil, nil, nil, fmt.Errorf("field %q exceeds %d bytes", name, limit)
			}
			form[name] = string(b)
		}
	}
	if src == nil {
		return nil, nil, nil, fmt.Errorf("missing %q file", "source")
	}
	if tgt == nil {
		return nil, nil, nil, fmt.Errorf("missing %q file", "target")
	}
	return src, tgt, form, nil
}

// handleExplain serves POST /explain: a multipart upload with CSV files
// "source" and "target" (first row = header), streamed record-by-record
// into the interned backend — snapshots larger than memory-sized buffers
// are fine, because only distinct values and 4-byte codes are retained.
// Optional form/query values:
//
//	table   session key and SQL table name (default "table")
//	format  json (default) | sql | text
//	warm    "1" warm-starts from the table's previous explanation and
//	        stores the new one (chain mode)
//
// The explanation runs under the request's context, additionally bounded
// by the -timeout flag; on expiry the request answers 503 Service
// Unavailable with the partial search statistics, and the session discards
// the interrupted run's warm state.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx := r.Context()
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	if s.maxInflight != nil {
		// Wait for a slot under the request context: a client that
		// disconnects (or times out) while queued must not consume a slot
		// and pay the upload ingest for an answer nobody reads.
		select {
		case s.maxInflight <- struct{}{}:
			defer func() { <-s.maxInflight }()
		case <-ctx.Done():
			http.Error(w, "request expired while queued for a slot", http.StatusServiceUnavailable)
			return
		}
	}
	src, tgt, form, err := s.readUpload(ctx, r)
	if err != nil {
		if ctx.Err() != nil {
			http.Error(w, "request expired during upload ingest", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Query values win over form parts, so ?table=x works regardless of
	// part order.
	value := func(k string) string {
		if v := r.URL.Query().Get(k); v != "" {
			return v
		}
		return form[k]
	}
	table := value("table")
	if table == "" {
		table = "table"
	}
	sess := s.session(table)
	var res *affidavit.Result
	if value("warm") == "1" {
		res, err = sess.ExplainWarmContext(ctx, src, tgt)
	} else {
		res, err = sess.ExplainPairContext(ctx, src, tgt)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if res.Stats.Cancelled {
		st := affidavit.StatsJSON(res.Stats)
		st.Cancelled = false // the 503 body's error field already says it
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(deadlineResponse{
			Error: "deadline exceeded before the explanation finished",
			Table: table,
			Stats: st,
		})
		return
	}

	switch value("format") {
	case "", "json":
		out, err := res.JSON(table)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
		w.Write([]byte("\n"))
	case "sql":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.SQL(table))
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Report())
	default:
		http.Error(w, fmt.Sprintf("unknown format %q", value("format")), http.StatusBadRequest)
	}
}

type tableStats struct {
	Runs       int `json:"runs"`
	PoolAttrs  int `json:"pool_attrs"`
	PoolValues int `json:"pool_values"`
}

type statsResponse struct {
	Tables          map[string]tableStats `json:"tables"`
	SessionsEvicted int                   `json:"sessions_evicted"`
	// Out-of-core totals under -mem-budget (mirrors /metrics'
	// affidavit_spill_bytes_total / affidavit_spill_partitions_total).
	SpillBytes      int64 `json:"spill_bytes_total"`
	SpillPartitions int64 `json:"spill_partitions_total"`
}

// handleStats serves GET /stats: per-table session counters plus the
// lifetime eviction count.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]tableStats, len(names))
	for _, name := range names {
		sess := s.sessions[name].sess
		attrs, values := sess.PoolStats()
		out[name] = tableStats{Runs: sess.Runs(), PoolAttrs: attrs, PoolValues: values}
	}
	evicted := s.evicted
	s.mu.Unlock()
	spillBytes, spillParts := s.metrics.SpillTotals()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsResponse{
		Tables:          out,
		SessionsEvicted: evicted,
		SpillBytes:      spillBytes,
		SpillPartitions: spillParts,
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
