package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"affidavit"
	"affidavit/internal/delta"
	"affidavit/internal/report"
)

// serverConfig bundles the service knobs so tests and main construct the
// server the same way.
type serverConfig struct {
	opts        affidavit.Options
	maxUpload   int64
	maxInflight int
	// timeout bounds each /explain request's explanation work; 0 means
	// unlimited. On expiry the request answers 503 with the partial search
	// statistics.
	timeout time.Duration
	// maxSessions caps the retained per-table sessions; 0 means unlimited.
	// Creating a session past the cap evicts the least-recently-used one.
	maxSessions int
	// sessionTTL expires sessions idle longer than this; 0 means sessions
	// never expire. Eviction frees the table's dictionary pool and warm
	// state; the next upload for that table simply starts a fresh session.
	sessionTTL time.Duration
	// now is the clock; nil means time.Now. Tests inject a fake.
	now func() time.Time
}

// server routes explanation traffic onto per-table affidavit sessions: all
// uploads naming the same table share one dictionary pool (and, in chain
// mode, one warm-start tuple), so recurring traffic over the same domain
// gets cheaper as the service runs. Sessions are bounded two ways — an LRU
// cap on their count and a TTL on their idleness — so an unbounded stream
// of distinct table names can no longer grow the dictionary pools forever.
type server struct {
	cfg         serverConfig
	alpha       float64
	maxInflight chan struct{} // nil = unlimited

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	evicted  int // sessions dropped by TTL or LRU, for /stats
}

// sessionEntry is one table's session plus the bookkeeping eviction needs.
type sessionEntry struct {
	sess    *affidavit.Session
	lastUse time.Time
}

func newServer(cfg serverConfig) *server {
	alpha := cfg.opts.Alpha
	if alpha == 0 {
		alpha = affidavit.DefaultOptions().Alpha
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &server{
		cfg:      cfg,
		alpha:    alpha,
		sessions: make(map[string]*sessionEntry),
	}
	if cfg.maxInflight > 0 {
		s.maxInflight = make(chan struct{}, cfg.maxInflight)
	}
	return s
}

// session returns the named table's session, creating it on first use and
// refreshing its last-use stamp. When the LRU cap is hit, the
// least-recently-used session is dropped to make room (ties break on the
// smaller table name, for determinism).
func (s *server) session(table string) *affidavit.Session {
	now := s.cfg.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.sessions[table]; ok {
		e.lastUse = now
		return e.sess
	}
	if s.cfg.maxSessions > 0 {
		for len(s.sessions) >= s.cfg.maxSessions {
			var victim string
			for name, e := range s.sessions {
				if victim == "" ||
					e.lastUse.Before(s.sessions[victim].lastUse) ||
					(e.lastUse.Equal(s.sessions[victim].lastUse) && name < victim) {
					victim = name
				}
			}
			delete(s.sessions, victim)
			s.evicted++
		}
	}
	e := &sessionEntry{sess: affidavit.NewSession(nil, s.cfg.opts), lastUse: now}
	s.sessions[table] = e
	return e.sess
}

// evictExpired drops every session idle since before now−TTL and reports
// how many it removed. No-op when the TTL is unset.
func (s *server) evictExpired(now time.Time) int {
	if s.cfg.sessionTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.sessionTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name, e := range s.sessions {
		if e.lastUse.Before(cutoff) {
			delete(s.sessions, name)
			n++
		}
	}
	s.evicted += n
	return n
}

// janitor runs evictExpired periodically until ctx ends. The sweep period
// is a quarter of the TTL, clamped to [1s, 1m], so an expired session
// lingers at most ~25% past its deadline.
func (s *server) janitor(ctx context.Context) {
	every := s.cfg.sessionTTL / 4
	if every < time.Second {
		every = time.Second
	}
	if every > time.Minute {
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.evictExpired(now)
		}
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// explainStats is the deterministic subset of search statistics: wall time
// is deliberately omitted so identical inputs produce byte-identical
// responses.
type explainStats struct {
	Polls           int  `json:"polls"`
	StatesGenerated int  `json:"states_generated"`
	Enqueued        int  `json:"enqueued"`
	Evicted         int  `json:"evicted"`
	StartLevel      int  `json:"start_level"`
	WarmEscalated   bool `json:"warm_escalated,omitempty"`
}

func toExplainStats(st affidavit.Stats) explainStats {
	return explainStats{
		Polls:           st.Polls,
		StatesGenerated: st.StatesGenerated,
		Enqueued:        st.Enqueued,
		Evicted:         st.Evicted,
		StartLevel:      st.StartLevel,
		WarmEscalated:   st.WarmEscalated,
	}
}

type explainResponse struct {
	Table       string                 `json:"table"`
	Explanation report.JSONExplanation `json:"explanation"`
	SQL         string                 `json:"sql"`
	Cost        float64                `json:"cost"`
	TrivialCost float64                `json:"trivial_cost"`
	Compression float64                `json:"compression"`
	Stats       explainStats           `json:"stats"`
}

// deadlineResponse is the 503 body: the request ran out of budget, and
// these are the statistics of the work done before the cut.
type deadlineResponse struct {
	Error string       `json:"error"`
	Table string       `json:"table"`
	Stats explainStats `json:"stats"`
}

// handleExplain serves POST /explain: a multipart upload with CSV files
// "source" and "target" (first row = header). Optional form/query values:
//
//	table   session key and SQL table name (default "table")
//	format  json (default) | sql | text
//	warm    "1" warm-starts from the table's previous explanation and
//	        stores the new one (chain mode)
//
// The explanation runs under the request's context, additionally bounded
// by the -timeout flag; on expiry the request answers 503 Service
// Unavailable with the partial search statistics, and the session discards
// the interrupted run's warm state.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx := r.Context()
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	if s.maxInflight != nil {
		// Wait for a slot under the request context: a client that
		// disconnects (or times out) while queued must not consume a slot
		// and pay the upload parse for an answer nobody reads.
		select {
		case s.maxInflight <- struct{}{}:
			defer func() { <-s.maxInflight }()
		case <-ctx.Done():
			http.Error(w, "request expired while queued for a slot", http.StatusServiceUnavailable)
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxUpload)
	if err := r.ParseMultipartForm(s.cfg.maxUpload); err != nil {
		http.Error(w, fmt.Sprintf("parsing upload: %v", err), http.StatusBadRequest)
		return
	}
	defer r.MultipartForm.RemoveAll()
	read := func(field string) (*affidavit.Table, error) {
		f, _, err := r.FormFile(field)
		if err != nil {
			return nil, fmt.Errorf("missing %q file: %w", field, err)
		}
		defer f.Close()
		return affidavit.ReadCSV(f)
	}
	src, err := read("source")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tgt, err := read("target")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	table := r.FormValue("table")
	if table == "" {
		table = "table"
	}
	sess := s.session(table)
	var res *affidavit.Result
	if r.FormValue("warm") == "1" {
		res, err = sess.ExplainWarmContext(ctx, src, tgt)
	} else {
		res, err = sess.ExplainPairContext(ctx, src, tgt)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if res.Stats.Cancelled {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(deadlineResponse{
			Error: "deadline exceeded before the explanation finished",
			Table: table,
			Stats: toExplainStats(res.Stats),
		})
		return
	}

	switch r.FormValue("format") {
	case "", "json":
		// Guard the ratio: empty snapshots explain for free (cost 0 of
		// trivial 0) and NaN is not encodable as JSON.
		compression := 0.0
		if res.TrivialCost > 0 {
			compression = res.Cost / res.TrivialCost
		}
		resp := explainResponse{
			Table:       table,
			Explanation: report.ToJSON(res.Explanation, delta.CostModel{Alpha: s.alpha}),
			SQL:         res.SQL(table),
			Cost:        res.Cost,
			TrivialCost: res.TrivialCost,
			Compression: compression,
			Stats:       toExplainStats(res.Stats),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "sql":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.SQL(table))
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Report())
	default:
		http.Error(w, fmt.Sprintf("unknown format %q", r.FormValue("format")), http.StatusBadRequest)
	}
}

type tableStats struct {
	Runs       int `json:"runs"`
	PoolAttrs  int `json:"pool_attrs"`
	PoolValues int `json:"pool_values"`
}

type statsResponse struct {
	Tables          map[string]tableStats `json:"tables"`
	SessionsEvicted int                   `json:"sessions_evicted"`
}

// handleStats serves GET /stats: per-table session counters plus the
// lifetime eviction count.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]tableStats, len(names))
	for _, name := range names {
		sess := s.sessions[name].sess
		attrs, values := sess.PoolStats()
		out[name] = tableStats{Runs: sess.Runs(), PoolAttrs: attrs, PoolValues: values}
	}
	evicted := s.evicted
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsResponse{Tables: out, SessionsEvicted: evicted}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
