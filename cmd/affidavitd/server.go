package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"affidavit"
	"affidavit/internal/delta"
	"affidavit/internal/report"
)

// server routes explanation traffic onto per-table affidavit sessions: all
// uploads naming the same table share one dictionary pool (and, in chain
// mode, one warm-start tuple), so recurring traffic over the same domain
// gets cheaper as the service runs.
type server struct {
	opts        affidavit.Options
	alpha       float64
	maxUpload   int64
	maxInflight chan struct{} // nil = unlimited

	mu       sync.Mutex
	sessions map[string]*affidavit.Session
}

func newServer(opts affidavit.Options, maxUpload int64, maxInflight int) *server {
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = affidavit.DefaultOptions().Alpha
	}
	s := &server{
		opts:      opts,
		alpha:     alpha,
		maxUpload: maxUpload,
		sessions:  make(map[string]*affidavit.Session),
	}
	if maxInflight > 0 {
		s.maxInflight = make(chan struct{}, maxInflight)
	}
	return s
}

// session returns the named table's session, creating it on first use.
func (s *server) session(table string) *affidavit.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[table]
	if !ok {
		sess = affidavit.NewSession(nil, s.opts)
		s.sessions[table] = sess
	}
	return sess
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// explainStats is the deterministic subset of search statistics: wall time
// is deliberately omitted so identical inputs produce byte-identical
// responses.
type explainStats struct {
	Polls           int `json:"polls"`
	StatesGenerated int `json:"states_generated"`
	Enqueued        int `json:"enqueued"`
	Evicted         int `json:"evicted"`
	StartLevel      int `json:"start_level"`
}

type explainResponse struct {
	Table       string                 `json:"table"`
	Explanation report.JSONExplanation `json:"explanation"`
	SQL         string                 `json:"sql"`
	Cost        float64                `json:"cost"`
	TrivialCost float64                `json:"trivial_cost"`
	Compression float64                `json:"compression"`
	Stats       explainStats           `json:"stats"`
}

// handleExplain serves POST /explain: a multipart upload with CSV files
// "source" and "target" (first row = header). Optional form/query values:
//
//	table   session key and SQL table name (default "table")
//	format  json (default) | sql | text
//	warm    "1" warm-starts from the table's previous explanation and
//	        stores the new one (chain mode)
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.maxInflight != nil {
		s.maxInflight <- struct{}{}
		defer func() { <-s.maxInflight }()
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxUpload)
	if err := r.ParseMultipartForm(s.maxUpload); err != nil {
		http.Error(w, fmt.Sprintf("parsing upload: %v", err), http.StatusBadRequest)
		return
	}
	defer r.MultipartForm.RemoveAll()
	read := func(field string) (*affidavit.Table, error) {
		f, _, err := r.FormFile(field)
		if err != nil {
			return nil, fmt.Errorf("missing %q file: %w", field, err)
		}
		defer f.Close()
		return affidavit.ReadCSV(f)
	}
	src, err := read("source")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tgt, err := read("target")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	table := r.FormValue("table")
	if table == "" {
		table = "table"
	}
	sess := s.session(table)
	var res *affidavit.Result
	if r.FormValue("warm") == "1" {
		res, err = sess.ExplainWarm(src, tgt)
	} else {
		res, err = sess.ExplainPair(src, tgt)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}

	switch r.FormValue("format") {
	case "", "json":
		// Guard the ratio: empty snapshots explain for free (cost 0 of
		// trivial 0) and NaN is not encodable as JSON.
		compression := 0.0
		if res.TrivialCost > 0 {
			compression = res.Cost / res.TrivialCost
		}
		resp := explainResponse{
			Table:       table,
			Explanation: report.ToJSON(res.Explanation, delta.CostModel{Alpha: s.alpha}),
			SQL:         res.SQL(table),
			Cost:        res.Cost,
			TrivialCost: res.TrivialCost,
			Compression: compression,
			Stats: explainStats{
				Polls:           res.Stats.Polls,
				StatesGenerated: res.Stats.StatesGenerated,
				Enqueued:        res.Stats.Enqueued,
				Evicted:         res.Stats.Evicted,
				StartLevel:      res.Stats.StartLevel,
			},
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "sql":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.SQL(table))
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Report())
	default:
		http.Error(w, fmt.Sprintf("unknown format %q", r.FormValue("format")), http.StatusBadRequest)
	}
}

type tableStats struct {
	Runs       int `json:"runs"`
	PoolAttrs  int `json:"pool_attrs"`
	PoolValues int `json:"pool_values"`
}

// handleStats serves GET /stats: per-table session counters.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]tableStats, len(names))
	for _, name := range names {
		sess := s.sessions[name]
		attrs, values := sess.PoolStats()
		out[name] = tableStats{Runs: sess.Runs(), PoolAttrs: attrs, PoolValues: values}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]map[string]tableStats{"tables": out}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
