package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"affidavit"
)

// maxFieldBytes caps each non-file multipart value (table name, format,
// warm flag). File parts are never buffered — they stream straight into
// the interned columnar backend — so this is the only per-part memory
// bound the server needs.
const maxFieldBytes = 1 << 20

// maxFormFields bounds how many non-file parts one upload may carry.
const maxFormFields = 64

// serverConfig bundles the service knobs so tests and main construct the
// server the same way.
type serverConfig struct {
	// options construct the server's Explainer — the one shared
	// configuration path for every explanation the service runs. Do not
	// include WithObserver here (newServer attaches the /metrics observer
	// last and would shadow it); pass extra observers via observer.
	options []affidavit.Option
	// observer, when non-nil, receives pipeline events alongside the
	// server's own MetricsObserver (e.g. the -progress narrator).
	observer affidavit.Observer
	// maxUpload caps each buffered non-file form value in bytes; 0 means
	// maxFieldBytes. File parts stream and are deliberately NOT bounded by
	// it: uploads larger than the historical -max-upload are explained
	// chunk-by-chunk without whole-snapshot buffering.
	maxUpload int64
	// maxRecords caps each streamed snapshot's record count; 0 means the
	// default of 10 million. Streaming removed the whole-body byte cap, so
	// this is one of the two guards against an endless (or hostile
	// high-cardinality) upload interning until OOM; set it to what the
	// deployment's memory can intern. Negative means unlimited.
	maxRecords int
	// maxSnapshotBytes caps each streamed snapshot's raw byte volume — the
	// companion guard to maxRecords, catching few-records-huge-fields
	// bodies that a record count cannot. 0 means the default of 1 GiB;
	// negative means unlimited.
	maxSnapshotBytes int64
	// maxInflight bounds concurrent /explain requests; 0 = unlimited.
	maxInflight int
	// timeout bounds each /explain request's explanation work; 0 means
	// unlimited. On expiry the request answers 503 with the partial search
	// statistics.
	timeout time.Duration
	// maxSessions caps the retained per-table sessions; 0 means unlimited.
	// Creating a session past the cap evicts the least-recently-used one.
	maxSessions int
	// sessionTTL expires sessions idle longer than this; 0 means sessions
	// never expire. Eviction frees the table's dictionary pool and warm
	// state; the next upload for that table simply starts a fresh session.
	sessionTTL time.Duration
	// traceBuffer caps the ring of recent run traces served by /traces;
	// 0 disables per-request tracing entirely (no recorder, no
	// X-Affidavit-Trace-Id header, ?trace=1 ignored). Negative means the
	// default of defaultTraceBuffer.
	traceBuffer int
	// pprof mounts net/http/pprof handlers under /debug/pprof/ when set.
	pprof bool
	// now is the clock; nil means time.Now. Tests inject a fake.
	now func() time.Time
}

// defaultTraceBuffer is the trace ring size when -trace-buffer is unset.
const defaultTraceBuffer = 128

// server routes explanation traffic onto per-table affidavit sessions: all
// uploads naming the same table share one dictionary pool (and, in chain
// mode, one warm-start tuple), so recurring traffic over the same domain
// gets cheaper as the service runs. Sessions are bounded two ways — an LRU
// cap on their count and a TTL on their idleness — so an unbounded stream
// of distinct table names can no longer grow the dictionary pools forever.
//
// Every session derives from one Explainer, whose observer feeds the
// Prometheus-style /metrics endpoint: ingest volume, run modes
// (cold/warm/escalated), poll and conversion counters.
type server struct {
	cfg         serverConfig
	ex          *affidavit.Explainer
	metrics     *affidavit.MetricsObserver
	maxInflight chan struct{} // nil = unlimited
	startedAt   time.Time

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	evicted  int // sessions dropped by TTL or LRU, for /stats

	// traceMu guards the bounded ring of recent run traces behind /traces.
	// traceNext is the slot the next trace overwrites once the ring is full.
	traceMu   sync.Mutex
	traces    []*affidavit.Trace
	traceNext int
}

// sessionEntry is one table's session plus the bookkeeping eviction needs.
type sessionEntry struct {
	sess    *affidavit.Session
	lastUse time.Time
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.maxUpload <= 0 {
		cfg.maxUpload = maxFieldBytes
	}
	if cfg.maxRecords == 0 {
		cfg.maxRecords = 10_000_000
	}
	if cfg.maxSnapshotBytes == 0 {
		cfg.maxSnapshotBytes = 1 << 30
	}
	if cfg.traceBuffer < 0 {
		cfg.traceBuffer = defaultTraceBuffer
	}
	metrics := affidavit.NewMetricsObserver()
	ex, err := affidavit.New(append(append([]affidavit.Option{}, cfg.options...),
		affidavit.WithObserver(affidavit.Observers(metrics, cfg.observer)))...)
	if err != nil {
		return nil, err
	}
	s := &server{
		cfg:       cfg,
		ex:        ex,
		metrics:   metrics,
		sessions:  make(map[string]*sessionEntry),
		startedAt: cfg.now(),
	}
	if cfg.maxInflight > 0 {
		s.maxInflight = make(chan struct{}, cfg.maxInflight)
	}
	return s, nil
}

// session returns the named table's session, creating it on first use and
// refreshing its last-use stamp. When the LRU cap is hit, the
// least-recently-used session is dropped to make room (ties break on the
// smaller table name, for determinism).
func (s *server) session(table string) *affidavit.Session {
	now := s.cfg.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.sessions[table]; ok {
		e.lastUse = now
		return e.sess
	}
	if s.cfg.maxSessions > 0 {
		for len(s.sessions) >= s.cfg.maxSessions {
			var victim string
			for name, e := range s.sessions {
				if victim == "" ||
					e.lastUse.Before(s.sessions[victim].lastUse) ||
					(e.lastUse.Equal(s.sessions[victim].lastUse) && name < victim) {
					victim = name
				}
			}
			delete(s.sessions, victim)
			s.evicted++
		}
	}
	e := &sessionEntry{sess: s.ex.Session(nil), lastUse: now}
	s.sessions[table] = e
	return e.sess
}

// evictExpired drops every session idle since before now−TTL and reports
// how many it removed. No-op when the TTL is unset.
func (s *server) evictExpired(now time.Time) int {
	if s.cfg.sessionTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.sessionTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name, e := range s.sessions {
		if e.lastUse.Before(cutoff) {
			delete(s.sessions, name)
			n++
		}
	}
	s.evicted += n
	return n
}

// janitor runs evictExpired periodically until ctx ends. The sweep period
// is a quarter of the TTL, clamped to [1s, 1m], so an expired session
// lingers at most ~25% past its deadline.
func (s *server) janitor(ctx context.Context) {
	every := s.cfg.sessionTTL / 4
	if every < time.Second {
		every = time.Second
	}
	if every > time.Minute {
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.evictExpired(now)
		}
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", s.metrics)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/traces/", s.handleTraces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// storeTrace records a finished run trace in the bounded ring (oldest
// overwritten first) and feeds the duration histograms on /metrics.
func (s *server) storeTrace(tr *affidavit.Trace) {
	if tr == nil || s.cfg.traceBuffer == 0 {
		return
	}
	s.metrics.ObserveTrace(tr)
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if len(s.traces) < s.cfg.traceBuffer {
		s.traces = append(s.traces, tr)
		return
	}
	s.traces[s.traceNext] = tr
	s.traceNext = (s.traceNext + 1) % s.cfg.traceBuffer
}

// recentTraces returns the retained traces, most recent first.
func (s *server) recentTraces() []*affidavit.Trace {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	n := len(s.traces)
	out := make([]*affidavit.Trace, 0, n)
	// Before the ring wraps traceNext stays 0 and traces append in order;
	// after it wraps traceNext is the oldest slot. Either way the newest
	// trace sits at traceNext-1 (mod n) and older ones walk backwards.
	for i := 0; i < n; i++ {
		out = append(out, s.traces[((s.traceNext-1-i)%n+n)%n])
	}
	return out
}

// traceByID returns the retained trace with the given ID, or nil.
func (s *server) traceByID(id string) *affidavit.Trace {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	for _, tr := range s.traces {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// traceIndexEntry is one /traces index row: enough to pick a trace
// without shipping its spans and cost curve.
type traceIndexEntry struct {
	ID         string    `json:"id"`
	Label      string    `json:"label,omitempty"`
	StartedAt  time.Time `json:"started_at"`
	DurationMS float64   `json:"duration_ms"`
	Mode       string    `json:"mode,omitempty"`
	Polls      int       `json:"polls"`
	Cost       float64   `json:"cost"`
	Cancelled  bool      `json:"cancelled,omitempty"`
}

// handleTraces serves GET /traces (index of retained run traces, most
// recent first) and GET /traces/{id} (one full structured trace).
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.traceBuffer == 0 {
		http.Error(w, "tracing disabled (-trace-buffer 0)", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/traces"), "/")
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if id == "" {
		recent := s.recentTraces()
		index := make([]traceIndexEntry, len(recent))
		for i, tr := range recent {
			index[i] = traceIndexEntry{
				ID:         tr.ID,
				Label:      tr.Label,
				StartedAt:  tr.StartedAt,
				DurationMS: tr.DurationMS,
				Mode:       tr.Mode,
				Polls:      tr.Polls.Polls,
				Cost:       tr.Cost,
				Cancelled:  tr.Cancelled,
			}
		}
		enc.Encode(struct {
			Traces []traceIndexEntry `json:"traces"`
		}{index})
		return
	}
	tr := s.traceByID(id)
	if tr == nil {
		http.Error(w, fmt.Sprintf("no retained trace %q (ring keeps the last %d)", id, s.cfg.traceBuffer), http.StatusNotFound)
		return
	}
	enc.Encode(tr)
}

// deadlineResponse is the 503 body: the request ran out of budget, and
// these are the statistics of the work done before the cut.
type deadlineResponse struct {
	Error string              `json:"error"`
	Table string              `json:"table"`
	Stats affidavit.JSONStats `json:"stats"`
}

// limitRecords bounds a streamed snapshot's record count (max ≤ 0 means
// unlimited) — the daemon's backstop against uploads that would intern
// until OOM now that file parts have no byte cap.
func limitRecords(src affidavit.Source, max int) affidavit.Source {
	if max <= 0 {
		return src
	}
	return &limitedSource{Source: src, left: max}
}

type limitedSource struct {
	affidavit.Source
	left int
}

// cappedReader errors once more than max bytes flow through it — unlike
// io.LimitReader, which would silently truncate the snapshot at the cap.
// max ≤ 0 passes the reader through unbounded.
func cappedReader(r io.Reader, max int64) io.Reader {
	if max <= 0 {
		return r
	}
	return &byteCap{r: r, left: max}
}

type byteCap struct {
	r    io.Reader
	left int64
}

func (c *byteCap) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.left -= int64(n)
	if c.left < 0 {
		return n, fmt.Errorf("snapshot exceeds the byte limit (-max-snapshot); genuinely large snapshots can be served by raising it and bounding memory with -mem-budget instead")
	}
	return n, err
}

func (l *limitedSource) Next() (affidavit.Record, error) {
	rec, err := l.Source.Next()
	if err != nil {
		return nil, err
	}
	// Reject only when a real record arrives past the cap, so a snapshot
	// of exactly max records still ends in a clean EOF.
	if l.left <= 0 {
		return nil, fmt.Errorf("snapshot exceeds the record limit (-max-records)")
	}
	l.left--
	return rec, nil
}

// readUpload streams the multipart body: the "source" and "target" file
// parts are interned into the columnar backend as they arrive (never
// buffered as [][]string, and not bounded by -max-upload), other parts are
// collected as small form values. Parts may arrive in any order.
func (s *server) readUpload(ctx context.Context, r *http.Request) (src, tgt *affidavit.Table, form map[string]string, err error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("parsing upload: %w", err)
	}
	form = make(map[string]string)
	for {
		part, perr := mr.NextPart()
		if perr == io.EOF {
			break
		}
		if perr != nil {
			return nil, nil, nil, fmt.Errorf("parsing upload: %w", perr)
		}
		name := part.FormName()
		switch name {
		case "source", "target":
			csvPart := affidavit.NewCSVSource(cappedReader(part, s.cfg.maxSnapshotBytes))
			tab, rerr := s.ex.ReadSourceNamed(ctx, limitRecords(csvPart, s.cfg.maxRecords), name)
			part.Close()
			if rerr != nil {
				return nil, nil, nil, fmt.Errorf("reading %q file: %w", name, rerr)
			}
			if name == "source" {
				src = tab
			} else {
				tgt = tab
			}
		default:
			// Bound both each field's size and the field count, so a body
			// of endless small parts cannot grow the form map without
			// limit.
			if len(form) >= maxFormFields {
				return nil, nil, nil, fmt.Errorf("too many form fields (limit %d)", maxFormFields)
			}
			limit := s.cfg.maxUpload
			b, rerr := io.ReadAll(io.LimitReader(part, limit+1))
			part.Close()
			if rerr != nil {
				return nil, nil, nil, fmt.Errorf("reading field %q: %w", name, rerr)
			}
			if int64(len(b)) > limit {
				return nil, nil, nil, fmt.Errorf("field %q exceeds %d bytes", name, limit)
			}
			form[name] = string(b)
		}
	}
	if src == nil {
		return nil, nil, nil, fmt.Errorf("missing %q file", "source")
	}
	if tgt == nil {
		return nil, nil, nil, fmt.Errorf("missing %q file", "target")
	}
	return src, tgt, form, nil
}

// handleExplain serves POST /explain: a multipart upload with CSV files
// "source" and "target" (first row = header), streamed record-by-record
// into the interned backend — snapshots larger than memory-sized buffers
// are fine, because only distinct values and 4-byte codes are retained.
// Optional form/query values:
//
//	table   session key and SQL table name (default "table")
//	format  json (default) | sql | text
//	warm    "1" warm-starts from the table's previous explanation and
//	        stores the new one (chain mode)
//
// The explanation runs under the request's context, additionally bounded
// by the -timeout flag; on expiry the request answers 503 Service
// Unavailable with the partial search statistics, and the session discards
// the interrupted run's warm state.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx := r.Context()
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	if s.maxInflight != nil {
		// Wait for a slot under the request context: a client that
		// disconnects (or times out) while queued must not consume a slot
		// and pay the upload ingest for an answer nobody reads.
		select {
		case s.maxInflight <- struct{}{}:
			defer func() { <-s.maxInflight }()
		case <-ctx.Done():
			http.Error(w, "request expired while queued for a slot", http.StatusServiceUnavailable)
			return
		}
	}
	// One trace recorder rides the whole request on its context: the
	// streamed upload ingest (readUpload) and the session explain feed the
	// same per-run trace, retained in the /traces ring.
	var rec *affidavit.TraceRecorder
	if s.cfg.traceBuffer != 0 {
		rec = affidavit.NewTraceRecorder()
		ctx = affidavit.ContextWithObserver(ctx, rec)
	}
	src, tgt, form, err := s.readUpload(ctx, r)
	if err != nil {
		if ctx.Err() != nil {
			http.Error(w, "request expired during upload ingest", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Query values win over form parts, so ?table=x works regardless of
	// part order.
	value := func(k string) string {
		if v := r.URL.Query().Get(k); v != "" {
			return v
		}
		return form[k]
	}
	table := value("table")
	if table == "" {
		table = "table"
	}
	sess := s.session(table)
	var res *affidavit.Result
	if value("warm") == "1" {
		res, err = sess.ExplainWarmContext(ctx, src, tgt)
	} else {
		res, err = sess.ExplainPairContext(ctx, src, tgt)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var tr *affidavit.Trace
	if rec != nil {
		rec.SetLabel(table)
		tr = rec.Trace()
		s.storeTrace(tr)
		// Cancelled runs answer 503, but their trace is retained too —
		// a truncated cost curve is exactly what a timeout post-mortem
		// wants to see.
		w.Header().Set("X-Affidavit-Trace-Id", tr.ID)
	}
	if res.Stats.Cancelled {
		st := affidavit.StatsJSON(res.Stats)
		st.Cancelled = false // the 503 body's error field already says it
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(deadlineResponse{
			Error: "deadline exceeded before the explanation finished",
			Table: table,
			Stats: st,
		})
		return
	}

	switch value("format") {
	case "", "json":
		jr := res.JSONResult(table)
		// ?trace=1 inlines the same trace /traces/{id} serves; plain
		// responses stay byte-identical to untraced runs.
		if tr != nil && value("trace") == "1" {
			jr.Trace = tr
		}
		out, err := json.MarshalIndent(jr, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
		w.Write([]byte("\n"))
	case "sql":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.SQL(table))
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Report())
	default:
		http.Error(w, fmt.Sprintf("unknown format %q", value("format")), http.StatusBadRequest)
	}
}

type tableStats struct {
	Runs       int `json:"runs"`
	PoolAttrs  int `json:"pool_attrs"`
	PoolValues int `json:"pool_values"`
}

type statsResponse struct {
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	GoVersion     string    `json:"go_version"`
	// TracesRetained counts the run traces currently in the /traces ring.
	TracesRetained  int                   `json:"traces_retained"`
	Tables          map[string]tableStats `json:"tables"`
	SessionsEvicted int                   `json:"sessions_evicted"`
	// Out-of-core totals under -mem-budget (mirrors /metrics'
	// affidavit_spill_bytes_total / affidavit_spill_partitions_total).
	SpillBytes      int64 `json:"spill_bytes_total"`
	SpillPartitions int64 `json:"spill_partitions_total"`
}

// handleStats serves GET /stats: process identity (start time, uptime, Go
// version) plus per-table session counters and the lifetime eviction
// count.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.now()
	s.traceMu.Lock()
	retained := len(s.traces)
	s.traceMu.Unlock()
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]tableStats, len(names))
	for _, name := range names {
		sess := s.sessions[name].sess
		attrs, values := sess.PoolStats()
		out[name] = tableStats{Runs: sess.Runs(), PoolAttrs: attrs, PoolValues: values}
	}
	evicted := s.evicted
	s.mu.Unlock()
	spillBytes, spillParts := s.metrics.SpillTotals()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsResponse{
		StartedAt:       s.startedAt,
		UptimeSeconds:   now.Sub(s.startedAt).Seconds(),
		GoVersion:       runtime.Version(),
		TracesRetained:  retained,
		Tables:          out,
		SessionsEvicted: evicted,
		SpillBytes:      spillBytes,
		SpillPartitions: spillParts,
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
