package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"affidavit"
	"affidavit/internal/catalog"
	"affidavit/internal/jobs"
)

// maxFieldBytes caps each non-file multipart value (table name, format,
// warm flag). File parts are never buffered — they stream straight into
// the interned columnar backend — so this is the only per-part memory
// bound the server needs.
const maxFieldBytes = 1 << 20

// maxFormFields bounds how many non-file parts one upload may carry.
const maxFormFields = 64

// serverConfig bundles the service knobs so tests and main construct the
// server the same way.
type serverConfig struct {
	// options construct the server's Explainer — the one shared
	// configuration path for every explanation the service runs. Do not
	// include WithObserver here (newServer attaches the /metrics observer
	// last and would shadow it); pass extra observers via observer.
	options []affidavit.Option
	// observer, when non-nil, receives pipeline events alongside the
	// server's own MetricsObserver (e.g. the -progress narrator).
	observer affidavit.Observer
	// maxUpload caps each buffered non-file form value in bytes; 0 means
	// maxFieldBytes. File parts stream and are deliberately NOT bounded by
	// it: uploads larger than the historical -max-upload are explained
	// chunk-by-chunk without whole-snapshot buffering.
	maxUpload int64
	// maxRecords caps each streamed snapshot's record count; 0 means the
	// default of 10 million. Streaming removed the whole-body byte cap, so
	// this is one of the two guards against an endless (or hostile
	// high-cardinality) upload interning until OOM; set it to what the
	// deployment's memory can intern. Negative means unlimited.
	maxRecords int
	// maxSnapshotBytes caps each streamed snapshot's raw byte volume — the
	// companion guard to maxRecords, catching few-records-huge-fields
	// bodies that a record count cannot. 0 means the default of 1 GiB;
	// negative means unlimited.
	maxSnapshotBytes int64
	// maxInflight bounds concurrent /explain requests; 0 = unlimited.
	maxInflight int
	// timeout bounds each /explain request's explanation work; 0 means
	// unlimited. On expiry the request answers 503 with the partial search
	// statistics.
	timeout time.Duration
	// maxSessions caps the retained per-table sessions; 0 means unlimited.
	// Creating a session past the cap evicts the least-recently-used one.
	maxSessions int
	// sessionTTL expires sessions idle longer than this; 0 means sessions
	// never expire. Eviction frees the table's dictionary pool and warm
	// state; the next upload for that table simply starts a fresh session.
	sessionTTL time.Duration
	// traceBuffer caps the ring of recent run traces served by /traces;
	// 0 disables per-request tracing entirely (no recorder, no
	// X-Affidavit-Trace-Id header, ?trace=1 ignored). Negative means the
	// default of defaultTraceBuffer.
	traceBuffer int
	// pprof mounts net/http/pprof handlers under /debug/pprof/ when set.
	pprof bool
	// jobsDir roots the durable job state (-jobs-dir): the JSONL journal,
	// the content-addressed upload blobs, and the result store. Empty
	// means an in-memory job store — same queue, dedupe and cancel
	// semantics, no crash durability.
	jobsDir string
	// jobWorkers sizes the queue-draining pool (-job-workers; 0 = 2).
	// Jobs shard across workers by table hash, so one table's jobs run
	// serially in submission order and warm chains stay warm.
	jobWorkers int
	// jobRetry bounds runner executions per job, first attempt included
	// (-job-retry; 0 = 3). Only transient failures retry.
	jobRetry int
	// jobBackoff is the base retry delay, doubled per attempt (0 = the
	// pool default). Tests shrink it.
	jobBackoff time.Duration
	// catalogDir roots the snapshot-history catalog journal (-catalog-dir).
	// Empty defaults to <jobs-dir>/catalog when -jobs-dir is set, else an
	// in-memory catalog (same chain semantics, no crash durability).
	catalogDir string
	// now is the clock; nil means time.Now. Tests inject a fake. It paces
	// session eviction only — the job store keeps its own wall clock, so
	// fake-clock tests do not race with queue backoff arithmetic.
	now func() time.Time
}

// defaultTraceBuffer is the trace ring size when -trace-buffer is unset.
const defaultTraceBuffer = 128

// server routes explanation traffic onto per-table affidavit sessions: all
// uploads naming the same table share one dictionary pool (and, in chain
// mode, one warm-start tuple), so recurring traffic over the same domain
// gets cheaper as the service runs. Sessions are bounded two ways — an LRU
// cap on their count and a TTL on their idleness — so an unbounded stream
// of distinct table names can no longer grow the dictionary pools forever.
//
// Every session derives from one Explainer, whose observer feeds the
// Prometheus-style /metrics endpoint: ingest volume, run modes
// (cold/warm/escalated), poll and conversion counters.
type server struct {
	cfg         serverConfig
	ex          *affidavit.Explainer
	metrics     *affidavit.MetricsObserver
	maxInflight chan struct{} // nil = unlimited
	startedAt   time.Time

	// store is the durable, content-addressed job queue + result store;
	// pool drains it through runJob. Every explanation — sync or async —
	// goes through them, so both paths share dedupe and accounting.
	store *jobs.Store
	pool  *jobs.Pool

	// catalog is the snapshot-history surface under /tables: registered
	// tables, pushed snapshot lineage, and the explanation chain computed
	// over each adjacent pair (chain steps run as jobs on pool).
	catalog *catalog.Service

	// engineFP is the Explainer's result-affecting option fingerprint,
	// folded into every explain job's content address so a configuration
	// change stops serving results computed under old flags.
	engineFP string

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	evicted  int // sessions dropped by TTL or LRU, for /stats

	// traceMu guards the bounded ring of recent run traces behind /traces.
	// traceNext is the slot the next trace overwrites once the ring is full.
	traceMu   sync.Mutex
	traces    []*affidavit.Trace
	traceNext int
}

// sessionEntry is one table's session plus the bookkeeping eviction needs.
type sessionEntry struct {
	sess    *affidavit.Session
	lastUse time.Time
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.maxUpload <= 0 {
		cfg.maxUpload = maxFieldBytes
	}
	if cfg.maxRecords == 0 {
		cfg.maxRecords = 10_000_000
	}
	if cfg.maxSnapshotBytes == 0 {
		cfg.maxSnapshotBytes = 1 << 30
	}
	if cfg.traceBuffer < 0 {
		cfg.traceBuffer = defaultTraceBuffer
	}
	metrics := affidavit.NewMetricsObserver()
	ex, err := affidavit.New(append(append([]affidavit.Option{}, cfg.options...),
		affidavit.WithObserver(affidavit.Observers(metrics, cfg.observer)))...)
	if err != nil {
		return nil, err
	}
	s := &server{
		cfg:       cfg,
		ex:        ex,
		metrics:   metrics,
		sessions:  make(map[string]*sessionEntry),
		startedAt: cfg.now(),
	}
	if cfg.maxInflight > 0 {
		s.maxInflight = make(chan struct{}, cfg.maxInflight)
	}
	// Open the job store (replaying the journal when -jobs-dir holds one:
	// pending and crash-orphaned jobs requeue, completed results keep
	// serving) and start the drain pool. The pool's lifetime is bound to
	// Close, not a request context, so a SIGINT requeues running jobs
	// instead of failing them.
	store, err := jobs.Open(jobs.Options{Dir: cfg.jobsDir})
	if err != nil {
		return nil, err
	}
	s.store = store
	s.engineFP = ex.Fingerprint()
	// The catalog must exist before the pool starts: a replayed journal
	// can hold pending catalog steps, and runJob dispatches those to it.
	catDir := cfg.catalogDir
	if catDir == "" && cfg.jobsDir != "" {
		catDir = filepath.Join(cfg.jobsDir, "catalog")
	}
	cat, err := catalog.NewService(catalog.Config{
		Dir:              catDir,
		Explainer:        ex,
		Jobs:             store,
		MaxRecords:       cfg.maxRecords,
		MaxSnapshotBytes: cfg.maxSnapshotBytes,
		Now:              cfg.now,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	s.catalog = cat
	s.pool = jobs.NewPool(store, s.runJob, jobs.PoolOptions{
		Workers:     cfg.jobWorkers,
		MaxAttempts: cfg.jobRetry,
		Backoff:     cfg.jobBackoff,
		Timeout:     cfg.timeout,
	})
	s.pool.Start(context.Background())
	return s, nil
}

// Close drains the worker pool (running jobs are journaled back to
// pending — drain-on-shutdown persists the queue), closes the catalog
// journal (no step finishes after the pool is drained), and then closes
// the store, releasing any sync waiters.
func (s *server) Close() error {
	s.pool.Close()
	cerr := s.catalog.Close()
	if serr := s.store.Close(); serr != nil {
		return serr
	}
	return cerr
}

// session returns the named table's session, creating it on first use and
// refreshing its last-use stamp. When the LRU cap is hit, the
// least-recently-used session is dropped to make room (ties break on the
// smaller table name, for determinism).
func (s *server) session(table string) *affidavit.Session {
	now := s.cfg.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.sessions[table]; ok {
		e.lastUse = now
		return e.sess
	}
	if s.cfg.maxSessions > 0 {
		for len(s.sessions) >= s.cfg.maxSessions {
			var victim string
			for name, e := range s.sessions {
				if victim == "" ||
					e.lastUse.Before(s.sessions[victim].lastUse) ||
					(e.lastUse.Equal(s.sessions[victim].lastUse) && name < victim) {
					victim = name
				}
			}
			delete(s.sessions, victim)
			s.evicted++
		}
	}
	e := &sessionEntry{sess: s.ex.Session(nil), lastUse: now}
	s.sessions[table] = e
	return e.sess
}

// evictExpired drops every session idle since before now−TTL and reports
// how many it removed. No-op when the TTL is unset.
func (s *server) evictExpired(now time.Time) int {
	if s.cfg.sessionTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.sessionTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for name, e := range s.sessions {
		if e.lastUse.Before(cutoff) {
			delete(s.sessions, name)
			n++
		}
	}
	s.evicted += n
	return n
}

// janitor runs evictExpired periodically until ctx ends. The sweep period
// is a quarter of the TTL, clamped to [1s, 1m], so an expired session
// lingers at most ~25% past its deadline.
func (s *server) janitor(ctx context.Context) {
	every := s.cfg.sessionTTL / 4
	if every < time.Second {
		every = time.Second
	}
	if every > time.Minute {
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.evictExpired(now)
		}
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", s.handleExplain)
	mux.Handle("/tables", s.catalog)
	mux.Handle("/tables/", s.catalog)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/traces/", s.handleTraces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// storeTrace records a finished run trace in the bounded ring (oldest
// overwritten first) and feeds the duration histograms on /metrics.
func (s *server) storeTrace(tr *affidavit.Trace) {
	if tr == nil || s.cfg.traceBuffer == 0 {
		return
	}
	s.metrics.ObserveTrace(tr)
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if len(s.traces) < s.cfg.traceBuffer {
		s.traces = append(s.traces, tr)
		return
	}
	s.traces[s.traceNext] = tr
	s.traceNext = (s.traceNext + 1) % s.cfg.traceBuffer
}

// recentTraces returns the retained traces, most recent first.
func (s *server) recentTraces() []*affidavit.Trace {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	n := len(s.traces)
	out := make([]*affidavit.Trace, 0, n)
	// Before the ring wraps traceNext stays 0 and traces append in order;
	// after it wraps traceNext is the oldest slot. Either way the newest
	// trace sits at traceNext-1 (mod n) and older ones walk backwards.
	for i := 0; i < n; i++ {
		out = append(out, s.traces[((s.traceNext-1-i)%n+n)%n])
	}
	return out
}

// traceByID returns the retained trace with the given ID, or nil.
func (s *server) traceByID(id string) *affidavit.Trace {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	for _, tr := range s.traces {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// traceIndexEntry is one /traces index row: enough to pick a trace
// without shipping its spans and cost curve.
type traceIndexEntry struct {
	ID         string    `json:"id"`
	Label      string    `json:"label,omitempty"`
	StartedAt  time.Time `json:"started_at"`
	DurationMS float64   `json:"duration_ms"`
	Mode       string    `json:"mode,omitempty"`
	Polls      int       `json:"polls"`
	Cost       float64   `json:"cost"`
	Cancelled  bool      `json:"cancelled,omitempty"`
}

// handleTraces serves GET /traces (index of retained run traces, most
// recent first) and GET /traces/{id} (one full structured trace).
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.traceBuffer == 0 {
		http.Error(w, "tracing disabled (-trace-buffer 0)", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/traces"), "/")
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if id == "" {
		recent := s.recentTraces()
		index := make([]traceIndexEntry, len(recent))
		for i, tr := range recent {
			index[i] = traceIndexEntry{
				ID:         tr.ID,
				Label:      tr.Label,
				StartedAt:  tr.StartedAt,
				DurationMS: tr.DurationMS,
				Mode:       tr.Mode,
				Polls:      tr.Polls.Polls,
				Cost:       tr.Cost,
				Cancelled:  tr.Cancelled,
			}
		}
		enc.Encode(struct {
			Traces []traceIndexEntry `json:"traces"`
		}{index})
		return
	}
	tr := s.traceByID(id)
	if tr == nil {
		http.Error(w, fmt.Sprintf("no retained trace %q (ring keeps the last %d)", id, s.cfg.traceBuffer), http.StatusNotFound)
		return
	}
	enc.Encode(tr)
}

// deadlineResponse is the 503 body: the request ran out of budget, and
// these are the statistics of the work done before the cut.
type deadlineResponse struct {
	Error string              `json:"error"`
	Table string              `json:"table"`
	Stats affidavit.JSONStats `json:"stats"`
}

// limitRecords bounds a streamed snapshot's record count (max ≤ 0 means
// unlimited) — the daemon's backstop against uploads that would intern
// until OOM now that file parts have no byte cap.
func limitRecords(src affidavit.Source, max int) affidavit.Source {
	if max <= 0 {
		return src
	}
	return &limitedSource{Source: src, left: max}
}

type limitedSource struct {
	affidavit.Source
	left int
}

// cappedReader errors once more than max bytes flow through it — unlike
// io.LimitReader, which would silently truncate the snapshot at the cap.
// max ≤ 0 passes the reader through unbounded.
func cappedReader(r io.Reader, max int64) io.Reader {
	if max <= 0 {
		return r
	}
	return &byteCap{r: r, left: max}
}

type byteCap struct {
	r    io.Reader
	left int64
}

func (c *byteCap) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.left -= int64(n)
	if c.left < 0 {
		return n, fmt.Errorf("snapshot exceeds the byte limit (-max-snapshot); genuinely large snapshots can be served by raising it and bounding memory with -mem-budget instead")
	}
	return n, err
}

func (l *limitedSource) Next() (affidavit.Record, error) {
	rec, err := l.Source.Next()
	if err != nil {
		return nil, err
	}
	// Reject only when a real record arrives past the cap, so a snapshot
	// of exactly max records still ends in a clean EOF.
	if l.left <= 0 {
		return nil, fmt.Errorf("snapshot exceeds the record limit (-max-records)")
	}
	l.left--
	return rec, nil
}

// upload is one parsed /explain body: both snapshots interned, their
// content hashes (the blob addresses dedupe keys on), and the small form
// values.
type upload struct {
	src, tgt         *affidavit.Table
	srcHash, tgtHash string
	form             map[string]string
}

// readUpload streams the multipart body: the "source" and "target" file
// parts are interned into the columnar backend as they arrive (never
// buffered as [][]string, and not bounded by -max-upload), while the
// same bytes are teed into the job blob store — hashed for the content
// address and, under -jobs-dir, spooled to disk so a crash-requeued job
// can re-ingest. Other parts are collected as small form values. Parts
// may arrive in any order.
func (s *server) readUpload(ctx context.Context, r *http.Request) (*upload, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, fmt.Errorf("parsing upload: %w", err)
	}
	up := &upload{form: make(map[string]string)}
	for {
		part, perr := mr.NextPart()
		if perr == io.EOF {
			break
		}
		if perr != nil {
			return nil, fmt.Errorf("parsing upload: %w", perr)
		}
		name := part.FormName()
		switch name {
		case "source", "target":
			bw := s.store.Blobs().NewWriter()
			body := io.TeeReader(cappedReader(part, s.cfg.maxSnapshotBytes), bw)
			csvPart := affidavit.NewCSVSource(body)
			tab, rerr := s.ex.ReadSourceNamed(ctx, limitRecords(csvPart, s.cfg.maxRecords), name)
			if rerr == nil {
				// Hash any bytes the CSV reader buffered past the final
				// record, so the address is a function of the whole part.
				_, rerr = io.Copy(io.Discard, body)
			}
			part.Close()
			if rerr != nil {
				bw.Abort()
				return nil, fmt.Errorf("reading %q file: %w", name, rerr)
			}
			hash, cerr := bw.Commit()
			if cerr != nil {
				return nil, fmt.Errorf("storing %q upload: %w", name, cerr)
			}
			if name == "source" {
				up.src, up.srcHash = tab, hash
			} else {
				up.tgt, up.tgtHash = tab, hash
			}
		default:
			// Bound both each field's size and the field count, so a body
			// of endless small parts cannot grow the form map without
			// limit.
			if len(up.form) >= maxFormFields {
				return nil, fmt.Errorf("too many form fields (limit %d)", maxFormFields)
			}
			limit := s.cfg.maxUpload
			b, rerr := io.ReadAll(io.LimitReader(part, limit+1))
			part.Close()
			if rerr != nil {
				return nil, fmt.Errorf("reading field %q: %w", name, rerr)
			}
			if int64(len(b)) > limit {
				return nil, fmt.Errorf("field %q exceeds %d bytes", name, limit)
			}
			up.form[name] = string(b)
		}
	}
	if up.src == nil {
		return nil, fmt.Errorf("missing %q file", "source")
	}
	if up.tgt == nil {
		return nil, fmt.Errorf("missing %q file", "target")
	}
	return up, nil
}

// handleExplain serves POST /explain: a multipart upload with CSV files
// "source" and "target" (first row = header), streamed record-by-record
// into the interned backend — snapshots larger than memory-sized buffers
// are fine, because only distinct values and 4-byte codes are retained.
// Optional form/query values:
//
//	table   session key and SQL table name (default "table")
//	format  json (default) | sql | text
//	warm    "1" warm-starts from the table's previous explanation and
//	        stores the new one (chain mode)
//	async   "1" answers 202 Accepted with the job id immediately; poll
//	        GET /jobs/{id} and fetch GET /jobs/{id}/result
//
// Every explanation — sync or async — goes through the content-addressed
// job queue: identical snapshot pairs (same table, format and upload
// bytes) dedupe to a single computation, and a re-submission of a
// completed pair is served straight from the result store. The sync path
// is a thin submit-and-wait over the same queue; a client that
// disconnects mid-wait no longer throws the work away — the job finishes
// and its result stays fetchable under /jobs/{id}/result.
//
// The job runs under the worker pool's per-job deadline (-timeout); on
// expiry the job fails terminally and a sync waiter answers 503 Service
// Unavailable with the partial search statistics.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx := r.Context()
	if s.maxInflight != nil {
		// Wait for a slot under the request context: a client that
		// disconnects while queued must not consume a slot and pay the
		// upload ingest for an answer nobody reads.
		select {
		case s.maxInflight <- struct{}{}:
			defer func() { <-s.maxInflight }()
		case <-ctx.Done():
			http.Error(w, "request expired while queued for a slot", http.StatusServiceUnavailable)
			return
		}
	}
	// One trace recorder rides the whole submission: the streamed upload
	// ingest (readUpload, below) and the job's search (runJob attaches
	// the same recorder to the worker context) feed one per-run trace.
	var trec *affidavit.TraceRecorder
	ictx := ctx
	if s.cfg.traceBuffer != 0 {
		trec = affidavit.NewTraceRecorder()
		ictx = affidavit.ContextWithObserver(ctx, trec)
	}
	up, err := s.readUpload(ictx, r)
	if err != nil {
		if ctx.Err() != nil {
			http.Error(w, "request expired during upload ingest", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Query values win over form parts, so ?table=x works regardless of
	// part order.
	value := func(k string) string {
		if v := r.URL.Query().Get(k); v != "" {
			return v
		}
		return up.form[k]
	}
	table := value("table")
	if table == "" {
		table = "table"
	}
	format := value("format")
	switch format {
	case "":
		format = "json"
	case "json", "sql", "text":
	default:
		http.Error(w, fmt.Sprintf("unknown format %q", format), http.StatusBadRequest)
		return
	}
	warm := value("warm") == "1"
	spec := jobs.Spec{
		Table:      table,
		Format:     format,
		Warm:       warm,
		SourceBlob: up.srcHash,
		TargetBlob: up.tgtHash,
		Payload:    &jobPayload{src: up.src, tgt: up.tgt, trace: trec},
	}
	if !warm {
		// The content address: canonicalized upload hashes plus every
		// option the result bytes depend on — including the engine-option
		// fingerprint, so restarting with different flags stops serving
		// results computed under the old configuration. Warm jobs depend on
		// session history too, so they never dedupe (empty address).
		spec.Addr = jobs.Address("explain/v2", s.engineFP, table, format, up.srcHash, up.tgtHash)
	}
	job, _, err := s.store.Submit(spec)
	if err != nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("X-Affidavit-Job-Id", job.ID())
	if value("async") == "1" {
		s.writeJobAccepted(w, job)
		return
	}
	rec, err := s.store.Wait(ctx, job)
	if err != nil {
		if ctx.Err() != nil {
			// The client's wait ended, not the job: it keeps running and
			// its result stays fetchable.
			http.Error(w, "request expired while waiting; poll /jobs/"+job.ID(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	s.writeJobOutcome(w, rec, value("trace") == "1")
}

type tableStats struct {
	Runs       int `json:"runs"`
	PoolAttrs  int `json:"pool_attrs"`
	PoolValues int `json:"pool_values"`
}

type statsResponse struct {
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	GoVersion     string    `json:"go_version"`
	// TracesRetained counts the run traces currently in the /traces ring.
	TracesRetained  int                   `json:"traces_retained"`
	Tables          map[string]tableStats `json:"tables"`
	SessionsEvicted int                   `json:"sessions_evicted"`
	// Jobs mirrors /metrics' affidavit_jobs_* series: queue depth,
	// running, and the lifetime submission/dedupe/outcome counters.
	Jobs jobsStats `json:"jobs"`
	// Catalog mirrors /metrics' affidavit_catalog_* series: registered
	// tables, stored snapshots, and chain steps by status.
	Catalog catalogStats `json:"catalog"`
	// Out-of-core totals under -mem-budget (mirrors /metrics'
	// affidavit_spill_bytes_total / affidavit_spill_partitions_total).
	SpillBytes      int64 `json:"spill_bytes_total"`
	SpillPartitions int64 `json:"spill_partitions_total"`
}

// handleStats serves GET /stats: process identity (start time, uptime, Go
// version) plus per-table session counters and the lifetime eviction
// count.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.now()
	s.traceMu.Lock()
	retained := len(s.traces)
	s.traceMu.Unlock()
	s.mu.Lock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]tableStats, len(names))
	for _, name := range names {
		sess := s.sessions[name].sess
		attrs, values := sess.PoolStats()
		out[name] = tableStats{Runs: sess.Runs(), PoolAttrs: attrs, PoolValues: values}
	}
	evicted := s.evicted
	s.mu.Unlock()
	spillBytes, spillParts := s.metrics.SpillTotals()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(statsResponse{
		StartedAt:       s.startedAt,
		UptimeSeconds:   now.Sub(s.startedAt).Seconds(),
		GoVersion:       runtime.Version(),
		TracesRetained:  retained,
		Tables:          out,
		SessionsEvicted: evicted,
		Jobs:            s.jobsStats(),
		Catalog:         s.catalogStats(),
		SpillBytes:      spillBytes,
		SpillPartitions: spillParts,
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
