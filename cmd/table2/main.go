// Command table2 regenerates the paper's Table 2: both Affidavit
// configurations (Hs and Hid) on every dataset at the three difficulty
// settings, reporting runtime t, relative core size ∆core, relative costs
// ∆costs and cell accuracy acc, macro-averaged over problem instances.
//
// The full paper protocol is -instances 10 -scale 1; the defaults trade
// instance count and large-dataset size for a CI-sized budget (EXPERIMENTS.md
// records which scale was measured).
//
// Usage:
//
//	table2 -datasets iris,balance -instances 3
//	table2 -instances 10 -scale 1          # the full paper grid
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"affidavit/internal/datasets"
	"affidavit/internal/eval"
)

func main() {
	var (
		names     = flag.String("datasets", "", "comma-separated dataset names (default: all Table 2 datasets)")
		instances = flag.Int("instances", 3, "problem instances per cell (paper: 10)")
		scale     = flag.Float64("scale", 0.1, "row fraction for datasets above -scale-from rows (1 = full size)")
		scaleFrom = flag.Int("scale-from", 30000, "datasets with more rows than this are scaled by -scale")
		seed      = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	spec := eval.Table2Spec{
		Instances: *instances,
		Seed:      *seed,
		Rows:      map[string]int{},
		Progress: func(c eval.Cell) {
			fmt.Fprintf(os.Stderr, "done %-12s %-14s %-3s  t=%v ∆core=%.2f ∆costs=%.2f acc=%.2f\n",
				c.Dataset, c.Setting, c.Config, c.Time.Round(1e6),
				c.DeltaCore, c.DeltaCosts, c.Acc)
		},
	}
	if *names != "" {
		spec.Datasets = strings.Split(*names, ",")
	}
	if *scale < 1 {
		for name, rows := range datasets.Table2Rows() {
			if rows > *scaleFrom {
				spec.Rows[name] = int(float64(rows) * *scale)
				fmt.Fprintf(os.Stderr, "scaling %s: %d → %d rows\n", name, rows, spec.Rows[name])
			}
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cells, err := eval.Table2(ctx, spec)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "table2: cancelled (interrupt received) after %d cell(s)\n", len(cells))
		} else {
			fmt.Fprintln(os.Stderr, "table2:", err)
		}
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(eval.RenderTable2(cells))
}
