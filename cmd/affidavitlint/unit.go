package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"affidavit/internal/lint"
)

// vetConfig is the JSON config go vet writes for each package — the same
// shape x/tools' unitchecker reads. Fields the suite does not consult
// (facts, non-Go files) are kept for decoding fidelity.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the one package the config describes and returns the
// process exit code (0 clean, 2 findings).
func runUnit(cfgFile string, jsonOut bool) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// go vet expects the facts file regardless; the suite carries no
	// facts, so an empty one satisfies the cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 1, fmt.Errorf("writing facts: %w", err)
		}
	}
	if cfg.VetxOnly {
		// Dependency run: go vet only wants the (empty) facts. Skipping
		// the parse here is what keeps stdlib dependencies free.
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 1, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path: look up its export data.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := lint.NewTypesInfo()
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect what we can; fail on the first error below
	}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags := lint.Run(&lint.Package{Fset: fset, Files: files, Types: tpkg, Info: info}, lint.Suite())
	if len(diags) == 0 {
		return 0, nil
	}
	if jsonOut {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			Posn     string `json:"posn"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{d.Analyzer, d.Position.String(), d.Message}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(map[string][]jsonDiag{cfg.ImportPath: out})
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	return 2, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
