// Command affidavitlint is the repo's determinism/context/observer lint
// suite (internal/lint) packaged as a vet tool. It speaks the go vet
// -vettool unit-checker protocol, so CI and local runs invoke it as
//
//	go build -o "$(go env GOPATH)/bin/affidavitlint" ./cmd/affidavitlint
//	go vet -vettool="$(go env GOPATH)/bin/affidavitlint" ./...
//
// Run without a .cfg argument it drives itself through go vet, so
//
//	go run ./cmd/affidavitlint ./...
//
// analyzes the repo in one step. -list describes the analyzers.
//
// The protocol implementation mirrors x/tools' unitchecker on the
// standard library alone (this repo vendors no dependencies): go vet
// hands the tool one JSON config per package — file lists, the import
// map, and export-data locations for every dependency — and the tool
// parses, type-checks against the compiler's export data, runs the suite,
// and prints findings. Dependency-only invocations (VetxOnly) write their
// empty facts file and return immediately, so the fleet of stdlib
// packages costs nothing.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"affidavit/internal/lint"
)

func main() {
	log := func(err error) {
		fmt.Fprintf(os.Stderr, "affidavitlint: %v\n", err)
		os.Exit(1)
	}

	fs := flag.NewFlagSet("affidavitlint", flag.ExitOnError)
	printVersion := fs.String("V", "", "print version and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	listAnalyzers := fs.Bool("list", false, "describe the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	fs.Parse(os.Args[1:])

	switch {
	case *printVersion != "":
		// go vet fingerprints the tool for its action cache: the output
		// must be "<name> version devel ... buildID=<content hash>".
		if *printVersion != "full" {
			log(fmt.Errorf("unsupported flag value: -V=%s", *printVersion))
		}
		if err := printVersionLine(); err != nil {
			log(err)
		}
		return
	case *printFlags:
		// go vet asks which flags the tool supports before forwarding any.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		out, err := json.Marshal([]jsonFlag{
			{"V", false, "print version and exit"},
			{"json", true, "emit diagnostics as JSON"},
		})
		if err != nil {
			log(err)
		}
		os.Stdout.Write(out)
		return
	case *listAnalyzers:
		for _, a := range lint.Suite() {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Unit-checker mode: one package, described by go vet's config.
		code, err := runUnit(args[0], *jsonOut)
		if err != nil {
			log(err)
		}
		os.Exit(code)
	}

	// Standalone mode: re-exec through go vet so package loading, export
	// data and caching are the go command's problem — exactly the CI path.
	self, err := os.Executable()
	if err != nil {
		log(err)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if ok := errorsAs(err, &exit); ok {
			os.Exit(exit.ExitCode())
		}
		log(err)
	}
}

// errorsAs is errors.As for *exec.ExitError without importing errors just
// for one call site.
func errorsAs(err error, target **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*target = e
	}
	return ok
}

// printVersionLine emits the go vet tool-ID line: name, "version devel",
// and a content hash of the executable so the vet action cache invalidates
// when the tool changes.
func printVersionLine() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), h.Sum(nil))
	return nil
}
