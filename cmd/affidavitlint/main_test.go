package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles affidavitlint into dir and returns its path.
func buildTool(t *testing.T, dir string) string {
	t.Helper()
	tool := filepath.Join(dir, "affidavitlint")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tool: %v\n%s", err, out)
	}
	return tool
}

// writeModule materialises a throwaway module with one determinism-critical
// package (its directory is named search, so the suite scopes it like the
// real one).
func writeModule(t *testing.T, dir, searchSrc string) {
	t.Helper()
	files := map[string]string{
		"go.mod":           "module fixturemod\n\ngo 1.21\n",
		"search/search.go": searchSrc,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// vet runs `go vet -vettool=tool ./...` inside dir.
func vet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVettoolEndToEnd drives the full go vet protocol: -V/-flags
// handshake, per-package .cfg invocations, facts files, exit codes — the
// exact path CI takes. A map-range violation in a package named search
// must fail the vet run; the annotated variant must pass it.
func TestVettoolEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	tool := buildTool(t, t.TempDir())

	const violating = `package search

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
		if len(keys) > 10 {
			break // the early break defeats the append-then-sort idiom
		}
	}
	return keys
}
`
	dir := t.TempDir()
	writeModule(t, dir, violating)
	out, err := vet(t, tool, dir)
	if err == nil {
		t.Fatalf("vet passed on a map-order violation:\n%s", out)
	}
	if !strings.Contains(out, "unordered iteration") || !strings.Contains(out, "[mapiter]") {
		t.Errorf("vet output does not carry the mapiter diagnostic:\n%s", out)
	}

	const annotated = `package search

func Keys(m map[string]int) []string {
	var keys []string
	//affidavit:ordered callers sort before use; bound is a sampling cap
	for k := range m {
		keys = append(keys, k)
		if len(keys) > 10 {
			break
		}
	}
	return keys
}
`
	dir2 := t.TempDir()
	writeModule(t, dir2, annotated)
	if out, err := vet(t, tool, dir2); err != nil {
		t.Errorf("vet failed on an annotated loop: %v\n%s", err, out)
	}
}

// TestVettoolProtocolHandshake checks the two discovery invocations go vet
// performs before trusting a tool: -V=full must print a "<name> version
// <...> buildID=<hex>" line, -flags must print a JSON flag list.
func TestVettoolProtocolHandshake(t *testing.T) {
	tool := buildTool(t, t.TempDir())

	out, err := exec.Command(tool, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" || !strings.Contains(string(out), "buildID=") {
		t.Errorf("-V=full line malformed: %q", out)
	}

	out, err = exec.Command(tool, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("-flags: %v\n%s", err, out)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(out)), "[") {
		t.Errorf("-flags did not print a JSON array: %q", out)
	}
}
