// Command attrscale regenerates the paper's Figure 6: Hid runtimes at
// (η=0.3, τ=0.3), normalised by record count, against the attribute counts
// of the four widest datasets (fd-red-30, plista, flight-1k, uniprot). The
// expected shape is roughly linear growth of per-record time in |A|.
//
// Usage:
//
//	attrscale                       # fd-red-30 scaled to 25000 rows
//	attrscale -fd-red-rows 250000   # the paper's full size
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"affidavit/internal/cliutil"
	"affidavit/internal/eval"
)

func main() {
	fdRows := flag.Int("fd-red-rows", 25000, "fd-red-30 record count (paper: 250000)")
	cfg := cliutil.Register(flag.CommandLine, cliutil.Defaults{Seed: 1})
	diag := cliutil.RegisterDiag(flag.CommandLine)
	flag.Parse()

	// Ctrl-C cancels the sweep cooperatively between (and within) runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts, err := cfg.SearchOptions()
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrscale:", err)
		os.Exit(2)
	}
	diag.StartPprof()
	traceLog, err := diag.OpenTraceLog()
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrscale:", err)
		os.Exit(2)
	}
	defer traceLog.Close()
	// Every dataset's run appends one structured trace line.
	traceLog.WireSearch(&opts)
	points, err := eval.Figure6(ctx, eval.Figure6Spec{
		Rows: map[string]int{"fd-red-30": *fdRows},
		Seed: *cfg.Seed,
		Opts: opts,
		Progress: func(p eval.AttrPoint) {
			fmt.Fprintf(os.Stderr, "done %-12s |A|=%d: %v\n",
				p.Dataset, p.Attrs, p.Time.Round(1e6))
		},
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "attrscale: cancelled (interrupt received) after %d point(s)\n", len(points))
		} else {
			fmt.Fprintln(os.Stderr, "attrscale:", err)
		}
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(eval.RenderFigure6(points))
}
