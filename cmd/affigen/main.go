// Command affigen generates benchmark problem instances per the paper's
// Section 5.1 protocol: it builds a synthetic dataset, samples attribute
// transformations at a difficulty setting (η, τ), splits records into core
// and noise, and writes source.csv, target.csv and reference.txt (the
// ground-truth explanation) into the output directory.
//
// Usage:
//
//	affigen -dataset iris -eta 0.3 -tau 0.3 -out /tmp/inst
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/report"
)

func main() {
	var (
		dataset = flag.String("dataset", "iris", "dataset name ("+strings.Join(datasets.Names(), ", ")+")")
		rows    = flag.Int("rows", 0, "override dataset record count (0 = Table 2 size)")
		eta     = flag.Float64("eta", 0.3, "noise percentage η")
		tau     = flag.Float64("tau", 0.3, "transformation percentage τ")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	spec, err := datasets.Get(*dataset)
	if err != nil {
		fatal(err)
	}
	n := spec.Rows
	if *rows > 0 {
		n = *rows
	}
	tab, err := spec.BuildRows(n, *seed*7919+13)
	if err != nil {
		fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{
		Setting: gen.Setting{Eta: *eta, Tau: *tau},
		Seed:    *seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	srcPath := filepath.Join(*out, "source.csv")
	tgtPath := filepath.Join(*out, "target.csv")
	refPath := filepath.Join(*out, "reference.txt")
	if err := p.Inst.Source.WriteCSVFile(srcPath); err != nil {
		fatal(err)
	}
	if err := p.Inst.Target.WriteCSVFile(tgtPath); err != nil {
		fatal(err)
	}
	ref := report.Text(p.Reference, delta.DefaultCosts)
	if err := os.WriteFile(refPath, []byte(ref), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d records), %s (%d records), %s\n",
		srcPath, p.Inst.Source.Len(), tgtPath, p.Inst.Target.Len(), refPath)
	fmt.Printf("reference: core %d, deleted %d, inserted %d, cost %g\n",
		p.Reference.CoreSize(), len(p.Reference.Deleted),
		len(p.Reference.Inserted), delta.DefaultCosts.Cost(p.Reference))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "affigen:", err)
	os.Exit(1)
}
