// Command benchjson converts `go test -bench` output into a stable JSON
// document, the format of the repository's committed perf-trajectory
// artifact (BENCH_5.json) and of the artifacts CI's bench-trajectory job
// uploads per run:
//
//	go test -bench 'BenchmarkChain' -benchtime 3x -benchmem -run '^$' . |
//	    benchjson -out BENCH_5.json
//
// Every benchmark line becomes one entry keyed by its name with the -N
// GOMAXPROCS suffix stripped, carrying ns/op and — when -benchmem was set —
// B/op and allocs/op. Keys marshal sorted, so diffs between two artifacts
// are line-aligned.
//
// Sweep dimensions fold into one artifact via -suffix and -merge: a CI loop
// that reruns the suite under several GOMAXPROCS values converts each pass
// with -suffix "/gomaxprocs=N" (appended to every key) and -merge pointing
// at the artifact built so far, so BENCH_8.json carries every sweep row
// side by side:
//
//	for p in 1 2 4; do
//	    GOMAXPROCS=$p go test -bench ... | \
//	        benchjson -suffix "/gomaxprocs=$p" -merge BENCH_8.json -out BENCH_8.json
//	done
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the artifact layout.
type Doc struct {
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	Package    string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkChain/warm-4   3   12345678 ns/op   123456 B/op   1234 allocs/op
//
// with an optional throughput column (SetBytes benchmarks) between ns/op
// and B/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+[\d.]+ MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var res Result
		var err error
		if res.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q", line)
		}
		if res.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q", line)
		}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		doc.Benchmarks[m[1]] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found")
	}
	return doc, nil
}

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON artifact path (default: stdout)")
	suffix := flag.String("suffix", "", "append to every benchmark key (e.g. /gomaxprocs=2)")
	merge := flag.String("merge", "", "existing artifact to merge into (missing file = start fresh)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	doc, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *suffix != "" {
		suffixed := make(map[string]Result, len(doc.Benchmarks))
		for k, v := range doc.Benchmarks {
			suffixed[k+*suffix] = v
		}
		doc.Benchmarks = suffixed
	}
	if *merge != "" {
		prev, err := os.ReadFile(*merge)
		switch {
		case err == nil:
			var base Doc
			if err := json.Unmarshal(prev, &base); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad merge base %s: %v\n", *merge, err)
				os.Exit(1)
			}
			for k, v := range doc.Benchmarks {
				if base.Benchmarks == nil {
					base.Benchmarks = map[string]Result{}
				}
				base.Benchmarks[k] = v
			}
			// The newest pass wins the environment header fields too.
			base.GOOS, base.GOARCH, base.Package, base.CPU = doc.GOOS, doc.GOARCH, doc.Package, doc.CPU
			doc = &base
		case os.IsNotExist(err):
			// No artifact yet: this pass starts it.
		default:
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
