package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: affidavit
cpu: AMD EPYC 7B13
BenchmarkChain/cold-4                  3     123456789 ns/op    9876543 B/op      1234 allocs/op
BenchmarkChain/warm-4                  3      45678901 ns/op
BenchmarkFigure5Rows/scale100/seq      1    9000000000 ns/op
BenchmarkCSVSourceIngest/streamed-4    3      27485252 ns/op    61.87 MB/s    15608085 B/op    40821 allocs/op
PASS
ok      affidavit       12.3s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Package != "affidavit" {
		t.Errorf("metadata: %+v", doc)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(doc.Benchmarks))
	}
	// A throughput column between ns/op and B/op must not hide the
	// allocation stats.
	streamed := doc.Benchmarks["BenchmarkCSVSourceIngest/streamed"]
	if streamed.BytesPerOp != 15608085 || streamed.AllocsPerOp != 40821 {
		t.Errorf("streamed = %+v", streamed)
	}
	cold := doc.Benchmarks["BenchmarkChain/cold"]
	if cold.Iterations != 3 || cold.NsPerOp != 123456789 || cold.BytesPerOp != 9876543 || cold.AllocsPerOp != 1234 {
		t.Errorf("cold = %+v", cold)
	}
	warm := doc.Benchmarks["BenchmarkChain/warm"]
	if warm.NsPerOp != 45678901 || warm.BytesPerOp != 0 {
		t.Errorf("warm = %+v", warm)
	}
	// The un-suffixed GOMAXPROCS=1 form parses too.
	if _, ok := doc.Benchmarks["BenchmarkFigure5Rows/scale100/seq"]; !ok {
		t.Errorf("missing un-suffixed benchmark: %v", doc.Benchmarks)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("want error on benchless input")
	}
}
