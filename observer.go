package affidavit

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"affidavit/internal/obs"
)

// Event is one pipeline event: snapshot ingest progress, the warm/cold/
// escalated start decision, queue polls, finalisation and conversion phase
// markers, and the final run tallies. Only the fields documented for the
// Kind carry meaning; the rest are zero.
type Event = obs.Event

// EventKind discriminates pipeline events.
type EventKind = obs.Kind

// Event kinds, in pipeline order.
const (
	// EventIngest reports snapshot ingest: Snapshot ("source"/"target"),
	// cumulative Records, and Complete on the final event.
	EventIngest = obs.KindIngest
	// EventSearchStart fires once per run: Mode ("cold"/"warm"/"escalated"),
	// Start strategy, and the deepest StartLevel.
	EventSearchStart = obs.KindSearchStart
	// EventPoll fires per queue extraction: Poll index, state Level/Cost,
	// End on end states.
	EventPoll = obs.KindPoll
	// EventFinalize fires when a cancelled run salvages its best state.
	EventFinalize = obs.KindFinalize
	// EventConvert fires when the end state enters explanation conversion.
	EventConvert = obs.KindConvert
	// EventDone fires once per run: Polls, States, final Cost, Cancelled.
	EventDone = obs.KindDone
	// EventSpill reports out-of-core activity under a memory budget:
	// Component ("ingest"/"blocking"/"convert"), SpillBytes, SpillParts.
	// Ingest spill events fire per snapshot; pipeline spill events fire
	// once per run, aggregated, just before EventDone.
	EventSpill = obs.KindSpill
)

// Observer receives pipeline events from every explanation an Explainer
// (or its Sessions) runs. Within one run, events arrive from a single
// goroutine in deterministic order for a fixed seed — the parallel engine
// reports exactly like the sequential one. Concurrent runs interleave
// their streams, so observers shared across goroutines (servers, batches)
// must be safe for concurrent use. Implementations must be cheap: the
// search calls them synchronously from its poll loop.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// Observers fans every event out to several observers in argument order —
// e.g. a metrics aggregator plus a progress narrator. Nil entries are
// skipped; passing a single observer returns it unwrapped.
func Observers(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return fanout(kept)
}

type fanout []Observer

func (f fanout) Observe(ev Event) {
	for _, o := range f {
		o.Observe(ev)
	}
}

// NewProgressObserver returns an observer that narrates pipeline progress
// as human-readable lines on w — the observer behind the CLIs' -progress
// flag. It is not safe for concurrent runs; use one per explanation stream.
func NewProgressObserver(w io.Writer) Observer {
	return &progressObserver{w: w}
}

type progressObserver struct {
	w io.Writer
}

func (p *progressObserver) Observe(ev Event) {
	switch ev.Kind {
	case EventIngest:
		if ev.Complete {
			fmt.Fprintf(p.w, "ingest %s: %d records\n", ev.Snapshot, ev.Records)
		}
	case EventSearchStart:
		fmt.Fprintf(p.w, "search: %s start (%s), level %d\n", ev.Mode, ev.Start, ev.StartLevel)
	case EventPoll:
		marker := ""
		if ev.End {
			marker = " [end]"
		}
		fmt.Fprintf(p.w, "poll %d: level %d, cost %g%s\n", ev.Poll, ev.Level, ev.Cost, marker)
	case EventFinalize:
		fmt.Fprintf(p.w, "finalize: salvaged level %d, cost %g\n", ev.Level, ev.Cost)
	case EventConvert:
		fmt.Fprintln(p.w, "convert: building explanation")
	case EventSpill:
		scope := ev.Component
		if ev.Snapshot != "" {
			scope += " " + ev.Snapshot
		}
		fmt.Fprintf(p.w, "spill %s: %d bytes, %d partitions\n", scope, ev.SpillBytes, ev.SpillParts)
	case EventDone:
		state := "done"
		if ev.Cancelled {
			state = "cancelled"
		}
		fmt.Fprintf(p.w, "%s: %d polls, %d states costed, cost %g\n",
			state, ev.Polls, ev.States, ev.Cost)
	}
}

// MetricsObserver aggregates pipeline events into Prometheus-style
// counters and serves them in the text exposition format — the observer
// behind affidavitd's /metrics endpoint. It is safe for concurrent use;
// one instance typically watches every explanation a process runs.
//
// Because pipeline events deliberately carry no wall-clock values (the
// event stream is byte-deterministic), duration metrics cannot be derived
// from Observe alone: feed completed run traces to ObserveTrace to
// populate the run/ingest wall-time histograms.
type MetricsObserver struct {
	mu              sync.Mutex
	ingestedRecords map[string]int64 // by snapshot role
	runsStarted     map[string]int64 // by mode: cold/warm/escalated
	runsDone        int64
	runsCancelled   int64
	polls           int64
	statesCosted    int64
	finalizations   int64
	conversions     int64
	costSum         float64
	spillBytes      int64
	spillParts      int64
	runSeconds      histogram
	ingestSeconds   histogram
}

// histogramBounds are the cumulative bucket upper bounds (seconds) of the
// duration histograms — sub-5ms warm hits through multi-minute cold runs.
// numHistogramBuckets must match its length.
var histogramBounds = [numHistogramBuckets]float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

const numHistogramBuckets = 13

// histogram is a fixed-bound Prometheus histogram (guarded by the
// observer's mutex).
type histogram struct {
	counts [numHistogramBuckets]int64 // cumulative per bound; +Inf is count
	sum    float64
	count  int64
}

func (h *histogram) observe(v float64) {
	for i, b := range histogramBounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.count++
}

// NewMetricsObserver returns an empty metrics aggregator.
func NewMetricsObserver() *MetricsObserver {
	return &MetricsObserver{
		ingestedRecords: make(map[string]int64),
		runsStarted:     make(map[string]int64),
	}
}

// ObserveTrace folds a completed run trace into the duration histograms:
// total run wall time and the ingest share. Traces are the recorder
// layer's out-of-band view, which is exactly why this is a separate entry
// point from Observe — the deterministic event stream never carries time.
// Incomplete traces (run still in flight) are ignored.
func (m *MetricsObserver) ObserveTrace(tr *Trace) {
	if tr == nil || !tr.Complete {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runSeconds.observe(tr.DurationMS / 1000)
	if ing := tr.IngestDurationMS(); ing > 0 {
		m.ingestSeconds.observe(ing / 1000)
	}
}

// Observe implements Observer.
func (m *MetricsObserver) Observe(ev Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch ev.Kind {
	case EventIngest:
		// Records is cumulative per snapshot; totals add once, on Complete.
		if ev.Complete {
			m.ingestedRecords[ev.Snapshot] += int64(ev.Records)
		}
	case EventSearchStart:
		m.runsStarted[ev.Mode]++
	case EventPoll:
		m.polls++
	case EventFinalize:
		m.finalizations++
	case EventConvert:
		m.conversions++
	case EventSpill:
		m.spillBytes += ev.SpillBytes
		m.spillParts += ev.SpillParts
	case EventDone:
		m.runsDone++
		if ev.Cancelled {
			m.runsCancelled++
		}
		m.statesCosted += int64(ev.States)
		m.costSum += ev.Cost
	}
}

// WritePrometheus renders the counters in the Prometheus text exposition
// format, with series sorted for deterministic output.
func (m *MetricsObserver) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	labelled := func(name, help, label string, series map[string]int64) {
		p("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p("%s{%s=%q} %d\n", name, label, k, series[k])
		}
	}
	counter := func(name, help string, v int64) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	hist := func(name, help string, h *histogram) {
		p("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for i, b := range histogramBounds {
			p("%s_bucket{le=\"%g\"} %d\n", name, b, h.counts[i])
		}
		p("%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n", name, h.count, name, h.sum, name, h.count)
	}
	labelled("affidavit_ingested_records_total", "Records ingested from snapshot sources.", "snapshot", m.ingestedRecords)
	labelled("affidavit_runs_started_total", "Explanation runs started, by start mode.", "mode", m.runsStarted)
	counter("affidavit_runs_completed_total", "Explanation runs finished.", m.runsDone)
	counter("affidavit_runs_cancelled_total", "Explanation runs interrupted by context.", m.runsCancelled)
	counter("affidavit_search_polls_total", "Search states extracted from the queue.", m.polls)
	counter("affidavit_search_states_costed_total", "Candidate states costed.", m.statesCosted)
	counter("affidavit_finalizations_total", "Best-so-far salvage finalisations.", m.finalizations)
	counter("affidavit_conversions_total", "End-state explanation conversions.", m.conversions)
	counter("affidavit_spill_bytes_total", "Bytes written to spill files under a memory budget.", m.spillBytes)
	counter("affidavit_spill_partitions_total", "External partitions created by out-of-core grouping and matching.", m.spillParts)
	p("# HELP affidavit_explanation_cost_sum Sum of final explanation costs.\n# TYPE affidavit_explanation_cost_sum counter\naffidavit_explanation_cost_sum %g\n", m.costSum)
	hist("affidavit_run_duration_seconds", "Wall-clock duration of completed explanation runs, from traces.", &m.runSeconds)
	hist("affidavit_ingest_duration_seconds", "Wall-clock duration of the ingest phase of traced runs.", &m.ingestSeconds)
	return err
}

// SpillTotals returns the aggregated out-of-core volume the observer has
// seen: bytes written to spill files and external partitions created.
func (m *MetricsObserver) SpillTotals() (bytes, partitions int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spillBytes, m.spillParts
}

// ServeHTTP serves the metrics, so a MetricsObserver can be mounted
// directly as a /metrics handler.
func (m *MetricsObserver) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := m.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
