package affidavit

import (
	"context"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/obs"
	"affidavit/internal/session"
	"affidavit/internal/trace"
)

// Pair is one source/target snapshot pair of a batch explanation.
type Pair struct {
	Source, Target *Table
}

// Session is a long-lived explanation context for snapshot chains and
// batches. Where Explain treats every pair in isolation, a session keeps a
// shared dictionary pool — values interned while explaining snapshot n keep
// their codes when snapshot n+1 arrives, so only novel values pay interning
// cost — and warm-starts each chain run with the previous explanation,
// re-validated and re-costed against the new pair, so recurring
// transformation patterns are confirmed in a handful of queue polls instead
// of re-discovered from scratch.
//
// Sessions are safe for concurrent use. ExplainPair and ExplainBatch
// results are identical to cold Explain runs with the same options and
// seed — the shared pool only changes the interning work. The warm paths
// (ExplainNext, ExplainWarm) run the search in incremental mode: on a
// recurring pattern they converge to the same explanation with a fraction
// of the effort, but they anchor on the previous structure, so when the
// feed's pattern changes the result — always a valid explanation — may
// differ from a cold run's. Use Explain (or ExplainPair) when cold-search
// behaviour is required, or arm Options.WarmGuard to have stale warm seeds
// escalate to a cold search automatically.
//
// Every method has a Context form (ExplainNextContext and friends) that
// honours cancellation and deadlines: an interrupted run still returns a
// valid best-so-far result with Stats.Cancelled set, and the session skips
// storing an interrupted run's tuple as the next warm seed. The plain
// forms are the Context forms under context.Background().
type Session struct {
	inner   *session.Session
	alpha   float64
	workers int
	tracing bool // from the parent Explainer's WithTracing
}

// traceRun mirrors Explainer.traceRun for session runs: when the parent
// Explainer was built WithTracing, each single-pair run gets a fresh
// recorder on its context (batch runs interleave pairs on one context and
// are deliberately not traced).
func (s *Session) traceRun(ctx context.Context) (context.Context, *trace.Recorder) {
	if !s.tracing {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rec := trace.NewRecorder(trace.NewID())
	return obs.ContextWithSink(ctx, rec.Observe), rec
}

// NewSession creates a session. initial, when non-nil, is the chain
// baseline: the first ExplainNext call diffs it against its argument. A nil
// initial starts a batch/service session — ExplainPair, ExplainWarm and
// ExplainBatch work immediately, while ExplainNext errors until a baseline
// exists (ExplainWarm sets one).
func NewSession(initial *Table, opts Options) *Session {
	e := &Explainer{
		so:    opts.toSearch(),
		metas: append(metafunc.DefaultMetas(), opts.ExtraMetas...),
	}
	return e.Session(initial)
}

// ExplainNext explains the difference between the chain head and next,
// advances the chain head to next, and stores the learned functions as the
// warm start of the following call. Chains are deterministic for fixed
// seeds: re-running the same chain reproduces every explanation and every
// search statistic.
func (s *Session) ExplainNext(next *Table) (*Result, error) {
	return s.ExplainNextContext(context.Background(), next)
}

// ExplainNextContext is ExplainNext under ctx: cancellation and deadlines
// interrupt the search cooperatively, returning the best-so-far result
// with Stats.Cancelled set.
func (s *Session) ExplainNextContext(ctx context.Context, next *Table) (*Result, error) {
	ctx, rec := s.traceRun(ctx)
	res, err := s.inner.ExplainNext(ctx, next)
	if err != nil {
		return nil, err
	}
	return s.traced(s.result(res.Explanation, res.Cost, res.Stats), rec), nil
}

// ExplainPair explains one pair over the session's shared dictionary pool
// without touching the chain state. Safe to call concurrently.
func (s *Session) ExplainPair(source, target *Table) (*Result, error) {
	return s.ExplainPairContext(context.Background(), source, target)
}

// ExplainPairContext is ExplainPair under ctx.
func (s *Session) ExplainPairContext(ctx context.Context, source, target *Table) (*Result, error) {
	ctx, rec := s.traceRun(ctx)
	res, err := s.inner.ExplainPair(ctx, source, target)
	if err != nil {
		return nil, err
	}
	return s.traced(s.result(res.Explanation, res.Cost, res.Stats), rec), nil
}

// ExplainWarm explains one pair over the shared pool, warm-started with the
// session's most recent explanation of the same schema, and stores the
// learned functions for the next call — the service-shaped variant of
// ExplainNext for repeated uploads of the same table. Concurrent calls are
// race-clean; the stored warm tuple is last-writer-wins, which affects only
// search effort, never the explanation.
func (s *Session) ExplainWarm(source, target *Table) (*Result, error) {
	return s.ExplainWarmContext(context.Background(), source, target)
}

// ExplainWarmContext is ExplainWarm under ctx.
func (s *Session) ExplainWarmContext(ctx context.Context, source, target *Table) (*Result, error) {
	ctx, rec := s.traceRun(ctx)
	res, err := s.inner.ExplainWarm(ctx, source, target)
	if err != nil {
		return nil, err
	}
	return s.traced(s.result(res.Explanation, res.Cost, res.Stats), rec), nil
}

// ExplainBatch explains every pair over the shared dictionary pool, fanning
// out across the session's configured Workers (at most one goroutine per
// pair; Workers ≤ 1 runs sequentially). Results arrive in input order and
// equal per-pair cold runs. Failed pairs leave nil entries; the returned
// error joins every failure.
func (s *Session) ExplainBatch(pairs []Pair) ([]*Result, error) {
	return s.ExplainBatchContext(context.Background(), pairs)
}

// ExplainBatchContext is ExplainBatch under ctx: cancelling ctx interrupts
// every in-flight pair, each returning its best-so-far result with
// Stats.Cancelled set.
func (s *Session) ExplainBatchContext(ctx context.Context, pairs []Pair) ([]*Result, error) {
	inner := make([]session.Pair, len(pairs))
	for i, p := range pairs {
		inner[i] = session.Pair{Source: p.Source, Target: p.Target}
	}
	workers := s.workers
	if workers < 1 {
		workers = 1
	}
	raw, err := s.inner.ExplainBatch(ctx, inner, workers)
	out := make([]*Result, len(raw))
	for i, r := range raw {
		if r != nil {
			out[i] = s.result(r.Explanation, r.Cost, r.Stats)
		}
	}
	return out, err
}

// PoolStats reports the shared dictionary pool's size: the number of
// attribute dictionaries and the total interned values across them.
func (s *Session) PoolStats() (attrs, values int) {
	return s.inner.Pool().Attrs(), s.inner.Pool().Values()
}

// Runs returns how many explanations the session has produced.
func (s *Session) Runs() int { return s.inner.Runs() }

// traced attaches the recorder's finished trace, if any.
func (s *Session) traced(res *Result, rec *trace.Recorder) *Result {
	if rec != nil {
		res.Trace = rec.Trace()
	}
	return res
}

func (s *Session) result(expl *Explanation, cost float64, stats Stats) *Result {
	cm := delta.CostModel{Alpha: s.alpha}
	return &Result{
		Explanation: expl,
		Cost:        cost,
		TrivialCost: cm.Cost(delta.Trivial(expl.Inst)),
		Stats:       stats,
		alpha:       s.alpha,
	}
}
