package affidavit_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"affidavit"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestResultJSONGolden pins the stable encoding shared by cmd/affidavit
// -json and affidavitd's /explain responses: field order, stats subset,
// and the guarded compression ratio must not drift. Regenerate with
// `go test -run TestResultJSONGolden -update .` after an intentional
// change.
func TestResultJSONGolden(t *testing.T) {
	src, tgt := figure1Tables(t)
	opts := affidavit.DefaultOptions()
	opts.Seed = 1
	res, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.JSON("accounts")
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "result_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got)+"\n" != string(want) {
		t.Errorf("JSON drifted from golden:\n%s\nwant:\n%s", got, want)
	}

	// Structural invariants independent of the golden bytes.
	var decoded affidavit.JSONResult
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Table != "accounts" || decoded.SQL == "" {
		t.Error("table name or SQL script missing")
	}
	if decoded.Compression == 0 || decoded.Compression != decoded.Cost/decoded.TrivialCost {
		t.Errorf("compression = %v, want cost/trivial", decoded.Compression)
	}
	if decoded.Stats.Polls != res.Stats.Polls || decoded.Stats.StatesGenerated != res.Stats.StatesGenerated {
		t.Error("stats subset does not match the run")
	}

	// Without a table name, the table and SQL fields are omitted entirely.
	bare, err := res.JSON("")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(bare, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["table"]; ok {
		t.Error("empty table name still encoded")
	}
	if _, ok := m["sql"]; ok {
		t.Error("SQL emitted without a table name")
	}
}

// TestResultJSONDeterministic: equal runs encode byte-identically.
func TestResultJSONDeterministic(t *testing.T) {
	src, tgt := figure1Tables(t)
	opts := affidavit.DefaultOptions()
	opts.Seed = 1
	a, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := affidavit.Explain(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON("t")
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON("t")
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Error("equal runs encoded differently")
	}
}
