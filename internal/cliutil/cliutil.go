// Package cliutil is the one shared configuration path of the cmds: every
// CLI registers the same search flags here and turns them into either an
// affidavit.Explainer (functional options) or a raw search.Options (for
// the internal eval drivers) — so flag names, defaults, zero-value
// semantics and the -progress observer cannot drift between binaries.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux's profiling handlers
	"os"
	"runtime"
	"strings"
	"sync"

	"affidavit"
	"affidavit/internal/obs"
	"affidavit/internal/search"
	"affidavit/internal/spill"
)

// Flags holds the registered flag values. Zero int/float flags mean "the
// configuration default", matching the historical cmd behaviour.
type Flags struct {
	Start     *string
	Alpha     *float64
	Beta      *int
	Rho       *int
	Theta     *float64
	Conf      *float64
	MaxBlock  *int
	Seed      *int64
	Workers   *int
	Progress  *bool
	MemBudget *string
}

// Defaults parameterises per-cmd flag defaults.
type Defaults struct {
	Seed int64
}

// Register installs the shared search flags on fs.
func Register(fs *flag.FlagSet, d Defaults) *Flags {
	return &Flags{
		Start:     fs.String("start", "hid", "start strategy: hid | hs | empty"),
		Alpha:     fs.Float64("alpha", 0.5, "cost parameter α in [0,1]"),
		Beta:      fs.Int("beta", 0, "branching factor β (0 = config default)"),
		Rho:       fs.Int("rho", 0, "queue width ϱ (0 = config default)"),
		Theta:     fs.Float64("theta", 0.1, "estimated effect fraction θ"),
		Conf:      fs.Float64("conf", 0.95, "sampling confidence ρ"),
		MaxBlock:  fs.Int("max-block", 100000, "overlap-matching block threshold (hs)"),
		Seed:      fs.Int64("seed", d.Seed, "random seed (equal seeds give equal explanations)"),
		Workers:   fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent search probes (1 = sequential engine)"),
		Progress:  fs.Bool("progress", false, "narrate pipeline progress (ingest, polls, phases) on stderr"),
		MemBudget: fs.String("mem-budget", "", "approximate per-run memory budget, e.g. 256MiB (empty = unlimited); beyond it cold column chunks, blocking group tables and the conversion's key maps spill to temp files — explanations are byte-identical, only peak memory changes"),
	}
}

// Diag holds the shared diagnostics flags. They live in their own struct
// (and RegisterDiag call) rather than in Flags because affidavitd defines
// its own -pprof flag; only the one-shot CLIs register these.
type Diag struct {
	TraceOut *string
	Pprof    *string
}

// RegisterDiag installs the shared diagnostics flags on fs.
func RegisterDiag(fs *flag.FlagSet) *Diag {
	return &Diag{
		TraceOut: fs.String("trace-out", "", "append each run's structured trace (stage wall-clock spans, poll cost curve, spill totals) as a JSON line to this file"),
		Pprof:    fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the process lifetime"),
	}
}

// StartPprof starts the profiling listener when -pprof was set. Listener
// failures are reported on stderr; they never stop the run itself.
func (d *Diag) StartPprof() {
	addr := *d.Pprof
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "pprof:", err)
		}
	}()
}

// OpenTraceLog opens the -trace-out sink, or returns nil when the flag is
// unset. The nil TraceLog is a valid no-op receiver, so call sites need no
// conditionals.
func (d *Diag) OpenTraceLog() (*TraceLog, error) {
	if *d.TraceOut == "" {
		return nil, nil
	}
	f, err := os.OpenFile(*d.TraceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("-trace-out: %w", err)
	}
	return &TraceLog{f: f, enc: json.NewEncoder(f)}, nil
}

// TraceLog appends structured run traces to a file, one JSON object per
// line. Safe for concurrent appends; a nil *TraceLog is a no-op.
type TraceLog struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// Append writes one trace as a JSONL line. Nil receivers and nil traces
// are no-ops.
func (l *TraceLog) Append(tr *affidavit.Trace) error {
	if l == nil || tr == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Encode(tr)
}

// Close flushes and closes the log file.
func (l *TraceLog) Close() error {
	if l == nil {
		return nil
	}
	return l.f.Close()
}

// WireSearch chains a trace collector after so.OnEvent: every run flowing
// through the options gets its event stream folded into a trace and
// appended to the log. Append failures surface once on stderr rather than
// aborting an otherwise-healthy sweep.
func (l *TraceLog) WireSearch(so *search.Options) {
	if l == nil {
		return
	}
	collector := affidavit.NewTraceCollector(func(tr *affidavit.Trace) {
		if err := l.Append(tr); err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
		}
	})
	so.OnEvent = obs.Chain(so.OnEvent, collector.Observe)
}

// memBudget parses the -mem-budget flag (0 when unset).
func (f *Flags) memBudget() (int64, error) {
	n, err := spill.ParseSize(*f.MemBudget)
	if err != nil {
		return 0, fmt.Errorf("-mem-budget: %w", err)
	}
	return n, nil
}

// ProgressObserver returns the stderr narrator when -progress was set,
// nil otherwise. Callers compose it with their own observers (e.g.
// affidavit.Observers(metrics, flags.ProgressObserver())).
func (f *Flags) ProgressObserver() affidavit.Observer {
	if !*f.Progress {
		return nil
	}
	return affidavit.NewProgressObserver(os.Stderr)
}

// Options turns the parsed flags into functional options for affidavit.New,
// appending any extra options after the flag-derived ones (so callers can
// override). Observers are deliberately NOT included — each cmd composes
// its own (ProgressObserver, metrics, …) and attaches them via
// affidavit.WithObserver, so a later option can never silently drop one.
func (f *Flags) Options(extra ...affidavit.Option) ([]affidavit.Option, error) {
	opts := []affidavit.Option{}
	switch strings.ToLower(*f.Start) {
	case "hid":
		opts = append(opts, affidavit.WithStart(affidavit.StartID))
	case "hs":
		opts = append(opts, affidavit.WithOverlapConfig())
	case "empty":
		opts = append(opts, affidavit.WithStart(affidavit.StartEmpty))
	default:
		return nil, fmt.Errorf("unknown start strategy %q", *f.Start)
	}
	opts = append(opts,
		affidavit.WithAlpha(*f.Alpha),
		affidavit.WithTheta(*f.Theta),
		affidavit.WithRho(*f.Conf),
		affidavit.WithMaxBlockSize(*f.MaxBlock),
		affidavit.WithSeed(*f.Seed),
		affidavit.WithWorkers(*f.Workers),
	)
	if budget, err := f.memBudget(); err != nil {
		return nil, err
	} else if budget > 0 {
		opts = append(opts, affidavit.WithMemBudget(budget))
	}
	if *f.Beta > 0 {
		opts = append(opts, affidavit.WithBeta(*f.Beta))
	}
	if *f.Rho > 0 {
		opts = append(opts, affidavit.WithQueueWidth(*f.Rho))
	}
	return append(opts, extra...), nil
}

// Explainer builds the Explainer the flags describe.
func (f *Flags) Explainer(extra ...affidavit.Option) (*affidavit.Explainer, error) {
	opts, err := f.Options(extra...)
	if err != nil {
		return nil, err
	}
	return affidavit.New(opts...)
}

// SearchOptions turns the parsed flags into a search.Options for the
// internal eval drivers (rowscale, attrscale), including the -progress
// event sink. It applies the same start-strategy mapping as Options.
func (f *Flags) SearchOptions() (search.Options, error) {
	var so search.Options
	switch strings.ToLower(*f.Start) {
	case "hid":
		so = search.DefaultOptions()
	case "hs":
		so = search.OverlapOptions()
	case "empty":
		so = search.DefaultOptions()
		so.Start = search.StartEmpty
	default:
		return so, fmt.Errorf("unknown start strategy %q", *f.Start)
	}
	so.Alpha = *f.Alpha
	if *f.Beta > 0 {
		so.Beta = *f.Beta
	}
	if *f.Rho > 0 {
		so.QueueWidth = *f.Rho
	}
	so.Induce.Theta = *f.Theta
	so.Induce.Rho = *f.Conf
	so.MaxBlockSize = *f.MaxBlock
	so.Seed = *f.Seed
	so.Workers = *f.Workers
	if budget, err := f.memBudget(); err != nil {
		return so, err
	} else if budget > 0 {
		so.Spill = spill.NewManager(budget, "")
	}
	if o := f.ProgressObserver(); o != nil {
		so.OnEvent = o.Observe
	}
	return so, nil
}
