package report_test

import (
	"encoding/json"
	"testing"

	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/report"
)

func TestToJSON(t *testing.T) {
	e := fixture.ReferenceExplanation()
	j := report.ToJSON(e, delta.DefaultCosts)
	if len(j.Schema) != 7 || j.Schema[4] != "Val" {
		t.Errorf("schema = %v", j.Schema)
	}
	if j.Cost != fixture.ReferenceCost || j.Alpha != 0.5 {
		t.Errorf("cost/alpha = %v/%v", j.Cost, j.Alpha)
	}
	if len(j.Core) != 13 || len(j.Deleted) != 4 || len(j.Inserted) != 3 {
		t.Errorf("shape: core=%d del=%d ins=%d", len(j.Core), len(j.Deleted), len(j.Inserted))
	}
	kinds := map[string]string{}
	for _, f := range j.Functions {
		kinds[f.Attribute] = f.Kind
	}
	want := map[string]string{
		"ID1": "value-mapping", "ID2": "value-mapping", "Date": "prefix-replace",
		"Type": "identity", "Val": "scaling", "Unit": "constant", "Org": "identity",
	}
	for attr, kind := range want {
		if kinds[attr] != kind {
			t.Errorf("%s kind = %q, want %q", attr, kinds[attr], kind)
		}
	}
	// Value mappings carry their entries.
	for _, f := range j.Functions {
		if f.Kind == "value-mapping" && len(f.Mapping) != 13 {
			t.Errorf("%s mapping entries = %d, want 13", f.Attribute, len(f.Mapping))
		}
		if f.Kind != "value-mapping" && f.Mapping != nil {
			t.Errorf("%s should not carry mapping entries", f.Attribute)
		}
	}
}

func TestMarshalJSONRoundTrip(t *testing.T) {
	e := fixture.ReferenceExplanation()
	raw, err := report.MarshalJSON(e, delta.DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	var back report.JSONExplanation
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cost != fixture.ReferenceCost || len(back.Functions) != 7 {
		t.Errorf("round trip lost data: %+v", back)
	}
	// The alignment must survive: F(core.S) = target[core.T] was validated
	// upstream; here indices must stay in range.
	for _, p := range back.Core {
		if p.S < 0 || p.S >= 17 || p.T < 0 || p.T >= 16 {
			t.Errorf("pair out of range: %+v", p)
		}
	}
}
