package report_test

import (
	"strings"
	"testing"

	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/report"
)

func TestTextReport(t *testing.T) {
	e := fixture.ReferenceExplanation()
	out := report.Text(e, delta.DefaultCosts)
	for _, want := range []string{
		"core (aligned): 13",
		"deleted: 4",
		"inserted: 3",
		"cost: 77",
		"Val",
		"x ↦ x / 1000",
		"k $",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTextReportElidesLongLists(t *testing.T) {
	inst := fixture.Instance()
	e := delta.Trivial(inst) // 17 deleted, 16 inserted
	out := report.Text(e, delta.DefaultCosts)
	if !strings.Contains(out, "more") {
		t.Error("long record lists should be elided")
	}
}

func TestDiffView(t *testing.T) {
	e := fixture.ReferenceExplanation()
	out := report.Diff(e, 2)
	if !strings.Contains(out, "↦") || !strings.Contains(out, "more aligned records") {
		t.Errorf("diff view malformed:\n%s", out)
	}
	// Changed cells are starred; unchanged are not. Type never changes.
	if strings.Contains(out, "* Type") {
		t.Error("unchanged Type cell marked as changed")
	}
	if !strings.Contains(out, "* Val") {
		t.Error("changed Val cell not marked")
	}
	full := report.Diff(e, 0)
	if strings.Contains(full, "more aligned records") {
		t.Error("limit 0 should render everything")
	}
}

func TestSQLScript(t *testing.T) {
	e := fixture.ReferenceExplanation()
	out := report.SQL(e, "erp_values")
	for _, want := range []string{
		"BEGIN;",
		"COMMIT;",
		`UPDATE "erp_values" SET "Val" = CAST("Val" AS DECIMAL) * 0.001;`,
		`UPDATE "erp_values" SET "Unit" = 'k $';`,
		`CASE WHEN "Date" LIKE '9999123%' THEN '2018070' || SUBSTR("Date", 8) ELSE "Date" END`,
		"DELETE FROM",
		"INSERT INTO",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sql script missing %q:\n%s", want, out)
		}
	}
	// Identity attributes produce no UPDATE.
	if strings.Contains(out, `SET "Type"`) || strings.Contains(out, `SET "Org"`) {
		t.Error("identity attribute updated")
	}
	// 4 deletes, 3 inserts.
	if got := strings.Count(out, "DELETE FROM"); got != 4 {
		t.Errorf("DELETE count = %d, want 4", got)
	}
	if got := strings.Count(out, "INSERT INTO"); got != 3 {
		t.Errorf("INSERT count = %d, want 3", got)
	}
}

func TestSQLEscaping(t *testing.T) {
	e := fixture.ReferenceExplanation()
	out := report.SQL(e, `evil"table'`)
	if !strings.Contains(out, `"evil""table'"`) {
		t.Errorf("identifier not escaped:\n%s", out[:200])
	}
}
