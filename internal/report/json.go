package report

import (
	"encoding/json"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
)

// JSONExplanation is the machine-readable form of an explanation, stable
// enough for downstream tooling: per-attribute function descriptors, the
// core alignment as index pairs, and the deleted/inserted record indices.
type JSONExplanation struct {
	Schema    []string       `json:"schema"`
	Functions []JSONFunction `json:"functions"`
	Core      []JSONPair     `json:"core"`
	Deleted   []int          `json:"deleted"`
	Inserted  []int          `json:"inserted"`
	Cost      float64        `json:"cost"`
	Alpha     float64        `json:"alpha"`
}

// JSONFunction describes one attribute function.
type JSONFunction struct {
	Attribute string `json:"attribute"`
	Kind      string `json:"kind"`
	Display   string `json:"display"`
	Psi       int    `json:"psi"`
	// Mapping carries the explicit entries for value mappings.
	Mapping [][2]string `json:"mapping,omitempty"`
}

// JSONPair aligns source record index S with target record index T.
type JSONPair struct {
	S int `json:"s"`
	T int `json:"t"`
}

// ToJSON converts an explanation for serialisation.
func ToJSON(e *delta.Explanation, cm delta.CostModel) JSONExplanation {
	out := JSONExplanation{
		Schema:   e.Inst.Schema().Attrs(),
		Deleted:  append([]int{}, e.Deleted...),
		Inserted: append([]int{}, e.Inserted...),
		Cost:     cm.Cost(e),
		Alpha:    cm.Alpha,
	}
	for a, f := range e.Funcs {
		jf := JSONFunction{
			Attribute: e.Inst.Schema().Attr(a),
			Kind:      kindOf(f),
			Display:   f.String(),
			Psi:       f.Params(),
		}
		if m, ok := f.(*metafunc.Mapping); ok {
			jf.Mapping = m.Entries()
		}
		out.Functions = append(out.Functions, jf)
	}
	for i := range e.CoreSrc {
		out.Core = append(out.Core, JSONPair{S: e.CoreSrc[i], T: e.CoreTgt[i]})
	}
	return out
}

// MarshalJSON renders an explanation as indented JSON.
func MarshalJSON(e *delta.Explanation, cm delta.CostModel) ([]byte, error) {
	return json.MarshalIndent(ToJSON(e, cm), "", "  ")
}

func kindOf(f metafunc.Func) string {
	switch f.(type) {
	case metafunc.Identity:
		return "identity"
	case metafunc.Upper:
		return "uppercase"
	case metafunc.Lower:
		return "lowercase"
	case metafunc.Constant:
		return "constant"
	case metafunc.Add:
		return "addition"
	case metafunc.Scale:
		return "scaling"
	case metafunc.FrontMask:
		return "front-mask"
	case metafunc.BackMask:
		return "back-mask"
	case metafunc.FrontTrim:
		return "front-trim"
	case metafunc.BackTrim:
		return "back-trim"
	case metafunc.Prefix:
		return "prefix"
	case metafunc.Suffix:
		return "suffix"
	case metafunc.PrefixReplace:
		return "prefix-replace"
	case metafunc.SuffixReplace:
		return "suffix-replace"
	case metafunc.DateConvert:
		return "date-convert"
	case *metafunc.Mapping:
		return "value-mapping"
	case metafunc.Negation:
		return "negation"
	}
	return "custom"
}
