// Package gen implements the synthetic problem-instance generator of
// Section 5.1: starting from a dataset table, it drops over-distinct and
// empty attributes, appends an artificial permuted primary key, samples
// per-attribute transformation functions (respecting attribute domains,
// with value mappings as random permutations), splits the records into core
// and per-side noise according to the noise percentage η, and emits the two
// snapshots together with the reference explanation used for scoring.
package gen

import (
	"fmt"
	"math/rand"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/spill"
	"affidavit/internal/table"
)

// Setting is one difficulty setting (η, τ) from Table 2.
type Setting struct {
	// Eta is the noise percentage η: the fraction of each snapshot made up
	// of deleted/inserted records.
	Eta float64
	// Tau is the transformation percentage τ: the per-attribute likelihood
	// of sampling a non-identity function.
	Tau float64
}

// Settings returns the paper's three evaluation settings.
func Settings() []Setting {
	return []Setting{{0.3, 0.3}, {0.5, 0.5}, {0.7, 0.7}}
}

func (s Setting) String() string {
	return fmt.Sprintf("η=%g,τ=%g", s.Eta, s.Tau)
}

// Config controls generation.
type Config struct {
	Setting
	Seed int64
	// MaxDistinctRatio drops attributes whose distinct-value ratio exceeds
	// it before generation (Section 5.1 uses 0.7). Default 0.7.
	MaxDistinctRatio float64
	// KeyAttr names the artificial primary-key attribute. Default "rid".
	KeyAttr string
	// Spill, when active, builds the snapshots under its memory budget:
	// the generated tables page cold code chunks to the manager's temp
	// file, so full-size Figure 5 instances materialise without holding
	// both snapshots' columns resident. Generated values are identical.
	Spill *spill.Manager
}

// Problem is a generated instance plus its ground truth.
type Problem struct {
	Inst *delta.Instance
	// Reference is E_ref: the explanation that reproduces exactly the
	// generation (core alignment, sampled functions, noise as
	// deleted/inserted).
	Reference *delta.Explanation
	// KeyAttr is the schema position of the artificial primary key.
	KeyAttr int
	// blueprint supports Scale (Figure 5).
	bp *blueprint
}

// blueprint references the filtered dataset by record index instead of
// materialising row tuples: core and noise sets are index slices, and
// realize streams the snapshots straight into columnar builders. A 500k-row
// problem therefore costs the (interned) dataset plus index arrays, never a
// [][]string copy of every split.
type blueprint struct {
	filtered *table.Table // post-filter, pre-key
	core     []int32      // filtered-record indices
	srcNoise []int32
	tgtNoise []int32
	funcs    []sampledFunc // one per data attribute
	cfg      Config
}

func (bp *blueprint) schema() *table.Schema { return bp.filtered.Schema() }

// sampledFunc is either a concrete function or a value-mapping permutation
// (kept as a permutation so Scale can re-derive pruned mappings).
type sampledFunc struct {
	f    metafunc.Func     // nil when perm != nil
	perm map[string]string // value permutation for mapping attributes
}

func (sf sampledFunc) build(liveValues map[string]bool) metafunc.Func {
	if sf.perm == nil {
		return sf.f
	}
	pruned := make(map[string]string, len(sf.perm))
	for k, v := range sf.perm {
		if liveValues == nil || liveValues[k] {
			pruned[k] = v
		}
	}
	return metafunc.NewMapping(pruned)
}

// Generate builds a problem instance from a dataset per Section 5.1.
func Generate(dataset *table.Table, cfg Config) (*Problem, error) {
	if cfg.MaxDistinctRatio == 0 {
		cfg.MaxDistinctRatio = 0.7
	}
	if cfg.KeyAttr == "" {
		cfg.KeyAttr = "rid"
	}
	if cfg.Eta < 0 || cfg.Eta >= 1 {
		return nil, fmt.Errorf("gen: η must be in [0,1), got %v", cfg.Eta)
	}
	if cfg.Tau < 0 || cfg.Tau > 1 {
		return nil, fmt.Errorf("gen: τ must be in [0,1], got %v", cfg.Tau)
	}
	if dataset.Len() < 4 {
		return nil, fmt.Errorf("gen: dataset too small (%d records)", dataset.Len())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Drop empty and over-distinct attributes.
	drop := map[int]bool{}
	for a := 0; a < dataset.Schema().Len(); a++ {
		st := dataset.Stats(a)
		if st.NonEmpty == 0 || st.DistinctRatio > cfg.MaxDistinctRatio {
			drop[a] = true
		}
	}
	filtered := dataset
	if len(drop) > 0 {
		filtered = dataset.DropAttrs(drop)
	}
	if filtered.Schema().Len() == 0 {
		return nil, fmt.Errorf("gen: all attributes dropped by the distinct-ratio filter")
	}
	if filtered.Schema().Index(cfg.KeyAttr) >= 0 {
		return nil, fmt.Errorf("gen: dataset already has attribute %q", cfg.KeyAttr)
	}

	// Split into core and noise: each snapshot is a 1/(η+1) fraction of the
	// dataset, with η of each snapshot being noise.
	n := filtered.Len()
	noisePerSide := int(float64(n) * cfg.Eta / (1 + cfg.Eta))
	core := n - 2*noisePerSide
	if core < 1 {
		return nil, fmt.Errorf("gen: η=%v leaves no core records", cfg.Eta)
	}
	perm := rng.Perm(n)
	idx := func(part []int) []int32 {
		out := make([]int32, len(part))
		for i, j := range part {
			out[i] = int32(j)
		}
		return out
	}
	bp := &blueprint{
		filtered: filtered,
		core:     idx(perm[:core]),
		srcNoise: idx(perm[core : core+noisePerSide]),
		tgtNoise: idx(perm[core+noisePerSide:]),
		cfg:      cfg,
	}

	// Sample per-attribute functions, rejecting all-transformed draws.
	d := filtered.Schema().Len()
	for tries := 0; ; tries++ {
		bp.funcs = make([]sampledFunc, d)
		transformed := 0
		for a := 0; a < d; a++ {
			if rng.Float64() < cfg.Tau {
				bp.funcs[a] = sampleFunc(filtered, a, rng)
				transformed++
			} else {
				bp.funcs[a] = sampledFunc{f: metafunc.Identity{}}
			}
		}
		if transformed < d {
			break
		}
		if tries > 1000 {
			return nil, fmt.Errorf("gen: could not sample a non-total transformation")
		}
	}
	return bp.realize(rng)
}

// realize builds snapshots, instance and reference explanation from a
// blueprint. Snapshots are streamed position by position into columnar
// builders (optionally spilling under cfg.Spill) — record values are
// decoded from the filtered dataset on the fly, so no row-tuple copy of
// either snapshot ever exists.
func (bp *blueprint) realize(rng *rand.Rand) (*Problem, error) {
	d := bp.schema().Len()
	nCore := len(bp.core)
	nSrc := nCore + len(bp.srcNoise)
	nTgt := nCore + len(bp.tgtNoise)

	// Concrete functions, with value-mapping permutations restricted to the
	// values that actually occur in this realisation.
	funcs := make(delta.FuncTuple, d, d+1)
	for a := 0; a < d; a++ {
		if bp.funcs[a].perm == nil {
			funcs[a] = bp.funcs[a].f
			continue
		}
		live := map[string]bool{}
		for _, idx := range [][]int32{bp.core, bp.srcNoise, bp.tgtNoise} {
			for _, j := range idx {
				live[bp.filtered.Value(int(j), a)] = true
			}
		}
		funcs[a] = bp.funcs[a].build(live)
	}

	// Artificial key: running integers, permuted independently per side.
	srcKeys := rng.Perm(nSrc)
	tgtKeys := rng.Perm(nTgt)
	key := func(k int) string { return fmt.Sprintf("%d", k) }

	// Source order and target order are shuffled independently so record
	// positions carry no signal.
	srcOrder := rng.Perm(nSrc)
	tgtOrder := rng.Perm(nTgt)
	srcPosOf := make([]int, nSrc) // logical row → position in snapshot
	for pos, logical := range srcOrder {
		srcPosOf[logical] = pos
	}
	tgtPosOf := make([]int, nTgt)
	for pos, logical := range tgtOrder {
		tgtPosOf[logical] = pos
	}

	schema, err := bp.schema().WithAttr(bp.cfg.KeyAttr)
	if err != nil {
		return nil, err
	}
	keyMap := make(map[string]string, nCore)
	for i := 0; i < nCore; i++ {
		keyMap[key(srcKeys[i])] = key(tgtKeys[i])
	}
	// Logical source rows: core 0..c-1, then source noise. Logical target
	// rows: core images 0..c-1, then transformed target noise. Each
	// snapshot is appended in *position* order, decoding the underlying
	// filtered record (and applying the tuple, on the target side) as it
	// goes. Both snapshots intern into one shared dictionary set that then
	// seeds the instance, so Coded() reuses the stored codes instead of
	// re-interning 2·|S| records — nothing downstream depends on numeric
	// code order, so explanations are unaffected.
	shared := make([]*table.Dict, schema.Len())
	for a := range shared {
		shared[a] = table.NewDict()
	}
	build := func(n int, order []int, emit func(rec table.Record, logical int)) (*table.Table, error) {
		b, err := table.NewBuilder(schema, shared)
		if err != nil {
			return nil, err
		}
		if bp.cfg.Spill.Active() {
			b = b.WithSpill(bp.cfg.Spill, nil)
		}
		rec := make(table.Record, d+1)
		for pos := 0; pos < n; pos++ {
			emit(rec, order[pos])
			if err := b.Append(rec); err != nil {
				return nil, err
			}
		}
		return b.Table(), nil
	}
	src, err := build(nSrc, srcOrder, func(rec table.Record, logical int) {
		base := bp.core
		i := logical
		if logical >= nCore {
			base, i = bp.srcNoise, logical-nCore
		}
		for a := 0; a < d; a++ {
			rec[a] = bp.filtered.Value(int(base[i]), a)
		}
		rec[d] = key(srcKeys[logical])
	})
	if err != nil {
		return nil, err
	}
	tgt, err := build(nTgt, tgtOrder, func(rec table.Record, logical int) {
		base := bp.core
		i := logical
		if logical >= nCore {
			base, i = bp.tgtNoise, logical-nCore
		}
		for a := 0; a < d; a++ {
			rec[a] = funcs[a].Apply(bp.filtered.Value(int(base[i]), a))
		}
		rec[d] = key(tgtKeys[logical])
	})
	if err != nil {
		return nil, err
	}
	inst, err := delta.NewInstanceWithDicts(src, tgt, nil, shared)
	if err != nil {
		return nil, err
	}

	// Reference explanation with the explicit core alignment.
	refFuncs := append(funcs, metafunc.NewMapping(keyMap))
	ref := &delta.Explanation{Inst: inst, Funcs: refFuncs}
	for i := range bp.core {
		ref.CoreSrc = append(ref.CoreSrc, srcPosOf[i])
		ref.CoreTgt = append(ref.CoreTgt, tgtPosOf[i])
	}
	for i := range bp.srcNoise {
		ref.Deleted = append(ref.Deleted, srcPosOf[len(bp.core)+i])
	}
	for i := range bp.tgtNoise {
		ref.Inserted = append(ref.Inserted, tgtPosOf[len(bp.core)+i])
	}
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("gen: reference explanation invalid: %w", err)
	}
	return &Problem{
		Inst:      inst,
		Reference: ref,
		KeyAttr:   schema.Len() - 1,
		bp:        bp,
	}, nil
}

// Scale rebuilds the problem at a fraction of its size (Figure 5): frac of
// the core and frac of each noise set survive, the sampled transformations
// stay fixed, and value-mapping entries over vanished values are pruned so
// the reference cost is not inflated (Section 5.4.1).
func (p *Problem) Scale(frac float64, seed int64) (*Problem, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("gen: scale fraction must be in (0,1], got %v", frac)
	}
	rng := rand.New(rand.NewSource(seed))
	take := func(rows []int32, f float64) []int32 {
		k := int(float64(len(rows)) * f)
		if k < 1 && len(rows) > 0 {
			k = 1
		}
		idx := rng.Perm(len(rows))[:k]
		out := make([]int32, k)
		for i, j := range idx {
			out[i] = rows[j]
		}
		return out
	}
	nbp := &blueprint{
		filtered: p.bp.filtered,
		core:     take(p.bp.core, frac),
		srcNoise: take(p.bp.srcNoise, frac),
		tgtNoise: take(p.bp.tgtNoise, frac),
		funcs:    p.bp.funcs,
		cfg:      p.bp.cfg,
	}
	return nbp.realize(rng)
}
