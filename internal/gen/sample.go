package gen

import (
	"fmt"
	"math/rand"

	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

// sampleFunc draws a random non-identity transformation for one attribute,
// respecting its domain: numeric attributes receive numeric functions
// (never uppercasing, Section 5.1), string attributes receive string
// rewrites, and both may receive value-mapping permutations — "potentially
// the hardest transformations to learn".
func sampleFunc(t *table.Table, attr int, rng *rand.Rand) sampledFunc {
	st := t.Stats(attr)
	values := distinctValues(t, attr)
	// Date columns may receive a layout conversion (the prototype extension
	// named in the paper's conclusions).
	if layout, ok := metafunc.DetectDateLayout(values); ok && rng.Intn(3) == 0 {
		if f := sampleDateConvert(layout, rng); f != nil && changesSomething(f, values) {
			return sampledFunc{f: f}
		}
	}
	for tries := 0; tries < 64; tries++ {
		var f metafunc.Func
		if st.CanonicalAll {
			f = sampleNumeric(rng)
		} else {
			f = sampleString(values, rng)
		}
		if f == nil {
			continue
		}
		if changesSomething(f, values) {
			return sampledFunc{f: f}
		}
	}
	// Fall back to a value-mapping permutation, which always fits.
	return sampledFunc{perm: samplePermutation(values, rng)}
}

// terminatingFactors are divisors/multipliers whose decimal expansions
// always terminate, so reference transformations stay representable.
var terminatingFactors = []string{"2", "4", "5", "8", "10", "16", "20", "25", "50", "100", "1000"}

func sampleNumeric(rng *rand.Rand) metafunc.Func {
	switch rng.Intn(4) {
	case 0: // addition / subtraction
		y := rng.Intn(999) + 1
		if rng.Intn(2) == 0 {
			y = -y
		}
		f, err := metafunc.NewAdd(fmt.Sprintf("%d", y))
		if err != nil {
			panic(err)
		}
		return f
	case 1: // division
		f, err := metafunc.NewDivision(terminatingFactors[rng.Intn(len(terminatingFactors))])
		if err != nil {
			panic(err)
		}
		return f
	case 2: // multiplication
		f, err := metafunc.NewMultiplication(terminatingFactors[rng.Intn(len(terminatingFactors))])
		if err != nil {
			panic(err)
		}
		return f
	default:
		return nil // caller falls through to a permutation mapping
	}
}

// sampleDateConvert converts from the detected layout to a random other
// catalog layout.
func sampleDateConvert(from string, rng *rand.Rand) metafunc.Func {
	layouts := metafunc.DateLayouts()
	for tries := 0; tries < 8; tries++ {
		to := layouts[rng.Intn(len(layouts))]
		if to == from {
			continue
		}
		f, err := metafunc.NewDateConvert(from, to)
		if err != nil {
			return nil
		}
		return f
	}
	return nil
}

const affixAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

func randomAffix(rng *rand.Rand) string {
	n := 1 + rng.Intn(3)
	b := make([]byte, n)
	for i := range b {
		b[i] = affixAlphabet[rng.Intn(len(affixAlphabet))]
	}
	return string(b)
}

func sampleString(values []string, rng *rand.Rand) metafunc.Func {
	nonEmpty := make([]string, 0, len(values))
	for _, v := range values {
		if v != "" {
			nonEmpty = append(nonEmpty, v)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	pick := func() string { return nonEmpty[rng.Intn(len(nonEmpty))] }
	switch rng.Intn(8) {
	case 0:
		return metafunc.Upper{}
	case 1:
		return metafunc.Constant{C: pick()}
	case 2:
		return metafunc.Prefix{Y: randomAffix(rng) + "_"}
	case 3:
		return metafunc.Suffix{Y: "_" + randomAffix(rng)}
	case 4: // front masking, sized to the shortest non-empty value
		min := shortest(nonEmpty)
		if min == 0 {
			return nil
		}
		n := 1 + rng.Intn(min)
		if n > 3 {
			n = 3
		}
		mask := make([]byte, n)
		for i := range mask {
			mask[i] = affixAlphabet[rng.Intn(len(affixAlphabet))]
		}
		return metafunc.FrontMask{M: string(mask)}
	case 5: // front char trimming on an observed leading character
		v := pick()
		return metafunc.FrontTrim{C: v[0]}
	case 6: // prefix replacement rooted at an observed first character
		v := pick()
		return metafunc.PrefixReplace{Y: v[:1], Z: randomAffix(rng)}
	case 7: // suffix replacement rooted at an observed last character
		v := pick()
		return metafunc.SuffixReplace{Y: v[len(v)-1:], Z: randomAffix(rng)}
	}
	return nil
}

func shortest(vs []string) int {
	min := -1
	for _, v := range vs {
		if min == -1 || len(v) < min {
			min = len(v)
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// samplePermutation returns a uniform random permutation of the distinct
// values, as Section 5.1 instantiates value mappings.
func samplePermutation(values []string, rng *rand.Rand) map[string]string {
	shuffled := append([]string(nil), values...)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	perm := make(map[string]string, len(values))
	for i, v := range values {
		perm[v] = shuffled[i]
	}
	return perm
}

func distinctValues(t *table.Table, attr int) []string {
	seen := make(map[string]bool)
	var out []string
	for i := 0; i < t.Len(); i++ {
		v := t.Value(i, attr)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func changesSomething(f metafunc.Func, values []string) bool {
	for _, v := range values {
		if f.Apply(v) != v {
			return true
		}
	}
	return false
}
