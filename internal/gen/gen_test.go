package gen_test

import (
	"math"
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

func buildDataset(t *testing.T, name string, rows int) *table.Table {
	t.Helper()
	spec, err := datasets.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := spec.BuildRows(rows, 11)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestGenerateShapes(t *testing.T) {
	ds := buildDataset(t, "iris", 150)
	p, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := p.Inst
	// Snapshot size = N/(1+η): 150/1.3 ≈ 115; noise per side ≈ 34.
	n := 150.0
	wantNoise := int(n * 0.3 / 1.3)
	wantCore := 150 - 2*wantNoise
	if got := p.Reference.CoreSize(); got != wantCore {
		t.Errorf("core = %d, want %d", got, wantCore)
	}
	if inst.Source.Len() != wantCore+wantNoise || inst.Target.Len() != wantCore+wantNoise {
		t.Errorf("snapshot sizes %d/%d, want %d",
			inst.Source.Len(), inst.Target.Len(), wantCore+wantNoise)
	}
	// Schema: iris data attrs + artificial key.
	if inst.NumAttrs() != 6 {
		t.Errorf("|A| = %d, want 6", inst.NumAttrs())
	}
	if p.KeyAttr != 5 {
		t.Errorf("KeyAttr = %d, want 5", p.KeyAttr)
	}
	if err := p.Reference.Validate(); err != nil {
		t.Fatalf("reference explanation invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ds := buildDataset(t, "balance", 625)
	cfg := gen.Config{Setting: gen.Setting{Eta: 0.5, Tau: 0.5}, Seed: 9}
	a, err := gen.Generate(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reference.Funcs.Key() != b.Reference.Funcs.Key() {
		t.Error("same seed sampled different functions")
	}
	for i := 0; i < a.Inst.Source.Len(); i++ {
		if !a.Inst.Source.Record(i).Equal(b.Inst.Source.Record(i)) {
			t.Fatal("same seed generated different sources")
		}
	}
}

func TestGenerateKeyIsPermuted(t *testing.T) {
	ds := buildDataset(t, "iris", 150)
	p, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Joining on the artificial key must misalign: at least one core pair
	// has different keys on both sides.
	misaligned := 0
	for i, s := range p.Reference.CoreSrc {
		sk := p.Inst.Source.Value(s, p.KeyAttr)
		tk := p.Inst.Target.Value(p.Reference.CoreTgt[i], p.KeyAttr)
		if sk != tk {
			misaligned++
		}
	}
	if misaligned == 0 {
		t.Error("artificial key was not permuted")
	}
	// The reference key function is a value mapping covering the core.
	if _, ok := p.Reference.Funcs[p.KeyAttr].(*metafunc.Mapping); !ok {
		t.Errorf("key function is %T, want *Mapping", p.Reference.Funcs[p.KeyAttr])
	}
}

func TestGenerateAtLeastOneIdentity(t *testing.T) {
	// τ = 1 would transform everything; the generator must reject such
	// samplings and keep at least one identity data attribute.
	ds := buildDataset(t, "balance", 625)
	for seed := int64(0); seed < 5; seed++ {
		p, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.95}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids := 0
		for a := 0; a < p.Inst.NumAttrs()-1; a++ { // exclude artificial key
			if metafunc.IsIdentity(p.Reference.Funcs[a]) {
				ids++
			}
		}
		if ids == 0 {
			t.Errorf("seed %d: all data attributes transformed", seed)
		}
	}
}

func TestGenerateTransformsRoughlyTauAttributes(t *testing.T) {
	ds := buildDataset(t, "horse", 368) // 27 data attrs: enough for statistics
	total, transformed := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		p, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < p.Inst.NumAttrs()-1; a++ {
			total++
			if !metafunc.IsIdentity(p.Reference.Funcs[a]) {
				transformed++
			}
		}
	}
	frac := float64(transformed) / float64(total)
	if math.Abs(frac-0.3) > 0.12 {
		t.Errorf("transformed fraction = %.2f, want ≈ τ = 0.3", frac)
	}
}

func TestGenerateDropsOverDistinctAttributes(t *testing.T) {
	// A near-unique column must be dropped before generation (Section 5.1).
	s := table.MustSchema("uniq", "cat")
	var rows []table.Record
	for i := 0; i < 100; i++ {
		rows = append(rows, table.Record{itoa(i), []string{"a", "b"}[i%2]})
	}
	ds := table.MustFromRows(s, rows)
	p, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Inst.Schema().Index("uniq") != -1 {
		t.Error("over-distinct attribute survived")
	}
	if p.Inst.Schema().Index("cat") == -1 {
		t.Error("normal attribute dropped")
	}
}

func TestGenerateDropsEmptyAttributes(t *testing.T) {
	s := table.MustSchema("empty", "cat")
	var rows []table.Record
	for i := 0; i < 50; i++ {
		rows = append(rows, table.Record{"", []string{"a", "b", "c"}[i%3]})
	}
	ds := table.MustFromRows(s, rows)
	p, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Inst.Schema().Index("empty") != -1 {
		t.Error("empty attribute survived")
	}
}

func TestGenerateValidation(t *testing.T) {
	ds := buildDataset(t, "iris", 150)
	if _, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: -1, Tau: 0.3}}); err == nil {
		t.Error("negative η accepted")
	}
	if _, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 2}}); err == nil {
		t.Error("τ > 1 accepted")
	}
	tiny := table.MustFromRows(table.MustSchema("a"), []table.Record{{"1"}})
	if _, err := gen.Generate(tiny, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}}); err == nil {
		t.Error("tiny dataset accepted")
	}
}

func TestReferenceCostFinite(t *testing.T) {
	ds := buildDataset(t, "bridges", 108)
	for _, setting := range gen.Settings() {
		p, err := gen.Generate(ds, gen.Config{Setting: setting, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		cost := delta.DefaultCosts.Cost(p.Reference)
		if cost <= 0 {
			t.Errorf("%v: reference cost %v not positive", setting, cost)
		}
		triv := delta.DefaultCosts.Cost(delta.Trivial(p.Inst))
		if cost >= triv {
			t.Errorf("%v: reference cost %v not below trivial %v", setting, cost, triv)
		}
	}
}

func TestScale(t *testing.T) {
	ds := buildDataset(t, "abalone", 4177)
	p, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	half, err := p.Scale(0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := half.Reference.Validate(); err != nil {
		t.Fatalf("scaled reference invalid: %v", err)
	}
	ratio := float64(half.Inst.Source.Len()) / float64(p.Inst.Source.Len())
	if math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("scaled to %.2f of records, want 0.5", ratio)
	}
	// Same transformations: non-mapping functions unchanged.
	for a := 0; a < p.Inst.NumAttrs()-1; a++ {
		pf, hf := p.Reference.Funcs[a], half.Reference.Funcs[a]
		_, pm := pf.(*metafunc.Mapping)
		_, hm := hf.(*metafunc.Mapping)
		if pm != hm {
			t.Errorf("attr %d changed function family on scaling", a)
		}
		if !pm && pf.Key() != hf.Key() {
			t.Errorf("attr %d changed function on scaling: %s vs %s", a, pf, hf)
		}
	}
	if _, err := p.Scale(0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := p.Scale(1.5, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

// TestScalePrunesMappings: scaled instances must not pay description length
// for mapping entries over vanished values (Section 5.4.1).
func TestScalePrunesMappings(t *testing.T) {
	ds := buildDataset(t, "ncvoter-1k", 1000)
	// High τ to make mapping attributes likely.
	p, err := gen.Generate(ds, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.7}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	small, err := p.Scale(0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < p.Inst.NumAttrs()-1; a++ {
		pm, ok := p.Reference.Funcs[a].(*metafunc.Mapping)
		if !ok {
			continue
		}
		sm, ok := small.Reference.Funcs[a].(*metafunc.Mapping)
		if !ok {
			t.Fatalf("attr %d lost its mapping on scaling", a)
		}
		if sm.Len() >= pm.Len() {
			t.Errorf("attr %d: scaled mapping has %d entries, original %d — no pruning?",
				a, sm.Len(), pm.Len())
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
