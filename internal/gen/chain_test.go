package gen

import (
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/table"
)

func chainTable(t *testing.T, name string) *table.Table {
	t.Helper()
	ds, err := datasets.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestMakeChainShape(t *testing.T) {
	tab := chainTable(t, "bridges")
	ch, err := MakeChain(tab, ChainConfig{Steps: 3, Eta: 0.2, Tau: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Snapshots) != 4 {
		t.Fatalf("got %d snapshots, want 4", len(ch.Snapshots))
	}
	n := ch.Snapshots[0].Len()
	if n < 2 {
		t.Fatalf("snapshot size %d too small", n)
	}
	for i, s := range ch.Snapshots {
		if s.Len() != n {
			t.Errorf("snapshot %d has %d records, want %d", i, s.Len(), n)
		}
		if s.Schema().Index("rid") != ch.KeyAttr {
			t.Errorf("snapshot %d: key attribute not at %d", i, ch.KeyAttr)
		}
	}
	if len(ch.Funcs) != ch.Snapshots[0].Schema().Len() {
		t.Errorf("funcs tuple has %d entries, schema has %d",
			len(ch.Funcs), ch.Snapshots[0].Schema().Len())
	}
}

func TestMakeChainDeterministic(t *testing.T) {
	tab := chainTable(t, "iris")
	cfg := ChainConfig{Steps: 2, Eta: 0.1, Tau: 0.5, Seed: 3}
	a, err := MakeChain(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MakeChain(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Snapshots {
		sa, sb := a.Snapshots[i], b.Snapshots[i]
		if sa.Len() != sb.Len() {
			t.Fatalf("snapshot %d sizes differ", i)
		}
		for r := 0; r < sa.Len(); r++ {
			if !sa.Record(r).Equal(sb.Record(r)) {
				t.Fatalf("snapshot %d record %d differs: %v vs %v",
					i, r, sa.Record(r), sb.Record(r))
			}
		}
	}
}

// TestMakeChainStableKeys: by default each record's key survives every
// transition, so the multiset of keys shrinks only by the η-deletions.
func TestMakeChainStableKeys(t *testing.T) {
	tab := chainTable(t, "balance")
	ch, err := MakeChain(tab, ChainConfig{Steps: 2, Eta: 0.2, Tau: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	keys := func(s *table.Table) map[string]bool {
		m := make(map[string]bool)
		for i := 0; i < s.Len(); i++ {
			m[s.Value(i, ch.KeyAttr)] = true
		}
		return m
	}
	prev := keys(ch.Snapshots[0])
	for i := 1; i < len(ch.Snapshots); i++ {
		cur := keys(ch.Snapshots[i])
		shared := 0
		for k := range cur {
			if prev[k] {
				shared++
			}
		}
		if shared == 0 {
			t.Errorf("step %d: no keys survived, want stable keys", i)
		}
		prev = cur
	}
}

// TestMakeChainPermutedKeys: with PermuteKeys every snapshot re-keys, so
// key sets are permutations of 0..n-1 every time.
func TestMakeChainPermutedKeys(t *testing.T) {
	tab := chainTable(t, "balance")
	ch, err := MakeChain(tab, ChainConfig{Steps: 2, Eta: 0.1, Tau: 0.3, Seed: 5, PermuteKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ch.Snapshots {
		seen := make(map[string]bool)
		for r := 0; r < s.Len(); r++ {
			k := s.Value(r, ch.KeyAttr)
			if seen[k] {
				t.Fatalf("snapshot %d: duplicate key %q", i, k)
			}
			seen[k] = true
		}
	}
}

// TestMakeChainSustainedFuncs: applying the chain's function tuple to a
// surviving record of snapshot i reproduces its snapshot-i+1 values (keys
// identify records under the default stable-keys regime).
func TestMakeChainSustainedFuncs(t *testing.T) {
	tab := chainTable(t, "bridges")
	ch, err := MakeChain(tab, ChainConfig{Steps: 3, Eta: 0.2, Tau: 0.7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(ch.Snapshots); i++ {
		src, tgt := ch.Snapshots[i], ch.Snapshots[i+1]
		byKey := make(map[string]int)
		for r := 0; r < tgt.Len(); r++ {
			byKey[tgt.Value(r, ch.KeyAttr)] = r
		}
		checked := 0
		for r := 0; r < src.Len(); r++ {
			tr, ok := byKey[src.Value(r, ch.KeyAttr)]
			if !ok {
				continue // deleted on this transition
			}
			img := ch.Funcs.Apply(src.Record(r))
			if !img.Equal(tgt.Record(tr)) {
				t.Fatalf("step %d: F(src %d) = %v ≠ tgt %d = %v",
					i, r, img, tr, tgt.Record(tr))
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("step %d: no surviving records checked", i)
		}
	}
}
