package gen

import (
	"fmt"
	"math/rand"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

// ChainConfig configures MakeChain.
type ChainConfig struct {
	// Steps is the number of transitions; MakeChain emits Steps+1 snapshots.
	Steps int
	// Eta is the per-step noise fraction: the share of records deleted from
	// (and freshly inserted into) the table on every transition.
	Eta float64
	// Tau is the per-attribute probability of a sustained non-identity
	// transformation applied on every transition.
	Tau float64
	// Seed drives all sampling.
	Seed int64
	// MaxDistinctRatio drops over-distinct attributes before generation,
	// like Config. Default 0.7.
	MaxDistinctRatio float64
	// KeyAttr names the artificial primary-key attribute. Default "rid".
	KeyAttr string
	// PermuteKeys re-permutes every snapshot's key values (the paper's
	// rewritten-primary-keys regime, forcing a per-pair key mapping). The
	// default keeps keys stable across snapshots, the common shape of real
	// recurring feeds.
	PermuteKeys bool
}

// ChainProblem is a generated snapshot chain: successive states of one
// table under a recurring feed. Every transition applies the same
// per-attribute transformation tuple to the surviving records, deletes an
// η-fraction, inserts the same number of fresh records, optionally rewrites
// the primary key with a fresh permutation, and shuffles the record order —
// the "snapshot sequence" view of a temporal relation, and the workload
// where warm-started incremental explanation pays off: the functions of
// pair (n−1, n) transfer to pair (n, n+1), only alignment-specific value
// mappings must be re-derived.
type ChainProblem struct {
	// Snapshots holds the Steps+1 successive table states.
	Snapshots []*table.Table
	// Funcs is the per-transition transformation tuple over all attributes;
	// the key attribute's entry is identity (its real per-step change is a
	// fresh permutation, not a fixed function).
	Funcs delta.FuncTuple
	// KeyAttr is the schema position of the artificial primary key.
	KeyAttr int
}

// MakeChain generates a snapshot chain from a dataset table. Transformed
// attributes receive sustained transformations — numeric shifts for
// canonical-numeric attributes and value permutations (closed under
// repeated application) otherwise — so every transition exhibits the same
// function tuple.
func MakeChain(dataset *table.Table, cfg ChainConfig) (*ChainProblem, error) {
	if cfg.MaxDistinctRatio == 0 {
		cfg.MaxDistinctRatio = 0.7
	}
	if cfg.KeyAttr == "" {
		cfg.KeyAttr = "rid"
	}
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("gen: chain needs ≥ 1 step, got %d", cfg.Steps)
	}
	if cfg.Eta < 0 || cfg.Eta >= 1 {
		return nil, fmt.Errorf("gen: η must be in [0,1), got %v", cfg.Eta)
	}
	if cfg.Tau < 0 || cfg.Tau > 1 {
		return nil, fmt.Errorf("gen: τ must be in [0,1], got %v", cfg.Tau)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Drop empty and over-distinct attributes, as in Generate.
	drop := map[int]bool{}
	for a := 0; a < dataset.Schema().Len(); a++ {
		st := dataset.Stats(a)
		if st.NonEmpty == 0 || st.DistinctRatio > cfg.MaxDistinctRatio {
			drop[a] = true
		}
	}
	filtered := dataset
	if len(drop) > 0 {
		filtered = dataset.DropAttrs(drop)
	}
	d := filtered.Schema().Len()
	if d == 0 {
		return nil, fmt.Errorf("gen: all attributes dropped by the distinct-ratio filter")
	}
	if filtered.Schema().Index(cfg.KeyAttr) >= 0 {
		return nil, fmt.Errorf("gen: dataset already has attribute %q", cfg.KeyAttr)
	}

	// Size the initial table so the reservoir can feed every step's inserts:
	// m live records plus Steps·⌊η·m⌋ future inserts must fit the dataset.
	n := filtered.Len()
	m := int(float64(n) / (1 + cfg.Eta*float64(cfg.Steps)))
	if m < 2 {
		return nil, fmt.Errorf("gen: dataset too small for %d chain steps at η=%v", cfg.Steps, cfg.Eta)
	}
	noise := int(cfg.Eta * float64(m))

	perm := rng.Perm(n)
	row := func(i int) table.Record { return filtered.Record(perm[i]).Clone() }
	// Stable keys ride along inside each record (position d) so deletions
	// and shuffles keep every record's identity; materialize strips or
	// rewrites them as configured.
	keyCounter := 0
	nextKey := func() string {
		k := fmt.Sprintf("%d", keyCounter)
		keyCounter++
		return k
	}
	cur := make([]table.Record, m)
	for i := range cur {
		cur[i] = append(row(i), nextKey())
	}
	reservoir := m // next unused dataset row

	// Sustained per-attribute transformations: value permutations map the
	// attribute's distinct-value set onto itself, so repeated application
	// never leaves the domain; numeric shifts drift but stay inducible.
	funcs := make(delta.FuncTuple, d, d+1)
	for a := 0; a < d; a++ {
		funcs[a] = metafunc.Identity{}
		if rng.Float64() >= cfg.Tau {
			continue
		}
		if filtered.Stats(a).CanonicalAll {
			y := rng.Intn(999) + 1
			if rng.Intn(2) == 0 {
				y = -y
			}
			f, err := metafunc.NewAdd(fmt.Sprintf("%d", y))
			if err != nil {
				return nil, err
			}
			funcs[a] = f
		} else {
			funcs[a] = metafunc.NewMapping(samplePermutation(distinctValues(filtered, a), rng))
		}
	}

	schema, err := filtered.Schema().WithAttr(cfg.KeyAttr)
	if err != nil {
		return nil, err
	}
	materialize := func(rows []table.Record) (*table.Table, error) {
		order := rng.Perm(len(rows))
		var keys []int
		if cfg.PermuteKeys {
			keys = rng.Perm(len(rows))
		}
		out := make([]table.Record, len(rows))
		for i, j := range order {
			r := rows[j].Clone()
			if cfg.PermuteKeys {
				r[d] = fmt.Sprintf("%d", keys[j])
			}
			out[i] = r
		}
		return table.FromRows(schema, out)
	}

	p := &ChainProblem{
		Funcs:   append(funcs, metafunc.Identity{}),
		KeyAttr: d,
	}
	s0, err := materialize(cur)
	if err != nil {
		return nil, err
	}
	p.Snapshots = append(p.Snapshots, s0)
	for step := 0; step < cfg.Steps; step++ {
		next := make([]table.Record, len(cur))
		for i, r := range cur {
			nr := make(table.Record, d+1)
			for a := 0; a < d; a++ {
				nr[a] = funcs[a].Apply(r[a])
			}
			nr[d] = r[d]
			next[i] = nr
		}
		// Delete η·m random survivors, insert as many fresh records.
		rng.Shuffle(len(next), func(i, j int) { next[i], next[j] = next[j], next[i] })
		next = next[:len(next)-noise]
		for i := 0; i < noise; i++ {
			next = append(next, append(row(reservoir), nextKey()))
			reservoir++
		}
		si, err := materialize(next)
		if err != nil {
			return nil, err
		}
		p.Snapshots = append(p.Snapshots, si)
		cur = next
	}
	return p, nil
}
