// Package schemamatch implements the problem variant the paper's
// conclusions propose as future work: explaining snapshots *without
// knowledge of the schema alignment*, i.e. when attributes were renamed or
// reordered between the snapshots. It aligns target attributes to source
// attributes by comparing value distributions — value overlap, value-length
// profile, numericness and cardinality — and rewrites the target table into
// the source schema so the ordinary Explain-Table-Delta machinery applies.
package schemamatch

import (
	"fmt"
	"sort"

	"affidavit/internal/table"
	"affidavit/internal/value"
)

// Match is an alignment of target attributes to source attributes.
type Match struct {
	// TgtOfSrc[s] is the target attribute position matched to source
	// attribute s.
	TgtOfSrc []int
	// Scores[s] is the similarity score of that pair in [0, 1].
	Scores []float64
	// ByName reports whether the match was trivial (equal name sets).
	ByName bool
}

// profile summarises one column for similarity scoring.
type profile struct {
	values   map[string]bool
	distinct int
	avgLen   float64
	numeric  bool
	nonEmpty int
}

// maxProfileValues caps the distinct values kept per column; columns with
// more are sampled by first occurrence, which suffices for Jaccard-style
// overlap estimates.
const maxProfileValues = 4096

func buildProfile(t *table.Table, attr int) profile {
	p := profile{values: make(map[string]bool)}
	numericAll := true
	totalLen := 0
	for i := 0; i < t.Len(); i++ {
		v := t.Value(i, attr)
		if v == "" {
			continue
		}
		p.nonEmpty++
		totalLen += len(v)
		if !value.IsNumeric(v) {
			numericAll = false
		}
		if len(p.values) < maxProfileValues {
			p.values[v] = true
		}
	}
	p.distinct = len(p.values)
	if p.nonEmpty > 0 {
		p.avgLen = float64(totalLen) / float64(p.nonEmpty)
		p.numeric = numericAll
	}
	return p
}

// similarity scores two column profiles in [0, 1].
func similarity(a, b profile) float64 {
	// Value overlap (Jaccard).
	inter := 0
	small, large := a.values, b.values
	if len(small) > len(large) {
		small, large = large, small
	}
	for v := range small {
		if large[v] {
			inter++
		}
	}
	union := len(a.values) + len(b.values) - inter
	jaccard := 0.0
	if union > 0 {
		jaccard = float64(inter) / float64(union)
	}
	// Length-profile similarity.
	lenSim := 0.0
	if a.avgLen > 0 || b.avgLen > 0 {
		max := a.avgLen
		if b.avgLen > max {
			max = b.avgLen
		}
		diff := a.avgLen - b.avgLen
		if diff < 0 {
			diff = -diff
		}
		lenSim = 1 - diff/max
	}
	// Type agreement.
	typeSim := 0.0
	if a.numeric == b.numeric {
		typeSim = 1
	}
	// Cardinality similarity.
	cardSim := 0.0
	if a.distinct > 0 && b.distinct > 0 {
		lo, hi := a.distinct, b.distinct
		if lo > hi {
			lo, hi = hi, lo
		}
		cardSim = float64(lo) / float64(hi)
	}
	return 0.5*jaccard + 0.2*lenSim + 0.15*typeSim + 0.15*cardSim
}

// Attributes aligns target attributes to source attributes. Both snapshots
// must have the same attribute count. Equal name sets match by name;
// otherwise a greedy best-pair-first assignment over distribution
// similarity decides.
func Attributes(src, tgt *table.Table) (*Match, error) {
	d := src.Schema().Len()
	if tgt.Schema().Len() != d {
		return nil, fmt.Errorf("schemamatch: source has %d attributes, target %d",
			d, tgt.Schema().Len())
	}
	if d == 0 {
		return nil, fmt.Errorf("schemamatch: empty schemas")
	}
	// Trivial case: same name sets (possibly reordered).
	byName := make([]int, d)
	trivial := true
	for s := 0; s < d; s++ {
		t := tgt.Schema().Index(src.Schema().Attr(s))
		if t < 0 {
			trivial = false
			break
		}
		byName[s] = t
	}
	if trivial {
		m := &Match{TgtOfSrc: byName, Scores: make([]float64, d), ByName: true}
		for s := range m.Scores {
			m.Scores[s] = 1
		}
		return m, nil
	}

	srcProf := make([]profile, d)
	tgtProf := make([]profile, d)
	for a := 0; a < d; a++ {
		srcProf[a] = buildProfile(src, a)
		tgtProf[a] = buildProfile(tgt, a)
	}
	type pair struct {
		s, t  int
		score float64
	}
	pairs := make([]pair, 0, d*d)
	for s := 0; s < d; s++ {
		for t := 0; t < d; t++ {
			pairs = append(pairs, pair{s, t, similarity(srcProf[s], tgtProf[t])})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		if pairs[i].s != pairs[j].s {
			return pairs[i].s < pairs[j].s
		}
		return pairs[i].t < pairs[j].t
	})
	m := &Match{TgtOfSrc: make([]int, d), Scores: make([]float64, d)}
	usedS := make([]bool, d)
	usedT := make([]bool, d)
	assigned := 0
	for _, p := range pairs {
		if usedS[p.s] || usedT[p.t] {
			continue
		}
		usedS[p.s] = true
		usedT[p.t] = true
		m.TgtOfSrc[p.s] = p.t
		m.Scores[p.s] = p.score
		assigned++
		if assigned == d {
			break
		}
	}
	return m, nil
}

// AlignTarget rewrites the target table into the source schema: columns are
// reordered per the match and renamed to the source attribute names, so the
// pair can be fed to delta.NewInstance.
func (m *Match) AlignTarget(src, tgt *table.Table) (*table.Table, error) {
	d := src.Schema().Len()
	if len(m.TgtOfSrc) != d || tgt.Schema().Len() != d {
		return nil, fmt.Errorf("schemamatch: match arity %d does not fit tables", len(m.TgtOfSrc))
	}
	schema, err := table.NewSchema(src.Schema().Attrs()...)
	if err != nil {
		return nil, err
	}
	out := table.New(schema)
	for i := 0; i < tgt.Len(); i++ {
		rec := make(table.Record, d)
		for s := 0; s < d; s++ {
			rec[s] = tgt.Value(i, m.TgtOfSrc[s])
		}
		if err := out.Append(rec); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Describe renders the match as "source ← target (score)" lines.
func (m *Match) Describe(src, tgt *table.Table) string {
	out := ""
	for s, t := range m.TgtOfSrc {
		out += fmt.Sprintf("%s ← %s (%.2f)\n",
			src.Schema().Attr(s), tgt.Schema().Attr(t), m.Scores[s])
	}
	return out
}
