package schemamatch_test

import (
	"context"
	"strings"
	"testing"

	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/schemamatch"
	"affidavit/internal/search"
	"affidavit/internal/table"
)

func TestMatchByNameReordered(t *testing.T) {
	src := table.MustFromRows(table.MustSchema("a", "b"), []table.Record{{"1", "x"}})
	tgt := table.MustFromRows(table.MustSchema("b", "a"), []table.Record{{"y", "2"}})
	m, err := schemamatch.Attributes(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !m.ByName || m.TgtOfSrc[0] != 1 || m.TgtOfSrc[1] != 0 {
		t.Errorf("match = %+v", m)
	}
	aligned, err := m.AlignTarget(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !aligned.Schema().Equal(src.Schema()) {
		t.Error("aligned schema differs")
	}
	if aligned.Value(0, 0) != "2" || aligned.Value(0, 1) != "y" {
		t.Errorf("aligned row wrong: %v", aligned.Record(0))
	}
}

func TestMatchRenamedByDistribution(t *testing.T) {
	// Same data, entirely different attribute names and column order.
	src := table.MustFromRows(table.MustSchema("city", "amount", "flag"), []table.Record{
		{"mannheim", "1200", "yes"},
		{"berlin", "3400", "no"},
		{"hamburg", "560", "yes"},
		{"mannheim", "7800", "no"},
		{"berlin", "90", "yes"},
	})
	tgt := table.MustFromRows(table.MustSchema("c1", "c2", "c3"), []table.Record{
		{"no", "mannheim", "1200"},
		{"yes", "berlin", "3400"},
		{"yes", "hamburg", "560"},
	})
	m, err := schemamatch.Attributes(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if m.ByName {
		t.Fatal("should not match by name")
	}
	want := []int{1, 2, 0} // city←c2, amount←c3, flag←c1
	for s, wantT := range want {
		if m.TgtOfSrc[s] != wantT {
			t.Errorf("attr %d matched to %d, want %d\n%s",
				s, m.TgtOfSrc[s], wantT, m.Describe(src, tgt))
		}
	}
	if !strings.Contains(m.Describe(src, tgt), "city ← c2") {
		t.Error("Describe malformed")
	}
}

// TestEndToEndRenamedSnapshot: the future-work pipeline — match renamed
// schemas, align, then explain — must recover the Figure 1 optimum even
// when the target schema was renamed and shuffled.
func TestEndToEndRenamedSnapshot(t *testing.T) {
	src := table.MustFromRows(fixture.Schema(), fixture.SourceRows())
	// Target with renamed attributes in a different order:
	// (Org, ID1, Date, Unit, Type, Val, ID2) under opaque names.
	perm := []int{fixture.Org, fixture.ID1, fixture.Date, fixture.Unit,
		fixture.Type, fixture.Val, fixture.ID2}
	names := []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	var rows []table.Record
	for _, r := range fixture.TargetRows() {
		rows = append(rows, table.Record(r).Project(perm))
	}
	tgt := table.MustFromRows(table.MustSchema(names...), rows)

	m, err := schemamatch.Attributes(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := m.AlignTarget(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	// Column-content check: Date and Org must land in the right slots (the
	// distribution profiles are distinctive); the two key columns are
	// disambiguated by value length (3 vs 4 chars).
	for s := 0; s < src.Schema().Len(); s++ {
		if perm[m.TgtOfSrc[s]] != s {
			t.Errorf("source attr %s matched to original attr %s",
				src.Schema().Attr(s), fixture.Schema().Attr(perm[m.TgtOfSrc[s]]))
		}
	}

	inst, err := delta.NewInstance(src, aligned, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Seed = 1
	res, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != fixture.ReferenceCost {
		t.Errorf("cost after schema matching = %v, want %d", res.Cost, fixture.ReferenceCost)
	}
}

func TestMatchValidation(t *testing.T) {
	a := table.MustFromRows(table.MustSchema("x"), nil)
	b := table.MustFromRows(table.MustSchema("y", "z"), nil)
	if _, err := schemamatch.Attributes(a, b); err == nil {
		t.Error("arity mismatch accepted")
	}
	m := &schemamatch.Match{TgtOfSrc: []int{0, 1}}
	if _, err := m.AlignTarget(a, a); err == nil {
		t.Error("bad match arity accepted")
	}
}

func TestMatchEmptyColumns(t *testing.T) {
	// Entirely empty columns must not crash profiling.
	src := table.MustFromRows(table.MustSchema("a", "b"), []table.Record{{"", "x"}, {"", "y"}})
	tgt := table.MustFromRows(table.MustSchema("p", "q"), []table.Record{{"x", ""}, {"y", ""}})
	m, err := schemamatch.Attributes(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	// The non-empty source column must match the non-empty target column.
	if m.TgtOfSrc[1] != 0 {
		t.Errorf("content column mismatched: %+v", m)
	}
}
