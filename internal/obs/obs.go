// Package obs defines the pipeline event vocabulary shared by every layer
// that reports progress: snapshot ingest, the search loop, end-state
// conversion, and run completion. The public package re-exports these types
// as affidavit.Event; internal layers emit them through a plain function
// sink so the no-op case costs one nil check.
//
// Determinism contract: within one explanation run, events are emitted from
// a single goroutine in a deterministic order for a fixed seed — the
// parallel search engine reports through the polling goroutine exactly like
// the sequential one. Concurrent runs (batches, server traffic) interleave
// their event streams; observers that aggregate across runs must be safe
// for concurrent use.
package obs

import (
	"context"
	"fmt"
)

// Kind discriminates pipeline events.
type Kind uint8

const (
	// KindIngest reports snapshot ingest progress: Snapshot names the role
	// ("source" or "target"), Records is the cumulative record count, and
	// Complete marks the final event of that snapshot.
	KindIngest Kind = iota + 1
	// KindSearchStart fires once per run after the start states are chosen:
	// Mode is "cold", "warm" or "escalated" ("cancelled" when the run's
	// context was already done before any search work), Start names the
	// start strategy, and StartLevel is the deepest seeded start state.
	// Every run emits exactly one, so start counters pair with done
	// counters.
	KindSearchStart
	// KindPoll fires for every state extracted from the queue: Poll is the
	// 1-based extraction index, Level/Cost describe the state, End marks an
	// end state.
	KindPoll
	// KindFinalize fires when a cancelled run salvages its best-so-far
	// state by resolving the remaining attributes with greedy maps.
	KindFinalize
	// KindConvert fires when the chosen end state enters the explanation
	// conversion (delta.Build).
	KindConvert
	// KindDone fires once per run with the final tallies: Polls, States,
	// Cost, and whether the run was Cancelled. Wall time is deliberately
	// absent — event streams are byte-deterministic for fixed seeds.
	KindDone
	// KindSpill reports out-of-core activity under a memory budget:
	// Component names the spilling stage ("ingest" for cold column chunks,
	// "overlap" for the external overlap-score index, "blocking" for
	// external grouping, "convert" for external matching),
	// SpillBytes the bytes written to temp files and SpillParts the
	// external partitions created. Ingest spill events fire per snapshot
	// (Snapshot carries the role); pipeline spill events fire once per run,
	// aggregated, just before KindDone, so they stay deterministic for
	// fixed seeds regardless of Workers.
	KindSpill
)

// String returns the kind's stable name.
func (k Kind) String() string {
	switch k {
	case KindIngest:
		return "ingest"
	case KindSearchStart:
		return "search-start"
	case KindPoll:
		return "poll"
	case KindFinalize:
		return "finalize"
	case KindConvert:
		return "convert"
	case KindDone:
		return "done"
	case KindSpill:
		return "spill"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one pipeline event. Only the fields documented for the Kind are
// meaningful; the rest are zero.
type Event struct {
	Kind Kind

	// KindIngest.
	Snapshot string // "source" | "target"
	Records  int    // cumulative records ingested
	Complete bool   // final event for this snapshot

	// KindSearchStart.
	Mode       string // "cold" | "warm" | "escalated" | "cancelled"
	Start      string // start strategy (Hs, Hid, H∅)
	StartLevel int    // assignments in the deepest start state

	// KindPoll (Level and Cost also describe KindFinalize's result).
	Poll  int     // 1-based extraction index
	Level int     // decided attributes of the state
	Cost  float64 // state cost (KindPoll/KindFinalize), final cost (KindDone)
	End   bool    // the polled state is an end state

	// KindDone.
	Polls     int  // states extracted from the queue
	States    int  // candidate states costed
	Cancelled bool // the run's context was cancelled

	// KindSpill (ingest spill events also set Snapshot).
	Component  string // "ingest" | "overlap" | "blocking" | "convert"
	SpillBytes int64  // bytes written to spill files
	SpillParts int64  // external partitions created
}

// Sink receives events. A nil Sink is the no-op observer; emitters check
// for nil before constructing events, so an unobserved pipeline pays one
// branch per emission point.
type Sink func(Event)

// Chain composes two sinks in order, treating nil as absent: the result is
// nil when both are, and the single non-nil sink when only one is — so the
// common unobserved path stays a plain nil check, never a wrapper call.
func Chain(a, b Sink) Sink {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(ev Event) {
		a(ev)
		b(ev)
	}
}

// sinkKey carries a per-run Sink through a context.
type sinkKey struct{}

// ContextWithSink attaches a per-run event sink to ctx: every emission
// point that serves the run (ingest drains, the search loop) forwards its
// events to s in addition to any configured observer. A sink already on
// ctx is chained before s, so nested attachments compose. This is how a
// per-request trace recorder follows one run through separate ingest and
// explain calls without touching the long-lived Explainer configuration.
func ContextWithSink(ctx context.Context, s Sink) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, Chain(FromContext(ctx), s))
}

// FromContext returns the sink attached by ContextWithSink, or nil.
func FromContext(ctx context.Context) Sink {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(sinkKey{}).(Sink)
	return s
}
