package induce_test

import (
	"math/rand"
	"testing"

	"affidavit/internal/blocking"
	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/induce"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

func TestSampleSize(t *testing.T) {
	// θ=0.1, ρ=0.95, ≥5 generations: k must be in the low nineties — the
	// expected count at k=91 is 9.1 and the lower tail below 5 is ~5 %.
	k := induce.SampleSize(0.1, 0.95, 5)
	if k < 80 || k > 105 {
		t.Errorf("SampleSize(0.1, 0.95, 5) = %d, want ≈91", k)
	}
	// Monotonicity: more confidence or rarer effects need more samples.
	if induce.SampleSize(0.1, 0.99, 5) <= k {
		t.Error("higher confidence should need more samples")
	}
	if induce.SampleSize(0.05, 0.95, 5) <= k {
		t.Error("rarer effect should need more samples")
	}
	if induce.SampleSize(0.5, 0.95, 5) >= k {
		t.Error("commoner effect should need fewer samples")
	}
	// Degenerate inputs fall back to minGen.
	if induce.SampleSize(0, 0.95, 5) != 5 || induce.SampleSize(1, 0.95, 5) != 5 {
		t.Error("degenerate θ should return minGen")
	}
}

func TestCochranSize(t *testing.T) {
	// z=1.96, e=0.05, p=0.1 → 1.96²·0.09/0.0025 = 138.3 → 139.
	if got := induce.CochranSize(0.1); got != 139 {
		t.Errorf("CochranSize(0.1) = %d, want 139", got)
	}
	// p=0.5 maximises variance → 385 (the classic Cochran number).
	if got := induce.CochranSize(0.5); got != 385 {
		t.Errorf("CochranSize(0.5) = %d, want 385", got)
	}
}

func rngFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestCandidatesFindsDivisionOnVal reproduces the paper's Section 4.4.2
// narrative: sampling targets in blocks over I1's Val attribute must induce
// x ↦ x/1000 and rank it above the noise candidates.
func TestCandidatesFindsDivisionOnVal(t *testing.T) {
	inst := fixture.Instance()
	// Block on the stable attributes, as the search would have by the time
	// it asks about Val.
	r := blocking.New(inst).
		Refine(fixture.Type, metafunc.Identity{}).
		Refine(fixture.Org, metafunc.Identity{})
	cands := induce.Candidates(r, fixture.Val, inst.Metas, induce.Defaults, 3, rngFor(42))
	if len(cands) == 0 {
		t.Fatal("no candidates for Val")
	}
	div, _ := metafunc.NewDivision("1000")
	if cands[0].Func.Key() != div.Key() {
		for _, c := range cands {
			t.Logf("candidate %s gen=%d overlap=%d score=%d",
				c.Func, c.Generated, c.Overlap, c.Score)
		}
		t.Fatalf("top Val candidate = %s, want x/1000", cands[0].Func)
	}
}

// TestCandidatesFindsConstantOnUnit: every target Unit is 'k $'.
func TestCandidatesFindsConstantOnUnit(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst).Refine(fixture.Org, metafunc.Identity{})
	cands := induce.Candidates(r, fixture.Unit, inst.Metas, induce.Defaults, 2, rngFor(7))
	if len(cands) == 0 {
		t.Fatal("no candidates for Unit")
	}
	want := metafunc.Constant{C: "k $"}
	found := false
	for _, c := range cands {
		if c.Func.Key() == want.Key() {
			found = true
		}
	}
	if !found {
		t.Errorf("constant 'k $' not among top candidates: %v", cands)
	}
}

// TestCandidatesFindsDateReplacement: the '9999123'→'2018070' prefix
// replacement is visible on only 3 of 16 targets; the scaled-down
// significance threshold must keep it alive on a small instance.
func TestCandidatesFindsDateReplacement(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst).
		Refine(fixture.Type, metafunc.Identity{}).
		Refine(fixture.Org, metafunc.Identity{})
	cands := induce.Candidates(r, fixture.Date, inst.Metas, induce.Defaults, 5, rngFor(3))
	found := false
	for _, c := range cands {
		if pr, ok := c.Func.(metafunc.PrefixReplace); ok && pr.Y == "9999123" && pr.Z == "2018070" {
			found = true
		}
	}
	if !found {
		for _, c := range cands {
			t.Logf("candidate %s gen=%d score=%d", c.Func, c.Generated, c.Score)
		}
		t.Error("date prefix replacement not induced")
	}
}

// TestIdentityRankedFirstOnUnchangedAttribute: on Org (unchanged), the
// identity should win the ranking — overlap is maximal and ψ = 0.
func TestIdentityRankedFirstOnUnchangedAttribute(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst).Refine(fixture.Type, metafunc.Identity{})
	cands := induce.Candidates(r, fixture.Org, inst.Metas, induce.Defaults, 1, rngFor(11))
	if len(cands) != 1 || !metafunc.IsIdentity(cands[0].Func) {
		t.Fatalf("top Org candidate = %v, want identity", cands)
	}
}

func TestCandidatesEmptyOnUnmixedBlocks(t *testing.T) {
	inst := fixture.Instance()
	// Identity on Unit separates all sources from all targets.
	r := blocking.New(inst).Refine(fixture.Unit, metafunc.Identity{})
	cands := induce.Candidates(r, fixture.Val, inst.Metas, induce.Defaults, 3, rngFor(1))
	if cands != nil {
		t.Errorf("candidates from unmixed blocks: %v", cands)
	}
}

func TestCandidatesDeterministicUnderSeed(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst).Refine(fixture.Org, metafunc.Identity{})
	a := induce.Candidates(r, fixture.Val, inst.Metas, induce.Defaults, 4, rngFor(99))
	b := induce.Candidates(r, fixture.Val, inst.Metas, induce.Defaults, 4, rngFor(99))
	if len(a) != len(b) {
		t.Fatal("different lengths under same seed")
	}
	for i := range a {
		if a[i].Func.Key() != b[i].Func.Key() || a[i].Score != b[i].Score {
			t.Fatal("same seed gave different rankings")
		}
	}
}

// TestRankingPenalisesConstants: a constant that nails one frequent value
// must not outrank a generalising function (the x↦'9.8' example of 4.4.3).
func TestRankingPenalisesConstants(t *testing.T) {
	s := table.MustSchema("v")
	var srcRows, tgtRows []table.Record
	// 40 numeric values, each ×1000 in the target.
	for i := 1; i <= 40; i++ {
		srcRows = append(srcRows, table.Record{value(i)})
		tgtRows = append(tgtRows, table.Record{value(i * 1000)})
	}
	src := table.MustFromRows(s, srcRows)
	tgt := table.MustFromRows(s, tgtRows)
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := blocking.New(inst)
	cands := induce.Candidates(r, 0, inst.Metas, induce.Defaults, 1, rngFor(5))
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	mul, _ := metafunc.NewMultiplication("1000")
	if cands[0].Func.Key() != mul.Key() {
		t.Errorf("top candidate = %s, want ×1000", cands[0].Func)
	}
}

func value(n int) string {
	d := make([]byte, 0, 8)
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

// TestMaxSourceValuesCap exercises the coarse-block cap: a single giant
// block must not explode induction time, and the cap must still leave the
// true function discoverable.
func TestMaxSourceValuesCap(t *testing.T) {
	s := table.MustSchema("v")
	var srcRows, tgtRows []table.Record
	for i := 1; i <= 1200; i++ {
		srcRows = append(srcRows, table.Record{value(i)})
		tgtRows = append(tgtRows, table.Record{"P" + value(i)})
	}
	src := table.MustFromRows(s, srcRows)
	tgt := table.MustFromRows(s, tgtRows)
	inst, _ := delta.NewInstance(src, tgt, nil)
	cfg := induce.Defaults
	// Half the block's distinct values: the true function is still induced
	// from ~θ·k/2 ≫ threshold sampled targets, but work per target halves.
	cfg.MaxSourceValuesPerBlock = 600
	cands := induce.Candidates(blocking.New(inst), 0, inst.Metas, cfg, 3, rngFor(13))
	found := false
	for _, c := range cands {
		if p, ok := c.Func.(metafunc.Prefix); ok && p.Y == "P" {
			found = true
		}
	}
	if !found {
		t.Errorf("prefix function not found under cap: %v", cands)
	}
}
