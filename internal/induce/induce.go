// Package induce learns attribute functions from the noisy input–output
// examples a blocking result yields (Section 4.4): it samples target
// records from mixed blocks, induces candidate functions from every source
// value in the same block, filters candidates by how many distinct sampled
// targets generated them, and ranks the survivors by estimated histogram
// overlap on a Cochran-sized sample of source records.
package induce

import (
	"math"
	"math/rand"
	"sort"

	"affidavit/internal/blocking"
	"affidavit/internal/metafunc"
)

// Config carries the statistical parameters of Sections 4.4.2–4.4.3.
type Config struct {
	// Theta is θ: the estimated fraction of target records on which the
	// optimal function's effect is visible. The paper's value is 0.1
	// (Defaults); an explicit 0 is honoured and means minimal sampling —
	// SampleSize falls to the MinGenerated floor and overlap ranking
	// samples nothing.
	Theta float64
	// Rho is ρ: the confidence level for the induction sample. The paper's
	// value is 0.95 (Defaults); an explicit 0 is honoured.
	Rho float64
	// MinGenerated is the generation-count threshold at full sample size k;
	// k is chosen so the optimal function reaches it with confidence ρ.
	// Default 5. When fewer than k targets exist the threshold scales down
	// proportionally (DESIGN.md §4.2).
	MinGenerated int
	// MaxRanked caps how many filtered candidates enter the expensive
	// ranking stage (kept by generation count). Default 64.
	MaxRanked int
	// MaxSourceValuesPerBlock caps the distinct source values considered
	// per sampled target when its block is still very coarse. Default 1000.
	MaxSourceValuesPerBlock int
	// Runner, when non-nil, runs n independent tasks (which may execute
	// concurrently) and returns once all are done. It parallelises the
	// induction and ranking stages; nil runs them inline. Tasks must be
	// treated as order-independent.
	Runner func(n int, task func(i int))
}

// Defaults is the paper's evaluation configuration.
var Defaults = Config{
	Theta:                   0.1,
	Rho:                     0.95,
	MinGenerated:            5,
	MaxRanked:               64,
	MaxSourceValuesPerBlock: 1000,
}

// withDefaults fills zero structural caps. Theta and Rho pass through
// unchanged: zero is a meaningful (if degenerate) setting — θ = 0 samples
// only the MinGenerated floor and skips overlap sampling entirely, ρ = 0
// demands no confidence — so front-ends can express it explicitly instead
// of having it silently swapped for the paper defaults.
func (c Config) withDefaults() Config {
	d := Defaults
	d.Theta = c.Theta
	d.Rho = c.Rho
	if c.MinGenerated > 0 {
		d.MinGenerated = c.MinGenerated
	}
	if c.MaxRanked > 0 {
		d.MaxRanked = c.MaxRanked
	}
	if c.MaxSourceValuesPerBlock > 0 {
		d.MaxSourceValuesPerBlock = c.MaxSourceValuesPerBlock
	}
	d.Runner = c.Runner
	return d
}

// runner returns the configured Runner or an inline fallback.
func (c Config) runner() func(int, func(int)) {
	if c.Runner != nil {
		return c.Runner
	}
	return func(n int, task func(int)) {
		for i := 0; i < n; i++ {
			task(i)
		}
	}
}

// SampleSize returns the smallest k such that a Binomial(k, theta) variable
// X satisfies P(X ≥ minGen) ≥ rho (Section 4.4.2): sampling k target
// records generates the optimal function at least minGen times with
// confidence rho.
func SampleSize(theta, rho float64, minGen int) int {
	if theta <= 0 || theta >= 1 || minGen <= 0 {
		return minGen
	}
	const cap = 100000
	for k := minGen; k <= cap; k++ {
		if binomUpperTail(k, theta, minGen) >= rho {
			return k
		}
	}
	return cap
}

// binomUpperTail computes P(X ≥ n) for X ~ Bin(k, p).
func binomUpperTail(k int, p float64, n int) float64 {
	// Sum the lower tail P(X < n) with incremental pmf updates.
	q := 1 - p
	pmf := math.Pow(q, float64(k)) // P(X = 0)
	lower := 0.0
	for i := 0; i < n; i++ {
		lower += pmf
		// pmf(i+1) = pmf(i) * (k-i)/(i+1) * p/q
		pmf *= float64(k-i) / float64(i+1) * p / q
	}
	if lower > 1 {
		lower = 1
	}
	return 1 - lower
}

// CochranSize returns Cochran's sample size k′ = z²·p·(1−p)/e² with
// z = 1.96 and e = 0.05 (Section 4.4.3), rounded up.
func CochranSize(p float64) int {
	const z, e = 1.96, 0.05
	return int(math.Ceil(z * z * p * (1 - p) / (e * e)))
}

// Candidate is a ranked function candidate for one attribute.
type Candidate struct {
	Func metafunc.Func
	// Generated counts the distinct sampled target records that induced
	// this function (Section 4.4.2's significance statistic).
	Generated int
	// Overlap is the total estimated histogram overlap (Section 4.4.3).
	Overlap int
	// Score is Overlap − ψ(Func), the ranking criterion.
	Score int
}

// Candidates induces, filters and ranks function candidates for attribute
// attr under blocking result r, returning the best ones in rank order
// (highest score first). At most top candidates are returned; top ≤ 0
// returns all ranked survivors.
func Candidates(r *blocking.Result, attr int, metas []metafunc.Meta, cfg Config, top int, rng *rand.Rand) []Candidate {
	cfg = cfg.withDefaults()
	run := cfg.runner()
	coded := r.Coded()
	dict := coded.Dicts[attr]
	srcCodes, tgtCodes := coded.Src[attr], coded.Tgt[attr]
	mixed := r.MixedBlocks()
	if len(mixed) == 0 {
		return nil
	}

	// --- Stage 1: induce candidates from sampled target records. ---
	type tref struct {
		block *blocking.Block
		rec   int32
	}
	var targets []tref
	for _, b := range mixed {
		for _, t := range b.Tgt {
			targets = append(targets, tref{block: b, rec: t})
		}
	}
	k := SampleSize(cfg.Theta, cfg.Rho, cfg.MinGenerated)
	sampled := len(targets)
	if sampled > k {
		rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
		targets = targets[:k]
		sampled = k
	}
	// Distinct source value codes per sampled block. Computed serially in
	// first-appearance order so the capping shuffles draw from rng in a
	// deterministic sequence; induction below is then rng-free and may run
	// in parallel.
	srcVals := make(map[*blocking.Block][]int32)
	for _, tr := range targets {
		if _, ok := srcVals[tr.block]; ok {
			continue
		}
		seen := make(map[int32]bool)
		var vs []int32
		for _, s := range tr.block.Src {
			c := srcCodes[s]
			if !seen[c] {
				seen[c] = true
				vs = append(vs, c)
			}
		}
		if len(vs) > cfg.MaxSourceValuesPerBlock {
			rng.Shuffle(len(vs), func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
			vs = vs[:cfg.MaxSourceValuesPerBlock]
		}
		srcVals[tr.block] = vs
	}
	// Per-target induction, parallelisable; results are merged in target
	// order so the outcome is independent of task scheduling.
	type induced struct {
		key string
		f   metafunc.Func
	}
	perTargetFuncs := make([][]induced, len(targets))
	run(len(targets), func(i int) {
		tr := targets[i]
		out := dict.Value(tgtCodes[tr.rec])
		perTarget := make(map[string]bool)
		var list []induced
		// Metas are applied directly instead of through metafunc.InduceAll:
		// no meta family emits duplicate keys on one example (each family
		// uses a distinct key prefix and returns at most one function per
		// margin), so the per-target dedup below subsumes InduceAll's
		// per-example dedup and each candidate is keyed exactly once.
		for _, c := range srcVals[tr.block] {
			in := dict.Value(c)
			for _, m := range metas {
				for _, f := range m.Induce(in, out) {
					key := f.Key()
					if !perTarget[key] {
						perTarget[key] = true
						list = append(list, induced{key: key, f: f})
					}
				}
			}
		}
		perTargetFuncs[i] = list
	})
	genCount := make(map[string]int)
	exemplar := make(map[string]metafunc.Func)
	for _, list := range perTargetFuncs {
		for _, in := range list {
			if _, ok := exemplar[in.key]; !ok {
				exemplar[in.key] = in.f
			}
			genCount[in.key]++
		}
	}

	// --- Stage 2: significance filter. ---
	// At full sample size k the threshold is MinGenerated; with fewer
	// available targets it scales proportionally (never below 1).
	minGen := cfg.MinGenerated
	if sampled < k {
		minGen = int(math.Ceil(float64(cfg.MinGenerated) * float64(sampled) / float64(k)))
		if minGen < 1 {
			minGen = 1
		}
	}
	var cands []Candidate
	for key, n := range genCount { //affidavit:ordered filtered append is sorted by (Generated, Key) directly below
		if n >= minGen {
			cands = append(cands, Candidate{Func: exemplar[key], Generated: n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Generated != cands[j].Generated {
			return cands[i].Generated > cands[j].Generated
		}
		return cands[i].Func.Key() < cands[j].Func.Key()
	})
	if len(cands) == 0 {
		return nil
	}
	if len(cands) > cfg.MaxRanked {
		cands = cands[:cfg.MaxRanked]
	}

	// --- Stage 3: rank by estimated histogram overlap. ---
	rankByOverlap(r, attr, cands, cfg, rng)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		// Prefer the cheaper function, then a stable key order.
		pi, pj := cands[i].Func.Params(), cands[j].Func.Params()
		if pi != pj {
			return pi < pj
		}
		return cands[i].Func.Key() < cands[j].Func.Key()
	})
	if top > 0 && len(cands) > top {
		cands = cands[:top]
	}
	return cands
}

// rankByOverlap fills Overlap and Score by evaluating every candidate on
// the blocks of a Cochran-sized sample of source records (Section 4.4.3):
// within each sampled block, a candidate's value histogram over the block's
// source values is intersected with the block's target value histogram.
//
// Histograms are kept per interned value code. A candidate output that was
// never interned cannot equal any target value, so it is skipped via a
// read-only dictionary probe — ranking never grows the dictionaries.
func rankByOverlap(r *blocking.Result, attr int, cands []Candidate, cfg Config, rng *rand.Rand) {
	coded := r.Coded()
	dict := coded.Dicts[attr]
	srcCodes, tgtCodes := coded.Src[attr], coded.Tgt[attr]
	mixed := r.MixedBlocks()
	var sources []*blocking.Block // one entry per source record, its block
	for _, b := range mixed {
		for range b.Src {
			sources = append(sources, b)
		}
	}
	kPrime := CochranSize(cfg.Theta)
	if len(sources) > kPrime {
		rng.Shuffle(len(sources), func(i, j int) { sources[i], sources[j] = sources[j], sources[i] })
		sources = sources[:kPrime]
	}
	var blocks []*blocking.Block // sampled blocks, first-appearance order
	seen := make(map[*blocking.Block]bool)
	for _, b := range sources {
		if !seen[b] {
			seen[b] = true
			blocks = append(blocks, b)
		}
	}
	// Shared per-block histograms, computed once for all candidates.
	srcHists := make([]map[int32]int, len(blocks))
	tgtHists := make([]map[int32]int, len(blocks))
	for i, b := range blocks {
		sh := make(map[int32]int, len(b.Src))
		for _, s := range b.Src {
			sh[srcCodes[s]]++
		}
		th := make(map[int32]int, len(b.Tgt))
		for _, t := range b.Tgt {
			th[tgtCodes[t]]++
		}
		srcHists[i], tgtHists[i] = sh, th
	}
	// Candidates are scored independently (overlap sums are commutative over
	// blocks), so the ranking stage parallelises per candidate.
	cfg.runner()(len(cands), func(i int) {
		f := cands[i].Func
		applied := make(map[int32]int32) // input code → output code, -1 = not a snapshot value
		outHist := make(map[int32]int)
		overlap := 0
		for bi := range blocks {
			clear(outHist)
			//affidavit:ordered commutative accumulation: outHist[out] += n and the applied cache are both pure functions of the histogram multiset
			for c, n := range srcHists[bi] {
				out, ok := applied[c]
				if !ok {
					out = -1
					if o, found := dict.Lookup(f.Apply(dict.Value(c))); found {
						out = o
					}
					applied[c] = out
				}
				if out >= 0 {
					outHist[out] += n
				}
			}
			//affidavit:ordered commutative sum: overlap accumulates min(n, m) per value, independent of visit order
			for v, n := range outHist {
				if m := tgtHists[bi][v]; m > 0 {
					if m < n {
						overlap += m
					} else {
						overlap += n
					}
				}
			}
		}
		cands[i].Overlap = overlap
		cands[i].Score = overlap - f.Params()
	})
}
