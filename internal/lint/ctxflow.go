package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowScope names the packages whose long-running work must be
// cancellable — the discipline PR 3 established by hand: the search loop,
// the conversion, blocking refinements, sessions, the public front-end and
// the daemon.
var ctxflowScope = map[string]bool{
	"search":     true,
	"session":    true,
	"delta":      true,
	"blocking":   true,
	"affidavit":  true,
	"affidavitd": true,
}

// ctxflowEntryScope names the packages whose exported pipeline entry
// points must accept a context (directly, via a -Ctx/-Context sibling, or
// via a WithContext configurator on the receiver).
var ctxflowEntryScope = map[string]bool{
	"search":    true,
	"session":   true,
	"delta":     true,
	"affidavit": true,
}

// CtxFlow enforces the context discipline on pipeline packages:
//
//  1. a context.Context parameter must actually be used — stored, passed
//     down, or checked via Err/Done; an ignored ctx silently makes a path
//     uncancellable;
//  2. an unconditional `for {}` loop in a function that has a ctx must
//     reference it (poll/worker loops exit cooperatively);
//  3. exported entry points (Run, Explain*, Build*) must accept a context,
//     or pair with a -Ctx/-Context sibling, or their receiver must offer
//     WithContext.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "requires pipeline entry points and poll/worker loops to accept " +
		"and check context.Context: unused ctx parameters, ctx-blind " +
		"infinite loops, and context-less Run/Explain*/Build* entry points " +
		"are reported",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if !inScope(pass.Pkg.Path(), ctxflowScope) {
		return
	}
	entries := inScope(pass.Pkg.Path(), ctxflowEntryScope)
	// First pass: index package-level functions and methods by receiver so
	// the entry-point rule can see -Ctx siblings and WithContext.
	byRecv := make(map[string]map[string]bool) // receiver type name ("" = plain func) → names
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			r := recvTypeName(fd)
			if byRecv[r] == nil {
				byRecv[r] = make(map[string]bool)
			}
			byRecv[r][fd.Name.Name] = true
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxParams(pass, fd)
			if entries {
				checkEntryPoint(pass, fd, byRecv)
			}
		}
	}
}

// recvTypeName returns the receiver's type name, "" for plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// isContextParam reports whether the field's type is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxParams enforces rules 1 and 2 on one function declaration.
func checkCtxParams(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Report(name.Pos(), "context.Context parameter is discarded in %s; name it and "+
					"pass it down (or check ctx.Err/Done), so this path stays cancellable", fd.Name.Name)
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if !referencesObject(pass, fd.Body, obj) {
				pass.Report(name.Pos(), "context.Context parameter %q is never used in %s; pass it "+
					"down or check ctx.Err/Done, so this path stays cancellable", name.Name, fd.Name.Name)
				continue
			}
			checkInfiniteLoops(pass, fd, obj)
		}
	}
}

// checkInfiniteLoops reports unconditional for-loops that never look at
// the function's context (rule 2): a poll or worker loop that cannot
// observe cancellation runs forever after the caller has given up.
func checkInfiniteLoops(pass *Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Literals may run on other goroutines with their own lifecycle
			// (e.g. a worker given a done channel); rule 2 covers the
			// function's own loops.
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !referencesObject(pass, loop.Body, ctxObj) {
			pass.Report(loop.Pos(), "unconditional loop in %s never checks its context %q; "+
				"poll/worker loops must exit on ctx.Done/ctx.Err", fd.Name.Name, ctxObj.Name())
		}
		return true
	})
}

// referencesObject reports whether any identifier under n resolves to obj.
func referencesObject(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// entryName reports whether an exported function name is a pipeline entry
// point the context rule covers.
func entryName(name string) bool {
	if !ast.IsExported(name) {
		return false
	}
	if strings.HasSuffix(name, "Ctx") || strings.HasSuffix(name, "Context") {
		return false // already the context variant
	}
	return name == "Run" || strings.HasPrefix(name, "Explain") || strings.HasPrefix(name, "Build")
}

// checkEntryPoint enforces rule 3 on one declaration.
func checkEntryPoint(pass *Pass, fd *ast.FuncDecl, byRecv map[string]map[string]bool) {
	if !entryName(fd.Name.Name) {
		return
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
				return
			}
		}
	}
	recv := recvTypeName(fd)
	siblings := byRecv[recv]
	if siblings[fd.Name.Name+"Ctx"] || siblings[fd.Name.Name+"Context"] {
		return // legacy wrapper with a context-taking sibling
	}
	if recv != "" && siblings["WithContext"] {
		return // context is configured on the receiver (blocking.Result style)
	}
	pass.Report(fd.Name.Pos(), "exported pipeline entry point %s accepts no context.Context and has "+
		"no %s/%s sibling; long-running work must be cancellable",
		fd.Name.Name, fd.Name.Name+"Ctx", fd.Name.Name+"Context")
}
