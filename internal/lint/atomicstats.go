package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicStats enforces the spill.Stats/server-counter concurrency rule: a
// counter field is either always accessed through sync/atomic or never —
// mixing atomic.AddInt64(&s.n, …) with a plain `s.n++` (or a plain read in
// a snapshot method) is a data race that -race only catches when the
// schedule cooperates. The analyzer also reports value copies of structs
// that embed atomic types (copying tears the counters and defeats the
// sharing the atomics exist for).
var AtomicStats = &Analyzer{
	Name: "atomicstats",
	Doc: "forbids mixed atomic/plain access to counter fields (any field " +
		"passed to sync/atomic must always go through sync/atomic) and " +
		"value copies of structs containing atomic counters",
	Run: runAtomicStats,
}

func runAtomicStats(pass *Pass) {
	// Pass 1: collect every field that is the target of a sync/atomic call,
	// remembering the exact selector nodes so pass 2 can skip them.
	atomicFields := make(map[*types.Var]bool)
	atomicUses := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			switch {
			case strings.HasPrefix(fn.Name(), "Add"),
				strings.HasPrefix(fn.Name(), "Load"),
				strings.HasPrefix(fn.Name(), "Store"),
				strings.HasPrefix(fn.Name(), "Swap"),
				strings.HasPrefix(fn.Name(), "CompareAndSwap"):
			default:
				return true
			}
			addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v := fieldOf(pass.TypesInfo, sel); v != nil {
				atomicFields[v] = true
				atomicUses[sel] = true
			}
			return true
		})
	}
	// Pass 2: any other access to those fields is a mixed access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			v := fieldOf(pass.TypesInfo, sel)
			if v != nil && atomicFields[v] {
				pass.Report(sel.Pos(), "plain access to %s.%s, which is elsewhere accessed through "+
					"sync/atomic; mixed atomic/plain access is a data race — use the atomic "+
					"load/store everywhere", fieldOwner(v), v.Name())
			}
			return true
		})
	}
	// Pass 3: value copies of atomic-bearing structs.
	for _, f := range pass.Files {
		checkAtomicCopies(pass, f, atomicFields)
	}
}

// fieldOf resolves a selector to the struct field it names, nil otherwise.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldOwner names the struct type a field belongs to, best effort.
func fieldOwner(v *types.Var) string {
	if v.Pkg() != nil {
		return lastSegment(v.Pkg().Path())
	}
	return "struct"
}

// checkAtomicCopies reports expressions that copy a struct containing
// sync/atomic values (or legacy atomically-accessed fields) by value.
func checkAtomicCopies(pass *Pass, f *ast.File, legacy map[*types.Var]bool) {
	flag := func(e ast.Expr) {
		e = unparen(e)
		switch e.(type) {
		case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			// Value-yielding forms that duplicate existing state. Composite
			// literals, calls and unary & construct or reference instead.
		default:
			return
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil || !hasAtomicState(t, legacy) {
			return
		}
		pass.Report(e.Pos(), "copies %s by value; it carries atomic counters, which must be "+
			"shared by pointer (a copy tears concurrent updates)",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				flag(rhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				flag(v)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				flag(r)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				return true // atomic.X(&s.f, …) is the sanctioned access
			}
			for _, a := range n.Args {
				flag(a)
			}
		case *ast.KeyValueExpr:
			flag(n.Value)
		}
		return true
	})
}

// hasAtomicState reports whether t is a struct type directly containing a
// sync/atomic value or a field in the legacy atomically-accessed set.
func hasAtomicState(t types.Type, legacy map[*types.Var]bool) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if legacy[f] {
			return true
		}
		if named, ok := f.Type().(*types.Named); ok {
			if obj := named.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
				return true
			}
		}
	}
	return false
}
