// Package obs is a fixture stand-in for affidavit/internal/obs: the
// obsevent analyzer keys on the Sink type by package last-segment + name.
package obs

// Event is one pipeline event.
type Event struct {
	Kind int
	Poll int
}

// Sink receives events.
type Sink func(Event)
