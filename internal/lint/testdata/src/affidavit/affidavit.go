// Package affidavit is a doccomment fixture: the package path's last
// segment is "affidavit", so the analyzer holds it to the public-API
// documentation bar.
package affidavit

// Documented is fine: the type carries a doc comment.
type Documented struct{}

type Bare struct{} // want "exported type Bare has no doc comment"

type hidden struct{}

// Explain is fine.
func (d *Documented) Explain() {}

func (d *Documented) Chain() {} // want "exported method Chain has no doc comment"

// Methods on unexported types are not public API, documented or not.
func (h hidden) Run() {}

func (h hidden) Stop() {}

// New is fine.
func New() *Documented { return nil }

func Open() *Documented { return nil } // want "exported function Open has no doc comment"

func internalHelper() {}

// MaxDepth is fine: the decl comment covers the single spec.
const MaxDepth = 8

const DefaultWidth = 5 // want "exported const DefaultWidth has no doc comment"

// Grouped constants are covered by the group comment.
const (
	ModeSeq = iota
	ModePar
)

const (
	// KindLinear is fine: a spec comment inside an undocumented group.
	KindLinear = "linear"
	KindAffine = "affine" // want "exported const KindAffine has no doc comment"
	kindSecret = "secret"
)

var ErrClosed = errString("closed") // want "exported var ErrClosed has no doc comment"

// ErrBusy is fine.
var ErrBusy = errString("busy")

var defaultPool = 0

type errString string

func (e errString) Error() string { return string(e) }

// quiet keeps the unexported helpers referenced.
func quiet() {
	internalHelper()
	_ = defaultPool
	_ = hidden{}
}
