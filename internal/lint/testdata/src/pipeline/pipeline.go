// Package pipeline is an obsevent fixture: event emission must stay on
// the polling goroutine.
package pipeline

import (
	"sort"
	"sync"

	"obs"
)

// Observer mirrors the public observer interface.
type Observer interface {
	OnEvent(obs.Event)
}

type engine struct {
	sink obs.Sink
	obsv Observer
}

func (e *engine) emit(ev obs.Event) {
	if e.sink != nil {
		e.sink(ev)
	}
}

// runAll mirrors the worker pool: the callback runs on pool goroutines.
func (e *engine) runAll(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); fn(i) }(i)
	}
	wg.Wait()
}

// Flagged: emission from a spawned goroutine.
func badGoroutine(e *engine) {
	go func() {
		e.sink(obs.Event{Kind: 1}) // want "obs.Sink call inside a goroutine"
	}()
}

// Flagged: emission from a literal handed to the worker pool.
func badWorkerPool(e *engine) {
	e.runAll(4, func(i int) {
		e.emit(obs.Event{Poll: i}) // want "emit call inside a function literal handed to runAll"
	})
}

// Flagged: OnEvent through the observer interface, off-goroutine.
func badObserver(e *engine) {
	go e.report()
}

func (e *engine) report() {
	// Reachability across function boundaries is out of lexical scope, but
	// a literal inside a go statement is not.
	go func() {
		e.obsv.OnEvent(obs.Event{}) // want "OnEvent call inside a goroutine"
	}()
}

// Allowed: the finish-closure idiom — assigned first, invoked locally.
func goodFinishClosure(e *engine) {
	finish := func() {
		e.emit(obs.Event{Kind: 6})
	}
	finish()
}

// Allowed: sort callbacks run synchronously on this goroutine.
func goodSortCallback(e *engine, xs []int) {
	sort.Slice(xs, func(i, j int) bool {
		e.emit(obs.Event{})
		return xs[i] < xs[j]
	})
}

// Allowed: a justified synchronous callback.
func goodJustified(e *engine, apply func(func(int))) {
	apply(func(i int) {
		e.emit(obs.Event{Poll: i}) //affidavit:ignore obsevent apply invokes synchronously on the polling goroutine
	})
}
