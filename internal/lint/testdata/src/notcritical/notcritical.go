// Package notcritical is outside every scoped analyzer's package set:
// identical loops to the search fixture produce no findings here.
package notcritical

import "fmt"

// FreeOfDocs is exported and undocumented-looking to doccomment, but the
// package is outside the public-API scope, so no finding fires.
type FreeOfDocs struct{}

func (FreeOfDocs) Undescribed() {}

func freeToIterate(m map[string]int) []string {
	var out []string
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}
