// Fixture for the scratchreuse analyzer: pooled-scratch discipline in a
// package shaped like the blocking hot path.
package scratch

import "sync"

type table struct {
	keys []int32
	n    int
}

func (t *table) reset()             { t.n = 0 }
func (t *table) getOrInsert() int   { t.n++; return t.n }
func (t *table) lookup(k int32) int { return int(k) }

type slab struct {
	tab  table
	cnt  []int32
	next *slab
}

var pool = sync.Pool{New: func() any { return new(slab) }}

var boxing = sync.Pool{New: func() any {
	return slab{} // want "non-pointer .*box it into an interface"
}}

// good follows the full discipline: bind, reset a field, use, Put.
func good() int {
	sc := pool.Get().(*slab)
	sc.tab.reset()
	n := sc.tab.getOrInsert()
	pool.Put(sc)
	return n
}

// goodDefer resets the value itself and Puts via defer.
func goodDefer() int {
	sc := pool.Get().(*slab)
	defer pool.Put(sc)
	sc.tab.reset()
	return sc.tab.lookup(3)
}

// noReset reuses the dirty instance as-is.
func noReset() int {
	sc := pool.Get().(*slab) // want "used without a reset/clear call"
	n := sc.tab.getOrInsert()
	pool.Put(sc)
	return n
}

// noPut borrows and never returns the instance.
func noPut() int {
	sc := pool.Get().(*slab) // want "never Put back to its pool"
	sc.tab.reset()
	return sc.tab.getOrInsert()
}

// dropped discards the Get result outright.
func dropped() {
	pool.Get() // want "not bound to a variable"
}

var leaked *slab

// escapes stores, returns and publishes the borrowed value.
func escapes(out chan *slab) *slab {
	sc := pool.Get().(*slab)
	sc.tab.reset()
	leaked = sc // want "escapes the borrowing function"
	out <- sc   // want "escapes the borrowing function"
	pool.Put(sc)
	return sc // want "escapes the borrowing function"
}

// fieldEscape leaks the slab through a struct field.
func fieldEscape(holder *slab) {
	sc := pool.Get().(*slab)
	sc.tab.reset()
	holder.next = sc // want "escapes the borrowing function"
	pool.Put(sc)
}

// localAlias is fine: aliasing to a local does not extend the lifetime.
func localAlias() int {
	sc := pool.Get().(*slab)
	sc.tab.reset()
	alias := sc
	cnt := sc.cnt
	_ = cnt
	n := alias.tab.getOrInsert()
	pool.Put(sc)
	return n
}
