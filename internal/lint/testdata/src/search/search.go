// Package search is a mapiter/nondet fixture shaped like the real
// determinism-critical search package.
package search

import (
	"fmt"
	"sort"
)

// Flagged: the loop feeds an ordered sink (append of formatted entries).
func badCollect(m map[string]int) []string {
	var out []string
	for k, v := range m { // want "unordered iteration over map"
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// Flagged: values drive an order-sensitive accumulation (string concat).
func badConcat(m map[string]string) string {
	s := ""
	for _, v := range m { // want "unordered iteration over map"
		s = s + v
	}
	return s
}

// Flagged: float accumulation is order-sensitive (rounding).
func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "unordered iteration over map"
		sum += v
	}
	return sum
}

// Allowed: append then sort — the canonical sorted-keys idiom.
func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Allowed: integer counting commutes.
func goodCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n += v
		}
		n++
	}
	return n
}

// Allowed: map writes indexed by the loop key cannot collide.
func goodInvert(m map[string]int) map[string]bool {
	set := make(map[string]bool, len(m))
	for k, v := range m {
		if v == 0 {
			continue
		}
		set[k] = v > 0
	}
	return set
}

// Allowed: deleting visited keys commutes.
func goodPrune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Allowed: keyless iteration is order-blind.
func goodDrain(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Allowed: justified escape hatch.
func goodJustified(m map[string]int) int {
	best := -1
	//affidavit:ordered deterministic min over all entries with total-order tie-break
	for _, v := range m {
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}

// Still flagged: a directive without a justification suppresses nothing.
func badUnjustified(m map[string]int) int {
	best := -1
	//affidavit:ordered
	for _, v := range m { // want "carries no justification"
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}
