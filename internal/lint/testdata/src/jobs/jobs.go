// Package jobs is a jobstore fixture: the package path's last segment is
// "jobs", so the analyzer scopes it like the real affidavit/internal/jobs.
package jobs

import (
	"encoding/json"
	"sort"
)

type record struct {
	ID  string
	Seq int64
}

// taggedRecord smuggles a map into an otherwise flat record via a nested
// struct — containsMap must walk the structure, not just the top level.
type taggedRecord struct {
	ID   string
	Meta struct {
		Tags map[string]string
	}
}

type store struct {
	byID map[string]*record
}

// Flagged: the listing's order leaks map iteration order.
func (s *store) list() []record {
	var out []record
	for _, rec := range s.byID { // want "unordered iteration over map\[string\]\*record in the job store"
		if rec.Seq > 0 {
			out = append(out, *rec)
		}
	}
	return out
}

// Allowed: the canonical append-then-sort idiom.
func (s *store) ids() []string {
	var ids []string
	for id := range s.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Allowed: commutative accumulation only.
func (s *store) pending() int {
	n := 0
	for _, rec := range s.byID {
		if rec.Seq == 0 {
			n++
		}
	}
	return n
}

// Allowed: `for range m` — iterations are indistinguishable.
func (s *store) size() int {
	n := 0
	for range s.byID {
		n++
	}
	return n
}

// Allowed with a justified bare directive: ordered covers jobstore too.
func (s *store) member(id string) bool {
	//affidavit:ordered membership test: the loop exits on a hit, order is irrelevant
	for got := range s.byID {
		if got == id {
			return true
		}
	}
	return false
}

// Flagged: a map value's JSON bytes depend on encoder internals, not on
// a declared field order.
func encodeIndex(m map[string]int64) ([]byte, error) {
	return json.Marshal(m) // want "JSON-encoding map-bearing map\[string\]int64 in the job store"
}

// Flagged: the map hides one struct level down.
func encodeTagged(r taggedRecord) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ") // want "JSON-encoding map-bearing taggedRecord"
}

// Flagged: the streaming encoder path.
func encodeTo(enc *json.Encoder, recs []taggedRecord) error {
	return enc.Encode(recs) // want "JSON-encoding map-bearing \[\]taggedRecord"
}

// Allowed: a flat record's bytes are a pure function of field order.
func encodeFlat(r record) ([]byte, error) {
	return json.Marshal(r)
}

// Allowed with an analyzer-specific ignore.
func encodeDebug(m map[string]int64) ([]byte, error) {
	//affidavit:ignore jobstore debug dump, never journaled or addressed
	return json.Marshal(m)
}
