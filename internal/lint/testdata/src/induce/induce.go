// Package induce is a nondet fixture shaped like the real coded-path
// induction package.
package induce

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// Flagged: ambient nondeterminism in a coded path.
func bad(m map[string]int) string {
	t := time.Now()                                 // want "wall-clock values are nondeterministic"
	d := time.Since(t)                              // want "wall-clock values are nondeterministic"
	n := rand.Intn(10)                              // want "draws from the process-wide source"
	rand.Shuffle(n, func(i, j int) {})              // want "draws from the process-wide source"
	env := os.Getenv("HOME")                        // want "environment reads make runs machine-dependent"
	return fmt.Sprintf("%v %v %v %v", m, d, n, env) // want "map argument to fmt.Sprintf"
}

// Allowed: explicit seeded sources and value methods.
func good(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	v := rng.Intn(10)
	var zero time.Time
	return fmt.Sprintf("%d %s", v, zero.Format("2006"))
}

// Allowed: justified wall-time measurement (duration-only statistics).
func goodJustified() time.Duration {
	start := time.Now() //affidavit:ignore nondet wall time feeds a duration-only stat, never coded output
	work()
	return time.Since(start) //affidavit:ignore nondet wall time feeds a duration-only stat, never coded output
}

func work() {}
