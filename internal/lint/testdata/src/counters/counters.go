// Package counters is an atomicstats fixture: no mixed atomic/plain
// access, no value copies of atomic-bearing stats.
package counters

import "sync/atomic"

// legacyStats uses pre-typed atomics: the field is atomic only by
// convention, which is exactly what the analyzer polices.
type legacyStats struct {
	bytes int64
	parts int64
}

func (s *legacyStats) Note(n int64) {
	atomic.AddInt64(&s.bytes, n)
}

// Flagged: plain read of an atomically-written field.
func (s *legacyStats) Bytes() int64 {
	return s.bytes // want "plain access to counters.bytes"
}

// Flagged: plain increment of an atomically-written field.
func (s *legacyStats) Bump() {
	s.bytes++ // want "plain access to counters.bytes"
}

// Allowed: consistently atomic.
func (s *legacyStats) BytesAtomic() int64 {
	return atomic.LoadInt64(&s.bytes)
}

// Allowed: parts is never accessed atomically, so plain access is fine.
func (s *legacyStats) Parts() int64 {
	return s.parts
}

// typedStats uses the typed atomics, whose methods are the only access.
type typedStats struct {
	bytes atomic.Int64
}

func (s *typedStats) Note(n int64) { s.bytes.Add(n) }

// Flagged: copying tears the counters.
func snapshot(s *typedStats) typedStats {
	return *s // want "copies typedStats by value"
}

// Flagged: a legacy-atomic struct copied by value.
func snapshotLegacy(s *legacyStats) *legacyStats {
	cp := *s // want "copies legacyStats by value"
	return &cp
}

// Allowed: sharing by pointer.
func share(s *typedStats) *typedStats { return s }
