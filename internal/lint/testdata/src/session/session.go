// Package session is a ctxflow fixture shaped like the real pipeline
// session package.
package session

import "context"

// Flagged: the context parameter is accepted but never consulted.
func ExplainIgnored(ctx context.Context, n int) int { // want `context.Context parameter "ctx" is never used`
	return n * 2
}

// Flagged: a discarded context parameter.
func ExplainDiscarded(_ context.Context, n int) int { // want "context.Context parameter is discarded"
	return n + 1
}

// Flagged: the poll loop can never observe cancellation.
func ExplainBlindLoop(ctx context.Context, work chan int) int {
	_ = ctx.Err()
	total := 0
	for { // want "unconditional loop in ExplainBlindLoop never checks its context"
		w, ok := <-work
		if !ok {
			return total
		}
		total += w
	}
}

// Allowed: the loop selects on ctx.Done.
func ExplainPolling(ctx context.Context, work chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case w := <-work:
			total += w
		}
	}
}

// Flagged: an exported entry point with no context and no sibling.
func ExplainPair(a, b string) string { // want "accepts no context.Context"
	return a + b
}

// Allowed: the legacy wrapper pairs with a context-taking sibling.
func Build(a string) string { return BuildCtx(context.Background(), a) }

func BuildCtx(ctx context.Context, a string) string {
	if ctx.Err() != nil {
		return ""
	}
	return a
}

// Result mirrors blocking.Result: context is configured on the receiver.
type Result struct{ ctx context.Context }

func (r *Result) WithContext(ctx context.Context) *Result { return &Result{ctx: ctx} }

// Allowed: Refine-style entry whose receiver offers WithContext.
func (r *Result) Explain(n int) int {
	if r.ctx != nil && r.ctx.Err() != nil {
		return 0
	}
	return n
}
