package lint

import (
	"go/ast"
	"go/types"
)

// jobstoreScope names the journaling packages. The job subsystem and the
// snapshot-history catalog share one determinism contract, distinct from
// the explanation pipeline's: journal lines and content addresses are
// compared byte-for-byte across process restarts, so replay and dedupe
// only work while the on-disk encoding is a pure function of declared
// struct fields.
var jobstoreScope = map[string]bool{
	"jobs":    true,
	"catalog": true,
}

// JobStore guards the byte-stability invariants of the durable job store:
//
//   - unordered map iteration, with the same escape hatches as mapiter
//     (append-then-sort, provably commutative bodies, //affidavit:ordered):
//     replayed state and /jobs listings must not depend on Go's randomised
//     map order;
//   - JSON encoding of map-bearing values (json.Marshal, MarshalIndent,
//     or (*json.Encoder).Encode): journal lines and stored results are
//     the crash-recovery contract and feed content addressing, so their
//     bytes must follow declared field order, not encoder internals.
//     Keep journaled types map-free; if a map truly belongs in a record,
//     flatten it to a sorted slice first and justify the call with
//     //affidavit:ignore jobstore <why>.
var JobStore = &Analyzer{
	Name: "jobstore",
	Doc: "flags unordered map iteration and JSON encoding of map-bearing " +
		"values in the durable job store (internal/jobs), whose journal " +
		"lines and content addresses must be byte-stable across restarts",
	Run: runJobStore,
}

func runJobStore(pass *Pass) {
	if !inScope(pass.Pkg.Path(), jobstoreScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkJobEncode(pass, call)
			}
			stmts := statementList(n)
			for i, stmt := range stmts {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(pass.TypesInfo.TypeOf(rng.X)) {
					continue
				}
				key := rangeVar(rng.Key)
				val := rangeVar(rng.Value)
				if key == nil && val == nil {
					continue // `for range m`: iterations are indistinguishable
				}
				var next ast.Stmt
				if i+1 < len(stmts) {
					next = stmts[i+1]
				}
				if appendThenSort(pass.TypesInfo, rng, next) {
					continue
				}
				if orderInsensitiveStmts(pass.TypesInfo, rng.Body.List, key) {
					continue
				}
				pass.Report(rng.Pos(), "unordered iteration over %s in the job store; "+
					"replayed state and listings must not depend on map order — "+
					"sort the keys first, or justify with //affidavit:ordered",
					types.TypeString(pass.TypesInfo.TypeOf(rng.X), types.RelativeTo(pass.Pkg)))
			}
			return true
		})
	}
}

// checkJobEncode flags JSON encodes whose argument's type is or contains
// a map.
func checkJobEncode(pass *Pass, call *ast.CallExpr) {
	var arg ast.Expr
	switch {
	case isPkgFunc(pass.TypesInfo, call, "encoding/json", "Marshal"),
		isPkgFunc(pass.TypesInfo, call, "encoding/json", "MarshalIndent"):
		if len(call.Args) == 0 {
			return
		}
		arg = call.Args[0]
	case isJSONEncoderEncode(pass.TypesInfo, call):
		if len(call.Args) != 1 {
			return
		}
		arg = call.Args[0]
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(arg)
	if t == nil || !containsMap(t, make(map[types.Type]bool)) {
		return
	}
	pass.Report(call.Pos(), "JSON-encoding map-bearing %s in the job store; "+
		"journal lines and stored results must be a pure function of declared "+
		"field order — flatten the map to a sorted slice, or justify with "+
		"//affidavit:ignore jobstore",
		types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// isJSONEncoderEncode reports whether call is (*encoding/json.Encoder).Encode.
func isJSONEncoderEncode(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Encode" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedFrom(sig.Recv().Type(), "json", "Encoder")
}

// containsMap walks t's structure — pointers, slices, arrays, struct
// fields — looking for a map. Interface-typed fields are treated as
// map-free (their dynamic contents are not statically knowable), and the
// seen set breaks recursive types.
func containsMap(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Map:
		return true
	case *types.Pointer:
		return containsMap(u.Elem(), seen)
	case *types.Slice:
		return containsMap(u.Elem(), seen)
	case *types.Array:
		return containsMap(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMap(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
