package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mapiterScope names the determinism-critical packages: every package
// whose output (explanations, blocks, stats JSON, reports) is pinned
// byte-identical across engines, plus the JSON encoders in the public
// package. Matching is by last path element (see inScope).
var mapiterScope = map[string]bool{
	"search":    true,
	"delta":     true,
	"blocking":  true,
	"induce":    true,
	"align":     true,
	"report":    true,
	"table":     true,
	"affidavit": true, // public package: Result.JSON, metrics text, sources
}

// MapIter flags `for range` over a map in a determinism-critical package.
// Go randomises map iteration order per run, so any such loop that feeds
// ordered output (explanation records, induced candidate lists, JSON,
// Prometheus text) silently breaks the byte-identical guarantee the
// paper's evaluation depends on.
//
// A loop is allowed without annotation when the analyzer can see it is
// order-insensitive:
//
//   - the body only performs commutative accumulation: map writes indexed
//     by the loop key, delete(...), integer/boolean counter updates
//     (x++, x += v, x |= v, ...), optionally guarded by call-free ifs;
//   - or the loop only appends to a slice that the next statement sorts.
//
// Anything else needs `//affidavit:ordered <why>` on or above the range
// statement.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags unordered map iteration in determinism-critical packages " +
		"(search, delta, blocking, induce, align, report, table, and the " +
		"public JSON/metrics encoders) unless the loop provably feeds an " +
		"order-insensitive sink or carries //affidavit:ordered",
	Run: runMapIter,
}

func runMapIter(pass *Pass) {
	if !inScope(pass.Pkg.Path(), mapiterScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmts := statementList(n)
			for i, stmt := range stmts {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(pass.TypesInfo.TypeOf(rng.X)) {
					continue
				}
				key := rangeVar(rng.Key)
				val := rangeVar(rng.Value)
				if key == nil && val == nil {
					// `for range m`: iterations are indistinguishable, so
					// their order cannot matter.
					continue
				}
				var next ast.Stmt
				if i+1 < len(stmts) {
					next = stmts[i+1]
				}
				if appendThenSort(pass.TypesInfo, rng, next) {
					continue
				}
				if orderInsensitiveStmts(pass.TypesInfo, rng.Body.List, key) {
					continue
				}
				pass.Report(rng.Pos(), "unordered iteration over %s in determinism-critical package %s; "+
					"sort the keys first, or justify with //affidavit:ordered",
					types.TypeString(pass.TypesInfo.TypeOf(rng.X), types.RelativeTo(pass.Pkg)),
					pass.Pkg.Path())
			}
			return true
		})
	}
}

// statementList returns n's statement list when n owns one (the contexts a
// range statement can appear in with addressable siblings).
func statementList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// rangeVar resolves a range clause variable to its identifier; blank and
// absent variables return nil.
func rangeVar(e ast.Expr) *ast.Ident {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

// appendThenSort recognises the canonical sorted-keys idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)            // or sort.Ints / sort.Slice / slices.Sort...
//
// The append order varies run to run, but the sort makes the final slice a
// pure function of the key multiset.
func appendThenSort(info *types.Info, rng *ast.RangeStmt, next ast.Stmt) bool {
	if len(rng.Body.List) != 1 || next == nil {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fn, ok := unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" || !isBuiltin(info, fn) {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || arg0.Name != dst.Name {
		return false
	}
	// The next statement must sort the destination slice.
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok || len(sortCall.Args) == 0 {
		return false
	}
	fn := calleeFunc(info, sortCall)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		default:
			return false
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
		default:
			return false
		}
	default:
		return false
	}
	sorted, ok := unparen(sortCall.Args[0]).(*ast.Ident)
	return ok && sorted.Name == dst.Name
}

// orderInsensitiveStmts reports whether every statement commutes across
// iterations: executing the loop body for the map's entries in any order
// produces identical state. key is the range key identifier (nil when
// blank), used to prove map writes cannot collide.
func orderInsensitiveStmts(info *types.Info, stmts []ast.Stmt, key *ast.Ident) bool {
	for _, s := range stmts {
		if !orderInsensitiveStmt(info, s, key) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, s ast.Stmt, key *ast.Ident) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(info, s, key)
	case *ast.IncDecStmt:
		// x++ / x-- on integers commutes (wrap-around included); floats
		// round differently per order.
		return isIntExpr(info, s.X) && isCallFree(info, s.X)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		// delete(m, k) commutes: each key is visited once.
		if fn, ok := unparen(call.Fun).(*ast.Ident); ok && fn.Name == "delete" && isBuiltin(info, fn) {
			return isCallFree(info, call.Args[0]) && isCallFree(info, call.Args[1])
		}
		return false
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return orderInsensitiveStmts(info, s.List, key)
	case *ast.IfStmt:
		if s.Init != nil && !orderInsensitiveStmt(info, s.Init, key) {
			return false
		}
		if !isCallFree(info, s.Cond) {
			return false
		}
		if !orderInsensitiveStmts(info, s.Body.List, key) {
			return false
		}
		return s.Else == nil || orderInsensitiveStmt(info, s.Else, key)
	}
	return false
}

func orderInsensitiveAssign(info *types.Info, s *ast.AssignStmt, key *ast.Ident) bool {
	switch s.Tok {
	case token.ASSIGN:
		// Plain writes only commute when the destinations cannot collide
		// across iterations: a map indexed by this iteration's key (keys
		// are distinct), or the blank identifier.
		for _, lhs := range s.Lhs {
			if isBlank(lhs) {
				continue
			}
			idx, ok := unparen(lhs).(*ast.IndexExpr)
			if !ok || !isMapType(info.TypeOf(idx.X)) {
				return false
			}
			ki, ok := unparen(idx.Index).(*ast.Ident)
			if !ok || key == nil || objectOf(info, ki) == nil || objectOf(info, ki) != objectOf(info, key) {
				return false
			}
		}
		for _, rhs := range s.Rhs {
			if !isCallFree(info, rhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative, associative integer accumulation; destinations may
		// collide freely. Float += is order-sensitive (rounding) and
		// string += is concatenation — both excluded by the int check.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		return isIntExpr(info, s.Lhs[0]) && isCallFree(info, s.Lhs[0]) && isCallFree(info, s.Rhs[0])
	}
	return false
}

// isBuiltin reports whether id resolves to a universe builtin.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// objectOf resolves an identifier whether it defines or uses its object.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isIntExpr reports whether e has integer type.
func isIntExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isCallFree reports whether evaluating e cannot run user code: no calls
// except the pure builtins len and cap.
func isCallFree(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return true
	}
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := unparen(call.Fun).(*ast.Ident); ok && isBuiltin(info, fn) {
			switch fn.Name {
			case "len", "cap":
				return true
			}
		}
		pure = false
		return false
	})
	return pure
}
