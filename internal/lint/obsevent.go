package lint

import (
	"go/ast"
	"go/types"
)

// ObsEvent enforces the PR 4/5 observer rule: pipeline events are emitted
// from the polling goroutine only, so event streams stay byte-deterministic
// for a fixed seed regardless of Workers. Concretely, a call to an
// obs.Sink value, to a method named OnEvent, or to an emit helper must not
// appear inside code that escapes onto another goroutine:
//
//   - any function literal launched by a `go` statement (or nested in one);
//   - any function literal passed directly as a call argument (worker
//     pools like engine.runAll execute those on pool goroutines) — except
//     arguments to the synchronous sort/slices helpers.
//
// Emission from a literal that is first assigned to a variable and invoked
// locally (the finish-closure idiom) stays allowed. Genuinely synchronous
// callbacks can justify themselves with //affidavit:ignore obsevent.
var ObsEvent = &Analyzer{
	Name: "obsevent",
	Doc: "requires Observer/obs.Sink emission (OnEvent, emit helpers) to " +
		"stay on the polling goroutine: event emission inside go-routines " +
		"or function literals handed to worker pools is reported",
	Run: runObsEvent,
}

func runObsEvent(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// Everything under a go statement runs off-goroutine,
				// including literals passed as arguments to the spawned call.
				checkEscaping(pass, n.Call, "a goroutine")
				return false
			case *ast.CallExpr:
				if syncCallee(pass.TypesInfo, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := unparen(arg).(*ast.FuncLit); ok {
						checkEscaping(pass, lit.Body, "a function literal handed to "+calleeLabel(n))
					}
				}
			}
			return true
		})
	}
}

// syncCallee reports callees known to invoke their function arguments
// synchronously on the calling goroutine.
func syncCallee(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices", "strings", "bytes":
		return true
	}
	return false
}

// calleeLabel names the callee for the diagnostic.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "a call"
}

// checkEscaping reports every event emission lexically under n.
func checkEscaping(pass *Pass, n ast.Node, where string) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := emissionCall(pass.TypesInfo, call); ok {
			pass.Report(call.Pos(), "%s inside %s: pipeline events must be emitted from the "+
				"polling goroutine so event streams stay deterministic across worker counts",
				name, where)
		}
		return true
	})
}

// emissionCall reports whether the call emits a pipeline event: invoking
// an obs.Sink value, an OnEvent method, or an emit helper.
func emissionCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if t := info.TypeOf(call.Fun); t != nil && namedFrom(t, "obs", "Sink") {
		return "obs.Sink call", true
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "OnEvent":
			return "OnEvent call", true
		case "emit":
			return "emit call", true
		}
	case *ast.Ident:
		if fun.Name == "emit" {
			return "emit call", true
		}
	}
	return "", false
}
