package lint

import (
	"go/ast"
)

// docScope names the packages whose exported surface is the repo's public
// API: the root affidavit package (the library entry point) and the
// snapshot-history catalog. Internal pipeline packages churn too fast to
// hold to the same bar; the public surface is the contract users read via
// godoc, so every exported symbol there must explain itself.
var docScope = map[string]bool{
	"affidavit": true,
	"catalog":   true,
}

// DocComment reports exported top-level symbols in the public packages
// that lack a doc comment. Functions and methods need a comment on the
// declaration (methods only when the receiver type is itself exported);
// grouped type/var/const declarations are satisfied by either a comment
// on the group or one on the individual spec.
var DocComment = &Analyzer{
	Name: "doccomment",
	Doc: "flags exported symbols without doc comments in the public " +
		"packages (the root affidavit package and internal/catalog), " +
		"whose godoc is the API contract",
	Run: runDocComment,
}

func runDocComment(pass *Pass) {
	if !inScope(pass.Pkg.Path(), docScope) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkDocFunc(pass, d)
			case *ast.GenDecl:
				checkDocGen(pass, d)
			}
		}
	}
}

// checkDocFunc flags exported functions and methods of exported receiver
// types that carry no doc comment.
func checkDocFunc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !ast.IsExported(recv) {
			return // a method on an unexported type is not public API
		}
		kind = "method"
	}
	pass.Report(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
}

// checkDocGen flags exported names in type/var/const declarations where
// neither the group nor the spec carries a doc comment.
func checkDocGen(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				pass.Report(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil {
				continue
			}
			kind := "var"
			if d.Tok.String() == "const" {
				kind = "const"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Report(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
				}
			}
		}
	}
}

// receiverTypeName extracts the receiver's type name, unwrapping pointers
// and generic instantiations.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
