// Package lint is affidavit's in-tree static-analysis suite: analyzers
// that machine-check the determinism, context and observer invariants the
// reproduction depends on (every optimisation is pinned byte-identical to
// the sequential in-memory reference — an unsorted map iteration or a
// stray time.Now in a coded path silently breaks that), plus the
// byte-stability contract of the durable job store's journal.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so a future migration to the real module is
// mechanical, but it is built entirely on the standard library: the repo
// vendors no dependencies, and the container this grows in has no module
// proxy. cmd/affidavitlint compiles the suite into a vet tool speaking the
// go vet -vettool unit-checker protocol.
//
// Two comment directives suppress findings, and both demand a
// justification so the escape hatch documents itself:
//
//	//affidavit:ordered <why this loop is order-insensitive>
//	//affidavit:ignore <analyzer> <why this finding does not apply>
//
// A directive covers diagnostics on its own line and on the line directly
// below it (so it works both as a trailing comment and as a standalone
// comment above the statement). A directive without a justification does
// not suppress anything — the finding is reported with a note instead.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, shaped like analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //affidavit:ignore directives.
	Name string
	// Doc is the one-paragraph description -list prints.
	Doc string
	// Run inspects the package and reports findings through pass.Report.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer, shaped like
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Package bundles the inputs every analyzer needs: syntax, types and
// positions for one compilation unit.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Suite returns every analyzer, in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		MapIter,
		NonDet,
		CtxFlow,
		ObsEvent,
		AtomicStats,
		ScratchReuse,
		JobStore,
		DocComment,
	}
}

// orderedAnalyzers names the analyzers a bare //affidavit:ordered
// directive covers: "this loop is order-insensitive" is a property of the
// loop, not of whichever analyzer happens to guard the package.
func orderedAnalyzers() map[string]bool {
	return map[string]bool{
		MapIter.Name:  true,
		JobStore.Name: true,
	}
}

// Run applies the analyzers to pkg, filters suppressed findings, drops
// findings positioned in _test.go files (the invariants guard shipped
// code; tests assert them), and returns the rest sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		a.Run(pass)
	}
	dirs := collectDirectives(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if strings.HasSuffix(d.Position.Filename, "_test.go") {
			continue
		}
		switch dirs.covers(d) {
		case coverJustified:
			continue
		case coverUnjustified:
			d.Message += " (an //affidavit directive matches but carries no justification — explain why, e.g. //affidavit:ordered keys feed a sorted slice)"
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// directive is one //affidavit: suppression comment.
type directive struct {
	file      string
	line      int
	analyzer  string // "" = ordered shorthand (any order analyzer)
	justified bool
}

type directiveSet []directive

type coverage int

const (
	coverNone coverage = iota
	coverUnjustified
	coverJustified
)

// covers reports whether a directive on the diagnostic's line or the line
// above suppresses it.
func (ds directiveSet) covers(d Diagnostic) coverage {
	cov := coverNone
	for _, dir := range ds {
		if dir.file != d.Position.Filename {
			continue
		}
		if dir.line != d.Position.Line && dir.line != d.Position.Line-1 {
			continue
		}
		if dir.analyzer == "" {
			if !orderedAnalyzers()[d.Analyzer] {
				continue
			}
		} else if dir.analyzer != d.Analyzer {
			continue
		}
		if dir.justified {
			return coverJustified
		}
		cov = coverUnjustified
	}
	return cov
}

// collectDirectives scans every comment for affidavit directives.
func collectDirectives(fset *token.FileSet, files []*ast.File) directiveSet {
	var ds directiveSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//affidavit:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				kind, rest, _ := strings.Cut(text, " ")
				rest = strings.TrimSpace(rest)
				switch kind {
				case "ordered":
					ds = append(ds, directive{
						file:      pos.Filename,
						line:      pos.Line,
						justified: rest != "",
					})
				case "ignore":
					name, why, _ := strings.Cut(rest, " ")
					ds = append(ds, directive{
						file:      pos.Filename,
						line:      pos.Line,
						analyzer:  name,
						justified: strings.TrimSpace(why) != "",
					})
				}
			}
		}
	}
	return ds
}

// lastSegment returns the final element of a package path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// inScope reports whether the package path names one of the packages a
// scoped analyzer guards. Paths match on their last element, so
// analysistest-style fixture packages ("search", "report") scope exactly
// like their real counterparts ("affidavit/internal/search").
func inScope(pkgPath string, scope map[string]bool) bool {
	return scope[lastSegment(pkgPath)]
}

// isPkgFunc reports whether the call resolves to the package-level
// function pkgPath.name (methods have a receiver and never match).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// unparen strips parentheses (go.mod pins go1.21, predating ast.Unparen).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// namedFrom reports whether t is (or points to) the named type
// pkgLastSeg.name, matching the defining package by last path element so
// fixtures scope like the real tree.
func namedFrom(t types.Type, pkgLastSeg, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && lastSegment(obj.Pkg().Path()) == pkgLastSeg
}
