package lint_test

import (
	"testing"

	"affidavit/internal/lint"
	"affidavit/internal/lint/linttest"
)

// Each analyzer is exercised against analysistest-style fixtures: the
// `// want` comments in testdata/src/<pkg> are the expected findings, and
// the harness fails on both missed and unexpected diagnostics — so every
// fixture line doubles as a regression test that the analyzer fires (and
// stays quiet) exactly where documented.

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata", "search", lint.MapIter)
}

func TestMapIterOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata", "notcritical", lint.MapIter)
}

func TestNonDet(t *testing.T) {
	linttest.Run(t, "testdata", "induce", lint.NonDet)
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata", "session", lint.CtxFlow)
}

func TestObsEvent(t *testing.T) {
	linttest.Run(t, "testdata", "pipeline", lint.ObsEvent)
}

func TestAtomicStats(t *testing.T) {
	linttest.Run(t, "testdata", "counters", lint.AtomicStats)
}

func TestScratchReuse(t *testing.T) {
	linttest.Run(t, "testdata", "scratch", lint.ScratchReuse)
}

func TestJobStore(t *testing.T) {
	linttest.Run(t, "testdata", "jobs", lint.JobStore)
}

func TestJobStoreOutOfScope(t *testing.T) {
	// The same fixture under a different last path segment must be silent.
	linttest.Run(t, "testdata", "notcritical", lint.JobStore)
}

func TestDocComment(t *testing.T) {
	linttest.Run(t, "testdata", "affidavit", lint.DocComment)
}

func TestDocCommentOutOfScope(t *testing.T) {
	// Internal pipeline packages are not held to the public-API doc bar.
	linttest.Run(t, "testdata", "notcritical", lint.DocComment)
}

func TestSuiteComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range lint.Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"mapiter", "nondet", "ctxflow", "obsevent", "atomicstats", "scratchreuse", "jobstore", "doccomment"} {
		if !names[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}
