// Package linttest runs lint analyzers over fixture packages the way
// golang.org/x/tools/go/analysis/analysistest does, without the x/tools
// dependency: fixture sources live under testdata/src/<pkg>/, expected
// findings are `// want "regexp"` comments on the offending line, and the
// harness reports both missed and unexpected diagnostics.
//
// Fixture imports resolve first against testdata/src (so fixtures can
// declare stand-ins for repo packages like obs or spill under the package
// path the analyzers key on), then against the standard library via the
// source importer.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"affidavit/internal/lint"
)

// Run analyzes the fixture package testdata/src/<pkgpath> with the given
// analyzers and compares the diagnostics against the fixture's // want
// comments. The fixture's package path is pkgpath itself, so a fixture
// directory named like a critical package ("search", "report") scopes
// exactly like its real counterpart.
func Run(t *testing.T, testdata string, pkgpath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	ld := newLoader(testdata)
	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	got := lint.Run(pkg, analyzers)
	want := expectations(t, pkg.Fset, pkg.Files)

	matched := make([]bool, len(want))
	for _, d := range got {
		ok := false
		for i, w := range want {
			if matched[i] || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for i, w := range want {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.rx)
		}
	}
}

// expectation is one parsed // want comment.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectations parses `// want "rx" ["rx"...]` comments; each quoted
// pattern is one expected diagnostic on that line.
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var want []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
					text := strings.ReplaceAll(q[1], `\"`, `"`)
					rx, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					want = append(want, expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].file != want[j].file {
			return want[i].file < want[j].file
		}
		return want[i].line < want[j].line
	})
	return want
}

// loader type-checks fixture packages, resolving imports fixture-first.
type loader struct {
	testdata string
	fset     *token.FileSet
	source   types.Importer
	cache    map[string]*loaded
}

type loaded struct {
	pkg   *lint.Package
	types *types.Package
	err   error
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		testdata: testdata,
		fset:     fset,
		source:   importer.ForCompiler(fset, "source", nil),
		cache:    make(map[string]*loaded),
	}
}

// load parses and type-checks testdata/src/<path>.
func (ld *loader) load(path string) (*lint.Package, error) {
	if c, ok := ld.cache[path]; ok {
		return c.pkg, c.err
	}
	c := &loaded{}
	ld.cache[path] = c
	c.pkg, c.types, c.err = ld.check(path)
	return c.pkg, c.err
}

func (ld *loader) check(path string) (*lint.Package, *types.Package, error) {
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: importerFunc(func(imp string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join(ld.testdata, "src", filepath.FromSlash(imp))); err == nil {
			p, err := ld.load(imp)
			_ = p
			if err != nil {
				return nil, err
			}
			return ld.cache[imp].types, nil
		}
		return ld.source.Import(imp)
	})}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return &lint.Package{Fset: ld.fset, Files: files, Types: tpkg, Info: info}, tpkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
