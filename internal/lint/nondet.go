package lint

import (
	"go/ast"
	"go/types"
)

// nondetScope names the coded/search-path packages: everything between
// interning and rendering whose behaviour must be a pure function of the
// snapshots and the seed. The service layer (cmd/affidavitd, sessions) is
// deliberately out of scope — wall clocks and environment belong there.
// trace is in scope as a consumer of the deterministic event stream: its
// one sanctioned clock site carries a justified ignore directive, and the
// analyzer keeps new ones from sneaking in.
var nondetScope = map[string]bool{
	"search":   true,
	"delta":    true,
	"blocking": true,
	"induce":   true,
	"align":    true,
	"table":    true,
	"metafunc": true,
	"value":    true,
	"report":   true,
	"trace":    true,
}

// NonDet bans the ambient-nondeterminism entry points inside coded/search
// paths: wall clocks (time.Now/Since), the process-global math/rand source
// (per-probe seeded rngs are fine — those are methods on *rand.Rand),
// environment reads, and maps formatted through fmt. Each is a way for two
// runs over identical snapshots and seeds to produce different bytes.
var NonDet = &Analyzer{
	Name: "nondet",
	Doc: "bans time.Now/Since, global math/rand functions, os.Getenv and " +
		"map arguments to fmt in coded/search-path packages, where output " +
		"must be a pure function of snapshots and seed",
	Run: runNonDet,
}

// fmtFuncs are the fmt functions whose rendering of a map argument depends
// on reflection over an unordered type.
var fmtFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

func runNonDet(pass *Pass) {
	if !inScope(pass.Pkg.Path(), nondetScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				// Methods are fine: *rand.Rand methods draw from an explicit
				// seeded source, time.Time methods operate on a value.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Report(call.Pos(), "time.%s in coded path %s: wall-clock values are "+
						"nondeterministic; thread timings through the caller or justify with "+
						"//affidavit:ignore nondet", fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				// Every package-level function draws from the shared global
				// source; New/NewSource construct explicit seeded ones.
				switch fn.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				default:
					pass.Report(call.Pos(), "global %s.%s in coded path %s: draws from the "+
						"process-wide source; use a seeded *rand.Rand (per-probe rngs) instead",
						lastSegment(fn.Pkg().Path()), fn.Name(), pass.Pkg.Path())
				}
			case "os":
				switch fn.Name() {
				case "Getenv", "LookupEnv", "Environ":
					pass.Report(call.Pos(), "os.%s in coded path %s: environment reads make "+
						"runs machine-dependent; plumb configuration through Options",
						fn.Name(), pass.Pkg.Path())
				}
			case "fmt":
				if !fmtFuncs[fn.Name()] {
					return true
				}
				for _, arg := range call.Args {
					if isMapType(pass.TypesInfo.TypeOf(arg)) {
						pass.Report(arg.Pos(), "map argument to fmt.%s in coded path %s: "+
							"rendering depends on reflection over an unordered type; "+
							"render entries in sorted key order instead", fn.Name(), pass.Pkg.Path())
					}
				}
			}
			return true
		})
	}
}
