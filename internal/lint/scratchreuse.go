package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ScratchReuse enforces the pooled-scratch discipline the allocation-free
// hot paths rely on (blocking's countPool is the template): a value taken
// from a sync.Pool is dirty, function-local, and borrowed.
//
// Within the function that calls (*sync.Pool).Get, the analyzer requires:
//
//   - the Get result is bound to a variable (a discarded Get leaks the
//     pooled instance for no benefit);
//   - a reset/clear method is called on the value — or on a field of it —
//     before it is reused (Pool hands back instances with whatever state
//     the last user left);
//   - the value is returned to its pool with (*sync.Pool).Put on the same
//     function's paths;
//   - the value never escapes the function: not returned, not assigned to
//     a field, global, map or slice element, not sent on a channel. A
//     pooled slab that outlives its run aliases the next run's scratch —
//     the exact corruption the determinism suites cannot reliably catch.
//
// It also flags sync.Pool New functions that return non-pointer values:
// every Put of such a value boxes it into an interface, allocating the
// very garbage the pool exists to avoid.
var ScratchReuse = &Analyzer{
	Name: "scratchreuse",
	Doc: "enforces the pooled-scratch discipline: sync.Pool values must be " +
		"bound, reset before reuse, Put back, and must never escape the " +
		"borrowing function; Pool.New must return a pointer",
	Run: runScratchReuse,
}

func runScratchReuse(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkPoolNew(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBorrows(pass, n.Body)
				}
				return false // checkBorrows descends into nested literals itself
			}
			return true
		})
	}
}

// isPoolMethod reports whether call is (*sync.Pool).<name>.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedFrom(sig.Recv().Type(), "sync", "Pool")
}

// checkPoolNew flags sync.Pool literals whose New returns a non-pointer.
func checkPoolNew(pass *Pass, lit *ast.CompositeLit) {
	if t := pass.TypesInfo.TypeOf(lit); t == nil || !namedFrom(t, "sync", "Pool") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "New" {
			continue
		}
		fn, ok := unparen(kv.Value).(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, isNested := n.(*ast.FuncLit); isNested {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			t := pass.TypesInfo.TypeOf(ret.Results[0])
			if t == nil {
				return true
			}
			if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
				pass.Report(ret.Pos(), "sync.Pool New returns a non-pointer %s; every Put will box "+
					"it into an interface and allocate — return a pointer instead",
					types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
			return true
		})
	}
}

// borrow tracks one pooled value inside the borrowing function.
type borrow struct {
	name     *ast.Ident
	put      bool
	reset    bool
	escapePo []ast.Node // nodes where the value escapes
}

// checkBorrows analyzes one function body's Pool.Get discipline.
func checkBorrows(pass *Pass, body *ast.BlockStmt) {
	borrows := make(map[*types.Var]*borrow)

	// Pass A: find Get calls and how their results are bound.
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if ok && len(assign.Rhs) == 1 {
			if v := pooledVarOf(pass, assign); v != nil {
				id := assign.Lhs[0].(*ast.Ident)
				borrows[v] = &borrow{name: id}
				return true
			}
		}
		if call, ok := n.(*ast.CallExpr); ok && isPoolMethod(pass.TypesInfo, call, "Get") {
			if !isBoundGet(pass, body, call) {
				pass.Report(call.Pos(), "result of sync.Pool Get is not bound to a variable; "+
					"the pooled instance is lost and can never be Put back")
			}
		}
		return true
	})
	if len(borrows) == 0 {
		return
	}

	// Pass B: classify every other use of each borrowed variable.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPoolMethod(pass.TypesInfo, n, "Put") && len(n.Args) == 1 {
				if b := borrowOf(pass, borrows, n.Args[0]); b != nil {
					b.put = true
					return true
				}
			}
			if b, name := methodOnBorrow(pass, borrows, n); b != nil {
				if isResetName(name) {
					b.reset = true
				}
				return true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if b := borrowOf(pass, borrows, rootExpr(r)); b != nil {
					b.escapePo = append(b.escapePo, r)
				}
			}
		case *ast.SendStmt:
			if b := borrowOf(pass, borrows, rootExpr(n.Value)); b != nil {
				b.escapePo = append(b.escapePo, n.Value)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				b := borrowOf(pass, borrows, rootExpr(rhs))
				if b == nil || i >= len(n.Lhs) {
					continue
				}
				if escapingLHS(pass, n.Lhs[i]) {
					b.escapePo = append(b.escapePo, rhs)
				}
			}
		}
		return true
	})

	for _, b := range borrows {
		if !b.reset {
			pass.Report(b.name.Pos(), "pooled scratch %s is used without a reset/clear call; "+
				"sync.Pool hands back dirty instances — reset it (or a field of it) before reuse",
				b.name.Name)
		}
		if !b.put {
			pass.Report(b.name.Pos(), "pooled scratch %s is never Put back to its pool in this "+
				"function; the borrow must end where it began", b.name.Name)
		}
		for _, e := range b.escapePo {
			pass.Report(e.Pos(), "pooled scratch %s escapes the borrowing function; a slab that "+
				"outlives its run aliases the next run's scratch", b.name.Name)
		}
	}
}

// pooledVarOf resolves assign to the local variable binding a Pool.Get
// result (directly or through a type assertion), nil otherwise.
func pooledVarOf(pass *Pass, assign *ast.AssignStmt) *types.Var {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	rhs := unparen(assign.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isPoolMethod(pass.TypesInfo, call, "Get") {
		return nil
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[id].(*types.Var)
	if v == nil {
		v, _ = pass.TypesInfo.Uses[id].(*types.Var)
	}
	return v
}

// isBoundGet reports whether the Get call is the RHS of a binding
// assignment (possibly through a type assertion).
func isBoundGet(pass *Pass, body *ast.BlockStmt, get *ast.CallExpr) bool {
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		rhs := unparen(assign.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = unparen(ta.X)
		}
		if rhs == get {
			if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				bound = true
			}
		}
		return true
	})
	return bound
}

// borrowOf resolves an expression to the borrow it names, nil otherwise.
func borrowOf(pass *Pass, borrows map[*types.Var]*borrow, e ast.Expr) *borrow {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		return nil
	}
	return borrows[v]
}

// methodOnBorrow reports the borrow whose variable roots the call's
// receiver chain (sc.tab.reset() roots at sc) and the method name.
func methodOnBorrow(pass *Pass, borrows map[*types.Var]*borrow, call *ast.CallExpr) (*borrow, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	if b := borrowOf(pass, borrows, rootExpr(sel.X)); b != nil {
		return b, sel.Sel.Name
	}
	return nil, ""
}

// rootExpr strips selectors, indexes and parens down to the base
// expression: sc.tab[i].x roots at sc.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return unparen(e)
		}
	}
}

// escapingLHS reports whether assigning to lhs lets the RHS outlive the
// function: fields, globals, dereferences, and map/slice elements escape;
// plain local variables do not.
func escapingLHS(pass *Pass, lhs ast.Expr) bool {
	switch x := unparen(lhs).(type) {
	case *ast.Ident:
		v, _ := pass.TypesInfo.ObjectOf(x).(*types.Var)
		if v == nil {
			return false
		}
		// Package-level variables escape; locals (including named results,
		// which the return check covers) do not.
		return v.Parent() == pass.Pkg.Scope()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// isResetName reports whether a method name counts as re-initialising
// pooled state.
func isResetName(name string) bool {
	switch strings.ToLower(name) {
	case "reset", "clear", "init", "reinit":
		return true
	}
	return false
}
