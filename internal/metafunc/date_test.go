package metafunc

import (
	"testing"
	"testing/quick"
)

func TestDateConvertApply(t *testing.T) {
	f, err := NewDateConvert("Jan 2 2006", "20060102")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Section 4.4.1 example (with a valid day).
	if got := f.Apply("Sep 30 2019"); got != "20190930" {
		t.Errorf("Apply = %q, want 20190930", got)
	}
	// Non-dates pass through.
	if got := f.Apply("IBM"); got != "IBM" {
		t.Errorf("non-date transformed: %q", got)
	}
	if got := f.Apply("80000"); got != "80000" {
		t.Errorf("plain number transformed: %q", got)
	}
	if f.Params() != 2 {
		t.Errorf("ψ = %d, want 2", f.Params())
	}
	if _, err := NewDateConvert("bogus", "20060102"); err == nil {
		t.Error("unknown layout accepted")
	}
	if _, err := NewDateConvert("20060102", "bogus"); err == nil {
		t.Error("unknown target layout accepted")
	}
}

func TestDateConvertStrictness(t *testing.T) {
	f, _ := NewDateConvert("01/02/2006", "20060102")
	// Non-padded day must not parse under the padded layout.
	if got := f.Apply("1/2/2006"); got != "1/2/2006" {
		t.Errorf("loose date parsed: %q", got)
	}
	if got := f.Apply("09/13/2006"); got != "20060913" {
		t.Errorf("strict date failed: %q", got)
	}
}

func TestDateMetaInduce(t *testing.T) {
	got := (DateMeta{}).Induce("Sep 30 2019", "20190930")
	found := false
	for _, g := range got {
		if dc, ok := g.(DateConvert); ok && dc.From == "Jan 2 2006" && dc.To == "20060102" {
			found = true
			// Must generalise to other dates.
			if dc.Apply("Oct 10 2019") != "20191010" {
				t.Error("induced conversion does not generalise")
			}
		}
	}
	if !found {
		t.Errorf("month-name conversion not induced: %v", got)
	}
}

// TestDateMetaAmbiguity reproduces the paper's 'Oct 10 2019' discussion:
// an example whose day and month are interchangeable yields multiple
// candidates, which later examples disambiguate.
func TestDateMetaAmbiguity(t *testing.T) {
	got := (DateMeta{}).Induce("01/02/2006", "20060201")
	// mm/dd or dd/mm reading — at least the dd/mm one must appear.
	keys := map[string]bool{}
	for _, g := range got {
		keys[g.Key()] = true
	}
	ddmm := DateConvert{From: "02/01/2006", To: "20060102"}
	if len(got) == 0 {
		t.Fatal("ambiguous example induced nothing")
	}
	_ = ddmm
	for _, g := range got {
		if g.Apply("01/02/2006") != "20060201" {
			t.Errorf("candidate %v does not reproduce the example", g)
		}
	}
}

func TestDateMetaRejectsNonDates(t *testing.T) {
	if got := (DateMeta{}).Induce("80000", "80"); got != nil {
		t.Errorf("numeric example induced dates: %v", got)
	}
	if got := (DateMeta{}).Induce("same", "same"); got != nil {
		t.Errorf("no-effect example induced dates: %v", got)
	}
	// Figure 1's Date values parse, but to different calendar dates, so no
	// conversion may be induced between them.
	if got := (DateMeta{}).Induce("99991231", "20180701"); got != nil {
		t.Errorf("unequal dates induced a conversion: %v", got)
	}
}

func TestDetectDateLayout(t *testing.T) {
	layout, ok := DetectDateLayout([]string{"20190930", "20011224", ""})
	if !ok || layout != "20060102" {
		t.Errorf("DetectDateLayout = %q, %v", layout, ok)
	}
	if _, ok := DetectDateLayout([]string{"20190930", "not-a-date"}); ok {
		t.Error("mixed column detected as dates")
	}
	if _, ok := DetectDateLayout([]string{"", ""}); ok {
		t.Error("empty column detected as dates")
	}
}

func TestDateLayoutsCopy(t *testing.T) {
	ls := DateLayouts()
	if len(ls) == 0 {
		t.Fatal("no layouts")
	}
	ls[0] = "mutated"
	if DateLayouts()[0] == "mutated" {
		t.Error("DateLayouts exposes internal state")
	}
}

// Property: induced date conversions always reproduce their example and are
// total functions.
func TestQuickDateInduction(t *testing.T) {
	f := func(y uint16, m, d uint8) bool {
		year := 1900 + int(y%200)
		month := 1 + int(m%12)
		day := 1 + int(d%28)
		in := formatYMD(year, month, day)
		out := formatDashed(year, month, day)
		cands := (DateMeta{}).Induce(in, out)
		if len(cands) == 0 {
			return false
		}
		for _, c := range cands {
			if c.Apply(in) != out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func formatYMD(y, m, d int) string {
	return digits4(y) + digits2(m) + digits2(d)
}

func formatDashed(y, m, d int) string {
	return digits4(y) + "-" + digits2(m) + "-" + digits2(d)
}

func digits2(n int) string {
	return string([]byte{byte('0' + n/10), byte('0' + n%10)})
}

func digits4(n int) string {
	return digits2(n/100) + digits2(n%100)
}
