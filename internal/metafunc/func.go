// Package metafunc implements the meta functions of the paper's Table 1 and
// their inverse variants: identity, upper/lowercasing, constant values,
// numeric addition and scaling (division/multiplication), front/back
// masking, front/back character trimming, prefixing/suffixing, prefix/suffix
// replacement, and explicit value mappings.
//
// A Meta is a family of functions whose parameters are learnable from a
// single input–output example (Section 4.4.1). Induce(in, out) returns every
// instantiation of the family consistent with the example *whose effect is
// visible on it* — e.g. front-char trimming is never induced from an example
// without leading characters to trim, because no example of that shape could
// reveal the trim character. This is exactly the visibility notion behind
// the paper's θ parameter.
//
// All functions are total: outside their natural domain they behave as the
// identity, following Figure 1's "otherwise x ↦ x" convention (see DESIGN.md
// §4.4). String operations work on bytes; the evaluation corpora are ASCII.
package metafunc

import (
	"fmt"
	"strconv"
	"strings"
)

// Func is an instantiated attribute transformation function f ∈ F.
type Func interface {
	// Apply transforms one attribute value. Total; identity outside the
	// function's natural domain.
	Apply(string) string
	// Params is ψ(f): the number of data values needed to instantiate the
	// function from its meta function (Def 3.9).
	Params() int
	// Key is a canonical identity: two Funcs with equal keys compute the
	// same transformation.
	Key() string
	// String renders the function in the paper's x ↦ … notation.
	String() string
}

// Meta is a meta function: a family of Funcs learnable from one example.
type Meta interface {
	// Name identifies the family (used in reports and generator configs).
	Name() string
	// Induce returns all instantiations f with f(in) == out whose effect is
	// visible on the example. May be empty.
	Induce(in, out string) []Func
}

// writeQuoted length-prefixes a parameter so Keys cannot collide. The
// rendering is "<len>:<s>", identical for every builder below.
func writeQuoted(sb *strings.Builder, s string) {
	var tmp [20]byte
	sb.Write(strconv.AppendInt(tmp[:0], int64(len(s)), 10))
	sb.WriteByte(':')
	sb.WriteString(s)
}

// key1 and key2 render prefix plus quoted parameters in one allocation;
// Key() sits on the induction/dedup hot path, so the fmt round trip the
// obvious Sprintf formulation costs is worth avoiding.
func key1(prefix, s string) string {
	var sb strings.Builder
	sb.Grow(len(prefix) + len(s) + 21)
	sb.WriteString(prefix)
	writeQuoted(&sb, s)
	return sb.String()
}

func key2(prefix, a, b string) string {
	var sb strings.Builder
	sb.Grow(len(prefix) + len(a) + len(b) + 42)
	sb.WriteString(prefix)
	writeQuoted(&sb, a)
	writeQuoted(&sb, b)
	return sb.String()
}

// keyByte is key1 for a single-byte parameter, without the string conversion.
func keyByte(prefix string, c byte) string {
	var sb strings.Builder
	sb.Grow(len(prefix) + 3)
	sb.WriteString(prefix)
	sb.WriteString("1:")
	sb.WriteByte(c)
	return sb.String()
}

// verified filters candidates down to those that actually reproduce the
// generating example; induction bugs fail loudly in tests through this gate.
func verified(in, out string, fs []Func) []Func {
	kept := fs[:0]
	for _, f := range fs {
		if f.Apply(in) == out {
			kept = append(kept, f)
		}
	}
	return kept
}

// ---------------------------------------------------------------------------
// Identity

// Identity is x ↦ x with ψ = 0.
type Identity struct{}

func (Identity) Apply(x string) string { return x }
func (Identity) Params() int           { return 0 }
func (Identity) Key() string           { return "id" }
func (Identity) String() string        { return "x ↦ x" }

// IdentityMeta induces Identity exactly from no-change examples.
type IdentityMeta struct{}

func (IdentityMeta) Name() string { return "identity" }

func (IdentityMeta) Induce(in, out string) []Func {
	if in == out {
		return []Func{Identity{}}
	}
	return nil
}

// IsIdentity reports whether f is the identity function.
func IsIdentity(f Func) bool {
	_, ok := f.(Identity)
	return ok
}

// ---------------------------------------------------------------------------
// Casing

// Upper is x ↦ Uppercase(x) with ψ = 0.
type Upper struct{}

func (Upper) Apply(x string) string { return strings.ToUpper(x) }
func (Upper) Params() int           { return 0 }
func (Upper) Key() string           { return "upper" }
func (Upper) String() string        { return "x ↦ Uppercase(x)" }

// Lower is the inverse variant, x ↦ Lowercase(x) with ψ = 0.
type Lower struct{}

func (Lower) Apply(x string) string { return strings.ToLower(x) }
func (Lower) Params() int           { return 0 }
func (Lower) Key() string           { return "lower" }
func (Lower) String() string        { return "x ↦ Lowercase(x)" }

// CasingMeta induces Upper or Lower when the example shows a case change.
type CasingMeta struct{}

func (CasingMeta) Name() string { return "casing" }

func (CasingMeta) Induce(in, out string) []Func {
	if in == out {
		return nil // effect not visible
	}
	var fs []Func
	if strings.ToUpper(in) == out {
		fs = append(fs, Upper{})
	}
	if strings.ToLower(in) == out {
		fs = append(fs, Lower{})
	}
	return fs
}

// ---------------------------------------------------------------------------
// Constant

// Constant is x ↦ c with ψ = 1.
type Constant struct{ C string }

func (f Constant) Apply(string) string { return f.C }
func (f Constant) Params() int         { return 1 }
func (f Constant) Key() string         { return key1("const:", f.C) }
func (f Constant) String() string      { return fmt.Sprintf("x ↦ %q", f.C) }

// ConstantMeta induces x ↦ out from every example.
type ConstantMeta struct{}

func (ConstantMeta) Name() string { return "constant" }

func (ConstantMeta) Induce(in, out string) []Func {
	return []Func{Constant{C: out}}
}
