package metafunc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTable1Inventory(t *testing.T) {
	// The paper's Table 1, as implemented, with ψ per Def 3.9.
	div, err := NewDivision("1000")
	if err != nil {
		t.Fatal(err)
	}
	add, err := NewAdd("5")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		f    Func
		psi  int
		name string
	}{
		{Identity{}, 0, "identity"},
		{Upper{}, 0, "uppercasing"},
		{Lower{}, 0, "lowercasing (inverse)"},
		{Constant{C: "k $"}, 1, "constant value"},
		{add, 1, "addition"},
		{div, 1, "division"},
		{FrontMask{M: "XX"}, 1, "front masking"},
		{BackMask{M: "XX"}, 1, "back masking (inverse)"},
		{FrontTrim{C: '0'}, 1, "front char trimming"},
		{BackTrim{C: '0'}, 1, "back char trimming (inverse)"},
		{Prefix{Y: "p-"}, 1, "prefixing"},
		{Suffix{Y: "-s"}, 1, "suffixing (inverse)"},
		{PrefixReplace{Y: "9999123", Z: "2018070"}, 2, "prefix replacement"},
		{SuffixReplace{Y: "a", Z: "b"}, 2, "suffix replacement (inverse)"},
		{NewMapping(map[string]string{"a": "b", "c": "d"}), 4, "value mapping (2 entries)"},
		{Negation{}, 0, "boolean negation (reduction)"},
	}
	keys := make(map[string]string)
	for _, c := range cases {
		if got := c.f.Params(); got != c.psi {
			t.Errorf("%s: ψ = %d, want %d", c.name, got, c.psi)
		}
		if prev, dup := keys[c.f.Key()]; dup {
			t.Errorf("%s and %s share key %q", c.name, prev, c.f.Key())
		}
		keys[c.f.Key()] = c.name
		if c.f.String() == "" {
			t.Errorf("%s: empty String()", c.name)
		}
	}
}

func TestIdentity(t *testing.T) {
	if (Identity{}).Apply("abc") != "abc" {
		t.Error("identity changed value")
	}
	if got := (IdentityMeta{}).Induce("x", "x"); len(got) != 1 || !IsIdentity(got[0]) {
		t.Errorf("Induce(x,x) = %v", got)
	}
	if got := (IdentityMeta{}).Induce("x", "y"); got != nil {
		t.Errorf("Induce(x,y) = %v, want nil", got)
	}
	if IsIdentity(Upper{}) {
		t.Error("Upper mistaken for identity")
	}
}

func TestCasing(t *testing.T) {
	if (Upper{}).Apply("abC1") != "ABC1" || (Lower{}).Apply("AbC1") != "abc1" {
		t.Error("casing apply wrong")
	}
	got := (CasingMeta{}).Induce("sap", "SAP")
	if len(got) != 1 || got[0].Key() != (Upper{}).Key() {
		t.Errorf("Induce(sap,SAP) = %v", got)
	}
	got = (CasingMeta{}).Induce("SAP", "sap")
	if len(got) != 1 || got[0].Key() != (Lower{}).Key() {
		t.Errorf("Induce(SAP,sap) = %v", got)
	}
	if got := (CasingMeta{}).Induce("SAP", "SAP"); got != nil {
		t.Errorf("no-effect example induced casing: %v", got)
	}
	if got := (CasingMeta{}).Induce("123", "456"); got != nil {
		t.Errorf("non-case example induced casing: %v", got)
	}
}

func TestConstant(t *testing.T) {
	f := Constant{C: "k $"}
	if f.Apply("anything") != "k $" || f.Apply("") != "k $" {
		t.Error("constant apply wrong")
	}
	got := (ConstantMeta{}).Induce("USD", "k $")
	if len(got) != 1 || got[0].Apply("zzz") != "k $" {
		t.Errorf("Induce = %v", got)
	}
}

func TestAdd(t *testing.T) {
	f, err := NewAdd("-6530.2")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Apply("6540"); got != "9.8" {
		t.Errorf("6540 − 6530.2 = %q, want 9.8", got)
	}
	// Non-canonical numerics pass through.
	if got := f.Apply("0042"); got != "0042" {
		t.Errorf("non-canonical input transformed: %q", got)
	}
	if got := f.Apply("IBM"); got != "IBM" {
		t.Errorf("non-numeric input transformed: %q", got)
	}
	if !strings.Contains(f.String(), "−") {
		t.Errorf("negative addend should render as subtraction: %s", f)
	}
	if _, err := NewAdd("abc"); err == nil {
		t.Error("NewAdd accepted garbage")
	}
}

func TestAdditionInduce(t *testing.T) {
	got := (AdditionMeta{}).Induce("0", "9.8")
	if len(got) != 1 || got[0].Apply("0") != "9.8" || got[0].Apply("1") != "10.8" {
		t.Errorf("Induce(0, 9.8) = %v", got)
	}
	if got := (AdditionMeta{}).Induce("5", "5"); got != nil {
		t.Errorf("zero addend induced: %v", got)
	}
	// Zero-padded key values must not produce numeric candidates.
	if got := (AdditionMeta{}).Induce("0000", "0006"); got != nil {
		t.Errorf("non-canonical example induced addition: %v", got)
	}
	if got := (AdditionMeta{}).Induce("IBM", "SAP"); got != nil {
		t.Errorf("non-numeric example induced addition: %v", got)
	}
}

func TestScale(t *testing.T) {
	div, err := NewDivision("1000")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"80000": "80", "6540": "6.54", "9800": "9.8", "0": "0", "65": "0.065",
		"IBM": "IBM", "0042": "0042",
	}
	for in, want := range cases {
		if got := div.Apply(in); got != want {
			t.Errorf("div1000(%q) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains(div.String(), "/ 1000") {
		t.Errorf("division rendering: %s", div)
	}
	mul, err := NewMultiplication("1000")
	if err != nil {
		t.Fatal(err)
	}
	if got := mul.Apply("6.54"); got != "6540" {
		t.Errorf("mul1000(6.54) = %q", got)
	}
	if _, err := NewDivision("0"); err == nil {
		t.Error("NewDivision accepted zero")
	}
	if _, err := NewMultiplication("x"); err == nil {
		t.Error("NewMultiplication accepted garbage")
	}
}

func TestScalingInduce(t *testing.T) {
	got := (ScalingMeta{}).Induce("65", "0.065")
	if len(got) != 1 {
		t.Fatalf("Induce(65, 0.065) = %v", got)
	}
	// The induced scale must generalise across the Val column of Figure 1.
	f := got[0]
	if f.Apply("80000") != "80" || f.Apply("422400") != "422.4" {
		t.Errorf("induced scale does not generalise: %v", f)
	}
	if got := (ScalingMeta{}).Induce("0", "0"); got != nil {
		t.Errorf("zero example induced scaling: %v", got)
	}
	if got := (ScalingMeta{}).Induce("5", "0"); got != nil {
		t.Errorf("to-zero example induced scaling: %v", got)
	}
	if got := (ScalingMeta{}).Induce("7", "7"); got != nil {
		t.Errorf("unit factor induced: %v", got)
	}
	// Division and multiplication collapse to the same canonical key.
	d, _ := NewDivision("4")
	m, _ := NewMultiplication("0.25")
	if d.Key() != m.Key() {
		t.Errorf("x/4 and x·0.25 have different keys: %q vs %q", d.Key(), m.Key())
	}
}

func TestScaleNonTerminatingMarker(t *testing.T) {
	third, _ := NewDivision("3")
	// 10/3 does not terminate: the result must be an unmatchable marker,
	// not an identity pass-through (which would let a scale factor act as a
	// degenerate one-value rewrite).
	got := third.Apply("10")
	if got == "10" {
		t.Error("10/3 must not fall back to identity")
	}
	if len(got) == 0 || got[0] != '\x00' {
		t.Errorf("10/3 = %q, want NUL-prefixed marker", got)
	}
	// Distinct inputs map to distinct markers (blocking stays injective).
	if third.Apply("10") == third.Apply("20") {
		t.Error("markers collide")
	}
	if got := third.Apply("9"); got != "3" {
		t.Errorf("9/3 = %q, want 3", got)
	}
}

func TestMasking(t *testing.T) {
	f := FrontMask{M: "20"}
	if f.Apply("19991231") != "20991231" {
		t.Error("front mask apply wrong")
	}
	if f.Apply("5") != "5" {
		t.Error("short input should pass through")
	}
	b := BackMask{M: "00"}
	if b.Apply("1234") != "1200" {
		t.Error("back mask apply wrong")
	}
	got := (MaskingMeta{}).Induce("19991231", "20991231")
	if len(got) == 0 {
		t.Fatal("masking not induced")
	}
	foundFront := false
	for _, g := range got {
		if fm, ok := g.(FrontMask); ok {
			foundFront = true
			if fm.M != "20" {
				t.Errorf("front mask = %q, want shortest %q", fm.M, "20")
			}
		}
	}
	if !foundFront {
		t.Error("no front mask among candidates")
	}
	if got := (MaskingMeta{}).Induce("abc", "abcd"); got != nil {
		t.Errorf("length-changing example induced mask: %v", got)
	}
	if got := (MaskingMeta{}).Induce("same", "same"); got != nil {
		t.Errorf("no-effect example induced mask: %v", got)
	}
}

func TestTrimming(t *testing.T) {
	f := FrontTrim{C: '0'}
	if f.Apply("00042") != "42" || f.Apply("42") != "42" || f.Apply("000") != "" {
		t.Error("front trim apply wrong")
	}
	b := BackTrim{C: '0'}
	if b.Apply("42000") != "42" || b.Apply("42") != "42" {
		t.Error("back trim apply wrong")
	}
	got := (TrimmingMeta{}).Induce("00042", "42")
	if len(got) != 1 || got[0].Key() != (FrontTrim{C: '0'}).Key() {
		t.Errorf("Induce(00042,42) = %v", got)
	}
	got = (TrimmingMeta{}).Induce("42000", "42")
	if len(got) != 1 || got[0].Key() != (BackTrim{C: '0'}).Key() {
		t.Errorf("Induce(42000,42) = %v", got)
	}
	// "0402" → "402": leading 0 stripped, but trimming would also have to
	// stop before the interior 0 — verification keeps it (run stops at '4').
	got = (TrimmingMeta{}).Induce("0402", "402")
	if len(got) != 1 {
		t.Errorf("Induce(0402,402) = %v", got)
	}
	// "0040" → "04" is not a front trim (out starts with the trim char).
	if got := (TrimmingMeta{}).Induce("0040", "04"); len(got) != 0 {
		t.Errorf("Induce(0040,04) = %v, want none", got)
	}
	if got := (TrimmingMeta{}).Induce("42", "42"); got != nil {
		t.Errorf("no-effect example induced trim: %v", got)
	}
}

func TestAffixing(t *testing.T) {
	p := Prefix{Y: "ID-"}
	if p.Apply("42") != "ID-42" {
		t.Error("prefix apply wrong")
	}
	s := Suffix{Y: " EUR"}
	if s.Apply("42") != "42 EUR" {
		t.Error("suffix apply wrong")
	}
	got := (AffixMeta{}).Induce("42", "ID-42")
	if len(got) != 1 || got[0].Key() != (Prefix{Y: "ID-"}).Key() {
		t.Errorf("Induce(42,ID-42) = %v", got)
	}
	got = (AffixMeta{}).Induce("42", "42 EUR")
	if len(got) != 1 || got[0].Key() != (Suffix{Y: " EUR"}).Key() {
		t.Errorf("Induce(42,42 EUR) = %v", got)
	}
	// Ambiguous: "aa" → "aaaa" could be either; both induced.
	got = (AffixMeta{}).Induce("aa", "aaaa")
	if len(got) != 2 {
		t.Errorf("Induce(aa,aaaa) = %v, want prefix and suffix", got)
	}
	if got := (AffixMeta{}).Induce("abc", "ab"); got != nil {
		t.Errorf("shrinking example induced affix: %v", got)
	}
}

func TestReplacement(t *testing.T) {
	f := PrefixReplace{Y: "9999123", Z: "2018070"}
	if f.Apply("99991231") != "20180701" {
		t.Error("Figure 1 date replacement wrong")
	}
	if f.Apply("20130416") != "20130416" {
		t.Error("non-matching value should pass through")
	}
	got := (ReplacementMeta{}).Induce("99991231", "20180701")
	var foundDate bool
	for _, g := range got {
		if pr, ok := g.(PrefixReplace); ok && pr.Y == "9999123" && pr.Z == "2018070" {
			foundDate = true
		}
	}
	if !foundDate {
		t.Errorf("Figure 1 date function not induced: %v", got)
	}
	// Suffix replacement: USD → EUR keeping amount prefix.
	got = (ReplacementMeta{}).Induce("100 USD", "100 EUR")
	var foundSfx bool
	for _, g := range got {
		if sr, ok := g.(SuffixReplace); ok && sr.Y == "USD" && sr.Z == "EUR" {
			foundSfx = true
			if sr.Apply("7 USD") != "7 EUR" {
				t.Error("suffix replacement does not generalise")
			}
		}
	}
	if !foundSfx {
		t.Errorf("suffix replacement not induced: %v", got)
	}
	// Deprefixing: empty Z is the inverse of prefixing.
	dp := PrefixReplace{Y: "ID-", Z: ""}
	if dp.Apply("ID-42") != "42" {
		t.Error("deprefixing wrong")
	}
	if got := (ReplacementMeta{}).Induce("x", "x"); got != nil {
		t.Errorf("no-effect example induced replacement: %v", got)
	}
}

func TestMapping(t *testing.T) {
	m := NewMapping(map[string]string{"0000": "0006", "0001": "0001"})
	if m.Apply("0000") != "0006" || m.Apply("0001") != "0001" {
		t.Error("mapping apply wrong")
	}
	if m.Apply("9999") != "9999" {
		t.Error("unmapped value should pass through")
	}
	if m.Params() != 4 || m.Len() != 2 {
		t.Errorf("Params = %d, Len = %d", m.Params(), m.Len())
	}
	if _, ok := m.Lookup("0000"); !ok {
		t.Error("Lookup miss")
	}
	if _, ok := m.Lookup("zz"); ok {
		t.Error("Lookup false hit")
	}
	e := m.Entries()
	if len(e) != 2 || e[0][0] != "0000" || e[1][1] != "0001" {
		t.Errorf("Entries = %v", e)
	}
	// Deterministic keys regardless of construction order.
	m2 := NewMapping(map[string]string{"0001": "0001", "0000": "0006"})
	if m.Key() != m2.Key() {
		t.Error("mapping key not canonical")
	}
	big := map[string]string{}
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		big[k] = k + "!"
	}
	if s := NewMapping(big).String(); !strings.Contains(s, "entries") {
		t.Errorf("large mapping should elide: %s", s)
	}
}

func TestNegation(t *testing.T) {
	n := Negation{}
	if n.Apply("0") != "1" || n.Apply("1") != "0" || n.Apply("-") != "-" {
		t.Error("negation apply wrong")
	}
	if got := (NegationMeta{}).Induce("0", "1"); len(got) != 1 {
		t.Errorf("Induce(0,1) = %v", got)
	}
	if got := (NegationMeta{}).Induce("0", "0"); got != nil {
		t.Errorf("Induce(0,0) = %v", got)
	}
}

func TestInduceAllDedup(t *testing.T) {
	metas := DefaultMetas()
	fs := InduceAll(metas, "65", "0.065")
	seen := make(map[string]bool)
	for _, f := range fs {
		if seen[f.Key()] {
			t.Errorf("duplicate candidate %q", f.Key())
		}
		seen[f.Key()] = true
	}
	// Constant and scaling must both be present.
	if !seen[(Constant{C: "0.065"}).Key()] {
		t.Error("constant candidate missing")
	}
	d, _ := NewDivision("1000")
	if !seen[d.Key()] {
		t.Error("scaling candidate missing")
	}
}

// Property: every induced candidate reproduces its generating example.
func TestQuickInductionReproducesExample(t *testing.T) {
	metas := DefaultMetas()
	f := func(in, out string) bool {
		for _, cand := range InduceAll(metas, in, out) {
			if cand.Apply(in) != out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Apply is deterministic and total for arbitrary inputs.
func TestQuickApplyTotal(t *testing.T) {
	div, _ := NewDivision("7")
	add, _ := NewAdd("0.3")
	funcs := []Func{
		Identity{}, Upper{}, Lower{}, Constant{C: "c"}, div, add,
		FrontMask{M: "zz"}, BackMask{M: "zz"}, FrontTrim{C: 'a'},
		BackTrim{C: 'a'}, Prefix{Y: "p"}, Suffix{Y: "s"},
		PrefixReplace{Y: "ab", Z: "cd"}, SuffixReplace{Y: "ab", Z: "cd"},
		NewMapping(map[string]string{"k": "v"}), Negation{},
	}
	f := func(x string) bool {
		for _, fn := range funcs {
			if fn.Apply(x) != fn.Apply(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
