package metafunc

// Negation is the boolean negation of the NP-hardness reduction (Theorem
// 3.12): it swaps the truth values "0" and "1" and otherwise behaves like
// the identity. ψ = 0, so explanations over {id, negation} are costed purely
// by |T^{E+}| — the property the reduction relies on.
type Negation struct{}

func (Negation) Apply(x string) string {
	switch x {
	case "0":
		return "1"
	case "1":
		return "0"
	}
	return x
}

func (Negation) Params() int    { return 0 }
func (Negation) Key() string    { return "neg" }
func (Negation) String() string { return "x ↦ ¬x on {0,1}, otherwise x ↦ x" }

// NegationMeta induces Negation from flipped-bit examples.
type NegationMeta struct{}

func (NegationMeta) Name() string { return "negation" }

func (NegationMeta) Induce(in, out string) []Func {
	if (in == "0" && out == "1") || (in == "1" && out == "0") {
		return []Func{Negation{}}
	}
	return nil
}
