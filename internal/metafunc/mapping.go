package metafunc

import (
	"fmt"
	"sort"
	"strings"
)

// Mapping is an explicit value mapping x ↦ yᵢ if x = xᵢ, otherwise x ↦ x,
// with ψ = 2n for n entries (both sides of every entry are data values that
// must be written down — Figure 1 counts its 13-entry maps as 26).
//
// Mappings are never induced during the search; they are constructed at the
// very end from a maximally determined alignment (Section 4.4.1), or by the
// greedy-map probe that decides whether an attribute should be marked ⊡.
type Mapping struct {
	pairs map[string]string
	keys  []string // sorted, for deterministic rendering and keys
}

// NewMapping builds a value mapping from explicit pairs. Identity entries
// (x ↦ x) are kept: they still occupy description length, exactly as in the
// paper's cost arithmetic.
func NewMapping(pairs map[string]string) *Mapping {
	m := &Mapping{pairs: make(map[string]string, len(pairs))}
	for k, v := range pairs {
		m.pairs[k] = v
	}
	m.keys = make([]string, 0, len(pairs))
	for k := range m.pairs {
		m.keys = append(m.keys, k)
	}
	sort.Strings(m.keys)
	return m
}

func (m *Mapping) Apply(x string) string {
	if y, ok := m.pairs[x]; ok {
		return y
	}
	return x
}

// Len returns the number of entries n.
func (m *Mapping) Len() int { return len(m.pairs) }

// Params is 2n.
func (m *Mapping) Params() int { return 2 * len(m.pairs) }

// Lookup reports the mapped value and whether x has an explicit entry.
func (m *Mapping) Lookup(x string) (string, bool) {
	y, ok := m.pairs[x]
	return y, ok
}

// Entries returns the mapping pairs in sorted key order.
func (m *Mapping) Entries() [][2]string {
	out := make([][2]string, len(m.keys))
	for i, k := range m.keys {
		out[i] = [2]string{k, m.pairs[k]}
	}
	return out
}

func (m *Mapping) Key() string {
	n := 4
	for _, k := range m.keys {
		n += len(k) + len(m.pairs[k]) + 42
	}
	var sb strings.Builder
	sb.Grow(n)
	sb.WriteString("map:")
	for _, k := range m.keys {
		writeQuoted(&sb, k)
		writeQuoted(&sb, m.pairs[k])
	}
	return sb.String()
}

func (m *Mapping) String() string {
	const maxShown = 4
	var sb strings.Builder
	sb.WriteString("x ↦ {")
	for i, k := range m.keys {
		if i == maxShown {
			fmt.Fprintf(&sb, ", … (%d entries)", len(m.keys))
			break
		}
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%q↦%q", k, m.pairs[k])
	}
	sb.WriteString("}, otherwise x ↦ x")
	return sb.String()
}
