package metafunc

import (
	"fmt"

	"affidavit/internal/value"
)

// Numeric functions operate only on values in canonical decimal form
// (value.IsCanonical); every other input passes through unchanged. This
// keeps zero-padded identifiers like "0042" out of numeric territory: a
// candidate x ↦ x+6 induced from "0000" ↦ "0006" would produce "6" and is
// rejected by the verification gate.

// Add is x ↦ x + y with ψ = 1. Negative y is the subtraction inverse.
type Add struct {
	Y value.Decimal
}

// NewAdd builds an Add from a decimal string parameter, e.g. "-6530.2".
func NewAdd(y string) (Add, error) {
	d, ok := value.Parse(y)
	if !ok {
		return Add{}, fmt.Errorf("metafunc: %q is not a decimal addend", y)
	}
	return Add{Y: d}, nil
}

func (f Add) Apply(x string) string {
	d, ok := value.Parse(x)
	if !ok || !value.IsCanonical(x) {
		return x
	}
	out, ok := d.Add(f.Y).Format()
	if !ok {
		return x
	}
	return out
}

func (f Add) Params() int { return 1 }

func (f Add) Key() string { return "add:" + f.Y.String() }

func (f Add) String() string {
	if s, ok := f.Y.Format(); ok && len(s) > 0 && s[0] == '-' {
		return fmt.Sprintf("x ↦ x − %s", s[1:])
	}
	return fmt.Sprintf("x ↦ x + %s", f.Y)
}

// AdditionMeta induces Add(out − in) from canonical numeric examples.
type AdditionMeta struct{}

func (AdditionMeta) Name() string { return "addition" }

func (AdditionMeta) Induce(in, out string) []Func {
	di, ok1 := value.Parse(in)
	do, ok2 := value.Parse(out)
	if !ok1 || !ok2 || !value.IsCanonical(in) || !value.IsCanonical(out) {
		return nil
	}
	y := do.Sub(di)
	if y.IsZero() {
		return nil // identity-equivalent on this example
	}
	return verified(in, out, []Func{Add{Y: y}})
}

// Scale is the multiplicative family x ↦ x · k with ψ = 1. The paper's
// division x ↦ x / y is Scale with k = 1/y; its inverse, multiplication, is
// Scale with k = y. Collapsing both into one canonical family means the
// same transformation never competes against itself during ranking.
type Scale struct {
	K value.Decimal
}

// NewDivision builds the paper's division x ↦ x / y.
func NewDivision(y string) (Scale, error) {
	d, ok := value.Parse(y)
	if !ok || d.IsZero() {
		return Scale{}, fmt.Errorf("metafunc: %q is not a usable divisor", y)
	}
	k, _ := value.FromInt(1).Div(d)
	return Scale{K: k}, nil
}

// NewMultiplication builds the inverse variant x ↦ x · y.
func NewMultiplication(y string) (Scale, error) {
	d, ok := value.Parse(y)
	if !ok {
		return Scale{}, fmt.Errorf("metafunc: %q is not a decimal factor", y)
	}
	return Scale{K: d}, nil
}

func (f Scale) Apply(x string) string {
	d, ok := value.Parse(x)
	if !ok || !value.IsCanonical(x) {
		return x
	}
	prod := d.Mul(f.K)
	out, ok := prod.Format()
	if !ok {
		// Non-terminating expansion: the mathematical result exists but has
		// no decimal rendering, so it can never equal an observed attribute
		// value. Falling back to the identity here would let a scale factor
		// act as a one-value rewrite that leaves everything else untouched
		// — a degenerate explanation the paper's function space does not
		// contain. Return an unmatchable marker instead (NUL never occurs
		// in attribute values).
		return "\x00" + prod.RatString()
	}
	return out
}

func (f Scale) Params() int { return 1 }

func (f Scale) Key() string { return "scale:" + f.K.String() }

func (f Scale) String() string {
	// Render 1/n factors in the paper's division notation.
	if inv, ok := value.FromInt(1).Div(f.K); ok {
		if s, exact := inv.Format(); exact {
			if d, _ := value.Parse(s); d.Cmp(value.FromInt(1)) > 0 {
				return fmt.Sprintf("x ↦ x / %s", s)
			}
		}
	}
	return fmt.Sprintf("x ↦ x · %s", f.K)
}

// ScalingMeta induces Scale(out/in) from canonical numeric examples with
// nonzero values. Division and multiplication are the same family here, so
// one meta covers both of the paper's Table-1 rows.
type ScalingMeta struct{}

func (ScalingMeta) Name() string { return "scaling" }

func (ScalingMeta) Induce(in, out string) []Func {
	di, ok1 := value.Parse(in)
	do, ok2 := value.Parse(out)
	if !ok1 || !ok2 || !value.IsCanonical(in) || !value.IsCanonical(out) {
		return nil
	}
	if di.IsZero() || do.IsZero() {
		return nil // 0 ↦ x is unlearnable, x ↦ 0 degenerates to constant
	}
	k, ok := do.Div(di)
	if !ok || k.IsOne() {
		return nil
	}
	return verified(in, out, []Func{Scale{K: k}})
}
