package metafunc

// DefaultMetas returns the meta-function library the Affidavit prototype
// ships with: every row of the paper's Table 1 (value mappings excluded —
// they are resolved at the end of the search, not induced) plus the inverse
// variants the paper names (suffixing, multiplication, lowercasing, back
// masking, back trimming).
func DefaultMetas() []Meta {
	return []Meta{
		IdentityMeta{},
		CasingMeta{},
		ConstantMeta{},
		AdditionMeta{},
		ScalingMeta{},
		MaskingMeta{},
		TrimmingMeta{},
		AffixMeta{},
		ReplacementMeta{},
		DateMeta{},
	}
}

// InduceAll runs every meta on one input–output example and returns the
// deduplicated union of candidates. Each distinct Key appears once.
func InduceAll(metas []Meta, in, out string) []Func {
	var fs []Func
	seen := make(map[string]bool)
	for _, m := range metas {
		for _, f := range m.Induce(in, out) {
			k := f.Key()
			if !seen[k] {
				seen[k] = true
				fs = append(fs, f)
			}
		}
	}
	return fs
}
