package metafunc

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Masking: .{|m|} ◦ x ↦ m ◦ x — overwrite a fixed-width margin with a mask.

// FrontMask is .{|m|} ◦ x ↦ m ◦ x with ψ = 1: the first |m| bytes are
// replaced by the mask. Inputs shorter than the mask pass through.
type FrontMask struct{ M string }

func (f FrontMask) Apply(x string) string {
	if len(x) < len(f.M) || f.M == "" {
		return x
	}
	return f.M + x[len(f.M):]
}

func (f FrontMask) Params() int    { return 1 }
func (f FrontMask) Key() string    { return key1("fmask:", f.M) }
func (f FrontMask) String() string { return fmt.Sprintf(".{%d}◦x ↦ %q◦x", len(f.M), f.M) }

// BackMask is the inverse variant: the last |m| bytes are replaced.
type BackMask struct{ M string }

func (f BackMask) Apply(x string) string {
	if len(x) < len(f.M) || f.M == "" {
		return x
	}
	return x[:len(x)-len(f.M)] + f.M
}

func (f BackMask) Params() int    { return 1 }
func (f BackMask) Key() string    { return key1("bmask:", f.M) }
func (f BackMask) String() string { return fmt.Sprintf("x◦.{%d} ↦ x◦%q", len(f.M), f.M) }

// MaskingMeta induces the shortest mask consistent with the example, at
// either margin. Masking requires |in| == |out|.
type MaskingMeta struct{}

func (MaskingMeta) Name() string { return "masking" }

func (MaskingMeta) Induce(in, out string) []Func {
	if in == out || len(in) != len(out) || len(in) == 0 {
		return nil
	}
	var fs []Func
	// Shortest front mask: everything up to the last differing position.
	last := -1
	for i := 0; i < len(in); i++ {
		if in[i] != out[i] {
			last = i
		}
	}
	if last >= 0 {
		fs = append(fs, FrontMask{M: out[:last+1]})
	}
	// Shortest back mask: everything from the first differing position.
	first := -1
	for i := len(in) - 1; i >= 0; i-- {
		if in[i] != out[i] {
			first = i
		}
	}
	if first >= 0 {
		fs = append(fs, BackMask{M: out[first:]})
	}
	return verified(in, out, fs)
}

// ---------------------------------------------------------------------------
// Trimming: [c]* ◦ x ↦ x — strip a run of one character from a margin.

// FrontTrim is [c]* ◦ x ↦ x with ψ = 1: the leading run of C is removed.
type FrontTrim struct{ C byte }

func (f FrontTrim) Apply(x string) string {
	i := 0
	for i < len(x) && x[i] == f.C {
		i++
	}
	return x[i:]
}

func (f FrontTrim) Params() int    { return 1 }
func (f FrontTrim) Key() string    { return keyByte("ftrim:", f.C) }
func (f FrontTrim) String() string { return fmt.Sprintf("[%q]*◦x ↦ x", f.C) }

// BackTrim is the inverse variant: the trailing run of C is removed.
type BackTrim struct{ C byte }

func (f BackTrim) Apply(x string) string {
	i := len(x)
	for i > 0 && x[i-1] == f.C {
		i--
	}
	return x[:i]
}

func (f BackTrim) Params() int    { return 1 }
func (f BackTrim) Key() string    { return keyByte("btrim:", f.C) }
func (f BackTrim) String() string { return fmt.Sprintf("x◦[%q]* ↦ x", f.C) }

// TrimmingMeta induces trims from examples with a visible stripped run.
type TrimmingMeta struct{}

func (TrimmingMeta) Name() string { return "trimming" }

func (TrimmingMeta) Induce(in, out string) []Func {
	if in == out || len(in) <= len(out) || len(in) == 0 {
		return nil
	}
	var fs []Func
	if strings.HasSuffix(in, out) {
		c := in[0]
		if (FrontTrim{C: c}).Apply(in) == out {
			fs = append(fs, FrontTrim{C: c})
		}
	}
	if strings.HasPrefix(in, out) {
		c := in[len(in)-1]
		if (BackTrim{C: c}).Apply(in) == out {
			fs = append(fs, BackTrim{C: c})
		}
	}
	return verified(in, out, fs)
}

// ---------------------------------------------------------------------------
// Affixing: x ↦ y ◦ x and x ↦ x ◦ y.

// Prefix is x ↦ y ◦ x with ψ = 1.
type Prefix struct{ Y string }

func (f Prefix) Apply(x string) string { return f.Y + x }
func (f Prefix) Params() int           { return 1 }
func (f Prefix) Key() string           { return key1("prefix:", f.Y) }
func (f Prefix) String() string        { return fmt.Sprintf("x ↦ %q◦x", f.Y) }

// Suffix is the inverse variant x ↦ x ◦ y.
type Suffix struct{ Y string }

func (f Suffix) Apply(x string) string { return x + f.Y }
func (f Suffix) Params() int           { return 1 }
func (f Suffix) Key() string           { return key1("suffix:", f.Y) }
func (f Suffix) String() string        { return fmt.Sprintf("x ↦ x◦%q", f.Y) }

// AffixMeta induces prefixing/suffixing when out extends in at one margin.
type AffixMeta struct{}

func (AffixMeta) Name() string { return "affixing" }

func (AffixMeta) Induce(in, out string) []Func {
	if len(out) <= len(in) {
		return nil
	}
	var fs []Func
	if strings.HasSuffix(out, in) {
		fs = append(fs, Prefix{Y: out[:len(out)-len(in)]})
	}
	if strings.HasPrefix(out, in) {
		fs = append(fs, Suffix{Y: out[len(in):]})
	}
	return verified(in, out, fs)
}

// ---------------------------------------------------------------------------
// Replacement: y ◦ x ↦ z ◦ x and x ◦ y ↦ x ◦ z.

// PrefixReplace is y ◦ x ↦ z ◦ x with ψ = 2; values that do not start with
// Y pass through (Figure 1's f_Date with "otherwise x ↦ x"). Z may be empty,
// which removes the prefix — the inverse of prefixing.
type PrefixReplace struct{ Y, Z string }

func (f PrefixReplace) Apply(x string) string {
	if f.Y == "" || !strings.HasPrefix(x, f.Y) {
		return x
	}
	return f.Z + x[len(f.Y):]
}

func (f PrefixReplace) Params() int { return 2 }
func (f PrefixReplace) Key() string { return key2("pfxrep:", f.Y, f.Z) }
func (f PrefixReplace) String() string {
	return fmt.Sprintf("%q◦x ↦ %q◦x, otherwise x ↦ x", f.Y, f.Z)
}

// SuffixReplace is the inverse variant x ◦ y ↦ x ◦ z.
type SuffixReplace struct{ Y, Z string }

func (f SuffixReplace) Apply(x string) string {
	if f.Y == "" || !strings.HasSuffix(x, f.Y) {
		return x
	}
	return x[:len(x)-len(f.Y)] + f.Z
}

func (f SuffixReplace) Params() int { return 2 }
func (f SuffixReplace) Key() string { return key2("sfxrep:", f.Y, f.Z) }
func (f SuffixReplace) String() string {
	return fmt.Sprintf("x◦%q ↦ x◦%q, otherwise x ↦ x", f.Y, f.Z)
}

// ReplacementMeta induces the most specific replacement consistent with the
// example: the shared remainder is the longest common suffix (for prefix
// replacement) or prefix (for suffix replacement), which minimises the
// parameter text and maximises generalisation.
type ReplacementMeta struct{}

func (ReplacementMeta) Name() string { return "replacement" }

func (ReplacementMeta) Induce(in, out string) []Func {
	if in == out || in == "" {
		return nil
	}
	var fs []Func
	// Prefix replacement: split off the longest common suffix.
	cs := commonSuffixLen(in, out)
	y, z := in[:len(in)-cs], out[:len(out)-cs]
	if y != "" {
		fs = append(fs, PrefixReplace{Y: y, Z: z})
	}
	// Suffix replacement: split off the longest common prefix.
	cp := commonPrefixLen(in, out)
	y2, z2 := in[cp:], out[cp:]
	if y2 != "" {
		fs = append(fs, SuffixReplace{Y: y2, Z: z2})
	}
	return verified(in, out, fs)
}

func commonPrefixLen(a, b string) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

func commonSuffixLen(a, b string) int {
	i := 0
	for i < len(a) && i < len(b) && a[len(a)-1-i] == b[len(b)-1-i] {
		i++
	}
	return i
}
