package metafunc

import (
	"fmt"
	"time"
)

// Date conversions are the extension the paper's conclusions report adding
// to the prototype ("For instance, we recently added support for date
// conversions"): a DateConvert reinterprets a value from one date layout in
// another, e.g. 'Sep 31 2019' ↦ '20190931' (Section 4.4.1's worked
// example). Parameters are the two layouts, so ψ = 2; both are learnable
// from a single input–output example, satisfying the framework's
// one-example induction requirement.

// dateLayouts is the layout catalog, in Go reference-time notation. Only
// layouts with enough structure to avoid false positives on plain numeric
// data are included (≥ 8 characters or explicit separators/names).
var dateLayouts = []string{
	"20060102",
	"2006-01-02",
	"2006/01/02",
	"02.01.2006",
	"01/02/2006",
	"02/01/2006",
	"2006-01",
	"Jan 2 2006",
	"Jan 02 2006",
	"2 Jan 2006",
	"02 Jan 2006",
	"January 2, 2006",
	"2, January 2006",
	"Mon Jan 2 2006",
}

// DateConvert is x ↦ Format(Parse(x, From), To), otherwise x ↦ x, with
// ψ = 2. Parsing is strict: the value must round-trip through From exactly,
// so '1/2/2006' does not sneak through the '01/02/2006' layout.
type DateConvert struct {
	From, To string
}

// NewDateConvert validates both layouts against the catalog.
func NewDateConvert(from, to string) (DateConvert, error) {
	if !knownLayout(from) {
		return DateConvert{}, fmt.Errorf("metafunc: unknown date layout %q", from)
	}
	if !knownLayout(to) {
		return DateConvert{}, fmt.Errorf("metafunc: unknown date layout %q", to)
	}
	return DateConvert{From: from, To: to}, nil
}

func knownLayout(l string) bool {
	for _, k := range dateLayouts {
		if k == l {
			return true
		}
	}
	return false
}

// DateLayouts returns a copy of the supported layout catalog.
func DateLayouts() []string { return append([]string(nil), dateLayouts...) }

func (f DateConvert) Apply(x string) string {
	t, ok := parseDateStrict(x, f.From)
	if !ok {
		return x
	}
	return t.Format(f.To)
}

func (f DateConvert) Params() int { return 2 }

func (f DateConvert) Key() string { return key2("datecv:", f.From, f.To) }

func (f DateConvert) String() string {
	return fmt.Sprintf("date(%s) ↦ date(%s), otherwise x ↦ x", f.From, f.To)
}

// parseDateStrict parses s under layout and requires an exact round trip.
func parseDateStrict(s, layout string) (time.Time, bool) {
	if !plausibleDate(s) {
		return time.Time{}, false
	}
	t, err := time.Parse(layout, s)
	if err != nil {
		return time.Time{}, false
	}
	if t.Format(layout) != s {
		return time.Time{}, false
	}
	return t, true
}

// plausibleDate cheaply rejects values that cannot be dates, keeping the
// hot induction loops fast.
func plausibleDate(s string) bool {
	if len(s) < 6 || len(s) > 32 {
		return false
	}
	digits := 0
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			digits++
		}
	}
	return digits >= 4
}

// DateMeta induces layout conversions from one example: every pair of
// layouts that parse input and output strictly to the same calendar date
// yields a candidate. Ambiguity ('01/02/2006' vs '02/01/2006') produces
// several candidates, exactly as Section 4.4.1 describes — later examples
// and the ranking stage disambiguate.
type DateMeta struct{}

func (DateMeta) Name() string { return "dateconvert" }

func (DateMeta) Induce(in, out string) []Func {
	if in == out || !plausibleDate(in) || !plausibleDate(out) {
		return nil
	}
	var fs []Func
	for _, li := range dateLayouts {
		ti, ok := parseDateStrict(in, li)
		if !ok {
			continue
		}
		for _, lo := range dateLayouts {
			if lo == li {
				continue
			}
			to, ok := parseDateStrict(out, lo)
			if !ok || !ti.Equal(to) {
				continue
			}
			fs = append(fs, DateConvert{From: li, To: lo})
		}
	}
	return verified(in, out, fs)
}

// DetectDateLayout returns the first catalog layout under which every
// non-empty value parses strictly, and whether one exists. The workload
// generator uses it to decide that a column can carry a date conversion.
func DetectDateLayout(values []string) (string, bool) {
layouts:
	for _, l := range dateLayouts {
		seen := false
		for _, v := range values {
			if v == "" {
				continue
			}
			if _, ok := parseDateStrict(v, l); !ok {
				continue layouts
			}
			seen = true
		}
		if seen {
			return l, true
		}
	}
	return "", false
}
