package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a deterministic advancing clock for journaled
// timestamps.
func fakeClock() func() time.Time {
	t := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// buildStore populates a durable store with one table, two snapshots and
// one finished step, returning the journal path.
func buildStore(t *testing.T, dir string) string {
	t.Helper()
	s, err := OpenStore(dir, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("accounts"); err != nil {
		t.Fatal(err)
	}
	snap1, _, hasParent, err := s.AddSnapshot("accounts", "blob-1", "seed", 10, []string{"id", "v"})
	if err != nil || hasParent {
		t.Fatalf("first snapshot: err=%v hasParent=%v", err, hasParent)
	}
	snap2, parent, hasParent, err := s.AddSnapshot("accounts", "blob-2", "etl", 11, []string{"id", "v"})
	if err != nil || !hasParent || parent.SnapshotID != snap1.SnapshotID {
		t.Fatalf("second snapshot: err=%v hasParent=%v parent=%q", err, hasParent, parent.SnapshotID)
	}
	if _, err := s.StartStep("accounts", snap2.SnapshotID, snap1.SnapshotID, "job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishStep("accounts", snap2.SnapshotID, StepExplained, "", &StepSummary{Records: 11, Core: 9, Updates: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "catalog.jsonl")
}

// TestStoreReplayRoundTrip: a clean close and reopen replays the full
// state — last line per key wins, so the step reopens explained.
func TestStoreReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir)
	s, err := OpenStore(dir, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg, snaps, steps, ok := s.History("accounts")
	if !ok || reg.Table != "accounts" {
		t.Fatal("replay lost the registration")
	}
	if len(snaps) != 2 || len(steps) != 1 {
		t.Fatalf("replayed %d snapshots, %d steps; want 2, 1", len(snaps), len(steps))
	}
	if steps[0].Status != StepExplained || steps[0].Summary == nil || steps[0].Summary.Updates != 3 {
		t.Errorf("step replayed as %+v", steps[0])
	}
	if snaps[1].ParentID != snaps[0].SnapshotID {
		t.Error("lineage chain broken on replay")
	}
	m := s.Metrics()
	if m.Tables != 1 || m.Snapshots != 2 || m.StepsExplained != 1 {
		t.Errorf("metrics after replay: %+v", m)
	}
}

// TestStoreCrashReplayTornTail: a crash mid-append leaves a half-written
// final line; replay must keep every whole line, drop the torn tail, and
// truncate the file so the next append starts clean.
func TestStoreCrashReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	path := buildStore(t, dir)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(whole), "\n"), "\n")
	// The journal holds: table, snap1, snap2, step pending, step explained.
	if len(lines) != 5 {
		t.Fatalf("journal has %d lines, want 5", len(lines))
	}

	// Cut the final line (the explained step) in half: the step must fall
	// back to its pending line.
	half := strings.Join(lines[:4], "") + lines[4][:len(lines[4])/2]
	if err := os.WriteFile(path, []byte(half), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	_, snaps, steps, _ := s.History("accounts")
	if len(snaps) != 2 || len(steps) != 1 || steps[0].Status != StepPending {
		t.Fatalf("after torn tail: %d snaps, steps=%+v; want the pending line to win", len(snaps), steps)
	}
	// The torn bytes are gone: appending and reopening must not resurrect
	// garbage.
	if _, err := s.StartStep("accounts", snaps[1].SnapshotID, snaps[0].SnapshotID, "job-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, _, steps, _ = s2.History("accounts")
	if len(steps) != 1 || steps[0].JobID != "job-2" {
		t.Errorf("post-truncation append lost: steps=%+v", steps)
	}
}

// TestStoreCrashReplayGarbageTail: a full-line tail of garbage (torn
// write that happened to include a newline) stops the replay at the last
// valid record instead of failing the open.
func TestStoreCrashReplayGarbageTail(t *testing.T) {
	dir := t.TempDir()
	path := buildStore(t, dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"kind\":\"nonsense\"}\nnot json at all\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := OpenStore(dir, fakeClock())
	if err != nil {
		t.Fatalf("garbage tail must not fail the open: %v", err)
	}
	defer s.Close()
	_, snaps, steps, ok := s.History("accounts")
	if !ok || len(snaps) != 2 || len(steps) != 1 || steps[0].Status != StepExplained {
		t.Errorf("garbage tail corrupted the replayed state: snaps=%d steps=%+v", len(snaps), steps)
	}
}

// TestStoreValidation: names and sentinel errors.
func TestStoreValidation(t *testing.T) {
	s, err := OpenStore("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, bad := range []string{"", "-leading", "../traversal", "has space", strings.Repeat("x", 129)} {
		if _, err := s.Register(bad); err == nil {
			t.Errorf("Register(%q) accepted an invalid name", bad)
		}
	}
	if _, err := s.Register("ok.name-1"); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
	if _, err := s.Register("ok.name-1"); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, _, _, err := s.AddSnapshot("ghost", "b", "", 0, nil); err == nil {
		t.Error("AddSnapshot on unknown table accepted")
	}
}

// TestSnapshotIDDeterminism: ids derive from lineage position, so the
// same push sequence yields the same ids in any process.
func TestSnapshotIDDeterminism(t *testing.T) {
	build := func() []string {
		s, err := OpenStore("", fakeClock())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Register("t"); err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, blob := range []string{"b1", "b2", "b3"} {
			snap, _, _, err := s.AddSnapshot("t", blob, "", 1, []string{"id"})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, snap.SnapshotID)
		}
		return ids
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("snapshot id %d differs across identical push sequences", i)
		}
	}
	if a[0] == a[1] || a[1] == a[2] {
		t.Error("distinct pushes share a snapshot id")
	}
}
