package catalog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// journal is the catalog's append-only JSONL log, sharing the job
// journal's durability idioms: one full Record per line, fsync on every
// append, last line per key wins on replay, and a torn final line (power
// cut mid-write) is truncated away on open rather than poisoning the
// store. Unlike the job journal it never compacts — catalog records are
// lineage facts, each written once (snapshots) or twice (steps), so the
// log is bounded by the real history it stores.
type journal struct {
	path string
	f    *os.File
}

// openCatalogJournal opens (creating if needed) the journal at path and
// replays it. The returned records are the live set — one per key, last
// line wins — ordered by Seq.
func openCatalogJournal(path string) (*journal, []Record, error) {
	recs, keep, err := replayCatalogJournal(path)
	if err != nil {
		return nil, nil, err
	}
	// Drop a torn or corrupt tail before reopening for append: everything
	// past the last decodable line is garbage from an interrupted write.
	if fi, statErr := os.Stat(path); statErr == nil && fi.Size() > keep {
		if err := os.Truncate(path, keep); err != nil {
			return nil, nil, fmt.Errorf("catalog: truncating journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("catalog: opening journal: %w", err)
	}
	return &journal{path: path, f: f}, recs, nil
}

// replayCatalogJournal decodes path line by line. It returns the live
// records (last line per key, ordered by Seq) and the byte length of the
// valid prefix; decoding stops at the first corrupt line. A missing file
// replays empty.
func replayCatalogJournal(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("catalog: opening journal: %w", err)
	}
	defer f.Close()
	var (
		byKey = make(map[string]*Record)
		keep  int64
	)
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the final append was cut mid-line.
			// Treat it as torn — keep stays at the last full line.
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("catalog: reading journal: %w", err)
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.validate() != nil {
			break // corrupt line: everything from here on is the torn tail
		}
		keep += int64(len(line))
		cp := rec
		byKey[rec.key()] = &cp
	}
	recs := make([]Record, 0, len(byKey))
	//affidavit:ordered records are sorted by Seq below before use
	for _, rec := range byKey {
		recs = append(recs, *rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, keep, nil
}

// append writes one record and fsyncs it — the durability point for
// every catalog mutation.
func (j *journal) append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("catalog: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("catalog: appending journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("catalog: syncing journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	return j.f.Close()
}
