// Package catalog is affidavitd's snapshot-history catalog: registered
// tables, their pushed snapshot lineage, and the explanation chain the
// service computes over each adjacent pair. It turns the pair-diff engine
// into a monitoring surface — push successive snapshots of a table and
// the catalog keeps the full drift history, not just the latest diff.
//
// Durability reuses the job subsystem's idioms: an append-only JSONL
// journal (one fixed-struct record per line, fsynced per append,
// torn-tail tolerant on replay) holds three record kinds — table
// registrations, snapshot lineage (snapshot id, parent id, blob content
// address, operation tag, push timestamp, schema), and explanation steps
// (job id, status, per-step summary). Replay is last-line-per-key-wins,
// so a step's pending line is superseded by its explained/failed line and
// a half-written tail never corrupts earlier history.
//
// Snapshot ids are content-derived — a SHA-256 over the table name, the
// parent snapshot id and the upload's blob address — so the lineage chain
// is deterministic for a given push sequence, like a commit DAG without
// wall-clock input. Timestamps are journaled once at push and replayed
// verbatim, which is what keeps /history byte-stable across restarts.
package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"affidavit/internal/jobs"
)

// Record kinds: one journal line shape shared by the three catalog facts.
const (
	// KindTable registers a table name (keyed by Table).
	KindTable = "table"
	// KindSnapshot is one pushed snapshot's lineage (keyed by SnapshotID).
	KindSnapshot = "snapshot"
	// KindStep is one adjacent pair's explanation step (keyed by
	// SnapshotID — the step's target snapshot).
	KindStep = "step"
)

// StepStatus is an explanation step's catalog-side lifecycle position.
// A step the catalog still holds as StepPending may have progressed in
// the job store; serving code overlays the live job state.
type StepStatus string

const (
	// StepPending marks a step whose explain job is queued or running.
	StepPending StepStatus = "pending"
	// StepExplained marks a step with a stored explanation result.
	StepExplained StepStatus = "explained"
	// StepFailed marks a step that refused or failed to explain (schema
	// change, explain error); the chain continues from its snapshot.
	StepFailed StepStatus = "failed"
)

// StepFunction is one non-identity attribute function of a step's
// explanation, the per-attribute grain of the trend analytics.
type StepFunction struct {
	// Attribute names the transformed attribute.
	Attribute string `json:"attribute"`
	// Kind is the function family ("addition", "value-mapping", …).
	Kind string `json:"kind"`
	// Display is the function's human-readable rendering.
	Display string `json:"display"`
	// Updated counts core record pairs whose value this attribute actually
	// changed between the two snapshots.
	Updated int `json:"updated"`
}

// StepSummary condenses one step's explanation for timelines and trends —
// everything /history and /trends need without re-reading the full stored
// result. All fields derive from the deterministic explanation, so the
// summary is byte-stable for a fixed push sequence and seed.
type StepSummary struct {
	// Records is the target snapshot's record count.
	Records int `json:"records"`
	// Core counts aligned record pairs; Updates the subset whose record
	// changed in at least one attribute.
	Core    int `json:"core"`
	Updates int `json:"updates"`
	// Inserts and Deletes count unaligned target and source records.
	Inserts int `json:"inserts"`
	Deletes int `json:"deletes"`
	// Cost, TrivialCost and Compression mirror the stored result's MDL
	// figures (Compression = Cost/TrivialCost, 0 when trivial is 0).
	Cost        float64 `json:"cost"`
	TrivialCost float64 `json:"trivial_cost"`
	Compression float64 `json:"compression"`
	// Polls is the search effort; WarmEscalated reports the warm-start
	// guard rejected the previous step's seed as stale.
	Polls         int  `json:"polls"`
	WarmEscalated bool `json:"warm_escalated,omitempty"`
	// Functions lists the non-identity attribute functions in schema
	// order.
	Functions []StepFunction `json:"functions,omitempty"`
}

// Record is one catalog journal line. Like jobs.Record it is a fixed
// struct (never a map) so the journal encoding is deterministic; the
// three kinds share the shape and leave foreign fields empty. Timestamps
// are journaled once when the fact is recorded and replayed verbatim —
// they never re-derive from the clock, so listings are byte-stable across
// restarts.
type Record struct {
	// Kind discriminates the fact: KindTable, KindSnapshot or KindStep.
	Kind string `json:"kind"`
	// Seq is the catalog-wide append sequence; listings order by it.
	Seq uint64 `json:"seq"`
	// Table is the registered table name every kind belongs to.
	Table string `json:"table"`
	// Time is when the fact was recorded (registration, push, or the
	// step's latest transition), in UTC.
	Time time.Time `json:"time"`
	// SnapshotID identifies the snapshot (KindSnapshot) or the step's
	// target snapshot (KindStep): a SHA-256 prefix over table, parent id
	// and blob address.
	SnapshotID string `json:"snapshot_id,omitempty"`
	// ParentID is the previous snapshot in the lineage ("" for a table's
	// first snapshot).
	ParentID string `json:"parent_id,omitempty"`
	// Blob is the snapshot upload's content address in the job blob store.
	Blob string `json:"blob,omitempty"`
	// Op is the caller-supplied operation tag ("etl-run-42", "backfill").
	Op string `json:"op,omitempty"`
	// Records is the snapshot's record count at ingest.
	Records int `json:"records,omitempty"`
	// Schema is the snapshot's attribute list, recorded so a schema change
	// mid-chain is detectable from the catalog alone.
	Schema []string `json:"schema,omitempty"`
	// Status, JobID, Error and Summary are the step fields (KindStep).
	Status  StepStatus   `json:"status,omitempty"`
	JobID   string       `json:"job_id,omitempty"`
	Error   string       `json:"error,omitempty"`
	Summary *StepSummary `json:"summary,omitempty"`
}

// key is the replay identity: the journal's last line per key wins.
func (r *Record) key() string {
	return r.Kind + "/" + r.Table + "/" + r.SnapshotID
}

// validate rejects records a hostile or torn journal could hold but a
// live store never writes.
func (r *Record) validate() error {
	if r.Table == "" {
		return fmt.Errorf("catalog: journal record without table")
	}
	switch r.Kind {
	case KindTable:
		return nil
	case KindSnapshot, KindStep:
		if r.SnapshotID == "" {
			return fmt.Errorf("catalog: %s record without snapshot id", r.Kind)
		}
		return nil
	default:
		return fmt.Errorf("catalog: journal record has unknown kind %q", r.Kind)
	}
}

// snapshotIDLen truncates the hex address: half a SHA-256 is plenty of
// identity for an API path (the job store truncates the same way).
const snapshotIDLen = 32

// snapshotID derives a snapshot's identity from its position in the
// lineage: the table, the parent snapshot id and the upload's content
// address. Deterministic for a given push sequence and never colliding
// along a chain — each id folds in its parent's, like a commit DAG.
func snapshotID(table, parentID, blob string) string {
	id := jobs.Address("catalog/v1", table, parentID, blob)
	return id[:snapshotIDLen]
}

// nameRE bounds registered table names: path- and shell-safe, non-empty.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,127}$`)

// ValidName reports whether name is acceptable as a registered table
// name: 1–128 characters of letters, digits, '_', '.', '-', starting
// with a letter or digit.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// tableState is one registered table's in-memory view of the journal.
type tableState struct {
	rec   Record            // the KindTable registration
	snaps []Record          // KindSnapshot, push order (ascending Seq)
	steps map[string]Record // KindStep by target snapshot id
}

// Store is the journal-backed catalog state. All methods are safe for
// concurrent use.
type Store struct {
	mu     sync.Mutex
	jrnl   *journal // nil in memory mode
	now    func() time.Time
	tables map[string]*tableState
	order  []string // registration order — the deterministic listing order
	seq    uint64
	// journalErr latches the first journal write failure: like the job
	// store, the catalog keeps serving from memory (availability over
	// durability) and Close surfaces the error.
	journalErr error
}

// OpenStore opens (or creates) the catalog store rooted at dir. An empty
// dir is a process-local in-memory catalog: same lineage and chain
// semantics, no crash durability. now is the clock for journaled
// timestamps; nil means time.Now.
func OpenStore(dir string, now func() time.Time) (*Store, error) {
	if now == nil {
		now = time.Now
	}
	s := &Store{now: now, tables: make(map[string]*tableState)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: store dir: %w", err)
	}
	jrnl, recs, err := openCatalogJournal(filepath.Join(dir, "catalog.jsonl"))
	if err != nil {
		return nil, err
	}
	s.jrnl = jrnl
	for _, rec := range recs {
		s.applyLocked(rec)
		if rec.Seq >= s.seq {
			s.seq = rec.Seq + 1
		}
	}
	return s, nil
}

// applyLocked folds one replayed (or freshly journaled) record into the
// in-memory state. Records arrive in Seq order, so a snapshot always
// follows its table's registration — but a registration lost to a torn
// tail is synthesized rather than dropping the lineage that survived.
func (s *Store) applyLocked(rec Record) {
	ts, ok := s.tables[rec.Table]
	if !ok {
		ts = &tableState{steps: make(map[string]Record)}
		if rec.Kind != KindTable {
			ts.rec = Record{Kind: KindTable, Seq: rec.Seq, Table: rec.Table, Time: rec.Time}
		}
		s.tables[rec.Table] = ts
		s.order = append(s.order, rec.Table)
	}
	switch rec.Kind {
	case KindTable:
		ts.rec = rec
	case KindSnapshot:
		ts.snaps = append(ts.snaps, rec)
	case KindStep:
		ts.steps[rec.SnapshotID] = rec
	}
}

// appendLocked journals rec, latching the first failure like the job
// store does — catalog writes never fail a push that already ingested.
func (s *Store) appendLocked(rec Record) {
	if s.jrnl == nil {
		return
	}
	if err := s.jrnl.append(rec); err != nil && s.journalErr == nil {
		s.journalErr = err
	}
}

// Sentinel errors for the service layer to map onto HTTP statuses.
var (
	// ErrNoTable reports an unregistered table name.
	ErrNoTable = fmt.Errorf("catalog: no such table")
	// ErrTableExists reports a duplicate registration.
	ErrTableExists = fmt.Errorf("catalog: table already registered")
	// ErrBadName reports a table name ValidName rejects.
	ErrBadName = fmt.Errorf("catalog: invalid table name (want 1-128 of [A-Za-z0-9_.-], starting alphanumeric)")
)

// Register records a new table. The returned record carries the
// registration timestamp the journal holds.
func (s *Store) Register(name string) (Record, error) {
	if !ValidName(name) {
		return Record{}, ErrBadName
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return Record{}, fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	rec := Record{Kind: KindTable, Seq: s.seq, Table: name, Time: s.now().UTC()}
	s.seq++
	s.applyLocked(rec)
	s.appendLocked(rec)
	return rec, nil
}

// Tables returns every registration in registration order — the
// deterministic listing GET /tables serves.
func (s *Store) Tables() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.order))
	for i, name := range s.order {
		out[i] = s.tables[name].rec
	}
	return out
}

// Head returns the table's latest snapshot (false when the table is
// unregistered or has none yet).
func (s *Store) Head(table string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tables[table]
	if !ok || len(ts.snaps) == 0 {
		return Record{}, false
	}
	return ts.snaps[len(ts.snaps)-1], true
}

// Snapshot returns one snapshot's lineage record by id.
func (s *Store) Snapshot(table, id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tables[table]
	if !ok {
		return Record{}, false
	}
	for _, snap := range ts.snaps {
		if snap.SnapshotID == id {
			return snap, true
		}
	}
	return Record{}, false
}

// AddSnapshot appends a pushed snapshot to the table's lineage: the new
// snapshot record (with its content-derived id) plus the parent it chains
// from (hasParent=false for the table's first snapshot).
func (s *Store) AddSnapshot(table, blob, op string, records int, schema []string) (snap, parent Record, hasParent bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tables[table]
	if !ok {
		return Record{}, Record{}, false, fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	parentID := ""
	if n := len(ts.snaps); n > 0 {
		parent = ts.snaps[n-1]
		parentID = parent.SnapshotID
		hasParent = true
	}
	snap = Record{
		Kind:       KindSnapshot,
		Seq:        s.seq,
		Table:      table,
		Time:       s.now().UTC(),
		SnapshotID: snapshotID(table, parentID, blob),
		ParentID:   parentID,
		Blob:       blob,
		Op:         op,
		Records:    records,
		Schema:     append([]string(nil), schema...),
	}
	s.seq++
	s.applyLocked(snap)
	s.appendLocked(snap)
	return snap, parent, hasParent, nil
}

// StartStep journals a pending explanation step for the snapshot,
// recording the job that will run it.
func (s *Store) StartStep(table, snapshotID, parentID, jobID string) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[table]; !ok {
		return Record{}, fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	rec := Record{
		Kind:       KindStep,
		Seq:        s.seq,
		Table:      table,
		Time:       s.now().UTC(),
		SnapshotID: snapshotID,
		ParentID:   parentID,
		Status:     StepPending,
		JobID:      jobID,
	}
	s.seq++
	s.applyLocked(rec)
	s.appendLocked(rec)
	return rec, nil
}

// FinishStep lands a step's terminal catalog state: StepExplained with
// its summary, or StepFailed with the error message. The journal gets a
// full superseding line (last line per key wins on replay).
func (s *Store) FinishStep(table, snapshotID string, status StepStatus, errMsg string, summary *StepSummary) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, table)
	}
	rec, ok := ts.steps[snapshotID]
	if !ok {
		return fmt.Errorf("catalog: no step for snapshot %s", snapshotID)
	}
	rec.Seq = s.seq
	s.seq++
	rec.Time = s.now().UTC()
	rec.Status = status
	rec.Error = errMsg
	rec.Summary = summary
	ts.steps[snapshotID] = rec
	s.appendLocked(rec)
	return nil
}

// History returns the table's full stored chain: its registration, every
// snapshot in push order, and each snapshot's step (absent for the first
// snapshot) aligned to the same order.
func (s *Store) History(table string) (reg Record, snaps []Record, steps []Record, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, found := s.tables[table]
	if !found {
		return Record{}, nil, nil, false
	}
	snaps = append([]Record(nil), ts.snaps...)
	for _, snap := range ts.snaps {
		if step, has := ts.steps[snap.SnapshotID]; has {
			steps = append(steps, step)
		}
	}
	return ts.rec, snaps, steps, true
}

// Metrics is a point-in-time snapshot of the catalog's gauges.
type Metrics struct {
	// Tables and Snapshots are current totals across the whole catalog.
	Tables, Snapshots int
	// StepsPending, StepsExplained and StepsFailed count steps by their
	// catalog status (pending includes steps whose job already landed a
	// terminal state the catalog did not record, e.g. cancellations).
	StepsPending, StepsExplained, StepsFailed int
	// JournalError is the latched first journal write failure ("" while
	// durable or in-memory).
	JournalError string
}

// Metrics returns the current snapshot.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{Tables: len(s.order)}
	if s.journalErr != nil {
		m.JournalError = s.journalErr.Error()
	}
	for _, name := range s.order {
		ts := s.tables[name]
		m.Snapshots += len(ts.snaps)
		for _, snap := range ts.snaps {
			step, ok := ts.steps[snap.SnapshotID]
			if !ok {
				continue
			}
			switch step.Status {
			case StepExplained:
				m.StepsExplained++
			case StepFailed:
				m.StepsFailed++
			default:
				m.StepsPending++
			}
		}
	}
	return m
}

// Close closes the journal and surfaces any latched write failure.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jrnl != nil {
		if err := s.jrnl.close(); err != nil && s.journalErr == nil {
			s.journalErr = err
		}
		s.jrnl = nil
	}
	return s.journalErr
}
