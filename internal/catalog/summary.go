package catalog

import (
	"affidavit"
)

// summarizeStep compresses one chain step's explanation into the summary
// journaled with the step: the core/insert/delete mix, how many core
// records actually changed, per-attribute churn for every non-identity
// function, and the MDL compression achieved. Everything here derives
// from the deterministic explanation, so the journaled summary is as
// byte-stable as the explanation itself.
func summarizeStep(res *affidavit.Result) *StepSummary {
	e := res.Explanation
	jr := res.JSONResult("")
	attrs := len(jr.Explanation.Schema)
	changedPerAttr := make([]int, attrs)
	updates := 0
	src, tgt := e.Inst.Source, e.Inst.Target
	for i := range e.CoreSrc {
		si, ti := e.CoreSrc[i], e.CoreTgt[i]
		rowChanged := false
		for a := 0; a < attrs; a++ {
			if src.Value(si, a) != tgt.Value(ti, a) {
				changedPerAttr[a]++
				rowChanged = true
			}
		}
		if rowChanged {
			updates++
		}
	}
	sum := &StepSummary{
		Records:       tgt.Len(),
		Core:          len(e.CoreSrc),
		Updates:       updates,
		Inserts:       len(e.Inserted),
		Deletes:       len(e.Deleted),
		Cost:          jr.Cost,
		TrivialCost:   jr.TrivialCost,
		Compression:   jr.Compression,
		Polls:         res.Stats.Polls,
		WarmEscalated: res.Stats.WarmEscalated,
	}
	for a, f := range jr.Explanation.Functions {
		if f.Kind == "identity" {
			continue
		}
		sum.Functions = append(sum.Functions, StepFunction{
			Attribute: f.Attribute,
			Kind:      f.Kind,
			Display:   f.Display,
			Updated:   changedPerAttr[a],
		})
	}
	return sum
}
