package catalog

// TrendAttribute aggregates one attribute's churn across the explained
// chain: in how many steps it changed, how many core records it touched
// in total, and which function kinds rewrote it (first-seen order).
type TrendAttribute struct {
	Attribute    string   `json:"attribute"`
	ChangedSteps int      `json:"changed_steps"`
	Updated      int      `json:"updated"`
	Kinds        []string `json:"kinds"`
}

// TrendStep is one step of the per-step trend series: its operation mix
// and compression. Failed and in-flight steps appear with zeroed metrics
// so the series stays aligned with the snapshot chain.
type TrendStep struct {
	SnapshotID   string  `json:"snapshot_id"`
	Op           string  `json:"op,omitempty"`
	Status       string  `json:"status"`
	Updates      int     `json:"updates"`
	Inserts      int     `json:"inserts"`
	Deletes      int     `json:"deletes"`
	Compression  float64 `json:"compression"`
	SchemaChange bool    `json:"schema_change,omitempty"`
}

// TrendOps is the chain-total operation mix over explained steps.
type TrendOps struct {
	Updates int `json:"updates"`
	Inserts int `json:"inserts"`
	Deletes int `json:"deletes"`
}

// TrendCompression is the compression-ratio trajectory over explained
// steps; First/Last/Min/Max are 0 while no step has been explained.
type TrendCompression struct {
	First      float64   `json:"first"`
	Last       float64   `json:"last"`
	Min        float64   `json:"min"`
	Max        float64   `json:"max"`
	Trajectory []float64 `json:"trajectory"`
}

// Trends is GET /tables/{name}/trends: drift analytics computed on demand
// from the journaled step summaries. Only explained steps contribute to
// the attribute, ops and compression aggregates; the per-step series
// carries every step so gaps (failed, pending) stay visible.
type Trends struct {
	Table          string           `json:"table"`
	Snapshots      int              `json:"snapshots"`
	StepsExplained int              `json:"steps_explained"`
	StepsFailed    int              `json:"steps_failed"`
	StepsPending   int              `json:"steps_pending"`
	Attributes     []TrendAttribute `json:"attributes"`
	Steps          []TrendStep      `json:"steps"`
	Ops            TrendOps         `json:"ops"`
	Compression    TrendCompression `json:"compression"`
}

// computeTrends folds the stored chain into trend analytics. All slices
// are non-nil (an empty history encodes as [] not null) and all orderings
// derive from the journal's push order, so the encoding is byte-stable.
func (s *Service) computeTrends(reg Record, snaps, steps []Record) Trends {
	t := Trends{
		Table:      reg.Table,
		Snapshots:  len(snaps),
		Attributes: []TrendAttribute{},
		Steps:      []TrendStep{},
		Compression: TrendCompression{
			Trajectory: []float64{},
		},
	}
	// Attribute rows appear in first-seen order across the explained
	// steps; the index map is only a lookup aid, never ranged over.
	attrIndex := make(map[string]int)
	schemaByID := make(map[string]*Record)
	for i := range snaps {
		schemaByID[snaps[i].SnapshotID] = &snaps[i]
	}
	for _, step := range steps {
		status, _ := s.liveStepStatus(step)
		row := TrendStep{SnapshotID: step.SnapshotID, Status: status}
		if snap, ok := schemaByID[step.SnapshotID]; ok {
			row.Op = snap.Op
			if parent, ok := schemaByID[step.ParentID]; ok && !equalSchema(snap.Schema, parent.Schema) {
				row.SchemaChange = true
			}
		}
		switch {
		case step.Status == StepExplained && step.Summary != nil:
			sum := step.Summary
			row.Updates, row.Inserts, row.Deletes = sum.Updates, sum.Inserts, sum.Deletes
			row.Compression = sum.Compression
			t.StepsExplained++
			t.Ops.Updates += sum.Updates
			t.Ops.Inserts += sum.Inserts
			t.Ops.Deletes += sum.Deletes
			t.Compression.Trajectory = append(t.Compression.Trajectory, sum.Compression)
			for _, f := range sum.Functions {
				idx, seen := attrIndex[f.Attribute]
				if !seen {
					idx = len(t.Attributes)
					attrIndex[f.Attribute] = idx
					t.Attributes = append(t.Attributes, TrendAttribute{Attribute: f.Attribute, Kinds: []string{}})
				}
				ta := &t.Attributes[idx]
				ta.ChangedSteps++
				ta.Updated += f.Updated
				if !containsString(ta.Kinds, f.Kind) {
					ta.Kinds = append(ta.Kinds, f.Kind)
				}
			}
		case step.Status == StepFailed:
			t.StepsFailed++
		default:
			t.StepsPending++
		}
		t.Steps = append(t.Steps, row)
	}
	if n := len(t.Compression.Trajectory); n > 0 {
		traj := t.Compression.Trajectory
		t.Compression.First, t.Compression.Last = traj[0], traj[n-1]
		t.Compression.Min, t.Compression.Max = traj[0], traj[0]
		for _, c := range traj[1:] {
			if c < t.Compression.Min {
				t.Compression.Min = c
			}
			if c > t.Compression.Max {
				t.Compression.Max = c
			}
		}
	}
	return t
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
