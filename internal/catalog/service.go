package catalog

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"affidavit"
	"affidavit/internal/jobs"
)

// JobKind marks a job record as a catalog chain step; the daemon's runner
// dispatches records carrying it to Service.RunStep.
const JobKind = "catalog"

// maxFieldBytes caps each non-file multipart value (op tag, async flag).
const maxFieldBytes = 1 << 20

// maxFormFields bounds how many non-file parts one push may carry.
const maxFormFields = 64

// Config bundles the service dependencies. Explainer and Jobs are shared
// with the daemon's /explain path, so catalog steps ride the same worker
// pool, blob store and per-table affinity.
type Config struct {
	// Dir roots the catalog journal; empty means in-memory (no crash
	// durability — lineage dies with the process, like an in-memory job
	// store).
	Dir string
	// Explainer runs every chain step; its options (and seed) pin the
	// chain's determinism.
	Explainer *affidavit.Explainer
	// Jobs is the queue catalog steps are submitted to and the blob store
	// pushed snapshots are teed into.
	Jobs *jobs.Store
	// MaxRecords caps each pushed snapshot's record count (≤ 0 =
	// unlimited).
	MaxRecords int
	// MaxSnapshotBytes caps each pushed snapshot's raw byte volume (≤ 0 =
	// unlimited).
	MaxSnapshotBytes int64
	// Now is the clock for journaled timestamps; nil means time.Now.
	Now func() time.Time
}

// chainState is one registered table's live warm-chain state: the session
// whose internal head is the snapshot headID, plus the head's interned
// table so a broken chain (failed step, cancelled run) can re-seed
// without a blob round-trip.
type chainState struct {
	sess      *affidavit.Session
	headID    string
	headTable *affidavit.Table
}

// Service is the catalog's HTTP surface and step runner. One instance
// serves /tables and executes every catalog job the daemon's pool
// dispatches back to it.
type Service struct {
	cfg   Config
	store *Store

	// pushMu serializes the lineage append + job submission of concurrent
	// pushes, so each snapshot's parent is exactly the previous push.
	// Ingest streams outside it.
	pushMu sync.Mutex

	mu           sync.Mutex
	chains       map[string]*chainState
	schemaResets int64
}

// NewService opens the catalog store under cfg.Dir and returns the
// service.
func NewService(cfg Config) (*Service, error) {
	if cfg.Explainer == nil || cfg.Jobs == nil {
		return nil, fmt.Errorf("catalog: Config needs an Explainer and a job Store")
	}
	store, err := OpenStore(cfg.Dir, cfg.Now)
	if err != nil {
		return nil, err
	}
	return &Service{cfg: cfg, store: store, chains: make(map[string]*chainState)}, nil
}

// Store exposes the underlying catalog store (metrics, tests).
func (s *Service) Store() *Store { return s.store }

// Close closes the catalog journal. Close the worker pool first, so no
// step finishes after the journal is gone.
func (s *Service) Close() error { return s.store.Close() }

// SchemaResets counts chain re-seeds caused by mid-chain schema changes.
func (s *Service) SchemaResets() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.schemaResets
}

// Routes lists the catalog's route patterns for documentation tooling
// (the docs-drift check unions these with the daemon's mux literals).
func Routes() []string {
	return []string{
		"/tables",
		"/tables/{name}",
		"/tables/{name}/snapshots",
		"/tables/{name}/history",
		"/tables/{name}/trends",
	}
}

// ServeHTTP routes the catalog surface:
//
//	POST /tables                     register a table ({"name": ...})
//	GET  /tables                     list registrations
//	GET  /tables/{name}              one table + its snapshot lineage
//	POST /tables/{name}/snapshots    push a snapshot (multipart "snapshot")
//	GET  /tables/{name}/history      drift timeline (snapshots + steps)
//	GET  /tables/{name}/trends       trend analytics over the chain
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/tables")
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		s.handleTables(w, r)
		return
	}
	name, sub, _ := strings.Cut(rest, "/")
	switch sub {
	case "":
		s.handleTable(w, r, name)
	case "snapshots":
		s.handlePush(w, r, name)
	case "history":
		s.handleHistory(w, r, name)
	case "trends":
		s.handleTrends(w, r, name)
	default:
		http.NotFound(w, r)
	}
}

// tableView is one registration row of GET /tables.
type tableView struct {
	Name         string    `json:"name"`
	RegisteredAt time.Time `json:"registered_at"`
	Snapshots    int       `json:"snapshots"`
	Head         string    `json:"head,omitempty"`
}

// snapshotView is one lineage row: the journaled snapshot record minus
// catalog-internal bookkeeping.
type snapshotView struct {
	SnapshotID string    `json:"snapshot_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Blob       string    `json:"blob"`
	Op         string    `json:"op,omitempty"`
	Records    int       `json:"records"`
	Schema     []string  `json:"schema"`
	PushedAt   time.Time `json:"pushed_at"`
}

// stepView is one explanation step of the drift timeline. Status is the
// catalog status overlaid with the live job state while the step is in
// flight ("queued", "running"), so the timeline never shows a stale
// "pending" for a job that already failed or was cancelled.
type stepView struct {
	SnapshotID string       `json:"snapshot_id"`
	ParentID   string       `json:"parent_id"`
	Status     string       `json:"status"`
	JobID      string       `json:"job_id"`
	Job        string       `json:"job"`
	Result     string       `json:"result,omitempty"`
	Error      string       `json:"error,omitempty"`
	UpdatedAt  time.Time    `json:"updated_at"`
	Summary    *StepSummary `json:"summary,omitempty"`
}

// historyResponse is GET /tables/{name}/history: the stored chain as
// fixed structs in push order — byte-stable across restarts because every
// field replays from the journal.
type historyResponse struct {
	Table        string         `json:"table"`
	RegisteredAt time.Time      `json:"registered_at"`
	Snapshots    []snapshotView `json:"snapshots"`
	Steps        []stepView     `json:"steps"`
}

func viewSnapshot(rec Record) snapshotView {
	return snapshotView{
		SnapshotID: rec.SnapshotID,
		ParentID:   rec.ParentID,
		Blob:       rec.Blob,
		Op:         rec.Op,
		Records:    rec.Records,
		Schema:     rec.Schema,
		PushedAt:   rec.Time,
	}
}

// liveStepStatus resolves a step's serving status: terminal catalog
// states stand; a catalog-pending step reports its job's live state.
func (s *Service) liveStepStatus(rec Record) (status, errMsg string) {
	if rec.Status != StepPending {
		return string(rec.Status), rec.Error
	}
	if job, ok := s.cfg.Jobs.Get(rec.JobID); ok {
		jr := job.Record()
		switch jr.State {
		case jobs.StatePending:
			return "queued", ""
		case jobs.StateRunning:
			return "running", ""
		case jobs.StateError:
			return "failed", jr.Error
		case jobs.StateCancelled:
			return "cancelled", ""
		}
	}
	return string(StepPending), ""
}

func (s *Service) viewStep(rec Record) stepView {
	status, errMsg := s.liveStepStatus(rec)
	v := stepView{
		SnapshotID: rec.SnapshotID,
		ParentID:   rec.ParentID,
		Status:     status,
		JobID:      rec.JobID,
		Job:        "/jobs/" + rec.JobID,
		Error:      errMsg,
		UpdatedAt:  rec.Time,
		Summary:    rec.Summary,
	}
	if rec.Status == StepExplained {
		v.Result = "/jobs/" + rec.JobID + "/result"
	}
	return v
}

// writeJSON encodes v as indented JSON, matching the daemon's encoding.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleTables serves POST /tables (register) and GET /tables (list).
func (s *Service) handleTables(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		recs := s.store.Tables()
		views := make([]tableView, len(recs))
		for i, rec := range recs {
			v := tableView{Name: rec.Table, RegisteredAt: rec.Time}
			if head, ok := s.store.Head(rec.Table); ok {
				v.Head = head.SnapshotID
			}
			_, snaps, _, _ := s.store.History(rec.Table)
			v.Snapshots = len(snaps)
			views[i] = v
		}
		writeJSON(w, http.StatusOK, struct {
			Tables []tableView `json:"tables"`
		}{views})
	case http.MethodPost:
		name, err := registrationName(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec, err := s.store.Register(name)
		switch {
		case errors.Is(err, ErrBadName):
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, ErrTableExists):
			http.Error(w, err.Error(), http.StatusConflict)
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			writeJSON(w, http.StatusCreated, tableView{Name: rec.Table, RegisteredAt: rec.Time})
		}
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// registrationName extracts the table name from a POST /tables request:
// JSON {"name": ...}, a form value, or ?name=.
func registrationName(r *http.Request) (string, error) {
	if v := r.URL.Query().Get("name"); v != "" {
		return v, nil
	}
	ct := r.Header.Get("Content-Type")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFieldBytes))
	if err != nil {
		return "", fmt.Errorf("reading body: %w", err)
	}
	if strings.HasPrefix(ct, "application/json") {
		var req struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("parsing body: %w", err)
		}
		if req.Name == "" {
			return "", fmt.Errorf(`missing "name"`)
		}
		return req.Name, nil
	}
	if name := strings.TrimSpace(string(body)); name != "" {
		return name, nil
	}
	return "", fmt.Errorf(`missing "name" (JSON body {"name": ...} or ?name=)`)
}

// handleTable serves GET /tables/{name}: the registration plus its full
// snapshot lineage.
func (s *Service) handleTable(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reg, snaps, _, ok := s.store.History(name)
	if !ok {
		http.Error(w, "no table "+name, http.StatusNotFound)
		return
	}
	views := make([]snapshotView, len(snaps))
	for i, snap := range snaps {
		views[i] = viewSnapshot(snap)
	}
	writeJSON(w, http.StatusOK, struct {
		Name         string         `json:"name"`
		RegisteredAt time.Time      `json:"registered_at"`
		Head         string         `json:"head,omitempty"`
		Snapshots    []snapshotView `json:"snapshots"`
	}{reg.Table, reg.Time, headID(snaps), views})
}

func headID(snaps []Record) string {
	if len(snaps) == 0 {
		return ""
	}
	return snaps[len(snaps)-1].SnapshotID
}

// handleHistory serves GET /tables/{name}/history: the drift timeline.
func (s *Service) handleHistory(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reg, snaps, steps, ok := s.store.History(name)
	if !ok {
		http.Error(w, "no table "+name, http.StatusNotFound)
		return
	}
	resp := historyResponse{
		Table:        reg.Table,
		RegisteredAt: reg.Time,
		Snapshots:    make([]snapshotView, len(snaps)),
		Steps:        make([]stepView, len(steps)),
	}
	for i, snap := range snaps {
		resp.Snapshots[i] = viewSnapshot(snap)
	}
	for i, step := range steps {
		resp.Steps[i] = s.viewStep(step)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrends serves GET /tables/{name}/trends.
func (s *Service) handleTrends(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reg, snaps, steps, ok := s.store.History(name)
	if !ok {
		http.Error(w, "no table "+name, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, s.computeTrends(reg, snaps, steps))
}

// StepPayload is the non-durable state a live push hands RunStep: the
// already-interned next snapshot. Journal-replayed steps run with a nil
// payload and re-ingest from the blob store.
type StepPayload struct {
	// Next is the pushed snapshot's interned table.
	Next *affidavit.Table
}

// handlePush serves POST /tables/{name}/snapshots: the multipart file
// part "snapshot" (CSV, first row = header) streams into the interned
// columnar backend while the same bytes tee into the job blob store —
// exactly the /explain ingest discipline. Optional values: "op" (an
// operation tag journaled into the lineage) and "async" ("1" answers 202
// with the job id instead of waiting for the step's explanation).
//
// The first push of a table seeds the chain (no explanation to run);
// every later push submits a catalog step job that explains
// parent→snapshot with the table's warm session.
func (s *Service) handlePush(w http.ResponseWriter, r *http.Request, name string) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx := r.Context()
	tab, hash, form, err := s.readPush(ctx, r)
	if err != nil {
		if ctx.Err() != nil {
			http.Error(w, "request expired during snapshot ingest", http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	value := func(k string) string {
		if v := r.URL.Query().Get(k); v != "" {
			return v
		}
		return form[k]
	}
	// Serialize lineage append + job submission so each snapshot's parent
	// is exactly the previous push; ingest above streams concurrently.
	s.pushMu.Lock()
	snap, parent, hasParent, err := s.store.AddSnapshot(name, hash, value("op"), tab.Len(), tab.Schema().Attrs())
	if err != nil {
		s.pushMu.Unlock()
		http.Error(w, "no table "+name, http.StatusNotFound)
		return
	}
	if !hasParent {
		// Chain baseline: seed the warm session now, so the next push's
		// step starts warm without a blob round-trip.
		s.mu.Lock()
		s.chains[name] = &chainState{sess: s.cfg.Explainer.Session(tab), headID: snap.SnapshotID, headTable: tab}
		s.mu.Unlock()
		s.pushMu.Unlock()
		w.Header().Set("X-Affidavit-Snapshot-Id", snap.SnapshotID)
		writeJSON(w, http.StatusCreated, struct {
			Snapshot snapshotView `json:"snapshot"`
		}{viewSnapshot(snap)})
		return
	}
	job, _, err := s.cfg.Jobs.Submit(jobs.Spec{
		Kind:       JobKind,
		Table:      name,
		Format:     "json",
		SourceBlob: parent.Blob,
		TargetBlob: snap.Blob,
		SnapshotID: snap.SnapshotID,
		ParentID:   snap.ParentID,
		Payload:    &StepPayload{Next: tab},
	})
	if err != nil {
		s.pushMu.Unlock()
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	if _, err := s.store.StartStep(name, snap.SnapshotID, snap.ParentID, job.ID()); err != nil {
		s.pushMu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.pushMu.Unlock()
	w.Header().Set("X-Affidavit-Snapshot-Id", snap.SnapshotID)
	w.Header().Set("X-Affidavit-Job-Id", job.ID())
	if value("async") == "1" {
		writeJSON(w, http.StatusAccepted, struct {
			Snapshot snapshotView `json:"snapshot"`
			JobID    string       `json:"job_id"`
			Status   string       `json:"status"`
			Result   string       `json:"result"`
		}{viewSnapshot(snap), job.ID(), "/jobs/" + job.ID(), "/jobs/" + job.ID() + "/result"})
		return
	}
	rec, err := s.cfg.Jobs.Wait(ctx, job)
	if err != nil {
		if ctx.Err() != nil {
			http.Error(w, "request expired while waiting; poll /jobs/"+job.ID(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	s.writeStepOutcome(w, rec)
}

// writeStepOutcome renders a terminal step job as the sync push response:
// the stored explanation bytes, a 503 + partial stats on deadline, or the
// error text (422 for explain refusals such as schema changes).
func (s *Service) writeStepOutcome(w http.ResponseWriter, rec jobs.Record) {
	if rec.TraceID != "" {
		w.Header().Set("X-Affidavit-Trace-Id", rec.TraceID)
	}
	switch rec.State {
	case jobs.StateCompleted:
		body, rec2, err := s.cfg.Jobs.Result(rec.ID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", rec2.ContentType)
		w.Write(body)
	case jobs.StateError:
		if rec.Deadline {
			var st affidavit.JSONStats
			if len(rec.Stats) > 0 {
				json.Unmarshal(rec.Stats, &st)
			}
			st.Cancelled = false
			writeJSON(w, http.StatusServiceUnavailable, struct {
				Error string              `json:"error"`
				Table string              `json:"table"`
				Stats affidavit.JSONStats `json:"stats"`
			}{rec.Error, rec.Table, st})
			return
		}
		http.Error(w, rec.Error, http.StatusUnprocessableEntity)
	case jobs.StateCancelled:
		http.Error(w, "step job "+rec.ID+" was cancelled", http.StatusConflict)
	default:
		http.Error(w, "step job "+rec.ID+" is "+string(rec.State), http.StatusInternalServerError)
	}
}

// readPush streams the multipart push body: the "snapshot" file part is
// interned into the columnar backend while teeing into the blob store;
// other parts are collected as small form values.
func (s *Service) readPush(ctx context.Context, r *http.Request) (*affidavit.Table, string, map[string]string, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, "", nil, fmt.Errorf("parsing push: %w", err)
	}
	form := make(map[string]string)
	var tab *affidavit.Table
	var hash string
	for {
		part, perr := mr.NextPart()
		if perr == io.EOF {
			break
		}
		if perr != nil {
			return nil, "", nil, fmt.Errorf("parsing push: %w", perr)
		}
		name := part.FormName()
		if name == "snapshot" {
			bw := s.cfg.Jobs.Blobs().NewWriter()
			body := io.TeeReader(capBytes(part, s.cfg.MaxSnapshotBytes), bw)
			csvPart := affidavit.NewCSVSource(body)
			t, rerr := s.cfg.Explainer.ReadSourceNamed(ctx, capRecords(csvPart, s.cfg.MaxRecords), "snapshot")
			if rerr == nil {
				// Hash any bytes the CSV reader buffered past the final
				// record, so the address covers the whole part.
				_, rerr = io.Copy(io.Discard, body)
			}
			part.Close()
			if rerr != nil {
				bw.Abort()
				return nil, "", nil, fmt.Errorf("reading snapshot: %w", rerr)
			}
			h, cerr := bw.Commit()
			if cerr != nil {
				return nil, "", nil, fmt.Errorf("storing snapshot: %w", cerr)
			}
			tab, hash = t, h
			continue
		}
		if len(form) >= maxFormFields {
			return nil, "", nil, fmt.Errorf("too many form fields (limit %d)", maxFormFields)
		}
		b, rerr := io.ReadAll(io.LimitReader(part, maxFieldBytes+1))
		part.Close()
		if rerr != nil {
			return nil, "", nil, fmt.Errorf("reading field %q: %w", name, rerr)
		}
		if len(b) > maxFieldBytes {
			return nil, "", nil, fmt.Errorf("field %q exceeds %d bytes", name, maxFieldBytes)
		}
		form[name] = string(b)
	}
	if tab == nil {
		return nil, "", nil, fmt.Errorf(`missing "snapshot" file part`)
	}
	return tab, hash, form, nil
}

// RunStep executes one catalog chain step: explain parent→snapshot on the
// table's warm session, journal the step's terminal catalog state, and
// render the durable result exactly like a /explain json job — so a
// chain of N pushes stores bytes identical to N−1 manual warm
// ExplainNext calls over the same pair sequence.
//
// Chain-state rules: a successful step advances the session to the new
// snapshot (the next step starts warm). A failed, refused or interrupted
// step re-seeds a fresh session at the new snapshot — the chain continues
// from there, each later pair still explained, with one cold step paid.
// A schema change mid-chain is a refusal: the step fails with a clear
// error and the chain continues from the new schema.
func (s *Service) RunStep(ctx context.Context, rec jobs.Record, payload any) (*jobs.Outcome, error) {
	var next *affidavit.Table
	if p, ok := payload.(*StepPayload); ok && p != nil {
		next = p.Next
	}
	if next == nil {
		// Journal-replayed (or crash-requeued) step: re-intern the pushed
		// snapshot from the blob store.
		var err error
		if next, err = s.ingestBlob(ctx, rec.TargetBlob); err != nil {
			return nil, err
		}
	}
	snap, ok := s.store.Snapshot(rec.Table, rec.SnapshotID)
	if !ok {
		return nil, fmt.Errorf("catalog: step references unknown snapshot %s", rec.SnapshotID)
	}
	parent, ok := s.store.Snapshot(rec.Table, rec.ParentID)
	if !ok {
		return nil, fmt.Errorf("catalog: step references unknown parent %s", rec.ParentID)
	}
	if !equalSchema(snap.Schema, parent.Schema) {
		// Schema changed mid-chain: refuse the explanation with a clear
		// error and continue the chain from the new schema.
		msg := fmt.Sprintf(
			"schema changed from %v to %v: explanation refused; the chain continues from snapshot %s with the new schema",
			parent.Schema, snap.Schema, snap.SnapshotID)
		s.resetChain(rec.Table, snap.SnapshotID, next, true)
		s.store.FinishStep(rec.Table, snap.SnapshotID, StepFailed, msg, nil)
		return nil, errors.New(msg)
	}
	sess := s.sessionFor(ctx, rec, parent)
	if sess == nil {
		// Only reachable when the parent blob could not be re-ingested.
		return nil, jobs.Transient(fmt.Errorf("catalog: parent snapshot %s not reconstructable yet", rec.ParentID))
	}
	res, err := sess.ExplainNextContext(ctx, next)
	if err != nil {
		s.resetChain(rec.Table, snap.SnapshotID, next, false)
		s.store.FinishStep(rec.Table, snap.SnapshotID, StepFailed, err.Error(), nil)
		return nil, err
	}
	out := &jobs.Outcome{}
	if stats, merr := json.Marshal(affidavit.StatsJSON(res.Stats)); merr == nil {
		out.Stats = stats
	}
	if res.Stats.Cancelled {
		// Interrupted mid-search: the pool decides between cancel,
		// deadline and shutdown-requeue from the context cause. The
		// session's internal head already advanced, so re-seed at the new
		// snapshot; the catalog step stays pending and the timeline
		// overlays the job's terminal state.
		s.resetChain(rec.Table, snap.SnapshotID, next, false)
		out.Cancelled = true
		return out, nil
	}
	s.advanceChain(rec.Table, sess, snap.SnapshotID, next)
	summary := summarizeStep(res)
	if err := s.store.FinishStep(rec.Table, snap.SnapshotID, StepExplained, "", summary); err != nil {
		return nil, err
	}
	body, merr := json.MarshalIndent(res.JSONResult(rec.Table), "", "  ")
	if merr != nil {
		return nil, merr
	}
	out.Body = append(body, '\n')
	out.ContentType = "application/json"
	return out, nil
}

// sessionFor returns the session to explain rec's pair on: the live chain
// session when its head matches the step's parent, a session re-seeded
// from the retained head table, or — after a restart — one re-seeded from
// the parent's blob. Returns nil only when the blob is unavailable.
func (s *Service) sessionFor(ctx context.Context, rec jobs.Record, parent Record) *affidavit.Session {
	s.mu.Lock()
	cs := s.chains[rec.Table]
	if cs == nil {
		cs = &chainState{}
		s.chains[rec.Table] = cs
	}
	if cs.sess != nil && cs.headID == rec.ParentID {
		sess := cs.sess
		s.mu.Unlock()
		return sess
	}
	headTable := cs.headTable
	headMatches := cs.headID == rec.ParentID && headTable != nil
	s.mu.Unlock()
	if headMatches {
		sess := s.cfg.Explainer.Session(headTable)
		s.mu.Lock()
		cs.sess = sess
		s.mu.Unlock()
		return sess
	}
	parentTab, err := s.ingestBlob(ctx, parent.Blob)
	if err != nil {
		return nil
	}
	sess := s.cfg.Explainer.Session(parentTab)
	s.mu.Lock()
	cs.sess = sess
	cs.headID = rec.ParentID
	cs.headTable = parentTab
	s.mu.Unlock()
	return sess
}

// advanceChain moves the table's chain head to the explained snapshot,
// keeping the warm session.
func (s *Service) advanceChain(table string, sess *affidavit.Session, headID string, head *affidavit.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chains[table] = &chainState{sess: sess, headID: headID, headTable: head}
}

// resetChain re-seeds the table's chain at the given snapshot with a
// fresh session — the continue-from-here semantics of failed, refused and
// interrupted steps.
func (s *Service) resetChain(table, headID string, head *affidavit.Table, schemaChange bool) {
	sess := s.cfg.Explainer.Session(head)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chains[table] = &chainState{sess: sess, headID: headID, headTable: head}
	if schemaChange {
		s.schemaResets++
	}
}

// ingestBlob re-interns a journaled snapshot upload. Failures are
// transient — the blob may be on slow or briefly unavailable storage
// (and is simply absent under an in-memory job store after a cancel).
func (s *Service) ingestBlob(ctx context.Context, hash string) (*affidavit.Table, error) {
	data, err := s.cfg.Jobs.Blobs().Get(hash)
	if err != nil {
		return nil, jobs.Transient(fmt.Errorf("catalog: replaying snapshot blob: %w", err))
	}
	tab, err := s.cfg.Explainer.ReadSourceNamed(ctx, affidavit.NewCSVSource(strings.NewReader(string(data))), "snapshot")
	if err != nil {
		return nil, fmt.Errorf("catalog: re-ingesting snapshot blob: %w", err)
	}
	return tab, nil
}

func equalSchema(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// capBytes errors once more than max bytes flow through it (max ≤ 0
// passes the reader through) — truncating silently would store a
// different snapshot than the client pushed.
func capBytes(r io.Reader, max int64) io.Reader {
	if max <= 0 {
		return r
	}
	return &byteCap{r: r, left: max}
}

type byteCap struct {
	r    io.Reader
	left int64
}

func (c *byteCap) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.left -= int64(n)
	if c.left < 0 {
		return n, fmt.Errorf("snapshot exceeds the byte limit (-max-snapshot)")
	}
	return n, err
}

// capRecords bounds a pushed snapshot's record count (max ≤ 0 =
// unlimited).
func capRecords(src affidavit.Source, max int) affidavit.Source {
	if max <= 0 {
		return src
	}
	return &recordCap{Source: src, left: max}
}

type recordCap struct {
	affidavit.Source
	left int
}

func (l *recordCap) Next() (affidavit.Record, error) {
	rec, err := l.Source.Next()
	if err != nil {
		return nil, err
	}
	if l.left <= 0 {
		return nil, fmt.Errorf("snapshot exceeds the record limit (-max-records)")
	}
	l.left--
	return rec, nil
}
