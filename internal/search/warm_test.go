package search_test

import (
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/metafunc"
	"affidavit/internal/search"
)

// warmInstance builds a chain pair plus the warm tuple its predecessor pair
// learned.
func warmInstance(t *testing.T, permuteKeys bool) (*delta.Instance, delta.FuncTuple) {
	t.Helper()
	ds, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(17)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := gen.MakeChain(tab, gen.ChainConfig{
		Steps: 2, Eta: 0.1, Tau: 0.5, Seed: 17, PermuteKeys: permuteKeys,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := delta.NewInstance(ch.Snapshots[0], ch.Snapshots[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Seed = 17
	res, err := search.Run(prev, opts)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := delta.NewInstance(ch.Snapshots[1], ch.Snapshots[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst, res.Explanation.Funcs
}

func TestWarmStartValidation(t *testing.T) {
	inst, _ := warmInstance(t, false)
	opts := search.DefaultOptions()
	opts.Seed = 17
	opts.WarmStart = make([]metafunc.Func, inst.NumAttrs()+1)
	if _, err := search.Run(inst, opts); err == nil {
		t.Fatal("want error for wrong-length WarmStart")
	}
}

// TestWarmStartAllNilFallsBackCold: a warm tuple with no assignments means
// cold mode — identical results and stats.
func TestWarmStartAllNilFallsBackCold(t *testing.T) {
	inst, _ := warmInstance(t, false)
	opts := search.DefaultOptions()
	opts.Seed = 17
	cold, err := search.Run(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.WarmStart = make([]metafunc.Func, inst.NumAttrs())
	warm, err := search.Run(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, cold, warm)
}

// TestWarmStartDeterministic: warm runs reproduce exactly for equal seeds.
func TestWarmStartDeterministic(t *testing.T) {
	for _, permute := range []bool{false, true} {
		inst, funcs := warmInstance(t, permute)
		opts := search.DefaultOptions()
		opts.Seed = 17
		opts.WarmStart = funcs
		a, err := search.Run(inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := search.Run(inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, a, b)
		if err := a.Explanation.Validate(); err != nil {
			t.Fatalf("permute=%v: %v", permute, err)
		}
	}
}

// TestWarmStartParallelEquivalence: the worker-pool engine returns
// byte-identical results for warm runs too — including the permuted-keys
// case whose warm tuple carries a stale Mapping, exercising both warm
// start states.
func TestWarmStartParallelEquivalence(t *testing.T) {
	for _, permute := range []bool{false, true} {
		inst, funcs := warmInstance(t, permute)
		seq := search.DefaultOptions()
		seq.Seed = 17
		seq.WarmStart = funcs
		par := seq
		par.Workers = 8
		a, err := search.Run(inst, seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := search.Run(inst, par)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, a, b)
	}
}

// TestWarmStartPartialTuple: nil entries leave attributes undecided and the
// search completes them.
func TestWarmStartPartialTuple(t *testing.T) {
	inst, funcs := warmInstance(t, false)
	partial := make([]metafunc.Func, len(funcs))
	partial[0] = funcs[0]
	opts := search.DefaultOptions()
	opts.Seed = 17
	opts.WarmStart = partial
	res, err := search.Run(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.StartLevel != 1 {
		t.Errorf("start level %d, want 1 (one warm assignment)", res.Stats.StartLevel)
	}
}
