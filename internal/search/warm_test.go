package search_test

import (
	"context"
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/metafunc"
	"affidavit/internal/search"
)

// warmInstance builds a chain pair plus the warm tuple its predecessor pair
// learned.
func warmInstance(t *testing.T, permuteKeys bool) (*delta.Instance, delta.FuncTuple) {
	t.Helper()
	ds, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(17)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := gen.MakeChain(tab, gen.ChainConfig{
		Steps: 2, Eta: 0.1, Tau: 0.5, Seed: 17, PermuteKeys: permuteKeys,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := delta.NewInstance(ch.Snapshots[0], ch.Snapshots[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Seed = 17
	res, err := search.Run(context.Background(), prev, opts)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := delta.NewInstance(ch.Snapshots[1], ch.Snapshots[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst, res.Explanation.Funcs
}

func TestWarmStartValidation(t *testing.T) {
	inst, _ := warmInstance(t, false)
	opts := search.DefaultOptions()
	opts.Seed = 17
	opts.WarmStart = make([]metafunc.Func, inst.NumAttrs()+1)
	if _, err := search.Run(context.Background(), inst, opts); err == nil {
		t.Fatal("want error for wrong-length WarmStart")
	}
}

// TestWarmStartAllNilFallsBackCold: a warm tuple with no assignments means
// cold mode — identical results and stats.
func TestWarmStartAllNilFallsBackCold(t *testing.T) {
	inst, _ := warmInstance(t, false)
	opts := search.DefaultOptions()
	opts.Seed = 17
	cold, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.WarmStart = make([]metafunc.Func, inst.NumAttrs())
	warm, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, cold, warm)
}

// TestWarmStartDeterministic: warm runs reproduce exactly for equal seeds.
func TestWarmStartDeterministic(t *testing.T) {
	for _, permute := range []bool{false, true} {
		inst, funcs := warmInstance(t, permute)
		opts := search.DefaultOptions()
		opts.Seed = 17
		opts.WarmStart = funcs
		a, err := search.Run(context.Background(), inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := search.Run(context.Background(), inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, a, b)
		if err := a.Explanation.Validate(); err != nil {
			t.Fatalf("permute=%v: %v", permute, err)
		}
	}
}

// TestWarmStartParallelEquivalence: the worker-pool engine returns
// byte-identical results for warm runs too — including the permuted-keys
// case whose warm tuple carries a stale Mapping, exercising both warm
// start states.
func TestWarmStartParallelEquivalence(t *testing.T) {
	for _, permute := range []bool{false, true} {
		inst, funcs := warmInstance(t, permute)
		seq := search.DefaultOptions()
		seq.Seed = 17
		seq.WarmStart = funcs
		par := seq
		par.Workers = 8
		a, err := search.Run(context.Background(), inst, seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := search.Run(context.Background(), inst, par)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, a, b)
	}
}

// trivialRatioOf is a run's cost over its pair's trivial-explanation cost —
// what a session feeds the next run as WarmPrevRatio.
func trivialRatioOf(res *search.Result, inst *delta.Instance, alpha float64) float64 {
	cm := delta.CostModel{Alpha: alpha}
	return res.Cost / cm.TrivialCost(inst.NumAttrs(), inst.Target.Len())
}

// brokenChain builds the guard scenario on one dataset: a recurring chain
// (pairs share one transformation tuple) that breaks mid-chain when a
// snapshot from a structurally different chain over the same table is
// spliced in. Returns the previous pair's learned tuple and compression
// ratio, the recurring next pair, and the broken pair.
func brokenChain(t *testing.T) (warm delta.FuncTuple, prevRatio float64, recurring, broken *delta.Instance) {
	t.Helper()
	ds, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(17)
	if err != nil {
		t.Fatal(err)
	}
	chA, err := gen.MakeChain(tab, gen.ChainConfig{Steps: 2, Eta: 0.1, Tau: 0.5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Same dataset, different seed: same schema, but different records and a
	// different sustained transformation tuple — splicing its snapshot into
	// chain A breaks the recurring structure.
	chB, err := gen.MakeChain(tab, gen.ChainConfig{Steps: 1, Eta: 0.1, Tau: 0.5, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := delta.NewInstance(chA.Snapshots[0], chA.Snapshots[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := search.DefaultOptions()
	opts.Seed = 17
	res, err := search.Run(context.Background(), prev, opts)
	if err != nil {
		t.Fatal(err)
	}
	recurring, err = delta.NewInstance(chA.Snapshots[1], chA.Snapshots[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	broken, err = delta.NewInstance(chA.Snapshots[1], chB.Snapshots[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Explanation.Funcs, trivialRatioOf(res, prev, opts.Alpha), recurring, broken
}

// TestWarmGuardEscalatesOnBrokenChain: when the chain's structure breaks,
// the armed guard rejects the stale warm seed, sets Stats.WarmEscalated,
// and the escalated run is byte-identical to a cold run of the same seed.
func TestWarmGuardEscalatesOnBrokenChain(t *testing.T) {
	warm, prevRatio, _, broken := brokenChain(t)
	opts := search.DefaultOptions()
	opts.Seed = 17
	cold, err := search.Run(context.Background(), broken, opts)
	if err != nil {
		t.Fatal(err)
	}
	guarded := opts
	guarded.WarmStart = warm
	guarded.WarmGuard = 2
	guarded.WarmPrevRatio = prevRatio
	got, err := search.Run(context.Background(), broken, guarded)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stats.WarmEscalated {
		t.Fatal("guard did not escalate on a broken chain")
	}
	norm := *got
	norm.Stats.WarmEscalated = false
	assertSameResult(t, cold, &norm)
}

// TestWarmGuardKeepsRecurringWarmStart: on the chain's true next pair the
// armed guard leaves the warm seed alone — no escalation, and the run keeps
// the incremental speedup over the cold search.
func TestWarmGuardKeepsRecurringWarmStart(t *testing.T) {
	warm, prevRatio, recurring, _ := brokenChain(t)
	opts := search.DefaultOptions()
	opts.Seed = 17
	cold, err := search.Run(context.Background(), recurring, opts)
	if err != nil {
		t.Fatal(err)
	}
	guarded := opts
	guarded.WarmStart = warm
	guarded.WarmGuard = 2
	guarded.WarmPrevRatio = prevRatio
	got, err := search.Run(context.Background(), recurring, guarded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.WarmEscalated {
		t.Fatal("guard escalated on a recurring pattern")
	}
	if got.Stats.Polls >= cold.Stats.Polls {
		t.Errorf("guarded warm run polled %d states, cold run %d — incremental speedup lost",
			got.Stats.Polls, cold.Stats.Polls)
	}
	if err := got.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmGuardValidation: negative guard parameters are rejected.
func TestWarmGuardValidation(t *testing.T) {
	inst, funcs := warmInstance(t, false)
	opts := search.DefaultOptions()
	opts.Seed = 17
	opts.WarmStart = funcs
	opts.WarmGuard = -1
	if _, err := search.Run(context.Background(), inst, opts); err == nil {
		t.Fatal("want error for negative WarmGuard")
	}
	opts.WarmGuard = 0
	opts.WarmPrevRatio = -0.1
	if _, err := search.Run(context.Background(), inst, opts); err == nil {
		t.Fatal("want error for negative WarmPrevRatio")
	}
}

// TestWarmStartPartialTuple: nil entries leave attributes undecided and the
// search completes them.
func TestWarmStartPartialTuple(t *testing.T) {
	inst, funcs := warmInstance(t, false)
	partial := make([]metafunc.Func, len(funcs))
	partial[0] = funcs[0]
	opts := search.DefaultOptions()
	opts.Seed = 17
	opts.WarmStart = partial
	res, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.StartLevel != 1 {
		t.Errorf("start level %d, want 1 (one warm assignment)", res.Stats.StartLevel)
	}
}
