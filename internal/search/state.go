// Package search implements Affidavit's best-first search (Algorithm 1):
// search states over partial attribute-function assignments, the cost lower
// bounds of Definition 4.6, the level-bounded priority queue of Section
// 4.6, state extension via function induction, and ⊡-finalisation with
// greedy value mappings.
package search

import (
	"context"
	"sort"
	"strings"

	"affidavit/internal/blocking"
	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/spill"
)

// State is a search state H ∈ H_I: a partial assignment of functions to
// attributes together with its blocking result and cost. States are
// immutable once created.
type State struct {
	inst   *delta.Instance
	funcs  []metafunc.Func // nil = undecided (∗)
	blocks *blocking.Result
	cost   float64
	level  int // number of decided attributes
	key    string
}

// newRoot returns the all-undecided state H∅ = (∗, …, ∗). workers > 1
// additionally lets every blocking refinement in the search tree partition
// huge blocks across that many goroutines (see blocking.Result.WithWorkers).
// Every refinement in the tree observes ctx, so a cancelled run never
// starts another block split; under an active spill manager every
// refinement groups externally when its tables would exceed the budget.
func newRoot(ctx context.Context, inst *delta.Instance, cm delta.CostModel, workers int, sm *spill.Manager, st *spill.Stats) *State {
	s := &State{
		inst:   inst,
		funcs:  make([]metafunc.Func, inst.NumAttrs()),
		blocks: blocking.New(inst).WithWorkers(workers).WithContext(ctx).WithSpill(sm, st),
	}
	s.cost = stateCost(s, cm)
	s.key = stateKey(s.funcs)
	return s
}

// extend returns the state with attribute attr additionally decided as f.
func (s *State) extend(attr int, f metafunc.Func, cm delta.CostModel) *State {
	funcs := make([]metafunc.Func, len(s.funcs))
	copy(funcs, s.funcs)
	funcs[attr] = f
	ns := &State{
		inst:   s.inst,
		funcs:  funcs,
		blocks: s.blocks.Refine(attr, f),
		level:  s.level + 1,
	}
	ns.cost = stateCost(ns, cm)
	ns.key = stateKey(ns.funcs)
	return ns
}

// stateCost computes c(H) per Definition 4.6 (sign-corrected, DESIGN.md §4):
//
//	c(H) = 2α · max(c_t(H), c_s(H) − ∆) + 2(1−α) · c_f(H)
//
// where c_f sums ψ over decided functions, c_t lower-bounds |T^{E+}| from
// target-surplus blocks and c_s − ∆ lower-bounds it via Corollary 4.5. The
// insertion bound is additionally scaled by |A| to match L(T^{E+}) = |A|·|T^{E+}|
// of Definition 3.8, so end-state costs coincide with explanation costs.
func stateCost(s *State, cm delta.CostModel) float64 {
	cf := 0
	for _, f := range s.funcs {
		if f != nil {
			cf += f.Params()
		}
	}
	ct := s.blocks.TargetSurplus()
	cs := s.blocks.SourceSurplus() - s.inst.Delta()
	bound := ct
	if cs > bound {
		bound = cs
	}
	lt := bound * s.inst.NumAttrs()
	return 2*cm.Alpha*float64(lt) + 2*(1-cm.Alpha)*float64(cf)
}

// stateKey is an order-independent canonical identity for duplicate
// elimination: the sorted list of attr:funcKey assignments.
func stateKey(funcs []metafunc.Func) string {
	parts := make([]string, 0, len(funcs))
	for a, f := range funcs {
		if f != nil {
			parts = append(parts, itoa(a)+"="+f.Key())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// IsEnd reports whether every attribute is decided (Definition 4.2).
func (s *State) IsEnd() bool { return s.level == len(s.funcs) }

// Cost returns c(H).
func (s *State) Cost() float64 { return s.cost }

// Level returns the number of decided attributes.
func (s *State) Level() int { return s.level }

// Key returns the canonical assignment key.
func (s *State) Key() string { return s.key }

// Funcs returns the decided tuple; undecided positions are nil.
func (s *State) Funcs() []metafunc.Func {
	return append([]metafunc.Func(nil), s.funcs...)
}

// Describe renders the state in the paper's tuple notation, e.g.
// "(∗, ∗, ∗, id, ∗, x ↦ "k $", id)".
func (s *State) Describe() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, f := range s.funcs {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case f == nil:
			sb.WriteString("∗")
		case metafunc.IsIdentity(f):
			sb.WriteString("id")
		default:
			sb.WriteString(f.String())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// undecided returns the undecided attribute indices ordered by
// indeterminacy, most determined first (Section 4.3); ties break towards
// the lower attribute index for determinism.
func (s *State) undecided() []int {
	type ia struct{ attr, ind int }
	var list []ia
	for a, f := range s.funcs {
		if f == nil {
			list = append(list, ia{attr: a, ind: s.blocks.Indeterminacy(a)})
		}
	}
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].ind != list[j].ind {
			return list[i].ind < list[j].ind
		}
		return list[i].attr < list[j].attr
	})
	out := make([]int, len(list))
	for i, e := range list {
		out[i] = e.attr
	}
	return out
}
