package search_test

import (
	"context"
	"fmt"
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/fixture"
	"affidavit/internal/gen"
	"affidavit/internal/search"
)

// testRows caps dataset sizes so the equivalence sweep stays fast enough
// for the race detector: narrow datasets keep a few hundred rows, the very
// wide ones (plista, flight-1k, uniprot) fewer.
func testRows(spec datasets.Spec) int {
	rows := spec.Rows
	if rows > 400 {
		rows = 400
	}
	if spec.DataAttrs > 40 && rows > 120 {
		rows = 120
	}
	return rows
}

// TestParallelSequentialEquivalence runs the worker-pool engine against the
// sequential engine on every registry dataset and asserts byte-identical
// results for equal seeds: same explanation (function tuple, core size,
// deletions, insertions), same cost, same search-effort stats. Run under
// `go test -race` this also exercises the concurrent refinement paths.
func TestParallelSequentialEquivalence(t *testing.T) {
	for _, spec := range datasets.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tab, err := spec.BuildRows(testRows(spec), 7)
			if err != nil {
				t.Fatal(err)
			}
			p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			seq := search.DefaultOptions()
			seq.Seed = 7
			seq.Workers = 1
			par := seq
			par.Workers = 8
			a, err := search.Run(context.Background(), p.Inst, seq)
			if err != nil {
				t.Fatal(err)
			}
			b, err := search.Run(context.Background(), p.Inst, par)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, a, b)
		})
	}
}

// TestParallelEquivalenceAcrossConfigs covers the remaining start
// strategies and a wider queue on the running example.
func TestParallelEquivalenceAcrossConfigs(t *testing.T) {
	inst := fixture.Instance()
	for _, cfg := range []struct {
		name string
		opts search.Options
	}{
		{"Hid", search.DefaultOptions()},
		{"Hs", search.OverlapOptions()},
		{"Hempty", func() search.Options {
			o := search.DefaultOptions()
			o.Start = search.StartEmpty
			return o
		}()},
		{"wide", func() search.Options {
			o := search.DefaultOptions()
			o.Beta = 3
			o.QueueWidth = 8
			return o
		}()},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", cfg.name, seed), func(t *testing.T) {
				seq := cfg.opts
				seq.Seed = seed
				seq.Workers = 0 // zero and one both mean sequential
				par := cfg.opts
				par.Seed = seed
				par.Workers = 4
				a, err := search.Run(context.Background(), inst, seq)
				if err != nil {
					t.Fatal(err)
				}
				b, err := search.Run(context.Background(), inst, par)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, a, b)
			})
		}
	}
}

func assertSameResult(t *testing.T, a, b *search.Result) {
	t.Helper()
	if a.Cost != b.Cost {
		t.Errorf("cost: sequential %v, parallel %v", a.Cost, b.Cost)
	}
	if ak, bk := a.Explanation.Funcs.Key(), b.Explanation.Funcs.Key(); ak != bk {
		t.Errorf("function tuples differ:\n  seq: %s\n  par: %s", ak, bk)
	}
	if !equalInts(a.Explanation.Deleted, b.Explanation.Deleted) {
		t.Errorf("deletions differ: %v vs %v", a.Explanation.Deleted, b.Explanation.Deleted)
	}
	if !equalInts(a.Explanation.Inserted, b.Explanation.Inserted) {
		t.Errorf("insertions differ: %v vs %v", a.Explanation.Inserted, b.Explanation.Inserted)
	}
	if !equalInts(a.Explanation.CoreSrc, b.Explanation.CoreSrc) ||
		!equalInts(a.Explanation.CoreTgt, b.Explanation.CoreTgt) {
		t.Error("core alignments differ")
	}
	// Stats must agree on everything but wall time: the engines walk the
	// same search tree.
	as, bs := a.Stats, b.Stats
	as.Duration, bs.Duration = 0, 0
	if as != bs {
		t.Errorf("stats differ: sequential %+v, parallel %+v", as, bs)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelEquivalenceAboveRefineThreshold runs an instance big enough
// that the root block crosses blocking's partitioned-refinement threshold,
// so the engine's parallel path exercises intra-Refine partitioning too —
// results must still be byte-identical to the sequential engine.
func TestParallelEquivalenceAboveRefineThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	ds, err := datasets.Get("flight-500k")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.BuildRows(20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq := search.DefaultOptions()
	seq.Seed = 3
	par := seq
	par.Workers = 8
	a, err := search.Run(context.Background(), p.Inst, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := search.Run(context.Background(), p.Inst, par)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, a, b)
}
