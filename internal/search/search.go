package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"affidavit/internal/align"
	"affidavit/internal/delta"
	"affidavit/internal/induce"
	"affidavit/internal/metafunc"
	"affidavit/internal/obs"
	"affidavit/internal/spill"
)

// StartStrategy selects the set of start states H₀ (Section 4.2).
type StartStrategy int

const (
	// StartOverlap is Hs: one state whose A^id attributes come from
	// overlap-score matching. Falls back to StartEmpty when no overlap
	// pairs survive the block-size threshold.
	StartOverlap StartStrategy = iota
	// StartID is H^id: one state per attribute, assuming that attribute
	// unchanged.
	StartID
	// StartEmpty is H∅: the single all-undecided state.
	StartEmpty
)

func (s StartStrategy) String() string {
	switch s {
	case StartOverlap:
		return "Hs"
	case StartID:
		return "Hid"
	case StartEmpty:
		return "H∅"
	}
	return fmt.Sprintf("StartStrategy(%d)", int(s))
}

// Options configures one Affidavit run. The zero value is *not* usable as a
// whole — call DefaultOptions or fill every field. Run validates and
// rejects out-of-range values instead of silently clamping them; the
// zero-value meaning of each field is documented per field.
type Options struct {
	// Alpha is the cost parameter α of Definition 3.10. Must be in [0, 1];
	// zero is valid and weighs only function complexity. Default 0.5.
	Alpha float64
	// Beta is the branching factor β: attributes polled per expansion and
	// candidates kept per attribute. Must be ≥ 1; zero is invalid.
	// Default 2.
	Beta int
	// QueueWidth is ϱ, the level-bounded queue width. Must be ≥ 1; zero is
	// invalid (a width-0 queue could never hold a state). Default 5.
	QueueWidth int
	// Start selects H₀. The zero value is StartOverlap; DefaultOptions
	// uses StartID.
	Start StartStrategy
	// MaxBlockSize is the overlap-matching threshold used by StartOverlap
	// (pairs per shared value). Default 100000.
	MaxBlockSize int
	// Induce carries θ, ρ and the induction caps.
	Induce induce.Config
	// Seed drives all sampling; equal seeds give equal searches. Zero is a
	// valid seed.
	Seed int64
	// MaxExpansions caps polled states as a safety valve. Must be ≥ 0;
	// 0 means unlimited.
	MaxExpansions int
	// Workers bounds how many extension probes and blocking refinements the
	// engine evaluates concurrently. Must be ≥ 0; 0 and 1 both mean the
	// sequential engine. For any fixed Seed the parallel and sequential
	// engines return identical Results (same explanation, cost and stats) —
	// probes draw from per-probe deterministic rngs and are merged in
	// deterministic order.
	Workers int
	// Tracer, when non-nil, observes the search (Figure 4 reproductions).
	// Tracer callbacks always fire from the polling goroutine, in
	// deterministic order, regardless of Workers.
	Tracer Tracer
	// OnEvent, when non-nil, receives pipeline events: one search-start
	// event (cold/warm/escalated, start level), one poll event per queue
	// extraction, finalisation and conversion phase markers, and one done
	// event with the final tallies. Events fire from the polling goroutine
	// in deterministic order for a fixed seed, regardless of Workers; a nil
	// sink costs one branch per emission point.
	OnEvent obs.Sink
	// WarmStart, when non-nil, switches Run into incremental mode — the
	// warm-start API for snapshot chains: when diffing snapshot n against
	// n+1, the explanation of (n−1, n) is usually mostly right, so instead
	// of the cold H₀ states the queue is seeded with start states derived
	// from the previous run's function tuple, re-applied to the new pair,
	// re-blocked and re-costed. Must have one entry per attribute; nil
	// entries leave that attribute undecided. Because explicit value
	// mappings are alignment-specific (rewritten keys are re-permuted
	// between every pair), a second warm state with all Mapping entries
	// left undecided is seeded as well, so a stale key mapping never hides
	// the reusable part of the tuple.
	//
	// A recurring transformation pattern is then confirmed in a handful of
	// polls — the warm states start at (or next to) an end state — instead
	// of being re-discovered through the full lattice climb; this is what
	// makes chain runs converge in far fewer expansions. The trade-off is
	// that incremental runs anchor on the previous structure: when the new
	// pair no longer resembles it, the search still extends, finalises and
	// re-optimises from the warm states and always returns a valid
	// explanation, but it may differ from a cold run's. Callers wanting
	// cold-search guarantees leave WarmStart nil. Fixed seeds remain fully
	// deterministic, and the parallel engine remains equivalent to the
	// sequential one.
	WarmStart []metafunc.Func
	// WarmGuard, when > 0, arms the warm-start quality guard: before the
	// warm states are admitted, the full warm state's re-validated cost is
	// compared — as a fraction of this pair's trivial-explanation cost —
	// against the previous run's compression ratio (WarmPrevRatio). If it
	// exceeds WarmGuard × WarmPrevRatio the incremental run would anchor on
	// a stale structure, so the warm states are discarded and the run
	// escalates to a cold search over the configured Start strategy
	// (Stats.WarmEscalated reports the escalation; the escalated run is
	// byte-identical to a cold run with the same seed). Must be ≥ 0; 0
	// disables the guard. Ignored when WarmStart is nil.
	WarmGuard float64
	// WarmPrevRatio is the previous run's cost divided by its pair's
	// trivial-explanation cost — the compression-ratio baseline the guard
	// compares against. Must be ≥ 0. Sessions fill it automatically.
	WarmPrevRatio float64
	// Spill, when active, runs the search under its memory budget: any
	// blocking refinement whose group table would exceed the budget's
	// share groups externally (grace-hash partitions on temp files), and
	// the end-state conversion's multiset matching streams disk partitions
	// instead of holding the whole target key map. Explanations are
	// byte-identical to the unbudgeted run for equal seeds; the run's
	// spill totals land in Stats and in one KindSpill event per spilling
	// stage, emitted just before the done event. Nil (or a zero-budget
	// manager) disables spilling.
	Spill *spill.Manager
}

// DefaultOptions returns the paper's H^id evaluation configuration
// (β = 2, ϱ = 5, α = 0.5, θ = 0.1, ρ = 0.95).
func DefaultOptions() Options {
	return Options{
		Alpha:        0.5,
		Beta:         2,
		QueueWidth:   5,
		Start:        StartID,
		MaxBlockSize: 100000,
		Induce:       induce.Defaults,
	}
}

// OverlapOptions returns the paper's Hs evaluation configuration
// (overlap start state, β = 1, ϱ = 1).
func OverlapOptions() Options {
	o := DefaultOptions()
	o.Start = StartOverlap
	o.Beta = 1
	o.QueueWidth = 1
	return o
}

// Validate checks every instance-independent option invariant — the same
// checks Run performs before searching, exposed so front-ends constructing
// options (functional-option builders, flag parsers) can fail fast instead
// of deferring configuration errors to the first explanation.
func (o Options) Validate() error {
	if o.Beta < 1 {
		return fmt.Errorf("search: Beta must be ≥ 1, got %d", o.Beta)
	}
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("search: Alpha must be in [0,1], got %v", o.Alpha)
	}
	if o.QueueWidth < 1 {
		return fmt.Errorf("search: QueueWidth must be ≥ 1, got %d", o.QueueWidth)
	}
	if o.MaxExpansions < 0 {
		return fmt.Errorf("search: MaxExpansions must be ≥ 0, got %d", o.MaxExpansions)
	}
	if o.Workers < 0 {
		return fmt.Errorf("search: Workers must be ≥ 0, got %d", o.Workers)
	}
	if o.WarmGuard < 0 {
		return fmt.Errorf("search: WarmGuard must be ≥ 0, got %v", o.WarmGuard)
	}
	if o.WarmPrevRatio < 0 {
		return fmt.Errorf("search: WarmPrevRatio must be ≥ 0, got %v", o.WarmPrevRatio)
	}
	// Both boundaries are degenerate but defined (θ ∈ {0,1} collapse the
	// sample sizing, ρ = 1 demands the cap) and ran fine before validation
	// existed, so the legacy shims keep accepting them.
	if o.Induce.Theta < 0 || o.Induce.Theta > 1 {
		return fmt.Errorf("search: Theta must be in [0,1], got %v", o.Induce.Theta)
	}
	if o.Induce.Rho < 0 || o.Induce.Rho > 1 {
		return fmt.Errorf("search: Rho must be in [0,1], got %v", o.Induce.Rho)
	}
	return nil
}

// Stats reports how much work a run performed.
type Stats struct {
	Polls           int           // states extracted from the queue
	StatesGenerated int           // candidate states costed
	Enqueued        int           // states admitted to the queue
	Evicted         int           // admissions that displaced a queued state
	Duration        time.Duration // wall time
	StartLevel      int           // assignments in the chosen start state(s)
	// Cancelled reports that the run's context was cancelled (or its
	// deadline passed) before the search finished. A cancelled run still
	// returns a valid best-so-far explanation instead of an error.
	Cancelled bool
	// WarmEscalated reports that the warm-start quality guard rejected the
	// warm states as stale and the run fell back to a cold search.
	WarmEscalated bool
	// SpilledBytes is the volume this run wrote to spill files under a
	// memory budget (blocking's external grouping plus the conversion's
	// external matching; streamed front-end calls such as ExplainSources
	// additionally fold in the ingest spill of the snapshots they drained
	// themselves); 0 without a budget.
	SpilledBytes int64
	// SpillPartitions counts the external partitions those spills created.
	SpillPartitions int64
}

// Result is a finished run: the explanation, its cost, and run statistics.
type Result struct {
	Explanation *delta.Explanation
	Cost        float64
	Stats       Stats
}

// Run executes Algorithm 1 on the instance and returns the best explanation
// found. It falls back to the trivial explanation if the search cannot
// produce an end state within MaxExpansions.
//
// Cancellation is cooperative: the poll loop checks ctx once per iteration,
// every probe checks it on entry, and blocking refinements observe it too,
// so a cancelled run returns within about one poll iteration. Rather than
// discarding the climb, a cancelled run salvages its best-so-far work — the
// cheapest polled state is finalised with greedy value mappings and
// converted like an ordinary end state — and returns that explanation with
// Stats.Cancelled set and a nil error. Callers that must distinguish
// complete from interrupted results check Stats.Cancelled.
func Run(ctx context.Context, inst *delta.Instance, opts Options) (res *Result, err error) {
	// Spilled tables cannot surface read errors through the table accessor
	// signatures, so a failed spill-file read arrives as a *spill.ReadError
	// panic. Every such read in a run happens on this goroutine (probes only
	// touch the in-memory coded columns), so containing it here turns a
	// disk fault into a failed run instead of a dead process.
	defer func() {
		if p := recover(); p != nil {
			re, ok := p.(*spill.ReadError)
			if !ok {
				panic(p)
			}
			res, err = nil, fmt.Errorf("search: %w", re)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if inst.NumAttrs() == 0 {
		return nil, fmt.Errorf("search: instance has no attributes")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.WarmStart != nil && len(opts.WarmStart) != inst.NumAttrs() {
		return nil, fmt.Errorf("search: WarmStart has %d functions, schema has %d attributes",
			len(opts.WarmStart), inst.NumAttrs())
	}
	start := time.Now() //affidavit:ignore nondet Stats.Duration is a wall-time diagnostic, excluded from coded output and goldens
	e := &engine{
		ctx:   ctx,
		opts:  opts,
		cm:    delta.CostModel{Alpha: opts.Alpha},
		rng:   rand.New(rand.NewSource(opts.Seed)),
		stats: &Stats{},
	}
	if opts.Spill.Active() {
		e.groupSpill = &spill.Stats{}
		e.matchSpill = &spill.Stats{}
		e.overlapSpill = &spill.Stats{}
	}
	if opts.Workers > 1 {
		// The polling goroutine participates in probe evaluation, so the
		// semaphore holds Workers−1 extra slots.
		e.sem = make(chan struct{}, opts.Workers-1)
	}
	finish := func(expl *delta.Explanation) (*Result, error) {
		if err := expl.Validate(); err != nil {
			return nil, fmt.Errorf("search: produced invalid explanation: %w", err)
		}
		e.stats.Duration = time.Since(start) //affidavit:ignore nondet Stats.Duration is a wall-time diagnostic, excluded from coded output and goldens
		cost := e.cm.Cost(expl)
		// Spill totals are aggregated per run and emitted from the polling
		// goroutine just before the done event: both engines evaluate the
		// same refinements for a fixed seed, so the totals — like every
		// other event — are deterministic regardless of Workers.
		for _, sp := range []struct {
			component string
			st        *spill.Stats
		}{
			{"overlap", e.overlapSpill},
			{"blocking", e.groupSpill},
			{"convert", e.matchSpill},
		} {
			if sp.st.Bytes() == 0 && sp.st.Partitions() == 0 {
				continue
			}
			e.stats.SpilledBytes += sp.st.Bytes()
			e.stats.SpillPartitions += sp.st.Partitions()
			e.emit(obs.Event{
				Kind:       obs.KindSpill,
				Component:  sp.component,
				SpillBytes: sp.st.Bytes(),
				SpillParts: sp.st.Partitions(),
			})
		}
		e.emit(obs.Event{
			Kind:      obs.KindDone,
			Polls:     e.stats.Polls,
			States:    e.stats.StatesGenerated,
			Cost:      cost,
			Cancelled: e.stats.Cancelled,
		})
		return &Result{
			Explanation: expl,
			Cost:        cost,
			Stats:       *e.stats,
		}, nil
	}
	if e.done() {
		// Cancelled before any search work: the trivial explanation is the
		// only best-so-far there is. Mode "cancelled" keeps the observer's
		// start/done event pairing intact — every done event has a start.
		e.stats.Cancelled = true
		e.emit(obs.Event{Kind: obs.KindSearchStart, Mode: "cancelled", Start: opts.Start.String()})
		return finish(delta.Trivial(inst))
	}
	root := newRoot(ctx, inst, e.cm, opts.Workers, opts.Spill, e.groupSpill)
	q := newQueue(opts.QueueWidth)
	starts := e.warmStates(root)
	mode := "cold"
	if len(starts) > 0 {
		mode = "warm"
	}
	if len(starts) > 0 && opts.WarmGuard > 0 {
		// Warm-start quality guard: the first warm state carries the whole
		// previous tuple, re-blocked and re-costed against this pair. When
		// its cost ratio blows past the previous run's compression ratio the
		// structure no longer transfers — escalate to a cold search.
		trivial := e.cm.TrivialCost(inst.NumAttrs(), inst.Target.Len())
		if trivial > 0 && starts[0].cost > opts.WarmGuard*opts.WarmPrevRatio*trivial {
			e.stats.WarmEscalated = true
			mode = "escalated"
			starts = nil
		}
	}
	if starts == nil {
		starts = e.startStates(inst, root)
	}
	for _, s := range starts {
		e.offer(q, s)
		if s.level > e.stats.StartLevel {
			e.stats.StartLevel = s.level
		}
	}
	e.emit(obs.Event{
		Kind:       obs.KindSearchStart,
		Mode:       mode,
		Start:      opts.Start.String(),
		StartLevel: e.stats.StartLevel,
	})

	var end, best *State
	for q.Len() > 0 {
		if e.done() {
			e.stats.Cancelled = true
			break
		}
		h := q.Poll()
		e.stats.Polls++
		if opts.Tracer != nil {
			opts.Tracer.Polled(h, e.stats.Polls)
		}
		e.emit(obs.Event{
			Kind:  obs.KindPoll,
			Poll:  e.stats.Polls,
			Level: h.level,
			Cost:  h.cost,
			End:   h.IsEnd(),
		})
		if h.IsEnd() {
			end = h
			break
		}
		if best == nil || h.cost < best.cost {
			best = h
		}
		if opts.MaxExpansions > 0 && e.stats.Polls >= opts.MaxExpansions {
			break
		}
		for _, child := range e.extensions(h) {
			e.offer(q, child)
		}
	}
	if e.stats.Cancelled && end == nil && best != nil {
		// Salvage the climb: resolve the cheapest polled state's remaining
		// attributes with greedy maps — about one expansion's worth of work —
		// instead of throwing the partial assignment away.
		end = e.finalize(best)
		e.emit(obs.Event{Kind: obs.KindFinalize, Level: end.level, Cost: end.cost})
	}

	var expl *delta.Explanation
	if end != nil {
		e.emit(obs.Event{Kind: obs.KindConvert})
		tuple := make(delta.FuncTuple, len(end.funcs))
		copy(tuple, end.funcs)
		bctx := ctx
		if e.stats.Cancelled {
			// The run is committed to returning its best-so-far result; the
			// conversion is one bounded pass, so let it complete.
			bctx = context.WithoutCancel(ctx)
		}
		var err error
		expl, err = delta.BuildCtx(bctx, inst, tuple, delta.BuildOptions{
			Workers: opts.Workers, Spill: opts.Spill, SpillStats: e.matchSpill,
		})
		if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// The deadline fired inside the conversion itself. The run has
			// already found its end state — the same tuple a slightly
			// earlier cancellation would have converted uncancelled — so
			// finish the one bounded conversion pass and tag the result,
			// rather than downgrading a complete search to the trivial
			// explanation.
			e.stats.Cancelled = true
			expl, err = delta.BuildCtx(context.WithoutCancel(ctx), inst, tuple,
				delta.BuildOptions{Workers: opts.Workers, Spill: opts.Spill, SpillStats: e.matchSpill})
		}
		if err != nil {
			return nil, fmt.Errorf("search: converting end state: %w", err)
		}
	} else {
		expl = delta.Trivial(inst)
	}
	if e.stats.Cancelled {
		// Best-so-far must never be worse than the always-available E∅: a
		// salvaged greedy finalisation can carry heavy mapping parameters.
		if triv := delta.Trivial(inst); e.cm.Cost(triv) < e.cm.Cost(expl) {
			expl = triv
		}
	}
	return finish(expl)
}

// emit forwards an event to the configured sink. Called only from the
// polling goroutine, so event order is deterministic for fixed seeds.
func (e *engine) emit(ev obs.Event) {
	if e.opts.OnEvent != nil {
		e.opts.OnEvent(ev)
	}
}

// offer adds a state to the queue, keeping the admission statistics.
func (e *engine) offer(q *boundedQueue, s *State) {
	admitted, evicted := q.Add(s)
	if admitted {
		e.stats.Enqueued++
	}
	if evicted {
		e.stats.Evicted++
	}
}

// warmStates builds the incremental-mode start states: one state assigning
// every non-nil warm function, and — when the tuple carries explicit value
// mappings — a second state with those mapping attributes left undecided,
// since mappings learned on a previous pair's alignment rarely transfer.
// Returns nil (cold mode) when WarmStart is unset or carries no
// assignments at all.
func (e *engine) warmStates(root *State) []*State {
	if e.opts.WarmStart == nil {
		return nil
	}
	build := func(keepMappings bool) *State {
		s := root
		for a, f := range e.opts.WarmStart {
			if f == nil {
				continue
			}
			if _, isMap := f.(*metafunc.Mapping); isMap && !keepMappings {
				continue
			}
			s = s.extend(a, f, e.cm)
		}
		return s
	}
	full := build(true)
	if full.level == 0 {
		return nil
	}
	noMaps := build(false)
	if noMaps.key == full.key {
		return []*State{full}
	}
	// noMaps degenerates to the root when every warm function is a mapping;
	// seeding it anyway keeps an escape hatch from a stale all-mapping
	// tuple (the run then behaves like H∅ with a warm incumbent).
	return []*State{full, noMaps}
}

// startStates builds H₀ for the configured strategy (Section 4.2).
func (e *engine) startStates(inst *delta.Instance, root *State) []*State {
	switch e.opts.Start {
	case StartEmpty:
		return []*State{root}
	case StartID:
		// The d identity refinements are independent; evaluate them on the
		// worker pool and keep attribute order for determinism.
		states := make([]*State, inst.NumAttrs())
		e.runAll(len(states), func(a int) {
			states[a] = root.extend(a, metafunc.Identity{}, e.cm)
		})
		return states
	case StartOverlap:
		ov := align.ComputeOverlapSpill(inst, e.opts.MaxBlockSize, e.opts.Spill, e.overlapSpill)
		attrs := ov.StartAttrs(inst)
		if len(attrs) == 0 {
			return []*State{root}
		}
		s := root
		for _, a := range attrs {
			s = s.extend(a, metafunc.Identity{}, e.cm)
		}
		return []*State{s}
	}
	return []*State{root}
}
