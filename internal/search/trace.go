package search

import (
	"fmt"
	"strings"
)

// Tracer observes a run. Implementations must be cheap; the search calls
// them synchronously.
type Tracer interface {
	// Polled fires when a state is extracted from the queue; order is the
	// 1-based extraction index (the bracketed numbers of Figure 4).
	Polled(h *State, order int)
	// Probe fires after an attribute's candidates were compared against the
	// greedy-map probe hg; kept holds the extensions that beat it.
	Probe(parent *State, attr int, hg *State, kept []*State)
	// Finalized fires when a state's remaining attributes were resolved
	// with greedy value mappings.
	Finalized(from, end *State)
}

// TreeTracer records the search tree for rendering (Figure 4). It is not
// safe for concurrent use.
type TreeTracer struct {
	Events []TraceEvent
}

// TraceEvent is one recorded step.
type TraceEvent struct {
	Kind   string // "poll", "probe", "finalize"
	Order  int    // poll order, for Kind == "poll"
	State  string // rendered state
	Cost   float64
	Attr   int      // probed attribute, for Kind == "probe"
	Kept   []string // accepted extensions, for Kind == "probe"
	MapWon bool     // greedy map beat every candidate, for Kind == "probe"
}

var _ Tracer = (*TreeTracer)(nil)

// Polled implements Tracer.
func (t *TreeTracer) Polled(h *State, order int) {
	t.Events = append(t.Events, TraceEvent{
		Kind:  "poll",
		Order: order,
		State: h.Describe(),
		Cost:  h.Cost(),
	})
}

// Probe implements Tracer.
func (t *TreeTracer) Probe(parent *State, attr int, hg *State, kept []*State) {
	ev := TraceEvent{
		Kind:   "probe",
		State:  parent.Describe(),
		Attr:   attr,
		Cost:   hg.Cost(),
		MapWon: len(kept) == 0,
	}
	for _, k := range kept {
		ev.Kept = append(ev.Kept, k.Describe())
	}
	t.Events = append(t.Events, ev)
}

// Finalized implements Tracer.
func (t *TreeTracer) Finalized(from, end *State) {
	t.Events = append(t.Events, TraceEvent{
		Kind:  "finalize",
		State: end.Describe(),
		Cost:  end.Cost(),
	})
}

// Polls returns the states in extraction order.
func (t *TreeTracer) Polls() []TraceEvent {
	var out []TraceEvent
	for _, ev := range t.Events {
		if ev.Kind == "poll" {
			out = append(out, ev)
		}
	}
	return out
}

// String renders the recorded tree as an indented log.
func (t *TreeTracer) String() string {
	var sb strings.Builder
	for _, ev := range t.Events {
		switch ev.Kind {
		case "poll":
			fmt.Fprintf(&sb, "[%d] poll  %s  c=%.1f\n", ev.Order, ev.State, ev.Cost)
		case "probe":
			verdict := fmt.Sprintf("%d extensions", len(ev.Kept))
			if ev.MapWon {
				verdict = "⊡ (greedy map wins)"
			}
			fmt.Fprintf(&sb, "      probe a%d of %s → %s\n", ev.Attr, ev.State, verdict)
		case "finalize":
			fmt.Fprintf(&sb, "      finalize → %s  c=%.1f\n", ev.State, ev.Cost)
		}
	}
	return sb.String()
}
