package search

// boundedQueue is the modified priority queue of Section 4.6: level i of
// the search lattice (states with i attributes assigned) holds at most
// max(1, ϱ − i + 1) states. A full level accepts a new state only if it is
// not worse than the level's worst state, which it then evicts. Polling
// returns the globally cheapest state; ties go to states with more
// assignments. Duplicate assignment sets are rejected once seen.
type boundedQueue struct {
	width   int // ϱ
	levels  map[int][]*State
	visited map[string]bool
	size    int
}

func newQueue(width int) *boundedQueue {
	if width < 1 {
		width = 1
	}
	return &boundedQueue{
		width:   width,
		levels:  make(map[int][]*State),
		visited: make(map[string]bool),
	}
}

// capacity returns the level bound max(1, ϱ − i + 1).
func (q *boundedQueue) capacity(level int) int {
	c := q.width - level + 1
	if c < 1 {
		c = 1
	}
	return c
}

// Add offers a state to the queue. admitted reports whether the state
// entered the queue; evicted reports whether admission displaced a queued
// state from a full level (so net queue occupancy only grew when admitted
// && !evicted). Rejections — duplicates, or states worse than every state
// of a full level — return false, false.
func (q *boundedQueue) Add(s *State) (admitted, evicted bool) {
	if q.visited[s.key] {
		return false, false
	}
	q.visited[s.key] = true
	lv := q.levels[s.level]
	if len(lv) < q.capacity(s.level) {
		q.levels[s.level] = append(lv, s)
		q.size++
		return true, false
	}
	worst := 0
	for i := 1; i < len(lv); i++ {
		if lv[i].cost > lv[worst].cost {
			worst = i
		}
	}
	if s.cost > lv[worst].cost {
		return false, false
	}
	lv[worst] = s
	return true, true
}

// Poll removes and returns the cheapest state; nil when empty. Ties go to
// the state with more assignments, then to the lexicographically smaller
// assignment key, so polling is fully deterministic.
func (q *boundedQueue) Poll() *State {
	var best *State
	bestLevel := -1
	//affidavit:ordered argmin with a total tie-break (cost, level, assignment key); the polled state is independent of visit order
	for level, lv := range q.levels {
		for _, s := range lv {
			if best == nil || s.cost < best.cost ||
				(s.cost == best.cost && (s.level > best.level ||
					(s.level == best.level && s.key < best.key))) {
				best = s
				bestLevel = level
			}
		}
	}
	if best == nil {
		return nil
	}
	lv := q.levels[bestLevel]
	for i, s := range lv {
		if s == best {
			lv[i] = lv[len(lv)-1]
			q.levels[bestLevel] = lv[:len(lv)-1]
			break
		}
	}
	if len(q.levels[bestLevel]) == 0 {
		delete(q.levels, bestLevel)
	}
	q.size--
	return best
}

// Len returns the number of queued states.
func (q *boundedQueue) Len() int { return q.size }

// Seen reports whether a state with this key was ever admitted or offered.
func (q *boundedQueue) Seen(key string) bool { return q.visited[key] }
