package search_test

import (
	"context"
	"strings"
	"testing"

	"affidavit/internal/fixture"
	"affidavit/internal/search"
)

func TestDOTExport(t *testing.T) {
	inst := fixture.Instance()
	tr := &search.TreeTracer{}
	opts := search.DefaultOptions()
	opts.Beta = 2
	opts.QueueWidth = 3
	opts.Seed = 1
	opts.Tracer = tr
	if _, err := search.Run(context.Background(), inst, opts); err != nil {
		t.Fatal(err)
	}
	dot := tr.DOT()
	if !strings.HasPrefix(dot, "digraph affidavit_search {") || !strings.HasSuffix(dot, "}\n") {
		t.Errorf("not a digraph:\n%.120s", dot)
	}
	for _, want := range []string{"rankdir", "->", "⊡", "[1] "} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// Every node referenced by an edge must be declared.
	for _, line := range strings.Split(dot, "\n") {
		line = strings.TrimSpace(line)
		if !strings.Contains(line, "->") {
			continue
		}
		from := line[:strings.Index(line, " ->")]
		if !strings.Contains(dot, from+" [label=") {
			t.Errorf("edge source %q has no node declaration", from)
		}
	}
}

func TestDOTEscaping(t *testing.T) {
	tr := &search.TreeTracer{}
	tr.Events = append(tr.Events, search.TraceEvent{
		Kind:  "poll",
		Order: 1,
		State: `(x ↦ "quoted\value", ` + strings.Repeat("long", 50) + `)`,
		Cost:  1,
	})
	dot := tr.DOT()
	if strings.Contains(dot, `"quoted\value"`) {
		t.Error("quotes/backslashes not escaped")
	}
	if !strings.Contains(dot, "…") {
		t.Error("long labels not truncated")
	}
}
