package search_test

import (
	"context"
	"testing"

	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/search"
	"affidavit/internal/spill"
	"affidavit/internal/table"
)

// TestRunningExample solves I1 from H^id with the paper's Figure 4
// parameters and must recover the optimal explanation E1: 13 aligned
// records, cost 77, and the reference functions on the non-key attributes.
func TestRunningExample(t *testing.T) {
	inst := fixture.Instance()
	opts := search.DefaultOptions()
	opts.Beta = 2
	opts.QueueWidth = 3
	opts.Seed = 1
	res, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Cost != fixture.ReferenceCost {
		t.Errorf("cost = %v, want %d\nfuncs: %v", res.Cost, fixture.ReferenceCost,
			describeTuple(res.Explanation.Funcs))
	}
	if res.Explanation.CoreSize() != 13 {
		t.Errorf("core = %d, want 13", res.Explanation.CoreSize())
	}
	ft := res.Explanation.Funcs
	ref := fixture.ReferenceFuncs()
	// The non-key, non-Date functions must match the reference exactly.
	for _, a := range []int{fixture.Type, fixture.Val, fixture.Unit, fixture.Org} {
		if ft[a].Key() != ref[a].Key() {
			t.Errorf("attribute %s: got %s, want %s",
				inst.Schema().Attr(a), ft[a], ref[a])
		}
	}
	// Date admits two equally optimal ψ=2 rewrites (prefix replacement as
	// in the paper, or the whole-value suffix replacement); either must
	// realise the same transformation.
	if got := ft[fixture.Date].Apply("99991231"); got != "20180701" {
		t.Errorf("Date('99991231') = %q, want 20180701 via %s", got, ft[fixture.Date])
	}
	if got := ft[fixture.Date].Apply("20130416"); got != "20130416" {
		t.Errorf("Date('20130416') = %q, want unchanged via %s", got, ft[fixture.Date])
	}
	// The key attributes must carry value mappings reproducing the correct
	// alignment on the core.
	refExpl := fixture.ReferenceExplanation()
	for i, s := range refExpl.CoreSrc {
		want := inst.Target.Record(refExpl.CoreTgt[i])
		got := ft.Apply(inst.Source.Record(s))
		if !got.Equal(want) {
			t.Errorf("core record %d: F(s) = %v, want %v", s, got, want)
		}
	}
}

func describeTuple(ft delta.FuncTuple) string {
	out := "("
	for i, f := range ft {
		if i > 0 {
			out += ", "
		}
		out += f.String()
	}
	return out + ")"
}

// TestRunningExampleOverlapConfig solves I1 with the Hs configuration
// (β = 1, ϱ = 1, overlap start state). This is the paper's intro trap: the
// a-priori matcher may assume Date unchanged (10 of 13 pairs agree on it),
// and with ϱ = 1 there is no backtracking to repair that, costing the three
// '9999…'→'2018…' alignments. A near-optimal explanation (≤ 84 = 77 + 7)
// is the faithful outcome; the greedy config must still crush the trivial
// explanation's 112.
func TestRunningExampleOverlapConfig(t *testing.T) {
	inst := fixture.Instance()
	opts := search.OverlapOptions()
	opts.Seed = 3
	res, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Cost > 84 {
		t.Errorf("cost = %v, want ≤ 84\nfuncs: %v", res.Cost,
			describeTuple(res.Explanation.Funcs))
	}
	if res.Cost >= fixture.TrivialCost {
		t.Errorf("Hs did not beat the trivial explanation: %v", res.Cost)
	}
	if res.Stats.StartLevel == 0 {
		t.Error("overlap start should pre-assign attributes")
	}
}

// TestRunningExampleEmptyStart solves I1 from H∅.
func TestRunningExampleEmptyStart(t *testing.T) {
	inst := fixture.Instance()
	opts := search.DefaultOptions()
	opts.Start = search.StartEmpty
	opts.Seed = 5
	res, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != fixture.ReferenceCost {
		t.Errorf("cost = %v, want %d", res.Cost, fixture.ReferenceCost)
	}
}

// TestSeedDeterminism: equal seeds must give identical explanations.
func TestSeedDeterminism(t *testing.T) {
	inst := fixture.Instance()
	opts := search.DefaultOptions()
	opts.Seed = 42
	a, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Explanation.Funcs.Key() != b.Explanation.Funcs.Key() {
		t.Error("same seed produced different explanations")
	}
}

// TestFigure4SearchTree traces the H^id search on I1 with the Figure 4
// parameters (α=0.5, β=2, ϱ=3) and checks the qualitative shape: the
// search polls several states, probes attributes, and terminates on an end
// state whose cost equals the optimum.
func TestFigure4SearchTree(t *testing.T) {
	inst := fixture.Instance()
	tr := &search.TreeTracer{}
	opts := search.DefaultOptions()
	opts.Beta = 2
	opts.QueueWidth = 3
	opts.Seed = 1
	opts.Tracer = tr
	res, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	polls := tr.Polls()
	if len(polls) < 3 {
		t.Fatalf("expected a multi-step search, got %d polls:\n%s", len(polls), tr)
	}
	last := polls[len(polls)-1]
	if last.Cost != res.Cost {
		t.Errorf("final polled state cost %v ≠ result cost %v", last.Cost, res.Cost)
	}
	// The trace must show at least one greedy-map probe winning (the ID1/ID2
	// key columns can only be explained by value mappings).
	sawMapWin := false
	for _, ev := range tr.Events {
		if ev.Kind == "probe" && ev.MapWon {
			sawMapWin = true
		}
	}
	if !sawMapWin {
		t.Errorf("no ⊡ decision in trace:\n%s", tr)
	}
	if tr.String() == "" {
		t.Error("empty trace rendering")
	}
}

// TestIdenticalSnapshots: when nothing changed, the all-identity end state
// explains everything with cost 0.
func TestIdenticalSnapshots(t *testing.T) {
	s := table.MustSchema("a", "b")
	rows := []table.Record{{"1", "x"}, {"2", "y"}, {"3", "z"}}
	src := table.MustFromRows(s, rows)
	tgt := table.MustFromRows(s, rows)
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Run(context.Background(), inst, search.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 || res.Explanation.CoreSize() != 3 {
		t.Errorf("cost = %v core = %d, want 0 and 3", res.Cost, res.Explanation.CoreSize())
	}
}

// TestPureInsertions: extra target records must be reported as insertions.
func TestPureInsertions(t *testing.T) {
	s := table.MustSchema("a")
	src := table.MustFromRows(s, []table.Record{{"1"}, {"2"}})
	tgt := table.MustFromRows(s, []table.Record{{"1"}, {"2"}, {"3"}})
	inst, _ := delta.NewInstance(src, tgt, nil)
	res, err := search.Run(context.Background(), inst, search.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanation.Inserted) != 1 || res.Explanation.CoreSize() != 2 {
		t.Errorf("insertions = %d core = %d", len(res.Explanation.Inserted), res.Explanation.CoreSize())
	}
}

// TestOptionValidation: bad options must be rejected, not crash.
func TestOptionValidation(t *testing.T) {
	inst := fixture.Instance()
	bad := search.DefaultOptions()
	bad.Beta = 0
	if _, err := search.Run(context.Background(), inst, bad); err == nil {
		t.Error("Beta=0 accepted")
	}
	bad = search.DefaultOptions()
	bad.Alpha = 1.5
	if _, err := search.Run(context.Background(), inst, bad); err == nil {
		t.Error("Alpha=1.5 accepted")
	}
	bad = search.DefaultOptions()
	bad.QueueWidth = 0
	if _, err := search.Run(context.Background(), inst, bad); err == nil {
		t.Error("QueueWidth=0 accepted")
	}
	bad = search.DefaultOptions()
	bad.QueueWidth = -3
	if _, err := search.Run(context.Background(), inst, bad); err == nil {
		t.Error("QueueWidth=-3 accepted")
	}
	bad = search.DefaultOptions()
	bad.MaxExpansions = -1
	if _, err := search.Run(context.Background(), inst, bad); err == nil {
		t.Error("MaxExpansions=-1 accepted")
	}
	bad = search.DefaultOptions()
	bad.Workers = -2
	if _, err := search.Run(context.Background(), inst, bad); err == nil {
		t.Error("Workers=-2 accepted")
	}
}

// TestMaxExpansionsFallback: an absurd cap still yields a valid (possibly
// trivial) explanation.
func TestMaxExpansionsFallback(t *testing.T) {
	inst := fixture.Instance()
	opts := search.DefaultOptions()
	opts.MaxExpansions = 1
	res, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStartStrategyString covers the Stringer.
func TestStartStrategyString(t *testing.T) {
	if search.StartOverlap.String() != "Hs" || search.StartID.String() != "Hid" ||
		search.StartEmpty.String() != "H∅" {
		t.Error("StartStrategy strings wrong")
	}
	if search.StartStrategy(9).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

// TestOverlapStartSpillIdentity: running the overlap start under a one-byte
// spill budget must produce the exact explanation of the unbudgeted run —
// the external overlap pass is a pure memory trade, never a result change.
func TestOverlapStartSpillIdentity(t *testing.T) {
	inst := fixture.Instance()
	opts := search.OverlapOptions()
	opts.Seed = 3
	ref, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Spill = spill.NewManager(1, t.TempDir())
	got, err := search.Run(context.Background(), inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != ref.Cost {
		t.Errorf("budgeted cost = %v, want %v", got.Cost, ref.Cost)
	}
	if gd, rd := describeTuple(got.Explanation.Funcs), describeTuple(ref.Explanation.Funcs); gd != rd {
		t.Errorf("budgeted funcs diverged:\n got %s\nwant %s", gd, rd)
	}
	if got.Stats.SpilledBytes == 0 {
		t.Error("expected spilled bytes under a 1-byte budget")
	}
}
