package search

import (
	"context"
	"testing"
	"testing/quick"

	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/metafunc"
)

func stateAt(t *testing.T, level int, cost float64, key string) *State {
	t.Helper()
	return &State{cost: cost, level: level, key: key}
}

func TestQueueCapacityFormula(t *testing.T) {
	q := newQueue(5)
	// Level i holds max(1, ϱ − i + 1).
	cases := map[int]int{0: 6, 1: 5, 2: 4, 5: 1, 6: 1, 100: 1}
	for level, want := range cases {
		if got := q.capacity(level); got != want {
			t.Errorf("capacity(%d) = %d, want %d", level, got, want)
		}
	}
	if newQueue(0).capacity(0) != 2 {
		t.Error("width floors at 1")
	}
}

func TestQueueEviction(t *testing.T) {
	q := newQueue(1) // level 1 capacity: 1
	a := stateAt(t, 1, 10, "a")
	b := stateAt(t, 1, 5, "b")
	c := stateAt(t, 1, 7, "c")
	if admitted, evicted := q.Add(a); !admitted || evicted {
		t.Fatal("first add must be a fresh admission")
	}
	if admitted, evicted := q.Add(b); !admitted || !evicted {
		t.Fatal("cheaper state must be admitted by evicting the full level's worst")
	}
	// a was evicted; c (cost 7 > b's 5) must be rejected.
	if admitted, evicted := q.Add(c); admitted || evicted {
		t.Error("worse state accepted by full level")
	}
	if got := q.Poll(); got != b {
		t.Errorf("Poll = %v, want b", got)
	}
	if q.Poll() != nil {
		t.Error("queue should be empty")
	}
}

// TestQueueEvictionVsFreshAdmission: evicting admissions must be
// distinguishable from fresh ones, so occupancy accounting (Enqueued −
// Evicted) matches Len.
func TestQueueEvictionVsFreshAdmission(t *testing.T) {
	q := newQueue(1)
	enqueued, evicted := 0, 0
	offer := func(s *State) {
		adm, ev := q.Add(s)
		if adm {
			enqueued++
		}
		if ev {
			evicted++
		}
	}
	offer(stateAt(t, 1, 10, "a")) // fresh
	offer(stateAt(t, 1, 5, "b"))  // evicts a
	offer(stateAt(t, 1, 4, "c"))  // evicts b
	offer(stateAt(t, 2, 9, "d"))  // fresh, level 2
	if enqueued != 4 || evicted != 2 {
		t.Errorf("enqueued/evicted = %d/%d, want 4/2", enqueued, evicted)
	}
	if got := enqueued - evicted; got != q.Len() {
		t.Errorf("occupancy %d ≠ Len %d", got, q.Len())
	}
}

func TestQueueDuplicateElimination(t *testing.T) {
	q := newQueue(3)
	a := stateAt(t, 1, 10, "same")
	b := stateAt(t, 1, 1, "same")
	if admitted, _ := q.Add(a); !admitted {
		t.Fatal("first add rejected")
	}
	if admitted, _ := q.Add(b); admitted {
		t.Error("duplicate key accepted")
	}
	if !q.Seen("same") || q.Seen("other") {
		t.Error("Seen bookkeeping wrong")
	}
}

func TestQueuePollOrdering(t *testing.T) {
	q := newQueue(5)
	q.Add(stateAt(t, 1, 3, "x"))
	q.Add(stateAt(t, 2, 3, "y")) // same cost, deeper level: polled first
	q.Add(stateAt(t, 3, 1, "z")) // cheapest overall: polled before both
	order := []string{"z", "y", "x"}
	for _, want := range order {
		got := q.Poll()
		if got == nil || got.key != want {
			t.Fatalf("poll order wrong: got %v, want %s", got, want)
		}
	}
}

func TestQueuePollTieBreakByKey(t *testing.T) {
	q := newQueue(5)
	q.Add(stateAt(t, 1, 3, "bbb"))
	q.Add(stateAt(t, 1, 3, "aaa"))
	if got := q.Poll(); got.key != "aaa" {
		t.Errorf("tie should break by key, got %q", got.key)
	}
}

func TestQueueLen(t *testing.T) {
	q := newQueue(2)
	if q.Len() != 0 {
		t.Error("new queue not empty")
	}
	q.Add(stateAt(t, 1, 1, "a"))
	q.Add(stateAt(t, 2, 2, "b"))
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
	q.Poll()
	if q.Len() != 1 {
		t.Errorf("Len after poll = %d, want 1", q.Len())
	}
}

// Property: polling drains states in nondecreasing cost order whenever all
// states sit on one level (the bounded queue is a plain priority queue
// within a level).
func TestQuickQueueMonotonePoll(t *testing.T) {
	f := func(costs []uint8) bool {
		q := newQueue(200)
		for i, c := range costs {
			q.Add(stateAt(t, 1, float64(c), "k"+itoa(i)))
		}
		prev := -1.0
		for {
			s := q.Poll()
			if s == nil {
				return true
			}
			if s.cost < prev {
				return false
			}
			prev = s.cost
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateDescribe(t *testing.T) {
	inst := fixture.Instance()
	cm := delta.DefaultCosts
	root := newRoot(context.Background(), inst, cm, 1, nil, nil)
	s := root.extend(fixture.Type, metafunc.Identity{}, cm).
		extend(fixture.Unit, metafunc.Constant{C: "k $"}, cm)
	want := `(∗, ∗, ∗, id, ∗, x ↦ "k $", ∗)`
	if got := s.Describe(); got != want {
		t.Errorf("Describe = %s, want %s", got, want)
	}
	if s.Level() != 2 || s.IsEnd() {
		t.Error("level bookkeeping wrong")
	}
	if len(s.Funcs()) != 7 {
		t.Error("Funcs width wrong")
	}
}

// TestEndStateCostCoherence: refining with the full reference tuple must
// give a state cost equal to the explanation cost (Section 4.5's coherence
// requirement between Definition 4.6 and Definition 3.10).
func TestEndStateCostCoherence(t *testing.T) {
	inst := fixture.Instance()
	cm := delta.DefaultCosts
	s := newRoot(context.Background(), inst, cm, 1, nil, nil)
	for a, f := range fixture.ReferenceFuncs() {
		s = s.extend(a, f, cm)
	}
	if !s.IsEnd() {
		t.Fatal("state should be an end state")
	}
	if s.Cost() != fixture.ReferenceCost {
		t.Errorf("end-state cost = %v, want %d", s.Cost(), fixture.ReferenceCost)
	}
}

// TestStateCostMonotone: deciding an attribute never lowers the cost bound.
func TestStateCostMonotone(t *testing.T) {
	inst := fixture.Instance()
	cm := delta.DefaultCosts
	root := newRoot(context.Background(), inst, cm, 1, nil, nil)
	ref := fixture.ReferenceFuncs()
	s := root
	for a, f := range ref {
		next := s.extend(a, f, cm)
		if next.Cost() < s.Cost() {
			t.Errorf("cost dropped from %v to %v at attribute %d",
				s.Cost(), next.Cost(), a)
		}
		s = next
	}
}
