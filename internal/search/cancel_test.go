package search_test

import (
	"context"
	"testing"
	"time"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/search"
)

// cancelTracer cancels a context after a fixed number of queue polls — the
// deterministic way to interrupt a search mid-run.
type cancelTracer struct {
	cancel context.CancelFunc
	after  int
}

func (c *cancelTracer) Polled(h *search.State, order int) {
	if order == c.after {
		c.cancel()
	}
}
func (c *cancelTracer) Probe(parent *search.State, attr int, hg *search.State, kept []*search.State) {
}
func (c *cancelTracer) Finalized(from, end *search.State) {}

// cancelInstance is a mid-sized problem the cancellation tests share.
func cancelInstance(t *testing.T) *delta.Instance {
	t.Helper()
	ds, err := datasets.Get("ncvoter-1k")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(23)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	return p.Inst
}

// TestCancelledBeforeRun: a context cancelled before Run starts returns the
// trivial explanation immediately, tagged Cancelled, with a nil error.
func TestCancelledBeforeRun(t *testing.T) {
	inst := cancelInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := search.DefaultOptions()
	opts.Seed = 23
	res, err := search.Run(ctx, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set")
	}
	if res.Stats.Polls != 0 {
		t.Errorf("polled %d states after pre-cancelled context", res.Stats.Polls)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	cm := delta.CostModel{Alpha: opts.Alpha}
	if want := cm.Cost(delta.Trivial(inst)); res.Cost != want {
		t.Errorf("cost %v, want trivial %v", res.Cost, want)
	}
}

// TestCancelMidRunPrompt: cancelling after poll k stops the search within
// one further poll iteration — the run never reaches poll k+2 — and still
// returns a valid best-so-far explanation.
func TestCancelMidRunPrompt(t *testing.T) {
	for _, workers := range []int{1, 8} {
		inst := cancelInstance(t)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		const after = 2
		opts := search.DefaultOptions()
		opts.Seed = 23
		opts.Workers = workers
		opts.Tracer = &cancelTracer{cancel: cancel, after: after}
		res, err := search.Run(ctx, inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Cancelled {
			t.Fatalf("workers=%d: Stats.Cancelled not set", workers)
		}
		if res.Stats.Polls > after+1 {
			t.Errorf("workers=%d: %d polls after cancelling at poll %d — not bounded by one poll",
				workers, res.Stats.Polls, after)
		}
		if err := res.Explanation.Validate(); err != nil {
			t.Fatalf("workers=%d: salvaged explanation invalid: %v", workers, err)
		}
		// The salvage path finalises the cheapest polled state, so the
		// function tuple must be complete.
		for a, f := range res.Explanation.Funcs {
			if f == nil {
				t.Fatalf("workers=%d: attribute %d undecided in salvaged tuple", workers, a)
			}
		}
	}
}

// TestCancelSalvagesWork: a run cancelled mid-climb keeps its partial
// assignment — the salvaged explanation is finalised from the cheapest
// polled state and never costs more than the trivial fallback.
func TestCancelSalvagesWork(t *testing.T) {
	inst := cancelInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := search.DefaultOptions()
	opts.Seed = 23
	opts.Tracer = &cancelTracer{cancel: cancel, after: 6}
	res, err := search.Run(ctx, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Cancelled {
		t.Fatal("Stats.Cancelled not set")
	}
	cm := delta.CostModel{Alpha: opts.Alpha}
	if trivial := cm.Cost(delta.Trivial(inst)); res.Cost > trivial {
		t.Errorf("salvaged cost %v worse than trivial %v", res.Cost, trivial)
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExpiredDeadline: an already-expired deadline behaves like a
// pre-cancelled context — prompt return, Cancelled set, nil error.
func TestExpiredDeadline(t *testing.T) {
	inst := cancelInstance(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	opts := search.DefaultOptions()
	opts.Seed = 23
	res, err := search.Run(ctx, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Cancelled {
		t.Error("Stats.Cancelled not set for expired deadline")
	}
}

// TestUncancelledContextByteIdentical asserts the refactor's no-regression
// guarantee across every registry dataset: a run under a live (never
// cancelled) context — plain Background, cancellable, or under a generous
// deadline — is byte-identical to every other, sequential and parallel
// alike, and reports Cancelled=false.
func TestUncancelledContextByteIdentical(t *testing.T) {
	for _, spec := range datasets.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			tab, err := spec.BuildRows(testRows(spec), 7)
			if err != nil {
				t.Fatal(err)
			}
			p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			opts := search.DefaultOptions()
			opts.Seed = 7

			base, err := search.Run(context.Background(), p.Inst, opts)
			if err != nil {
				t.Fatal(err)
			}
			if base.Stats.Cancelled {
				t.Fatal("uncancelled run reported Cancelled")
			}

			cctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			dctx, dcancel := context.WithTimeout(context.Background(), time.Hour)
			defer dcancel()
			par := opts
			par.Workers = 8
			for name, run := range map[string]struct {
				ctx  context.Context
				opts search.Options
			}{
				"cancellable": {cctx, opts},
				"deadline":    {dctx, opts},
				"parallel":    {dctx, par},
			} {
				got, err := search.Run(run.ctx, p.Inst, run.opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				assertSameResult(t, base, got)
			}
		})
	}
}
