package search

import (
	"fmt"
	"strings"
)

// DOT renders the recorded search as a Graphviz digraph in the style of the
// paper's Figure 4: nodes are search states labelled with their assignment
// tuple and cost, poll order appears in square brackets, and edges follow
// the probe/finalize structure. Feed the output to `dot -Tsvg`.
func (t *TreeTracer) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph affidavit_search {\n")
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	ids := make(map[string]int)
	nodeID := func(state string) int {
		if id, ok := ids[state]; ok {
			return id
		}
		id := len(ids)
		ids[state] = id
		return id
	}
	emitted := make(map[string]bool)
	emit := func(state string, cost float64, order int) {
		if emitted[state] {
			return
		}
		emitted[state] = true
		label := dotEscape(state)
		if order > 0 {
			fmt.Fprintf(&sb, "  n%d [label=\"[%d] %s\\nc=%.1f\"];\n",
				nodeID(state), order, label, cost)
		} else {
			fmt.Fprintf(&sb, "  n%d [label=\"%s\\nc=%.1f\"];\n",
				nodeID(state), label, cost)
		}
	}
	for _, ev := range t.Events {
		switch ev.Kind {
		case "poll":
			emit(ev.State, ev.Cost, ev.Order)
		case "probe":
			emit(ev.State, ev.Cost, 0)
			for _, child := range ev.Kept {
				emit(child, 0, 0)
				fmt.Fprintf(&sb, "  n%d -> n%d [label=\"a%d\"];\n",
					nodeID(ev.State), nodeID(child), ev.Attr)
			}
			if ev.MapWon {
				fmt.Fprintf(&sb, "  n%d -> map%d_%d [style=dashed];\n",
					nodeID(ev.State), nodeID(ev.State), ev.Attr)
				fmt.Fprintf(&sb, "  map%d_%d [label=\"⊡ a%d\", shape=diamond];\n",
					nodeID(ev.State), ev.Attr, ev.Attr)
			}
		case "finalize":
			emit(ev.State, ev.Cost, 0)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	if len(s) > 120 {
		s = s[:117] + "…"
	}
	return s
}
