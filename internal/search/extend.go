package search

import (
	"math/rand"

	"affidavit/internal/align"
	"affidavit/internal/delta"
	"affidavit/internal/induce"
)

// extensions implements the Extensions(H) procedure of Algorithm 1:
//
//  1. order undecided attributes by indeterminacy;
//  2. poll the β most determined ones, sample one random alignment R
//     respecting Φ_H, and for each polled attribute compare its induced
//     candidates against the greedy-map probe Hд built from R;
//  3. keep induced extensions cheaper than Hд; an attribute with none is
//     remembered as a ⊡ (map-pending) attribute;
//  4. while nothing was kept, poll the next most determined attribute;
//  5. if every undecided attribute prefers a map, finalise H by assigning
//     greedy value mappings one attribute at a time, re-sampling the
//     alignment after each so later maps respect earlier ones.
func (e *engine) extensions(h *State) []*State {
	ordered := h.undecided()
	if len(ordered) == 0 {
		return nil
	}
	batch := e.opts.Beta
	if batch > len(ordered) {
		batch = len(ordered)
	}
	r := align.Random(h.blocks, e.rng)

	var ext []*State
	next := batch
	queue := append([]int(nil), ordered[:batch]...)
	for len(ext) == 0 && len(queue) > 0 {
		for _, a := range queue {
			ext = append(ext, e.extendAttr(h, a, r)...)
		}
		queue = queue[:0]
		if len(ext) == 0 && next < len(ordered) {
			queue = append(queue, ordered[next])
			next++
		}
	}
	if len(ext) == 0 {
		// Every undecided attribute is ⊡: finalise with greedy maps.
		return []*State{e.finalize(h)}
	}
	return ext
}

// extendAttr compares the β best induced candidates for one attribute
// against the greedy-map probe and returns the extensions that beat it.
func (e *engine) extendAttr(h *State, attr int, r []align.Pair) []*State {
	g := align.GreedyMap(h.inst, r, attr)
	hg := h.extend(attr, g, e.cm)
	cands := induce.Candidates(h.blocks, attr, h.inst.Metas, e.opts.Induce, e.opts.Beta, e.rng)
	var kept []*State
	for _, c := range cands {
		hf := h.extend(attr, c.Func, e.cm)
		if hf.cost < hg.cost {
			kept = append(kept, hf)
		}
		e.stats.StatesGenerated++
	}
	if e.opts.Tracer != nil {
		e.opts.Tracer.Probe(h, attr, hg, kept)
	}
	return kept
}

// finalize resolves all remaining ⊡ attributes of h with greedy value
// mappings, most determined attribute first, re-sampling the random
// alignment after each assignment (Section 4.3).
func (e *engine) finalize(h *State) *State {
	cur := h
	for !cur.IsEnd() {
		attr := cur.undecided()[0]
		r := align.Random(cur.blocks, e.rng)
		g := align.GreedyMap(cur.inst, r, attr)
		cur = cur.extend(attr, g, e.cm)
		e.stats.StatesGenerated++
	}
	if e.opts.Tracer != nil {
		e.opts.Tracer.Finalized(h, cur)
	}
	return cur
}

// engine bundles the per-run mutable pieces so the package-level API stays
// stateless.
type engine struct {
	opts  Options
	cm    delta.CostModel
	rng   *rand.Rand
	stats *Stats
}
