package search

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"affidavit/internal/align"
	"affidavit/internal/delta"
	"affidavit/internal/induce"
	"affidavit/internal/spill"
)

// extensions implements the Extensions(H) procedure of Algorithm 1:
//
//  1. order undecided attributes by indeterminacy;
//  2. poll the β most determined ones, sample one random alignment R
//     respecting Φ_H, and for each polled attribute compare its induced
//     candidates against the greedy-map probe Hд built from R;
//  3. keep induced extensions cheaper than Hд; an attribute with none is
//     remembered as a ⊡ (map-pending) attribute;
//  4. while nothing was kept, poll the next most determined attribute;
//  5. if every undecided attribute prefers a map, finalise H by assigning
//     greedy value mappings one attribute at a time, re-sampling the
//     alignment after each so later maps respect earlier ones.
//
// Probes within one wave are independent: each draws from its own rng
// (derived deterministically from the seed, the poll index and the
// attribute) and is evaluated on the worker pool, then merged in attribute
// order. The sequential and parallel engines therefore walk identical
// search trees for equal seeds.
func (e *engine) extensions(h *State) []*State {
	ordered := h.undecided()
	if len(ordered) == 0 {
		return nil
	}
	batch := e.opts.Beta
	if batch > len(ordered) {
		batch = len(ordered)
	}
	r := e.alignSc.Random(h.blocks, e.rng)

	var ext []*State
	next := batch
	queue := append([]int(nil), ordered[:batch]...)
	for len(ext) == 0 && len(queue) > 0 {
		if e.done() {
			// Cancelled mid-expansion: drop the wave; the poll loop notices
			// on its next iteration and salvages the best polled state.
			return nil
		}
		probes := make([]probeResult, len(queue))
		e.runAll(len(queue), func(i int) {
			probes[i] = e.probe(h, queue[i], r)
		})
		for _, pr := range probes {
			e.stats.StatesGenerated += pr.generated
			if e.opts.Tracer != nil && pr.hg != nil {
				e.opts.Tracer.Probe(h, pr.attr, pr.hg, pr.kept)
			}
			ext = append(ext, pr.kept...)
		}
		queue = queue[:0]
		if len(ext) == 0 && next < len(ordered) {
			queue = append(queue, ordered[next])
			next++
		}
	}
	if e.done() {
		return nil
	}
	if len(ext) == 0 {
		// Every undecided attribute is ⊡: finalise with greedy maps.
		return []*State{e.finalize(h)}
	}
	return ext
}

// probeResult is one attribute probe's outcome, merged deterministically by
// the caller.
type probeResult struct {
	attr      int
	hg        *State   // the greedy-map probe Hд
	kept      []*State // induced extensions cheaper than Hд
	generated int      // candidate states costed
}

// probe compares the β best induced candidates for one attribute against
// the greedy-map probe. It is safe to run concurrently with other probes of
// the same parent state. Each probe — i.e. each worker task — checks the
// run's context on entry and returns an empty result once cancelled; the
// blocking refinements it triggers observe the context as well.
func (e *engine) probe(h *State, attr int, r []align.Pair) probeResult {
	if e.done() {
		return probeResult{attr: attr}
	}
	g := align.GreedyMap(h.inst, r, attr)
	hg := h.extend(attr, g, e.cm)
	icfg := e.opts.Induce
	icfg.Runner = e.runAll
	cands := induce.Candidates(h.blocks, attr, h.inst.Metas, icfg, e.opts.Beta, e.probeRng(attr))
	pr := probeResult{attr: attr, hg: hg, generated: len(cands)}
	// The candidate refinements are independent of each other; evaluate
	// them on the pool too, then keep survivors in rank order.
	children := make([]*State, len(cands))
	e.runAll(len(cands), func(i int) {
		children[i] = h.extend(attr, cands[i].Func, e.cm)
	})
	for _, hf := range children {
		if hf.cost < hg.cost {
			pr.kept = append(pr.kept, hf)
		}
	}
	return pr
}

// probeRng derives the deterministic rng for one probe of the current
// expansion. Keyed by (Seed, poll index, attribute), so probes are
// independent of evaluation order — the root of seq/parallel equivalence.
// The source is a splitmix64 stream: seeding is a single addition, unlike
// the ~2.5 KB state initialisation of the default math/rand source.
func (e *engine) probeRng(attr int) *rand.Rand {
	z := uint64(e.opts.Seed) ^ 0x9e3779b97f4a7c15*uint64(e.stats.Polls+1) ^
		0xbf58476d1ce4e5b9*uint64(attr+1)
	return rand.New(&splitmix{state: z})
}

// splitmix is the splitmix64 generator as a rand.Source64.
type splitmix struct{ state uint64 }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

func (s *splitmix) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

// finalize resolves all remaining ⊡ attributes of h with greedy value
// mappings, most determined attribute first, re-sampling the random
// alignment after each assignment (Section 4.3). It always runs on the
// polling goroutine and draws from the engine's main rng.
func (e *engine) finalize(h *State) *State {
	cur := h
	for !cur.IsEnd() {
		attr := cur.undecided()[0]
		r := e.alignSc.Random(cur.blocks, e.rng)
		g := align.GreedyMap(cur.inst, r, attr)
		cur = cur.extend(attr, g, e.cm)
		e.stats.StatesGenerated++
	}
	if e.opts.Tracer != nil {
		e.opts.Tracer.Finalized(h, cur)
	}
	return cur
}

// engine bundles the per-run mutable pieces so the package-level API stays
// stateless. rng and stats are only ever touched from the polling
// goroutine; probes use derived rngs and report their work via
// probeResult.
type engine struct {
	ctx   context.Context
	opts  Options
	cm    delta.CostModel
	rng   *rand.Rand
	stats *Stats
	sem   chan struct{} // worker-pool slots; nil = sequential engine

	// alignSc is the run's reusable alignment-sampling scratch. Touched only
	// from the polling goroutine (extensions and finalize); each returned
	// alignment is consumed by one probe wave before the next sample.
	alignSc align.Scratch

	// Per-run spill accounting (nil without a budget): refinement grouping
	// and end-state matching report here, and the totals surface as Stats
	// fields and KindSpill events.
	groupSpill   *spill.Stats
	matchSpill   *spill.Stats
	overlapSpill *spill.Stats
}

// done reports whether the run's context was cancelled. Checked once per
// poll, on every probe entry, and by every blocking refinement.
func (e *engine) done() bool { return e.ctx.Err() != nil }

// runAll runs n independent tasks, evaluating up to Workers of them
// concurrently. The calling goroutine participates: when every pool slot is
// busy the whole batch runs inline, which also makes nested runAll calls
// (probe → candidate refinements → induction) deadlock-free. Tasks must
// write their results by index; runAll returns when all tasks finished.
//
// Dispatch is batched: the free pool slots are claimed once per call and
// each claimed helper pulls task indices from a shared atomic counter, so
// the semaphore handoff costs at most Workers−1 channel operations per
// batch instead of one per task.
func (e *engine) runAll(n int, task func(int)) {
	if e.sem == nil || n <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	helpers := 0
claim:
	for helpers < n-1 {
		select {
		case e.sem <- struct{}{}:
			helpers++
		default:
			break claim
		}
	}
	if helpers == 0 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(helpers)
	for h := 0; h < helpers; h++ {
		go func() {
			defer func() {
				<-e.sem
				wg.Done()
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		task(i)
	}
	wg.Wait()
}
