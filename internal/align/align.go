// Package align provides the record-alignment primitives the search builds
// on: random alignments that respect a blocking result, greedy value
// mappings induced from an alignment (the Hд probe of Algorithm 1 and the
// ⊡-resolution step of Finalize), and the overlap-score a-priori matcher
// that determines the Hs start state (Section 4.2).
package align

import (
	"encoding/binary"
	"math/rand"
	"sort"

	"affidavit/internal/blocking"
	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/spill"
)

// Pair aligns source record S with target record T.
type Pair struct {
	S, T int32
}

// Random samples a random alignment of all records that respects Φ_H: in
// each block, min(|ϕS|, |ϕT|) pairs are drawn uniformly without
// replacement.
func Random(r *blocking.Result, rng *rand.Rand) []Pair {
	var sc Scratch
	return sc.Random(r, rng)
}

// Scratch holds the shuffle buffers and pair list one caller reuses across
// Random samples. A Scratch belongs to a single goroutine; the returned
// alignment aliases it and is valid until the next Random call on it.
type Scratch struct {
	pairs    []Pair
	src, tgt []int32
}

// Random is the buffer-reusing form of the package-level Random; it draws
// from rng in exactly the same sequence.
func (sc *Scratch) Random(r *blocking.Result, rng *rand.Rand) []Pair {
	pairs := sc.pairs[:0]
	for _, b := range r.MixedBlocks() {
		n := len(b.Src)
		if len(b.Tgt) < n {
			n = len(b.Tgt)
		}
		src := append(sc.src[:0], b.Src...)
		tgt := append(sc.tgt[:0], b.Tgt...)
		rng.Shuffle(len(src), func(i, j int) { src[i], src[j] = src[j], src[i] })
		rng.Shuffle(len(tgt), func(i, j int) { tgt[i], tgt[j] = tgt[j], tgt[i] })
		for i := 0; i < n; i++ {
			pairs = append(pairs, Pair{S: src[i], T: tgt[i]})
		}
		sc.src, sc.tgt = src, tgt // keep grown capacity for the next block
	}
	sc.pairs = pairs
	return pairs
}

// GreedyMap builds a value mapping for attribute attr from an alignment:
// each source value maps to the target value it co-occurs with most often.
// Ties break deterministically towards the lexicographically smaller target
// value so that equal seeds give equal searches.
//
// Co-occurrences are counted on interned value codes; tie-breaking compares
// the underlying strings (code order is not deterministic).
func GreedyMap(inst *delta.Instance, pairs []Pair, attr int) *metafunc.Mapping {
	coded := inst.Coded()
	srcCodes, tgtCodes := coded.Src[attr], coded.Tgt[attr]
	dict := coded.Dicts[attr]
	counts := make(map[int64]int)
	for _, p := range pairs {
		counts[int64(srcCodes[p.S])<<32|int64(tgtCodes[p.T])]++
	}
	bestT := make(map[int32]int32)
	bestN := make(map[int32]int)
	//affidavit:ordered argmax with a total tie-break (count, then lexicographic target value); result is independent of visit order
	for k, n := range counts {
		sv, tv := int32(k>>32), int32(k&0xffffffff)
		cur, seen := bestN[sv]
		if !seen || n > cur || (n == cur && dict.Value(tv) < dict.Value(bestT[sv])) {
			bestN[sv] = n
			bestT[sv] = tv
		}
	}
	entries := make(map[string]string, len(bestT))
	//affidavit:ordered writes map entries keyed by dict.Value(sv), which is injective over codes; no order-dependent state
	for sv, tv := range bestT {
		entries[dict.Value(sv)] = dict.Value(tv)
	}
	return metafunc.NewMapping(entries)
}

// Overlap holds the a-priori matching of Section 4.2: for every source
// record the target record with the highest attribute-overlap score.
type Overlap struct {
	// BestPairs[i] pairs source i with its best target; sources that share
	// no (sufficiently rare) value with any target are absent.
	BestPairs []Pair
	// Scores[i] is the overlap score of BestPairs[i].
	Scores []int
}

// ComputeOverlap scores record pairs by counting attributes on which they
// agree, considering only pairs that share at least one value whose
// source-group × target-group product does not exceed maxPairs (the paper's
// configurable block-size threshold; Section 4.2 uses 100000).
func ComputeOverlap(inst *delta.Instance, maxPairs int) *Overlap {
	return ComputeOverlapSpill(inst, maxPairs, nil, nil)
}

// overlapEntryBytes approximates one score-table entry: an int64 key, an
// int32 count and the map bucket overhead around them.
const overlapEntryBytes = 24

// ComputeOverlapSpill is ComputeOverlap under a memory budget: when the
// estimated score table blows the manager's group share, candidate pair
// keys are partitioned to disk by source record (grace-hash, like the
// external grouping mode) and each partition is counted and arg-maxed
// separately — per-source results are independent across partitions, so
// the overlap is byte-identical to the in-memory path. Disk trouble
// falls back to the in-memory computation: the budget is advisory, the
// result is not.
func ComputeOverlapSpill(inst *delta.Instance, maxPairs int, m *spill.Manager, st *spill.Stats) *Overlap {
	if m.Active() {
		if est := overlapEstimate(inst, maxPairs); m.ShouldSpillGroup(est) {
			if ov := computeOverlapExternal(inst, maxPairs, est, m, st); ov != nil {
				return ov
			}
		}
	}
	nT := inst.Target.Len()
	coded := inst.Coded()
	scores := make(map[int64]int32)
	for a := 0; a < inst.NumAttrs(); a++ {
		srcByVal, tgtByVal := overlapGroups(coded, a)
		for v, ss := range srcByVal {
			ts := tgtByVal[v]
			if len(ss) == 0 || len(ts) == 0 {
				continue
			}
			if len(ss)*len(ts) > maxPairs {
				continue // too frequent a value: skip this overlap
			}
			for _, s := range ss {
				base := int64(s) * int64(nT)
				for _, t := range ts {
					scores[base+int64(t)]++
				}
			}
		}
	}
	acc := newOverlapAccum(nT)
	acc.fold(scores)
	return acc.finish()
}

// overlapGroups groups both snapshots' records for attribute a by
// interned code: raw snapshot codes are dense in [0, Base[a]), so plain
// slices replace the string-keyed maps.
func overlapGroups(coded *delta.Coded, a int) (srcByVal, tgtByVal [][]int32) {
	srcByVal = make([][]int32, coded.Base[a])
	for s, c := range coded.Src[a] {
		srcByVal[c] = append(srcByVal[c], int32(s))
	}
	tgtByVal = make([][]int32, coded.Base[a])
	for t, c := range coded.Tgt[a] {
		tgtByVal[c] = append(tgtByVal[c], int32(t))
	}
	return srcByVal, tgtByVal
}

// overlapEstimate upper-bounds the in-memory score table: the sum of
// per-value group products that survive the maxPairs cut, costed per
// entry. Counting group sizes is cheap — no pair is enumerated.
func overlapEstimate(inst *delta.Instance, maxPairs int) int64 {
	coded := inst.Coded()
	var total int64
	for a := 0; a < inst.NumAttrs(); a++ {
		srcN := make([]int32, coded.Base[a])
		for _, c := range coded.Src[a] {
			srcN[c]++
		}
		tgtN := make([]int32, coded.Base[a])
		for _, c := range coded.Tgt[a] {
			tgtN[c]++
		}
		for v := range srcN {
			p := int64(srcN[v]) * int64(tgtN[v])
			if p > 0 && p <= int64(maxPairs) {
				total += p
			}
		}
	}
	return total * overlapEntryBytes
}

// computeOverlapExternal runs the score count out of core: pair keys are
// written to grace-hash partitions keyed by source record, then each
// partition is replayed into a small map and folded into the global
// argmax. Returns nil on any pager error (caller falls back in-memory).
func computeOverlapExternal(inst *delta.Instance, maxPairs int, est int64, m *spill.Manager, st *spill.Stats) *Overlap {
	nT := inst.Target.Len()
	coded := inst.Coded()
	parts := m.GroupPartitions(est)
	pg, err := m.NewPager(parts, 8, st)
	if err != nil {
		return nil
	}
	defer pg.Close()
	var rec [8]byte
	for a := 0; a < inst.NumAttrs(); a++ {
		srcByVal, tgtByVal := overlapGroups(coded, a)
		for v, ss := range srcByVal {
			ts := tgtByVal[v]
			if len(ss) == 0 || len(ts) == 0 {
				continue
			}
			if len(ss)*len(ts) > maxPairs {
				continue
			}
			for _, s := range ss {
				base := int64(s) * int64(nT)
				part := int(uint32(s) % uint32(parts))
				for _, t := range ts {
					binary.LittleEndian.PutUint64(rec[:], uint64(base+int64(t)))
					if pg.Write(part, rec[:]) != nil {
						return nil
					}
				}
			}
		}
	}
	if pg.Flush() != nil {
		return nil
	}
	acc := newOverlapAccum(nT)
	scores := make(map[int64]int32)
	for part := 0; part < parts; part++ {
		clear(scores)
		err := pg.ReadPart(part, func(b []byte) error {
			scores[int64(binary.LittleEndian.Uint64(b))]++
			return nil
		})
		if err != nil {
			return nil
		}
		// Every key for one source record hashes to the same partition, so
		// folding partitions one at a time reaches the same argmax as one
		// big table.
		acc.fold(scores)
	}
	return acc.finish()
}

// overlapAccum folds score tables into the per-source argmax and
// assembles the final Overlap. Both the in-memory and external paths end
// here, which is what keeps them byte-identical.
type overlapAccum struct {
	nT        int
	best      map[int32]Pair
	bestScore map[int32]int32
}

func newOverlapAccum(nT int) *overlapAccum {
	return &overlapAccum{
		nT:        nT,
		best:      make(map[int32]Pair),
		bestScore: make(map[int32]int32),
	}
}

// fold merges one score table into the running argmax.
func (acc *overlapAccum) fold(scores map[int64]int32) {
	//affidavit:ordered argmax with a total tie-break (score, then smaller target index); result is independent of visit order
	for key, sc := range scores {
		s := int32(key / int64(acc.nT))
		t := int32(key % int64(acc.nT))
		cur, seen := acc.bestScore[s]
		// Deterministic tie-break towards the smaller target index.
		if !seen || sc > cur || (sc == cur && t < acc.best[s].T) {
			acc.bestScore[s] = sc
			acc.best[s] = Pair{S: s, T: t}
		}
	}
}

// finish sorts the argmax by source record into the Overlap.
func (acc *overlapAccum) finish() *Overlap {
	ov := &Overlap{}
	srcs := make([]int32, 0, len(acc.best))
	for s := range acc.best {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, s := range srcs {
		ov.BestPairs = append(ov.BestPairs, acc.best[s])
		ov.Scores = append(ov.Scores, int(acc.bestScore[s]))
	}
	return ov
}

// StartAttrs selects A^id for the Hs start state: k′ is the modal overlap
// score among the best pairs, and the k′ attributes whose values overlap
// most frequently on those pairs are assumed unchanged. Returns nil when no
// pairs scored (the caller then falls back to the all-undecided state).
func (ov *Overlap) StartAttrs(inst *delta.Instance) []int {
	if len(ov.BestPairs) == 0 {
		return nil
	}
	freq := make(map[int]int)
	for _, sc := range ov.Scores {
		freq[sc]++
	}
	kPrime, bestN := 0, -1
	//affidavit:ordered argmax with a total tie-break (frequency, then larger score); result is independent of visit order
	for sc, n := range freq {
		if n > bestN || (n == bestN && sc > kPrime) {
			kPrime, bestN = sc, n
		}
	}
	if kPrime > inst.NumAttrs() {
		kPrime = inst.NumAttrs()
	}
	if kPrime == 0 {
		return nil
	}
	coded := inst.Coded()
	overlapCount := make([]int, inst.NumAttrs())
	for _, p := range ov.BestPairs {
		for a := 0; a < inst.NumAttrs(); a++ {
			if coded.Src[a][p.S] == coded.Tgt[a][p.T] {
				overlapCount[a]++
			}
		}
	}
	order := make([]int, inst.NumAttrs())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return overlapCount[order[i]] > overlapCount[order[j]]
	})
	attrs := append([]int(nil), order[:kPrime]...)
	sort.Ints(attrs)
	return attrs
}
