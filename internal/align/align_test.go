package align_test

import (
	"math/rand"
	"reflect"
	"testing"

	"affidavit/internal/align"
	"affidavit/internal/blocking"
	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/metafunc"
	"affidavit/internal/spill"
	"affidavit/internal/table"
)

func TestRandomRespectsBlocking(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst).Refine(fixture.Org, metafunc.Identity{})
	rng := rand.New(rand.NewSource(1))
	pairs := align.Random(r, rng)
	// Every pair's source and target must share the Org value.
	for _, p := range pairs {
		so := inst.Source.Value(int(p.S), fixture.Org)
		to := inst.Target.Value(int(p.T), fixture.Org)
		if so != to {
			t.Errorf("pair (%d,%d) crosses blocks: %q vs %q", p.S, p.T, so, to)
		}
	}
	// Pair count = Σ min(|S_b|, |T_b|) over mixed blocks.
	want := 0
	for _, b := range r.MixedBlocks() {
		n := len(b.Src)
		if len(b.Tgt) < n {
			n = len(b.Tgt)
		}
		want += n
	}
	if len(pairs) != want {
		t.Errorf("pairs = %d, want %d", len(pairs), want)
	}
	// No record reused.
	seenS, seenT := map[int32]bool{}, map[int32]bool{}
	for _, p := range pairs {
		if seenS[p.S] || seenT[p.T] {
			t.Fatalf("record reused in alignment: %+v", p)
		}
		seenS[p.S] = true
		seenT[p.T] = true
	}
}

func TestRandomIsSeedDeterministic(t *testing.T) {
	inst := fixture.Instance()
	r := blocking.New(inst)
	a := align.Random(r, rand.New(rand.NewSource(7)))
	b := align.Random(r, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different alignments")
		}
	}
}

func TestGreedyMapMajorityVote(t *testing.T) {
	s := table.MustSchema("v")
	src := table.MustFromRows(s, []table.Record{{"a"}, {"a"}, {"a"}, {"b"}})
	tgt := table.MustFromRows(s, []table.Record{{"x"}, {"x"}, {"y"}, {"z"}})
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []align.Pair{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	m := align.GreedyMap(inst, pairs, 0)
	// "a" co-occurs with x twice and y once → x wins; "b" with z once.
	if got := m.Apply("a"); got != "x" {
		t.Errorf(`greedy map "a" → %q, want "x"`, got)
	}
	if got := m.Apply("b"); got != "z" {
		t.Errorf(`greedy map "b" → %q, want "z"`, got)
	}
	if m.Len() != 2 || m.Params() != 4 {
		t.Errorf("map shape wrong: len=%d ψ=%d", m.Len(), m.Params())
	}
}

func TestGreedyMapTieBreakDeterministic(t *testing.T) {
	s := table.MustSchema("v")
	src := table.MustFromRows(s, []table.Record{{"a"}, {"a"}})
	tgt := table.MustFromRows(s, []table.Record{{"q"}, {"p"}})
	inst, _ := delta.NewInstance(src, tgt, nil)
	pairs := []align.Pair{{0, 0}, {1, 1}}
	m := align.GreedyMap(inst, pairs, 0)
	if got := m.Apply("a"); got != "p" {
		t.Errorf("tie should break to lexicographically smaller value, got %q", got)
	}
}

func TestComputeOverlapFindsStableColumns(t *testing.T) {
	// On I1, Type and Org are unchanged; overlap matching should pair most
	// sources with a target agreeing on those attributes.
	inst := fixture.Instance()
	ov := align.ComputeOverlap(inst, 100000)
	if len(ov.BestPairs) == 0 {
		t.Fatal("no overlap pairs found")
	}
	attrs := ov.StartAttrs(inst)
	if len(attrs) == 0 {
		t.Fatal("no start attributes")
	}
	has := map[int]bool{}
	for _, a := range attrs {
		has[a] = true
	}
	// Date also survives on most pairs (only 3 of 13 changed), so it may be
	// included; the unchanged Type and Org must be.
	if !has[fixture.Type] || !has[fixture.Org] {
		t.Errorf("StartAttrs = %v, want to include Type(%d) and Org(%d)",
			attrs, fixture.Type, fixture.Org)
	}
	// Never the transformed Unit column (no value survives).
	if has[fixture.Unit] {
		t.Errorf("StartAttrs includes fully transformed Unit: %v", attrs)
	}
}

func TestComputeOverlapThreshold(t *testing.T) {
	// With maxPairs = 0 every shared value is "too frequent": no pairs.
	inst := fixture.Instance()
	ov := align.ComputeOverlap(inst, 0)
	if len(ov.BestPairs) != 0 {
		t.Errorf("threshold 0 still produced %d pairs", len(ov.BestPairs))
	}
	if got := ov.StartAttrs(inst); got != nil {
		t.Errorf("StartAttrs on empty overlap = %v, want nil", got)
	}
}

func TestOverlapIgnoresOverFrequentValues(t *testing.T) {
	// One column shares a single constant value: with a small threshold the
	// quadratic blow-up is skipped and no pairs emerge from that column.
	s := table.MustSchema("const", "key")
	var srcRows, tgtRows []table.Record
	for i := 0; i < 50; i++ {
		srcRows = append(srcRows, table.Record{"same", string(rune('a' + i%26))})
		tgtRows = append(tgtRows, table.Record{"same", string(rune('a' + i%26))})
	}
	src := table.MustFromRows(s, srcRows)
	tgt := table.MustFromRows(s, tgtRows)
	inst, _ := delta.NewInstance(src, tgt, nil)
	ov := align.ComputeOverlap(inst, 10)
	// The "const" column (50×50 pairs) is skipped; "key" column groups are
	// small (≤2×2 per letter... actually ~2 sources × 2 targets), so pairs
	// exist but each scores only on "key".
	for i, p := range ov.BestPairs {
		if ov.Scores[i] >= 2 {
			t.Errorf("pair %v scored %d; const column should not contribute",
				p, ov.Scores[i])
		}
	}
}

func TestComputeOverlapSpillEquivalence(t *testing.T) {
	// A one-byte budget forces the external path for any non-trivial
	// estimate; the partitioned argmax must reproduce the in-memory result
	// byte for byte.
	big := func() *delta.Instance {
		s := table.MustSchema("city", "key", "grp")
		var srcRows, tgtRows []table.Record
		for i := 0; i < 120; i++ {
			city := string(rune('A' + i%7))
			key := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			grp := string(rune('0' + i%5))
			srcRows = append(srcRows, table.Record{city, key, grp})
			tgtRows = append(tgtRows, table.Record{city, key, grp})
		}
		src := table.MustFromRows(s, srcRows)
		tgt := table.MustFromRows(s, tgtRows)
		inst, err := delta.NewInstance(src, tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	for _, tc := range []struct {
		name string
		inst *delta.Instance
	}{
		{"figure1", fixture.Instance()},
		{"generated", big()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := align.ComputeOverlap(tc.inst, 100000)
			m := spill.NewManager(1, t.TempDir())
			st := &spill.Stats{}
			got := align.ComputeOverlapSpill(tc.inst, 100000, m, st)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("spilled overlap diverged:\n got %+v\nwant %+v", got, want)
			}
			if st.Bytes() == 0 {
				t.Errorf("expected spill bytes under a 1-byte budget")
			}
		})
	}
}

func TestComputeOverlapSpillNilManagerMatches(t *testing.T) {
	inst := fixture.Instance()
	want := align.ComputeOverlap(inst, 100000)
	if got := align.ComputeOverlapSpill(inst, 100000, nil, nil); !reflect.DeepEqual(got, want) {
		t.Errorf("nil-manager overlap diverged:\n got %+v\nwant %+v", got, want)
	}
}
