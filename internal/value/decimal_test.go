package value

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	valid := []string{
		"0", "1", "-1", "+1", "12345", "-12345",
		"0.5", ".5", "-.5", "3.", "-3.", "0.065", "99991231",
		"6540", "6.54", "0.000001", "-0.000001", "0000", "007",
	}
	for _, s := range valid {
		if _, ok := Parse(s); !ok {
			t.Errorf("Parse(%q) = not ok, want ok", s)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	invalid := []string{
		"", "+", "-", ".", "+.", "-.", "1.2.3", "1e5", "0x10",
		"12a", "a12", " 1", "1 ", "1,000", "NaN", "Inf", "--1", "+-1",
	}
	for _, s := range invalid {
		if _, ok := Parse(s); ok {
			t.Errorf("Parse(%q) = ok, want not ok", s)
		}
	}
}

func TestFormatCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"0", "0"},
		{"0000", "0"},
		{"007", "7"},
		{"-0", "0"},
		{"1.500", "1.5"},
		{"0.50", "0.5"},
		{".5", "0.5"},
		{"3.", "3"},
		{"-3.25", "-3.25"},
		{"80000", "80000"},
		{"0.065", "0.065"},
		{"6.54", "6.54"},
		{"99991231", "99991231"},
	}
	for _, c := range cases {
		d, ok := Parse(c.in)
		if !ok {
			t.Fatalf("Parse(%q) failed", c.in)
		}
		got, ok := d.Format()
		if !ok || got != c.want {
			t.Errorf("Format(Parse(%q)) = %q,%v; want %q", c.in, got, ok, c.want)
		}
	}
}

func TestRunningExampleDivision(t *testing.T) {
	// Figure 1: f_Val : x -> x / 1000.
	thousand := FromInt(1000)
	cases := []struct{ in, want string }{
		{"80000", "80"},
		{"180000", "180"},
		{"220000", "220"},
		{"3780000", "3780"},
		{"425000", "425"},
		{"21000", "21"},
		{"422400", "422.4"},
		{"6540", "6.54"},
		{"9800", "9.8"},
		{"0", "0"},
		{"65", "0.065"},
	}
	for _, c := range cases {
		d, ok := Parse(c.in)
		if !ok {
			t.Fatalf("Parse(%q) failed", c.in)
		}
		q, ok := d.Div(thousand)
		if !ok {
			t.Fatalf("Div(%q, 1000) not ok", c.in)
		}
		got, ok := q.Format()
		if !ok || got != c.want {
			t.Errorf("%s/1000 = %q,%v; want %q", c.in, got, ok, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	p := func(s string) Decimal {
		d, ok := Parse(s)
		if !ok {
			t.Fatalf("Parse(%q) failed", s)
		}
		return d
	}
	if got, _ := p("6540").Add(p("-6530.2")).Format(); got != "9.8" {
		t.Errorf("6540 + (-6530.2) = %q, want 9.8", got)
	}
	if got, _ := p("0").Add(p("9.8")).Format(); got != "9.8" {
		t.Errorf("0 + 9.8 = %q, want 9.8", got)
	}
	if got, _ := p("1.5").Mul(p("4")).Format(); got != "6" {
		t.Errorf("1.5 * 4 = %q, want 6", got)
	}
	if got, _ := p("10").Sub(p("0.1")).Format(); got != "9.9" {
		t.Errorf("10 - 0.1 = %q, want 9.9", got)
	}
	if _, ok := p("1").Div(p("0")); ok {
		t.Error("1/0 should not be ok")
	}
}

func TestNonTerminatingExpansion(t *testing.T) {
	one := FromInt(1)
	three := FromInt(3)
	q, ok := one.Div(three)
	if !ok {
		t.Fatal("1/3 Div failed")
	}
	if _, ok := q.Format(); ok {
		t.Error("Format(1/3) should report non-terminating")
	}
	if !strings.HasSuffix(q.String(), "…") {
		t.Errorf("String(1/3) = %q, want diagnostic ellipsis suffix", q.String())
	}
}

func TestIsCanonical(t *testing.T) {
	canon := []string{"0", "7", "-3.25", "0.5", "99991231", "6.54"}
	for _, s := range canon {
		if !IsCanonical(s) {
			t.Errorf("IsCanonical(%q) = false, want true", s)
		}
	}
	notCanon := []string{"0000", "007", "1.50", ".5", "3.", "+1", "-0", "abc", ""}
	for _, s := range notCanon {
		if IsCanonical(s) {
			t.Errorf("IsCanonical(%q) = true, want false", s)
		}
	}
}

func TestPredicates(t *testing.T) {
	zero, _ := Parse("0.000")
	if !zero.IsZero() {
		t.Error("0.000 should be zero")
	}
	one, _ := Parse("1.0")
	if !one.IsOne() {
		t.Error("1.0 should be one")
	}
	if zero.IsOne() || one.IsZero() {
		t.Error("predicate cross-talk")
	}
	if one.Cmp(zero) != 1 || zero.Cmp(one) != -1 || one.Cmp(one) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if !one.Equal(one) || one.Equal(zero) {
		t.Error("Equal wrong")
	}
}

// Property: Format ∘ Parse is idempotent — re-parsing a canonical form and
// formatting again yields the same string.
func TestQuickFormatIdempotent(t *testing.T) {
	f := func(n int64, frac uint8) bool {
		d := FromInt(n)
		den := FromInt(int64(1))
		for i := 0; i < int(frac%6); i++ {
			den = den.Mul(FromInt(10))
		}
		q, ok := d.Div(den)
		if !ok {
			return true
		}
		s1, ok := q.Format()
		if !ok {
			return false
		}
		d2, ok := Parse(s1)
		if !ok {
			return false
		}
		s2, ok := d2.Format()
		return ok && s1 == s2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Parse agrees with big.Rat on plain integer strings.
func TestQuickParseMatchesBigRat(t *testing.T) {
	f := func(n int64) bool {
		d := FromInt(n)
		s, ok := d.Format()
		if !ok {
			return false
		}
		var r big.Rat
		if _, ok := r.SetString(s); !ok {
			return false
		}
		return r.Cmp(big.NewRat(0, 1).SetInt64(n)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add and Sub are inverses.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := FromInt(int64(a)), FromInt(int64(b))
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul and Div are inverses for non-zero divisors.
func TestQuickMulDivInverse(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		x, y := FromInt(int64(a)), FromInt(int64(b))
		q, ok := x.Mul(y).Div(y)
		return ok && q.Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseFormat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, _ := Parse("422400")
		q, _ := d.Div(FromInt(1000))
		q.Format()
	}
}
