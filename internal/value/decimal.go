// Package value provides exact decimal arithmetic on attribute values.
//
// Attribute values in a problem instance are strings. The numeric meta
// functions (addition, division, multiplication) must reproduce the string
// formatting conventions of the paper's running example exactly:
// 6540 / 1000 must print as "6.54", 80000 / 1000 as "80", 0 / 1000 as "0".
// Floating point cannot guarantee this, so all numeric work is exact
// rational arithmetic. The representation is a reduced int64 fraction with
// overflow-checked operations — snapshot values are short decimal strings,
// so virtually every parse, comparison, and arithmetic step stays on the
// allocation-free fast path — and any operation that would overflow int64
// promotes the value to a math/big.Rat fallback with identical semantics.
package value

import (
	"math/big"
	"math/bits"
	"strings"
)

// maxFracDigits bounds the decimal expansion produced by Format. A rational
// whose reduced denominator contains prime factors other than 2 and 5 has a
// non-terminating decimal expansion; such values are reported as not
// representable rather than silently rounded, because a rounded value could
// never equal an observed attribute value anyway.
const maxFracDigits = 24

// Decimal is an immutable exact decimal number: num/den with den > 0 and
// gcd(|num|, den) == 1, unless rat is non-nil, in which case the value lives
// in the big.Rat fallback (magnitudes beyond int64) and num/den are unused.
type Decimal struct {
	num int64
	den int64 // > 0 on the fast path; 0 only for the zero value (== 0/1)
	rat *big.Rat
}

// norm returns the fast-path fraction with den fixed up for the zero value.
func (d Decimal) frac() (int64, int64) {
	if d.den == 0 {
		return d.num, 1
	}
	return d.num, d.den
}

// bigRat returns the value as a big.Rat (allocating; fallback paths only).
func (d Decimal) bigRat() *big.Rat {
	if d.rat != nil {
		return d.rat
	}
	n, de := d.frac()
	return big.NewRat(n, de)
}

// fromRat normalises a big.Rat result, demoting back to the fast path when
// it fits int64.
func fromRat(r *big.Rat) Decimal {
	if r.Num().IsInt64() && r.Denom().IsInt64() {
		return Decimal{num: r.Num().Int64(), den: r.Denom().Int64()}
	}
	return Decimal{rat: r}
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// reduce builds a fast-path decimal from a (possibly unreduced) fraction.
func reduce(num, den int64) Decimal {
	if den < 0 {
		num, den = -num, -den
	}
	if num == 0 {
		return Decimal{num: 0, den: 1}
	}
	if g := gcd64(num, den); g > 1 {
		num /= g
		den /= g
	}
	return Decimal{num: num, den: den}
}

// mulOvf multiplies with overflow detection.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	hi, lo := bits.Mul64(uint64(abs64(a)), uint64(abs64(b)))
	if hi != 0 || lo > 1<<63-1 {
		return 0, false
	}
	p := int64(lo)
	if (a < 0) != (b < 0) {
		p = -p
	}
	return p, true
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func addOvf(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

var pow10 = [...]int64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18}

// Parse interprets s as a decimal number. It accepts an optional leading
// sign, digits, and at most one decimal point ("-12", "0.065", "+3.",
// ".5"). It rejects empty strings, lone signs/points, exponents, and any
// other character. The boolean reports success.
func Parse(s string) (Decimal, bool) {
	if len(s) == 0 {
		return Decimal{}, false
	}
	i := 0
	neg := false
	if s[i] == '+' || s[i] == '-' {
		neg = s[i] == '-'
		i++
	}
	// Fast path: accumulate up to 18 significant digits into an int64.
	var mant int64
	digits, frac, points := 0, 0, 0
	fits := true
	for ; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			digits++
			if mant > (1<<63-1-9)/10 {
				fits = false
			} else {
				mant = mant*10 + int64(s[i]-'0')
			}
			if points > 0 {
				frac++
			}
		case s[i] == '.':
			points++
			if points > 1 {
				return Decimal{}, false
			}
		default:
			return Decimal{}, false
		}
	}
	if digits == 0 {
		return Decimal{}, false
	}
	if fits && frac < len(pow10) {
		if neg {
			mant = -mant
		}
		return reduce(mant, pow10[frac]), true
	}
	var r big.Rat
	if _, ok := r.SetString(normalizeForSetString(s)); !ok {
		return Decimal{}, false
	}
	return fromRat(&r), true
}

// normalizeForSetString massages forms big.Rat.SetString rejects
// ("3." and ".5") into acceptable ones.
func normalizeForSetString(s string) string {
	if strings.HasSuffix(s, ".") {
		return s + "0"
	}
	core := strings.TrimLeft(s, "+-")
	if strings.HasPrefix(core, ".") {
		return s[:len(s)-len(core)] + "0" + core
	}
	return s
}

// IsNumeric reports whether s parses as a decimal number.
func IsNumeric(s string) bool {
	_, ok := Parse(s)
	return ok
}

// FromInt returns the decimal for an integer.
func FromInt(n int64) Decimal {
	return Decimal{num: n, den: 1}
}

// AppendFormat appends d's canonical form to b and returns the extended
// buffer; ok is false (and b is returned unchanged) if the decimal expansion
// does not terminate within maxFracDigits. It is Format without the string
// allocation — hot paths hand in a reusable or stack buffer.
func (d Decimal) AppendFormat(b []byte) ([]byte, bool) {
	if d.rat != nil {
		s, ok := d.formatBig()
		if !ok {
			return b, false
		}
		return append(b, s...), true
	}
	num, den := d.frac()
	if num == 0 {
		return append(b, '0'), true
	}
	neg := num < 0
	if neg {
		num = -num
	}
	// den = 2^a * 5^b iff the expansion terminates (the fraction is
	// reduced); scale num so den becomes 10^max(a,b).
	a, c := 0, 0
	work := den
	for work&1 == 0 {
		work >>= 1
		a++
	}
	for work%5 == 0 {
		work /= 5
		c++
	}
	if work != 1 {
		return b, false // non-terminating decimal expansion
	}
	frac := a
	if c > frac {
		frac = c
	}
	if frac > maxFracDigits {
		return b, false
	}
	// num/den == (num * (10^frac / den)) / 10^frac; den divides 10^frac.
	// frac ≤ 18 here: den ≤ 2^63 bounds a ≤ 62 but work==1 forces
	// den = 2^a·5^c ≤ int64 range, and 10^frac/den fits whenever frac ≤ 18;
	// larger scaled values overflow to the big path.
	var scaled int64
	if frac < len(pow10) {
		m := pow10[frac] / den
		var ok bool
		if scaled, ok = mulOvf(num, m); !ok {
			return d.bigAppendFormat(b)
		}
	} else {
		return d.bigAppendFormat(b)
	}
	var digits [20]byte
	n := len(digits)
	for scaled > 0 {
		n--
		digits[n] = byte('0' + scaled%10)
		scaled /= 10
	}
	ds := digits[n:]
	if neg {
		b = append(b, '-')
	}
	if frac == 0 {
		return append(b, ds...), true
	}
	intLen := len(ds) - frac
	if intLen <= 0 {
		b = append(b, '0', '.')
		for i := 0; i < -intLen; i++ {
			b = append(b, '0')
		}
	} else {
		b = append(b, ds[:intLen]...)
		b = append(b, '.')
		ds = ds[intLen:]
	}
	end := len(ds)
	for end > 0 && ds[end-1] == '0' {
		end--
	}
	if end == 0 {
		// All-fractional zeros cannot happen: the fraction is reduced, so
		// frac is minimal and the last digit is nonzero. Drop the point.
		return b[:len(b)-1], true
	}
	return append(b, ds[:end]...), true
}

// bigAppendFormat formats through the big.Rat slow path (rare: values whose
// scaled integer form exceeds int64).
func (d Decimal) bigAppendFormat(b []byte) ([]byte, bool) {
	s, ok := Decimal{rat: d.bigRat()}.formatBig()
	if !ok {
		return b, false
	}
	return append(b, s...), true
}

// Format renders d in canonical form: minus sign for negatives, no leading
// zeros (except a single "0" before the point), no trailing fractional
// zeros, no decimal point unless needed, and "0" for zero. The boolean is
// false if the decimal expansion does not terminate within maxFracDigits.
func (d Decimal) Format() (string, bool) {
	if d.rat != nil {
		return d.formatBig()
	}
	var buf [32]byte
	b, ok := d.AppendFormat(buf[:0])
	if !ok {
		return "", false
	}
	return string(b), true
}

// formatBig is the original big.Int formatter, kept for the fallback
// representation.
func (d Decimal) formatBig() (string, bool) {
	r := d.bigRat()
	num := new(big.Int).Set(r.Num())
	den := new(big.Int).Set(r.Denom())
	neg := num.Sign() < 0
	if neg {
		num.Neg(num)
	}
	if num.Sign() == 0 {
		return "0", true
	}
	a, b := 0, 0
	two, five, ten := big.NewInt(2), big.NewInt(5), big.NewInt(10)
	rem := new(big.Int)
	work := new(big.Int).Set(den)
	for {
		q, r := new(big.Int).QuoRem(work, two, rem)
		if r.Sign() != 0 {
			break
		}
		work = q
		a++
	}
	for {
		q, r := new(big.Int).QuoRem(work, five, rem)
		if r.Sign() != 0 {
			break
		}
		work = q
		b++
	}
	if work.Cmp(big.NewInt(1)) != 0 {
		return "", false // non-terminating decimal expansion
	}
	frac := a
	if b > a {
		frac = b
	}
	if frac > maxFracDigits {
		return "", false
	}
	scale := new(big.Int).Exp(ten, big.NewInt(int64(frac)), nil)
	scaled := new(big.Int).Mul(num, scale)
	scaled.Quo(scaled, den)
	digits := scaled.String()
	var sb strings.Builder
	if neg {
		sb.WriteByte('-')
	}
	if frac == 0 {
		sb.WriteString(digits)
		return sb.String(), true
	}
	if len(digits) <= frac {
		digits = strings.Repeat("0", frac-len(digits)+1) + digits
	}
	intPart := digits[:len(digits)-frac]
	fracPart := strings.TrimRight(digits[len(digits)-frac:], "0")
	sb.WriteString(intPart)
	if fracPart != "" {
		sb.WriteByte('.')
		sb.WriteString(fracPart)
	}
	return sb.String(), true
}

// Add returns d + o.
func (d Decimal) Add(o Decimal) Decimal {
	if d.rat == nil && o.rat == nil {
		dn, dd := d.frac()
		on, od := o.frac()
		if a, ok := mulOvf(dn, od); ok {
			if b, ok := mulOvf(on, dd); ok {
				if s, ok := addOvf(a, b); ok {
					if de, ok := mulOvf(dd, od); ok {
						return reduce(s, de)
					}
				}
			}
		}
	}
	return fromRat(new(big.Rat).Add(d.bigRat(), o.bigRat()))
}

// Sub returns d − o.
func (d Decimal) Sub(o Decimal) Decimal {
	return d.Add(o.Neg())
}

// Neg returns −d.
func (d Decimal) Neg() Decimal {
	if d.rat == nil {
		n, de := d.frac()
		return Decimal{num: -n, den: de}
	}
	return fromRat(new(big.Rat).Neg(d.rat))
}

// Mul returns d · o.
func (d Decimal) Mul(o Decimal) Decimal {
	if d.rat == nil && o.rat == nil {
		dn, dd := d.frac()
		on, od := o.frac()
		// Cross-reduce first so products stay small.
		if g := gcd64(dn, od); g > 1 {
			dn /= g
			od /= g
		}
		if g := gcd64(on, dd); g > 1 {
			on /= g
			dd /= g
		}
		if n, ok := mulOvf(dn, on); ok {
			if de, ok := mulOvf(dd, od); ok {
				return reduce(n, de)
			}
		}
	}
	return fromRat(new(big.Rat).Mul(d.bigRat(), o.bigRat()))
}

// Div returns d / o. The boolean is false when o is zero.
func (d Decimal) Div(o Decimal) (Decimal, bool) {
	if o.IsZero() {
		return Decimal{}, false
	}
	if d.rat == nil && o.rat == nil {
		on, od := o.frac()
		return d.Mul(Decimal{num: od, den: on}.normSign()), true
	}
	return fromRat(new(big.Rat).Quo(d.bigRat(), o.bigRat())), true
}

// normSign moves a negative denominator's sign to the numerator.
func (d Decimal) normSign() Decimal {
	if d.den < 0 {
		return Decimal{num: -d.num, den: -d.den}
	}
	return d
}

// IsZero reports whether d is zero.
func (d Decimal) IsZero() bool {
	if d.rat != nil {
		return d.rat.Sign() == 0
	}
	return d.num == 0
}

// IsOne reports whether d is one.
func (d Decimal) IsOne() bool {
	if d.rat != nil {
		return d.rat.Cmp(ratOne) == 0
	}
	n, de := d.frac()
	return n == 1 && de == 1
}

var ratOne = big.NewRat(1, 1)

// Cmp compares d and o, returning -1, 0, or +1.
func (d Decimal) Cmp(o Decimal) int {
	if d.rat == nil && o.rat == nil {
		dn, dd := d.frac()
		on, od := o.frac()
		if a, ok := mulOvf(dn, od); ok {
			if b, ok := mulOvf(on, dd); ok {
				switch {
				case a < b:
					return -1
				case a > b:
					return 1
				}
				return 0
			}
		}
	}
	return d.bigRat().Cmp(o.bigRat())
}

// Equal reports whether d and o denote the same number.
func (d Decimal) Equal(o Decimal) bool { return d.Cmp(o) == 0 }

// String implements fmt.Stringer using the canonical format; values with
// non-terminating expansions render with a trailing "…" marker (they can
// never equal an attribute value, so this form is for diagnostics only).
func (d Decimal) String() string {
	if s, ok := d.Format(); ok {
		return s
	}
	f, _ := d.bigRat().Float64()
	return big.NewRat(0, 1).SetFloat64(f).FloatString(6) + "…"
}

// RatString returns the exact num/den form, used to build collision-free
// markers for values whose decimal expansion does not terminate.
func (d Decimal) RatString() string { return d.bigRat().RatString() }

// Canonical parses s and re-formats it canonically. The boolean is false
// when s is not numeric or has a non-terminating expansion (impossible for
// parsed decimals, but kept for symmetry).
func Canonical(s string) (string, bool) {
	d, ok := Parse(s)
	if !ok {
		return "", false
	}
	return d.Format()
}

// IsCanonical reports whether s is numeric and already in canonical form —
// equivalently, whether Canonical(s) == s. The check is purely syntactic
// (no parse, no allocation): canonical form is an optional minus sign, an
// integer part without leading zeros (a single "0" is allowed), and an
// optional fractional part that is non-empty and has no trailing zeros;
// "-0" and bare "+"-signed forms are never canonical. Numeric meta
// functions only announce their effect on canonical inputs; zero-padded
// identifiers like "0042" stay out of numeric territory.
func IsCanonical(s string) bool {
	i := 0
	neg := false
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	// Integer part: "0" or [1-9][0-9]*.
	start := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	intLen := i - start
	if intLen == 0 {
		return false
	}
	if intLen > 1 && s[start] == '0' {
		return false
	}
	if i == len(s) {
		// Pure integer; reject "-0".
		return !(neg && intLen == 1 && s[start] == '0')
	}
	if s[i] != '.' {
		return false
	}
	i++
	fracStart := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i != len(s) || i == fracStart {
		return false // trailing junk or empty fraction
	}
	if s[len(s)-1] == '0' {
		return false // trailing fractional zero
	}
	// A nonzero fractional digit exists (last digit ≠ '0'), so a leading
	// minus is never a "-0" form here.
	return true
}
