// Package value provides exact decimal arithmetic on attribute values.
//
// Attribute values in a problem instance are strings. The numeric meta
// functions (addition, division, multiplication) must reproduce the string
// formatting conventions of the paper's running example exactly:
// 6540 / 1000 must print as "6.54", 80000 / 1000 as "80", 0 / 1000 as "0".
// Floating point cannot guarantee this, so all numeric work is done on
// big.Rat values with a canonical decimal formatter.
package value

import (
	"math/big"
	"strings"
)

// maxFracDigits bounds the decimal expansion produced by Format. A rational
// whose reduced denominator contains prime factors other than 2 and 5 has a
// non-terminating decimal expansion; such values are reported as not
// representable rather than silently rounded, because a rounded value could
// never equal an observed attribute value anyway.
const maxFracDigits = 24

// Decimal is an immutable exact decimal number.
type Decimal struct {
	rat big.Rat
}

// Parse interprets s as a decimal number. It accepts an optional leading
// sign, digits, and at most one decimal point ("-12", "0.065", "+3.",
// ".5"). It rejects empty strings, lone signs/points, exponents, and any
// other character. The boolean reports success.
func Parse(s string) (Decimal, bool) {
	if len(s) == 0 {
		return Decimal{}, false
	}
	i := 0
	if s[i] == '+' || s[i] == '-' {
		i++
	}
	digits, points := 0, 0
	for ; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			digits++
		case s[i] == '.':
			points++
			if points > 1 {
				return Decimal{}, false
			}
		default:
			return Decimal{}, false
		}
	}
	if digits == 0 {
		return Decimal{}, false
	}
	var r big.Rat
	if _, ok := r.SetString(normalizeForSetString(s)); !ok {
		return Decimal{}, false
	}
	return Decimal{rat: r}, true
}

// normalizeForSetString massages forms big.Rat.SetString rejects
// ("3." and ".5") into acceptable ones.
func normalizeForSetString(s string) string {
	if strings.HasSuffix(s, ".") {
		return s + "0"
	}
	core := strings.TrimLeft(s, "+-")
	if strings.HasPrefix(core, ".") {
		return s[:len(s)-len(core)] + "0" + core
	}
	return s
}

// IsNumeric reports whether s parses as a decimal number.
func IsNumeric(s string) bool {
	_, ok := Parse(s)
	return ok
}

// FromInt returns the decimal for an integer.
func FromInt(n int64) Decimal {
	var d Decimal
	d.rat.SetInt64(n)
	return d
}

// Format renders d in canonical form: minus sign for negatives, no leading
// zeros (except a single "0" before the point), no trailing fractional
// zeros, no decimal point unless needed, and "0" for zero. The boolean is
// false if the decimal expansion does not terminate within maxFracDigits.
func (d Decimal) Format() (string, bool) {
	num := new(big.Int).Set(d.rat.Num())
	den := new(big.Int).Set(d.rat.Denom())
	neg := num.Sign() < 0
	if neg {
		num.Neg(num)
	}
	if num.Sign() == 0 {
		return "0", true
	}
	// Scale the denominator to a power of ten by factoring out 2s and 5s.
	// After reduction by big.Rat, den = 2^a * 5^b iff the expansion
	// terminates; we multiply num so that den becomes 10^max(a,b).
	a, b := 0, 0
	two, five, ten := big.NewInt(2), big.NewInt(5), big.NewInt(10)
	rem := new(big.Int)
	work := new(big.Int).Set(den)
	for {
		q, r := new(big.Int).QuoRem(work, two, rem)
		if r.Sign() != 0 {
			break
		}
		work = q
		a++
	}
	for {
		q, r := new(big.Int).QuoRem(work, five, rem)
		if r.Sign() != 0 {
			break
		}
		work = q
		b++
	}
	if work.Cmp(big.NewInt(1)) != 0 {
		return "", false // non-terminating decimal expansion
	}
	frac := a
	if b > a {
		frac = b
	}
	if frac > maxFracDigits {
		return "", false
	}
	// num/den == num * 10^frac / den / 10^frac; den divides 10^frac.
	scale := new(big.Int).Exp(ten, big.NewInt(int64(frac)), nil)
	scaled := new(big.Int).Mul(num, scale)
	scaled.Quo(scaled, den)
	digits := scaled.String()
	var sb strings.Builder
	if neg {
		sb.WriteByte('-')
	}
	if frac == 0 {
		sb.WriteString(digits)
		return sb.String(), true
	}
	if len(digits) <= frac {
		digits = strings.Repeat("0", frac-len(digits)+1) + digits
	}
	intPart := digits[:len(digits)-frac]
	fracPart := strings.TrimRight(digits[len(digits)-frac:], "0")
	sb.WriteString(intPart)
	if fracPart != "" {
		sb.WriteByte('.')
		sb.WriteString(fracPart)
	}
	return sb.String(), true
}

// Add returns d + o.
func (d Decimal) Add(o Decimal) Decimal {
	var r Decimal
	r.rat.Add(&d.rat, &o.rat)
	return r
}

// Sub returns d − o.
func (d Decimal) Sub(o Decimal) Decimal {
	var r Decimal
	r.rat.Sub(&d.rat, &o.rat)
	return r
}

// Mul returns d · o.
func (d Decimal) Mul(o Decimal) Decimal {
	var r Decimal
	r.rat.Mul(&d.rat, &o.rat)
	return r
}

// Div returns d / o. The boolean is false when o is zero.
func (d Decimal) Div(o Decimal) (Decimal, bool) {
	if o.rat.Sign() == 0 {
		return Decimal{}, false
	}
	var r Decimal
	r.rat.Quo(&d.rat, &o.rat)
	return r, true
}

// IsZero reports whether d is zero.
func (d Decimal) IsZero() bool { return d.rat.Sign() == 0 }

// IsOne reports whether d is one.
func (d Decimal) IsOne() bool { return d.rat.Cmp(big.NewRat(1, 1)) == 0 }

// Cmp compares d and o, returning -1, 0, or +1.
func (d Decimal) Cmp(o Decimal) int { return d.rat.Cmp(&o.rat) }

// Equal reports whether d and o denote the same number.
func (d Decimal) Equal(o Decimal) bool { return d.Cmp(o) == 0 }

// String implements fmt.Stringer using the canonical format; values with
// non-terminating expansions render with a trailing "…" marker (they can
// never equal an attribute value, so this form is for diagnostics only).
func (d Decimal) String() string {
	if s, ok := d.Format(); ok {
		return s
	}
	f, _ := d.rat.Float64()
	return big.NewRat(0, 1).SetFloat64(f).FloatString(6) + "…"
}

// RatString returns the exact num/den form, used to build collision-free
// markers for values whose decimal expansion does not terminate.
func (d Decimal) RatString() string { return d.rat.RatString() }

// Canonical parses s and re-formats it canonically. The boolean is false
// when s is not numeric or has a non-terminating expansion (impossible for
// parsed decimals, but kept for symmetry).
func Canonical(s string) (string, bool) {
	d, ok := Parse(s)
	if !ok {
		return "", false
	}
	return d.Format()
}

// IsCanonical reports whether s is numeric and already in canonical form.
// Numeric meta functions only announce their effect on canonical inputs;
// zero-padded identifiers like "0042" stay out of numeric territory.
func IsCanonical(s string) bool {
	c, ok := Canonical(s)
	return ok && c == s
}
