package value

import (
	"math/big"
	"testing"
	"testing/quick"
)

// refDecimal runs the same operation through pure big.Rat arithmetic — the
// pre-fast-path reference semantics every int64 shortcut must reproduce.
func refRat(s string) (*big.Rat, bool) {
	var r big.Rat
	_, ok := r.SetString(normalizeForSetString(s))
	return &r, ok
}

// corpus mixes the shapes the datasets and metafuncs produce: small ints,
// decimals, negatives, zero forms, and magnitudes around the int64 overflow
// boundary that force the big fallback.
var corpus = []string{
	"0", "-0", "1", "-1", "7", "42", "007", "0000", "6540", "9.8", "6.54",
	"80000", "422.4", "0.065", "-6530.2", "99991231", "0.5", ".5", "3.",
	"+3.", "-.5", "1.500", "123456789.123456789", "-123456789.123456789",
	"9223372036854775807", "9223372036854775808", "-9223372036854775809",
	"92233720368547758079223372036854775807", "0.000000000000000000000001",
	"18446744073709551616", "1000000", "0.001", "-0.001", "2.5", "0.1",
}

// TestFastPathMatchesBigRat pins every binary operation's fast path to the
// big.Rat reference over the full corpus cross product.
func TestFastPathMatchesBigRat(t *testing.T) {
	for _, as := range corpus {
		for _, bs := range corpus {
			da, okA := Parse(as)
			db, okB := Parse(bs)
			ra, rokA := refRat(as)
			rb, rokB := refRat(bs)
			if okA != rokA || okB != rokB {
				t.Fatalf("Parse(%q)=%v, ref=%v; Parse(%q)=%v, ref=%v", as, okA, rokA, bs, okB, rokB)
			}
			if !okA || !okB {
				continue
			}
			check := func(op string, got Decimal, want *big.Rat) {
				if got.bigRat().Cmp(want) != 0 {
					t.Errorf("%q %s %q = %s, want %s", as, op, bs, got.RatString(), want.RatString())
				}
			}
			check("+", da.Add(db), new(big.Rat).Add(ra, rb))
			check("-", da.Sub(db), new(big.Rat).Sub(ra, rb))
			check("*", da.Mul(db), new(big.Rat).Mul(ra, rb))
			if q, ok := da.Div(db); ok != (rb.Sign() != 0) {
				t.Errorf("Div(%q, %q) ok=%v, want %v", as, bs, ok, rb.Sign() != 0)
			} else if ok {
				check("/", q, new(big.Rat).Quo(ra, rb))
			}
			if got, want := da.Cmp(db), ra.Cmp(rb); got != want {
				t.Errorf("Cmp(%q, %q) = %d, want %d", as, bs, got, want)
			}
		}
	}
}

// TestFormatMatchesBigFormatter pins the int64 formatter to the big.Int
// formatter for every corpus value.
func TestFormatMatchesBigFormatter(t *testing.T) {
	for _, s := range corpus {
		d, ok := Parse(s)
		if !ok {
			continue
		}
		got, gok := d.Format()
		want, wok := Decimal{rat: d.bigRat()}.formatBig()
		if gok != wok || got != want {
			t.Errorf("Format(%q) = %q,%v; big formatter = %q,%v", s, got, gok, want, wok)
		}
	}
}

// TestIsCanonicalMatchesReference pins the syntactic check to its semantic
// definition Canonical(s) == s.
func TestIsCanonicalMatchesReference(t *testing.T) {
	extra := []string{"", ".", "-", "+", "1.", "1.0", "0.10", "01", "-01",
		"10", "-10", "0.01", "1e5", "1.2.3", "--1", " 1", "0.", "-0.5", "-0.50"}
	for _, s := range append(append([]string(nil), corpus...), extra...) {
		want := false
		if c, ok := Canonical(s); ok && c == s {
			want = true
		}
		if got := IsCanonical(s); got != want {
			t.Errorf("IsCanonical(%q) = %v, want %v", s, got, want)
		}
	}
}

// TestQuickCanonicalAgreement fuzzes random fractions through Format and
// checks IsCanonical holds on every canonical rendering.
func TestQuickCanonicalAgreement(t *testing.T) {
	f := func(n int64, fracPow uint8) bool {
		den := int64(1)
		for i := 0; i < int(fracPow%7); i++ {
			den *= 10
		}
		q, ok := FromInt(n).Div(FromInt(den))
		if !ok {
			return false
		}
		s, ok := q.Format()
		if !ok {
			return false
		}
		return IsCanonical(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFastPathAllocationFree pins the point of the int64 representation:
// parse, arithmetic, canonicality checks and buffer-reusing formatting of
// ordinary snapshot values allocate nothing.
func TestFastPathAllocationFree(t *testing.T) {
	buf := make([]byte, 0, 32)
	thousand := FromInt(1000)
	allocs := testing.AllocsPerRun(100, func() {
		d, _ := Parse("422400")
		q, _ := d.Div(thousand)
		buf, _ = q.AppendFormat(buf[:0])
		_ = IsCanonical("422.4")
		_ = d.Cmp(q)
		_ = d.Sub(q)
	})
	if allocs != 0 {
		t.Errorf("fast path allocates %v objects per op, want 0", allocs)
	}
}
