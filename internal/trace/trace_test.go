package trace

import (
	"encoding/json"
	"testing"
	"time"

	"affidavit/internal/obs"
)

// fakeClock advances a fixed step per reading, so span math is exact.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// fullRun replays a representative event stream: two-snapshot ingest, a
// warm search with a few polls, conversion, spill, done.
func fullRun(r *Recorder) {
	r.Observe(obs.Event{Kind: obs.KindIngest, Snapshot: "source", Records: 8192})
	r.Observe(obs.Event{Kind: obs.KindIngest, Snapshot: "source", Records: 10000, Complete: true})
	r.Observe(obs.Event{Kind: obs.KindIngest, Snapshot: "target", Records: 9000, Complete: true})
	r.Observe(obs.Event{Kind: obs.KindSearchStart, Mode: "warm", Start: "Hid", StartLevel: 3})
	r.Observe(obs.Event{Kind: obs.KindPoll, Poll: 1, Level: 3, Cost: 90})
	r.Observe(obs.Event{Kind: obs.KindPoll, Poll: 2, Level: 4, Cost: 70})
	r.Observe(obs.Event{Kind: obs.KindPoll, Poll: 3, Level: 5, Cost: 75})
	r.Observe(obs.Event{Kind: obs.KindPoll, Poll: 4, Level: 6, Cost: 60, End: true})
	r.Observe(obs.Event{Kind: obs.KindConvert})
	r.Observe(obs.Event{Kind: obs.KindSpill, Component: "convert", SpillBytes: 2048, SpillParts: 4})
	r.Observe(obs.Event{Kind: obs.KindDone, Polls: 4, States: 40, Cost: 60})
}

func TestRecorderFullRun(t *testing.T) {
	r := NewRecorder("t1")
	r.SetLabel("accounts")
	clock := &fakeClock{t: time.Unix(1000, 0), step: 10 * time.Millisecond}
	r.setClock(clock.now)
	fullRun(r)
	tr := r.Trace()

	if !tr.Complete {
		t.Fatal("trace not complete after done event")
	}
	if tr.ID != "t1" || tr.Label != "accounts" {
		t.Errorf("id/label = %q/%q", tr.ID, tr.Label)
	}
	if tr.Mode != "warm" || tr.Start != "Hid" || tr.StartLevel != 3 {
		t.Errorf("start decision = %q/%q/%d", tr.Mode, tr.Start, tr.StartLevel)
	}
	if tr.Cost != 60 || tr.States != 40 {
		t.Errorf("cost/states = %g/%d", tr.Cost, tr.States)
	}

	// Spans: ingest:source, ingest:target, search, convert — in order.
	var stages []string
	for _, sp := range tr.Spans {
		stages = append(stages, sp.Stage)
	}
	want := []string{"ingest:source", "ingest:target", "search", "convert"}
	if len(stages) != len(want) {
		t.Fatalf("spans = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("spans = %v, want %v", stages, want)
		}
	}
	if sp := tr.SpanFor("ingest:source"); sp.Records != 10000 {
		t.Errorf("source ingest records = %d", sp.Records)
	}
	// Each event advances the fake clock 10ms. The source ingest span
	// covers its two events (20ms measured from the first event's stamp:
	// 10ms). Every span must be non-negative and the total must cover the
	// stream.
	for _, sp := range tr.Spans {
		if sp.DurationMS < 0 || sp.StartMS < 0 {
			t.Errorf("span %+v has negative timing", sp)
		}
	}
	if tr.DurationMS != 100 { // 11 events, first stamps t0, last is t0+100ms
		t.Errorf("duration = %gms, want 100ms", tr.DurationMS)
	}
	if tr.IngestDurationMS() != 20 { // source 10 (first event stamps t0), target 10
		t.Errorf("ingest duration = %gms, want 20ms", tr.IngestDurationMS())
	}

	// Poll summary.
	p := tr.Polls
	if p.Polls != 4 || p.EndStates != 1 {
		t.Errorf("polls/ends = %d/%d", p.Polls, p.EndStates)
	}
	if p.FirstCost != 90 || p.MinCost != 60 || p.LastCost != 60 {
		t.Errorf("first/min/last = %g/%g/%g", p.FirstCost, p.MinCost, p.LastCost)
	}
	if len(p.Curve) != 4 || p.CurveStride != 1 {
		t.Errorf("curve = %+v stride %d", p.Curve, p.CurveStride)
	}

	// Spill totals.
	if tr.Spill.Bytes != 2048 || tr.Spill.Partitions != 4 {
		t.Errorf("spill = %+v", tr.Spill)
	}
	if len(tr.Spill.Components) != 1 || tr.Spill.Components[0].Component != "convert" {
		t.Errorf("spill components = %+v", tr.Spill.Components)
	}
}

// TestRecorderCurveCap: a long poll trajectory is thinned under the cap
// with first, cheapest and last polls retained.
func TestRecorderCurveCap(t *testing.T) {
	r := NewRecorder("t2")
	r.SetCurveCap(8)
	r.Observe(obs.Event{Kind: obs.KindSearchStart, Mode: "cold", Start: "Hid"})
	const n = 1000
	minPoll := 637 // arbitrary off-stride minimum
	for i := 1; i <= n; i++ {
		cost := 1000 - float64(i)
		if i == minPoll {
			cost = 1 // global minimum
		} else if i > minPoll {
			cost = 1000 - float64(i) + 500 // keep later polls above the min
		}
		r.Observe(obs.Event{Kind: obs.KindPoll, Poll: i, Level: i, Cost: cost})
	}
	r.Observe(obs.Event{Kind: obs.KindDone, Polls: n, States: n})
	tr := r.Trace()
	p := tr.Polls

	if len(p.Curve) > 8+2 {
		t.Errorf("curve has %d points, cap 8 (+min/last)", len(p.Curve))
	}
	if p.MinCost != 1 || p.FirstCost != 999 {
		t.Errorf("min/first = %g/%g", p.MinCost, p.FirstCost)
	}
	// First, min and last polls present; curve sorted by poll.
	seen := map[int]bool{}
	lastPoll := 0
	for _, c := range p.Curve {
		if c.Poll <= lastPoll {
			t.Fatalf("curve not sorted: %+v", p.Curve)
		}
		lastPoll = c.Poll
		seen[c.Poll] = true
	}
	for _, want := range []int{1, minPoll, n} {
		if !seen[want] {
			t.Errorf("curve dropped poll %d: %+v", want, p.Curve)
		}
	}
}

// TestRecorderPartial: reading a trace mid-run yields a coherent,
// incomplete snapshot that later events do not mutate.
func TestRecorderPartial(t *testing.T) {
	r := NewRecorder("t3")
	r.Observe(obs.Event{Kind: obs.KindIngest, Snapshot: "source", Records: 5, Complete: true})
	r.Observe(obs.Event{Kind: obs.KindSearchStart, Mode: "cold", Start: "Hid"})
	r.Observe(obs.Event{Kind: obs.KindPoll, Poll: 1, Level: 1, Cost: 10})
	partial := r.Trace()
	if partial.Complete {
		t.Error("partial trace marked complete")
	}
	if len(partial.Spans) != 1 || partial.Spans[0].Stage != "ingest:source" {
		t.Errorf("partial spans = %+v", partial.Spans)
	}
	r.Observe(obs.Event{Kind: obs.KindConvert})
	r.Observe(obs.Event{Kind: obs.KindDone, Polls: 1, States: 3, Cost: 10})
	if partial.Complete || len(partial.Spans) != 1 {
		t.Error("snapshot mutated by later events")
	}
	full := r.Trace()
	if !full.Complete || len(full.Spans) != 3 {
		t.Errorf("final trace = %+v", full)
	}
}

// TestRecorderDegenerateRuns: streams that skip stages (cancelled before
// any search work, no conversion) still produce sane traces.
func TestRecorderDegenerateRuns(t *testing.T) {
	r := NewRecorder("t4")
	r.Observe(obs.Event{Kind: obs.KindSearchStart, Mode: "cancelled", Start: "Hid"})
	r.Observe(obs.Event{Kind: obs.KindDone, Cancelled: true})
	tr := r.Trace()
	if !tr.Complete || !tr.Cancelled {
		t.Errorf("trace = %+v", tr)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Stage != "search" {
		t.Errorf("spans = %+v, want lone search span", tr.Spans)
	}
	if len(tr.Polls.Curve) != 0 {
		t.Errorf("curve for poll-less run: %+v", tr.Polls.Curve)
	}
}

// TestCollector: a sequential multi-run stream yields one complete trace
// per run with fresh IDs.
func TestCollector(t *testing.T) {
	var got []*RunTrace
	c := NewCollector(func(tr *RunTrace) { got = append(got, tr) })
	c.SetLabel("sweep")
	for i := 0; i < 3; i++ {
		c.Observe(obs.Event{Kind: obs.KindSearchStart, Mode: "cold", Start: "Hid"})
		c.Observe(obs.Event{Kind: obs.KindPoll, Poll: 1, Level: 1, Cost: 5})
		c.Observe(obs.Event{Kind: obs.KindConvert})
		c.Observe(obs.Event{Kind: obs.KindDone, Polls: 1, States: 2, Cost: 5})
	}
	if len(got) != 3 {
		t.Fatalf("collected %d traces, want 3", len(got))
	}
	ids := map[string]bool{}
	for _, tr := range got {
		if !tr.Complete || tr.Label != "sweep" || tr.Polls.Polls != 1 {
			t.Errorf("trace = %+v", tr)
		}
		ids[tr.ID] = true
	}
	if len(ids) != 3 {
		t.Errorf("trace IDs not unique: %v", ids)
	}
}

// TestNewID: ids are non-empty and unique across a small draw.
func TestNewID(t *testing.T) {
	ids := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if id == "" || ids[id] {
			t.Fatalf("bad id %q (dup=%v)", id, ids[id])
		}
		ids[id] = true
	}
}

// TestTraceJSONShape: the wire encoding keeps its documented field names.
func TestTraceJSONShape(t *testing.T) {
	r := NewRecorder("t5")
	fullRun(r)
	b, err := json.Marshal(r.Trace())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"id", "started_at", "duration_ms", "mode", "start", "complete", "spans", "polls", "spill"} {
		if _, ok := m[key]; !ok {
			t.Errorf("encoding missing %q: %s", key, b)
		}
	}
}
