// Package trace folds one explanation run's Observer event stream into a
// structured RunTrace: per-stage wall-time spans (ingest source/target,
// search, finalize, convert), a poll-trajectory summary with a bounded
// cost-curve sample, the warm/cold/escalated start decision, and spill
// totals. It is the per-run answer to "why was this upload slow" that the
// process-wide /metrics counters cannot give.
//
// Determinism contract: the Recorder is a pure consumer. It never feeds
// anything back into the pipeline, so enabling tracing leaves the event
// stream — and every coded output derived from it — byte-identical.
// Wall-clock timestamps are captured out-of-band inside the recorder when
// each event arrives (the events themselves carry no time, exactly like
// search.Stats.Duration lives outside the deterministic JSON stats), which
// is why this package may read the clock at all; the nondet analyzer
// justification on the clock site records that bargain.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"affidavit/internal/obs"
)

// DefaultCurveCap bounds the poll cost-curve sample a Recorder keeps. When
// a run polls more states than the cap, the curve is thinned to every 2nd,
// 4th, … point; the first, last and cheapest polls are always retained.
const DefaultCurveCap = 64

// Span is one pipeline stage's wall-time extent, relative to the trace
// start. Stage timings are as observed at the recorder: a stage's span
// runs from the end of the previous stage's final event to the stage's own
// final event, so chunk-granular stages (ingest) are accurate to one event
// interval.
type Span struct {
	// Stage names the pipeline stage: "ingest:source", "ingest:target",
	// "search", "finalize", "convert".
	Stage string `json:"stage"`
	// StartMS is the span's offset from the trace start, in milliseconds.
	StartMS float64 `json:"start_ms"`
	// DurationMS is the span's wall-time extent, in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Records is the ingested record count (ingest spans only).
	Records int `json:"records,omitempty"`
}

// CurvePoint is one retained sample of the poll cost trajectory.
type CurvePoint struct {
	Poll  int     `json:"poll"`
	Level int     `json:"level"`
	Cost  float64 `json:"cost"`
	End   bool    `json:"end,omitempty"`
}

// PollSummary aggregates the run's queue-poll trajectory — the anytime
// search's cost curve, bounded to a fixed sample size.
type PollSummary struct {
	// Polls is the number of states extracted from the queue.
	Polls int `json:"polls"`
	// EndStates counts polled end states.
	EndStates int `json:"end_states"`
	// FirstCost/LastCost/MinCost summarise the trajectory even when the
	// curve sample dropped the corresponding points.
	FirstCost float64 `json:"first_cost"`
	LastCost  float64 `json:"last_cost"`
	MinCost   float64 `json:"min_cost"`
	// Curve is the retained cost-curve sample: at most the recorder's cap,
	// thinned by stride doubling, with the first, last and cheapest polls
	// always present. Sorted by poll index.
	Curve []CurvePoint `json:"curve,omitempty"`
	// CurveStride is the thinning stride of the final curve (1 = every
	// poll retained).
	CurveStride int `json:"curve_stride,omitempty"`
}

// ComponentSpill is one stage's out-of-core volume.
type ComponentSpill struct {
	// Component names the spilling stage: "ingest" (with Snapshot set),
	// "overlap", "blocking", "convert".
	Component string `json:"component"`
	// Snapshot is the ingest role for ingest spill ("source"/"target").
	Snapshot   string `json:"snapshot,omitempty"`
	Bytes      int64  `json:"bytes"`
	Partitions int64  `json:"partitions"`
}

// SpillSummary totals the run's out-of-core activity under a memory
// budget; zero without one.
type SpillSummary struct {
	Bytes      int64 `json:"bytes"`
	Partitions int64 `json:"partitions"`
	// Components lists per-stage volumes in event order (which is
	// deterministic for a fixed seed: ingest source, ingest target,
	// overlap, blocking, convert).
	Components []ComponentSpill `json:"components,omitempty"`
}

// RunTrace is one explanation run's structured trace.
type RunTrace struct {
	// ID identifies the trace (NewID, or a caller-chosen string).
	ID string `json:"id"`
	// Label is a caller-chosen tag: affidavitd stores the table name, the
	// CLIs the snapshot file pair.
	Label string `json:"label,omitempty"`
	// JobID joins the trace to the async job that ran it, when affidavitd
	// executed the run through its job queue.
	JobID string `json:"job_id,omitempty"`
	// SnapshotID/ParentID carry catalog lineage when the run was a
	// snapshot-catalog chain step: the pushed snapshot being explained and
	// its chain parent.
	SnapshotID string `json:"snapshot_id,omitempty"`
	ParentID   string `json:"parent_id,omitempty"`
	// StartedAt is the wall-clock time of the first observed event.
	StartedAt time.Time `json:"started_at"`
	// DurationMS is the wall time from the first event to the done event.
	DurationMS float64 `json:"duration_ms"`
	// Mode is the start decision: "cold", "warm", "escalated" or
	// "cancelled" (context already done before any search work).
	Mode string `json:"mode,omitempty"`
	// Start names the start strategy (Hid, Hs, H∅).
	Start string `json:"start,omitempty"`
	// StartLevel is the deepest seeded start state's assignment count.
	StartLevel int `json:"start_level"`
	// Cancelled reports the run's context was cancelled mid-search.
	Cancelled bool `json:"cancelled,omitempty"`
	// Finalized reports the cancelled run salvaged its best-so-far state.
	Finalized bool `json:"finalized,omitempty"`
	// Complete reports the done event was observed — partial traces (run
	// still in flight, or stream cut) stay marked incomplete.
	Complete bool `json:"complete"`
	// Cost is the final explanation cost; States the candidate states
	// costed (both from the done event).
	Cost   float64 `json:"cost"`
	States int     `json:"states"`
	// Spans are the stage spans in pipeline order.
	Spans []Span `json:"spans"`
	// Polls summarises the poll trajectory.
	Polls PollSummary `json:"polls"`
	// Spill totals the out-of-core activity (zero without a budget).
	Spill SpillSummary `json:"spill"`
}

// SpanFor returns the named stage's span, or nil.
func (t *RunTrace) SpanFor(stage string) *Span {
	for i := range t.Spans {
		if t.Spans[i].Stage == stage {
			return &t.Spans[i]
		}
	}
	return nil
}

// IngestDurationMS is the total wall time of the trace's ingest spans.
func (t *RunTrace) IngestDurationMS() float64 {
	var ms float64
	for _, sp := range t.Spans {
		if sp.Stage == "ingest:source" || sp.Stage == "ingest:target" {
			ms += sp.DurationMS
		}
	}
	return ms
}

// seq disambiguates NewID values if the random source ever fails.
var seq atomic.Uint64

// NewID returns a fresh 16-hex-char trace id. IDs are random, not
// derived from run inputs: traces are operational metadata, outside the
// determinism contract.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("seq-%012x", seq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// Recorder folds one run's event stream into a RunTrace. It implements the
// affidavit Observer shape (Observe(obs.Event)) and is attached per run —
// one recorder must not watch two interleaved runs (their spans would
// cross); concurrent runs each get their own. Observe and Trace may be
// called from different goroutines; a mutex keeps partial reads coherent.
//
// The zero Recorder is not usable; construct with NewRecorder.
type Recorder struct {
	mu sync.Mutex
	t  RunTrace

	clock     func() time.Time
	curveCap  int
	started   bool
	start     time.Time // first event's wall time
	stageAt   time.Time // current stage's start
	openStage string    // stage started but not yet closed ("search", …)
	// curve thinning state: points at stride intervals, plus the min and
	// latest points merged in on read.
	stride int
	minPt  CurvePoint
	lastPt CurvePoint
}

// NewRecorder returns a recorder for one run, tracing under the given id
// (usually NewID()).
func NewRecorder(id string) *Recorder {
	return &Recorder{
		t:        RunTrace{ID: id},
		curveCap: DefaultCurveCap,
		stride:   1,
	}
}

// SetLabel tags the trace (table name, file pair). Safe before or during
// the run.
func (r *Recorder) SetLabel(label string) {
	r.mu.Lock()
	r.t.Label = label
	r.mu.Unlock()
}

// SetJobID joins the trace to a job id. Safe before or during the run.
func (r *Recorder) SetJobID(id string) {
	r.mu.Lock()
	r.t.JobID = id
	r.mu.Unlock()
}

// SetLineage joins the trace to its catalog lineage (the explained
// snapshot and its chain parent). Safe before or during the run.
func (r *Recorder) SetLineage(snapshotID, parentID string) {
	r.mu.Lock()
	r.t.SnapshotID = snapshotID
	r.t.ParentID = parentID
	r.mu.Unlock()
}

// SetCurveCap bounds the retained cost-curve sample (minimum 4; the
// default is DefaultCurveCap). Call before the run starts.
func (r *Recorder) SetCurveCap(n int) {
	if n < 4 {
		n = 4
	}
	r.mu.Lock()
	r.curveCap = n
	r.mu.Unlock()
}

// setClock injects a fake clock for tests.
func (r *Recorder) setClock(clock func() time.Time) {
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// now reads the recorder's out-of-band wall clock. Timestamps captured
// here live only in the RunTrace — never in the event stream, Result.JSON
// or any coded output — mirroring Stats.Duration's bargain.
func (r *Recorder) now() time.Time {
	if r.clock != nil {
		return r.clock()
	}
	return time.Now() //affidavit:ignore nondet trace wall times are out-of-band diagnostics, never part of the event stream or coded output
}

// Observe implements the Observer contract: it folds one event into the
// trace. Events within a run arrive from a single goroutine in
// deterministic order; the recorder only attaches wall times to them.
func (r *Recorder) Observe(ev obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if !r.started {
		r.started = true
		r.start = now
		r.stageAt = now
		r.t.StartedAt = now
	}
	switch ev.Kind {
	case obs.KindIngest:
		if ev.Complete {
			r.closeStage("ingest:"+ev.Snapshot, now, ev.Records)
		}
	case obs.KindSearchStart:
		// Ingest (if any) is over; the search stage begins here.
		r.stageAt = now
		r.openStage = "search"
		r.t.Mode = ev.Mode
		r.t.Start = ev.Start
		r.t.StartLevel = ev.StartLevel
	case obs.KindPoll:
		r.recordPoll(ev)
	case obs.KindFinalize:
		r.closeStage(r.openStage, now, 0)
		r.openStage = "finalize"
		r.t.Finalized = true
	case obs.KindConvert:
		r.closeStage(r.openStage, now, 0)
		r.openStage = "convert"
	case obs.KindSpill:
		r.t.Spill.Bytes += ev.SpillBytes
		r.t.Spill.Partitions += ev.SpillParts
		r.t.Spill.Components = append(r.t.Spill.Components, ComponentSpill{
			Component:  ev.Component,
			Snapshot:   ev.Snapshot,
			Bytes:      ev.SpillBytes,
			Partitions: ev.SpillParts,
		})
	case obs.KindDone:
		// Close whatever stage is open — "convert" on the full pipeline,
		// "search" when the run ended without an end state (cancelled
		// before any work, or expansion-capped to the trivial explanation).
		r.closeStage(r.openStage, now, 0)
		r.openStage = ""
		r.t.Cancelled = ev.Cancelled
		r.t.Cost = ev.Cost
		r.t.States = ev.States
		r.t.Polls.Polls = ev.Polls
		r.t.DurationMS = ms(now.Sub(r.start))
		r.t.Complete = true
	}
}

// closeStage appends a span ending now and advances the stage cursor. An
// empty stage (nothing open) only advances the cursor.
func (r *Recorder) closeStage(stage string, now time.Time, records int) {
	if stage == "" {
		r.stageAt = now
		return
	}
	r.t.Spans = append(r.t.Spans, Span{
		Stage:      stage,
		StartMS:    ms(r.stageAt.Sub(r.start)),
		DurationMS: ms(now.Sub(r.stageAt)),
		Records:    records,
	})
	r.stageAt = now
}

// recordPoll folds one poll event into the bounded cost curve.
func (r *Recorder) recordPoll(ev obs.Event) {
	p := &r.t.Polls
	pt := CurvePoint{Poll: ev.Poll, Level: ev.Level, Cost: ev.Cost, End: ev.End}
	if ev.End {
		p.EndStates++
	}
	if r.lastPt.Poll == 0 { // first observed poll
		p.FirstCost = pt.Cost
	}
	if r.minPt.Poll == 0 || pt.Cost < p.MinCost {
		p.MinCost = pt.Cost
		r.minPt = pt
	}
	p.LastCost = pt.Cost
	r.lastPt = pt
	// Retain points at stride intervals; when the sample fills, thin it to
	// every second point and double the stride. Poll 1 is on every stride.
	if (ev.Poll-1)%r.stride == 0 {
		p.Curve = append(p.Curve, pt)
		if len(p.Curve) >= r.curveCap {
			kept := p.Curve[:0]
			for i, c := range p.Curve {
				if i%2 == 0 {
					kept = append(kept, c)
				}
			}
			p.Curve = kept
			r.stride *= 2
		}
	}
}

// Trace returns a snapshot of the trace so far. The returned value is a
// deep-enough copy: mutating it (or recording further events) does not
// affect the other side. Call after the run for the complete trace
// (Complete reports whether the done event arrived).
func (r *Recorder) Trace() *RunTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.t
	out.Spans = append([]Span(nil), r.t.Spans...)
	out.Spill.Components = append([]ComponentSpill(nil), r.t.Spill.Components...)
	out.Polls.Curve = mergeCurve(r.t.Polls.Curve, r.minPt, r.lastPt)
	out.Polls.CurveStride = r.stride
	return &out
}

// mergeCurve copies the thinned curve, splicing in the cheapest and final
// points if thinning dropped them.
func mergeCurve(curve []CurvePoint, minPt, lastPt CurvePoint) []CurvePoint {
	out := append([]CurvePoint(nil), curve...)
	for _, extra := range []CurvePoint{minPt, lastPt} {
		if extra.Poll == 0 {
			continue // no polls recorded
		}
		pos := len(out)
		dup := false
		for i, c := range out {
			if c.Poll == extra.Poll {
				dup = true
				break
			}
			if c.Poll > extra.Poll {
				pos = i
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, CurvePoint{})
		copy(out[pos+1:], out[pos:])
		out[pos] = extra
	}
	return out
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// Collector watches a sequential stream of runs (an eval sweep, a chain)
// and emits one completed RunTrace per run: a fresh recorder starts at
// each run's first event and is flushed to the sink at its done event. The
// stream must not interleave concurrent runs — use one recorder (or
// collector) per run for that.
type Collector struct {
	mu      sync.Mutex
	onTrace func(*RunTrace)
	current *Recorder
	label   string
}

// NewCollector returns a collector flushing each completed trace to
// onTrace (called synchronously from Observe, so keep it cheap).
func NewCollector(onTrace func(*RunTrace)) *Collector {
	return &Collector{onTrace: onTrace}
}

// SetLabel tags every subsequent trace.
func (c *Collector) SetLabel(label string) {
	c.mu.Lock()
	c.label = label
	c.mu.Unlock()
}

// Observe implements the Observer contract over run boundaries.
func (c *Collector) Observe(ev obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		c.current = NewRecorder(NewID())
		if c.label != "" {
			c.current.SetLabel(c.label)
		}
	}
	c.current.Observe(ev)
	if ev.Kind == obs.KindDone {
		tr := c.current.Trace()
		c.current = nil
		if c.onTrace != nil {
			c.onTrace(tr)
		}
	}
}
