package baseline

import (
	"sort"

	"affidavit/internal/align"
	"affidavit/internal/delta"
)

// GreedyMatch is a similarity-only record linker in the spirit of generic
// unsupervised entity-resolution suites: it scores pairs by attribute
// overlap (like the Hs bootstrap) and then greedily matches best-first
// without learning any transformation function. It represents the "fuzzy
// similarity, no functions" class of Related-Work systems; the paper's
// point is that such matchers cannot explain systematically transformed
// attributes.
func GreedyMatch(inst *delta.Instance, maxPairs int) []align.Pair {
	ov := align.ComputeOverlap(inst, maxPairs)
	idx := make([]int, len(ov.BestPairs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return ov.Scores[idx[i]] > ov.Scores[idx[j]]
	})
	usedS := make(map[int32]bool)
	usedT := make(map[int32]bool)
	var out []align.Pair
	for _, i := range idx {
		p := ov.BestPairs[i]
		if usedS[p.S] || usedT[p.T] {
			continue
		}
		usedS[p.S] = true
		usedT[p.T] = true
		out = append(out, p)
	}
	return out
}

// MatchAccuracy scores a matcher's pairs against a reference alignment,
// returning the fraction of reference pairs recovered.
func MatchAccuracy(pairs []align.Pair, refSrc, refTgt []int) float64 {
	if len(refSrc) == 0 {
		return 1
	}
	want := make(map[int32]int32, len(refSrc))
	for i := range refSrc {
		want[int32(refSrc[i])] = int32(refTgt[i])
	}
	hit := 0
	for _, p := range pairs {
		if t, ok := want[p.S]; ok && t == p.T {
			hit++
		}
	}
	return float64(hit) / float64(len(refSrc))
}
