package baseline

import (
	"fmt"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
)

// mappingOrIdentity builds a value mapping, collapsing to the identity when
// every pair is trivial.
func mappingOrIdentity(pairs map[string]string) metafunc.Func {
	trivial := true
	for k, v := range pairs {
		if k != v {
			trivial = false
			break
		}
	}
	if trivial {
		return metafunc.Identity{}
	}
	return metafunc.NewMapping(pairs)
}

// ExhaustiveLimit bounds the candidate-tuple product Exhaustive explores.
const ExhaustiveLimit = 5_000_000

// Exhaustive finds a provably cost-optimal explanation over the function
// space induced from *all* source–target value pairs per attribute (plus
// the identity). It enumerates the full candidate product and is therefore
// only usable on small instances; tests use it to certify the heuristic
// search. Value mappings are not enumerated (as in the search, they are not
// part of the induced space), so the optimum is relative to the induced
// candidates — which suffices for instances whose reference explanation
// uses no mapping.
func Exhaustive(inst *delta.Instance, cm delta.CostModel) (*delta.Explanation, float64, error) {
	d := inst.NumAttrs()
	pools := make([][]metafunc.Func, d)
	product := 1
	for a := 0; a < d; a++ {
		seen := map[string]bool{(metafunc.Identity{}).Key(): true}
		pool := []metafunc.Func{metafunc.Identity{}}
		for s := 0; s < inst.Source.Len(); s++ {
			for t := 0; t < inst.Target.Len(); t++ {
				in := inst.Source.Value(s, a)
				out := inst.Target.Value(t, a)
				for _, f := range metafunc.InduceAll(inst.Metas, in, out) {
					if !seen[f.Key()] {
						seen[f.Key()] = true
						pool = append(pool, f)
					}
				}
			}
		}
		pools[a] = pool
		product *= len(pool)
		if product > ExhaustiveLimit || product < 0 {
			return nil, 0, fmt.Errorf("baseline: candidate product exceeds %d", ExhaustiveLimit)
		}
	}
	var best *delta.Explanation
	bestCost := 0.0
	tuple := make(delta.FuncTuple, d)
	var rec func(a int) error
	rec = func(a int) error {
		if a == d {
			e, err := delta.Build(inst, tuple)
			if err != nil {
				return err
			}
			cost := cm.Cost(e)
			if best == nil || cost < bestCost {
				best, bestCost = e, cost
			}
			return nil
		}
		for _, f := range pools[a] {
			tuple[a] = f
			if err := rec(a + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, 0, err
	}
	return best, bestCost, nil
}
