// Package baseline implements the comparison points the paper measures
// Affidavit against conceptually: the keyed diff of commercial table-
// comparison tools (which silently breaks when primary keys are rewritten —
// the paper's motivating failure), a similarity-only greedy matcher in the
// spirit of unsupervised record linking, and an exhaustive optimal solver
// for small instances that certifies the heuristic search in tests.
package baseline

import (
	"fmt"

	"affidavit/internal/delta"
	"affidavit/internal/table"
)

// MatchedPair aligns source record S with target record T under a key.
type MatchedPair struct {
	S, T int
	// ChangedAttrs lists attribute positions whose values differ.
	ChangedAttrs []int
}

// DiffReport is the output of a classic key-aligned snapshot diff.
type DiffReport struct {
	KeyAttrs  []int
	Unchanged []MatchedPair
	Updated   []MatchedPair
	Deleted   []int // source records whose key is absent from the target
	Inserted  []int // target records whose key is absent from the source
	// AmbiguousKeys counts key values occurring more than once on either
	// side; such records are reported deleted/inserted, as most tools do.
	AmbiguousKeys int
}

// KeyedDiff aligns records by equality on the key attributes and classifies
// them — the mode of operation of ApexSQL Data Diff, SQL Data Compare and
// friends (Related Work). It requires keys to be unique per side; ambiguous
// keys fall back to deleted+inserted.
func KeyedDiff(src, tgt *table.Table, keyAttrs []int) (*DiffReport, error) {
	if !src.Schema().Equal(tgt.Schema()) {
		return nil, fmt.Errorf("baseline: schemas differ")
	}
	if len(keyAttrs) == 0 {
		return nil, fmt.Errorf("baseline: no key attributes given")
	}
	for _, a := range keyAttrs {
		if a < 0 || a >= src.Schema().Len() {
			return nil, fmt.Errorf("baseline: key attribute %d out of range", a)
		}
	}
	rep := &DiffReport{KeyAttrs: append([]int(nil), keyAttrs...)}
	key := func(r table.Record) string { return r.Project(keyAttrs).Key() }

	srcByKey := make(map[string][]int)
	for i := 0; i < src.Len(); i++ {
		k := key(src.Record(i))
		srcByKey[k] = append(srcByKey[k], i)
	}
	tgtByKey := make(map[string][]int)
	for i := 0; i < tgt.Len(); i++ {
		k := key(tgt.Record(i))
		tgtByKey[k] = append(tgtByKey[k], i)
	}
	matchedTgt := make(map[int]bool)
	for i := 0; i < src.Len(); i++ {
		k := key(src.Record(i))
		ss, ts := srcByKey[k], tgtByKey[k]
		if len(ss) != 1 || len(ts) > 1 {
			rep.AmbiguousKeys++
			rep.Deleted = append(rep.Deleted, i)
			continue
		}
		if len(ts) == 0 {
			rep.Deleted = append(rep.Deleted, i)
			continue
		}
		t := ts[0]
		matchedTgt[t] = true
		pair := MatchedPair{S: i, T: t}
		for a := 0; a < src.Schema().Len(); a++ {
			if src.Value(i, a) != tgt.Value(t, a) {
				pair.ChangedAttrs = append(pair.ChangedAttrs, a)
			}
		}
		if len(pair.ChangedAttrs) == 0 {
			rep.Unchanged = append(rep.Unchanged, pair)
		} else {
			rep.Updated = append(rep.Updated, pair)
		}
	}
	for t := 0; t < tgt.Len(); t++ {
		if !matchedTgt[t] {
			k := key(tgt.Record(t))
			if len(srcByKey[k]) == 1 && len(tgtByKey[k]) == 1 {
				continue // matched above
			}
			rep.Inserted = append(rep.Inserted, t)
		}
	}
	return rep, nil
}

// Matched returns the number of key-aligned pairs.
func (r *DiffReport) Matched() int { return len(r.Unchanged) + len(r.Updated) }

// AsExplanation converts the keyed diff into an Explain-Table-Delta
// explanation whose per-attribute functions are value mappings listing the
// observed changes verbatim — exactly the "no generalisation" shape the
// paper criticises in commercial tools. Its cost is therefore dominated by
// the mapping parameters.
func (r *DiffReport) AsExplanation(inst *delta.Instance) (*delta.Explanation, error) {
	pairsByAttr := make([]map[string]string, inst.NumAttrs())
	for a := range pairsByAttr {
		pairsByAttr[a] = make(map[string]string)
	}
	use := func(ps []MatchedPair) error {
		for _, p := range ps {
			for a := 0; a < inst.NumAttrs(); a++ {
				sv := inst.Source.Value(p.S, a)
				tv := inst.Target.Value(p.T, a)
				if prev, ok := pairsByAttr[a][sv]; ok && prev != tv {
					// Conflicting updates cannot be expressed as a
					// function; drop the later one (the record will fall
					// out of the core).
					continue
				}
				pairsByAttr[a][sv] = tv
			}
		}
		return nil
	}
	if err := use(r.Unchanged); err != nil {
		return nil, err
	}
	if err := use(r.Updated); err != nil {
		return nil, err
	}
	funcs := make(delta.FuncTuple, inst.NumAttrs())
	for a := range funcs {
		funcs[a] = mappingOrIdentity(pairsByAttr[a])
	}
	return delta.Build(inst, funcs)
}
