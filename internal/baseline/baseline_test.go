package baseline_test

import (
	"context"
	"testing"

	"affidavit/internal/baseline"
	"affidavit/internal/delta"
	"affidavit/internal/fixture"
	"affidavit/internal/metafunc"
	"affidavit/internal/search"
	"affidavit/internal/table"
)

func TestKeyedDiffStableKeys(t *testing.T) {
	s := table.MustSchema("id", "v")
	src := table.MustFromRows(s, []table.Record{{"1", "a"}, {"2", "b"}, {"3", "c"}})
	tgt := table.MustFromRows(s, []table.Record{{"1", "a"}, {"2", "B"}, {"4", "d"}})
	rep, err := baseline.KeyedDiff(src, tgt, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unchanged) != 1 || len(rep.Updated) != 1 ||
		len(rep.Deleted) != 1 || len(rep.Inserted) != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Updated[0].ChangedAttrs[0] != 1 {
		t.Error("changed attribute wrong")
	}
	if rep.Matched() != 2 {
		t.Errorf("Matched = %d, want 2", rep.Matched())
	}
}

// TestKeyedDiffFailsOnRewrittenKeys demonstrates the paper's motivating
// failure: on I1 the composite key {ID1, ID2, Date} was rewritten, so a
// key-aligned diff matches (almost) nothing and misreports the snapshot as
// wholesale delete+insert, while Affidavit aligns 13 of 17 records.
func TestKeyedDiffFailsOnRewrittenKeys(t *testing.T) {
	inst := fixture.Instance()
	rep, err := baseline.KeyedDiff(inst.Source, inst.Target,
		[]int{fixture.ID1, fixture.ID2, fixture.Date})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched() != 0 {
		t.Errorf("keyed diff matched %d pairs across rewritten keys", rep.Matched())
	}
	if len(rep.Deleted) != 17 || len(rep.Inserted) != 16 {
		t.Errorf("keyed diff should degenerate to full delete+insert, got %d/%d",
			len(rep.Deleted), len(rep.Inserted))
	}
	// ID2 alone looks like a perfect key (perfect discriminability and
	// coverage) but aligns records incorrectly — the paper's skolem trap.
	rep2, err := baseline.KeyedDiff(inst.Source, inst.Target, []int{fixture.ID2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Matched() == 0 {
		t.Fatal("ID2 join should produce (wrong) matches")
	}
	wrong := 0
	refPairs := map[int]int{}
	ref := fixture.ReferenceExplanation()
	for i := range ref.CoreSrc {
		refPairs[ref.CoreSrc[i]] = ref.CoreTgt[i]
	}
	for _, p := range append(rep2.Unchanged, rep2.Updated...) {
		if want, ok := refPairs[p.S]; !ok || want != p.T {
			wrong++
		}
	}
	if wrong == 0 {
		t.Error("ID2 join should misalign records; it matched the reference")
	}
}

func TestKeyedDiffAmbiguousKeys(t *testing.T) {
	s := table.MustSchema("k", "v")
	src := table.MustFromRows(s, []table.Record{{"dup", "a"}, {"dup", "b"}})
	tgt := table.MustFromRows(s, []table.Record{{"dup", "a"}})
	rep, err := baseline.KeyedDiff(src, tgt, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AmbiguousKeys != 2 || rep.Matched() != 0 {
		t.Errorf("ambiguous keys mishandled: %+v", rep)
	}
	if len(rep.Deleted) != 2 || len(rep.Inserted) != 1 {
		t.Errorf("ambiguous records should degrade to delete+insert: %+v", rep)
	}
}

func TestKeyedDiffValidation(t *testing.T) {
	s := table.MustSchema("a")
	tab := table.MustFromRows(s, nil)
	other := table.MustFromRows(table.MustSchema("b"), nil)
	if _, err := baseline.KeyedDiff(tab, other, []int{0}); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := baseline.KeyedDiff(tab, tab, nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := baseline.KeyedDiff(tab, tab, []int{5}); err == nil {
		t.Error("out-of-range key accepted")
	}
}

// TestKeyedDiffAsExplanation: the record-level diff, recast as an
// explanation, is valid but drastically more expensive than Affidavit's —
// the paper's "no generalisation" criticism quantified.
func TestKeyedDiffAsExplanation(t *testing.T) {
	s := table.MustSchema("id", "val")
	src := table.MustFromRows(s, []table.Record{
		{"1", "100"}, {"2", "200"}, {"3", "300"},
	})
	tgt := table.MustFromRows(s, []table.Record{
		{"1", "0.1"}, {"2", "0.2"}, {"3", "0.3"},
	})
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := baseline.KeyedDiff(src, tgt, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rep.AsExplanation(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.CoreSize() != 3 {
		t.Fatalf("keyed explanation core = %d, want 3", e.CoreSize())
	}
	keyedCost := delta.DefaultCosts.Cost(e)
	res, err := search.Run(context.Background(), inst, withSeed(search.DefaultOptions(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= keyedCost {
		t.Errorf("Affidavit cost %v should beat per-record mapping cost %v",
			res.Cost, keyedCost)
	}
	// The learned division generalises to unseen records; the keyed
	// mapping cannot.
	div, _ := metafunc.NewDivision("1000")
	if res.Explanation.Funcs[1].Key() != div.Key() {
		t.Errorf("expected x/1000 on val, got %s", res.Explanation.Funcs[1])
	}
}

func TestExhaustiveCertifiesSearchOnI1Subset(t *testing.T) {
	// A 3-attribute, 5×4-record slice of I1 (the type-C records over Type,
	// Val, Unit) keeps the candidate product small; exhaustive and
	// heuristic search must agree on cost.
	full := fixture.Instance()
	keep := []int{fixture.Type, fixture.Val, fixture.Unit}
	drop := map[int]bool{}
	for a := 0; a < full.NumAttrs(); a++ {
		drop[a] = true
	}
	for _, a := range keep {
		drop[a] = false
	}
	src := full.Source.DropAttrs(drop).Select([]int{5, 6, 7, 8, 9})
	tgt := full.Target.DropAttrs(drop).Select([]int{2, 7, 8, 9})
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		t.Fatal(err)
	}
	optimal, optCost, err := baseline.Exhaustive(inst, delta.DefaultCosts)
	if err != nil {
		t.Fatal(err)
	}
	if err := optimal.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := search.Run(context.Background(), inst, withSeed(search.DefaultOptions(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > optCost {
		t.Errorf("heuristic %v worse than optimal %v", res.Cost, optCost)
	}
	if res.Cost < optCost {
		t.Errorf("heuristic %v below certified optimum %v: cost model bug",
			res.Cost, optCost)
	}
}

func TestExhaustiveRefusesHugeProducts(t *testing.T) {
	inst := fixture.Instance() // 7 attributes: product explodes
	if _, _, err := baseline.Exhaustive(inst, delta.DefaultCosts); err == nil {
		t.Error("exhaustive accepted an oversized instance")
	}
}

func TestGreedyMatch(t *testing.T) {
	inst := fixture.Instance()
	pairs := baseline.GreedyMatch(inst, 100000)
	if len(pairs) == 0 {
		t.Fatal("greedy matcher found nothing")
	}
	seenS := map[int32]bool{}
	seenT := map[int32]bool{}
	for _, p := range pairs {
		if seenS[p.S] || seenT[p.T] {
			t.Fatal("greedy match reused a record")
		}
		seenS[p.S] = true
		seenT[p.T] = true
	}
	ref := fixture.ReferenceExplanation()
	acc := baseline.MatchAccuracy(pairs, ref.CoreSrc, ref.CoreTgt)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}

func TestMatchAccuracyEdges(t *testing.T) {
	if baseline.MatchAccuracy(nil, nil, nil) != 1 {
		t.Error("empty reference should score 1")
	}
	if baseline.MatchAccuracy(nil, []int{1}, []int{2}) != 0 {
		t.Error("no pairs should score 0")
	}
}

func withSeed(o search.Options, seed int64) search.Options {
	o.Seed = seed
	return o
}
