// Package fixture provides the paper's running example: problem instance
// I1 = (S1, T1, A1, F1) from Figure 1 and its reference explanation E1.
// Tests across the repository assert against it, and examples/quickstart
// walks through it.
package fixture

import (
	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/table"
)

// Attribute positions in the Figure 1 schema.
const (
	ID1 = iota
	ID2
	Date
	Type
	Val
	Unit
	Org
)

// SourceRows returns the 17 records of snapshot S1.
func SourceRows() []table.Record {
	return []table.Record{
		{"S01", "0000", "20130416", "A", "80000", "USD", "IBM"},
		{"S02", "0001", "20120128", "A", "180000", "USD", "IBM"},
		{"S03", "0002", "20130315", "A", "220000", "USD", "IBM"},
		{"S04", "0003", "20120128", "B", "3780000", "USD", "IBM"},
		{"S05", "0004", "20120731", "B", "425000", "USD", "IBM"},
		{"S06", "0005", "20120731", "C", "21000", "USD", "IBM"},
		{"S07", "0006", "20140503", "C", "422400", "USD", "IBM"},
		{"S08", "0007", "20140503", "C", "6540", "USD", "SAP"},
		{"S09", "0008", "20131021", "C", "9800", "USD", "SAP"},
		{"S10", "0009", "20121125", "C", "0", "USD", "SAP"},
		{"S11", "0010", "99991231", "D", "65", "USD", "SAP"},
		{"S12", "0011", "99991231", "D", "180000", "USD", "BASF"},
		{"S13", "0012", "99991231", "D", "220000", "USD", "BASF"},
		{"S14", "0013", "20150203", "D", "21000", "USD", "BASF"},
		{"S15", "0014", "20150213", "D", "65", "USD", "BASF"},
		{"S16", "0015", "20160807", "E", "80000", "USD", "BASF"},
		{"S17", "0016", "20161231", "E", "80000", "USD", "BASF"},
	}
}

// TargetRows returns the 16 records of snapshot T1.
func TargetRows() []table.Record {
	return []table.Record{
		{"T01", "0000", "99991231", "A", "80", "k $", "IBM"},
		{"T02", "0001", "20120128", "A", "180", "k $", "IBM"},
		{"T03", "0002", "20120731", "C", "21", "k $", "IBM"},
		{"T04", "0003", "20120731", "B", "425", "k $", "IBM"},
		{"T05", "0004", "20121125", "B", "0.022", "k $", "DAB"},
		{"T06", "0005", "20130315", "A", "220", "k $", "IBM"},
		{"T07", "0006", "20130416", "A", "80", "k $", "IBM"},
		{"T08", "0007", "20131021", "C", "9.8", "k $", "SAP"},
		{"T09", "0008", "20140503", "C", "422.4", "k $", "IBM"},
		{"T10", "0009", "20140503", "C", "6.54", "k $", "SAP"},
		{"T11", "0010", "20150213", "D", "0.065", "k $", "BASF"},
		{"T12", "0011", "20161231", "E", "80", "k $", "BASF"},
		{"T13", "0012", "20180701", "D", "0.065", "k $", "SAP"},
		{"T14", "0013", "20180701", "D", "180", "k $", "BASF"},
		{"T15", "0014", "20180701", "D", "220", "k $", "BASF"},
		{"T16", "0015", "99991231", "F", "0.45", "k $", "SAP"},
	}
}

// Schema returns A1 = (ID1, ID2, Date, Type, Val, Unit, Org).
func Schema() *table.Schema {
	return table.MustSchema("ID1", "ID2", "Date", "Type", "Val", "Unit", "Org")
}

// Instance builds I1 with the default meta-function library.
func Instance() *delta.Instance {
	src := table.MustFromRows(Schema(), SourceRows())
	tgt := table.MustFromRows(Schema(), TargetRows())
	inst, err := delta.NewInstance(src, tgt, nil)
	if err != nil {
		panic(err)
	}
	return inst
}

// ReferenceFuncs returns F^{E1} exactly as printed below Figure 1.
func ReferenceFuncs() delta.FuncTuple {
	id1 := metafunc.NewMapping(map[string]string{
		"S01": "T07", "S02": "T02", "S03": "T06", "S05": "T04",
		"S06": "T03", "S07": "T09", "S08": "T10", "S09": "T08",
		"S11": "T13", "S12": "T14", "S13": "T15", "S15": "T11",
		"S17": "T12",
	})
	id2 := metafunc.NewMapping(map[string]string{
		"0000": "0006", "0001": "0001", "0002": "0005", "0004": "0003",
		"0005": "0002", "0006": "0008", "0007": "0009", "0008": "0007",
		"0010": "0012", "0011": "0013", "0012": "0014", "0014": "0010",
		"0016": "0011",
	})
	div, err := metafunc.NewDivision("1000")
	if err != nil {
		panic(err)
	}
	return delta.FuncTuple{
		ID1:  id1,
		ID2:  id2,
		Date: metafunc.PrefixReplace{Y: "9999123", Z: "2018070"},
		Type: metafunc.Identity{},
		Val:  div,
		Unit: metafunc.Constant{C: "k $"},
		Org:  metafunc.Identity{},
	}
}

// ReferenceExplanation builds E1 from the reference function tuple.
func ReferenceExplanation() *delta.Explanation {
	e, err := delta.Build(Instance(), ReferenceFuncs())
	if err != nil {
		panic(err)
	}
	return e
}

// DeletedIDs lists S^{E1−} by ID1 value.
func DeletedIDs() []string { return []string{"S04", "S10", "S14", "S16"} }

// InsertedIDs lists T^{E1+} by ID1 value.
func InsertedIDs() []string { return []string{"T01", "T05", "T16"} }

// ReferenceCost is c(E1) at α = 0.5: L(T^{E1+}) + L(F^{E1}) = 21 + 56.
const ReferenceCost = 77

// TrivialCost is c(E∅) at α = 0.5: |A1| · |T1| = 7 · 16.
const TrivialCost = 112
