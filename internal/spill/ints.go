package spill

import (
	"fmt"
	"runtime"
	"sync"
)

// ReadError wraps a failed spill-file read. Column reads cannot return
// errors through the table accessor signatures, so Ints panics with a
// *ReadError; search.Run recovers it at the run boundary and returns it
// as an ordinary error (every other spilled read happens on the public
// API caller's goroutine, where net/http's per-request recovery or the
// caller's own handling applies). Write-side spill errors never reach
// this path — they degrade to keeping data resident instead.
type ReadError struct {
	Err error
}

func (e *ReadError) Error() string { return fmt.Sprintf("spill: reading column chunk: %v", e.Err) }

func (e *ReadError) Unwrap() error { return e.Err }

// chunkLen is the codes per column chunk: 4 KiB per chunk keeps page-in
// granularity fine enough that a tiny test budget spills after a thousand
// records, while a 500k-row column still fits in a few hundred chunks.
const chunkLen = 1 << 10

// chunkBytes is one chunk's encoded size.
const chunkBytes = chunkLen * 4

// Ints is an append-only int32 column whose cold chunks spill to the
// manager's shared temp file once the table share of the budget is full:
// the warm tail (and up to budget/2 of completed chunks, first-come) stays
// resident, the rest is paged back on demand. Appends are single-writer
// (the builder goroutine); reads are safe for concurrent use — random
// access serialises on a one-chunk page cache, sequential materialisation
// reads the file directly into the destination.
type Ints struct {
	m  *Manager
	st *Stats

	n      int
	chunks []intsChunk
	tail   []int32

	// resident is the cold-chunk byte total this column holds against the
	// manager's table share; returned when the column is collected.
	resident int64

	// mu guards the single-chunk page cache used by random access.
	mu       sync.Mutex
	cacheIdx int
	cache    []int32

	frozen bool
}

// intsChunk is one completed chunk: resident (data != nil) or spilled at
// off in the manager's chunk file.
type intsChunk struct {
	data []int32
	off  int64
}

// NewInts returns an empty spillable column accounting into st (which may
// be nil). The manager must be active; callers without a budget should use
// plain []int32 slices instead.
func (m *Manager) NewInts(st *Stats) *Ints {
	c := &Ints{m: m, st: st, cacheIdx: -1}
	// Return the table-share reservation when the column is collected, so
	// a long-lived manager (server Explainer) doesn't leak budget as
	// tables come and go. The spill file itself is shared and append-only;
	// its space returns at process exit (the file is unlinked).
	runtime.SetFinalizer(c, func(c *Ints) { c.m.releaseChunks(c.resident) })
	return c
}

// Len returns the number of appended codes.
func (c *Ints) Len() int { return c.n }

// Append adds one code. It must not be called concurrently or after
// Freeze.
func (c *Ints) Append(v int32) {
	if c.frozen {
		panic("spill: append to frozen column")
	}
	if c.tail == nil {
		c.tail = make([]int32, 0, chunkLen)
	}
	c.tail = append(c.tail, v)
	c.n++
	if len(c.tail) == chunkLen {
		c.finishChunk()
	}
}

// finishChunk completes the tail: kept resident while the manager's table
// share has room, spilled to the shared chunk file otherwise.
func (c *Ints) finishChunk() {
	if c.m.reserveChunk(chunkBytes) {
		c.chunks = append(c.chunks, intsChunk{data: c.tail})
		c.resident += chunkBytes
		c.tail = make([]int32, 0, chunkLen)
		return
	}
	buf := make([]byte, chunkBytes)
	putInt32s(buf, c.tail)
	off, err := c.m.writeChunk(buf)
	if err != nil {
		// Disk trouble: keep the chunk resident — correctness first, the
		// budget is advisory.
		c.chunks = append(c.chunks, intsChunk{data: c.tail})
		c.resident += chunkBytes
		c.tail = make([]int32, 0, chunkLen)
		return
	}
	c.st.Note(chunkBytes, 0)
	c.chunks = append(c.chunks, intsChunk{data: nil, off: off})
	c.tail = c.tail[:0]
}

// Freeze marks the column complete; Append panics afterwards. Reading does
// not require freezing — it exists to catch misuse of shared columns.
func (c *Ints) Freeze() { c.frozen = true }

// At returns code i. Spilled chunks page through a one-chunk cache, so a
// sequential scan pays one read per chunk.
func (c *Ints) At(i int) int32 {
	ci := i / chunkLen
	if ci == len(c.chunks) {
		return c.tail[i%chunkLen]
	}
	ch := &c.chunks[ci]
	if ch.data != nil {
		return ch.data[i%chunkLen]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cacheIdx != ci {
		if c.cache == nil {
			c.cache = make([]int32, chunkLen)
		}
		buf := make([]byte, chunkBytes)
		if err := c.m.readChunk(buf, ch.off); err != nil {
			panic(&ReadError{Err: err})
		}
		getInt32s(c.cache, buf)
		c.cacheIdx = ci
	}
	return c.cache[i%chunkLen]
}

// AppendTo materialises the whole column onto dst in append order —
// resident chunks copy, spilled chunks stream from disk directly into the
// destination without touching the page cache.
func (c *Ints) AppendTo(dst []int32) []int32 {
	var buf []byte
	for _, ch := range c.chunks {
		if ch.data != nil {
			dst = append(dst, ch.data...)
			continue
		}
		if buf == nil {
			buf = make([]byte, chunkBytes)
		}
		if err := c.m.readChunk(buf, ch.off); err != nil {
			panic(&ReadError{Err: err})
		}
		off := len(dst)
		dst = append(dst, make([]int32, chunkLen)...)
		getInt32s(dst[off:], buf)
	}
	return append(dst, c.tail...)
}
