package spill

import "os"

// Pager spills fixed-size records into hash partitions backed by one
// unlinked temp file — the disk half of the grace-hash external grouping
// and matching modes. Writes buffer per partition and flush full pages to
// the file; reads replay one partition's pages in write order, so a
// partition's records come back exactly as they went in. A Pager belongs
// to one external operation and is closed when the operation finishes.
//
// The write phase is single-goroutine; after Flush, distinct partitions
// may be read concurrently (the page index is immutable and reads go
// through ReadAt).
type Pager struct {
	f        *os.File
	recBytes int
	off      int64
	written  int64

	bufs  [][]byte  // per-partition fill buffer
	pages [][]pgRef // per-partition flushed pages, in write order
	used  []bool
	st    *Stats
}

// pgRef locates one flushed page in the file.
type pgRef struct {
	off int64
	n   int // bytes
}

// pagerBufBytes is the per-partition buffer target. 32 KiB keeps flushes
// large enough to be sequential-ish while 64 partitions still only hold
// 2 MiB of buffers.
const pagerBufBytes = 32 << 10

// NewPager creates a pager with parts partitions of recBytes-sized
// records, accounting spilled volume into st (which may be nil).
func (m *Manager) NewPager(parts, recBytes int, st *Stats) (*Pager, error) {
	f, err := m.tempFile("affidavit-spill-*")
	if err != nil {
		return nil, err
	}
	bufRecs := pagerBufBytes / recBytes
	if bufRecs < 16 {
		bufRecs = 16
	}
	p := &Pager{
		f:        f,
		recBytes: recBytes,
		bufs:     make([][]byte, parts),
		pages:    make([][]pgRef, parts),
		used:     make([]bool, parts),
		st:       st,
	}
	for i := range p.bufs {
		p.bufs[i] = make([]byte, 0, bufRecs*recBytes)
	}
	return p, nil
}

// Write appends one record (len(rec) == recBytes) to a partition.
func (p *Pager) Write(part int, rec []byte) error {
	p.used[part] = true
	p.bufs[part] = append(p.bufs[part], rec...)
	if cap(p.bufs[part])-len(p.bufs[part]) < p.recBytes {
		return p.flushPart(part)
	}
	return nil
}

func (p *Pager) flushPart(part int) error {
	b := p.bufs[part]
	if len(b) == 0 {
		return nil
	}
	if _, err := p.f.WriteAt(b, p.off); err != nil {
		return err
	}
	p.pages[part] = append(p.pages[part], pgRef{off: p.off, n: len(b)})
	p.off += int64(len(b))
	p.written += int64(len(b))
	p.bufs[part] = b[:0]
	return nil
}

// Flush writes every partition's pending buffer and records the spill
// totals: the bytes that went to disk plus one partition count per
// non-empty partition. Call once, between the write and read phases.
func (p *Pager) Flush() error {
	for part := range p.bufs {
		if err := p.flushPart(part); err != nil {
			return err
		}
	}
	parts := 0
	for _, u := range p.used {
		if u {
			parts++
		}
	}
	p.st.Note(p.written, parts)
	return nil
}

// ReadPart replays one partition's records in write order. The record
// slice passed to fn is reused between calls; fn must not retain it.
func (p *Pager) ReadPart(part int, fn func(rec []byte) error) error {
	var buf []byte
	for _, pg := range p.pages[part] {
		if cap(buf) < pg.n {
			buf = make([]byte, pg.n)
		}
		buf = buf[:pg.n]
		if _, err := p.f.ReadAt(buf, pg.off); err != nil {
			return err
		}
		for o := 0; o < pg.n; o += p.recBytes {
			if err := fn(buf[o : o+p.recBytes]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close releases the pager's file (already unlinked at creation).
func (p *Pager) Close() error { return p.f.Close() }
