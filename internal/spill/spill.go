// Package spill is the out-of-core substrate of the explain pipeline: a
// process-wide memory budget (Manager), per-run spill accounting (Stats),
// a chunked int32 column that pages cold chunks to a temp file (Ints), and
// a fixed-record partition pager (Pager) backing the grace-hash external
// grouping and matching modes of blocking and delta.
//
// The budget is a soft, advisory bound on the *auxiliary* memory of one
// explanation — column chunks, grouping hash tables, matching key maps —
// not a hard process limit. Consumers estimate the in-memory cost of an
// operation up front and switch to their external (disk-partitioned)
// algorithm when the estimate exceeds their share of the budget; results
// are byte-identical either way, only the memory/IO profile differs.
//
// Spill files are created under the manager's directory (os.TempDir by
// default) and unlinked immediately after creation, so they never outlive
// the process even on a crash.
package spill

import (
	"encoding/binary"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Shares split the budget across the pipeline's three memory consumers.
// They are deliberately coarse: the point is that no single subsystem can
// claim the whole budget, not a precise accounting.
const (
	// tableShareDiv: resident cold column chunks may hold budget/2 bytes
	// across all live tables before new chunks spill.
	tableShareDiv = 2
	// groupShareDiv: one blocking refinement's group table may be estimated
	// at budget/4 bytes before the refinement groups externally.
	groupShareDiv = 4
	// matchShareDiv: the end-state conversion's key maps may be estimated
	// at budget/4 bytes before the matching partitions to disk.
	matchShareDiv = 4
)

// maxPartitions caps how finely one external operation partitions; beyond
// this, per-partition buffers dominate and seek locality degrades.
const maxPartitions = 64

// Manager carries one memory budget plus the shared spill file cold column
// chunks are written to. The zero budget (or a nil manager) disables
// spilling entirely: every Should* probe answers false and no file is ever
// created. Managers are safe for concurrent use and typically live as long
// as their Explainer.
type Manager struct {
	budget int64
	dir    string

	// chunkResident tracks resident cold-chunk bytes across every Ints of
	// this manager; chunks completed past the table share spill.
	chunkResident atomic.Int64

	// mu guards lazy creation of and appends to the shared chunk file.
	mu       sync.Mutex
	chunks   *os.File
	chunkOff int64
}

// NewManager returns a manager enforcing the given budget in bytes under
// dir ("" = os.TempDir()). budget ≤ 0 returns a manager that never spills.
func NewManager(budget int64, dir string) *Manager {
	return &Manager{budget: budget, dir: dir}
}

// Active reports whether the manager enforces a budget.
func (m *Manager) Active() bool { return m != nil && m.budget > 0 }

// Budget returns the configured budget in bytes (0 = unlimited).
func (m *Manager) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// ShouldSpillGroup reports whether a grouping pass whose in-memory tables
// are estimated at est bytes should group externally.
func (m *Manager) ShouldSpillGroup(est int64) bool {
	return m.Active() && est > m.budget/groupShareDiv
}

// ShouldSpillMatch reports whether a multiset matching whose key maps are
// estimated at est bytes should partition to disk.
func (m *Manager) ShouldSpillMatch(est int64) bool {
	return m.Active() && est > m.budget/matchShareDiv
}

// Partitions sizes an external operation: enough partitions that one
// partition's in-memory table fits the share, clamped to [2, 64].
func (m *Manager) Partitions(est int64, shareDiv int64) int {
	share := m.budget / shareDiv
	if share < 1 {
		share = 1
	}
	p := int((est + share - 1) / share)
	if p < 2 {
		p = 2
	}
	if p > maxPartitions {
		p = maxPartitions
	}
	return p
}

// GroupPartitions sizes an external grouping pass.
func (m *Manager) GroupPartitions(est int64) int { return m.Partitions(est, groupShareDiv) }

// MatchPartitions sizes an external matching pass.
func (m *Manager) MatchPartitions(est int64) int { return m.Partitions(est, matchShareDiv) }

// tempFile creates an anonymous spill file: created under the manager's
// directory and unlinked immediately, so it is reclaimed by the OS when
// closed (or at process exit) no matter how the process ends.
func (m *Manager) tempFile(pattern string) (*os.File, error) {
	dir := m.dir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	// Unlink while open: POSIX keeps the inode alive for the open
	// descriptor and reclaims it automatically on close/exit.
	os.Remove(f.Name())
	return f, nil
}

// reserveChunk accounts one completed resident chunk. It reports false —
// the chunk should spill — when keeping it resident would push the
// manager's cold-chunk total past the table share.
func (m *Manager) reserveChunk(bytes int64) bool {
	if !m.Active() {
		return true
	}
	share := m.budget / tableShareDiv
	for {
		cur := m.chunkResident.Load()
		if cur+bytes > share {
			return false
		}
		if m.chunkResident.CompareAndSwap(cur, cur+bytes) {
			return true
		}
	}
}

// releaseChunks returns resident bytes to the table share (used by the
// Ints finalizer when a spilled table is collected).
func (m *Manager) releaseChunks(bytes int64) {
	if m.Active() && bytes > 0 {
		m.chunkResident.Add(-bytes)
	}
}

// writeChunk appends raw bytes to the shared chunk file and returns their
// offset. Appends from concurrent builders serialise on the manager lock;
// reads go through ReadAt and need no lock.
func (m *Manager) writeChunk(b []byte) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.chunks == nil {
		f, err := m.tempFile("affidavit-chunks-*")
		if err != nil {
			return 0, err
		}
		m.chunks = f
	}
	off := m.chunkOff
	if _, err := m.chunks.WriteAt(b, off); err != nil {
		return 0, err
	}
	m.chunkOff += int64(len(b))
	return off, nil
}

// readChunk reads a chunk back from the shared file.
func (m *Manager) readChunk(b []byte, off int64) error {
	m.mu.Lock()
	f := m.chunks
	m.mu.Unlock()
	if f == nil {
		return fmt.Errorf("spill: no chunk file")
	}
	_, err := f.ReadAt(b, off)
	return err
}

// Stats counts one scope's spill activity — a run, a snapshot ingest —
// with atomic counters, so concurrent refinements and builders report into
// one place. The nil *Stats discards.
type Stats struct {
	bytes atomic.Int64
	parts atomic.Int64
}

// Note records written bytes and external partitions.
func (s *Stats) Note(bytes int64, partitions int) {
	if s == nil {
		return
	}
	s.bytes.Add(bytes)
	s.parts.Add(int64(partitions))
}

// Bytes returns the total bytes spilled in this scope.
func (s *Stats) Bytes() int64 {
	if s == nil {
		return 0
	}
	return s.bytes.Load()
}

// Partitions returns the external partitions created in this scope.
func (s *Stats) Partitions() int64 {
	if s == nil {
		return 0
	}
	return s.parts.Load()
}

// ParseSize parses a human-readable byte size: a plain integer (bytes) or
// an integer with one of the suffixes KB/MB/GB (decimal) or KiB/MiB/GiB
// (binary), case-insensitive, e.g. "256MiB", "1gb", "65536". The empty
// string and "0" parse to 0 (no budget).
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	mult := int64(1)
	lower := strings.ToLower(t)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1000}, {"mb", 1000 * 1000}, {"gb", 1000 * 1000 * 1000},
		{"b", 1},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.mult
			t = strings.TrimSpace(t[:len(t)-len(u.suffix)])
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spill: bad size %q (want e.g. 256MiB, 64KB, 1073741824)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("spill: size must be ≥ 0, got %q", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("spill: size %q overflows", s)
	}
	return n * mult, nil
}

// FormatSize renders a byte count in the binary unit ParseSize accepts.
func FormatSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return strconv.FormatInt(n, 10)
}

// putInt32s encodes codes little-endian into b (len(b) ≥ 4·len(codes)).
func putInt32s(b []byte, codes []int32) {
	for i, c := range codes {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(c))
	}
}

// getInt32s decodes len(dst) codes from b.
func getInt32s(dst []int32, b []byte) {
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
}
