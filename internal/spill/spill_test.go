package spill

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1024", 1024, false},
		{"64KiB", 64 << 10, false},
		{"256MiB", 256 << 20, false},
		{"1GiB", 1 << 30, false},
		{"1kb", 1000, false},
		{"2MB", 2_000_000, false},
		{"3gb", 3_000_000_000, false},
		{" 16 MiB ", 16 << 20, false},
		{"12B", 12, false},
		{"-1", 0, true},
		{"cat", 0, true},
		{"12TiB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseSize(%q): err = %v, want err %v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFormatSizeRoundTrips(t *testing.T) {
	for _, n := range []int64{0, 17, 1 << 10, 64 << 10, 256 << 20, 1 << 30, 4097} {
		got, err := ParseSize(FormatSize(n))
		if err != nil || got != n {
			t.Errorf("ParseSize(FormatSize(%d)) = %d, %v", n, got, err)
		}
	}
}

// TestIntsSpillsAndReadsBack drives a column past the table share so cold
// chunks hit disk, then checks every access path returns the appended
// sequence.
func TestIntsSpillsAndReadsBack(t *testing.T) {
	m := NewManager(4*chunkBytes, t.TempDir()) // share = 2 chunks resident
	st := &Stats{}
	c := m.NewInts(st)
	const n = 7*chunkLen + 123
	for i := 0; i < n; i++ {
		c.Append(int32(i * 3))
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	if st.Bytes() == 0 {
		t.Fatal("no chunks spilled despite a 2-chunk share")
	}
	got := c.AppendTo(nil)
	if len(got) != n {
		t.Fatalf("AppendTo len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int32(i*3) {
			t.Fatalf("AppendTo[%d] = %d, want %d", i, v, i*3)
		}
	}
	// Random access across chunk boundaries, including the tail.
	for _, i := range []int{0, 1, chunkLen - 1, chunkLen, 3*chunkLen + 7, n - 1} {
		if v := c.At(i); v != int32(i*3) {
			t.Fatalf("At(%d) = %d, want %d", i, v, i*3)
		}
	}
}

// TestIntsConcurrentReads exercises the page cache under -race.
func TestIntsConcurrentReads(t *testing.T) {
	m := NewManager(chunkBytes, t.TempDir())
	c := m.NewInts(nil)
	const n = 5 * chunkLen
	for i := 0; i < n; i++ {
		c.Append(int32(i))
	}
	c.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				if v := c.At(i); v != int32(i) {
					t.Errorf("At(%d) = %d", i, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPagerRoundTrips(t *testing.T) {
	m := NewManager(1, t.TempDir())
	st := &Stats{}
	const parts, recs = 5, 50000
	p, err := m.NewPager(parts, 8, st)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rec := make([]byte, 8)
	for i := 0; i < recs; i++ {
		binary.LittleEndian.PutUint32(rec, uint32(i))
		binary.LittleEndian.PutUint32(rec[4:], uint32(i*7))
		if err := p.Write(i%parts, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Partitions() != parts {
		t.Fatalf("partitions = %d, want %d", st.Partitions(), parts)
	}
	if st.Bytes() != int64(recs*8) {
		t.Fatalf("bytes = %d, want %d", st.Bytes(), recs*8)
	}
	total := 0
	for part := 0; part < parts; part++ {
		want := part
		if err := p.ReadPart(part, func(rec []byte) error {
			i := int(binary.LittleEndian.Uint32(rec))
			j := int(binary.LittleEndian.Uint32(rec[4:]))
			if i != want || j != i*7 {
				return fmt.Errorf("partition %d: got (%d, %d), want (%d, %d)", part, i, j, want, want*7)
			}
			want += parts
			total++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if total != recs {
		t.Fatalf("replayed %d records, want %d", total, recs)
	}
}

// TestIntsReadErrorPanicsTyped: a failed chunk read panics with a
// *ReadError — the typed value search.Run's containment boundary keys on
// — never with a bare string.
func TestIntsReadErrorPanicsTyped(t *testing.T) {
	m := NewManager(1, t.TempDir()) // 1-byte budget: every chunk spills
	c := m.NewInts(nil)
	for i := 0; i < 2*chunkLen; i++ {
		c.Append(int32(i))
	}
	// Sabotage the backing file; the next cold read must fail.
	m.mu.Lock()
	m.chunks.Close()
	m.mu.Unlock()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("read from a closed spill file did not panic")
		}
		re, ok := p.(*ReadError)
		if !ok {
			t.Fatalf("panic value is %T, want *ReadError", p)
		}
		if re.Unwrap() == nil {
			t.Fatal("ReadError carries no cause")
		}
	}()
	c.At(0)
}

func TestManagerSizing(t *testing.T) {
	m := NewManager(1<<20, "")
	if !m.ShouldSpillGroup(1 << 19) {
		t.Error("group estimate above budget/4 should spill")
	}
	if m.ShouldSpillGroup(1 << 10) {
		t.Error("tiny group estimate should not spill")
	}
	if p := m.GroupPartitions(1 << 22); p < 2 || p > maxPartitions {
		t.Errorf("partitions out of range: %d", p)
	}
	var nilM *Manager
	if nilM.Active() || nilM.ShouldSpillGroup(1<<40) || nilM.ShouldSpillMatch(1<<40) {
		t.Error("nil manager must never spill")
	}
	if NewManager(0, "").Active() {
		t.Error("zero budget must be inactive")
	}
}
