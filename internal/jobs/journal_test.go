package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeJournalFile(t testing.TB, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayLastLineWins(t *testing.T) {
	lines := [][]byte{}
	for _, rec := range []Record{
		{ID: "a", Seq: 0, State: StatePending},
		{ID: "b", Seq: 1, State: StatePending},
		{ID: "a", Seq: 0, State: StateRunning, Attempts: 1},
		{ID: "a", Seq: 0, State: StateCompleted, Attempts: 1, ContentType: "application/json"},
	} {
		b, _ := json.Marshal(rec)
		lines = append(lines, append(b, '\n'))
	}
	var data []byte
	for _, l := range lines {
		data = append(data, l...)
	}
	recs, keep, err := replayJournal(writeJournalFile(t, data))
	if err != nil {
		t.Fatal(err)
	}
	if keep != int64(len(data)) {
		t.Fatalf("valid prefix %d, want %d", keep, len(data))
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if recs[0].ID != "a" || recs[0].State != StateCompleted || recs[0].Attempts != 1 {
		t.Fatalf("last line did not win: %+v", recs[0])
	}
	if recs[1].ID != "b" || recs[1].State != StatePending {
		t.Fatalf("record b mangled: %+v", recs[1])
	}
}

func TestReplayStopsAtCorruptLine(t *testing.T) {
	good, _ := json.Marshal(Record{ID: "a", Seq: 0, State: StatePending})
	data := append(append([]byte{}, good...), '\n')
	data = append(data, []byte("{\"id\":\"b\",\"state\":\"nonsense\"}\n{\"id\":\"c\"")...)
	recs, keep, err := replayJournal(writeJournalFile(t, data))
	if err != nil {
		t.Fatal(err)
	}
	if keep != int64(len(good)+1) {
		t.Fatalf("keep=%d, want %d (stop at the first invalid line)", keep, len(good)+1)
	}
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("replay past corruption: %+v", recs)
	}
}

// FuzzJobJournal feeds arbitrary bytes through replay and checks the
// decode round-trip: whatever replay accepts must re-encode to a journal
// that replays to the identical record set (a fixed point), and replay
// must never panic or accept an invalid state.
func FuzzJobJournal(f *testing.F) {
	seedRec, _ := json.Marshal(Record{ID: "a", Seq: 3, State: StateRunning, Attempts: 2})
	f.Add(append(seedRec, '\n'))
	f.Add([]byte("{\"id\":\"x\",\"state\":\"pending\"}\n{\"id\":\"x\",\"state\":\"completed\"}\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, keep, err := replayJournal(writeJournalFile(t, data))
		if err != nil {
			t.Skip() // I/O-level failure only; nothing to round-trip
		}
		if keep < 0 || keep > int64(len(data)) {
			t.Fatalf("keep=%d out of range [0,%d]", keep, len(data))
		}
		encode := func(recs []Record) []byte {
			var out []byte
			for _, rec := range recs {
				if rec.validate() != nil {
					t.Fatalf("replay accepted an invalid record: %+v", rec)
				}
				line, err := json.Marshal(rec)
				if err != nil {
					t.Fatalf("re-encoding replayed record: %v", err)
				}
				out = append(out, append(line, '\n')...)
			}
			return out
		}
		// encode∘replay must be a fixed point: a journal the store itself
		// wrote replays losslessly. (The first replay may normalise, e.g.
		// compacting whitespace inside the raw stats message.)
		reencoded := encode(recs)
		recs2, keep2, err := replayJournal(writeJournalFile(t, reencoded))
		if err != nil {
			t.Fatalf("replaying re-encoded journal: %v", err)
		}
		if keep2 != int64(len(reencoded)) {
			t.Fatalf("re-encoded journal has a corrupt tail: keep=%d len=%d", keep2, len(reencoded))
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round-trip changed the record count: %d vs %d", len(recs2), len(recs))
		}
		if !reflect.DeepEqual(encode(recs2), reencoded) {
			t.Fatalf("journal round-trip diverged:\n%s\nvs\n%s", encode(recs2), reencoded)
		}
	})
}
