package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// journal is the append-only JSONL transition log: one full Record per
// line, last line per id wins on replay. Appends fsync before returning,
// so an acknowledged state transition survives a crash; a torn final
// line (power cut mid-write) is detected on open and truncated away
// rather than poisoning the store.
type journal struct {
	path  string
	f     *os.File
	lines int // appended since open/compaction, drives compaction
}

// openJournal opens (creating if needed) the journal at path and replays
// it. The returned records are the live set — one per job id, last
// transition wins — ordered by Seq.
func openJournal(path string) (*journal, []Record, error) {
	recs, keep, err := replayJournal(path)
	if err != nil {
		return nil, nil, err
	}
	// Drop a torn or corrupt tail before reopening for append: everything
	// past the last decodable line is garbage from an interrupted write.
	if fi, statErr := os.Stat(path); statErr == nil && fi.Size() > keep {
		if err := os.Truncate(path, keep); err != nil {
			return nil, nil, fmt.Errorf("jobs: truncating journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	return &journal{path: path, f: f}, recs, nil
}

// replayJournal decodes path line by line. It returns the live records
// (last line per id, ordered by Seq) and the byte length of the valid
// prefix; decoding stops at the first corrupt line. A missing file
// replays empty.
func replayJournal(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: opening journal: %w", err)
	}
	defer f.Close()
	var (
		byID = make(map[string]*Record)
		keep int64
	)
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the final append was cut mid-line.
			// Treat it as torn — keep stays at the last full line.
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("jobs: reading journal: %w", err)
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.validate() != nil {
			break // corrupt line: everything from here on is the torn tail
		}
		keep += int64(len(line))
		cp := rec
		byID[rec.ID] = &cp
	}
	recs := make([]Record, 0, len(byID))
	//affidavit:ordered records are sorted by Seq below before use
	for _, rec := range byID {
		recs = append(recs, *rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, keep, nil
}

// append writes one transition and fsyncs it — the durability point for
// every state change.
func (j *journal) append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("jobs: appending journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: syncing journal: %w", err)
	}
	j.lines++
	return nil
}

// compact snapshots the live records into a fresh journal: write to a
// temp file, fsync, rename over the old log. live must already be in Seq
// order so a compacted journal replays identically to the log it
// replaces.
func (j *journal) compact(live []Record) error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<16)
	for _, rec := range live {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("jobs: compacting journal: %w", err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("jobs: compacting journal: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	syncDir(dir)
	old := j.f
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: reopening compacted journal: %w", err)
	}
	old.Close()
	j.f = f
	j.lines = 0
	return nil
}

func (j *journal) close() error {
	return j.f.Close()
}
