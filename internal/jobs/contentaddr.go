package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sync"
)

// Address hashes the given parts into a content address. Parts are
// length-prefixed before hashing, so ("ab","c") and ("a","bc") address
// differently — the address is a function of the part sequence, not of
// the concatenated bytes.
func Address(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BlobStore holds canonicalized snapshot uploads keyed by their SHA-256,
// so a requeued job can re-ingest its inputs after a crash. With a
// directory it is durable (blobs/<hash> files, fsynced); without one it
// is a process-local map — exactly as durable as the in-memory job store
// it accompanies.
//
// Blobs are immutable and content-keyed: writing the same bytes twice is
// a no-op, so concurrent identical uploads cost one file.
type BlobStore struct {
	dir string // "" = in-memory

	mu  sync.Mutex
	mem map[string][]byte
}

// newBlobStore returns a blob store rooted at dir ("" for in-memory).
func newBlobStore(dir string) (*BlobStore, error) {
	if dir == "" {
		return &BlobStore{mem: make(map[string][]byte)}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: blob store: %w", err)
	}
	return &BlobStore{dir: dir}, nil
}

// Put stores data and returns its hash. Existing blobs are left alone —
// content addressing makes the write idempotent.
func (b *BlobStore) Put(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	if b.dir == "" {
		b.mu.Lock()
		if _, ok := b.mem[hash]; !ok {
			b.mem[hash] = append([]byte(nil), data...)
		}
		b.mu.Unlock()
		return hash, nil
	}
	path := filepath.Join(b.dir, hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	if err := writeFileSync(path, data); err != nil {
		return "", fmt.Errorf("jobs: blob store: %w", err)
	}
	return hash, nil
}

// BlobWriter streams one blob into the store: bytes are hashed as they
// arrive, and in durable mode they are spooled to a temp file that
// Commit renames to its content address — an upload is never buffered
// whole in memory on its way to the blob store. An in-memory store only
// tracks the hash: without a journal there is no replay, so the bytes
// would never be read back.
type BlobWriter struct {
	b   *BlobStore
	h   hash.Hash
	tmp *os.File
	err error
}

// NewWriter starts a streaming blob write. Errors are deferred to
// Commit so the writer can sit inside an io.TeeReader chain.
func (b *BlobStore) NewWriter() *BlobWriter {
	w := &BlobWriter{b: b, h: sha256.New()}
	if b.dir != "" {
		tmp, err := os.CreateTemp(b.dir, ".blob-*")
		if err != nil {
			w.err = fmt.Errorf("jobs: blob store: %w", err)
			return w
		}
		w.tmp = tmp
	}
	return w
}

// Write hashes (and, durably, spools) p.
func (w *BlobWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	w.h.Write(p)
	if w.tmp != nil {
		if _, err := w.tmp.Write(p); err != nil {
			w.err = fmt.Errorf("jobs: blob store: %w", err)
			return 0, w.err
		}
	}
	return len(p), nil
}

// Commit finalises the blob and returns its content hash. In durable
// mode the spooled bytes are fsynced and renamed to blobs/<hash>;
// committing content that is already stored discards the spool.
func (w *BlobWriter) Commit() (string, error) {
	if w.err != nil {
		w.Abort()
		return "", w.err
	}
	sum := hex.EncodeToString(w.h.Sum(nil))
	if w.tmp == nil {
		return sum, nil
	}
	tmp := w.tmp
	w.tmp = nil
	defer os.Remove(tmp.Name())
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("jobs: blob store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("jobs: blob store: %w", err)
	}
	path := filepath.Join(w.b.dir, sum)
	if _, err := os.Stat(path); err == nil {
		return sum, nil // identical blob already stored
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("jobs: blob store: %w", err)
	}
	syncDir(w.b.dir)
	return sum, nil
}

// Abort discards the write.
func (w *BlobWriter) Abort() {
	if w.tmp != nil {
		w.tmp.Close()
		os.Remove(w.tmp.Name())
		w.tmp = nil
	}
}

// Get returns the blob's bytes.
func (b *BlobStore) Get(hash string) ([]byte, error) {
	if b.dir == "" {
		b.mu.Lock()
		data, ok := b.mem[hash]
		b.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("jobs: blob %s: %w", hash, os.ErrNotExist)
		}
		return append([]byte(nil), data...), nil
	}
	data, err := os.ReadFile(filepath.Join(b.dir, hash))
	if err != nil {
		return nil, fmt.Errorf("jobs: blob %s: %w", hash, err)
	}
	return data, nil
}

// writeFileSync writes data to path atomically: temp file in the same
// directory, fsync, rename, directory fsync (best effort — some
// filesystems reject directory syncs).
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a rename into it survives power loss.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() // best effort: directory fsync is advisory on some systems
	d.Close()
}
