package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// okRunner completes every job with a body derived from its record.
func okRunner(ctx context.Context, rec Record, payload any) (*Outcome, error) {
	return &Outcome{
		Body:        []byte("result:" + rec.Table),
		ContentType: "text/plain",
		Stats:       []byte(`{}`),
		TraceID:     "trace-" + rec.ID,
	}, nil
}

func waitState(t *testing.T, j *Job, want State) Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec := j.Record()
		if rec.State == want {
			return rec
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (now %s)", j.ID(), want, j.Record().State)
	return Record{}
}

func TestPoolCompletes(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(s, okRunner, PoolOptions{Workers: 3})
	p.Start(context.Background())
	defer func() { p.Close(); s.Close() }()
	var jobsList []*Job
	for i := 0; i < 5; i++ {
		j, _, err := s.Submit(Spec{Addr: fmt.Sprintf("addr-%d", i), Table: fmt.Sprintf("t%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		jobsList = append(jobsList, j)
	}
	for i, j := range jobsList {
		rec, err := s.Wait(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != StateCompleted || rec.Attempts != 1 {
			t.Fatalf("job %d: %+v", i, rec)
		}
		body, _, err := s.Result(j.ID())
		if err != nil || string(body) != "result:t"+fmt.Sprint(i) {
			t.Fatalf("job %d result %q err=%v", i, body, err)
		}
		if rec.TraceID != "trace-"+rec.ID {
			t.Fatalf("trace id not recorded: %+v", rec)
		}
	}
	if m := s.Metrics(); m.Completed != 5 || m.Queued != 0 || m.Running != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestPoolRetriesTransient(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	runner := func(ctx context.Context, rec Record, payload any) (*Outcome, error) {
		if calls.Add(1) < 3 {
			return nil, Transient(errors.New("flaky backend"))
		}
		return okRunner(ctx, rec, payload)
	}
	p := NewPool(s, runner, PoolOptions{Workers: 1, MaxAttempts: 3, Backoff: time.Millisecond})
	p.Start(context.Background())
	defer func() { p.Close(); s.Close() }()
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	rec, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateCompleted || rec.Attempts != 3 {
		t.Fatalf("retried job: %+v", rec)
	}
	if m := s.Metrics(); m.Retried != 2 {
		t.Fatalf("retried counter: %+v", m)
	}
}

func TestPoolExhaustsAttempts(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	runner := func(ctx context.Context, rec Record, payload any) (*Outcome, error) {
		return nil, Transient(errors.New("always down"))
	}
	p := NewPool(s, runner, PoolOptions{Workers: 1, MaxAttempts: 2, Backoff: time.Millisecond})
	p.Start(context.Background())
	defer func() { p.Close(); s.Close() }()
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	rec, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateError || rec.Attempts != 2 || rec.Error != "always down" {
		t.Fatalf("exhausted job: %+v", rec)
	}
}

func TestPoolPermanentErrorNotRetried(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	runner := func(ctx context.Context, rec Record, payload any) (*Outcome, error) {
		return nil, errors.New("schema mismatch")
	}
	p := NewPool(s, runner, PoolOptions{Workers: 1, MaxAttempts: 5, Backoff: time.Millisecond})
	p.Start(context.Background())
	defer func() { p.Close(); s.Close() }()
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	rec, _ := s.Wait(context.Background(), j)
	if rec.State != StateError || rec.Attempts != 1 {
		t.Fatalf("permanent error retried: %+v", rec)
	}
}

func TestPoolCancelRunning(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	runner := func(ctx context.Context, rec Record, payload any) (*Outcome, error) {
		close(started)
		<-ctx.Done()
		// Mirror the engine: a cancelled run returns best-so-far, not an
		// error.
		return &Outcome{Cancelled: true, Stats: []byte(`{"polls":1}`)}, nil
	}
	p := NewPool(s, runner, PoolOptions{Workers: 1})
	p.Start(context.Background())
	defer func() { p.Close(); s.Close() }()
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	<-started
	rec, err := s.Cancel(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRunning {
		t.Fatalf("cancel of a running job should report running (cancel in flight), got %s", rec.State)
	}
	final, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("cancelled run landed as %s", final.State)
	}
	if string(final.Stats) != `{"polls":1}` {
		t.Fatalf("cancelled run lost its partial stats: %s", final.Stats)
	}
}

func TestPoolDeadlineFailsWithPartialStats(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	runner := func(ctx context.Context, rec Record, payload any) (*Outcome, error) {
		<-ctx.Done()
		return &Outcome{Cancelled: true, Stats: []byte(`{"polls":7}`)}, nil
	}
	p := NewPool(s, runner, PoolOptions{Workers: 1, Timeout: 5 * time.Millisecond})
	p.Start(context.Background())
	defer func() { p.Close(); s.Close() }()
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	rec, err := s.Wait(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateError || !rec.Deadline {
		t.Fatalf("deadline cut: %+v", rec)
	}
	if string(rec.Stats) != `{"polls":7}` {
		t.Fatalf("partial stats lost: %s", rec.Stats)
	}
}

func TestPoolShutdownRequeues(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	runner := func(ctx context.Context, rec Record, payload any) (*Outcome, error) {
		close(started)
		<-ctx.Done()
		return &Outcome{Cancelled: true}, nil
	}
	p := NewPool(s, runner, PoolOptions{Workers: 1})
	p.Start(context.Background())
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	<-started
	p.Close() // shutdown, not cancel: the job must return to the queue
	rec := j.Record()
	if rec.State != StatePending || rec.Requeues != 1 {
		t.Fatalf("shutdown did not requeue: %+v", rec)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The journaled pending line survives to the next process run, which
	// completes the job from its blobs.
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPool(s2, okRunner, PoolOptions{Workers: 1})
	p2.Start(context.Background())
	defer func() { p2.Close(); s2.Close() }()
	j2, ok := s2.Get(j.ID())
	if !ok {
		t.Fatal("requeued job lost across restart")
	}
	rec2, err := s2.Wait(context.Background(), j2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.State != StateCompleted || rec2.Requeues != 1 {
		t.Fatalf("requeued job did not complete after restart: %+v", rec2)
	}
}

// TestWorkerAffinitySerializesTables checks the sharding contract: jobs
// for one table never run concurrently and execute in submission order,
// even with many workers.
func TestWorkerAffinitySerializesTables(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	inflight := map[string]int{}
	order := map[string][]string{}
	runner := func(ctx context.Context, rec Record, payload any) (*Outcome, error) {
		mu.Lock()
		inflight[rec.Table]++
		if inflight[rec.Table] > 1 {
			mu.Unlock()
			return nil, errors.New("two jobs for one table ran concurrently")
		}
		order[rec.Table] = append(order[rec.Table], rec.ID)
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		inflight[rec.Table]--
		mu.Unlock()
		return okRunner(ctx, rec, payload)
	}
	p := NewPool(s, runner, PoolOptions{Workers: 4})
	p.Start(context.Background())
	defer func() { p.Close(); s.Close() }()
	var jobsByTable [2][]*Job
	for i := 0; i < 6; i++ {
		table := fmt.Sprintf("table-%d", i%2)
		j, _, err := s.Submit(Spec{Addr: fmt.Sprintf("addr-%d", i), Table: table})
		if err != nil {
			t.Fatal(err)
		}
		jobsByTable[i%2] = append(jobsByTable[i%2], j)
	}
	for ti := range jobsByTable {
		for _, j := range jobsByTable[ti] {
			rec, err := s.Wait(context.Background(), j)
			if err != nil {
				t.Fatal(err)
			}
			if rec.State != StateCompleted {
				t.Fatalf("affinity job failed: %+v", rec)
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for ti := range jobsByTable {
		table := fmt.Sprintf("table-%d", ti)
		for i, j := range jobsByTable[ti] {
			if order[table][i] != j.ID() {
				t.Fatalf("table %s ran out of submission order: %v", table, order[table])
			}
		}
	}
}

func TestBackoffDoubling(t *testing.T) {
	p := NewPool(nil, nil, PoolOptions{Backoff: 100 * time.Millisecond})
	for _, tc := range []struct {
		attempts int
		want     time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{20, 30 * time.Second},
	} {
		if got := p.backoffFor(tc.attempts); got != tc.want {
			t.Errorf("backoffFor(%d) = %v, want %v", tc.attempts, got, tc.want)
		}
	}
}
