package jobs

import (
	"context"
	"errors"
	"hash/fnv"
	"time"
)

// Outcome is what a Runner hands back for one job execution.
type Outcome struct {
	// Body is the rendered result (stored verbatim; fetches are
	// byte-identical across dedupe joiners).
	Body []byte
	// ContentType is Body's MIME type.
	ContentType string
	// Stats is the run's search statistics, pre-encoded (partial when
	// Cancelled).
	Stats []byte
	// TraceID joins the job to its run trace.
	TraceID string
	// Cancelled reports the run's context ended mid-search and Body is
	// absent; the pool inspects the context cause to decide between
	// cancel, deadline and shutdown-requeue.
	Cancelled bool
}

// Runner executes one job under ctx. rec is a snapshot of the job's
// record; payload is the submission's non-durable state (nil when the
// job was replayed from the journal — reconstruct from the blobs).
// Returning an error wrapped by Transient makes the attempt retryable.
type Runner func(ctx context.Context, rec Record, payload any) (*Outcome, error)

// PoolOptions tunes the worker pool.
type PoolOptions struct {
	// Workers is the number of drain goroutines (0 = default 2). Jobs
	// shard across workers by table hash, so all jobs for one table run
	// on one worker in submission order — warm chains stay ordered and
	// the table's dictionary pool stays hot.
	Workers int
	// MaxAttempts bounds runner executions per submission, first attempt
	// included (0 = default 3).
	MaxAttempts int
	// Backoff is the base retry delay, doubled each further attempt
	// (0 = default 250ms).
	Backoff time.Duration
	// Timeout bounds each attempt (0 = unlimited). Expiry fails the job
	// with its partial statistics — deadline cuts are not retried.
	Timeout time.Duration
}

// Pool drains the store through a Runner.
type Pool struct {
	store   *Store
	run     Runner
	opts    PoolOptions
	cancel  context.CancelCauseFunc
	done    chan struct{}
	workers int
}

// NewPool builds a pool over st. Call Start to begin draining.
func NewPool(st *Store, run Runner, opts PoolOptions) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 250 * time.Millisecond
	}
	return &Pool{store: st, run: run, opts: opts, workers: opts.Workers}
}

// Start launches the workers under ctx.
func (p *Pool) Start(ctx context.Context) {
	ctx, cancel := context.WithCancelCause(ctx)
	p.cancel = cancel
	done := make(chan struct{})
	p.done = done
	running := make(chan struct{}, p.workers)
	for w := 0; w < p.workers; w++ {
		running <- struct{}{}
		go func(wid int) {
			defer func() { <-running }()
			p.worker(ctx, wid)
		}(w)
	}
	go func() {
		for i := 0; i < p.workers; i++ {
			running <- struct{}{}
		}
		close(done)
	}()
}

// Close stops the pool: running jobs see ErrShutdown as their context
// cause, unwind, and are requeued (journaled back to pending), then
// Close waits for every worker to exit. Close the store afterwards.
func (p *Pool) Close() {
	if p.cancel == nil {
		return
	}
	p.cancel(ErrShutdown)
	<-p.done
}

// worker drains jobs whose table hashes to wid until ctx ends.
func (p *Pool) worker(ctx context.Context, wid int) {
	for {
		j, wait, wake := p.store.claimFor(wid, p.workers)
		if j == nil {
			if wait <= 0 {
				wait = time.Hour // nothing scheduled: sleep until woken
			}
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-wake:
				t.Stop()
			case <-t.C:
			}
			continue
		}
		p.runOne(ctx, j)
		if ctx.Err() != nil {
			return
		}
	}
}

// runOne executes one claimed job and lands its terminal (or requeue /
// retry) transition.
func (p *Pool) runOne(ctx context.Context, j *Job) {
	jctx, cancel := context.WithCancelCause(ctx)
	tcancel := context.CancelFunc(func() {})
	if p.opts.Timeout > 0 {
		jctx, tcancel = context.WithTimeout(jctx, p.opts.Timeout)
	}
	defer tcancel()
	defer cancel(nil)
	rec, ok := p.store.startRun(j, cancel)
	if !ok {
		return // cancelled between claim and start
	}
	out, err := p.run(jctx, rec, p.store.payload(j))
	cause := context.Cause(jctx)
	interrupted := err != nil || out == nil || out.Cancelled
	switch {
	case interrupted && errors.Is(cause, ErrShutdown):
		// Drain-on-shutdown: the journaled pending line lets the next
		// process run pick the job back up.
		p.store.requeue(j)
	case err == nil && out != nil && !out.Cancelled:
		p.store.complete(j, out)
	case errors.Is(cause, ErrCancelRequested):
		p.store.cancelDone(j, out)
	case out != nil && out.Cancelled, errors.Is(cause, context.DeadlineExceeded):
		// The job's own run budget cut it: terminal, with partial stats.
		p.store.failDeadline(j, out)
	case err != nil && IsTransient(err) && rec.Attempts < p.opts.MaxAttempts:
		p.store.retry(j, err.Error(), p.backoffFor(rec.Attempts))
	case err != nil:
		p.store.fail(j, err.Error(), out)
	default:
		p.store.fail(j, "runner returned no outcome", nil)
	}
}

// backoffFor doubles the base delay per completed attempt, capped at 30s.
func (p *Pool) backoffFor(attempts int) time.Duration {
	d := p.opts.Backoff
	for i := 1; i < attempts && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// workerFor shards a table name onto a worker: FNV-1a so every process
// routes a table to the same worker index for a given pool size.
func workerFor(table string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(table))
	return int(h.Sum32() % uint32(n))
}
