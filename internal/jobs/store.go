package jobs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Options configures Open.
type Options struct {
	// Dir roots the durable state (journal.jsonl, blobs/, results/).
	// Empty means a process-local in-memory store: same queue, dedupe and
	// cancel semantics, no crash durability.
	Dir string
	// CompactEvery snapshots the journal after this many appended
	// transitions (0 = default 256). Compaction rewrites the live records
	// and renames the fresh log into place.
	CompactEvery int
	// Now is the clock; nil means time.Now. Tests inject a fake. It only
	// paces retry backoff — no wall-clock value is ever journaled.
	Now func() time.Time
}

// defaultCompactEvery bounds journal growth between compactions.
const defaultCompactEvery = 256

// Store is the job queue + result store. All methods are safe for
// concurrent use.
type Store struct {
	dir          string
	blobs        *BlobStore
	now          func() time.Time
	compactEvery int

	mu       sync.Mutex
	jrnl     *journal // nil in memory mode
	jobs     map[string]*Job
	byAddr   map[string]*Job
	order    []*Job // submission order (ascending Seq) — the listing order
	seq      uint64
	wake     chan struct{} // closed+replaced to broadcast queue changes
	closed   bool
	closedCh chan struct{}
	// journalErr latches the first journal write failure: the store keeps
	// serving from memory (availability over durability, like the spill
	// manager's advisory budget) and Close surfaces the error.
	journalErr error

	submitted, dedupeHits, completed, failed, cancelled, retried, requeued int64
}

// Job is a handle on one queued computation. The handle stays valid for
// the store's lifetime; its state advances underneath it.
type Job struct {
	st      *Store
	rec     Record
	payload any
	result  []byte
	done    chan struct{} // closed on terminal transition
	cancel  context.CancelCauseFunc
	readyAt time.Time // earliest dispatch (retry backoff); zero = now
	claimed bool
}

// ID returns the job's stable identifier.
func (j *Job) ID() string {
	j.st.mu.Lock()
	defer j.st.mu.Unlock()
	return j.rec.ID
}

// Record returns a copy of the job's current record.
func (j *Job) Record() Record {
	j.st.mu.Lock()
	defer j.st.mu.Unlock()
	return j.rec
}

// Spec describes one submission.
type Spec struct {
	// Addr is the content address ("" = never dedupe; the job gets a
	// unique id instead).
	Addr   string
	Table  string
	Format string
	Warm   bool
	// Kind tags non-/explain jobs for runner dispatch ("" = explain).
	Kind string
	// SnapshotID/ParentID carry catalog lineage through the journal.
	SnapshotID, ParentID string
	// SourceBlob/TargetBlob address the canonical uploads in Blobs().
	SourceBlob, TargetBlob string
	// Payload is non-durable run state handed to the Runner (the daemon
	// passes its already-ingested tables and the request's trace
	// recorder). Jobs replayed from the journal run with a nil payload
	// and must reconstruct from the blobs.
	Payload any
}

// Open opens (or creates) a store. With Options.Dir set, the journal is
// replayed first: pending jobs are requeued, jobs found mid-run are
// requeued with a bumped Requeues counter, completed jobs keep serving
// their stored results.
func Open(opts Options) (*Store, error) {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = defaultCompactEvery
	}
	s := &Store{
		dir:          opts.Dir,
		now:          opts.Now,
		compactEvery: opts.CompactEvery,
		jobs:         make(map[string]*Job),
		byAddr:       make(map[string]*Job),
		wake:         make(chan struct{}),
		closedCh:     make(chan struct{}),
	}
	blobDir := ""
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: store dir: %w", err)
		}
		if err := os.MkdirAll(filepath.Join(opts.Dir, "results"), 0o755); err != nil {
			return nil, fmt.Errorf("jobs: results dir: %w", err)
		}
		blobDir = filepath.Join(opts.Dir, "blobs")
	}
	blobs, err := newBlobStore(blobDir)
	if err != nil {
		return nil, err
	}
	s.blobs = blobs
	if opts.Dir == "" {
		return s, nil
	}
	jrnl, recs, err := openJournal(filepath.Join(opts.Dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	s.jrnl = jrnl
	for _, rec := range recs {
		j := &Job{st: s, rec: rec, done: make(chan struct{})}
		switch rec.State {
		case StateRunning:
			// Orphaned by a crash mid-run: requeue. The journal gets the
			// corrected line so a second crash doesn't bump Requeues twice
			// for the same interruption.
			j.rec.State = StatePending
			j.rec.Requeues++
			if err := jrnl.append(j.rec); err != nil {
				return nil, err
			}
		case StateCompleted:
			if _, err := os.Stat(s.resultPath(rec.ID)); err != nil {
				// The journal promised a result the disk lost: surface the
				// loss as a terminal error instead of serving nothing.
				j.rec.State = StateError
				j.rec.Error = "result lost before shutdown; resubmit the pair"
				if err := jrnl.append(j.rec); err != nil {
					return nil, err
				}
			}
		}
		if j.rec.State.Terminal() {
			close(j.done)
		}
		s.jobs[j.rec.ID] = j
		if j.rec.Addr != "" {
			s.byAddr[j.rec.Addr] = j
		}
		s.order = append(s.order, j)
		if j.rec.Seq >= s.seq {
			s.seq = j.rec.Seq + 1
		}
	}
	return s, nil
}

// Blobs returns the store's blob store.
func (s *Store) Blobs() *BlobStore { return s.blobs }

// Submit queues spec, or joins the existing job when spec.Addr matches a
// pending, running or completed submission (created=false, the dedupe
// hit). A previously failed or cancelled address is resurrected: reset
// to pending and run again with the fresh payload.
func (s *Store) Submit(spec Spec) (*Job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if spec.Addr != "" {
		if j, ok := s.byAddr[spec.Addr]; ok {
			if !j.rec.State.Terminal() || j.rec.State == StateCompleted {
				j.rec.DedupeHits++
				s.dedupeHits++
				return j, false, nil
			}
			// Terminal failure: rerun under the same identity.
			j.rec.State = StatePending
			j.rec.Attempts = 0
			j.rec.Error = ""
			j.rec.Deadline = false
			j.rec.Stats = nil
			j.rec.TraceID = ""
			j.rec.ContentType = ""
			j.payload = spec.Payload
			j.result = nil
			j.done = make(chan struct{})
			j.readyAt = time.Time{}
			j.claimed = false
			s.submitted++
			s.appendLocked(j.rec)
			s.broadcastLocked()
			return j, true, nil
		}
	}
	seq := s.seq
	s.seq++
	id := spec.Addr
	if id == "" {
		// Non-dedupable (warm-chain) jobs get a unique id salted with the
		// sequence number — deterministic given the submission order,
		// never colliding across restarts (Seq is restored on replay).
		id = Address("unaddressed", spec.Table, strconv.FormatUint(seq, 10), spec.SourceBlob, spec.TargetBlob)
	}
	if len(id) > 32 {
		id = id[:32] // half the hex address is plenty of identity for an api path
	}
	j := &Job{
		st: s,
		rec: Record{
			ID:         id,
			Seq:        seq,
			Addr:       spec.Addr,
			Table:      spec.Table,
			Format:     spec.Format,
			Warm:       spec.Warm,
			Kind:       spec.Kind,
			SnapshotID: spec.SnapshotID,
			ParentID:   spec.ParentID,
			SourceBlob: spec.SourceBlob,
			TargetBlob: spec.TargetBlob,
			State:      StatePending,
		},
		payload: spec.Payload,
		done:    make(chan struct{}),
	}
	s.jobs[id] = j
	if spec.Addr != "" {
		s.byAddr[spec.Addr] = j
	}
	s.order = append(s.order, j)
	s.submitted++
	s.appendLocked(j.rec)
	s.broadcastLocked()
	return j, true, nil
}

// Get returns the job with the given id.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns every job record in submission order (ascending Seq) —
// the deterministic listing /jobs serves.
func (s *Store) List() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.order))
	for i, j := range s.order {
		out[i] = j.rec
	}
	return out
}

// Cancel requests cancellation of the job with the given id. A pending
// job transitions to cancelled immediately; a running job has its
// context cancelled with ErrCancelRequested (the terminal transition
// lands when the run unwinds); a terminal job is returned unchanged. The
// returned record is the state as of this call.
func (s *Store) Cancel(id string) (Record, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Record{}, ErrNotFound
	}
	switch j.rec.State {
	case StatePending:
		j.rec.State = StateCancelled
		j.claimed = true // a claimed-but-unstarted worker must drop it
		s.cancelled++
		s.appendLocked(j.rec)
		close(j.done)
		rec := j.rec
		s.mu.Unlock()
		return rec, nil
	case StateRunning:
		cancel := j.cancel
		rec := j.rec
		s.mu.Unlock()
		if cancel != nil {
			cancel(ErrCancelRequested)
		}
		return rec, nil
	default:
		rec := j.rec
		s.mu.Unlock()
		return rec, nil
	}
}

// Wait blocks until the job reaches a terminal state and returns its
// record. It returns early with ctx's error if ctx ends, or ErrClosed if
// the store closes first (the daemon maps that to "shutting down").
func (s *Store) Wait(ctx context.Context, j *Job) (Record, error) {
	for {
		s.mu.Lock()
		rec := j.rec
		done := j.done
		s.mu.Unlock()
		if rec.State.Terminal() {
			return rec, nil
		}
		select {
		case <-done:
		case <-s.closedCh:
			return Record{}, ErrClosed
		case <-ctx.Done():
			return Record{}, ctx.Err()
		}
	}
}

// Result returns a completed job's stored body and record.
func (s *Store) Result(id string) ([]byte, Record, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, Record{}, ErrNotFound
	}
	rec := j.rec
	cached := j.result
	s.mu.Unlock()
	if rec.State != StateCompleted {
		return nil, rec, fmt.Errorf("jobs: job %s is %s, not completed", id, rec.State)
	}
	if cached != nil {
		return cached, rec, nil
	}
	body, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		return nil, rec, fmt.Errorf("jobs: reading result: %w", err)
	}
	s.mu.Lock()
	if j.result == nil {
		j.result = body
	}
	s.mu.Unlock()
	return body, rec, nil
}

// Metrics is a point-in-time snapshot of the store's gauges and
// lifetime-of-process counters.
type Metrics struct {
	// Queued and Running are current gauges.
	Queued, Running int
	// The rest count since process start (journal replay does not
	// reconstruct them — Prometheus counters reset on restart anyway).
	Submitted, DedupeHits, Completed, Failed, Cancelled, Retried, Requeued int64
	// JournalError is the latched first journal write failure, "" while
	// the store is durable (or in-memory). A non-empty value means the
	// store degraded to availability-over-durability: jobs keep running
	// but transitions since the failure would not survive a crash.
	JournalError string
}

// Metrics returns the current snapshot.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Submitted:  s.submitted,
		DedupeHits: s.dedupeHits,
		Completed:  s.completed,
		Failed:     s.failed,
		Cancelled:  s.cancelled,
		Retried:    s.retried,
		Requeued:   s.requeued,
	}
	if s.journalErr != nil {
		m.JournalError = s.journalErr.Error()
	}
	for _, j := range s.order {
		switch j.rec.State {
		case StatePending:
			m.Queued++
		case StateRunning:
			m.Running++
		}
	}
	return m
}

// Close marks the store closed, releases waiters and closes the journal.
// Close the worker pool first: a runner finishing after Close cannot
// journal its transition.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.journalErr
	}
	s.closed = true
	close(s.closedCh)
	s.broadcastLocked()
	if s.jrnl != nil {
		if err := s.jrnl.close(); err != nil && s.journalErr == nil {
			s.journalErr = err
		}
	}
	return s.journalErr
}

// resultPath is the durable result file for a job id.
func (s *Store) resultPath(id string) string {
	return filepath.Join(s.dir, "results", id)
}

// appendLocked journals rec and compacts when the log has grown enough.
// Journal failures latch journalErr; the in-memory state stays correct.
func (s *Store) appendLocked(rec Record) {
	if s.jrnl == nil {
		return
	}
	if err := s.jrnl.append(rec); err != nil {
		if s.journalErr == nil {
			s.journalErr = err
		}
		return
	}
	if s.jrnl.lines >= s.compactEvery {
		live := make([]Record, len(s.order))
		for i, j := range s.order {
			live[i] = j.rec
		}
		if err := s.jrnl.compact(live); err != nil && s.journalErr == nil {
			s.journalErr = err
		}
	}
}

// broadcastLocked wakes every worker watching the queue.
func (s *Store) broadcastLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// claimFor hands worker wid (of n) its next due job, marking it claimed.
// When nothing is due it returns the wait until this worker's earliest
// backoff expiry (0 = nothing scheduled at all) and the broadcast
// channel to watch for queue changes.
func (s *Store) claimFor(wid, n int) (*Job, time.Duration, <-chan struct{}) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var wait time.Duration
	for _, j := range s.order {
		if j.rec.State != StatePending || j.claimed {
			continue
		}
		if workerFor(j.rec.Table, n) != wid {
			continue
		}
		if !j.readyAt.IsZero() && j.readyAt.After(now) {
			if d := j.readyAt.Sub(now); wait == 0 || d < wait {
				wait = d
			}
			continue
		}
		j.claimed = true
		return j, 0, s.wake
	}
	return nil, wait, s.wake
}

// payload returns the job's non-durable run state (nil after replay).
func (s *Store) payload(j *Job) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.payload
}

// startRun transitions a claimed job to running and registers its cancel
// function. It refuses (false) when the job was cancelled between claim
// and start.
func (s *Store) startRun(j *Job, cancel context.CancelCauseFunc) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.rec.State != StatePending {
		return j.rec, false
	}
	j.rec.State = StateRunning
	j.rec.Attempts++
	j.cancel = cancel
	s.appendLocked(j.rec)
	return j.rec, true
}

// complete stores the result durably (before the completed journal line,
// so a journaled completion always has its bytes) and closes the job.
func (s *Store) complete(j *Job, out *Outcome) {
	if s.dir != "" {
		if err := writeFileSync(s.resultPath(j.ID()), out.Body); err != nil {
			s.fail(j, fmt.Sprintf("storing result: %v", err), out)
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j.rec.State = StateCompleted
	j.rec.ContentType = out.ContentType
	j.rec.Stats = out.Stats
	j.rec.TraceID = out.TraceID
	j.rec.Error = ""
	j.result = out.Body
	j.cancel = nil
	s.completed++
	s.appendLocked(j.rec)
	close(j.done)
}

// fail terminally errors the job.
func (s *Store) fail(j *Job, msg string, out *Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.rec.State = StateError
	j.rec.Error = msg
	if out != nil {
		j.rec.Stats = out.Stats
		j.rec.TraceID = out.TraceID
	}
	j.cancel = nil
	s.failed++
	s.appendLocked(j.rec)
	close(j.done)
}

// failDeadline terminally errors a job cut by its own run budget,
// keeping the partial statistics for the 503 answer.
func (s *Store) failDeadline(j *Job, out *Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.rec.State = StateError
	j.rec.Error = "deadline exceeded before the explanation finished"
	j.rec.Deadline = true
	if out != nil {
		j.rec.Stats = out.Stats
		j.rec.TraceID = out.TraceID
	}
	j.cancel = nil
	s.failed++
	s.appendLocked(j.rec)
	close(j.done)
}

// cancelDone lands the terminal transition of a DELETE-cancelled run.
func (s *Store) cancelDone(j *Job, out *Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.rec.State = StateCancelled
	if out != nil {
		j.rec.Stats = out.Stats
		j.rec.TraceID = out.TraceID
	}
	j.cancel = nil
	s.cancelled++
	s.appendLocked(j.rec)
	close(j.done)
}

// requeue returns a shutdown-interrupted run to the queue — the
// journaled pending line is what "drain-on-shutdown persists the queue"
// means. Waiters are not released; the next process run finishes the
// job.
func (s *Store) requeue(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.rec.State = StatePending
	j.rec.Requeues++
	j.cancel = nil
	j.claimed = false
	j.readyAt = time.Time{}
	s.requeued++
	s.appendLocked(j.rec)
	s.broadcastLocked()
}

// retry schedules another attempt after backoff, recording the transient
// failure.
func (s *Store) retry(j *Job, msg string, backoff time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.rec.State = StatePending
	j.rec.Error = msg
	j.cancel = nil
	j.claimed = false
	j.readyAt = s.now().Add(backoff)
	s.retried++
	s.appendLocked(j.rec)
	s.broadcastLocked()
}
