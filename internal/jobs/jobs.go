// Package jobs is affidavitd's durable, content-addressed job subsystem:
// a queue + result store that survives restarts on nothing but the
// standard library, and a worker pool that drains it through a
// caller-supplied runner.
//
// Durability is an append-only JSONL journal — one full job record per
// line, fsynced on every state transition — plus periodic snapshot
// compaction (the live records rewritten to a fresh file and renamed into
// place). Recovery replays the journal last-line-per-id-wins, tolerates a
// torn final line (the tail is truncated, not fatal), requeues jobs that
// were running when the process died, and keeps completed results intact.
//
// Jobs are keyed by a content address: a SHA-256 over the canonicalized
// snapshot uploads and the explain options (see Address). Submitting a
// pair that is already pending, running or completed joins the existing
// job instead of queueing a second computation — explanations are
// deterministic and responses byte-identical, so a cached result is
// exact, not approximate.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
)

// State is a job's lifecycle position.
type State string

const (
	// StatePending queues the job for a worker (initial state, and the
	// state a crashed or shutdown-interrupted run is requeued to).
	StatePending State = "pending"
	// StateRunning marks a claimed job whose runner is executing.
	StateRunning State = "running"
	// StateCompleted holds a result in the result store.
	StateCompleted State = "completed"
	// StateError is a terminal failure (permanent error, retries
	// exhausted, or the job's own deadline).
	StateError State = "error"
	// StateCancelled is a terminal cancel via DELETE /jobs/{id}.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final: no worker will touch the
// job again and waiters are released.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateError || s == StateCancelled
}

// Record is one job's durable state — exactly what a journal line holds.
// It is a fixed struct (never a map) so the journal encoding is
// deterministic: encoding/json emits struct fields in declaration order.
// Wall-clock times are deliberately absent; the only ordering token is
// Seq, so replayed journals list identically to live stores.
type Record struct {
	// ID names the job in the API. Content-addressed jobs derive it from
	// Addr, so the id is stable across resubmissions and restarts.
	ID string `json:"id"`
	// Seq is the submission sequence number; listings order by it.
	Seq uint64 `json:"seq"`
	// Addr is the content address joining identical submissions ("" for
	// jobs that must never dedupe, e.g. warm-chain steps).
	Addr string `json:"addr,omitempty"`
	// Table is the session key; the pool shards worker affinity on it.
	Table string `json:"table,omitempty"`
	// Format is the requested result encoding (json | sql | text).
	Format string `json:"format,omitempty"`
	// Warm marks a chain-mode step (warm-start from the table's previous
	// explanation). Warm results depend on session history, so warm jobs
	// are never deduped or served from cache.
	Warm bool `json:"warm,omitempty"`
	// Kind tags non-/explain jobs so the runner can dispatch them (e.g.
	// "catalog" for snapshot-catalog chain steps); empty means a plain
	// explain job. Old journals decode with the zero value.
	Kind string `json:"kind,omitempty"`
	// SnapshotID/ParentID carry catalog lineage: the pushed snapshot this
	// step explains and the chain parent it explains it against.
	SnapshotID string `json:"snapshot_id,omitempty"`
	ParentID   string `json:"parent_id,omitempty"`
	// SourceBlob/TargetBlob address the canonicalized uploads in the blob
	// store, so a requeued job can re-ingest after a crash.
	SourceBlob string `json:"source_blob,omitempty"`
	TargetBlob string `json:"target_blob,omitempty"`
	State      State  `json:"state"`
	// Attempts counts runner executions (first run included).
	Attempts int `json:"attempts,omitempty"`
	// Requeues counts crash/shutdown recoveries back to pending.
	Requeues int `json:"requeues,omitempty"`
	// DedupeHits counts submissions that joined this job instead of
	// queueing their own computation.
	DedupeHits int64 `json:"dedupe_hits,omitempty"`
	// Error is the terminal failure message (state "error"), or the last
	// transient failure while retries remain.
	Error string `json:"error,omitempty"`
	// Deadline marks an error state caused by the job's own run budget —
	// the daemon maps it to the 503 partial-stats answer.
	Deadline bool `json:"deadline,omitempty"`
	// TraceID joins the job to its run trace in /traces.
	TraceID string `json:"trace_id,omitempty"`
	// ContentType is the stored result's MIME type.
	ContentType string `json:"content_type,omitempty"`
	// Stats is the run's final (or partial, on deadline) search
	// statistics, pre-encoded by the runner.
	Stats json.RawMessage `json:"stats,omitempty"`
}

// Sentinel errors.
var (
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("jobs: store closed")
	// ErrCancelRequested is the context cause a DELETE /jobs/{id} cancel
	// delivers to a running job.
	ErrCancelRequested = errors.New("jobs: cancel requested")
	// ErrShutdown is the context cause pool shutdown delivers; runs cut
	// by it are requeued (drain-on-shutdown persists the queue), not
	// failed.
	ErrShutdown = errors.New("jobs: shutting down")
)

// transientError marks a runner failure as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the pool retries the job (with backoff, up to
// its attempt budget) instead of failing it permanently.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err carries a Transient marker.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// validate rejects records a hostile or torn journal could hold but a
// live store never writes.
func (r *Record) validate() error {
	if r.ID == "" {
		return fmt.Errorf("jobs: journal record without id")
	}
	switch r.State {
	case StatePending, StateRunning, StateCompleted, StateError, StateCancelled:
		return nil
	default:
		return fmt.Errorf("jobs: journal record %s has unknown state %q", r.ID, r.State)
	}
}
