package jobs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestAddressLengthPrefixed(t *testing.T) {
	if Address("ab", "c") == Address("a", "bc") {
		t.Fatal("Address must length-prefix parts; concatenation-equal inputs collided")
	}
	if Address("x") != Address("x") {
		t.Fatal("Address is not deterministic")
	}
}

func TestBlobStoreRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		b, err := newBlobStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		data := []byte("col\nv1\nv2\n")
		h1, err := b.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := b.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("identical blobs hashed differently: %s vs %s", h1, h2)
		}
		got, err := b.Get(h1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("blob round-trip mismatch (dir=%q)", dir)
		}
		if _, err := b.Get("deadbeef"); err == nil {
			t.Fatal("missing blob did not error")
		}
	}
}

func TestSubmitDedupeAndListOrder(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, created, err := s.Submit(Spec{Addr: "addr-a", Table: "t1", Format: "json"})
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	b, created, err := s.Submit(Spec{Addr: "addr-b", Table: "t2", Format: "json"})
	if err != nil || !created {
		t.Fatalf("second submit: created=%v err=%v", created, err)
	}
	a2, created, err := s.Submit(Spec{Addr: "addr-a", Table: "t1", Format: "json"})
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("identical address queued a second computation")
	}
	if a2.ID() != a.ID() {
		t.Fatalf("dedupe returned a different job: %s vs %s", a2.ID(), a.ID())
	}
	m := s.Metrics()
	if m.Submitted != 2 || m.DedupeHits != 1 || m.Queued != 2 {
		t.Fatalf("metrics after dedupe: %+v", m)
	}
	list := s.List()
	if len(list) != 2 || list[0].ID != a.ID() || list[1].ID != b.ID() {
		t.Fatalf("listing not in submission order: %+v", list)
	}
	if list[0].DedupeHits != 1 {
		t.Fatalf("dedupe hit not recorded on the job: %+v", list[0])
	}
	// Unaddressed (warm) submissions never join.
	w1, _, _ := s.Submit(Spec{Table: "t1", Warm: true})
	w2, _, _ := s.Submit(Spec{Table: "t1", Warm: true})
	if w1.ID() == w2.ID() {
		t.Fatal("warm submissions deduped; they must not")
	}
}

func TestResurrectFailedAddress(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	if _, ok := s.startRun(j, func(error) {}); !ok {
		t.Fatal("startRun refused a pending job")
	}
	s.fail(j, "boom", nil)
	if rec := j.Record(); rec.State != StateError {
		t.Fatalf("state after fail: %s", rec.State)
	}
	j2, created, err := s.Submit(Spec{Addr: "addr", Table: "t"})
	if err != nil || !created {
		t.Fatalf("resubmit of failed address: created=%v err=%v", created, err)
	}
	rec := j2.Record()
	if j2 != j || rec.State != StatePending || rec.Error != "" || rec.Attempts != 0 {
		t.Fatalf("failed job not resurrected cleanly: %+v", rec)
	}
	if rec.Seq != 0 {
		t.Fatalf("resurrection must keep the original Seq, got %d", rec.Seq)
	}
}

func TestCancelPendingAndWait(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	if _, err := s.Cancel("nope"); err != ErrNotFound {
		t.Fatalf("cancel of unknown id: %v", err)
	}
	rec, err := s.Cancel(j.ID())
	if err != nil || rec.State != StateCancelled {
		t.Fatalf("cancel pending: %+v err=%v", rec, err)
	}
	// Wait returns immediately on a terminal job.
	got, err := s.Wait(context.Background(), j)
	if err != nil || got.State != StateCancelled {
		t.Fatalf("wait after cancel: %+v err=%v", got, err)
	}
	if m := s.Metrics(); m.Cancelled != 1 || m.Queued != 0 {
		t.Fatalf("metrics after cancel: %+v", m)
	}
}

func TestWaitReleasedByClose(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	errc := make(chan error, 1)
	go func() {
		_, err := s.Wait(context.Background(), j)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("wait released with %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the waiter")
	}
	if _, _, err := s.Submit(Spec{Addr: "x"}); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Job A completes with a stored result.
	a, _, _ := s.Submit(Spec{Addr: "addr-a", Table: "ta", Format: "json"})
	if _, ok := s.startRun(a, func(error) {}); !ok {
		t.Fatal("startRun a")
	}
	body := []byte(`{"ok":true}` + "\n")
	s.complete(a, &Outcome{Body: body, ContentType: "application/json", Stats: []byte(`{}`), TraceID: "t-a"})
	// Job B dies mid-run.
	b, _, _ := s.Submit(Spec{Addr: "addr-b", Table: "tb"})
	if _, ok := s.startRun(b, func(error) {}); !ok {
		t.Fatal("startRun b")
	}
	// Job C never started.
	c, _, _ := s.Submit(Spec{Addr: "addr-c", Table: "tc"})
	_ = c
	// Simulate the crash: no Close, no requeue — just reopen the dir.
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	list := s2.List()
	if len(list) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(list), list)
	}
	if list[0].State != StateCompleted || list[0].TraceID != "t-a" {
		t.Fatalf("completed job lost: %+v", list[0])
	}
	got, _, err := s2.Result(list[0].ID)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("completed result not intact after crash: %q err=%v", got, err)
	}
	if list[1].State != StatePending || list[1].Requeues != 1 {
		t.Fatalf("running job not requeued on recovery: %+v", list[1])
	}
	if list[2].State != StatePending || list[2].Requeues != 0 {
		t.Fatalf("pending job mangled by recovery: %+v", list[2])
	}
	// Sequence numbers continue past the recovered set.
	d, _, _ := s2.Submit(Spec{Addr: "addr-d"})
	if rec := d.Record(); rec.Seq != 3 {
		t.Fatalf("seq after recovery: %d, want 3", rec.Seq)
	}
	// The recovered address index still dedupes.
	if _, created, _ := s2.Submit(Spec{Addr: "addr-a"}); created {
		t.Fatal("completed pair recomputed after recovery instead of deduping")
	}
}

func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(Spec{Addr: "addr-a", Table: "t"})
	s.Close()
	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A power cut mid-append leaves a partial line.
	f.WriteString(`{"id":"torn","seq":9,"sta`)
	f.Close()
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	list := s2.List()
	if len(list) != 1 || list[0].Addr != "addr-a" {
		t.Fatalf("torn tail corrupted recovery: %+v", list)
	}
}

// TestCrashMidTransitionProperty cuts the journal at many byte offsets —
// every prefix must open cleanly (the tail is truncated) and replay to
// jobs whose states are all valid.
func TestCrashMidTransitionProperty(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := s.Submit(Spec{Addr: "addr-a", Table: "ta"})
	s.startRun(a, func(error) {})
	s.complete(a, &Outcome{Body: []byte("x"), ContentType: "text/plain"})
	b, _, _ := s.Submit(Spec{Addr: "addr-b", Table: "tb"})
	s.startRun(b, func(error) {})
	s.retry(b, "transient", 0)
	s.startRun(b, func(error) {})
	s.fail(b, "permanent", nil)
	c, _, _ := s.Submit(Spec{Addr: "addr-c", Table: "tc"})
	s.Cancel(c.ID())
	s.Close()
	journal, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	valid := map[State]bool{StatePending: true, StateRunning: true, StateCompleted: true, StateError: true, StateCancelled: true}
	for cut := 0; cut <= len(journal); cut += 3 {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, "journal.jsonl"), journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(Options{Dir: cutDir})
		if err != nil {
			t.Fatalf("cut=%d: open failed: %v", cut, err)
		}
		var lastSeq uint64
		for i, rec := range s2.List() {
			if !valid[rec.State] {
				t.Fatalf("cut=%d: invalid state %q", cut, rec.State)
			}
			// Recovery turns running into pending and completed-without-
			// result into error; it must never leave running behind.
			if rec.State == StateRunning {
				t.Fatalf("cut=%d: running job survived recovery", cut)
			}
			if i > 0 && rec.Seq <= lastSeq {
				t.Fatalf("cut=%d: listing out of order", cut)
			}
			lastSeq = rec.Seq
		}
		s2.Close()
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	j, _, _ := s.Submit(Spec{Addr: "addr", Table: "t"})
	for i := 0; i < 5; i++ {
		s.startRun(j, func(error) {})
		s.retry(j, "again", 0)
	}
	s.startRun(j, func(error) {})
	s.complete(j, &Outcome{Body: []byte("done"), ContentType: "text/plain"})
	s.Close()
	data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	if lines >= 12 {
		t.Fatalf("journal never compacted: %d lines for 12 transitions", lines)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	list := s2.List()
	if len(list) != 1 || list[0].State != StateCompleted {
		t.Fatalf("compacted journal replayed wrong: %+v", list)
	}
	body, _, err := s2.Result(list[0].ID)
	if err != nil || string(body) != "done" {
		t.Fatalf("result after compaction: %q err=%v", body, err)
	}
}
