package eval_test

import (
	"context"
	"strings"
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/eval"
	"affidavit/internal/gen"
	"affidavit/internal/search"
)

func TestMetricsPerfectRun(t *testing.T) {
	// When the search result *is* the reference, all metrics are 1.
	ds, _ := datasets.Get("iris")
	tab, err := ds.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fake := &search.Result{
		Explanation: p.Reference,
		Cost:        delta.DefaultCosts.Cost(p.Reference),
	}
	dc, dk, acc := eval.Metrics(p, fake, delta.DefaultCosts)
	if dc != 1 || dk != 1 || acc != 1 {
		t.Errorf("metrics = %v %v %v, want 1 1 1", dc, dk, acc)
	}
}

func TestMetricsTrivialRun(t *testing.T) {
	ds, _ := datasets.Get("iris")
	tab, _ := ds.Build(6)
	p, err := gen.Generate(tab, gen.Config{Setting: gen.Setting{Eta: 0.3, Tau: 0.3}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	triv := delta.Trivial(p.Inst)
	fake := &search.Result{Explanation: triv, Cost: delta.DefaultCosts.Cost(triv)}
	dc, dk, _ := eval.Metrics(p, fake, delta.DefaultCosts)
	if dc != 0 {
		t.Errorf("∆core of trivial = %v, want 0", dc)
	}
	if dk <= 1 {
		t.Errorf("∆costs of trivial = %v, want > 1", dk)
	}
}

// TestRunCellIrisQuality reproduces the iris row of Table 2 at the easy
// setting: both configurations must reach acc ≈ 1 and ∆core ≈ 1.
func TestRunCellIrisQuality(t *testing.T) {
	for cfg, opts := range eval.Configs() {
		cell, err := eval.RunCell(context.Background(), eval.CellSpec{
			Dataset: "iris",
			Setting: gen.Setting{Eta: 0.3, Tau: 0.3},
			Config:  cfg,
			Opts:    opts,
			Seeds:   3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if cell.Acc < 0.95 {
			t.Errorf("%s: acc = %.2f, want ≥ 0.95 (paper: 1.0)", cfg, cell.Acc)
		}
		if cell.DeltaCore < 0.9 || cell.DeltaCore > 1.15 {
			t.Errorf("%s: ∆core = %.2f, want ≈ 1", cfg, cell.DeltaCore)
		}
		if cell.Instances != 3 {
			t.Errorf("Instances = %d", cell.Instances)
		}
	}
}

func TestRunCellUnknownDataset(t *testing.T) {
	if _, err := eval.RunCell(context.Background(), eval.CellSpec{Dataset: "nope"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestTable2SmallGrid(t *testing.T) {
	var progressed int
	cells, err := eval.Table2(context.Background(), eval.Table2Spec{
		Datasets:  []string{"iris", "balance"},
		Instances: 1,
		Settings:  []gen.Setting{{Eta: 0.3, Tau: 0.3}},
		Progress:  func(eval.Cell) { progressed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 1 setting × 2 configs.
	if len(cells) != 4 || progressed != 4 {
		t.Fatalf("cells = %d, progressed = %d, want 4", len(cells), progressed)
	}
	out := eval.RenderTable2(cells)
	for _, want := range []string{"iris", "balance", "Hs", "Hid", "∆core", "acc"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFigure5Scaled(t *testing.T) {
	points, err := eval.Figure5(context.Background(), eval.Figure5Spec{
		BaseRows: 2000, // scaled-down flight-500k for test budget
		Factors:  []float64{0.5, 1.0},
		Seed:     1,
		Opts:     search.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Rows >= points[1].Rows {
		t.Errorf("scaling did not reduce rows: %v", points)
	}
	out := eval.RenderFigure5(points)
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "100%") {
		t.Errorf("rendering malformed:\n%s", out)
	}
}

func TestFigure6Scaled(t *testing.T) {
	points, err := eval.Figure6(context.Background(), eval.Figure6Spec{
		Datasets: []string{"plista", "flight-1k"},
		Rows:     map[string]int{"plista": 600, "flight-1k": 600},
		Seed:     2,
		Opts:     search.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Sorted by attribute count: plista (43) before flight-1k (75).
	if points[0].Attrs != 43 || points[1].Attrs != 75 {
		t.Errorf("attr counts = %d, %d; want 43, 75", points[0].Attrs, points[1].Attrs)
	}
	out := eval.RenderFigure6(points)
	if !strings.Contains(out, "plista") || !strings.Contains(out, "s/record") {
		t.Errorf("rendering malformed:\n%s", out)
	}
}
