package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/search"
)

// ScalePoint is one Figure 5 measurement: runtime at a scaling factor.
type ScalePoint struct {
	Factor float64 // fraction of the full problem instance
	Rows   int     // source records at this factor
	Time   time.Duration
	// MatchedReference reports whether the run reproduced the reference
	// explanation's cost (the paper: "it was able to produce the reference
	// explanation in every run").
	MatchedReference bool
}

// Figure5Spec configures the row-scalability experiment (Section 5.4.1).
type Figure5Spec struct {
	// BaseRows is the full size; the paper uses flight-500k's 500000.
	BaseRows int
	// Factors are the scaling factors; the paper sweeps 10%..100%.
	Factors []float64
	Seed    int64
	// Opts is the search configuration; the paper uses Hid.
	Opts     search.Options
	Progress func(ScalePoint)
}

// Figure5 generates one (η=0.3, τ=0.3) flight-500k problem instance, scales
// it to each factor, and measures Hid runtimes. Cancelling ctx returns the
// points measured so far together with ctx's error.
func Figure5(ctx context.Context, spec Figure5Spec) ([]ScalePoint, error) {
	ds, err := datasets.Get("flight-500k")
	if err != nil {
		return nil, err
	}
	if spec.BaseRows == 0 {
		spec.BaseRows = ds.Rows
	}
	if len(spec.Factors) == 0 {
		spec.Factors = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	tab, err := ds.BuildRows(spec.BaseRows, spec.Seed*31+7)
	if err != nil {
		return nil, err
	}
	// The search options' memory budget also governs generation: under it
	// the synthetic snapshots spill cold column chunks while they are
	// built, so the full 500k-row sweep materialises within the budget.
	base, err := gen.Generate(tab, gen.Config{
		Setting: gen.Setting{Eta: 0.3, Tau: 0.3},
		Seed:    spec.Seed,
		Spill:   spec.Opts.Spill,
	})
	if err != nil {
		return nil, err
	}
	var out []ScalePoint
	for _, f := range spec.Factors {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("eval: cancelled: %w", err)
		}
		p := base
		if f < 1 {
			p, err = base.Scale(f, spec.Seed+int64(f*1000))
			if err != nil {
				return nil, err
			}
		}
		opts := spec.Opts
		opts.Seed = spec.Seed
		start := time.Now()
		res, err := search.Run(ctx, p.Inst, opts)
		if err != nil {
			return nil, err
		}
		if res.Stats.Cancelled {
			return out, fmt.Errorf("eval: cancelled: %w", ctx.Err())
		}
		cm := delta.CostModel{Alpha: opts.Alpha}
		pt := ScalePoint{
			Factor:           f,
			Rows:             p.Inst.Source.Len(),
			Time:             time.Since(start),
			MatchedReference: res.Cost <= cm.Cost(p.Reference),
		}
		out = append(out, pt)
		if spec.Progress != nil {
			spec.Progress(pt)
		}
	}
	return out, nil
}

// AttrPoint is one Figure 6 measurement: per-record runtime vs |A|.
type AttrPoint struct {
	Dataset       string
	Attrs         int
	Rows          int
	Time          time.Duration
	PerRecord     time.Duration
	PerRecordAttr time.Duration // per record per attribute, for trend checks
}

// Figure6Spec configures the attribute-scalability experiment (Section
// 5.4.2): Hid runtimes at (η=0.3, τ=0.3), normalised by record count, on
// the datasets with 30..182 attributes.
type Figure6Spec struct {
	// Datasets defaults to the paper's x-axis: fd-red-30, plista,
	// flight-1k, uniprot.
	Datasets []string
	// Rows overrides per-dataset record counts (fd-red-30 is 250k).
	Rows     map[string]int
	Seed     int64
	Opts     search.Options
	Progress func(AttrPoint)
}

// Figure6 measures normalised runtimes against attribute count. Cancelling
// ctx returns the points measured so far together with ctx's error.
func Figure6(ctx context.Context, spec Figure6Spec) ([]AttrPoint, error) {
	names := spec.Datasets
	if names == nil {
		names = []string{"fd-red-30", "plista", "flight-1k", "uniprot"}
	}
	var out []AttrPoint
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("eval: cancelled: %w", err)
		}
		ds, err := datasets.Get(name)
		if err != nil {
			return nil, err
		}
		rows := ds.Rows
		if r, ok := spec.Rows[name]; ok && r > 0 {
			rows = r
		}
		tab, err := ds.BuildRows(rows, spec.Seed*17+3)
		if err != nil {
			return nil, err
		}
		p, err := gen.Generate(tab, gen.Config{
			Setting: gen.Setting{Eta: 0.3, Tau: 0.3},
			Seed:    spec.Seed,
		})
		if err != nil {
			return nil, err
		}
		opts := spec.Opts
		opts.Seed = spec.Seed
		start := time.Now()
		res, err := search.Run(ctx, p.Inst, opts)
		if err != nil {
			return nil, err
		}
		if res.Stats.Cancelled {
			return out, fmt.Errorf("eval: cancelled: %w", ctx.Err())
		}
		elapsed := time.Since(start)
		n := p.Inst.Source.Len()
		pt := AttrPoint{
			Dataset:       name,
			Attrs:         p.Inst.NumAttrs(),
			Rows:          n,
			Time:          elapsed,
			PerRecord:     elapsed / time.Duration(n),
			PerRecordAttr: elapsed / time.Duration(n*p.Inst.NumAttrs()),
		}
		out = append(out, pt)
		if spec.Progress != nil {
			spec.Progress(pt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Attrs < out[j].Attrs })
	return out, nil
}

// RenderTable2 renders cells in the paper's layout: one row per dataset and
// configuration, one column group per setting.
func RenderTable2(cells []Cell) string {
	type key struct {
		ds, cfg string
	}
	type group map[string]Run // setting → run
	rows := make(map[key]group)
	var order []key
	settingsSeen := map[string]bool{}
	var settingOrder []string
	inst := 0
	for _, c := range cells {
		k := key{c.Dataset, c.Config}
		if _, ok := rows[k]; !ok {
			rows[k] = make(group)
			order = append(order, k)
		}
		s := c.Setting.String()
		rows[k][s] = c.Run
		if !settingsSeen[s] {
			settingsSeen[s] = true
			settingOrder = append(settingOrder, s)
		}
		inst = c.Instances
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2 reproduction (macro average over %d instance(s) per cell)\n", inst)
	fmt.Fprintf(&sb, "%-12s %-4s", "Dataset", "H0")
	for _, s := range settingOrder {
		fmt.Fprintf(&sb, " | %-33s", s)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%-12s %-4s", "", "")
	for range settingOrder {
		fmt.Fprintf(&sb, " | %8s %7s %8s %7s", "t", "∆core", "∆costs", "acc")
	}
	sb.WriteByte('\n')
	for _, k := range order {
		fmt.Fprintf(&sb, "%-12s %-4s", k.ds, k.cfg)
		for _, s := range settingOrder {
			r, ok := rows[k][s]
			if !ok {
				fmt.Fprintf(&sb, " | %33s", "—")
				continue
			}
			fmt.Fprintf(&sb, " | %8s %7.2f %8.2f %7.2f",
				formatDuration(r.Time), r.DeltaCore, r.DeltaCosts, r.Acc)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// RenderFigure5 renders the scaling curve as an aligned text series.
func RenderFigure5(points []ScalePoint) string {
	var sb strings.Builder
	sb.WriteString("Figure 5 reproduction: runtime vs scaling factor (flight-500k, η=0.3, τ=0.3, Hid)\n")
	sb.WriteString("factor   rows      runtime    matched-ref\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%5.0f%%  %8d  %9s  %v\n",
			p.Factor*100, p.Rows, formatDuration(p.Time), p.MatchedReference)
	}
	return sb.String()
}

// RenderFigure6 renders the normalised runtimes.
func RenderFigure6(points []AttrPoint) string {
	var sb strings.Builder
	sb.WriteString("Figure 6 reproduction: normalised Hid runtime vs attribute count (η=0.3, τ=0.3)\n")
	sb.WriteString("dataset       |A|    rows     runtime    s/record\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-12s %4d  %6d  %9s  %.6f\n",
			p.Dataset, p.Attrs, p.Rows, formatDuration(p.Time),
			p.Time.Seconds()/float64(p.Rows))
	}
	return sb.String()
}
