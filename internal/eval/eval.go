// Package eval implements the paper's evaluation protocol (Section 5.2):
// it generates problem instances per dataset and difficulty setting, runs
// both Affidavit configurations (Hs and Hid), and reports the macro-
// averaged runtime t, relative core size ∆core, relative costs ∆costs and
// cell accuracy acc against the reference explanation. It also drives the
// Figure 5 row-scalability and Figure 6 attribute-scalability experiments.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/search"
)

// Configs returns the paper's two evaluation configurations keyed by their
// Table 2 names.
func Configs() map[string]search.Options {
	return map[string]search.Options{
		"Hs":  search.OverlapOptions(),
		"Hid": search.DefaultOptions(),
	}
}

// Metrics compares a search result against a problem's reference
// explanation (Section 5.2):
//
//   - ∆core  = |core_res| / |core_ref|;
//   - ∆costs = c(E_res) / c(E_ref);
//   - acc    = the fraction of cells of the reference core that the learned
//     functions translate exactly as the reference functions do, ignoring
//     the artificial primary-key attribute.
func Metrics(p *gen.Problem, res *search.Result, cm delta.CostModel) (deltaCore, deltaCosts, acc float64) {
	refCore := p.Reference.CoreSize()
	if refCore > 0 {
		deltaCore = float64(res.Explanation.CoreSize()) / float64(refCore)
	} else {
		deltaCore = 1
	}
	refCost := cm.Cost(p.Reference)
	if refCost > 0 {
		deltaCosts = res.Cost / refCost
	} else if res.Cost == 0 {
		deltaCosts = 1
	}

	total, correct := 0, 0
	for _, s := range p.Reference.CoreSrc {
		rec := p.Inst.Source.Record(s)
		for a := 0; a < p.Inst.NumAttrs(); a++ {
			if a == p.KeyAttr {
				continue
			}
			total++
			if res.Explanation.Funcs[a].Apply(rec[a]) == p.Reference.Funcs[a].Apply(rec[a]) {
				correct++
			}
		}
	}
	if total > 0 {
		acc = float64(correct) / float64(total)
	} else {
		acc = 1
	}
	return deltaCore, deltaCosts, acc
}

// Run is one measured run on one problem instance.
type Run struct {
	Time       time.Duration
	DeltaCore  float64
	DeltaCosts float64
	Acc        float64
}

// Cell is the macro average over a cell's instances (one dataset × setting
// × configuration).
type Cell struct {
	Dataset   string
	Setting   gen.Setting
	Config    string
	Instances int
	Run
}

// CellSpec describes one Table 2 cell to measure.
type CellSpec struct {
	Dataset  string
	Rows     int // 0 = the dataset's Table 2 record count
	Setting  gen.Setting
	Config   string
	Opts     search.Options
	Seeds    int   // instances per cell (the paper uses 10)
	BaseSeed int64 // seed offset, varied per instance
}

// RunCell generates Seeds problem instances and macro-averages the metrics.
// Instances run in parallel across available CPUs. Cancelling ctx aborts
// the cell with ctx's error.
func RunCell(ctx context.Context, spec CellSpec) (Cell, error) {
	ds, err := datasets.Get(spec.Dataset)
	if err != nil {
		return Cell{}, err
	}
	rows := spec.Rows
	if rows == 0 {
		rows = ds.Rows
	}
	if spec.Seeds < 1 {
		spec.Seeds = 1
	}
	cm := delta.CostModel{Alpha: spec.Opts.Alpha}
	runs := make([]Run, spec.Seeds)
	errs := make([]error, spec.Seeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := 0; i < spec.Seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			seed := spec.BaseSeed + int64(i)
			tab, err := ds.BuildRows(rows, seed*7919+13)
			if err != nil {
				errs[i] = err
				return
			}
			p, err := gen.Generate(tab, gen.Config{Setting: spec.Setting, Seed: seed})
			if err != nil {
				errs[i] = err
				return
			}
			opts := spec.Opts
			opts.Seed = seed
			start := time.Now()
			res, err := search.Run(ctx, p.Inst, opts)
			if err != nil {
				errs[i] = err
				return
			}
			if res.Stats.Cancelled {
				errs[i] = fmt.Errorf("eval: run cancelled: %w", ctx.Err())
				return
			}
			dc, dk, acc := Metrics(p, res, cm)
			runs[i] = Run{Time: time.Since(start), DeltaCore: dc, DeltaCosts: dk, Acc: acc}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Cell{}, err
		}
	}
	avg := Run{}
	for _, r := range runs {
		avg.Time += r.Time
		avg.DeltaCore += r.DeltaCore
		avg.DeltaCosts += r.DeltaCosts
		avg.Acc += r.Acc
	}
	n := float64(spec.Seeds)
	avg.Time = time.Duration(float64(avg.Time) / n)
	avg.DeltaCore /= n
	avg.DeltaCosts /= n
	avg.Acc /= n
	return Cell{
		Dataset:   spec.Dataset,
		Setting:   spec.Setting,
		Config:    spec.Config,
		Instances: spec.Seeds,
		Run:       avg,
	}, nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// Table2Spec configures a full Table 2 reproduction.
type Table2Spec struct {
	Datasets  []string       // nil = all Table 2 datasets (flight-500k excluded)
	Rows      map[string]int // per-dataset row overrides (scaling large sets)
	Instances int            // instances per cell; the paper uses 10
	Seed      int64
	Settings  []gen.Setting // nil = the paper's three settings
	// Progress, when non-nil, receives one line per finished cell.
	Progress func(Cell)
}

// Table2 measures every requested cell in Table 2 order. Cancelling ctx
// stops before the next cell (and interrupts the running one).
func Table2(ctx context.Context, spec Table2Spec) ([]Cell, error) {
	names := spec.Datasets
	if names == nil {
		for _, n := range datasets.Names() {
			if n != "flight-500k" { // Figure 5's dataset, not a Table 2 row
				names = append(names, n)
			}
		}
	}
	settings := spec.Settings
	if settings == nil {
		settings = gen.Settings()
	}
	if spec.Instances < 1 {
		spec.Instances = 1
	}
	var out []Cell
	for _, name := range names {
		for _, setting := range settings {
			for _, cfg := range []string{"Hs", "Hid"} {
				if err := ctx.Err(); err != nil {
					return out, fmt.Errorf("eval: cancelled: %w", err)
				}
				cell, err := RunCell(ctx, CellSpec{
					Dataset:  name,
					Rows:     spec.Rows[name],
					Setting:  setting,
					Config:   cfg,
					Opts:     Configs()[cfg],
					Seeds:    spec.Instances,
					BaseSeed: spec.Seed,
				})
				if err != nil {
					return nil, fmt.Errorf("eval: %s %v %s: %w", name, setting, cfg, err)
				}
				out = append(out, cell)
				if spec.Progress != nil {
					spec.Progress(cell)
				}
			}
		}
	}
	return out, nil
}
