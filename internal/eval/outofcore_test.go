package eval

import (
	"context"
	"os"
	"testing"

	"affidavit/internal/search"
	"affidavit/internal/spill"
)

// TestFigure5OutOfCore runs one Figure 5 row step end-to-end — dataset
// generation, snapshot realisation, search and conversion — under a memory
// budget. CI's memory-capped job (GOMEMLIMIT=256MiB) drives it at the
// paper's full 500000 rows via AFFIDAVIT_F5_ROWS, proving the out-of-core
// path completes where the in-memory pipeline needs gigabytes; without the
// variable it runs a quick 20k-row smoke so the path stays covered by
// plain `go test`.
//
// Byte-identity of budgeted explanations is asserted against unbudgeted
// runs at test scale by TestSpillEquivalence (root package) — it cannot be
// asserted here at 500k rows, because the comparison run would need the
// very memory the cap removes.
func TestFigure5OutOfCore(t *testing.T) {
	rows := 20000
	if env := os.Getenv("AFFIDAVIT_F5_ROWS"); env != "" {
		n, err := spill.ParseSize(env) // plain integers parse too
		if err != nil || n <= 0 {
			t.Fatalf("bad AFFIDAVIT_F5_ROWS=%q: %v", env, err)
		}
		rows = int(n)
	}
	budget := int64(96 << 20)
	if env := os.Getenv("AFFIDAVIT_F5_BUDGET"); env != "" {
		n, err := spill.ParseSize(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad AFFIDAVIT_F5_BUDGET=%q: %v", env, err)
		}
		budget = n
	} else if rows <= 20000 {
		budget = 4 << 20 // smoke mode: tiny budget so spilling actually engages
	}

	opts := search.DefaultOptions()
	opts.Spill = spill.NewManager(budget, "")
	points, err := Figure5(context.Background(), Figure5Spec{
		BaseRows: rows,
		Factors:  []float64{1.0},
		Seed:     1,
		Opts:     opts,
		Progress: func(p ScalePoint) {
			t.Logf("factor %.0f%%: %d rows in %v (matched reference: %v)",
				p.Factor*100, p.Rows, p.Time, p.MatchedReference)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("got %d points, want 1", len(points))
	}
	if points[0].Rows == 0 {
		t.Fatal("empty instance")
	}
	if !points[0].MatchedReference {
		t.Errorf("budgeted run did not reproduce the reference explanation at %d rows", points[0].Rows)
	}
}
