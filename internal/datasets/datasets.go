// Package datasets generates synthetic stand-ins for the paper's
// evaluation corpora (the HPI FD-discovery repeatability datasets). The
// real files are unavailable offline; each generator reproduces the
// original's *shape* — attribute count, record count and per-attribute
// cardinality/type profile — which is what the algorithm actually observes
// (DESIGN.md §3 records the substitution argument). In particular,
// chess/letter/nursery consist solely of low-cardinality attributes, which
// is what defeats the overlap-based Hs start state in the paper's Table 2.
package datasets

import (
	"fmt"
	"math/rand"

	"affidavit/internal/table"
)

// Column generates one attribute's values.
type Column interface {
	Name() string
	// Value draws the value for one record.
	Value(rng *rand.Rand) string
}

// Spec describes one dataset.
type Spec struct {
	Name string
	Rows int
	// DataAttrs is |A| − 1: the attribute count of Table 2 minus the
	// artificial key the generator re-adds.
	DataAttrs int
	Columns   []Column
}

// Build materialises the dataset deterministically from a seed.
func (s Spec) Build(seed int64) (*table.Table, error) {
	return s.BuildRows(s.Rows, seed)
}

// BuildRows materialises the dataset with a custom record count (used by
// the Figure 5/6 scalability harnesses). The table is built columnar —
// every value interned on arrival — so a 500k-row dataset costs its
// distinct values plus 4 bytes per cell instead of a string tuple per
// record; accessors and downstream explanations are identical to the
// historical row backing.
func (s Spec) BuildRows(rows int, seed int64) (*table.Table, error) {
	if len(s.Columns) != s.DataAttrs {
		return nil, fmt.Errorf("datasets: %s declares %d attrs but has %d columns",
			s.Name, s.DataAttrs, len(s.Columns))
	}
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name()
	}
	schema, err := table.NewSchema(names...)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b, err := table.NewBuilder(schema, nil)
	if err != nil {
		return nil, err
	}
	rec := make(table.Record, len(s.Columns))
	for r := 0; r < rows; r++ {
		for i, c := range s.Columns {
			rec[i] = c.Value(rng)
		}
		if err := b.Append(rec); err != nil {
			return nil, err
		}
	}
	return b.Table(), nil
}

// ---------------------------------------------------------------------------
// Column kinds

// Cat is a categorical column drawing uniformly from fixed values.
type Cat struct {
	N    string
	Vals []string
}

func (c Cat) Name() string                { return c.N }
func (c Cat) Value(rng *rand.Rand) string { return c.Vals[rng.Intn(len(c.Vals))] }

// Int is an integer column in [Min, Max].
type Int struct {
	N        string
	Min, Max int
}

func (c Int) Name() string { return c.N }
func (c Int) Value(rng *rand.Rand) string {
	return fmt.Sprintf("%d", c.Min+rng.Intn(c.Max-c.Min+1))
}

// Dec is a decimal column in [Min, Max] with a fixed number of fractional
// digits.
type Dec struct {
	N        string
	Min, Max float64
	Digits   int
}

func (c Dec) Name() string { return c.N }
func (c Dec) Value(rng *rand.Rand) string {
	v := c.Min + rng.Float64()*(c.Max-c.Min)
	s := fmt.Sprintf("%.*f", c.Digits, v)
	// Canonicalise: strip trailing zeros so numeric metas can engage.
	for len(s) > 1 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 1 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Code is a zero-padded identifier column with a bounded code pool, e.g.
// "C0042" — string-typed despite looking numeric, like real-world keys.
type Code struct {
	N      string
	Prefix string
	Pool   int // distinct codes
	Width  int
}

func (c Code) Name() string { return c.N }
func (c Code) Value(rng *rand.Rand) string {
	return fmt.Sprintf("%s%0*d", c.Prefix, c.Width, rng.Intn(c.Pool))
}

// Date is a yyyymmdd column between two years.
type Date struct {
	N          string
	FromY, ToY int
}

func (c Date) Name() string { return c.N }
func (c Date) Value(rng *rand.Rand) string {
	y := c.FromY + rng.Intn(c.ToY-c.FromY+1)
	m := 1 + rng.Intn(12)
	d := 1 + rng.Intn(28)
	return fmt.Sprintf("%04d%02d%02d", y, m, d)
}

// Word draws from a bounded pool of pseudo-words, mimicking name/city/text
// columns with realistic duplication.
type Word struct {
	N    string
	Pool int
	Len  int
}

func (c Word) Name() string { return c.N }
func (c Word) Value(rng *rand.Rand) string {
	// Deterministic word per pool index, lowercase letters.
	idx := rng.Intn(c.Pool)
	local := rand.New(rand.NewSource(int64(idx)*2654435761 + int64(c.Len)))
	b := make([]byte, c.Len)
	for i := range b {
		b[i] = byte('a' + local.Intn(26))
	}
	return string(b)
}

// Sparse wraps a column, emitting the empty string with probability P.
type Sparse struct {
	Col Column
	P   float64
}

func (c Sparse) Name() string { return c.Col.Name() }
func (c Sparse) Value(rng *rand.Rand) string {
	if rng.Float64() < c.P {
		return ""
	}
	return c.Col.Value(rng)
}

// ---------------------------------------------------------------------------
// Registry

// Get returns the named dataset spec.
func Get(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q (see datasets.Names())", name)
}

// Names lists all dataset names in Table 2 order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Table2Rows returns name → record count, for harness sizing.
func Table2Rows() map[string]int {
	m := make(map[string]int)
	for _, s := range All() {
		m[s.Name] = s.Rows
	}
	return m
}
