package datasets

import "fmt"

// All returns every dataset spec in Table 2 order, followed by flight-500k
// (the Figure 5 row-scalability dataset). DataAttrs is always |A| − 1 from
// Table 2: the workload generator re-adds the artificial key attribute.
func All() []Spec {
	return []Spec{
		iris(), balance(), chess(), abalone(), nursery(), bridges(), echo(),
		breast(), adult(), ncvoter1k(), letter(), hepatitis(), horse(),
		fdRed30(), plista(), flight1k(), uniprot(), flight500k(),
	}
}

func iris() Spec {
	return Spec{Name: "iris", Rows: 150, DataAttrs: 5, Columns: []Column{
		Dec{N: "sepal_length", Min: 4.3, Max: 7.9, Digits: 1},
		Dec{N: "sepal_width", Min: 2.0, Max: 4.4, Digits: 1},
		Dec{N: "petal_length", Min: 1.0, Max: 6.9, Digits: 1},
		Dec{N: "petal_width", Min: 0.1, Max: 2.5, Digits: 1},
		Cat{N: "class", Vals: []string{"setosa", "versicolor", "virginica"}},
	}}
}

func balance() Spec {
	return Spec{Name: "balance", Rows: 625, DataAttrs: 5, Columns: []Column{
		Cat{N: "class", Vals: []string{"L", "B", "R"}},
		Int{N: "left_weight", Min: 1, Max: 5},
		Int{N: "left_distance", Min: 1, Max: 5},
		Int{N: "right_weight", Min: 1, Max: 5},
		Int{N: "right_distance", Min: 1, Max: 5},
	}}
}

func chess() Spec {
	files := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	depth := make([]string, 0, 18)
	for i := 0; i < 17; i++ {
		depth = append(depth, fmt.Sprintf("d%d", i))
	}
	depth = append(depth, "draw")
	return Spec{Name: "chess", Rows: 28056, DataAttrs: 7, Columns: []Column{
		Cat{N: "wk_file", Vals: files},
		Int{N: "wk_rank", Min: 1, Max: 8},
		Cat{N: "wr_file", Vals: files},
		Int{N: "wr_rank", Min: 1, Max: 8},
		Cat{N: "bk_file", Vals: files},
		Int{N: "bk_rank", Min: 1, Max: 8},
		Cat{N: "depth", Vals: depth},
	}}
}

func abalone() Spec {
	return Spec{Name: "abalone", Rows: 4177, DataAttrs: 8, Columns: []Column{
		Cat{N: "sex", Vals: []string{"M", "F", "I"}},
		Dec{N: "length", Min: 0.075, Max: 0.815, Digits: 3},
		Dec{N: "diameter", Min: 0.055, Max: 0.65, Digits: 3},
		Dec{N: "height", Min: 0.01, Max: 0.25, Digits: 3},
		Dec{N: "whole_weight", Min: 0.002, Max: 2.8, Digits: 2},
		Dec{N: "shucked_weight", Min: 0.001, Max: 1.4, Digits: 2},
		Dec{N: "shell_weight", Min: 0.0015, Max: 1.0, Digits: 2},
		Int{N: "rings", Min: 1, Max: 29},
	}}
}

func nursery() Spec {
	return Spec{Name: "nursery", Rows: 12960, DataAttrs: 9, Columns: []Column{
		Cat{N: "parents", Vals: []string{"usual", "pretentious", "great_pret"}},
		Cat{N: "has_nurs", Vals: []string{"proper", "less_proper", "improper", "critical", "very_crit"}},
		Cat{N: "form", Vals: []string{"complete", "completed", "incomplete", "foster"}},
		Cat{N: "children", Vals: []string{"1", "2", "3", "more"}},
		Cat{N: "housing", Vals: []string{"convenient", "less_conv", "critical"}},
		Cat{N: "finance", Vals: []string{"convenient", "inconv"}},
		Cat{N: "social", Vals: []string{"nonprob", "slightly_prob", "problematic"}},
		Cat{N: "health", Vals: []string{"recommended", "priority", "not_recom"}},
		Cat{N: "class", Vals: []string{"not_recom", "recommend", "very_recom", "priority", "spec_prior"}},
	}}
}

func bridges() Spec {
	return Spec{Name: "bridges", Rows: 108, DataAttrs: 9, Columns: []Column{
		Cat{N: "river", Vals: []string{"A", "M", "O"}},
		Int{N: "location", Min: 1, Max: 52},
		Int{N: "erected", Min: 1850, Max: 1899},
		Cat{N: "purpose", Vals: []string{"WALK", "AQUEDUCT", "RR", "HIGHWAY"}},
		Int{N: "lanes", Min: 1, Max: 6},
		Cat{N: "clear_g", Vals: []string{"N", "G"}},
		Cat{N: "t_or_d", Vals: []string{"THROUGH", "DECK"}},
		Cat{N: "material", Vals: []string{"WOOD", "IRON", "STEEL"}},
		Cat{N: "span", Vals: []string{"SHORT", "MEDIUM", "LONG"}},
	}}
}

func echo() Spec {
	return Spec{Name: "echo", Rows: 132, DataAttrs: 9, Columns: []Column{
		Int{N: "survival_months", Min: 0, Max: 57},
		Cat{N: "alive", Vals: []string{"0", "1"}},
		Int{N: "age", Min: 35, Max: 86},
		Cat{N: "pericardial", Vals: []string{"0", "1"}},
		Dec{N: "fractional_short", Min: 0.01, Max: 0.61, Digits: 2},
		Dec{N: "epss", Min: 0, Max: 4, Digits: 1},
		Dec{N: "lvdd", Min: 3.1, Max: 6.9, Digits: 1},
		Int{N: "wallmotion_score", Min: 2, Max: 39},
		Dec{N: "wallmotion_index", Min: 1, Max: 3, Digits: 1},
	}}
}

func breast() Spec {
	cols := []Column{}
	for _, n := range []string{"clump_thickness", "cell_size", "cell_shape",
		"adhesion", "epithelial_size", "bare_nuclei", "bland_chromatin",
		"normal_nucleoli", "mitoses"} {
		cols = append(cols, Int{N: n, Min: 1, Max: 10})
	}
	cols = append(cols, Cat{N: "class", Vals: []string{"2", "4"}})
	return Spec{Name: "breast", Rows: 699, DataAttrs: 10, Columns: cols}
}

func adult() Spec {
	return Spec{Name: "adult", Rows: 48842, DataAttrs: 14, Columns: []Column{
		Int{N: "age", Min: 17, Max: 90},
		Cat{N: "workclass", Vals: []string{"Private", "Self-emp-not-inc", "Self-emp-inc",
			"Federal-gov", "Local-gov", "State-gov", "Without-pay", "Never-worked"}},
		Int{N: "fnlwgt", Min: 12285, Max: 32285},
		Word{N: "education", Pool: 16, Len: 7},
		Int{N: "education_num", Min: 1, Max: 16},
		Word{N: "marital_status", Pool: 7, Len: 9},
		Word{N: "occupation", Pool: 14, Len: 8},
		Cat{N: "relationship", Vals: []string{"Wife", "Own-child", "Husband",
			"Not-in-family", "Other-relative", "Unmarried"}},
		Cat{N: "race", Vals: []string{"White", "Asian-Pac-Islander",
			"Amer-Indian-Eskimo", "Other", "Black"}},
		Cat{N: "sex", Vals: []string{"Female", "Male"}},
		Int{N: "capital_gain", Min: 0, Max: 9999},
		Int{N: "capital_loss", Min: 0, Max: 999},
		Int{N: "hours_per_week", Min: 1, Max: 99},
		Word{N: "native_country", Pool: 41, Len: 8},
	}}
}

func ncvoter1k() Spec {
	return Spec{Name: "ncvoter-1k", Rows: 1000, DataAttrs: 15, Columns: []Column{
		Word{N: "last_name", Pool: 320, Len: 7},
		Word{N: "first_name", Pool: 250, Len: 6},
		Sparse{Col: Word{N: "middle_name", Pool: 180, Len: 6}, P: 0.2},
		Word{N: "city", Pool: 60, Len: 9},
		Cat{N: "state", Vals: []string{"NC"}},
		Code{N: "zip", Prefix: "27", Pool: 80, Width: 3},
		Cat{N: "party", Vals: []string{"DEM", "REP", "UNA"}},
		Cat{N: "gender", Vals: []string{"F", "M"}},
		Int{N: "age", Min: 18, Max: 99},
		Word{N: "street", Pool: 300, Len: 10},
		Cat{N: "status", Vals: []string{"ACTIVE", "INACTIVE"}},
		Code{N: "precinct", Prefix: "P", Pool: 40, Width: 2},
		Word{N: "county", Pool: 25, Len: 8},
		Cat{N: "ethnicity", Vals: []string{"NL", "HL", "UN"}},
		Date{N: "registr_dt", FromY: 2017, ToY: 2017},
	}}
}

func letter() Spec {
	cols := []Column{Cat{N: "lettr", Vals: alphabetUpper()}}
	for _, n := range []string{"xbox", "ybox", "width", "high", "onpix",
		"xbar", "ybar", "x2bar", "y2bar", "xybar", "x2ybr", "xy2br",
		"xege", "xegvy", "yege", "yegvx"} {
		cols = append(cols, Int{N: n, Min: 0, Max: 15})
	}
	return Spec{Name: "letter", Rows: 20000, DataAttrs: 17, Columns: cols}
}

func alphabetUpper() []string {
	out := make([]string, 26)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

func hepatitis() Spec {
	cols := []Column{
		Int{N: "age", Min: 7, Max: 78},
		Cat{N: "sex", Vals: []string{"male", "female"}},
	}
	for _, n := range []string{"steroid", "antivirals", "fatigue", "malaise",
		"anorexia", "liver_big", "liver_firm", "spleen", "spiders",
		"ascites", "varices"} {
		cols = append(cols, Cat{N: n, Vals: []string{"no", "yes"}})
	}
	cols = append(cols,
		Dec{N: "bilirubin", Min: 0.3, Max: 4.0, Digits: 1},
		Int{N: "alk_phosphate", Min: 26, Max: 95},
		Int{N: "sgot", Min: 14, Max: 99},
		Dec{N: "albumin", Min: 2.1, Max: 6.0, Digits: 1},
		Int{N: "protime", Min: 10, Max: 90},
	)
	return Spec{Name: "hepatitis", Rows: 155, DataAttrs: 18, Columns: cols}
}

func horse() Spec {
	var cols []Column
	cols = append(cols,
		Cat{N: "surgery", Vals: []string{"1", "2"}},
		Cat{N: "adult", Vals: []string{"1", "2", "9"}},
		Dec{N: "rectal_temp", Min: 35.4, Max: 40.8, Digits: 1},
		Int{N: "pulse", Min: 30, Max: 99},
		Int{N: "respiratory_rate", Min: 8, Max: 96},
		Int{N: "packed_cell_volume", Min: 23, Max: 75},
		Dec{N: "total_protein", Min: 3.3, Max: 8.9, Digits: 1},
	)
	for i := 0; i < 16; i++ {
		vals := []string{"1", "2", "3", "4"}[:2+i%3]
		cols = append(cols, Cat{N: fmt.Sprintf("exam_%02d", i+1), Vals: vals})
	}
	cols = append(cols,
		Cat{N: "outcome", Vals: []string{"lived", "died", "euthanized"}},
		Cat{N: "surgical_lesion", Vals: []string{"1", "2"}},
		Code{N: "lesion_site", Prefix: "L", Pool: 60, Width: 2},
		Cat{N: "cp_data", Vals: []string{"1", "2"}},
	)
	return Spec{Name: "horse", Rows: 368, DataAttrs: 27, Columns: cols}
}

func fdRed30() Spec {
	var cols []Column
	for i := 0; i < 10; i++ {
		cols = append(cols, Int{N: fmt.Sprintf("c%02d", i), Min: 0, Max: 9})
	}
	for i := 10; i < 20; i++ {
		cols = append(cols, Int{N: fmt.Sprintf("c%02d", i), Min: 0, Max: 99})
	}
	for i := 20; i < 30; i++ {
		cols = append(cols, Int{N: fmt.Sprintf("c%02d", i), Min: 0, Max: 999})
	}
	return Spec{Name: "fd-red-30", Rows: 250000, DataAttrs: 30, Columns: cols}
}

func plista() Spec {
	var cols []Column
	cols = append(cols,
		Code{N: "publisher", Prefix: "pub", Pool: 40, Width: 3},
		Code{N: "item", Prefix: "it", Pool: 300, Width: 5},
		Int{N: "category", Min: 0, Max: 30},
		Date{N: "created", FromY: 2013, ToY: 2013},
	)
	for i := 0; i < 14; i++ {
		cols = append(cols, Sparse{
			Col: Code{N: fmt.Sprintf("kw_%02d", i), Prefix: "k", Pool: 120, Width: 3},
			P:   0.5,
		})
	}
	for i := 0; i < 12; i++ {
		cols = append(cols, Cat{N: fmt.Sprintf("flag_%02d", i), Vals: []string{"0", "1"}})
	}
	for i := 0; i < 12; i++ {
		cols = append(cols, Int{N: fmt.Sprintf("cnt_%02d", i), Min: 0, Max: 200})
	}
	return Spec{Name: "plista", Rows: 1000, DataAttrs: 42, Columns: cols}
}

func flightCols(n int) []Column {
	carriers := []string{"AA", "UA", "DL", "WN", "B6", "AS", "NK", "F9", "HA", "VX", "OO", "EV", "MQ", "US"}
	var cols []Column
	cols = append(cols,
		Cat{N: "carrier", Vals: carriers},
		Code{N: "flight_num", Prefix: "", Pool: 320, Width: 4},
		Word{N: "origin", Pool: 50, Len: 3},
		Word{N: "dest", Pool: 50, Len: 3},
		Date{N: "flight_date", FromY: 2012, ToY: 2012},
	)
	i := 0
	for len(cols) < n {
		switch i % 5 {
		case 0:
			cols = append(cols, Int{N: fmt.Sprintf("dep_time_%02d", i), Min: 0, Max: 95})
		case 1:
			cols = append(cols, Int{N: fmt.Sprintf("delay_%02d", i), Min: -30, Max: 250})
		case 2:
			cols = append(cols, Sparse{Col: Cat{N: fmt.Sprintf("status_%02d", i),
				Vals: []string{"on-time", "delayed", "cancelled", "diverted"}}, P: 0.3})
		case 3:
			cols = append(cols, Code{N: fmt.Sprintf("gate_%02d", i), Prefix: "G", Pool: 90, Width: 2})
		case 4:
			cols = append(cols, Int{N: fmt.Sprintf("taxi_%02d", i), Min: 1, Max: 120})
		}
		i++
	}
	return cols
}

func flight1k() Spec {
	return Spec{Name: "flight-1k", Rows: 1000, DataAttrs: 74, Columns: flightCols(74)}
}

func flight500k() Spec {
	return Spec{Name: "flight-500k", Rows: 500000, DataAttrs: 20, Columns: flightCols(20)}
}

func uniprot() Spec {
	var cols []Column
	cols = append(cols,
		Code{N: "accession_family", Prefix: "P", Pool: 500, Width: 4},
		Word{N: "organism", Pool: 100, Len: 12},
		Word{N: "gene", Pool: 400, Len: 5},
		Int{N: "length", Min: 50, Max: 600},
		Date{N: "created", FromY: 2014, ToY: 2014},
		Date{N: "modified", FromY: 2018, ToY: 2018},
	)
	i := 0
	for len(cols) < 181 {
		switch i % 6 {
		case 0:
			cols = append(cols, Sparse{Col: Word{N: fmt.Sprintf("feature_%03d", i), Pool: 150, Len: 8}, P: 0.6})
		case 1:
			cols = append(cols, Cat{N: fmt.Sprintf("evidence_%03d", i),
				Vals: []string{"ECO:0000269", "ECO:0000303", "ECO:0000305", "ECO:0000250"}})
		case 2:
			cols = append(cols, Int{N: fmt.Sprintf("pos_%03d", i), Min: 1, Max: 400})
		case 3:
			cols = append(cols, Sparse{Col: Code{N: fmt.Sprintf("xref_%03d", i), Prefix: "DB", Pool: 250, Width: 4}, P: 0.4})
		case 4:
			cols = append(cols, Cat{N: fmt.Sprintf("flag_%03d", i), Vals: []string{"yes", "no", "unknown"}})
		case 5:
			cols = append(cols, Word{N: fmt.Sprintf("kw_%03d", i), Pool: 80, Len: 9})
		}
		i++
	}
	return Spec{Name: "uniprot", Rows: 1000, DataAttrs: 181, Columns: cols}
}
