package datasets_test

import (
	"testing"

	"affidavit/internal/datasets"
)

// table2Shapes is |A| (including the artificial key) and record counts as
// printed in Table 2, plus flight-500k from Section 5.4.1.
var table2Shapes = map[string]struct{ attrs, rows int }{
	"iris": {6, 150}, "balance": {6, 625}, "chess": {8, 28056},
	"abalone": {9, 4177}, "nursery": {10, 12960}, "bridges": {10, 108},
	"echo": {10, 132}, "breast": {11, 699}, "adult": {15, 48842},
	"ncvoter-1k": {16, 1000}, "letter": {18, 20000}, "hepatitis": {19, 155},
	"horse": {28, 368}, "fd-red-30": {31, 250000}, "plista": {43, 1000},
	"flight-1k": {75, 1000}, "uniprot": {182, 1000}, "flight-500k": {21, 500000},
}

func TestRegistryMatchesTable2(t *testing.T) {
	specs := datasets.All()
	if len(specs) != len(table2Shapes) {
		t.Fatalf("registry has %d datasets, want %d", len(specs), len(table2Shapes))
	}
	for _, s := range specs {
		want, ok := table2Shapes[s.Name]
		if !ok {
			t.Errorf("unexpected dataset %q", s.Name)
			continue
		}
		if s.DataAttrs != want.attrs-1 {
			t.Errorf("%s: DataAttrs = %d, want |A|−1 = %d", s.Name, s.DataAttrs, want.attrs-1)
		}
		if s.Rows != want.rows {
			t.Errorf("%s: Rows = %d, want %d", s.Name, s.Rows, want.rows)
		}
		if len(s.Columns) != s.DataAttrs {
			t.Errorf("%s: %d columns for %d attrs", s.Name, len(s.Columns), s.DataAttrs)
		}
	}
}

func TestGetAndNames(t *testing.T) {
	if _, err := datasets.Get("iris"); err != nil {
		t.Fatal(err)
	}
	if _, err := datasets.Get("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	names := datasets.Names()
	if len(names) != 18 || names[0] != "iris" {
		t.Errorf("Names = %v", names)
	}
	if datasets.Table2Rows()["chess"] != 28056 {
		t.Error("Table2Rows wrong")
	}
}

// TestBuildShapesAndRatios builds each dataset (large ones at reduced row
// counts) and checks that (a) shapes match, (b) no column violates the
// generator's 0.7 distinct-ratio filter, and (c) no column is entirely
// empty — so the Section 5.1 preprocessing drops nothing and Table 2's |A|
// is preserved.
func TestBuildShapesAndRatios(t *testing.T) {
	for _, s := range datasets.All() {
		rows := s.Rows
		if rows > 20000 {
			rows = 20000
		}
		tab, err := s.BuildRows(rows, 7)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if tab.Len() != rows || tab.Schema().Len() != s.DataAttrs {
			t.Errorf("%s: built %d×%d, want %d×%d",
				s.Name, tab.Len(), tab.Schema().Len(), rows, s.DataAttrs)
		}
		for a := 0; a < tab.Schema().Len(); a++ {
			st := tab.Stats(a)
			if st.DistinctRatio > 0.7 {
				t.Errorf("%s.%s: distinct ratio %.2f exceeds the 0.7 filter",
					s.Name, st.Attr, st.DistinctRatio)
			}
			if st.NonEmpty == 0 {
				t.Errorf("%s.%s: column entirely empty", s.Name, st.Attr)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, _ := datasets.Get("iris")
	a, err := s.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Record(i).Equal(b.Record(i)) {
			t.Fatal("same seed built different tables")
		}
	}
	c, err := s.Build(43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len(); i++ {
		if !a.Record(i).Equal(c.Record(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds built identical tables")
	}
}

// TestLowCardinalityProfile: chess, letter and nursery must contain only
// low-cardinality attributes relative to their record counts — the property
// that makes the overlap-based Hs start state fail in Table 2.
func TestLowCardinalityProfile(t *testing.T) {
	for _, name := range []string{"chess", "letter", "nursery"} {
		s, err := datasets.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := s.BuildRows(5000, 1)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < tab.Schema().Len(); a++ {
			st := tab.Stats(a)
			if st.Distinct > 30 {
				t.Errorf("%s.%s has %d distinct values; profile should be low-cardinality",
					name, st.Attr, st.Distinct)
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := datasets.Spec{Name: "bad", Rows: 10, DataAttrs: 2,
		Columns: []datasets.Column{datasets.Int{N: "only-one", Min: 0, Max: 1}}}
	if _, err := bad.Build(1); err == nil {
		t.Error("mismatched spec accepted")
	}
}

func TestSparseColumn(t *testing.T) {
	s := datasets.Spec{Name: "sp", Rows: 500, DataAttrs: 1, Columns: []datasets.Column{
		datasets.Sparse{Col: datasets.Int{N: "v", Min: 0, Max: 9}, P: 0.5},
	}}
	tab, err := s.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	st := tab.Stats(0)
	if st.NonEmpty == 0 || st.NonEmpty == tab.Len() {
		t.Errorf("sparse column should mix empty and non-empty: %+v", st)
	}
}
