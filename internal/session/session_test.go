package session_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"affidavit/internal/datasets"
	"affidavit/internal/delta"
	"affidavit/internal/gen"
	"affidavit/internal/search"
	"affidavit/internal/session"
	"affidavit/internal/table"
)

// chain builds a snapshot chain over a registry dataset.
func chain(t testing.TB, name string, steps int, permuteKeys bool) *gen.ChainProblem {
	t.Helper()
	ds, err := datasets.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(31)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := gen.MakeChain(tab, gen.ChainConfig{
		Steps: steps, Eta: 0.1, Tau: 0.5, Seed: 31, PermuteKeys: permuteKeys,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func opts31() search.Options {
	o := search.DefaultOptions()
	o.Seed = 31
	return o
}

func assertSameExplanation(t *testing.T, label string, a, b *search.Result) {
	t.Helper()
	if a.Cost != b.Cost {
		t.Errorf("%s: cost %v vs %v", label, a.Cost, b.Cost)
	}
	if ak, bk := a.Explanation.Funcs.Key(), b.Explanation.Funcs.Key(); ak != bk {
		t.Errorf("%s: function tuples differ:\n  %s\n  %s", label, ak, bk)
	}
	if !equalInts(a.Explanation.CoreSrc, b.Explanation.CoreSrc) ||
		!equalInts(a.Explanation.CoreTgt, b.Explanation.CoreTgt) {
		t.Errorf("%s: core alignments differ", label)
	}
	if !equalInts(a.Explanation.Deleted, b.Explanation.Deleted) {
		t.Errorf("%s: deletions differ", label)
	}
	if !equalInts(a.Explanation.Inserted, b.Explanation.Inserted) {
		t.Errorf("%s: insertions differ", label)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWarmChainMatchesColdWithFewerPolls is the subsystem's core contract:
// a warm-start chain run over ≥ 3 successive snapshots of a registry
// dataset produces the same final explanation as independent cold runs
// while polling strictly fewer search states on every warm step.
func TestWarmChainMatchesColdWithFewerPolls(t *testing.T) {
	for _, name := range []string{"iris", "bridges", "echo", "balance"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ch := chain(t, name, 3, false)
			s := session.New(ch.Snapshots[0], opts31(), nil)
			for i := 1; i < len(ch.Snapshots); i++ {
				warm, err := s.ExplainNext(context.Background(), ch.Snapshots[i])
				if err != nil {
					t.Fatal(err)
				}
				if err := warm.Explanation.Validate(); err != nil {
					t.Fatalf("step %d: invalid warm explanation: %v", i, err)
				}
				inst, err := delta.NewInstance(ch.Snapshots[i-1], ch.Snapshots[i], nil)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := search.Run(context.Background(), inst, opts31())
				if err != nil {
					t.Fatal(err)
				}
				assertSameExplanation(t, fmt.Sprintf("step %d", i), warm, cold)
				// The first step has no warm tuple yet and must equal the
				// cold run's effort too; later steps must beat it strictly.
				if i == 1 {
					if warm.Stats.Polls != cold.Stats.Polls {
						t.Errorf("step 1: warm polls %d, cold polls %d (no warm tuple yet, want equal)",
							warm.Stats.Polls, cold.Stats.Polls)
					}
				} else if warm.Stats.Polls >= cold.Stats.Polls {
					t.Errorf("step %d: warm polls %d not below cold polls %d",
						i, warm.Stats.Polls, cold.Stats.Polls)
				}
			}
		})
	}
}

// TestChainDeterminism: replaying a chain with the same seed reproduces
// every explanation and every statistic.
func TestChainDeterminism(t *testing.T) {
	ch := chain(t, "bridges", 3, true)
	type step struct {
		key   string
		cost  float64
		stats search.Stats
	}
	runChain := func() []step {
		s := session.New(ch.Snapshots[0], opts31(), nil)
		var out []step
		for i := 1; i < len(ch.Snapshots); i++ {
			res, err := s.ExplainNext(context.Background(), ch.Snapshots[i])
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			st.Duration = 0
			out = append(out, step{key: res.Explanation.Funcs.Key(), cost: res.Cost, stats: st})
		}
		return out
	}
	a, b := runChain(), runChain()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("step %d not reproducible:\n  %+v\n  %+v", i+1, a[i], b[i])
		}
	}
}

// TestChainPermutedKeys: with per-snapshot key rewriting the warm tuple's
// key mapping is stale, so the mapping-free warm state carries the run;
// explanations stay valid and effort still drops.
func TestChainPermutedKeys(t *testing.T) {
	ch := chain(t, "balance", 3, true)
	s := session.New(ch.Snapshots[0], opts31(), nil)
	var polls []int
	for i := 1; i < len(ch.Snapshots); i++ {
		res, err := s.ExplainNext(context.Background(), ch.Snapshots[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Explanation.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		polls = append(polls, res.Stats.Polls)
	}
	for i := 1; i < len(polls); i++ {
		if polls[i] >= polls[0] {
			t.Errorf("warm step %d polls %d not below cold-start step's %d",
				i+1, polls[i], polls[0])
		}
	}
}

// TestPoolReuse: interning snapshot n+1 against the session pool re-interns
// far less than a cold instance does, because unchanged values keep their
// codes.
func TestPoolReuse(t *testing.T) {
	ch := chain(t, "bridges", 2, false)
	s := session.New(ch.Snapshots[0], opts31(), nil)
	if _, err := s.ExplainNext(context.Background(), ch.Snapshots[1]); err != nil {
		t.Fatal(err)
	}
	before := s.Pool().Values()
	if before == 0 {
		t.Fatal("pool empty after first run")
	}
	if _, err := s.ExplainNext(context.Background(), ch.Snapshots[2]); err != nil {
		t.Fatal(err)
	}
	grown := s.Pool().Values() - before
	coldInst, err := delta.NewInstance(ch.Snapshots[1], ch.Snapshots[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	coldValues := 0
	for _, b := range coldInst.Coded().Base {
		coldValues += int(b)
	}
	if grown >= coldValues/2 {
		t.Errorf("pool grew by %d values on step 2; cold interning does %d — reuse too low",
			grown, coldValues)
	}
}

// TestExplainPairMatchesCold: pooled single-pair runs equal cold runs.
func TestExplainPairMatchesCold(t *testing.T) {
	ch := chain(t, "echo", 2, true)
	s := session.New(nil, opts31(), nil)
	for i := 1; i < len(ch.Snapshots); i++ {
		pooled, err := s.ExplainPair(context.Background(), ch.Snapshots[i-1], ch.Snapshots[i])
		if err != nil {
			t.Fatal(err)
		}
		inst, err := delta.NewInstance(ch.Snapshots[i-1], ch.Snapshots[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := search.Run(context.Background(), inst, opts31())
		if err != nil {
			t.Fatal(err)
		}
		assertSameExplanation(t, fmt.Sprintf("pair %d", i), pooled, cold)
		st := pooled.Stats
		st.Duration = cold.Stats.Duration
		if st != cold.Stats {
			t.Errorf("pair %d: stats differ: %+v vs %+v", i, st, cold.Stats)
		}
	}
}

// TestExplainBatchConcurrent runs a mixed-schema batch on a shared pool
// across many goroutines (the race detector covers the concurrent
// interning) and checks results equal per-pair cold runs, in input order.
func TestExplainBatchConcurrent(t *testing.T) {
	var pairs []session.Pair
	var want []*search.Result
	for _, name := range []string{"iris", "bridges", "echo"} {
		ch := chain(t, name, 2, true)
		for i := 1; i < len(ch.Snapshots); i++ {
			pairs = append(pairs, session.Pair{Source: ch.Snapshots[i-1], Target: ch.Snapshots[i]})
			inst, err := delta.NewInstance(ch.Snapshots[i-1], ch.Snapshots[i], nil)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := search.Run(context.Background(), inst, opts31())
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, cold)
		}
	}
	s := session.New(nil, opts31(), nil)
	results, err := s.ExplainBatch(context.Background(), pairs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pairs) {
		t.Fatalf("got %d results, want %d", len(results), len(pairs))
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("pair %d: nil result", i)
		}
		assertSameExplanation(t, fmt.Sprintf("pair %d", i), res, want[i])
	}
	if s.Runs() != len(pairs) {
		t.Errorf("session counted %d runs, want %d", s.Runs(), len(pairs))
	}
}

// TestExplainBatchErrors: schema-mismatched pairs fail individually without
// sinking the rest of the batch.
func TestExplainBatchErrors(t *testing.T) {
	ch := chain(t, "iris", 1, false)
	other, _ := table.NewSchema("completely", "different")
	odd, err := table.FromRows(other, []table.Record{{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	s := session.New(nil, opts31(), nil)
	results, err := s.ExplainBatch(context.Background(), []session.Pair{
		{Source: ch.Snapshots[0], Target: ch.Snapshots[1]},
		{Source: ch.Snapshots[0], Target: odd},
	}, 2)
	if err == nil {
		t.Fatal("want an error for the mismatched pair")
	}
	if results[0] == nil {
		t.Error("healthy pair should still produce a result")
	}
	if results[1] != nil {
		t.Error("mismatched pair should have a nil result")
	}
}

// TestExplainNextNeedsBaseline: chain mode requires an initial snapshot.
func TestExplainNextNeedsBaseline(t *testing.T) {
	ch := chain(t, "iris", 1, false)
	s := session.New(nil, opts31(), nil)
	if _, err := s.ExplainNext(context.Background(), ch.Snapshots[0]); err == nil {
		t.Fatal("want error without a baseline")
	}
	if _, err := s.ExplainWarm(context.Background(), ch.Snapshots[0], ch.Snapshots[1]); err != nil {
		t.Fatalf("ExplainWarm should set the baseline: %v", err)
	}
	if s.Current() != ch.Snapshots[1] {
		t.Error("ExplainWarm should advance the chain head")
	}
	if _, err := s.ExplainNext(context.Background(), ch.Snapshots[1]); err != nil {
		t.Fatalf("ExplainNext after ExplainWarm: %v", err)
	}
}

// TestConcurrentMixedUse hammers one session with concurrent pair, warm and
// batch explanations — race-detector coverage for the shared pool and the
// session state.
func TestConcurrentMixedUse(t *testing.T) {
	ch := chain(t, "iris", 2, false)
	s := session.New(ch.Snapshots[0], opts31(), nil)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var err error
			switch g % 3 {
			case 0:
				_, err = s.ExplainPair(context.Background(), ch.Snapshots[0], ch.Snapshots[1])
			case 1:
				_, err = s.ExplainWarm(context.Background(), ch.Snapshots[1], ch.Snapshots[2])
			case 2:
				_, err = s.ExplainBatch(context.Background(), []session.Pair{
					{Source: ch.Snapshots[0], Target: ch.Snapshots[2]},
				}, 2)
			}
			if err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}

// TestSessionWarmGuardEscalation drives a session whose chain breaks
// mid-stream: after two recurring steps, the next snapshot comes from a
// structurally different chain over the same table. With the guard armed,
// the session escalates that step to a cold search (WarmEscalated) while
// the recurring steps keep the incremental path.
func TestSessionWarmGuardEscalation(t *testing.T) {
	chA := chain(t, "bridges", 2, false)
	ds, err := datasets.Get("bridges")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ds.Build(31)
	if err != nil {
		t.Fatal(err)
	}
	chB, err := gen.MakeChain(tab, gen.ChainConfig{Steps: 1, Eta: 0.1, Tau: 0.5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	opts := opts31()
	opts.WarmGuard = 2
	s := session.New(chA.Snapshots[0], opts, nil)
	for i := 1; i < len(chA.Snapshots); i++ {
		res, err := s.ExplainNext(context.Background(), chA.Snapshots[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.WarmEscalated {
			t.Fatalf("step %d: guard escalated on the recurring chain", i)
		}
	}
	broken, err := s.ExplainNext(context.Background(), chB.Snapshots[1])
	if err != nil {
		t.Fatal(err)
	}
	if !broken.Stats.WarmEscalated {
		t.Fatal("guard did not escalate when the chain's structure broke")
	}
	if err := broken.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	// The escalated run equals a cold run over the same pooled instance.
	inst, err := delta.NewInstanceWithDicts(chA.Snapshots[2], chB.Snapshots[1], nil,
		s.Pool().DictsFor(chA.Snapshots[2].Schema()))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := search.Run(context.Background(), inst, opts31())
	if err != nil {
		t.Fatal(err)
	}
	assertSameExplanation(t, "escalated", broken, cold)
}

// TestSessionCancelledRunLeavesChainIntact: a chain step interrupted by
// its context must neither advance the chain head nor poison the warm
// seed — the interrupted step stays explainable, and retrying it produces
// exactly what an uninterrupted chain would have.
func TestSessionCancelledRunLeavesChainIntact(t *testing.T) {
	ch := chain(t, "bridges", 3, false)
	s := session.New(ch.Snapshots[0], opts31(), nil)
	if _, err := s.ExplainNext(context.Background(), ch.Snapshots[1]); err != nil {
		t.Fatal(err)
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	res, err := s.ExplainNext(cancelled, ch.Snapshots[2])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Cancelled {
		t.Fatal("cancelled context did not tag the run")
	}
	if err := res.Explanation.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Current() != ch.Snapshots[1] {
		t.Fatal("cancelled run advanced the chain head past the unexplained step")
	}
	// Retrying the interrupted step — and the step after it — matches an
	// uninterrupted reference chain exactly.
	ref := session.New(ch.Snapshots[0], opts31(), nil)
	if _, err := ref.ExplainNext(context.Background(), ch.Snapshots[1]); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < len(ch.Snapshots); i++ {
		got, err := s.ExplainNext(context.Background(), ch.Snapshots[i])
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Cancelled {
			t.Fatalf("step %d: uncancelled step tagged cancelled", i)
		}
		want, err := ref.ExplainNext(context.Background(), ch.Snapshots[i])
		if err != nil {
			t.Fatal(err)
		}
		assertSameExplanation(t, fmt.Sprintf("retried step %d", i), got, want)
	}
}
