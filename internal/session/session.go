// Package session implements long-lived explanation sessions: a shared
// dictionary pool that interns every snapshot of a chain (or every pair of
// a batch) into one code space, plus warm-started incremental search that
// seeds each run's queue with the previous run's explanation. Real
// deployments diff the same table repeatedly — snapshot n against n+1, or
// many tables from the same domain — and a session amortises both the
// interning work (values seen once are never re-interned) and the search
// work (a recurring transformation pattern is re-validated instead of
// re-discovered) across the whole sequence.
package session

import (
	"errors"
	"fmt"
	"sync"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/search"
	"affidavit/internal/table"
)

// Pair is one source/target snapshot pair of a batch.
type Pair struct {
	Source, Target *table.Table
}

// Session is a long-lived explanation context. Sessions are safe for
// concurrent use: the dictionary pool is concurrency-safe, chain operations
// serialise on the session lock, and independent pair explanations run
// concurrently. Because nothing in the pipeline depends on numeric code
// order, ExplainPair/ExplainBatch results are identical to cold
// single-pair runs with the same options and seed; the warm-started paths
// (ExplainNext, ExplainWarm) additionally run the search in incremental
// mode, which matches cold runs on recurring patterns but anchors on the
// previous structure when the pattern changes (see search.Options.WarmStart).
type Session struct {
	pool  *table.DictPool
	opts  search.Options
	metas []metafunc.Meta

	mu         sync.Mutex
	current    *table.Table // chain head; nil until set
	warm       delta.FuncTuple
	warmSchema *table.Schema
	runs       int
}

// New creates a session. initial, when non-nil, becomes the chain baseline
// for ExplainNext; a nil initial starts a batch/service session whose chain
// baseline is the first explained pair's target. A nil metas slice defaults
// to metafunc.DefaultMetas().
func New(initial *table.Table, opts search.Options, metas []metafunc.Meta) *Session {
	if metas == nil {
		metas = metafunc.DefaultMetas()
	}
	return &Session{pool: table.NewDictPool(), opts: opts, metas: metas, current: initial}
}

// Pool returns the session's shared dictionary pool.
func (s *Session) Pool() *table.DictPool { return s.pool }

// Current returns the chain head: the snapshot the next ExplainNext call
// diffs against. Nil when no baseline was ever set.
func (s *Session) Current() *table.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// Runs returns how many explanations the session has produced.
func (s *Session) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// instance builds a pooled instance for one pair.
func (s *Session) instance(source, target *table.Table) (*delta.Instance, error) {
	return delta.NewInstanceWithDicts(source, target, s.metas, s.pool.DictsFor(source.Schema()))
}

// run executes one search over the pooled instance, warm-seeded when warm
// matches the pair's schema.
func (s *Session) run(source, target *table.Table, warm delta.FuncTuple, warmSchema *table.Schema, workers int) (*search.Result, error) {
	inst, err := s.instance(source, target)
	if err != nil {
		return nil, err
	}
	opts := s.opts
	opts.Workers = workers
	if warm != nil && warmSchema != nil && warmSchema.Equal(source.Schema()) {
		opts.WarmStart = warm
	}
	return search.Run(inst, opts)
}

// ExplainNext explains the difference between the chain head and next, then
// advances the chain: next becomes the head and the learned function tuple
// becomes the warm start of the following call. Chain runs serialise on the
// session; for a fixed seed the whole chain is deterministic.
func (s *Session) ExplainNext(next *table.Table) (*search.Result, error) {
	if next == nil {
		return nil, fmt.Errorf("session: ExplainNext needs a snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.current == nil {
		return nil, fmt.Errorf("session: no chain baseline (create the session with an initial snapshot)")
	}
	res, err := s.run(s.current, next, s.warm, s.warmSchema, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.current = next
	s.warm = res.Explanation.Funcs.Clone()
	s.warmSchema = next.Schema()
	s.runs++
	return res, nil
}

// ExplainPair explains one pair over the shared dictionary pool without
// touching the chain state. Safe to call concurrently; the result is
// independent of whatever the pool already contains.
func (s *Session) ExplainPair(source, target *table.Table) (*search.Result, error) {
	res, err := s.run(source, target, nil, nil, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.runs++
	s.mu.Unlock()
	return res, nil
}

// ExplainWarm explains one pair over the shared pool, warm-seeded with the
// most recent explanation of the same schema, and stores the learned tuple
// for the next call. Unlike ExplainNext it does not require the pair to
// extend the chain head, so a service can warm successive uploads of the
// same table. Concurrent callers are race-clean but the stored tuple is
// last-writer-wins, so interleaved warm runs may seed from either
// predecessor; the explanation itself is unaffected (warm states only
// reduce search effort for equal results on recurring patterns).
func (s *Session) ExplainWarm(source, target *table.Table) (*search.Result, error) {
	s.mu.Lock()
	warm, warmSchema := s.warm, s.warmSchema
	s.mu.Unlock()
	res, err := s.run(source, target, warm, warmSchema, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.warm = res.Explanation.Funcs.Clone()
	s.warmSchema = source.Schema()
	s.current = target
	s.runs++
	s.mu.Unlock()
	return res, nil
}

// ExplainBatch explains every pair over one shared dictionary pool, fanning
// out across at most workers goroutines (workers ≤ 1 runs sequentially).
// Pairs may have different schemas; attributes sharing a name share a
// dictionary. Results arrive in input order and are identical to
// per-pair cold runs; when fanning out, each individual search runs on the
// sequential engine so the batch owns the cores. Failed pairs leave nil
// results; the joined error reports every failure.
func (s *Session) ExplainBatch(pairs []Pair, workers int) ([]*search.Result, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	inner := s.opts.Workers
	if workers > 1 {
		inner = 1
	}
	results := make([]*search.Result, len(pairs))
	errs := make([]error, len(pairs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, p := range pairs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p Pair) {
			defer func() {
				<-sem
				wg.Done()
			}()
			res, err := s.run(p.Source, p.Target, nil, nil, inner)
			if err != nil {
				errs[i] = fmt.Errorf("session: pair %d: %w", i, err)
				return
			}
			results[i] = res
		}(i, p)
	}
	wg.Wait()
	s.mu.Lock()
	s.runs += len(pairs)
	s.mu.Unlock()
	return results, errors.Join(errs...)
}
