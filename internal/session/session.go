// Package session implements long-lived explanation sessions: a shared
// dictionary pool that interns every snapshot of a chain (or every pair of
// a batch) into one code space, plus warm-started incremental search that
// seeds each run's queue with the previous run's explanation. Real
// deployments diff the same table repeatedly — snapshot n against n+1, or
// many tables from the same domain — and a session amortises both the
// interning work (values seen once are never re-interned) and the search
// work (a recurring transformation pattern is re-validated instead of
// re-discovered) across the whole sequence.
//
// Every explanation method takes a context: cancellation and deadlines
// propagate through the search into blocking refinement and the end-state
// conversion. A run interrupted by its context still returns a valid
// best-so-far result with Stats.Cancelled set (see search.Run); sessions
// never store a cancelled run's tuple as the next warm start.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"affidavit/internal/delta"
	"affidavit/internal/metafunc"
	"affidavit/internal/obs"
	"affidavit/internal/search"
	"affidavit/internal/table"
)

// Pair is one source/target snapshot pair of a batch.
type Pair struct {
	Source, Target *table.Table
}

// Session is a long-lived explanation context. Sessions are safe for
// concurrent use: the dictionary pool is concurrency-safe, chain operations
// serialise on the session lock, and independent pair explanations run
// concurrently. Because nothing in the pipeline depends on numeric code
// order, ExplainPair/ExplainBatch results are identical to cold
// single-pair runs with the same options and seed; the warm-started paths
// (ExplainNext, ExplainWarm) additionally run the search in incremental
// mode, which matches cold runs on recurring patterns but anchors on the
// previous structure when the pattern changes (see search.Options.WarmStart).
// When the session's options arm the warm-start quality guard
// (search.Options.WarmGuard), the session feeds each run the previous run's
// compression ratio, so a stale warm tuple escalates to a cold search
// automatically.
type Session struct {
	pool  *table.DictPool
	opts  search.Options
	metas []metafunc.Meta

	mu         sync.Mutex
	current    *table.Table // chain head; nil until set
	warm       delta.FuncTuple
	warmSchema *table.Schema
	warmRatio  float64 // previous warm-capable run's cost/trivial ratio
	runs       int
}

// New creates a session. initial, when non-nil, becomes the chain baseline
// for ExplainNext; a nil initial starts a batch/service session whose chain
// baseline is the first explained pair's target. A nil metas slice defaults
// to metafunc.DefaultMetas().
func New(initial *table.Table, opts search.Options, metas []metafunc.Meta) *Session {
	if metas == nil {
		metas = metafunc.DefaultMetas()
	}
	return &Session{pool: table.NewDictPool(), opts: opts, metas: metas, current: initial}
}

// Pool returns the session's shared dictionary pool.
func (s *Session) Pool() *table.DictPool { return s.pool }

// Current returns the chain head: the snapshot the next ExplainNext call
// diffs against. Nil when no baseline was ever set.
func (s *Session) Current() *table.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// Runs returns how many explanations the session has produced.
func (s *Session) Runs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// instance builds a pooled instance for one pair.
func (s *Session) instance(source, target *table.Table) (*delta.Instance, error) {
	return delta.NewInstanceWithDicts(source, target, s.metas, s.pool.DictsFor(source.Schema()))
}

// trivialRatio is a finished run's cost as a fraction of its pair's
// trivial-explanation cost — the compression-ratio baseline the warm-start
// guard compares against. Zero when the trivial cost is zero (empty target
// or α = 0).
func trivialRatio(res *search.Result, alpha float64) float64 {
	inst := res.Explanation.Inst
	cm := delta.CostModel{Alpha: alpha}
	trivial := cm.TrivialCost(inst.NumAttrs(), inst.Target.Len())
	if trivial <= 0 {
		return 0
	}
	return res.Cost / trivial
}

// run executes one search over the pooled instance, warm-seeded when warm
// matches the pair's schema.
func (s *Session) run(ctx context.Context, source, target *table.Table, warm delta.FuncTuple, warmSchema *table.Schema, prevRatio float64, workers int) (*search.Result, error) {
	inst, err := s.instance(source, target)
	if err != nil {
		return nil, err
	}
	opts := s.opts
	opts.Workers = workers
	// Chain any per-run context sink (a trace recorder riding the request)
	// after the session's configured observer.
	opts.OnEvent = obs.Chain(opts.OnEvent, obs.FromContext(ctx))
	if warm != nil && warmSchema != nil && warmSchema.Equal(source.Schema()) {
		opts.WarmStart = warm
		opts.WarmPrevRatio = prevRatio
	}
	return search.Run(ctx, inst, opts)
}

// storeWarm records a finished run's tuple and compression ratio as the
// next warm start. Cancelled runs are skipped: an interrupted best-so-far
// tuple would poison the chain's warm seed.
func (s *Session) storeWarm(res *search.Result, schema *table.Schema) {
	if res.Stats.Cancelled {
		return
	}
	s.warm = res.Explanation.Funcs.Clone()
	s.warmSchema = schema
	s.warmRatio = trivialRatio(res, s.opts.Alpha)
}

// ExplainNext explains the difference between the chain head and next, then
// advances the chain: next becomes the head and the learned function tuple
// becomes the warm start of the following call. Chain runs serialise on the
// session; for a fixed seed the whole chain is deterministic. A run
// interrupted by ctx leaves the chain untouched — the head stays put and no
// warm state is stored — so retrying ExplainNext with the same snapshot
// re-explains the step instead of silently skipping it.
func (s *Session) ExplainNext(ctx context.Context, next *table.Table) (*search.Result, error) {
	if next == nil {
		return nil, fmt.Errorf("session: ExplainNext needs a snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.current == nil {
		return nil, fmt.Errorf("session: no chain baseline (create the session with an initial snapshot)")
	}
	res, err := s.run(ctx, s.current, next, s.warm, s.warmSchema, s.warmRatio, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	if !res.Stats.Cancelled {
		s.current = next
		s.storeWarm(res, next.Schema())
	}
	s.runs++
	return res, nil
}

// ExplainPair explains one pair over the shared dictionary pool without
// touching the chain state. Safe to call concurrently; the result is
// independent of whatever the pool already contains.
func (s *Session) ExplainPair(ctx context.Context, source, target *table.Table) (*search.Result, error) {
	res, err := s.run(ctx, source, target, nil, nil, 0, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.runs++
	s.mu.Unlock()
	return res, nil
}

// ExplainWarm explains one pair over the shared pool, warm-seeded with the
// most recent explanation of the same schema, and stores the learned tuple
// for the next call. Unlike ExplainNext it does not require the pair to
// extend the chain head, so a service can warm successive uploads of the
// same table. Concurrent callers are race-clean but the stored tuple is
// last-writer-wins, so interleaved warm runs may seed from either
// predecessor; the explanation itself is unaffected (warm states only
// reduce search effort for equal results on recurring patterns).
func (s *Session) ExplainWarm(ctx context.Context, source, target *table.Table) (*search.Result, error) {
	s.mu.Lock()
	warm, warmSchema, prevRatio := s.warm, s.warmSchema, s.warmRatio
	s.mu.Unlock()
	res, err := s.run(ctx, source, target, warm, warmSchema, prevRatio, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.storeWarm(res, source.Schema())
	if !res.Stats.Cancelled {
		s.current = target
	}
	s.runs++
	s.mu.Unlock()
	return res, nil
}

// ExplainBatch explains every pair over one shared dictionary pool, fanning
// out across at most workers goroutines (workers ≤ 1 runs sequentially).
// Pairs may have different schemas; attributes sharing a name share a
// dictionary. Results arrive in input order and are identical to
// per-pair cold runs; when fanning out, each individual search runs on the
// sequential engine so the batch owns the cores. Cancelling ctx interrupts
// every in-flight pair (each returns its best-so-far result with
// Stats.Cancelled set). Failed pairs leave nil results; the joined error
// reports every failure.
func (s *Session) ExplainBatch(ctx context.Context, pairs []Pair, workers int) ([]*search.Result, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	inner := s.opts.Workers
	if workers > 1 {
		inner = 1
	}
	results := make([]*search.Result, len(pairs))
	errs := make([]error, len(pairs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, p := range pairs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p Pair) {
			defer func() {
				<-sem
				wg.Done()
			}()
			res, err := s.run(ctx, p.Source, p.Target, nil, nil, 0, inner)
			if err != nil {
				errs[i] = fmt.Errorf("session: pair %d: %w", i, err)
				return
			}
			results[i] = res
		}(i, p)
	}
	wg.Wait()
	s.mu.Lock()
	s.runs += len(pairs)
	s.mu.Unlock()
	return results, errors.Join(errs...)
}
