package blocking

import (
	"encoding/binary"
	"sort"

	"affidavit/internal/spill"
)

// External (grace-hash) grouping: when one parent block's group map would
// blow the memory budget — the early-search shape where a single block
// holds every record and the split attribute is key-like — the block's
// (scan position, split code) tuples are hash-partitioned to a temp file
// and grouped one partition at a time, so only one partition's map is ever
// resident. The sequential numbering contract (sub-blocks ordered by first
// appearance in the scan order: all of b.Src, then all of b.Tgt) is
// restored by sorting the per-partition groups on their first-appearance
// position, which makes the external path byte-identical to the in-memory
// one.

// codePart hashes a split code onto a partition (Knuth multiplicative;
// the write and rewrite phases must agree).
func codePart(c int32, parts uint32) int {
	return int((uint32(c) * 2654435761) % parts)
}

// extGroup is one distinct split code's group within a partition.
type extGroup struct {
	code  int32
	first uint32 // scan position of the group's first record
	cntS  int32
	cntT  int32
	g     int32 // global sub-block index, assigned after the order merge
}

// groupExternal splits one parent block via disk partitions. On any I/O
// error the grouper state for this block is untouched (blockOf entries may
// hold parked local indices, but the caller immediately re-groups the
// block in memory, overwriting them) and the error is returned so the
// caller can fall back.
func (g *grouper) groupExternal(b *Block, m *spill.Manager, st *spill.Stats, est int64) error {
	nS := len(b.Src)
	parts := m.GroupPartitions(est)
	pg, err := m.NewPager(parts, 8, st)
	if err != nil {
		return err
	}
	defer pg.Close()

	// Phase 1: scatter (position, code) tuples to their code's partition.
	var rec [8]byte
	write := func(pos int, c int32) error {
		binary.LittleEndian.PutUint32(rec[:4], uint32(pos))
		binary.LittleEndian.PutUint32(rec[4:], uint32(c))
		return pg.Write(codePart(c, uint32(parts)), rec[:])
	}
	for pos, s := range b.Src {
		if err := write(pos, g.memo[g.srcCodes[s]]); err != nil {
			return err
		}
	}
	for i, t := range b.Tgt {
		if err := write(nS+i, g.tgtCodes[t]); err != nil {
			return err
		}
	}
	if err := pg.Flush(); err != nil {
		return err
	}

	// Phase 2: group one partition at a time, parking each record's
	// partition-local group index in the global blockOf arrays (exactly the
	// trick groupParallel uses for its chunk-local indices).
	groups := make([][]extGroup, parts)
	local := make(map[int32]int32)
	for part := 0; part < parts; part++ {
		clear(local)
		err := pg.ReadPart(part, func(rec []byte) error {
			pos := binary.LittleEndian.Uint32(rec[:4])
			c := int32(binary.LittleEndian.Uint32(rec[4:]))
			li, ok := local[c]
			if !ok {
				li = int32(len(groups[part]))
				local[c] = li
				groups[part] = append(groups[part], extGroup{code: c, first: pos})
			}
			e := &groups[part][li]
			if int(pos) < nS {
				e.cntS++
				g.srcBlockOf[b.Src[pos]] = li
			} else {
				e.cntT++
				g.tgtBlockOf[b.Tgt[int(pos)-nS]] = li
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Phase 3: merge the partition groups into the sequential numbering.
	// Each group's first-appearance position is unique, so sorting on it
	// reproduces the in-memory first-appearance order exactly.
	type ordRef struct {
		first uint32
		part  int32
		local int32
	}
	ord := make([]ordRef, 0, 16)
	for part, gs := range groups {
		for li := range gs {
			ord = append(ord, ordRef{first: gs[li].first, part: int32(part), local: int32(li)})
		}
	}
	sort.Slice(ord, func(i, j int) bool { return ord[i].first < ord[j].first })
	for _, o := range ord {
		e := &groups[o.part][o.local]
		e.g = int32(len(g.codes))
		g.codes = append(g.codes, e.code)
		g.cntS = append(g.cntS, e.cntS)
		g.cntT = append(g.cntT, e.cntT)
	}

	// Phase 4: rewrite parked local indices to global ones. The split code
	// — and with it the partition — is recomputed from the in-memory code
	// columns, so no second file pass is needed.
	for _, s := range b.Src {
		part := codePart(g.memo[g.srcCodes[s]], uint32(parts))
		g.srcBlockOf[s] = groups[part][g.srcBlockOf[s]].g
	}
	for _, t := range b.Tgt {
		part := codePart(g.tgtCodes[t], uint32(parts))
		g.tgtBlockOf[t] = groups[part][g.tgtBlockOf[t]].g
	}
	return nil
}
